// Package vectorwise_test is the experiment harness: one benchmark family
// per experiment in DESIGN.md §3 (E1…E12), each reproducing the *shape* of
// a claim from "From X100 to Vectorwise". EXPERIMENTS.md records measured
// results against the paper's claims; cmd/vwbench prints the same tables
// outside the testing framework.
package vectorwise_test

import (
	"bytes"
	"compress/flate"
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vectorwise/internal/bufmgr"
	"vectorwise/internal/colstore"
	"vectorwise/internal/compress"
	"vectorwise/internal/datagen"
	"vectorwise/internal/exec"
	"vectorwise/internal/expr"
	"vectorwise/internal/iosim"
	"vectorwise/internal/pdt"
	"vectorwise/internal/primitives"
	"vectorwise/internal/rowengine"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// --- shared fixtures ---

const fixtureRows = 200_000 // lineitem rows for the engine benches

var (
	fixtureOnce sync.Once
	liTable     *colstore.Table      // vectorwise-style storage
	liHeap      *rowengine.HeapTable // classic storage
)

func fixtures(b *testing.B) (*colstore.Table, *rowengine.HeapTable) {
	b.Helper()
	fixtureOnce.Do(func() {
		schema := datagen.LineitemSchema()
		// Column-store copy stores the decomposed physical layout with the
		// comment column dropped (the benches don't touch it), keeping the
		// scan schema NULL-free for direct kernel plumbing.
		phys := types.NewSchema(
			types.Col("l_orderkey", types.Int64),
			types.Col("l_partkey", types.Int64),
			types.Col("l_quantity", types.Int32),
			types.Col("l_extendedprice", types.Float64),
			types.Col("l_discount", types.Float64),
			types.Col("l_tax", types.Float64),
			types.Col("l_returnflag", types.String),
			types.Col("l_linestatus", types.String),
			types.Col("l_shipdate", types.Date),
			types.Col("l_shipmode", types.String),
		)
		liTable = colstore.NewTable(phys)
		ap := liTable.NewAppender()
		liHeap = rowengine.NewHeapTable(phys, -1)
		sf := float64(fixtureRows) / datagen.RowsPerSF
		err := datagen.Lineitems(sf, 42, func(row []types.Value) error {
			r := row[:10]
			if err := ap.AppendRow(r); err != nil {
				return err
			}
			cp := make([]types.Value, 10)
			copy(cp, r)
			_, err := liHeap.Insert(cp)
			return err
		})
		if err != nil {
			panic(err)
		}
		if err := ap.Close(); err != nil {
			panic(err)
		}
		_ = schema
	})
	return liTable, liHeap
}

// q1Cols are the columns the Q1-style query touches.
var q1Cols = []int{8, 2, 3, 4, 6, 7} // shipdate, qty, extprice, discount, flag, status

// q1Cutoff: predicate l_shipdate <= 1998-09-01.
var q1Cutoff = types.DateFromYMD(1998, 9, 1)

// buildQ1Vectorized assembles the X100 plan for the TPC-H-Q1-style query:
//
//	SELECT l_returnflag, l_linestatus, count(*), sum(qty),
//	       sum(extprice*(1-discount)), avg(extprice)
//	FROM lineitem WHERE l_shipdate <= DATE '1998-09-01'
//	GROUP BY l_returnflag, l_linestatus
func buildQ1Vectorized(tab *colstore.Table, vecSize int) (exec.Operator, error) {
	kinds := []types.Kind{types.KindDate, types.KindInt32, types.KindFloat64,
		types.KindFloat64, types.KindString, types.KindString}
	scan := exec.NewColScan(kinds, func(vs int) (pdt.BatchSource, error) {
		if vecSize > 0 {
			vs = vecSize
		}
		return tab.NewScanner(q1Cols, vs)
	})
	sel := exec.NewSelect(scan, expr.NewCall("<=",
		expr.Col(0, "l_shipdate", types.Date), expr.CDate(q1Cutoff)))
	proj := exec.NewProject(sel, []expr.Expr{
		expr.Col(4, "flag", types.String),
		expr.Col(5, "status", types.String),
		expr.Col(1, "qty", types.Int32),
		expr.NewCall("*", expr.Col(2, "extprice", types.Float64),
			expr.NewCall("-", expr.CFloat(1), expr.Col(3, "discount", types.Float64))),
		expr.Col(2, "extprice", types.Float64),
	})
	return exec.NewHashAgg(proj, []int{0, 1}, []exec.AggSpec{
		{Fn: exec.AggCount, Col: -1},
		{Fn: exec.AggSum, Col: 2},
		{Fn: exec.AggSum, Col: 3},
		{Fn: exec.AggAvg, Col: 4},
	})
}

func runVectorized(b *testing.B, op exec.Operator, vecSize int) int {
	b.Helper()
	ctx := exec.NewCtx(context.Background())
	if vecSize > 0 {
		ctx.VecSize = vecSize
	}
	rows, err := exec.Collect(ctx, op)
	if err != nil {
		b.Fatal(err)
	}
	return len(rows)
}

// --- E1: vectorized vs tuple-at-a-time (claim C1, ">10x") ---

func BenchmarkE1_VectorizedQ1(b *testing.B) {
	tab, _ := fixtures(b)
	b.SetBytes(int64(fixtureRows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, err := buildQ1Vectorized(tab, 0)
		if err != nil {
			b.Fatal(err)
		}
		if got := runVectorized(b, op, 0); got != 6 {
			b.Fatalf("groups: %d", got)
		}
	}
}

func BenchmarkE1_TupleAtATimeQ1(b *testing.B) {
	_, heap := fixtures(b)
	b.SetBytes(int64(fixtureRows))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan := rowengine.NewTableScan(heap)
		filt := rowengine.NewFilter(scan, expr.NewCall("<=",
			expr.Col(8, "l_shipdate", types.Date), expr.CDate(q1Cutoff)))
		proj := rowengine.NewMap(filt, []expr.Expr{
			expr.Col(6, "flag", types.String),
			expr.Col(7, "status", types.String),
			expr.Col(2, "qty", types.Int32),
			expr.NewCall("*", expr.Col(3, "extprice", types.Float64),
				expr.NewCall("-", expr.CFloat(1), expr.Col(4, "discount", types.Float64))),
			expr.Col(3, "extprice", types.Float64),
		}, []string{"f", "s", "q", "dp", "ep"})
		agg := rowengine.NewAggRow(proj, []int{0, 1}, []rowengine.RowAggSpec{
			{Fn: "count", Col: -1},
			{Fn: "sum", Col: 2},
			{Fn: "sum", Col: 3},
			{Fn: "avg", Col: 4},
		})
		rows, err := rowengine.CollectRows(context.Background(), agg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatalf("groups: %d", len(rows))
		}
	}
}

// --- E2: vector-size sweep (the X100 U-curve) ---

func BenchmarkE2_VectorSize(b *testing.B) {
	tab, _ := fixtures(b)
	b.ResetTimer()
	for _, vs := range []int{1, 4, 16, 64, 256, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("vs=%d", vs), func(b *testing.B) {
			b.SetBytes(int64(fixtureRows))
			for i := 0; i < b.N; i++ {
				op, err := buildQ1Vectorized(tab, vs)
				if err != nil {
					b.Fatal(err)
				}
				if got := runVectorized(b, op, vs); got != 6 {
					b.Fatalf("groups: %d", got)
				}
			}
		})
	}
}

// --- E3: compression ratio and decode bandwidth (claim C2) ---

func compressionInputs() map[string][]int64 {
	rng := rand.New(rand.NewSource(7))
	sorted := make([]int64, 1<<16)
	acc := int64(1_000_000)
	for i := range sorted {
		acc += int64(rng.Intn(8))
		sorted[i] = acc
	}
	smallRange := make([]int64, 1<<16)
	for i := range smallRange {
		smallRange[i] = int64(rng.Intn(100))
	}
	runs := make([]int64, 1<<16)
	for i := range runs {
		runs[i] = int64(i / 4096)
	}
	return map[string][]int64{"sorted": sorted, "smallrange": smallRange, "runs": runs}
}

func BenchmarkE3_Compression(b *testing.B) {
	inputs := compressionInputs()
	codecs := []struct {
		name string
		enc  func([]byte, []int64) []byte
		dec  func([]int64, []byte) ([]int64, []byte, error)
	}{
		{"pfor", compress.EncodePFOR, compress.DecodePFOR},
		{"pfordelta", compress.EncodePFORDelta, compress.DecodePFORDelta},
		{"rle", compress.EncodeRLE, compress.DecodeRLE},
	}
	for _, in := range []string{"sorted", "smallrange", "runs"} {
		vals := inputs[in]
		raw := int64(len(vals) * 8)
		for _, c := range codecs {
			buf := c.enc(nil, vals)
			b.Run(fmt.Sprintf("%s/%s/decode", in, c.name), func(b *testing.B) {
				b.SetBytes(raw)
				b.ReportMetric(float64(raw)/float64(len(buf)), "ratio")
				dst := make([]int64, len(vals))
				for i := 0; i < b.N; i++ {
					var err error
					dst, _, err = c.dec(dst, buf)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		// General-purpose baseline: flate (the heavyweight codec the
		// paper's schemes outrun on decode speed).
		b.Run(fmt.Sprintf("%s/flate/decode", in), func(b *testing.B) {
			var raw8 bytes.Buffer
			for _, v := range vals {
				var tmp [8]byte
				for k := 0; k < 8; k++ {
					tmp[k] = byte(v >> (8 * k))
				}
				raw8.Write(tmp[:])
			}
			var comp bytes.Buffer
			w, _ := flate.NewWriter(&comp, flate.DefaultCompression)
			w.Write(raw8.Bytes())
			w.Close()
			b.SetBytes(raw)
			b.ReportMetric(float64(raw)/float64(comp.Len()), "ratio")
			for i := 0; i < b.N; i++ {
				r := flate.NewReader(bytes.NewReader(comp.Bytes()))
				if _, err := io.Copy(io.Discard, r); err != nil {
					b.Fatal(err)
				}
				r.Close()
			}
		})
	}
}

// --- E4: cooperative scans vs LRU (claim C3) ---

type benchSource struct {
	disk   *iosim.Disk
	chunks int
}

func (m *benchSource) NumChunks() int { return m.chunks }
func (m *benchSource) ReadChunk(ctx context.Context, id int) ([]byte, error) {
	if err := m.disk.Read(ctx, 1<<20); err != nil {
		return nil, err
	}
	return []byte{byte(id)}, nil
}

func BenchmarkE4_CooperativeScans(b *testing.B) {
	const chunks, poolCap = 64, 16
	for _, nScans := range []int{1, 2, 4, 8} {
		for _, policy := range []string{"lru", "abm"} {
			b.Run(fmt.Sprintf("scans=%d/%s", nScans, policy), func(b *testing.B) {
				var totalLoads int64
				for i := 0; i < b.N; i++ {
					disk := iosim.NewDisk(100*time.Microsecond, 0)
					src := &benchSource{disk: disk, chunks: chunks}
					var wg sync.WaitGroup
					progress := make([]chan struct{}, nScans)
					for j := range progress {
						progress[j] = make(chan struct{})
					}
					loads := runScanFleet(policy, src, poolCap, nScans, progress, &wg)
					totalLoads += loads
				}
				b.ReportMetric(float64(totalLoads)/float64(b.N), "loads/op")
			})
		}
	}
}

// runScanFleet drives nScans out-of-phase scans under a policy and returns
// total physical loads.
func runScanFleet(policy string, src bufmgr.Source, poolCap, nScans int, progress []chan struct{}, wg *sync.WaitGroup) int64 {
	ctx := context.Background()
	const offset = 20 // chunks consumed before the next scan starts
	var loadsFn func() int64
	var mkStep func() func() bool
	switch policy {
	case "abm":
		a := bufmgr.NewABM(src, poolCap)
		loadsFn = func() int64 { return a.Stats().Loads }
		mkStep = func() func() bool {
			s := a.Attach()
			return func() bool {
				_, _, ok, err := s.Next(ctx)
				return err == nil && ok
			}
		}
	default:
		p := bufmgr.NewLRUPool(src, poolCap)
		loadsFn = func() int64 { return p.Stats().Loads }
		mkStep = func() func() bool {
			s := bufmgr.NewNormalScan(p)
			return func() bool {
				_, _, ok, err := s.Next(ctx)
				return err == nil && ok
			}
		}
	}
	for i := 0; i < nScans; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i > 0 {
				<-progress[i-1]
			}
			step := mkStep()
			consumed, released := 0, false
			for step() {
				consumed++
				if consumed == offset && !released {
					close(progress[i])
					released = true
				}
			}
			if !released {
				close(progress[i])
			}
		}(i)
	}
	wg.Wait()
	return loadsFn()
}

// --- E5: PDT updates vs naive alternatives (claim C4) ---

func BenchmarkE5_PDTUpdate(b *testing.B) {
	const stableRows = 1_000_000
	rng := rand.New(rand.NewSource(3))
	b.Run("pdt-modify", func(b *testing.B) {
		p := pdt.New()
		row := []types.Value{types.NewInt64(1)}
		_ = row
		for i := 0; i < b.N; i++ {
			at := rng.Int63n(stableRows)
			if err := p.ModifyAt(at, 0, types.NewInt64(int64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pdt-insert", func(b *testing.B) {
		p := pdt.New()
		row := []types.Value{types.NewInt64(1)}
		for i := 0; i < b.N; i++ {
			at := rng.Int63n(stableRows)
			if err := p.InsertAt(at, row); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Naive alternative: rewriting the stored block containing the row
	// (in-place update of compressed storage means re-encoding a block).
	b.Run("naive-block-rewrite", func(b *testing.B) {
		vals := make([]int64, colstore.BlockRows)
		for i := range vals {
			vals[i] = int64(i)
		}
		enc, _ := compress.ChooseInt64(nil, vals)
		for i := 0; i < b.N; i++ {
			dec, _, err := compress.DecodeInt64(nil, enc)
			if err != nil {
				b.Fatal(err)
			}
			dec[rng.Intn(len(dec))] = int64(i)
			enc, _ = compress.ChooseInt64(enc[:0], dec)
		}
	})
}

func BenchmarkE5_MergeScanOverhead(b *testing.B) {
	const rows = 1_000_000
	tab := colstore.NewTable(types.NewSchema(types.Col("v", types.Int64)))
	ap := tab.NewAppender()
	for i := 0; i < rows; i++ {
		if err := ap.AppendRow([]types.Value{types.NewInt64(int64(i))}); err != nil {
			b.Fatal(err)
		}
	}
	ap.Close()
	for _, deltas := range []int{0, 1000, 10000, 100000} {
		p := pdt.New()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < deltas; i++ {
			p.ModifyAt(rng.Int63n(rows), 0, types.NewInt64(-1))
		}
		ops := p.Ops()
		b.Run(fmt.Sprintf("deltas=%d", deltas), func(b *testing.B) {
			b.SetBytes(rows * 8)
			for i := 0; i < b.N; i++ {
				sc, err := tab.NewScanner([]int{0}, vec.DefaultSize)
				if err != nil {
					b.Fatal(err)
				}
				m := pdt.NewMergerOps(sc, ops)
				batch := vec.NewBatch(m.Kinds(), 0)
				var total int64
				for {
					_, n, done, err := m.Next(batch)
					if err != nil {
						b.Fatal(err)
					}
					if done {
						break
					}
					total += int64(n)
				}
				if total != rows {
					b.Fatalf("rows: %d", total)
				}
			}
		})
	}
}

// --- E6: multi-core scaling via exchange operators (claim C9) ---

func BenchmarkE6_ParallelAggregation(b *testing.B) {
	tab, _ := fixtures(b)
	b.ResetTimer()
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", p), func(b *testing.B) {
			b.SetBytes(int64(fixtureRows))
			for i := 0; i < b.N; i++ {
				root, err := buildParallelQ1(tab, p)
				if err != nil {
					b.Fatal(err)
				}
				rows, err := exec.Collect(exec.NewCtx(context.Background()), root)
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != 6 {
					b.Fatalf("groups: %d", len(rows))
				}
			}
		})
	}
}

// buildParallelQ1 builds the exchange plan the rewriter's parallelizer
// emits: per-partition partial aggregates unioned into a final aggregate.
func buildParallelQ1(tab *colstore.Table, parts int) (exec.Operator, error) {
	if parts <= 1 {
		return buildQ1Vectorized(tab, 0)
	}
	kinds := []types.Kind{types.KindDate, types.KindInt32, types.KindFloat64,
		types.KindFloat64, types.KindString, types.KindString}
	var partials []exec.Operator
	for part := 0; part < parts; part++ {
		part := part
		scan := exec.NewColScan(kinds, func(vs int) (pdt.BatchSource, error) {
			return tab.NewScannerPart(q1Cols, vs, part, parts)
		})
		sel := exec.NewSelect(scan, expr.NewCall("<=",
			expr.Col(0, "l_shipdate", types.Date), expr.CDate(q1Cutoff)))
		proj := exec.NewProject(sel, []expr.Expr{
			expr.Col(4, "flag", types.String),
			expr.Col(5, "status", types.String),
			expr.Col(1, "qty", types.Int32),
			expr.NewCall("*", expr.Col(2, "ep", types.Float64),
				expr.NewCall("-", expr.CFloat(1), expr.Col(3, "disc", types.Float64))),
			expr.Col(2, "ep", types.Float64),
		})
		partial, err := exec.NewHashAgg(proj, []int{0, 1}, []exec.AggSpec{
			{Fn: exec.AggCount, Col: -1},
			{Fn: exec.AggSum, Col: 2},
			{Fn: exec.AggSum, Col: 3},
			{Fn: exec.AggSum, Col: 4},
			{Fn: exec.AggCount, Col: -1},
		})
		if err != nil {
			return nil, err
		}
		partials = append(partials, partial)
	}
	xchg := exec.NewXchgUnion(partials...)
	final, err := exec.NewHashAgg(xchg, []int{0, 1}, []exec.AggSpec{
		{Fn: exec.AggSum, Col: 2},
		{Fn: exec.AggSum, Col: 3},
		{Fn: exec.AggSum, Col: 4},
		{Fn: exec.AggSum, Col: 5},
		{Fn: exec.AggSum, Col: 6},
	})
	if err != nil {
		return nil, err
	}
	// Final AVG = sum/count.
	return exec.NewProject(final, []expr.Expr{
		expr.Col(0, "flag", types.String),
		expr.Col(1, "status", types.String),
		expr.Col(2, "count", types.Int64),
		expr.Col(3, "sumqty", types.Int64),
		expr.Col(4, "sumdisc", types.Float64),
		expr.NewCall("/", expr.Col(5, "sumep", types.Float64),
			expr.NewCall("cast_float64", expr.Col(6, "cnt", types.Int64))),
	}), nil
}

// --- E7: NULL representation (claim C6) ---

func nullFixtures() (vals []float64, inds []bool) {
	rng := rand.New(rand.NewSource(11))
	n := 1 << 20
	vals = make([]float64, n)
	inds = make([]bool, n)
	for i := range vals {
		if rng.Intn(10) == 0 {
			inds[i] = true // NULL: safe value 0
		} else {
			vals[i] = rng.Float64() * 100
		}
	}
	return
}

func BenchmarkE7_Nulls(b *testing.B) {
	vals, inds := nullFixtures()
	n := len(vals)
	b.Run("decomposed", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			s, cnt := primitives.DecomposedSumDirect(vals, inds, nil, n)
			if s == 0 || cnt == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("null-aware-branchy", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			s, cnt := primitives.NullAwareSumDirect(vals, inds, nil, n)
			if s == 0 || cnt == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("boxed-tuple", func(b *testing.B) {
		boxed := make([]types.Value, n)
		for i := range boxed {
			if inds[i] {
				boxed[i] = types.NewNull(types.KindFloat64)
			} else {
				boxed[i] = types.NewFloat64(vals[i])
			}
		}
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			var s float64
			var cnt int64
			for _, v := range boxed {
				if !v.Null {
					s += v.F64
					cnt++
				}
			}
			if s == 0 || cnt == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// --- E8: checked arithmetic (claim C8) ---

func BenchmarkE8_CheckedArithmetic(b *testing.B) {
	n := 1 << 20
	x := make([]int64, n)
	y := make([]int64, n)
	rng := rand.New(rand.NewSource(5))
	for i := range x {
		x[i] = rng.Int63n(1 << 30)
		y[i] = rng.Int63n(1 << 30)
	}
	dst := make([]int64, n)
	b.Run("unchecked", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			primitives.AddVV(dst, x, y, nil)
		}
	})
	b.Run("checked-vectorized", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			if err := primitives.CheckedAddVV(dst, x, y, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("checked-naive", func(b *testing.B) {
		b.SetBytes(int64(n * 8))
		for i := 0; i < b.N; i++ {
			if err := primitives.NaiveCheckedAddVV(dst, x, y, nil, primitives.NaiveAddOverflowCheck[int64]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- E9: kernel-native vs rewriter-lowered functions (claim C7) ---

func BenchmarkE9_FunctionLowering(b *testing.B) {
	n := 1 << 18
	strs := make([]string, n)
	nums := make([]int64, n)
	rng := rand.New(rand.NewSource(13))
	for i := range strs {
		strs[i] = "  padded value  "
		nums[i] = rng.Int63n(2000) - 1000
	}
	strBatch := vec.NewBatch([]types.Kind{types.KindString}, n)
	strBatch.SetLen(n)
	copy(strBatch.Vecs[0].Str, strs)
	numBatch := vec.NewBatch([]types.Kind{types.KindInt64}, n)
	numBatch.SetLen(n)
	copy(numBatch.Vecs[0].I64, nums)

	cases := []struct {
		name  string
		e     expr.Expr
		kinds []types.Kind
		batch *vec.Batch
	}{
		{"trim-native", expr.NewCall("trim", expr.Col(0, "s", types.String)),
			[]types.Kind{types.KindString}, strBatch},
		{"trim-lowered", expr.NewCall("ltrim", expr.NewCall("rtrim", expr.Col(0, "s", types.String))),
			[]types.Kind{types.KindString}, strBatch},
		{"abs-native", expr.NewCall("abs", expr.Col(0, "x", types.Int64)),
			[]types.Kind{types.KindInt64}, numBatch},
		{"abs-lowered", expr.NewCall("max2", expr.Col(0, "x", types.Int64),
			expr.NewCall("neg", expr.Col(0, "x", types.Int64))),
			[]types.Kind{types.KindInt64}, numBatch},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			ev, err := expr.Compile(c.e, c.kinds, expr.Mode{})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				if _, err := ev.Eval(c.batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E10: query cancellation latency (claim C11) ---

func BenchmarkE10_CancelLatency(b *testing.B) {
	tab, _ := fixtures(b)
	b.ResetTimer()
	var totalLatency time.Duration
	for i := 0; i < b.N; i++ {
		root, err := buildParallelQ1(tab, 4)
		if err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		ectx := exec.NewCtx(ctx)
		done := make(chan struct{})
		go func() {
			defer close(done)
			_, _ = exec.Collect(ectx, root)
		}()
		time.Sleep(2 * time.Millisecond) // let the fleet spin up
		t0 := time.Now()
		cancel()
		<-done
		totalLatency += time.Since(t0)
	}
	b.ReportMetric(float64(totalLatency.Microseconds())/float64(b.N), "cancel-µs")
}

// --- E11: anti-join NULL semantics performance (claim C10) ---

func BenchmarkE11_AntiJoin(b *testing.B) {
	const probeN, buildN = 500_000, 50_000
	mk := func() (exec.Operator, exec.Operator) {
		schema := types.NewSchema(types.Col("v", types.Int64), types.Col("v_null", types.Bool))
		probe := make([][]types.Value, probeN)
		rng := rand.New(rand.NewSource(17))
		for i := range probe {
			probe[i] = []types.Value{types.NewInt64(rng.Int63n(1 << 20)), types.NewBool(false)}
		}
		build := make([][]types.Value, buildN)
		for i := range build {
			build[i] = []types.Value{types.NewInt64(rng.Int63n(1 << 20)), types.NewBool(false)}
		}
		return exec.NewValues(schema, probe), exec.NewValues(schema, build)
	}
	for _, jt := range []exec.JoinType{exec.Anti, exec.AntiNullAware} {
		b.Run(jt.String(), func(b *testing.B) {
			b.SetBytes(probeN * 8)
			for i := 0; i < b.N; i++ {
				probe, build := mk()
				j := exec.NewHashJoin(probe, build, []int{0}, []int{0}, jt)
				if jt == exec.AntiNullAware {
					j.LeftKeyNull, j.RightKeyNull = 1, 1
				}
				ctx := exec.NewCtx(context.Background())
				n := 0
				err := exec.Run(ctx, j, func(batch *vec.Batch) error {
					n += batch.Rows()
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("no anti rows")
				}
			}
		})
	}
}

// --- E12: dual storage engines (claim C5) ---

func BenchmarkE12_PointLookup(b *testing.B) {
	schema := types.NewSchema(types.Col("k", types.Int64), types.Col("v", types.Float64))
	const rows = 100_000
	heap := rowengine.NewHeapTable(schema, 0)
	tab := colstore.NewTable(schema)
	ap := tab.NewAppender()
	for i := 0; i < rows; i++ {
		r := []types.Value{types.NewInt64(int64(i)), types.NewFloat64(float64(i))}
		if _, err := heap.Insert(r); err != nil {
			b.Fatal(err)
		}
		if err := ap.AppendRow(r); err != nil {
			b.Fatal(err)
		}
	}
	ap.Close()
	rng := rand.New(rand.NewSource(21))
	b.Run("heap-indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			row, err := heap.Lookup(rng.Int63n(rows))
			if err != nil || row == nil {
				b.Fatal("lookup failed")
			}
		}
	})
	b.Run("vectorwise-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			key := rng.Int63n(rows)
			kv := types.NewInt64(key)
			sc, err := tab.NewScanner([]int{0, 1}, vec.DefaultSize,
				colstore.RangeFilter{Col: 0, Lo: &kv, Hi: &kv})
			if err != nil {
				b.Fatal(err)
			}
			batch := vec.NewBatch(sc.Kinds(), 0)
			found := false
			for {
				_, n, done, err := sc.Next(batch)
				if err != nil {
					b.Fatal(err)
				}
				if done {
					break
				}
				for r := 0; r < n; r++ {
					if batch.Vecs[0].I64[batch.RowIndex(r)] == key {
						found = true
					}
				}
			}
			if !found {
				b.Fatal("not found")
			}
		}
	})
	b.Run("heap-fullscan-agg", func(b *testing.B) {
		b.SetBytes(rows * 8)
		for i := 0; i < b.N; i++ {
			agg := rowengine.NewAggRow(rowengine.NewTableScan(heap), nil,
				[]rowengine.RowAggSpec{{Fn: "sum", Col: 1}})
			if _, err := rowengine.CollectRows(context.Background(), agg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vectorwise-fullscan-agg", func(b *testing.B) {
		b.SetBytes(rows * 8)
		for i := 0; i < b.N; i++ {
			scan := exec.NewColScan([]types.Kind{types.KindFloat64}, func(vs int) (pdt.BatchSource, error) {
				return tab.NewScanner([]int{1}, vs)
			})
			agg, err := exec.NewHashAgg(scan, nil, []exec.AggSpec{{Fn: exec.AggSum, Col: 0}})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Collect(exec.NewCtx(context.Background()), agg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
