#!/usr/bin/env bash
# End-to-end smoke test of the server path: boot vwserver with a seeded
# table, fire concurrent vwsql clients at it, assert they all get the same
# correct answer, then verify graceful shutdown on SIGTERM.
set -euo pipefail

CLIENTS=${CLIENTS:-4}
PORT=${PORT:-15433}
ADDR="127.0.0.1:${PORT}"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

go build -o "$DIR" ./cmd/vwserver ./cmd/vwsql

cat > "$DIR/init.sql" <<'EOF'
CREATE TABLE smoke (k BIGINT, v DOUBLE);
INSERT INTO smoke VALUES (1, 0.5);
INSERT INTO smoke VALUES (2, 1.5);
INSERT INTO smoke VALUES (3, 2.5);
EOF

"$DIR/vwserver" -listen "$ADDR" -pool 2 -queue 16 -init "$DIR/init.sql" &
SRV=$!
# Wait for the listener to come up.
for _ in $(seq 50); do
  if (exec 3<>"/dev/tcp/127.0.0.1/${PORT}") 2>/dev/null; then exec 3>&- 3<&-; break; fi
  sleep 0.1
done

for i in $(seq "$CLIENTS"); do
  printf 'SELECT COUNT(*), SUM(k), SUM(v) FROM smoke;\n' \
    | "$DIR/vwsql" -connect "$ADDR" -timing=false > "$DIR/out$i.txt" &
done
wait $(jobs -p | grep -v "^$SRV\$") || true

for i in $(seq "$CLIENTS"); do
  grep -q '4[.]5' "$DIR/out$i.txt" || { echo "client $i got wrong answer:"; cat "$DIR/out$i.txt"; exit 1; }
  cmp -s "$DIR/out1.txt" "$DIR/out$i.txt" || { echo "client $i diverged:"; diff "$DIR/out1.txt" "$DIR/out$i.txt"; exit 1; }
done

# Errors come back framed without killing the connection or the server.
printf 'SELECT nope FROM missing;\nSELECT COUNT(*) FROM smoke;\n' \
  | "$DIR/vwsql" -connect "$ADDR" -timing=false > "$DIR/err.txt" 2>&1 || true
grep -q '^3$\|3' "$DIR/err.txt" || { echo "connection died after error:"; cat "$DIR/err.txt"; exit 1; }

# sys.sessions is visible over the wire.
printf 'SELECT COUNT(*) FROM sys.sessions;\n' \
  | "$DIR/vwsql" -connect "$ADDR" -timing=false | grep -q '1' \
  || { echo "sys.sessions not visible over the wire"; exit 1; }

# Clustered COPY round-trips over the wire: \copy expands client-side, the
# server sorts the (deliberately shuffled) CSV on the way into storage, and
# a range query prunes to the ordered zone maps.
for k in 7 3 9 1 8 2 6 0 5 4; do
  printf '%s,%s.5\n' "$k" "$k"
done > "$DIR/bulk.csv"
printf 'CREATE TABLE bulk (k BIGINT, v DOUBLE);\n\\copy bulk %s/bulk.csv k\nSELECT COUNT(*), MIN(k), MAX(k) FROM bulk WHERE k BETWEEN 2 AND 8;\n' "$DIR" \
  | "$DIR/vwsql" -connect "$ADDR" -timing=false > "$DIR/copy.txt" 2>&1
grep -q '7' "$DIR/copy.txt" && grep -q '8' "$DIR/copy.txt" \
  || { echo "clustered COPY over the wire failed:"; cat "$DIR/copy.txt"; exit 1; }

kill -TERM "$SRV"
wait "$SRV"
echo "server smoke: OK (${CLIENTS} clients, graceful shutdown)"
