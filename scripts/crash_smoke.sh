#!/usr/bin/env bash
# Crash-recovery smoke test of the durability path: boot vwserver on a
# data directory, commit rows over the wire, kill -9 the server mid-load,
# restart on the same directory, and assert every acknowledged row came
# back — the in-flight tail may be missing, committed ones may not.
set -euo pipefail

PORT=${PORT:-15434}
ADDR="127.0.0.1:${PORT}"
DIR=$(mktemp -d)
DATA="$DIR/data"
trap 'kill -9 "$SRV" 2>/dev/null || true; rm -rf "$DIR"' EXIT

go build -o "$DIR" ./cmd/vwserver ./cmd/vwsql

wait_listen() {
  for _ in $(seq 50); do
    if (exec 3<>"/dev/tcp/127.0.0.1/${PORT}") 2>/dev/null; then exec 3>&- 3<&-; return 0; fi
    sleep 0.1
  done
  echo "server never came up"; exit 1
}

"$DIR/vwserver" -listen "$ADDR" -data-dir "$DATA" &
SRV=$!
wait_listen

# Phase 1: commit a known set of rows over the wire, each acknowledged
# before the next is sent (vwsql waits for the framed response).
{
  printf 'CREATE TABLE crash (k BIGINT NOT NULL, v DOUBLE);\n'
  for k in $(seq 1 50); do
    printf 'INSERT INTO crash VALUES (%s, %s.5);\n' "$k" "$k"
  done
  printf 'SELECT COUNT(*), SUM(k) FROM crash;\n'
} | "$DIR/vwsql" -connect "$ADDR" -timing=false > "$DIR/phase1.txt"
grep -q '1275' "$DIR/phase1.txt" \
  || { echo "phase 1 load failed:"; cat "$DIR/phase1.txt"; exit 1; }

# Phase 2: keep inserting from a background client and kill -9 the server
# mid-stream — a hard power-cut while commits are in flight.
(
  for k in $(seq 51 100000); do
    printf 'INSERT INTO crash VALUES (%s, 0.0);\n' "$k"
  done | "$DIR/vwsql" -connect "$ADDR" -timing=false > "$DIR/phase2.txt" 2>&1
) &
LOADER=$!
sleep 0.5
kill -9 "$SRV"
wait "$SRV" 2>/dev/null || true
wait "$LOADER" 2>/dev/null || true

# How many inserts were acknowledged before the cut? Each acknowledged
# statement prints one framed "OK, 1 rows affected" response.
ACKED=$(grep -c 'rows affected' "$DIR/phase2.txt" || true)
echo "acknowledged after phase 1: $ACKED inserts, then kill -9"

# Phase 3: restart on the same directory; recovery replays the WAL.
"$DIR/vwserver" -listen "$ADDR" -data-dir "$DATA" > "$DIR/restart.log" 2>&1 &
SRV=$!
wait_listen

printf 'SELECT COUNT(*) FROM crash;\nSELECT SUM(k) FROM crash WHERE k <= 50;\n' \
  | "$DIR/vwsql" -connect "$ADDR" -timing=false > "$DIR/phase3.txt"

# Every acknowledged row must be back: the 50 from phase 1 plus at least
# the acknowledged prefix of phase 2 (the server may have committed a few
# more that the client never saw acked — never fewer).
COUNT=$(grep -Eo '^[0-9]+' "$DIR/phase3.txt" | head -1)
MIN=$((50 + ACKED))
if [ -z "$COUNT" ] || [ "$COUNT" -lt "$MIN" ]; then
  echo "lost committed rows: recovered $COUNT, acknowledged >= $MIN"
  cat "$DIR/restart.log" "$DIR/phase3.txt"
  exit 1
fi
grep -q '1275' "$DIR/phase3.txt" \
  || { echo "phase 1 rows damaged after recovery:"; cat "$DIR/phase3.txt"; exit 1; }
grep -q 'recovery:' "$DIR/restart.log" \
  || { echo "no recovery summary logged:"; cat "$DIR/restart.log"; exit 1; }

kill -TERM "$SRV"
wait "$SRV" 2>/dev/null || true
echo "crash smoke: OK ($COUNT rows recovered, >= $MIN acknowledged)"
