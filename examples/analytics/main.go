// Analytics: the OLAP workload the paper's engine exists for — a TPC-H-like
// lineitem/orders/customer schema, bulk-loaded, ANALYZEd and queried with
// aggregations, joins, subqueries and rewriter-inserted parallelism.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"vectorwise/internal/datagen"
	"vectorwise/internal/engine"
	"vectorwise/internal/types"
)

func main() {
	sf := flag.Float64("sf", 0.02, "scale factor (1.0 ≈ 6M lineitems)")
	parallel := flag.Int("parallel", 4, "degree of parallelism for the scaling demo")
	flag.Parse()

	db := engine.Open()
	ctx := context.Background()
	run := func(q string) *engine.Result {
		res, err := db.Exec(ctx, q)
		if err != nil {
			log.Fatalf("%s\n→ %v", q, err)
		}
		return res
	}
	timed := func(label, q string) *engine.Result {
		t0 := time.Now()
		res := run(q)
		fmt.Printf("-- %s (%d rows, %v)\n", label, len(res.Rows), time.Since(t0).Round(time.Millisecond))
		return res
	}

	fmt.Printf("loading TPC-H-like data at SF %.3f …\n", *sf)
	run(datagen.LineitemDDL)
	run(datagen.OrdersDDL)
	run(datagen.CustomerDDL)
	check(db.LoadBatchFunc("lineitem", func(emit func(row []types.Value) error) error {
		return datagen.Lineitems(*sf, 1, emit)
	}))
	check(db.LoadBatchFunc("orders", func(emit func(row []types.Value) error) error {
		return datagen.Orders(*sf, 1, emit)
	}))
	check(db.LoadBatchFunc("customer", func(emit func(row []types.Value) error) error {
		return datagen.Customers(*sf, 1, emit)
	}))
	run(`ANALYZE lineitem`)
	run(`ANALYZE orders`)
	fmt.Print(engine.FormatResult(run(`SHOW TABLES`)))

	fmt.Println("\n== Q1-style pricing summary ==")
	res := timed("aggregation", `
		SELECT l_returnflag, l_linestatus,
		       COUNT(*) AS cnt,
		       SUM(l_quantity) AS sum_qty,
		       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
		       AVG(l_extendedprice) AS avg_price
		FROM lineitem
		WHERE l_shipdate <= DATE '1998-09-01'
		GROUP BY l_returnflag, l_linestatus
		ORDER BY l_returnflag, l_linestatus`)
	fmt.Print(engine.FormatResult(res))

	fmt.Println("\n== revenue per customer segment (3-way join) ==")
	res = timed("join", `
		SELECT c.c_mktsegment, COUNT(*) AS orders, SUM(o.o_totalprice) AS total
		FROM orders o
		JOIN customer c ON o.o_custkey = c.c_custkey
		GROUP BY c.c_mktsegment
		ORDER BY total DESC`)
	fmt.Print(engine.FormatResult(res))

	fmt.Println("\n== top ship modes above the average order value (subquery) ==")
	res = timed("subquery", `
		SELECT l_shipmode, COUNT(*) AS cnt
		FROM lineitem
		WHERE l_extendedprice > (SELECT AVG(l_extendedprice) FROM lineitem)
		GROUP BY l_shipmode
		ORDER BY cnt DESC
		LIMIT 3`)
	fmt.Print(engine.FormatResult(res))

	fmt.Println("\n== rewriter-parallelized aggregation (claim C9) ==")
	q := `SELECT l_returnflag, COUNT(*), SUM(l_quantity) FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag`
	t0 := time.Now()
	serial := run(q)
	ts := time.Since(t0)
	t0 = time.Now()
	par := run(q + fmt.Sprintf(" WITH (PARALLEL=%d)", *parallel))
	tp := time.Since(t0)
	fmt.Printf("serial: %v   parallel(%d): %v   speedup: %.2fx\n",
		ts.Round(time.Millisecond), *parallel, tp.Round(time.Millisecond),
		float64(ts)/float64(tp))
	if engine.FormatResult(serial) != engine.FormatResult(par) {
		log.Fatal("parallel plan returned different answers!")
	}
	fmt.Print(engine.FormatResult(par))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
