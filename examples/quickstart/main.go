// Quickstart: create tables, load rows, and query through the full
// Figure-1 pipeline (SQL → binder → optimizer → cross compiler →
// rewriter → vectorized kernel).
package main

import (
	"context"
	"fmt"
	"log"

	"vectorwise/internal/engine"
)

func main() {
	db := engine.Open()
	ctx := context.Background()

	run := func(q string) *engine.Result {
		res, err := db.Exec(ctx, q)
		if err != nil {
			log.Fatalf("%s\n→ %v", q, err)
		}
		return res
	}

	run(`CREATE TABLE employees (
		id BIGINT NOT NULL PRIMARY KEY,
		name VARCHAR NOT NULL,
		dept VARCHAR NOT NULL,
		salary DOUBLE,
		hired DATE NOT NULL)`)

	run(`INSERT INTO employees VALUES
		(1, 'ada',   'eng',   120000.0, DATE '2019-03-01'),
		(2, 'grace', 'eng',   130000.0, DATE '2018-07-15'),
		(3, 'alan',  'eng',   NULL,     DATE '2021-01-10'),
		(4, 'edsger','ops',    90000.0, DATE '2020-06-30'),
		(5, 'barbara','ops',   95000.0, DATE '2017-11-05'),
		(6, 'donald','sales',  80000.0, DATE '2022-02-20')`)

	fmt.Println("== all employees ==")
	fmt.Print(engine.FormatResult(run(`SELECT * FROM employees ORDER BY id`)))

	fmt.Println("\n== salaries by department (NULL-aware aggregation) ==")
	fmt.Print(engine.FormatResult(run(`
		SELECT dept, COUNT(*) AS headcount, COUNT(salary) AS known,
		       AVG(salary) AS avg_salary, MAX(salary) AS top
		FROM employees GROUP BY dept ORDER BY dept`)))

	fmt.Println("\n== filters, functions, CASE ==")
	fmt.Print(engine.FormatResult(run(`
		SELECT UPPER(name) AS who,
		       YEAR(hired) AS year,
		       CASE WHEN salary IS NULL THEN 'n/a'
		            WHEN salary >= 100000.0 THEN 'senior'
		            ELSE 'regular' END AS band
		FROM employees
		WHERE name LIKE '%a%'
		ORDER BY year`)))

	fmt.Println("\n== updates run through PDT transactions ==")
	run(`UPDATE employees SET salary = 105000.0 WHERE name = 'alan'`)
	run(`DELETE FROM employees WHERE dept = 'sales'`)
	fmt.Print(engine.FormatResult(run(`SELECT COUNT(*), AVG(salary) FROM employees`)))

	fmt.Println("\n== the plan, through every Figure-1 stage ==")
	fmt.Print(run(`EXPLAIN SELECT dept, SUM(salary) FROM employees WHERE hired > DATE '2018-01-01' GROUP BY dept`).Text)
}
