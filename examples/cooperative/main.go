// Cooperative scans: N out-of-phase queries share one simulated disk.
// Classic LRU scans each re-read the table; the Active Buffer Manager
// serves them all with roughly one physical pass (paper claim C3,
// Cooperative Scans VLDB'07).
package main

import (
	"context"
	"flag"
	"fmt"
	"sync"
	"time"

	"vectorwise/internal/bufmgr"
	"vectorwise/internal/iosim"
)

type source struct {
	disk   *iosim.Disk
	chunks int
}

func (s *source) NumChunks() int { return s.chunks }
func (s *source) ReadChunk(ctx context.Context, id int) ([]byte, error) {
	if err := s.disk.Read(ctx, 1<<20); err != nil {
		return nil, err
	}
	return []byte{byte(id)}, nil
}

func main() {
	chunks := flag.Int("chunks", 64, "table size in chunks")
	pool := flag.Int("pool", 16, "buffer pool capacity in chunks")
	scans := flag.Int("scans", 6, "concurrent scans")
	flag.Parse()

	fmt.Printf("table=%d chunks, pool=%d, %d out-of-phase scans\n\n", *chunks, *pool, *scans)
	for _, policy := range []string{"classic LRU", "cooperative ABM"} {
		disk := iosim.NewDisk(200*time.Microsecond, 0)
		src := &source{disk: disk, chunks: *chunks}
		loads, elapsed := run(policy == "cooperative ABM", src, *pool, *scans)
		reads, bytes, busy := disk.Stats()
		fmt.Printf("%-16s physical loads=%-4d (%.1fx table)  disk: %d reads, %d MB, busy %v, wall %v\n",
			policy, loads, float64(loads)/float64(*chunks), reads, bytes>>20,
			busy.Round(time.Millisecond), elapsed.Round(time.Millisecond))
	}
}

// run starts scans out of phase: each begins after its predecessor consumed
// more chunks than the pool holds (the LRU worst case).
func run(coop bool, src bufmgr.Source, pool, nScans int) (int64, time.Duration) {
	ctx := context.Background()
	offset := pool + 4
	progress := make([]chan struct{}, nScans)
	for i := range progress {
		progress[i] = make(chan struct{})
	}
	var loads func() int64
	var mkStep func() func() bool
	if coop {
		a := bufmgr.NewABM(src, pool)
		loads = func() int64 { return a.Stats().Loads }
		mkStep = func() func() bool {
			s := a.Attach()
			return func() bool { _, _, ok, err := s.Next(ctx); return err == nil && ok }
		}
	} else {
		p := bufmgr.NewLRUPool(src, pool)
		loads = func() int64 { return p.Stats().Loads }
		mkStep = func() func() bool {
			s := bufmgr.NewNormalScan(p)
			return func() bool { _, _, ok, err := s.Next(ctx); return err == nil && ok }
		}
	}
	t0 := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < nScans; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i > 0 {
				<-progress[i-1]
			}
			step := mkStep()
			consumed, released := 0, false
			for step() {
				consumed++
				if consumed == offset && !released {
					close(progress[i])
					released = true
				}
			}
			if !released {
				close(progress[i])
			}
		}(i)
	}
	wg.Wait()
	return loads(), time.Since(t0)
}
