// Updates: Positional Delta Trees in action — snapshot-isolation
// transactions over immutable columnar storage, write-write conflict
// detection, and background checkpoint propagation (paper claims C4 and
// "Transactions").
package main

import (
	"errors"
	"fmt"
	"log"

	"vectorwise/internal/colstore"
	"vectorwise/internal/txn"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

func main() {
	// A stable table of 10 accounts.
	schema := types.NewSchema(
		types.Col("account", types.Int64),
		types.Col("balance", types.Int64),
	)
	tab := colstore.NewTable(schema)
	ap := tab.NewAppender()
	for i := 0; i < 10; i++ {
		check(ap.AppendRow([]types.Value{types.NewInt64(int64(i)), types.NewInt64(100)}))
	}
	check(ap.Close())
	store := txn.NewStore(tab)

	fmt.Println("== snapshot isolation ==")
	t1 := store.Begin()
	t2 := store.Begin()
	check(t1.UpdateAt(0, 1, types.NewInt64(150))) // t1 bumps account 0
	fmt.Printf("t1 sees balance[0] = %d (its own write)\n", balanceAt(t1, 0))
	fmt.Printf("t2 sees balance[0] = %d (its snapshot)\n", balanceAt(t2, 0))
	check(t1.Commit())
	fmt.Printf("after t1 commits, t2 still sees %d\n", balanceAt(t2, 0))
	t2.Abort()

	fmt.Println("\n== write-write conflicts (first committer wins) ==")
	t3 := store.Begin()
	t4 := store.Begin()
	check(t3.UpdateAt(5, 1, types.NewInt64(1)))
	check(t4.UpdateAt(5, 1, types.NewInt64(2)))
	check(t3.Commit())
	if err := t4.Commit(); errors.Is(err, txn.ErrConflict) {
		fmt.Println("t4 aborted with:", err)
	} else {
		log.Fatalf("expected a conflict, got %v", err)
	}

	fmt.Println("\n== inserts, deletes, and the delta ledger ==")
	t5 := store.Begin()
	check(t5.InsertRow([]types.Value{types.NewInt64(100), types.NewInt64(5000)}))
	check(t5.DeleteAt(1)) // deletes account 1
	check(t5.Commit())
	fmt.Printf("image rows = %d, pending PDT ops = %d\n", store.Rows(), store.PendingOps())

	fmt.Println("\n== checkpoint: merge deltas into fresh stable storage ==")
	check(store.Checkpoint())
	fmt.Printf("after checkpoint: stable rows = %d, pending ops = %d\n",
		store.Stable().Rows(), store.PendingOps())

	fmt.Println("\nfinal image:")
	t6 := store.Begin()
	defer t6.Abort()
	src, err := t6.Scan([]int{0, 1}, 64)
	check(err)
	b := vec.NewBatch(src.Kinds(), 0)
	for {
		_, n, done, err := src.Next(b)
		check(err)
		if done {
			break
		}
		for i := 0; i < n; i++ {
			row := b.GetRow(i)
			fmt.Printf("  account %3d → %d\n", row[0].Int64(), row[1].Int64())
		}
	}
}

func balanceAt(t *txn.Txn, rid int64) int64 {
	src, err := t.Scan([]int{1}, 64)
	check(err)
	b := vec.NewBatch(src.Kinds(), 0)
	var at int64
	for {
		start, n, done, err := src.Next(b)
		check(err)
		if done {
			break
		}
		for i := 0; i < n; i++ {
			if start+int64(i) == rid {
				return b.GetRow(i)[0].Int64()
			}
		}
		at += int64(n)
	}
	log.Fatalf("rid %d not found", rid)
	return 0
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
