package txn

import (
	"errors"
	"testing"

	"vectorwise/internal/colstore"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

func newStore(t *testing.T, rows int) *Store {
	t.Helper()
	schema := types.NewSchema(types.Col("id", types.Int64), types.Col("name", types.String))
	tab := colstore.NewTable(schema)
	ap := tab.NewAppender()
	for i := 0; i < rows; i++ {
		if err := ap.AppendRow([]types.Value{
			types.NewInt64(int64(i)),
			types.NewString("row" + string(rune('A'+i%26))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	return NewStore(tab)
}

func readIDs(t *testing.T, tx *Txn) []int64 {
	t.Helper()
	src, err := tx.Scan([]int{0}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b := vec.NewBatch(src.Kinds(), 0)
	var out []int64
	for {
		_, n, done, err := src.Next(b)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		for i := 0; i < n; i++ {
			out = append(out, b.Vecs[0].Get(b.RowIndex(i)).Int64())
		}
	}
	return out
}

func row2(id int64, name string) []types.Value {
	return []types.Value{types.NewInt64(id), types.NewString(name)}
}

func TestCommitVisibility(t *testing.T) {
	s := newStore(t, 5)
	t1 := s.Begin()
	if err := t1.InsertRow(row2(100, "new")); err != nil {
		t.Fatal(err)
	}
	if err := t1.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	// t1 sees its own writes.
	got := readIDs(t, t1)
	if len(got) != 5 || got[0] != 1 || got[4] != 100 {
		t.Fatalf("t1 view: %v", got)
	}
	// A concurrent reader does not.
	t2 := s.Begin()
	if got := readIDs(t, t2); len(got) != 5 || got[0] != 0 {
		t.Fatalf("t2 view before commit: %v", got)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// t2's snapshot still isolated.
	if got := readIDs(t, t2); got[0] != 0 {
		t.Fatalf("t2 snapshot broken: %v", got)
	}
	t2.Abort()
	// New txn sees the commit.
	t3 := s.Begin()
	defer t3.Abort()
	got = readIDs(t, t3)
	if len(got) != 5 || got[0] != 1 || got[4] != 100 {
		t.Fatalf("t3 view: %v", got)
	}
	if s.Rows() != 5 {
		t.Fatalf("store rows: %d", s.Rows())
	}
}

func TestAbortDiscards(t *testing.T) {
	s := newStore(t, 3)
	tx := s.Begin()
	tx.InsertRow(row2(99, "x"))
	tx.DeleteAt(0)
	tx.Abort()
	t2 := s.Begin()
	defer t2.Abort()
	if got := readIDs(t, t2); len(got) != 3 || got[0] != 0 {
		t.Fatalf("abort leaked: %v", got)
	}
	if err := tx.Commit(); !errors.Is(err, ErrClosed) {
		t.Fatal("commit after abort accepted")
	}
}

func TestUpdateAt(t *testing.T) {
	s := newStore(t, 4)
	tx := s.Begin()
	if err := tx.UpdateAt(2, 0, types.NewInt64(222)); err != nil {
		t.Fatal(err)
	}
	if got := readIDs(t, tx); got[2] != 222 {
		t.Fatalf("own update invisible: %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := s.Begin()
	defer t2.Abort()
	if got := readIDs(t, t2); got[2] != 222 {
		t.Fatalf("update lost: %v", got)
	}
}

func TestWriteWriteConflict(t *testing.T) {
	s := newStore(t, 10)
	t1 := s.Begin()
	t2 := s.Begin()
	if err := t1.UpdateAt(5, 0, types.NewInt64(-5)); err != nil {
		t.Fatal(err)
	}
	if err := t2.DeleteAt(5); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("expected conflict, got %v", err)
	}
}

func TestDisjointWritesNoConflict(t *testing.T) {
	s := newStore(t, 10)
	t1 := s.Begin()
	t2 := s.Begin()
	t1.UpdateAt(2, 0, types.NewInt64(-2))
	t2.UpdateAt(7, 0, types.NewInt64(-7))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("disjoint writes conflicted: %v", err)
	}
	t3 := s.Begin()
	defer t3.Abort()
	got := readIDs(t, t3)
	if got[2] != -2 || got[7] != -7 {
		t.Fatalf("merged commits: %v", got)
	}
}

func TestConcurrentInsertsMerge(t *testing.T) {
	s := newStore(t, 3)
	t1 := s.Begin()
	t2 := s.Begin()
	t1.InsertRow(row2(101, "a"))
	t2.InsertRow(row2(102, "b"))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("concurrent append conflicted: %v", err)
	}
	t3 := s.Begin()
	defer t3.Abort()
	got := readIDs(t, t3)
	if len(got) != 5 {
		t.Fatalf("rows: %v", got)
	}
	seen := map[int64]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if !seen[101] || !seen[102] {
		t.Fatalf("lost insert: %v", got)
	}
}

func TestTouchCommittedInsertConflictsOnlyWithIntervening(t *testing.T) {
	s := newStore(t, 3)
	// Commit an insert.
	t0 := s.Begin()
	t0.InsertRow(row2(50, "committed"))
	if err := t0.Commit(); err != nil {
		t.Fatal(err)
	}
	// Modify that inserted (non-stable) row with no intervening commits.
	t1 := s.Begin()
	if err := t1.UpdateAt(3, 0, types.NewInt64(51)); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatalf("non-stable touch without interleaving should commit: %v", err)
	}
	// Same pattern with an intervening commit must abort.
	t2 := s.Begin()
	if err := t2.UpdateAt(3, 0, types.NewInt64(52)); err != nil {
		t.Fatal(err)
	}
	t3 := s.Begin()
	t3.InsertRow(row2(60, "interloper"))
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("positional hazard not detected: %v", err)
	}
}

func TestCheckpoint(t *testing.T) {
	s := newStore(t, 8)
	tx := s.Begin()
	tx.DeleteAt(0)
	tx.UpdateAt(3, 1, types.NewString("patched"))
	tx.InsertRow(row2(900, "tail"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.PendingOps() == 0 {
		t.Fatal("no pending ops before checkpoint")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.PendingOps() != 0 {
		t.Fatal("ops survive checkpoint")
	}
	if s.Stable().Rows() != 8 {
		t.Fatalf("stable rows: %d", s.Stable().Rows())
	}
	t2 := s.Begin()
	defer t2.Abort()
	got := readIDs(t, t2)
	if len(got) != 8 || got[0] != 1 || got[7] != 900 {
		t.Fatalf("post-checkpoint image: %v", got)
	}
	// Empty checkpoint is a no-op.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotTooOld(t *testing.T) {
	s := newStore(t, 5)
	setup := s.Begin()
	setup.DeleteAt(4)
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin()
	tx.UpdateAt(1, 0, types.NewInt64(-1))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrSnapshotTooOld) {
		t.Fatalf("stale snapshot committed: %v", err)
	}
	// Readers spanning the checkpoint still see their snapshot.
	tr := s.Begin()
	defer tr.Abort()
	if got := readIDs(t, tr); len(got) != 4 {
		t.Fatalf("post-checkpoint reader: %v", got)
	}
}

func TestBoundsChecks(t *testing.T) {
	s := newStore(t, 2)
	tx := s.Begin()
	defer tx.Abort()
	if err := tx.DeleteAt(2); err == nil {
		t.Fatal("delete oob")
	}
	if err := tx.UpdateAt(-1, 0, types.NewInt64(0)); err == nil {
		t.Fatal("update oob")
	}
	if err := tx.UpdateAt(0, 9, types.NewInt64(0)); err == nil {
		t.Fatal("update col oob")
	}
	if err := tx.InsertRowAt(5, row2(1, "x")); err == nil {
		t.Fatal("insert oob")
	}
	if err := tx.InsertRowAt(0, row2(1, "x")); err != nil {
		t.Fatal(err)
	}
}

func TestScanProjectionWithDeltas(t *testing.T) {
	s := newStore(t, 6)
	tx := s.Begin()
	tx.UpdateAt(2, 1, types.NewString("zzz"))
	src, err := tx.Scan([]int{1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := vec.NewBatch(src.Kinds(), 0)
	var names []string
	for {
		_, n, done, err := src.Next(b)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		for i := 0; i < n; i++ {
			names = append(names, b.Vecs[0].Get(b.RowIndex(i)).Str)
		}
	}
	if len(names) != 6 || names[2] != "zzz" {
		t.Fatalf("projection with deltas: %v", names)
	}
	tx.Abort()
}

func TestReadOnlyCommit(t *testing.T) {
	s := newStore(t, 3)
	tx := s.Begin()
	readIDs(t, tx)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Read-only commits never conflict and don't bump the sequence.
	t1 := s.Begin()
	t2 := s.Begin()
	t1.UpdateAt(0, 0, types.NewInt64(9))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}
