// Package txn layers snapshot-isolation transactions over Positional Delta
// Trees, following the Vectorwise design the paper sketches ("Transactions
// in Vectorwise are based on Positional Delta Trees; implementing full
// transactional support ... was quite complicated"):
//
//   - the *stable* table (internal/colstore) is immutable,
//   - the shared *read-PDT* holds all committed deltas since the last
//     checkpoint,
//   - each transaction gets a snapshot (stable + read-PDT clone) plus a
//     private *write-PDT*; its own scans see stable ∘ snapshot ∘ write,
//   - commit validates positionally (first-committer-wins on stable rows)
//     and replays the write-PDT onto the shared read-PDT by stable SID,
//   - a checkpoint merges the read-PDT into a new stable table in the
//     background ("background update propagation").
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"vectorwise/internal/colstore"
	"vectorwise/internal/metrics"
	"vectorwise/internal/pdt"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
	"vectorwise/internal/wal"
)

// Transaction-layer instruments.
var (
	mCommits     = metrics.Default.Counter("txn_commits_total")
	mAborts      = metrics.Default.Counter("txn_aborts_total")
	mConflicts   = metrics.Default.Counter("txn_conflicts_total")
	mCheckpoints = metrics.Default.Counter("txn_checkpoints_total")
)

// ErrConflict is returned by Commit when a concurrent transaction committed
// a change to a stable row this transaction also deleted or modified.
var ErrConflict = errors.New("txn: write-write conflict")

// ErrSnapshotTooOld is returned by Commit when a checkpoint rewrote the
// stable table after this transaction's snapshot was taken.
var ErrSnapshotTooOld = errors.New("txn: snapshot predates a checkpoint")

// ErrClosed is returned when using a finished transaction.
var ErrClosed = errors.New("txn: transaction already committed or aborted")

// Store is one table's transactional state.
type Store struct {
	mu      sync.Mutex
	stable  *colstore.Table
	read    *pdt.PDT
	seq     int64 // commit sequence
	epoch   int64 // checkpoint epoch
	commits []commitRecord
	active  int

	// Durability hooks, nil for in-memory stores. log receives every commit
	// before it mutates the shared read-PDT (write-ahead); persist makes a
	// freshly checkpointed stable table durable before it is swapped in.
	log        *wal.WAL
	name       string // table name used in WAL records
	lastWalSeq uint64 // WAL seq of the latest commit applied to read-PDT
	persist    func(stable *colstore.Table, throughSeq uint64) error
}

type commitRecord struct {
	seq     int64
	touched map[int64]struct{} // stable SIDs deleted or modified
}

// NewStore wraps a stable table.
func NewStore(stable *colstore.Table) *Store {
	return &Store{stable: stable, read: pdt.New()}
}

// SetDurable attaches a write-ahead log and a checkpoint-persist hook.
// Commits append a logical record under name and block on the log's fsync
// before publishing; Checkpoint calls persist with the fresh stable table
// and the WAL sequence it covers, before swapping it in. Must be called
// before any transactions run.
func (s *Store) SetDurable(log *wal.WAL, name string, persist func(*colstore.Table, uint64) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log = log
	s.name = name
	s.persist = persist
}

// LastWalSeq returns the WAL sequence of the latest commit applied to the
// shared read-PDT (0 if none since open).
func (s *Store) LastWalSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastWalSeq
}

// ApplyRecovered replays one recovered WAL record onto the shared
// read-PDT during crash recovery, before any transactions run. Records
// must arrive in sequence order.
func (s *Store) ApplyRecovered(rec *wal.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := applyOps(s.read, rec.Ops); err != nil {
		return fmt.Errorf("txn: replaying wal record %d: %w", rec.Seq, err)
	}
	s.seq++
	s.lastWalSeq = rec.Seq
	return nil
}

// Stable returns the current stable table (tests, checkpointing tools).
func (s *Store) Stable() *colstore.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stable
}

// Schema returns the table's physical schema.
func (s *Store) Schema() *types.Schema { return s.Stable().Schema() }

// Rows returns the committed image row count.
func (s *Store) Rows() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.read.ImageRows(s.stable.Rows())
}

// PendingOps returns the committed-but-not-checkpointed delta count.
func (s *Store) PendingOps() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.read.Len()
}

// Txn is one transaction over a Store. Not safe for concurrent use by
// multiple goroutines (like a session).
type Txn struct {
	store      *Store
	snapSeq    int64
	snapEpoch  int64
	snapStable *colstore.Table
	snapRead   *pdt.PDT
	write      *pdt.PDT
	touched    map[int64]struct{} // stable SIDs deleted/modified
	insOnly    bool               // no del/mod of non-stable rows seen
	nonStable  bool               // touched a row inserted by another txn
	done       bool
}

// Begin starts a transaction with a snapshot of the current image.
func (s *Store) Begin() *Txn {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.active++
	return &Txn{
		store:      s,
		snapSeq:    s.seq,
		snapEpoch:  s.epoch,
		snapStable: s.stable,
		snapRead:   s.read.Clone(),
		write:      pdt.New(),
		touched:    make(map[int64]struct{}),
	}
}

// Rows returns the row count visible to this transaction.
func (t *Txn) Rows() int64 {
	return t.write.ImageRows(t.snapRead.ImageRows(t.snapStable.Rows()))
}

// StableSnapshot exposes the stable table this transaction reads (for
// delta-free fast paths such as partitioned parallel scans).
func (t *Txn) StableSnapshot() *colstore.Table { return t.snapStable }

// DeltaFree reports whether the snapshot image equals the stable table
// (no committed or private deltas) — the precondition for scanning the
// stable table directly.
func (t *Txn) DeltaFree() bool { return t.snapRead.Len() == 0 && t.write.Len() == 0 }

// Scan returns a positional batch source over the transaction's image:
// stable table merged with the snapshot read-PDT merged with the private
// write-PDT.
func (t *Txn) Scan(cols []int, vecSize int, filters ...colstore.RangeFilter) (pdt.BatchSource, error) {
	if t.done {
		return nil, ErrClosed
	}
	full := make([]int, t.snapStable.Schema().Len())
	for i := range full {
		full[i] = i
	}
	// When deltas exist we must scan all columns (merges materialize whole
	// rows) and block skipping must be disabled for correctness of
	// positions; with no deltas we can scan the projection directly.
	if t.snapRead.Len() == 0 && t.write.Len() == 0 {
		return t.snapStable.NewScanner(cols, vecSize, filters...)
	}
	sc, err := t.snapStable.NewScanner(full, vecSize)
	if err != nil {
		return nil, err
	}
	m1 := pdt.NewMerger(sc, t.snapRead)
	m2 := pdt.NewMerger(m1, t.write)
	return &projectSource{src: m2, cols: cols}, nil
}

// projectSource narrows a full-width source to a projection.
type projectSource struct {
	src  pdt.BatchSource
	cols []int
	out  vec.Batch
}

func (p *projectSource) Kinds() []types.Kind {
	all := p.src.Kinds()
	out := make([]types.Kind, len(p.cols))
	for i, c := range p.cols {
		out[i] = all[c]
	}
	return out
}

func (p *projectSource) Next(b *vec.Batch) (int64, int, bool, error) {
	if p.out.Vecs == nil {
		p.out = *vec.NewBatch(p.src.Kinds(), 0)
	}
	start, n, done, err := p.src.Next(&p.out)
	if err != nil || done {
		return start, n, done, err
	}
	vecs := b.Vecs[:0]
	for _, c := range p.cols {
		vecs = append(vecs, p.out.Vecs[c])
	}
	b.Vecs = vecs
	b.Sel = p.out.Sel
	b.ForceLen(p.out.Full())
	return start, n, false, nil
}

// InsertRow appends a row at the end of the transaction's image.
func (t *Txn) InsertRow(row []types.Value) error {
	if t.done {
		return ErrClosed
	}
	return t.write.InsertAt(t.Rows(), row)
}

// InsertRowAt inserts a row at an arbitrary image position.
func (t *Txn) InsertRowAt(rid int64, row []types.Value) error {
	if t.done {
		return ErrClosed
	}
	if rid < 0 || rid > t.Rows() {
		return fmt.Errorf("txn: insert position %d out of range [0,%d]", rid, t.Rows())
	}
	return t.write.InsertAt(rid, row)
}

// DeleteAt deletes the row at image position rid.
func (t *Txn) DeleteAt(rid int64) error {
	if t.done {
		return ErrClosed
	}
	if rid < 0 || rid >= t.Rows() {
		return fmt.Errorf("txn: delete position %d out of range [0,%d)", rid, t.Rows())
	}
	t.recordTouch(rid)
	return t.write.DeleteAt(rid)
}

// UpdateAt modifies one column of the row at image position rid.
func (t *Txn) UpdateAt(rid int64, col int, v types.Value) error {
	if t.done {
		return ErrClosed
	}
	if rid < 0 || rid >= t.Rows() {
		return fmt.Errorf("txn: update position %d out of range [0,%d)", rid, t.Rows())
	}
	if col < 0 || col >= t.snapStable.Schema().Len() {
		return fmt.Errorf("txn: column %d out of range", col)
	}
	t.recordTouch(rid)
	return t.write.ModifyAt(rid, col, v)
}

// recordTouch maps an image position to its stable SID for conflict
// validation. Rows not backed by stable storage (inserted by this txn or a
// concurrently committed one) are tracked via the nonStable flag.
func (t *Txn) recordTouch(rid int64) {
	snapPos, insertedByMe := t.write.Resolve(rid)
	if insertedByMe {
		return // own insert: no conflict possible
	}
	sid, insertedBelow := t.snapRead.Resolve(snapPos)
	if insertedBelow {
		t.nonStable = true // committed insert: positional rebase unsafe
		return
	}
	t.touched[sid] = struct{}{}
}

// Abort discards the transaction. Only transactions that buffered writes
// count as aborted — releasing a read-only snapshot is routine query
// teardown, not a rollback.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.store.mu.Lock()
	t.store.active--
	t.store.mu.Unlock()
	if t.write.Len() > 0 {
		mAborts.Inc()
	}
}

// Commit validates and publishes the transaction's writes.
func (t *Txn) Commit() error {
	if t.done {
		return ErrClosed
	}
	s := t.store
	s.mu.Lock()
	defer s.mu.Unlock()
	t.done = true
	s.active--
	if t.write.Len() == 0 {
		mCommits.Inc()
		return nil // read-only
	}
	if t.snapEpoch != s.epoch {
		return ErrSnapshotTooOld
	}
	intervening := s.seq > t.snapSeq
	if t.nonStable && intervening {
		// We touched a row that exists only in the read-PDT; concurrent
		// commits may have shifted it, so positional replay is unsafe.
		mConflicts.Inc()
		return ErrConflict
	}
	if intervening {
		for _, rec := range s.commits {
			if rec.seq <= t.snapSeq {
				continue
			}
			for sid := range t.touched {
				if _, clash := rec.touched[sid]; clash {
					mConflicts.Inc()
					return ErrConflict
				}
			}
		}
	}
	// Translate the write-PDT into the logical ops this commit applies to
	// the shared read-PDT. Positions in the write-PDT are relative to the
	// snapshot image; on the fast path (nothing moved since the snapshot)
	// positional replay is exact and preserves intra-anchor insert order,
	// otherwise each op is re-anchored at its stable SID (invariant under
	// concurrent commits). Validation happens here, BEFORE the WAL append:
	// only ops certain to apply may be logged.
	var ops []wal.Op
	if !intervening {
		ops = positionalOps(t.write)
	} else {
		var err error
		if ops, err = t.anchoredOps(); err != nil {
			mConflicts.Inc()
			return err
		}
	}
	// Write-ahead: the record must be durable before the read-PDT changes.
	// Holding s.mu here serializes this table's commits in WAL order;
	// commits to other tables still coalesce into shared fsyncs.
	if s.log != nil {
		seq, err := s.log.Append(s.name, ops)
		if err != nil {
			return fmt.Errorf("txn: wal append: %w", err)
		}
		s.lastWalSeq = seq
	}
	if err := applyOps(s.read, ops); err != nil {
		return err
	}
	s.seq++
	if len(t.touched) > 0 {
		s.commits = append(s.commits, commitRecord{seq: s.seq, touched: t.touched})
	}
	mCommits.Inc()
	return nil
}

// positionalOps flattens a write-PDT into positional wal ops, baking in the
// running shift pdt.Propagate would apply (an earlier insert moves later
// positions up, a delete down).
func positionalOps(write *pdt.PDT) []wal.Op {
	src := write.Ops()
	out := make([]wal.Op, 0, len(src))
	shift := int64(0)
	for _, op := range src {
		pos := op.SID + shift
		switch op.Kind {
		case pdt.OpIns:
			out = append(out, wal.Op{Kind: wal.OpInsert, Pos: pos, Row: op.Row})
			shift++
		case pdt.OpDel:
			out = append(out, wal.Op{Kind: wal.OpDelete, Pos: pos})
			shift--
		case pdt.OpMod:
			cols, vals := sortedMods(op.Mods)
			out = append(out, wal.Op{Kind: wal.OpModify, Pos: pos, ModCols: cols, ModVals: vals})
		}
	}
	return out
}

// anchoredOps re-anchors every write op at its stable SID, validating that
// each will apply cleanly to the current read-PDT (the conflict checks the
// old in-place replay did at application time, hoisted ahead of logging).
// Write-PDT op SIDs are snapshot-image positions already net of the txn's
// own inserts and deletes, so they resolve through the frozen snapRead
// directly — no running shift (unlike positional replay, which mutates its
// destination as it goes). Called only when no op touches non-stable rows.
func (t *Txn) anchoredOps() ([]wal.Op, error) {
	src := t.write.Ops()
	out := make([]wal.Op, 0, len(src))
	for _, op := range src {
		switch op.Kind {
		case pdt.OpIns:
			sid, _ := t.snapRead.Resolve(op.SID)
			out = append(out, wal.Op{Kind: wal.OpInsert, Anchored: true, Pos: sid, Row: op.Row})
		case pdt.OpDel:
			sid, inserted := t.snapRead.Resolve(op.SID)
			if inserted {
				return nil, ErrConflict // guarded by nonStable, defensive
			}
			if t.store.read.StableDeleted(sid) {
				return nil, fmt.Errorf("%w (stable row %d already deleted)", ErrConflict, sid)
			}
			out = append(out, wal.Op{Kind: wal.OpDelete, Anchored: true, Pos: sid})
		case pdt.OpMod:
			sid, inserted := t.snapRead.Resolve(op.SID)
			if inserted {
				return nil, ErrConflict
			}
			if t.store.read.StableDeleted(sid) {
				return nil, fmt.Errorf("%w (stable row %d is deleted)", ErrConflict, sid)
			}
			cols, vals := sortedMods(op.Mods)
			out = append(out, wal.Op{Kind: wal.OpModify, Anchored: true, Pos: sid, ModCols: cols, ModVals: vals})
		}
	}
	return out, nil
}

// sortedMods flattens a mod map into parallel slices ordered by column, so
// the WAL encoding of a commit is deterministic.
func sortedMods(mods map[int]types.Value) ([]int, []types.Value) {
	cols := make([]int, 0, len(mods))
	for c := range mods {
		cols = append(cols, c)
	}
	sort.Ints(cols)
	vals := make([]types.Value, len(cols))
	for i, c := range cols {
		vals[i] = mods[c]
	}
	return cols, vals
}

// applyOps replays a commit's logical ops onto a read-PDT — the single
// application path shared by live commits and crash recovery, so a
// replayed log reproduces the exact tree a crash destroyed. Positional ops
// go through the image-position APIs, anchored ops through the SID APIs.
func applyOps(dst *pdt.PDT, ops []wal.Op) error {
	for i := range ops {
		op := &ops[i]
		if op.Anchored {
			switch op.Kind {
			case wal.OpInsert:
				dst.InsertAtSID(op.Pos, op.Row)
			case wal.OpDelete:
				if err := dst.DeleteAtSID(op.Pos); err != nil {
					return fmt.Errorf("%w (%v)", ErrConflict, err)
				}
			case wal.OpModify:
				for j, c := range op.ModCols {
					if err := dst.ModifyAtSID(op.Pos, c, op.ModVals[j]); err != nil {
						return fmt.Errorf("%w (%v)", ErrConflict, err)
					}
				}
			}
			continue
		}
		switch op.Kind {
		case wal.OpInsert:
			if err := dst.InsertAt(op.Pos, op.Row); err != nil {
				return err
			}
		case wal.OpDelete:
			if err := dst.DeleteAt(op.Pos); err != nil {
				return err
			}
		case wal.OpModify:
			for j, c := range op.ModCols {
				if err := dst.ModifyAt(op.Pos, c, op.ModVals[j]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Checkpoint merges the committed read-PDT into a fresh stable table (the
// paper's background update propagation). Active transactions keep reading
// their snapshots; they fail with ErrSnapshotTooOld if they later try to
// commit writes.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	if s.read.Len() == 0 {
		s.mu.Unlock()
		return nil
	}
	stable := s.stable
	// Deep-copy the delta snapshot: commits arriving during the rebuild
	// mutate read-PDT nodes in place.
	ops := s.read.Clone().Ops()
	seqAtStart := s.seq
	s.mu.Unlock()

	// Rebuild outside the lock from an immutable snapshot.
	full := make([]int, stable.Schema().Len())
	for i := range full {
		full[i] = i
	}
	sc, err := stable.NewScanner(full, vec.DefaultSize)
	if err != nil {
		return err
	}
	merged := pdt.NewMergerOps(sc, ops)
	fresh := colstore.NewTable(stable.Schema())
	ap := fresh.NewAppender()
	b := vec.NewBatch(merged.Kinds(), 0)
	for {
		_, _, done, err := merged.Next(b)
		if err != nil {
			return err
		}
		if done {
			break
		}
		if err := ap.AppendBatch(b); err != nil {
			return err
		}
	}
	if err := ap.Close(); err != nil {
		return err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Commits that landed while we rebuilt would be lost; retry covers the
	// race. (Vectorwise overlaps these; we keep the simple retry variant.)
	if s.seq != seqAtStart {
		s.mu.Unlock()
		err := s.Checkpoint()
		s.mu.Lock()
		return err
	}
	// Make the fresh stable durable (file + manifest) before it becomes
	// visible: a crash after persist but before the swap recovers the old
	// generation plus the full WAL tail, a crash after it recovers the new
	// generation and skips the records it absorbed — both exact images.
	if s.persist != nil {
		if err := s.persist(fresh, s.lastWalSeq); err != nil {
			return fmt.Errorf("txn: persisting checkpoint: %w", err)
		}
	}
	s.stable = fresh
	s.read = pdt.New()
	s.epoch++
	s.commits = nil
	mCheckpoints.Inc()
	return nil
}
