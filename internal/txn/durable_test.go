package txn

import (
	"fmt"
	"strings"
	"testing"

	"vectorwise/internal/colstore"
	"vectorwise/internal/fsim"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
	"vectorwise/internal/wal"
)

// rowsOf materializes the full two-column image a transaction sees.
func rowsOf(t *testing.T, tx *Txn) string {
	t.Helper()
	src, err := tx.Scan([]int{0, 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b := vec.NewBatch(src.Kinds(), 0)
	var sb strings.Builder
	for {
		_, n, done, err := src.Next(b)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		for i := 0; i < n; i++ {
			r := b.RowIndex(i)
			fmt.Fprintf(&sb, "%d=%s;", b.Vecs[0].Get(r).Int64(), b.Vecs[1].Get(r).Str)
		}
	}
	return sb.String()
}

// A workload that exercises both commit paths: sequential commits (fast,
// positional) and commits with intervening concurrent commits (slow,
// SID-anchored). Replaying the WAL after a crash must reproduce the exact
// committed image.
func TestWALReplayReproducesImage(t *testing.T) {
	fs := fsim.NewMemFS()
	log, _, err := wal.Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	s := newStore(t, 6)
	s.SetDurable(log, "t", nil)

	// Fast path: inserts, a delete, a modify, each in its own txn.
	t1 := s.Begin()
	if err := t1.InsertRow(row2(100, "ins-tail")); err != nil {
		t.Fatal(err)
	}
	if err := t1.InsertRowAt(2, row2(101, "ins-mid")); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	t2 := s.Begin()
	if err := t2.DeleteAt(0); err != nil {
		t.Fatal(err)
	}
	if err := t2.UpdateAt(3, 1, types.NewString("modified")); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Slow path: t4 commits after t3 intervened, forcing SID re-anchoring.
	t3 := s.Begin()
	t4 := s.Begin()
	if err := t3.InsertRowAt(1, row2(200, "interloper")); err != nil {
		t.Fatal(err)
	}
	if err := t3.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t4.UpdateAt(5, 1, types.NewString("re-anchored")); err != nil {
		t.Fatal(err)
	}
	if err := t4.DeleteAt(4); err != nil {
		t.Fatal(err)
	}
	if err := t4.InsertRowAt(2, row2(201, "anchored-ins")); err != nil {
		t.Fatal(err)
	}
	if err := t4.Commit(); err != nil {
		t.Fatal(err)
	}

	check := s.Begin()
	want := rowsOf(t, check)
	check.Abort()
	if s.LastWalSeq() != 4 {
		t.Fatalf("LastWalSeq = %d", s.LastWalSeq())
	}
	log.Close()

	// Crash, recover: same stable table, WAL replay only.
	fs.Crash()
	_, res, err := wal.Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("recovered %d records", len(res.Records))
	}
	s2 := NewStore(s.Stable())
	for _, rec := range res.Records {
		if err := s2.ApplyRecovered(rec); err != nil {
			t.Fatal(err)
		}
	}
	if s2.LastWalSeq() != 4 {
		t.Fatalf("recovered LastWalSeq = %d", s2.LastWalSeq())
	}
	check2 := s2.Begin()
	got := rowsOf(t, check2)
	check2.Abort()
	if got != want {
		t.Fatalf("replayed image differs:\n got %s\nwant %s", got, want)
	}
}

// A failing WAL fsync must abort the commit without touching the shared
// read-PDT — the acknowledged image and the durable log stay in step.
func TestFailedWALAppendAbortsCommit(t *testing.T) {
	fs := fsim.NewMemFS()
	log, _, err := wal.Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	s := newStore(t, 3)
	s.SetDurable(log, "t", nil)
	fs.FailNextSync(fmt.Errorf("device gone"))
	tx := s.Begin()
	if err := tx.InsertRow(row2(9, "doomed")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit with failing WAL fsync succeeded")
	}
	if s.Rows() != 3 || s.PendingOps() != 0 {
		t.Fatalf("read-PDT mutated after failed append: rows=%d pending=%d", s.Rows(), s.PendingOps())
	}
}

// Checkpoint hands the fresh stable table and its WAL horizon to the
// persist hook before swapping it in; a persist failure leaves the old
// stable in place.
func TestCheckpointPersistHook(t *testing.T) {
	fs := fsim.NewMemFS()
	log, _, err := wal.Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	s := newStore(t, 4)
	var gotRows int64
	var gotSeq uint64
	s.SetDurable(log, "t", func(fresh *colstore.Table, through uint64) error {
		gotRows = fresh.Rows()
		gotSeq = through
		return nil
	})
	tx := s.Begin()
	tx.InsertRow(row2(50, "new"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if gotRows != 5 || gotSeq != 1 {
		t.Fatalf("persist got rows=%d seq=%d", gotRows, gotSeq)
	}

	// Failure path: the swap must not happen.
	tx2 := s.Begin()
	tx2.InsertRow(row2(51, "more"))
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	old := s.Stable()
	s.SetDurable(log, "t", func(*colstore.Table, uint64) error {
		return fmt.Errorf("disk full")
	})
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint with failing persist succeeded")
	}
	if s.Stable() != old || s.PendingOps() == 0 {
		t.Fatal("failed persist still swapped the stable table")
	}
}
