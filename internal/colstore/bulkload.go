package colstore

import (
	"container/heap"
	"fmt"
	"sort"

	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// Clustered bulk loading: rows stream through an external sort-merge
// straight into finished row groups. Incoming rows buffer into runs of
// bounded size; each full run is sorted and "spilled" into a compressed
// run table (same codecs as stable storage, so the uncompressed working
// set stays one run no matter the load size). Close k-way merges the runs
// through the table's appender, producing row groups whose min/max
// summaries are tight and disjoint by construction — which is exactly what
// keeps the table's clustered markers set and makes zone-map pruning
// near-perfect.

// DefaultRunRows bounds the uncompressed sort buffer: four row groups of
// boxed values per run before it is compressed away.
const DefaultRunRows = 4 * BlockRows

// SortKey names one physical column of the load order. Descending keys
// sort correctly but leave the column's blocks descending, which clears
// its clustered marker — per-group skip checks still prune, only the
// binary-searched interval needs ascending order.
type SortKey struct {
	Col  int
	Desc bool
}

// BulkLoader accumulates rows and writes them sorted into t on Close.
// Append takes ownership of the row slices it is given. Not safe for
// concurrent use.
type BulkLoader struct {
	t       *Table
	keys    []SortKey
	runRows int
	buf     [][]types.Value
	runs    []*Table
	total   int64
}

// NewBulkLoader prepares a clustered load of t ordered by keys. runRows
// bounds the in-memory run size (<= 0 selects DefaultRunRows). The target
// table must be empty: the loader defines the table's physical order, it
// does not interleave with existing groups.
func (t *Table) NewBulkLoader(keys []SortKey, runRows int) (*BulkLoader, error) {
	if t.Rows() != 0 {
		return nil, fmt.Errorf("colstore: bulk load target must be empty")
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("colstore: bulk load needs at least one sort key")
	}
	for _, k := range keys {
		if k.Col < 0 || k.Col >= len(t.cols) {
			return nil, fmt.Errorf("colstore: sort key column %d out of range", k.Col)
		}
	}
	if runRows <= 0 {
		runRows = DefaultRunRows
	}
	return &BulkLoader{t: t, keys: keys, runRows: runRows}, nil
}

// Append adds one physical row (ownership transfers to the loader).
func (l *BulkLoader) Append(row []types.Value) error {
	if len(row) != len(l.t.cols) {
		return fmt.Errorf("colstore: row has %d values, table has %d columns", len(row), len(l.t.cols))
	}
	l.buf = append(l.buf, row)
	l.total++
	if len(l.buf) >= l.runRows {
		return l.spill()
	}
	return nil
}

// Rows reports how many rows the loader has accepted so far.
func (l *BulkLoader) Rows() int64 { return l.total }

// less orders two rows by the sort keys (stable input order breaks ties
// via the caller's sort.SliceStable / heap run index).
func (l *BulkLoader) less(a, b []types.Value) bool {
	for _, k := range l.keys {
		c := types.Compare(a[k.Col], b[k.Col])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}

// spill sorts the buffered rows and compresses them into a run table.
func (l *BulkLoader) spill() error {
	if len(l.buf) == 0 {
		return nil
	}
	sort.SliceStable(l.buf, func(i, j int) bool { return l.less(l.buf[i], l.buf[j]) })
	run := NewTable(l.t.schema)
	ap := run.NewAppender()
	for _, row := range l.buf {
		if err := ap.AppendRow(row); err != nil {
			return err
		}
	}
	if err := ap.Close(); err != nil {
		return err
	}
	l.runs = append(l.runs, run)
	l.buf = nil
	return nil
}

// Close sorts and merges everything accepted so far into the target table.
// The loader must not be reused afterwards.
func (l *BulkLoader) Close() error {
	// Single-run loads (the common small case) skip the merge entirely.
	if len(l.runs) == 0 {
		sort.SliceStable(l.buf, func(i, j int) bool { return l.less(l.buf[i], l.buf[j]) })
		ap := l.t.NewAppender()
		for _, row := range l.buf {
			if err := ap.AppendRow(row); err != nil {
				return err
			}
		}
		l.buf = nil
		return ap.Close()
	}
	if err := l.spill(); err != nil {
		return err
	}
	return l.merge()
}

// runCursor streams one sorted run row-at-a-time for the merge. The
// current row is boxed once per advance, not per heap comparison.
type runCursor struct {
	id   int
	sc   *Scanner
	b    *vec.Batch
	pos  int
	rows int
	cur  []types.Value
}

func (c *runCursor) row() []types.Value { return c.cur }

// advance moves to the next row, refilling from the scanner; reports
// whether a row is available.
func (c *runCursor) advance() (bool, error) {
	c.pos++
	if c.pos >= c.rows {
		_, n, done, err := c.sc.Next(c.b)
		if err != nil || done {
			return false, err
		}
		c.pos, c.rows = 0, n
	}
	c.cur = c.b.GetRow(c.pos)
	return true, nil
}

// runHeap orders cursors by their current row (ties by run id, so equal
// keys come out in arrival order and the merge is stable).
type runHeap struct {
	cur  []*runCursor
	less func(a, b []types.Value) bool
}

func (h *runHeap) Len() int { return len(h.cur) }
func (h *runHeap) Less(i, j int) bool {
	a, b := h.cur[i], h.cur[j]
	if h.less(a.row(), b.row()) {
		return true
	}
	if h.less(b.row(), a.row()) {
		return false
	}
	return a.id < b.id
}
func (h *runHeap) Swap(i, j int) { h.cur[i], h.cur[j] = h.cur[j], h.cur[i] }
func (h *runHeap) Push(x any)    { h.cur = append(h.cur, x.(*runCursor)) }
func (h *runHeap) Pop() any {
	x := h.cur[len(h.cur)-1]
	h.cur = h.cur[:len(h.cur)-1]
	return x
}

// merge k-way merges the sorted runs into the target appender.
func (l *BulkLoader) merge() error {
	all := make([]int, len(l.t.cols))
	for i := range all {
		all[i] = i
	}
	h := &runHeap{less: l.less}
	for id, run := range l.runs {
		sc, err := run.NewScanner(all, vec.DefaultSize)
		if err != nil {
			return err
		}
		c := &runCursor{id: id, sc: sc, b: vec.NewBatch(sc.Kinds(), vec.DefaultSize), pos: -1}
		ok, err := c.advance()
		if err != nil {
			return err
		}
		if ok {
			h.cur = append(h.cur, c)
		}
	}
	heap.Init(h)
	ap := l.t.NewAppender()
	for h.Len() > 0 {
		c := h.cur[0]
		if err := ap.AppendRow(c.row()); err != nil {
			return err
		}
		ok, err := c.advance()
		if err != nil {
			return err
		}
		if ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	l.runs = nil
	return ap.Close()
}
