package colstore

import (
	"context"
	"reflect"
	"testing"

	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// tableSource serves EncodeGroup payloads straight off the table — the
// identity BlockSource, counting fetches.
type tableSource struct {
	t       *Table
	fetches int
}

func (s *tableSource) FetchGroup(ctx context.Context, g int) ([]byte, error) {
	s.fetches++
	return s.t.EncodeGroup(g)
}

func TestEncodeDecodeGroupRoundTrip(t *testing.T) {
	tab := fillTable(t, 20000)
	for g := 0; g < tab.NumBlocks(); g++ {
		payload, err := tab.EncodeGroup(g)
		if err != nil {
			t.Fatal(err)
		}
		cols, err := DecodeGroupPayloads(payload, len(tab.cols))
		if err != nil {
			t.Fatal(err)
		}
		for c := range tab.cols {
			if !reflect.DeepEqual(cols[c], tab.cols[c].Blocks[g].Data) {
				t.Fatalf("group %d column %d bytes differ", g, c)
			}
		}
	}
	if _, err := tab.EncodeGroup(tab.NumBlocks()); err == nil {
		t.Fatal("out-of-range group accepted")
	}
	if _, err := DecodeGroupPayloads([]byte{0xff}, 2); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// A scan routed through a BlockSource must produce exactly what the direct
// scan produces — the seam changes where bytes come from, never the rows.
func TestScanThroughBlockSourceIdentical(t *testing.T) {
	const rows = 40000
	tab := fillTable(t, rows)
	cols := []int{0, 2, 3}
	want, wantStarts, _ := scanAll(t, tab, cols, 1024)

	sc, err := tab.NewScanner(cols, 1024)
	if err != nil {
		t.Fatal(err)
	}
	src := &tableSource{t: tab}
	sc.SetBlockSource(context.Background(), src)
	got := vec.NewBatch(sc.Kinds(), 0)
	acc := vec.NewBatch(sc.Kinds(), 0)
	var starts []int64
	total := 0
	for {
		start, n, done, err := sc.Next(got)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		starts = append(starts, start)
		total += n
		for i := range acc.Vecs {
			acc.Vecs[i].AppendVector(got.Vecs[i])
		}
	}
	acc.SetLen(total)
	if total != rows {
		t.Fatalf("scanned %d rows, want %d", total, rows)
	}
	if !reflect.DeepEqual(starts, wantStarts) {
		t.Fatal("start positions differ")
	}
	for i := range want.Vecs {
		if !reflect.DeepEqual(vecValues(want.Vecs[i], rows), vecValues(acc.Vecs[i], rows)) {
			t.Fatalf("column %d differs through block source", i)
		}
	}
	if src.fetches != tab.NumBlocks() {
		t.Fatalf("fetched %d groups, want %d", src.fetches, tab.NumBlocks())
	}
}

// SeekGroupData delivers a group's payload out of band (the cooperative
// path): no FetchGroup call, same rows.
func TestSeekGroupDataServesDeliveredPayload(t *testing.T) {
	tab := fillTable(t, 40000)
	cols := []int{0, 1, 5}
	sc, err := tab.NewMorselScanner(cols, 512)
	if err != nil {
		t.Fatal(err)
	}
	src := &tableSource{t: tab}
	sc.SetBlockSource(context.Background(), src)
	b := vec.NewBatch(sc.Kinds(), 0)
	seen := int64(0)
	// Deliver groups in reverse — the cooperative order is arbitrary.
	for g := tab.NumBlocks() - 1; g >= 0; g-- {
		payload, err := tab.EncodeGroup(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.SeekGroupData(g, payload); err != nil {
			t.Fatal(err)
		}
		for {
			start, n, done, err := sc.Next(b)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
			for k := 0; k < n; k++ {
				if b.Vecs[0].I64[k] != start+int64(k) {
					t.Fatalf("id at %d = %d", start+int64(k), b.Vecs[0].I64[k])
				}
			}
			seen += int64(n)
		}
	}
	if seen != tab.Rows() {
		t.Fatalf("saw %d rows, want %d", seen, tab.Rows())
	}
	if src.fetches != 0 {
		t.Fatalf("scanner fetched %d groups despite delivered payloads", src.fetches)
	}
}

func vecValues(v *vec.Vector, n int) []types.Value {
	out := make([]types.Value, n)
	for i := 0; i < n; i++ {
		out[i] = v.Get(i)
	}
	return out
}
