package colstore

import (
	"testing"

	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// A morsel scanner starts empty and serves exactly the sought row group per
// SeekGroup, with row bases matching the group's global position — even
// when groups are visited out of order.
func TestMorselScannerSeekGroup(t *testing.T) {
	rows := 2*BlockRows + 777 // 3 groups, last one partial
	tab := fillTable(t, rows)
	sc, err := tab.NewMorselScanner([]int{0}, 512)
	if err != nil {
		t.Fatal(err)
	}
	if sc.NumGroups() != 3 {
		t.Fatalf("groups = %d", sc.NumGroups())
	}
	b := vec.NewBatch(sc.Kinds(), 512)
	// Before any seek, the scanner is exhausted (no assigned morsel).
	if _, _, done, err := sc.Next(b); err != nil || !done {
		t.Fatalf("fresh morsel scanner served rows (done=%v, err=%v)", done, err)
	}
	groupRows := func(g int) (first, count int64) {
		sc.SeekGroup(g)
		first = -1
		for {
			start, n, done, err := sc.Next(b)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				return first, count
			}
			if first < 0 {
				first = start
				if b.Vecs[0].I64[0] != start {
					t.Fatalf("group %d: id %d at row base %d", g, b.Vecs[0].I64[0], start)
				}
			}
			count += int64(n)
		}
	}
	// Visit out of order: 2, 0, 1 — like a stealing worker would.
	for _, tc := range []struct {
		g            int
		first, count int64
	}{
		{2, 2 * BlockRows, 777},
		{0, 0, BlockRows},
		{1, BlockRows, BlockRows},
	} {
		first, count := groupRows(tc.g)
		if first != tc.first || count != tc.count {
			t.Fatalf("group %d: first=%d count=%d, want first=%d count=%d",
				tc.g, first, count, tc.first, tc.count)
		}
	}
	// Draining a group leaves the scanner exhausted until the next seek.
	if _, _, done, _ := sc.Next(b); !done {
		t.Fatal("scanner kept serving past its morsel")
	}
}

// SeekGroup respects block-skipping filters: a sought group outside the
// filter range yields no rows but counts toward the skip statistics.
func TestMorselScannerSeekGroupWithFilters(t *testing.T) {
	rows := 3 * BlockRows
	tab := fillTable(t, rows)
	lo := types.NewInt64(int64(BlockRows + 5))
	hi := types.NewInt64(int64(BlockRows + 104))
	sc, err := tab.NewMorselScanner([]int{0}, 512, RangeFilter{Col: 0, Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	b := vec.NewBatch(sc.Kinds(), 512)
	total := 0
	for g := 0; g < sc.NumGroups(); g++ {
		sc.SeekGroup(g)
		for {
			_, n, done, err := sc.Next(b)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
			total += n
		}
	}
	// Only group 1 overlaps [lo, hi]; it must flow whole (residual Select
	// upstream trims it), groups 0 and 2 are skipped.
	if total != BlockRows {
		t.Fatalf("filtered morsel scan saw %d rows, want %d", total, BlockRows)
	}
	if sc.SkippedGroups() != 2 || sc.TotalGroups() != 3 {
		t.Fatalf("skip stats = %d/%d, want 2/3", sc.SkippedGroups(), sc.TotalGroups())
	}
}
