package colstore

import (
	"context"
	"fmt"

	"vectorwise/internal/metrics"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// Scan instrumentation: group-level counters cost one atomic add per row
// group (16K rows), not per vector.
var (
	mGroupsScanned = metrics.Default.Counter("colstore_groups_scanned_total")
	mGroupsSkipped = metrics.Default.Counter("colstore_groups_skipped_total")
	mBytesDecoded  = metrics.Default.Counter("colstore_bytes_decompressed_total")
	mBytesSkipped  = metrics.Default.Counter("colstore_bytes_skipped_total")
	mRowsScanned   = metrics.Default.Counter("colstore_rows_scanned_total")
)

// Scanner reads a projection of a table vector-at-a-time, in row order,
// decoding each row group once and slicing vectors out of it. Min/max block
// skipping prunes row groups that cannot satisfy the provided range
// filters — the sparse-index benefit of the PAX/DSM layout.
type Scanner struct {
	t       *Table
	cols    []int
	vecSize int
	filters []RangeFilter

	// Snapshot of the block lists (appends after creation are invisible).
	blocks    [][]Block
	clustered []bool
	nGroups   int

	group     int // current row group
	limit     int // first group past the scan window (exclusive)
	offset    int // row offset within the group
	seekBase  int // SeekGroup offset: morsel g maps to group seekBase+g
	rowBase   int64
	prefix    []int64       // per-group starting SIDs (built on first SeekGroup)
	decoded   []*vec.Vector // decoded vectors per projected column
	loaded    bool
	skipped   int
	total     int // row groups this scanner covers (its partition)
	skipBytes int64

	// When src is set, group bytes come through the buffer manager instead
	// of the block snapshot; pending holds the current group's per-column
	// payloads (delivered out of band via SeekGroupData, or fetched lazily).
	src     BlockSource
	srcCtx  context.Context
	pending [][]byte
}

// RangeFilter restricts a column to [Lo, Hi] (inclusive; either may be nil
// to leave that side open). Used only for block skipping — exact filtering
// remains the Select operator's job.
type RangeFilter struct {
	Col    int
	Lo, Hi *types.Value
}

// NewScannerPart creates a scanner over one of `parts` contiguous row-group
// partitions — the unit the rewriter's parallelizer splits scans into.
func (t *Table) NewScannerPart(cols []int, vecSize, part, parts int, filters ...RangeFilter) (*Scanner, error) {
	s, err := t.newScanner(cols, vecSize, filters...)
	if err != nil {
		return nil, err
	}
	if parts <= 1 {
		s.applyClusteredWindow()
		return s, nil
	}
	lo := s.nGroups * part / parts
	hi := s.nGroups * (part + 1) / parts
	var base int64
	for g := 0; g < lo; g++ {
		base += int64(s.groupRows(g))
	}
	s.group = lo
	s.rowBase = base
	s.limit = hi
	s.total = hi - lo
	return s, nil
}

// NewMorselScanner creates a scanner that starts exhausted: it serves one
// row-group morsel at a time via SeekGroup, reusing its decode buffers
// across seeks. This is the run-time granule of the morsel-driven parallel
// scan — workers pull group numbers from a shared queue and reposition.
func (t *Table) NewMorselScanner(cols []int, vecSize int, filters ...RangeFilter) (*Scanner, error) {
	// No clustered-window narrowing here: the morsel *source* computes the
	// window once, offers only its groups as morsels, and accounts the
	// pruned groups once — per-worker narrowing would multiply-count them.
	s, err := t.newScanner(cols, vecSize, filters...)
	if err != nil {
		return nil, err
	}
	s.limit = 0
	s.total = 0
	return s, nil
}

// NumGroups reports the number of row groups in the scanner's snapshot —
// the morsels SeekGroup accepts.
func (s *Scanner) NumGroups() int { return s.nGroups }

// SeekGroup repositions the scanner to serve exactly row group g (it must
// be < NumGroups); subsequent Next calls drain that group and report done.
// Each seek adds one group to the TotalGroups denominator, so per-worker
// skip accounting stays exact under morsel dispatch.
func (s *Scanner) SeekGroup(g int) {
	g += s.seekBase
	if s.prefix == nil {
		s.prefix = make([]int64, s.nGroups+1)
		for i := 0; i < s.nGroups; i++ {
			s.prefix[i+1] = s.prefix[i] + int64(s.groupRows(i))
		}
	}
	s.group = g
	s.limit = g + 1
	s.offset = 0
	s.loaded = false
	s.pending = nil
	s.rowBase = s.prefix[g]
	s.total++
}

// SetSeekBase offsets every subsequent SeekGroup by base. Morsel sources
// that prune to a clustered group window hand workers morsel numbers
// [0, window); the base maps them back onto absolute row groups.
func (s *Scanner) SetSeekBase(base int) { s.seekBase = base }

// SetBlockSource routes group reads through src (a buffer-manager pool or a
// cooperative scan). ctx bounds the fetches the scanner issues itself.
func (s *Scanner) SetBlockSource(ctx context.Context, src BlockSource) {
	s.src = src
	s.srcCtx = ctx
}

// SeekGroupData repositions to group g with its payload already in hand —
// the cooperative path, where the ABM decides which group arrives next and
// hands the scanner its bytes directly.
func (s *Scanner) SeekGroupData(g int, payload []byte) error {
	s.SeekGroup(g)
	cols, err := DecodeGroupPayloads(payload, len(s.blocks))
	if err != nil {
		return err
	}
	s.pending = cols
	return nil
}

// NewScanner creates a scanner over the given column indexes with batches
// of vecSize rows. When a filter column is clustered, the scan window is
// immediately narrowed to the matching group interval.
func (t *Table) NewScanner(cols []int, vecSize int, filters ...RangeFilter) (*Scanner, error) {
	s, err := t.newScanner(cols, vecSize, filters...)
	if err != nil {
		return nil, err
	}
	s.applyClusteredWindow()
	return s, nil
}

func (t *Table) newScanner(cols []int, vecSize int, filters ...RangeFilter) (*Scanner, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, c := range cols {
		if c < 0 || c >= len(t.cols) {
			return nil, fmt.Errorf("colstore: column %d out of range", c)
		}
	}
	for _, f := range filters {
		if f.Col < 0 || f.Col >= len(t.cols) {
			return nil, fmt.Errorf("colstore: filter column %d out of range", f.Col)
		}
	}
	if vecSize <= 0 {
		vecSize = vec.DefaultSize
	}
	s := &Scanner{t: t, cols: cols, vecSize: vecSize, filters: filters}
	s.blocks = make([][]Block, len(t.cols))
	for i := range t.cols {
		s.blocks[i] = t.cols[i].Blocks
	}
	s.clustered = append([]bool(nil), t.clustered...)
	if len(t.cols) > 0 {
		s.nGroups = len(t.cols[0].Blocks)
	}
	s.limit = s.nGroups
	s.total = s.nGroups
	s.decoded = make([]*vec.Vector, len(cols))
	for i, c := range cols {
		s.decoded[i] = vec.New(t.cols[c].Type.Kind, BlockRows)
	}
	return s, nil
}

// applyClusteredWindow narrows the serial scan window to the contiguous
// group interval a clustered range filter allows — binary search over the
// ordered zone maps instead of a per-group check. Derived from the
// scanner's own snapshot, so compile-time planning never has to be right
// about run-time storage. Pruned groups count as skipped.
func (s *Scanner) applyClusteredWindow() {
	if len(s.filters) == 0 || s.nGroups == 0 {
		return
	}
	lo, hi := clusteredWindow(s.blocks, s.clustered, s.filters, s.nGroups)
	if lo == 0 && hi == s.nGroups {
		return
	}
	var base int64
	for g := 0; g < lo; g++ {
		base += int64(s.groupRows(g))
	}
	pruned := lo + (s.nGroups - hi)
	var bytes int64
	for g := 0; g < s.nGroups; g++ {
		if g < lo || g >= hi {
			bytes += s.groupBytes(g)
		}
	}
	s.group, s.limit, s.rowBase = lo, hi, base
	s.skipped += pruned
	s.skipBytes += bytes
	mGroupsSkipped.Add(int64(pruned))
	mBytesSkipped.Add(bytes)
}

// groupBytes is the encoded size of group g's projected columns — the
// physical bytes a skip avoids decoding.
func (s *Scanner) groupBytes(g int) int64 {
	var n int64
	for _, c := range s.cols {
		n += int64(len(s.blocks[c][g].Data))
	}
	return n
}

// Kinds returns the vector kinds the scanner produces, in projection order.
func (s *Scanner) Kinds() []types.Kind {
	out := make([]types.Kind, len(s.cols))
	for i, c := range s.cols {
		out[i] = s.t.cols[c].Type.Kind
	}
	return out
}

// SkippedGroups reports how many row groups block skipping pruned so far.
func (s *Scanner) SkippedGroups() int { return s.skipped }

// SkippedBytes reports the encoded bytes of the projected columns in the
// pruned groups — the physical I/O and decompression skipping saved.
func (s *Scanner) SkippedBytes() int64 { return s.skipBytes }

// TotalGroups reports how many row groups this scanner's partition covers,
// skipped or not — the denominator of the "skipped=N/M groups" profile line.
func (s *Scanner) TotalGroups() int { return s.total }

// Next fills b with up to vecSize rows and returns the global position
// (SID) of the first row, or done=true at end of table. The batch's vectors
// are owned by the scanner and valid until the next call.
func (s *Scanner) Next(b *vec.Batch) (start int64, n int, done bool, err error) {
	for {
		if s.group >= s.limit {
			return 0, 0, true, nil
		}
		gRows := s.groupRows(s.group)
		if s.offset == 0 && !s.loaded {
			if s.skipGroup(s.group) {
				bytes := s.groupBytes(s.group)
				s.rowBase += int64(gRows)
				s.group++
				s.skipped++
				s.skipBytes += bytes
				mGroupsSkipped.Inc()
				mBytesSkipped.Add(bytes)
				continue
			}
			if s.src != nil && s.pending == nil && len(s.cols) > 0 {
				payload, err := s.src.FetchGroup(s.srcCtx, s.group)
				if err != nil {
					return 0, 0, false, err
				}
				cols, err := DecodeGroupPayloads(payload, len(s.blocks))
				if err != nil {
					return 0, 0, false, err
				}
				s.pending = cols
			}
			var decoded int64
			for i, c := range s.cols {
				blk := &s.blocks[c][s.group]
				if s.pending != nil {
					// Same metadata, buffer-manager bytes: the snapshot still
					// supplies the row count, the payload the encoded data.
					blk = &Block{Rows: blk.Rows, Codec: blk.Codec, Data: s.pending[c]}
				}
				if err := decodeBlock(s.t.cols[c].Type.Kind, blk, s.decoded[i]); err != nil {
					return 0, 0, false, err
				}
				decoded += int64(len(blk.Data))
			}
			mGroupsScanned.Inc()
			mBytesDecoded.Add(decoded)
			mRowsScanned.Add(int64(gRows))
			s.loaded = true
		}
		n = s.vecSize
		if rem := gRows - s.offset; n > rem {
			n = rem
		}
		start = s.rowBase + int64(s.offset)
		// Slice decoded vectors into the caller's batch without copying.
		for i := range s.cols {
			src := s.decoded[i]
			dstV := b.Vecs[i]
			sliceInto(dstV, src, s.offset, n)
		}
		b.Sel = nil
		b.SetLen(n)
		s.offset += n
		if s.offset >= gRows {
			s.group++
			s.offset = 0
			s.loaded = false
			s.pending = nil
			s.rowBase += int64(gRows)
		}
		return start, n, false, nil
	}
}

func (s *Scanner) groupRows(g int) int {
	if len(s.cols) > 0 {
		return s.blocks[s.cols[0]][g].Rows
	}
	if len(s.blocks) > 0 {
		return s.blocks[0][g].Rows
	}
	return 0
}

// skipGroup applies the range filters to the group's min/max summaries.
func (s *Scanner) skipGroup(g int) bool {
	for _, f := range s.filters {
		blk := &s.blocks[f.Col][g]
		if f.Lo != nil && types.Compare(blk.Max, *f.Lo) < 0 {
			return true
		}
		if f.Hi != nil && types.Compare(blk.Min, *f.Hi) > 0 {
			return true
		}
	}
	return false
}

// sliceInto points dst at a window of src's storage (zero-copy).
func sliceInto(dst, src *vec.Vector, off, n int) {
	dst.Kind = src.Kind
	switch src.Kind {
	case types.KindBool:
		dst.Bool = src.Bool[off : off+n]
	case types.KindInt32, types.KindDate:
		dst.I32 = src.I32[off : off+n]
	case types.KindInt64:
		dst.I64 = src.I64[off : off+n]
	case types.KindFloat64:
		dst.F64 = src.F64[off : off+n]
	case types.KindString:
		dst.Str = src.Str[off : off+n]
	}
	dst.SetLen(n)
}
