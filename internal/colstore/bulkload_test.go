package colstore

import (
	"path/filepath"
	"testing"

	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

func kvSchema() *types.Schema {
	return types.NewSchema(
		types.Col("k", types.Int64),
		types.Col("v", types.Float64),
	)
}

func iptr(v int64) *types.Value {
	x := types.NewInt64(v)
	return &x
}

// loadClustered bulk-loads rows with k = reverse order through the loader,
// forcing an external multi-run merge when runRows < rows.
func loadClustered(t *testing.T, rows, runRows int) *Table {
	t.Helper()
	tab := NewTable(kvSchema())
	l, err := tab.NewBulkLoader([]SortKey{{Col: 0}}, runRows)
	if err != nil {
		t.Fatal(err)
	}
	for i := rows - 1; i >= 0; i-- {
		if err := l.Append([]types.Value{
			types.NewInt64(int64(i)),
			types.NewFloat64(float64(i) * 0.5),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return tab
}

func assertSortedClustered(t *testing.T, tab *Table, rows int) {
	t.Helper()
	if got := tab.Rows(); got != int64(rows) {
		t.Fatalf("rows = %d, want %d", got, rows)
	}
	if !tab.Clustered(0) {
		t.Fatal("sort column not marked clustered")
	}
	sc, err := tab.NewScanner([]int{0, 1}, vec.DefaultSize)
	if err != nil {
		t.Fatal(err)
	}
	b := vec.NewBatch(sc.Kinds(), vec.DefaultSize)
	next := int64(0)
	for {
		_, n, done, err := sc.Next(b)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		for i := 0; i < n; i++ {
			if b.Vecs[0].I64[i] != next {
				t.Fatalf("row %d: k = %d, want %d (not sorted or lost rows)", next, b.Vecs[0].I64[i], next)
			}
			if b.Vecs[1].F64[i] != float64(next)*0.5 {
				t.Fatalf("row %d: v = %v (payload detached from key)", next, b.Vecs[1].F64[i])
			}
			next++
		}
	}
	if next != int64(rows) {
		t.Fatalf("scanned %d rows, want %d", next, rows)
	}
}

func TestBulkLoaderSingleRun(t *testing.T) {
	rows := BlockRows + 100 // 2 groups, one run
	tab := loadClustered(t, rows, DefaultRunRows)
	assertSortedClustered(t, tab, rows)
}

func TestBulkLoaderExternalMerge(t *testing.T) {
	rows := 3 * BlockRows
	tab := loadClustered(t, rows, 1000) // ~50 runs k-way merged
	assertSortedClustered(t, tab, rows)
	if n := tab.NumBlocks(); n != 3 {
		t.Fatalf("merged table spans %d groups, want 3", n)
	}
}

func TestBulkLoaderDescendingClearsMarker(t *testing.T) {
	tab := NewTable(kvSchema())
	l, err := tab.NewBulkLoader([]SortKey{{Col: 0, Desc: true}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows := 2 * BlockRows
	for i := 0; i < rows; i++ {
		if err := l.Append([]types.Value{types.NewInt64(int64(i)), types.NewFloat64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Blocks are descending: ascending binary search does not apply, so the
	// marker must be off; per-group skip checks still work.
	if tab.Clustered(0) {
		t.Fatal("descending load left the ascending-clustered marker set")
	}
}

func TestBulkLoaderGuards(t *testing.T) {
	tab := NewTable(kvSchema())
	if _, err := tab.NewBulkLoader(nil, 0); err == nil {
		t.Fatal("no sort keys accepted")
	}
	if _, err := tab.NewBulkLoader([]SortKey{{Col: 5}}, 0); err == nil {
		t.Fatal("out-of-range key accepted")
	}
	ap := tab.NewAppender()
	if err := ap.AppendRow([]types.Value{types.NewInt64(1), types.NewFloat64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.NewBulkLoader([]SortKey{{Col: 0}}, 0); err == nil {
		t.Fatal("non-empty target accepted")
	}
}

func TestClusteredWindowBinarySearchEdges(t *testing.T) {
	rows := 4 * BlockRows
	tab := loadClustered(t, rows, DefaultRunRows)
	cases := []struct {
		lo, hi         *types.Value
		wantLo, wantHi int
	}{
		{nil, nil, 0, 4},
		{iptr(0), iptr(int64(rows - 1)), 0, 4},
		{iptr(0), iptr(0), 0, 1},                                         // first row only
		{iptr(int64(rows - 1)), nil, 3, 4},                               // last row only
		{iptr(int64(BlockRows)), iptr(int64(BlockRows)), 1, 2},           // exact group start
		{iptr(int64(BlockRows - 1)), iptr(int64(BlockRows)), 0, 2},       // straddles a boundary
		{iptr(int64(rows)), nil, 4, 4},                                   // above the data: empty window
		{nil, iptr(-1), 0, 0},                                            // below the data: empty window
		{iptr(int64(2 * BlockRows)), iptr(int64(3*BlockRows - 1)), 2, 3}, // one interior group
	}
	for i, c := range cases {
		lo, hi := tab.ClusteredWindow([]RangeFilter{{Col: 0, Lo: c.lo, Hi: c.hi}})
		if lo != c.wantLo || hi != c.wantHi {
			t.Fatalf("case %d: window = [%d,%d), want [%d,%d)", i, lo, hi, c.wantLo, c.wantHi)
		}
	}
	// A filter on an unclustered column contributes nothing. (In the loaded
	// table v is correlated with k, so build one where it is not: k
	// ascending, v oscillating across groups.)
	osc := NewTable(kvSchema())
	ap := osc.NewAppender()
	for i := 0; i < 2*BlockRows; i++ {
		if err := ap.AppendRow([]types.Value{
			types.NewInt64(int64(i)),
			types.NewFloat64(float64(i % 10)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	if osc.Clustered(1) {
		t.Fatal("oscillating column marked clustered")
	}
	fp := types.NewFloat64(3)
	lo, hi := osc.ClusteredWindow([]RangeFilter{{Col: 1, Lo: &fp, Hi: &fp}})
	if lo != 0 || hi != 2 {
		t.Fatalf("unclustered filter narrowed the window to [%d,%d)", lo, hi)
	}
}

func TestAppendOutOfOrderClearsMarker(t *testing.T) {
	rows := 2 * BlockRows
	tab := loadClustered(t, rows, DefaultRunRows)
	if !tab.Clustered(0) {
		t.Fatal("precondition: loaded table clustered")
	}
	// Appending a group whose min falls below the previous max breaks the
	// ordering invariant; the marker must clear incrementally.
	ap := tab.NewAppender()
	for i := 0; i < BlockRows; i++ {
		if err := ap.AppendRow([]types.Value{types.NewInt64(0), types.NewFloat64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	if tab.Clustered(0) {
		t.Fatal("out-of-order append left the clustered marker set")
	}
	// And the window degrades to the full table, never a wrong interval.
	lo, hi := tab.ClusteredWindow([]RangeFilter{{Col: 0, Lo: iptr(5), Hi: iptr(5)}})
	if lo != 0 || hi != tab.NumBlocks() {
		t.Fatalf("unclustered window = [%d,%d), want full table", lo, hi)
	}
}

func TestPersistRoundTripKeepsClusteredMarkers(t *testing.T) {
	rows := 2 * BlockRows
	tab := loadClustered(t, rows, 1000)
	path := filepath.Join(t.TempDir(), "t.vwt")
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Clustered(0) {
		t.Fatal("clustered marker lost across save/load")
	}
	assertSortedClustered(t, loaded, rows)
}
