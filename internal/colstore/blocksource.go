package colstore

import (
	"context"
	"encoding/binary"
	"fmt"
)

// BlockSource supplies the raw compressed bytes of one row group — all
// columns, framed by EncodeGroup. It is the seam between the scanner and the
// buffer manager: a Scanner given a BlockSource pulls group payloads through
// it (an LRU pool, or a cooperative ABM shared with sibling scans) instead
// of reading the table's block list directly.
type BlockSource interface {
	FetchGroup(ctx context.Context, g int) ([]byte, error)
}

// EncodeGroup frames row group g as one payload: for each column in table
// order, a uvarint length followed by the block's compressed bytes. Only the
// data travels — block metadata (row count, codec kind is embedded in the
// data, min/max) stays in the scanner's snapshot, so a payload plus the
// snapshot is enough to decode.
func (t *Table) EncodeGroup(g int) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.cols) == 0 || g < 0 || g >= len(t.cols[0].Blocks) {
		return nil, fmt.Errorf("colstore: row group %d out of range", g)
	}
	size := 0
	for c := range t.cols {
		size += binary.MaxVarintLen64 + len(t.cols[c].Blocks[g].Data)
	}
	out := make([]byte, 0, size)
	var hdr [binary.MaxVarintLen64]byte
	for c := range t.cols {
		d := t.cols[c].Blocks[g].Data
		out = append(out, hdr[:binary.PutUvarint(hdr[:], uint64(len(d)))]...)
		out = append(out, d...)
	}
	return out, nil
}

// DecodeGroupPayloads splits an EncodeGroup payload back into per-column
// compressed blocks. The returned slices alias data (zero-copy).
func DecodeGroupPayloads(data []byte, ncols int) ([][]byte, error) {
	out := make([][]byte, ncols)
	for c := 0; c < ncols; c++ {
		n, w := binary.Uvarint(data)
		if w <= 0 || uint64(len(data)-w) < n {
			return nil, fmt.Errorf("colstore: truncated group payload at column %d", c)
		}
		out[c] = data[w : w+int(n)]
		data = data[w+int(n):]
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("colstore: %d trailing bytes in group payload", len(data))
	}
	return out, nil
}
