// Package colstore implements the compressed columnar table storage of the
// Vectorwise kernel: append-only columns chopped into fixed-size row groups
// ("blocks"), each block compressed with an adaptively chosen codec
// (PFOR / PFOR-DELTA / RLE / PDICT) and carrying min/max summaries for
// block skipping. All columns share row-group boundaries, giving the
// PAX-like property that one row group is a self-contained horizontal
// partition of vertical slices — the "hybrid PAX/DSM" storage of the paper.
//
// Tables here are *stable* storage: immutable once written except for
// appends of whole new row groups. Updates and deletes never touch blocks;
// they live in Positional Delta Trees (internal/pdt) until a checkpoint
// rewrites the table — exactly the paper's PDT-based transaction design.
package colstore

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"vectorwise/internal/compress"
	"vectorwise/internal/metrics"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// Append instrumentation: one atomic add per flushed row group, mirroring
// the scan-side counters in scan.go.
var (
	mRowsAppended  = metrics.Default.Counter("colstore_rows_appended_total")
	mGroupsFlushed = metrics.Default.Counter("colstore_groups_flushed_total")
)

// BlockRows is the number of rows per row group. Large enough for the
// codecs to find structure, small enough for effective min/max skipping.
const BlockRows = 16384

// Block is one compressed column slice plus its summary.
type Block struct {
	Rows  int
	Codec compress.Codec
	Data  []byte
	// Min/Max are value summaries for skipping; meaningful for all kinds
	// (string bounds enable prefix-range skipping too).
	Min, Max types.Value
}

// Column is a sequence of blocks of one physical column.
type Column struct {
	Type   types.T
	Blocks []Block
}

// Table is a columnar table: parallel columns with shared row-group
// boundaries.
type Table struct {
	mu     sync.RWMutex
	schema *types.Schema
	cols   []Column
	rows   int64
	// clustered[c] records that column c's blocks are ascending and
	// non-overlapping (prev.Max <= next.Min), i.e. its zone maps form an
	// ordered index: a range predicate prunes to a contiguous group
	// interval found by binary search. Vacuously true on an empty table;
	// maintained incrementally on every flush, so only order-preserving
	// loads (the clustered bulk loader, or accidentally sorted appends)
	// keep it.
	clustered []bool
}

// NewTable creates an empty table with the given physical schema. NULLable
// logical columns must already be decomposed by the caller into a value
// column and a BOOL indicator column (claim C6).
func NewTable(schema *types.Schema) *Table {
	t := &Table{schema: schema.Clone(), cols: make([]Column, schema.Len()),
		clustered: make([]bool, schema.Len())}
	for i, c := range schema.Cols {
		t.cols[i].Type = c.Type
		t.clustered[i] = true
	}
	return t
}

// Schema returns the table's physical schema.
func (t *Table) Schema() *types.Schema { return t.schema }

// Rows returns the current stable row count.
func (t *Table) Rows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// NumBlocks returns the number of row groups.
func (t *Table) NumBlocks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.cols) == 0 {
		return 0
	}
	return len(t.cols[0].Blocks)
}

// BlockMeta returns the (rows, codec) of column col's block b, for
// introspection and tests.
func (t *Table) BlockMeta(col, b int) (int, compress.Codec) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	blk := &t.cols[col].Blocks[b]
	return blk.Rows, blk.Codec
}

// ColumnSummary folds one column's per-block min/max summaries into table-
// wide bounds. The optimizer uses them to tighten scan cardinality
// estimates when ANALYZE histograms are absent.
func (t *Table) ColumnSummary(col int) (min, max types.Value, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if col < 0 || col >= len(t.cols) || len(t.cols[col].Blocks) == 0 {
		return types.Value{}, types.Value{}, false
	}
	blocks := t.cols[col].Blocks
	min, max = blocks[0].Min, blocks[0].Max
	for i := 1; i < len(blocks); i++ {
		if types.Compare(blocks[i].Min, min) < 0 {
			min = blocks[i].Min
		}
		if types.Compare(blocks[i].Max, max) > 0 {
			max = blocks[i].Max
		}
	}
	return min, max, true
}

// Clustered reports whether column col's blocks are ordered and
// non-overlapping, so its zone maps support interval pruning.
func (t *Table) Clustered(col int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return col >= 0 && col < len(t.clustered) && t.clustered[col]
}

// RefreshClustered recomputes every column's clustered marker from the
// block summaries — used after loading legacy files that predate the
// persisted marker, and by tests.
func (t *Table) RefreshClustered() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for c := range t.cols {
		t.clustered[c] = blocksOrdered(t.cols[c].Blocks)
	}
}

func blocksOrdered(blocks []Block) bool {
	for i := 1; i < len(blocks); i++ {
		if types.Compare(blocks[i].Min, blocks[i-1].Max) < 0 {
			return false
		}
	}
	return true
}

// ClusteredWindow intersects the filters' bounds against every clustered
// column's ordered zone maps, returning the contiguous row-group interval
// [lo, hi) that can contain matching rows. Filters on unclustered columns
// contribute nothing (their groups interleave); with no clustered filter
// the window is the whole table. hi == lo means no group can match.
func (t *Table) ClusteredWindow(filters []RangeFilter) (lo, hi int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	blocks := make([][]Block, len(t.cols))
	for i := range t.cols {
		blocks[i] = t.cols[i].Blocks
	}
	n := 0
	if len(t.cols) > 0 {
		n = len(t.cols[0].Blocks)
	}
	return clusteredWindow(blocks, t.clustered, filters, n)
}

// clusteredWindow is the snapshot-friendly core of ClusteredWindow: binary
// search over ordered per-group summaries instead of a per-group check.
// Clustering makes Min and Max non-decreasing across groups, so both
// predicates below are monotone.
func clusteredWindow(blocks [][]Block, clustered []bool, filters []RangeFilter, n int) (lo, hi int) {
	lo, hi = 0, n
	for _, f := range filters {
		if f.Col < 0 || f.Col >= len(clustered) || !clustered[f.Col] {
			continue
		}
		col := blocks[f.Col]
		if f.Lo != nil {
			// First group whose Max reaches the lower bound.
			g := sort.Search(n, func(g int) bool {
				return types.Compare(col[g].Max, *f.Lo) >= 0
			})
			if g > lo {
				lo = g
			}
		}
		if f.Hi != nil {
			// First group whose Min exceeds the upper bound.
			g := sort.Search(n, func(g int) bool {
				return types.Compare(col[g].Min, *f.Hi) > 0
			})
			if g < hi {
				hi = g
			}
		}
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// AccountWindowPrune records the groups outside [lo, hi) as skipped in the
// scan metrics (groups and encoded bytes of the projected columns). Morsel
// sources that narrow the offered group set call this once per scan —
// worker scanners never even see the pruned groups.
func (t *Table) AccountWindowPrune(cols []int, lo, hi int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	if len(t.cols) > 0 {
		n = len(t.cols[0].Blocks)
	}
	pruned := lo + (n - hi)
	if pruned <= 0 {
		return
	}
	var bytes int64
	for _, c := range cols {
		for g := 0; g < lo; g++ {
			bytes += int64(len(t.cols[c].Blocks[g].Data))
		}
		for g := hi; g < n; g++ {
			bytes += int64(len(t.cols[c].Blocks[g].Data))
		}
	}
	mGroupsSkipped.Add(int64(pruned))
	mBytesSkipped.Add(bytes)
}

// CompressedBytes totals the encoded size of all blocks (experiment E3's
// ratio numerator).
func (t *Table) CompressedBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for i := range t.cols {
		for j := range t.cols[i].Blocks {
			n += int64(len(t.cols[i].Blocks[j].Data))
		}
	}
	return n
}

// Appender buffers rows and flushes full row groups into the table.
type Appender struct {
	t   *Table
	buf *vec.Batch
}

// NewAppender creates an appender for t.
func (t *Table) NewAppender() *Appender {
	return &Appender{t: t, buf: vec.NewBatchFromSchema(t.schema, BlockRows)}
}

// AppendBatch adds all (selected) rows of b.
func (a *Appender) AppendBatch(b *vec.Batch) error {
	if len(b.Vecs) != len(a.t.cols) {
		return fmt.Errorf("colstore: batch has %d columns, table has %d", len(b.Vecs), len(a.t.cols))
	}
	n := b.Rows()
	for r := 0; r < n; r++ {
		p := b.RowIndex(r)
		row := a.buf.Full()
		for c, v := range b.Vecs {
			a.buf.Vecs[c].Set(row, v.Get(p))
		}
		a.buf.SetLen(row + 1)
		if a.buf.Full() == BlockRows {
			if err := a.Flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// AppendRow adds one boxed row (slow path: INSERT statements, loaders).
func (a *Appender) AppendRow(row []types.Value) error {
	if len(row) != len(a.t.cols) {
		return fmt.Errorf("colstore: row has %d values, table has %d columns", len(row), len(a.t.cols))
	}
	r := a.buf.Full()
	for c, v := range row {
		a.buf.Vecs[c].Set(r, v)
	}
	a.buf.SetLen(r + 1)
	if a.buf.Full() == BlockRows {
		return a.Flush()
	}
	return nil
}

// Flush writes the buffered rows as a (possibly partial) row group. Called
// automatically at block boundaries and by Close.
func (a *Appender) Flush() error {
	n := a.buf.Full()
	if n == 0 {
		return nil
	}
	t := a.t
	t.mu.Lock()
	defer t.mu.Unlock()
	for c := range t.cols {
		blk, err := encodeBlock(t.cols[c].Type.Kind, a.buf.Vecs[c], n)
		if err != nil {
			return err
		}
		if prev := t.cols[c].Blocks; len(prev) > 0 && t.clustered[c] &&
			types.Compare(blk.Min, prev[len(prev)-1].Max) < 0 {
			t.clustered[c] = false
		}
		t.cols[c].Blocks = append(t.cols[c].Blocks, blk)
	}
	t.rows += int64(n)
	mRowsAppended.Add(int64(n))
	mGroupsFlushed.Inc()
	a.buf.Reset()
	return nil
}

// Close flushes any partial row group.
func (a *Appender) Close() error { return a.Flush() }

// encodeBlock compresses n leading values of v.
func encodeBlock(kind types.Kind, v *vec.Vector, n int) (Block, error) {
	blk := Block{Rows: n}
	switch kind {
	case types.KindInt32, types.KindDate:
		tmp := make([]int64, n)
		for i := 0; i < n; i++ {
			tmp[i] = int64(v.I32[i])
		}
		blk.Data, blk.Codec = compress.ChooseInt64(nil, tmp)
		lo, hi := minMaxI64(tmp)
		blk.Min, blk.Max = mkIntVal(kind, lo), mkIntVal(kind, hi)
	case types.KindInt64:
		tmp := v.I64[:n]
		blk.Data, blk.Codec = compress.ChooseInt64(nil, tmp)
		lo, hi := minMaxI64(tmp)
		blk.Min, blk.Max = types.NewInt64(lo), types.NewInt64(hi)
	case types.KindFloat64:
		tmp := make([]int64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		hasNaN := false
		for i := 0; i < n; i++ {
			f := v.F64[i]
			tmp[i] = int64(math.Float64bits(f))
			if math.IsNaN(f) {
				hasNaN = true
				continue
			}
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		if hasNaN {
			// NaN is unordered, so it can never widen lo/hi through the
			// comparisons above; an all-NaN block would summarize as
			// Min=+Inf, Max=-Inf and be wrongly pruned by skipGroup. Widen
			// the summary to ±Inf so NaN-carrying blocks are never skipped.
			lo, hi = math.Inf(-1), math.Inf(1)
		}
		blk.Data, blk.Codec = compress.ChooseInt64(nil, tmp)
		blk.Min, blk.Max = types.NewFloat64(lo), types.NewFloat64(hi)
	case types.KindBool:
		tmp := make([]int64, n)
		anyT, anyF := false, false
		for i := 0; i < n; i++ {
			if v.Bool[i] {
				tmp[i] = 1
				anyT = true
			} else {
				anyF = true
			}
		}
		blk.Data, blk.Codec = compress.ChooseInt64(nil, tmp)
		blk.Min, blk.Max = types.NewBool(!anyF), types.NewBool(anyT)
	case types.KindString:
		tmp := v.Str[:n]
		blk.Data, blk.Codec = compress.ChooseString(nil, tmp)
		lo, hi := tmp[0], tmp[0]
		for _, s := range tmp {
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		blk.Min, blk.Max = types.NewString(lo), types.NewString(hi)
	default:
		return Block{}, fmt.Errorf("colstore: cannot store kind %v", kind)
	}
	return blk, nil
}

func mkIntVal(kind types.Kind, v int64) types.Value {
	if kind == types.KindDate {
		return types.NewDate(int32(v))
	}
	return types.NewInt32(int32(v))
}

func minMaxI64(vals []int64) (int64, int64) {
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// decodeBlock decompresses a block into dst (reusing its storage).
func decodeBlock(kind types.Kind, blk *Block, dst *vec.Vector) error {
	dst.Grow(blk.Rows)
	dst.SetLen(blk.Rows)
	switch kind {
	case types.KindInt32, types.KindDate:
		tmp, _, err := compress.DecodeInt64(nil, blk.Data)
		if err != nil {
			return err
		}
		for i, v := range tmp {
			dst.I32[i] = int32(v)
		}
	case types.KindInt64:
		got, _, err := compress.DecodeInt64(dst.I64[:0], blk.Data)
		if err != nil {
			return err
		}
		if len(got) > 0 && len(dst.I64) > 0 && &got[0] != &dst.I64[0] {
			copy(dst.I64, got)
		}
	case types.KindFloat64:
		tmp, _, err := compress.DecodeInt64(nil, blk.Data)
		if err != nil {
			return err
		}
		for i, v := range tmp {
			dst.F64[i] = math.Float64frombits(uint64(v))
		}
	case types.KindBool:
		tmp, _, err := compress.DecodeInt64(nil, blk.Data)
		if err != nil {
			return err
		}
		for i, v := range tmp {
			dst.Bool[i] = v != 0
		}
	case types.KindString:
		got, _, err := compress.DecodeString(dst.Str[:0], blk.Data)
		if err != nil {
			return err
		}
		if len(got) > 0 && len(dst.Str) > 0 && &got[0] != &dst.Str[0] {
			copy(dst.Str, got)
		}
	default:
		return fmt.Errorf("colstore: cannot decode kind %v", kind)
	}
	return nil
}
