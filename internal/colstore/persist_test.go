package colstore

import (
	"bytes"
	"errors"
	"strconv"
	"strings"
	"testing"

	"vectorwise/internal/fsim"
)

// saveToMem persists tab into a MemFS and returns the durable bytes.
func saveToMem(t *testing.T, tab *Table) (*fsim.MemFS, []byte) {
	t.Helper()
	fs := fsim.NewMemFS()
	if err := tab.SaveFS(fs, "t.vwt"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("t.vwt")
	if err != nil {
		t.Fatal(err)
	}
	return fs, data
}

func TestSaveLoadMemFS(t *testing.T) {
	tab := fillTable(t, BlockRows+100)
	fs, data := saveToMem(t, tab)
	if string(data[:4]) != "VWT3" {
		t.Fatalf("magic %q", data[:4])
	}
	// Save goes through tmp+rename with a sync in between, so a crash right
	// after Save loses nothing.
	fs.Crash()
	got, err := LoadFS(fs, "t.vwt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != tab.Rows() {
		t.Fatalf("rows %d != %d", got.Rows(), tab.Rows())
	}
	acc, _, _ := scanAll(t, got, []int{0, 3}, 1024)
	if acc.Full() != int(tab.Rows()) || acc.Vecs[1].Str[1] != "RAIL" {
		t.Fatal("loaded content")
	}
}

// Truncation anywhere inside the file is reported as ErrCorrupt with the
// offset and the section being decoded — never a bare io.EOF, never a panic.
func TestLoadTruncatedIsCorrupt(t *testing.T) {
	tab := fillTable(t, BlockRows+100)
	_, data := saveToMem(t, tab)
	// Sample a spread of cut points (every byte is too slow at this size).
	cuts := []int{0, 1, 3, 4, 5, 10, 20, 40, 60, 100, len(data) / 4, len(data) / 2, len(data) - 5, len(data) - 1}
	for _, cut := range cuts {
		fs := fsim.NewMemFS()
		fs.SetDurable("t.vwt", data[:cut])
		_, err := LoadFS(fs, "t.vwt")
		if err == nil {
			t.Fatalf("cut %d: truncated file loaded", cut)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: not ErrCorrupt: %v", cut, err)
		}
		msg := err.Error()
		if cut >= 4 && !strings.Contains(msg, "offset") {
			t.Fatalf("cut %d: no offset in %q", cut, msg)
		}
	}
}

// A flipped bit in any row group's section fails the load with an error
// naming that exact column and group.
func TestLoadBitFlipNamesColumnAndGroup(t *testing.T) {
	tab := fillTable(t, BlockRows*2) // two full groups per column
	_, data := saveToMem(t, tab)

	// Walk the file once to learn where each (column, group) section starts.
	type span struct {
		col        string
		group      int
		start, end int64
	}
	fs := fsim.NewMemFS()
	fs.SetDurable("t.vwt", data)
	clean, err := LoadFS(fs, "t.vwt")
	if err != nil {
		t.Fatal(err)
	}
	// Rather than re-parse offsets, flip one byte inside each group's Data
	// payload: locate it with a search for the block's encoded bytes.
	var spans []span
	searchFrom := 0
	for ci, col := range clean.cols {
		name := clean.schema.Cols[ci].Name
		for gi := range col.Blocks {
			blk := &col.Blocks[gi]
			idx := indexFrom(data, blk.Data, searchFrom)
			if idx < 0 {
				t.Fatalf("column %q group %d data not found in file", name, gi)
			}
			spans = append(spans, span{col: name, group: gi, start: int64(idx), end: int64(idx + len(blk.Data))})
			searchFrom = idx + len(blk.Data)
		}
	}

	for _, sp := range spans {
		off := sp.start + (sp.end-sp.start)/2
		cfs := fsim.NewMemFS()
		cfs.SetDurable("t.vwt", data)
		if err := cfs.FlipBit("t.vwt", off); err != nil {
			t.Fatal(err)
		}
		_, err := LoadFS(cfs, "t.vwt")
		if err == nil {
			t.Fatalf("column %q group %d: bit flip at %d not detected", sp.col, sp.group, off)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("column %q group %d: not ErrCorrupt: %v", sp.col, sp.group, err)
		}
		msg := err.Error()
		wantCol := `column "` + sp.col + `"`
		wantGrp := "group " + strconv.Itoa(sp.group)
		if !strings.Contains(msg, wantCol) || !strings.Contains(msg, wantGrp) {
			t.Fatalf("column %q group %d: error does not name the group: %q", sp.col, sp.group, msg)
		}
	}
}

// Flipping a checksum byte itself (the 4 bytes after a group's data) is
// also caught as a mismatch for that group.
func TestLoadFlippedChecksumByte(t *testing.T) {
	tab := fillTable(t, 100)
	_, data := saveToMem(t, tab)
	firstData := tab.cols[0].Blocks[0].Data
	idx := indexFrom(data, firstData, 0)
	if idx < 0 {
		t.Fatal("block data not found")
	}
	fs := fsim.NewMemFS()
	fs.SetDurable("t.vwt", data)
	if err := fs.FlipBit("t.vwt", int64(idx+len(firstData))); err != nil { // first CRC byte
		t.Fatal(err)
	}
	_, err := LoadFS(fs, "t.vwt")
	if err == nil || !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("flipped CRC byte: %v", err)
	}
}

// Legacy checksum-less formats still load: a VWT2 image is a VWT3 file
// minus the per-group CRCs, with the magic swapped.
func TestLoadLegacyVWT2(t *testing.T) {
	tab := fillTable(t, 500)
	_, v3 := saveToMem(t, tab)

	// Reconstruct the VWT2 image by stripping each group's trailing CRC.
	v2 := []byte("VWT2")
	pos := 4
	// Header: everything up to the first column's first block is CRC-free.
	// Find it via the first block's data slice.
	var crcOffsets []int
	searchFrom := 0
	for _, col := range tab.cols {
		for gi := range col.Blocks {
			idx := indexFrom(v3, col.Blocks[gi].Data, searchFrom)
			if idx < 0 {
				t.Fatalf("group %d data not found", gi)
			}
			end := idx + len(col.Blocks[gi].Data)
			crcOffsets = append(crcOffsets, end)
			searchFrom = end + 4
		}
	}
	for _, co := range crcOffsets {
		v2 = append(v2, v3[pos:co]...)
		pos = co + 4 // skip the 4 CRC bytes
	}
	v2 = append(v2, v3[pos:]...)

	fs := fsim.NewMemFS()
	fs.SetDurable("legacy.vwt", v2)
	got, err := LoadFS(fs, "legacy.vwt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 500 {
		t.Fatalf("rows %d", got.Rows())
	}
	acc, _, _ := scanAll(t, got, []int{0, 5}, 256)
	if acc.Full() != 500 || acc.Vecs[0].I64[499] != 499 {
		t.Fatal("legacy content")
	}
}

func TestLoadBadMagic(t *testing.T) {
	fs := fsim.NewMemFS()
	fs.SetDurable("x.vwt", []byte("NOPE-and-some-trailing-data"))
	_, err := LoadFS(fs, "x.vwt")
	if err == nil || !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad magic: %v", err)
	}
}

// indexFrom is bytes.Index constrained to start at from, so repeated block
// payloads (identical data across groups) resolve to distinct offsets.
func indexFrom(haystack, needle []byte, from int) int {
	if from > len(haystack) {
		return -1
	}
	i := bytes.Index(haystack[from:], needle)
	if i < 0 {
		return -1
	}
	return from + i
}
