package colstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"vectorwise/internal/compress"
	"vectorwise/internal/fsim"
	"vectorwise/internal/metrics"
	"vectorwise/internal/types"
)

// On-disk format (one file per table):
//
//	magic "VWT3"
//	uvarint ncols | per column: name, kind byte, nullable byte
//	per column: clustered byte (VWT2+)
//	uvarint rows
//	per column: uvarint nblocks | per block:
//	    uvarint rows, codec byte, min value, max value,
//	    uvarint len(data), data bytes,
//	    u32le CRC32C over the block section above (VWT3 only)
//
// Values are encoded as kind byte + kind-specific payload. The format is
// self-contained and versioned by the magic string. VWT2 added the
// per-column clustered markers, VWT3 the per-row-group checksums; VWT1 and
// VWT2 files still load (checksum-less, markers re-derived for VWT1).
//
// The CRC covers each (column, row-group) section independently, so a bit
// flip is pinned to an exact column and group at open time instead of
// surfacing as a garbled scan result later.

var (
	magic   = []byte("VWT3")
	magicV2 = []byte("VWT2")
	magicV1 = []byte("VWT1")
)

// ErrCorrupt tags load failures caused by the file's *content* — truncated
// mid-structure, failed checksum, nonsense values — as opposed to I/O
// errors from the environment. Callers branch on it with errors.Is to
// decide between "quarantine the table" and "retry the read".
var ErrCorrupt = errors.New("colstore: corrupt table file")

var mChecksumFailures = metrics.Default.Counter("colstore_checksum_failures_total")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Save writes the table to path atomically (temp file + rename) on the
// real file system.
func (t *Table) Save(path string) error { return t.SaveFS(fsim.OS, path) }

// SaveFS writes the table to path atomically through an fsim seam: temp
// file, fsync, rename. The rename publishes the new file only after its
// bytes are durable.
func (t *Table) SaveFS(fs fsim.FS, path string) error {
	tmp := path + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	cleanup := func() {
		f.Close()
		fs.Remove(tmp)
	}
	if err := t.write(w); err != nil {
		cleanup()
		return err
	}
	if err := w.Flush(); err != nil {
		cleanup()
		return err
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return err
	}
	return fs.Rename(tmp, path)
}

// crcWriter forwards to w, accumulating a CRC32C over everything written
// while armed. Write errors are sticky and surface at the next call.
type crcWriter struct {
	w     io.Writer
	crc   uint32
	armed bool
	err   error
}

func (c *crcWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	if c.armed {
		c.crc = crc32.Update(c.crc, castagnoli, p)
	}
	n, err := c.w.Write(p)
	c.err = err
	return n, err
}

func (c *crcWriter) arm() { c.armed, c.crc = true, 0 }
func (c *crcWriter) disarm() uint32 {
	c.armed = false
	return c.crc
}

func (t *Table) write(w io.Writer) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	cw := &crcWriter{w: w}
	if _, err := cw.Write(magic); err != nil {
		return err
	}
	writeUvarint(cw, uint64(len(t.schema.Cols)))
	for _, c := range t.schema.Cols {
		writeString(cw, c.Name)
		writeByte(cw, byte(c.Type.Kind))
		nb := byte(0)
		if c.Type.Nullable {
			nb = 1
		}
		writeByte(cw, nb)
	}
	for _, cl := range t.clustered {
		cb := byte(0)
		if cl {
			cb = 1
		}
		writeByte(cw, cb)
	}
	writeUvarint(cw, uint64(t.rows))
	var crcBuf [4]byte
	for i := range t.cols {
		col := &t.cols[i]
		writeUvarint(cw, uint64(len(col.Blocks)))
		for j := range col.Blocks {
			blk := &col.Blocks[j]
			cw.arm()
			writeUvarint(cw, uint64(blk.Rows))
			writeByte(cw, byte(blk.Codec))
			writeValue(cw, blk.Min)
			writeValue(cw, blk.Max)
			writeUvarint(cw, uint64(len(blk.Data)))
			cw.Write(blk.Data)
			sum := cw.disarm()
			binary.LittleEndian.PutUint32(crcBuf[:], sum)
			if _, err := cw.Write(crcBuf[:]); err != nil {
				return err
			}
		}
	}
	return cw.err
}

// fileReader wraps a buffered reader with a consumed-byte offset (for
// corruption diagnostics) and an optional running CRC32C.
type fileReader struct {
	br    *bufio.Reader
	off   int64
	crc   uint32
	armed bool
}

func (r *fileReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err != nil {
		return 0, err
	}
	r.off++
	if r.armed {
		r.crc = crc32.Update(r.crc, castagnoli, []byte{b})
	}
	return b, nil
}

func (r *fileReader) Read(p []byte) (int, error) {
	n, err := r.br.Read(p)
	r.off += int64(n)
	if r.armed && n > 0 {
		r.crc = crc32.Update(r.crc, castagnoli, p[:n])
	}
	return n, err
}

func (r *fileReader) arm() { r.armed, r.crc = true, 0 }
func (r *fileReader) disarm() uint32 {
	r.armed = false
	return r.crc
}

// corruptAt wraps a structural failure with the file, offset and section
// being decoded. Plain EOF mid-structure is corruption too (a short file).
func corruptAt(path string, off int64, section string, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("%w: %s: offset %d: reading %s: %v", ErrCorrupt, path, off, section, err)
}

// Load reads a table file written by Save from the real file system.
func Load(path string) (*Table, error) { return LoadFS(fsim.OS, path) }

// LoadFS reads a table file through an fsim seam, verifying the per-group
// checksums of VWT3 files. Structural failures (truncation, checksum
// mismatch, invalid fields) are reported as ErrCorrupt with the file
// offset and the section being decoded; a checksum failure names the exact
// column and row group.
func LoadFS(fs fsim.FS, path string) (*Table, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := &fileReader{br: bufio.NewReaderSize(f, 1<<20)}
	var m [4]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, corruptAt(path, 0, "magic", err)
	}
	version := 0
	switch string(m[:]) {
	case string(magic):
		version = 3
	case string(magicV2):
		version = 2
	case string(magicV1):
		version = 1
	default:
		return nil, fmt.Errorf("%w: %s: bad magic %q", ErrCorrupt, path, m[:])
	}
	ncols, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, corruptAt(path, r.off, "column count", err)
	}
	schema := &types.Schema{}
	for i := uint64(0); i < ncols; i++ {
		section := fmt.Sprintf("schema column %d", i)
		name, err := readString(r)
		if err != nil {
			return nil, corruptAt(path, r.off, section+" name", err)
		}
		kb, err := r.ReadByte()
		if err != nil {
			return nil, corruptAt(path, r.off, section+" kind", err)
		}
		nb, err := r.ReadByte()
		if err != nil {
			return nil, corruptAt(path, r.off, section+" nullable", err)
		}
		tt := types.T{Kind: types.Kind(kb), Nullable: nb != 0}
		if !tt.Kind.Valid() {
			return nil, fmt.Errorf("%w: %s: offset %d: invalid kind %d in %s",
				ErrCorrupt, path, r.off, kb, section)
		}
		schema.Cols = append(schema.Cols, types.Col(name, tt))
	}
	t := NewTable(schema)
	if version >= 2 {
		for i := range t.clustered {
			cb, err := r.ReadByte()
			if err != nil {
				return nil, corruptAt(path, r.off, "clustered markers", err)
			}
			t.clustered[i] = cb != 0
		}
	}
	rows, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, corruptAt(path, r.off, "row count", err)
	}
	t.rows = int64(rows)
	for i := range t.cols {
		colName := schema.Cols[i].Name
		nblocks, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, corruptAt(path, r.off, fmt.Sprintf("column %q block count", colName), err)
		}
		for j := uint64(0); j < nblocks; j++ {
			section := fmt.Sprintf("column %q group %d", colName, j)
			if version >= 3 {
				r.arm()
			}
			var blk Block
			br, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, corruptAt(path, r.off, section+" rows", err)
			}
			blk.Rows = int(br)
			cb, err := r.ReadByte()
			if err != nil {
				return nil, corruptAt(path, r.off, section+" codec", err)
			}
			blk.Codec = compress.Codec(cb)
			if blk.Min, err = readValue(r); err != nil {
				return nil, corruptAt(path, r.off, section+" min", err)
			}
			if blk.Max, err = readValue(r); err != nil {
				return nil, corruptAt(path, r.off, section+" max", err)
			}
			dl, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, corruptAt(path, r.off, section+" data length", err)
			}
			// A flipped bit in the length varint must not trigger a giant
			// allocation; no block encodes anywhere near this large.
			if dl > 1<<30 || br > 1<<30 {
				return nil, fmt.Errorf("%w: %s: offset %d: implausible %s (rows %d, data length %d)",
					ErrCorrupt, path, r.off, section, br, dl)
			}
			blk.Data = make([]byte, dl)
			if _, err := io.ReadFull(r, blk.Data); err != nil {
				return nil, corruptAt(path, r.off, section+" data", err)
			}
			if version >= 3 {
				computed := r.disarm()
				var sumBuf [4]byte
				if _, err := io.ReadFull(r, sumBuf[:]); err != nil {
					return nil, corruptAt(path, r.off, section+" checksum", err)
				}
				stored := binary.LittleEndian.Uint32(sumBuf[:])
				if stored != computed {
					mChecksumFailures.Inc()
					return nil, fmt.Errorf("%w: %s: column %q group %d: checksum mismatch (stored %08x, computed %08x)",
						ErrCorrupt, path, colName, j, stored, computed)
				}
			}
			t.cols[i].Blocks = append(t.cols[i].Blocks, blk)
		}
	}
	if version == 1 {
		// Pre-marker files: derive the markers from the summaries.
		t.RefreshClustered()
	}
	return t, nil
}

func writeByte(w io.Writer, b byte) { w.Write([]byte{b}) }

func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w io.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	io.WriteString(w, s)
}

func readString(r *fileReader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeValue(w io.Writer, v types.Value) {
	writeByte(w, byte(v.Kind))
	switch v.Kind {
	case types.KindString:
		writeString(w, v.Str)
	case types.KindFloat64:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F64))
		w.Write(buf[:])
	default:
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], v.I64)
		w.Write(buf[:n])
	}
}

func readValue(r *fileReader) (types.Value, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return types.Value{}, err
	}
	v := types.Value{Kind: types.Kind(kb)}
	switch v.Kind {
	case types.KindString:
		s, err := readString(r)
		if err != nil {
			return types.Value{}, err
		}
		v.Str = s
	case types.KindFloat64:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return types.Value{}, err
		}
		v.F64 = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	default:
		i, err := binary.ReadVarint(r)
		if err != nil {
			return types.Value{}, err
		}
		v.I64 = i
	}
	return v, nil
}
