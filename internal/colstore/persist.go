package colstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"vectorwise/internal/compress"
	"vectorwise/internal/types"
)

// On-disk format (one file per table):
//
//	magic "VWT2"
//	uvarint ncols | per column: name, kind byte, nullable byte
//	per column: clustered byte (VWT2 only)
//	uvarint rows
//	per column: uvarint nblocks | per block:
//	    uvarint rows, codec byte, min value, max value,
//	    uvarint len(data), data bytes
//
// Values are encoded as kind byte + kind-specific payload. The format is
// self-contained and versioned by the magic string. VWT2 added the
// per-column clustered markers; VWT1 files still load, recomputing the
// markers from the block summaries they carry.

var (
	magic   = []byte("VWT2")
	magicV1 = []byte("VWT1")
)

// Save writes the table to path atomically (temp file + rename).
func (t *Table) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := t.write(w); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func (t *Table) write(w io.Writer) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if _, err := w.Write(magic); err != nil {
		return err
	}
	writeUvarint(w, uint64(len(t.schema.Cols)))
	for _, c := range t.schema.Cols {
		writeString(w, c.Name)
		writeByte(w, byte(c.Type.Kind))
		nb := byte(0)
		if c.Type.Nullable {
			nb = 1
		}
		writeByte(w, nb)
	}
	for _, cl := range t.clustered {
		cb := byte(0)
		if cl {
			cb = 1
		}
		writeByte(w, cb)
	}
	writeUvarint(w, uint64(t.rows))
	for i := range t.cols {
		col := &t.cols[i]
		writeUvarint(w, uint64(len(col.Blocks)))
		for j := range col.Blocks {
			blk := &col.Blocks[j]
			writeUvarint(w, uint64(blk.Rows))
			writeByte(w, byte(blk.Codec))
			writeValue(w, blk.Min)
			writeValue(w, blk.Max)
			writeUvarint(w, uint64(len(blk.Data)))
			if _, err := w.Write(blk.Data); err != nil {
				return err
			}
		}
	}
	return nil
}

// Load reads a table file written by Save.
func Load(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var m [4]byte
	legacy := false
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("colstore: %s is not a table file", path)
	}
	switch string(m[:]) {
	case string(magic):
	case string(magicV1):
		legacy = true
	default:
		return nil, fmt.Errorf("colstore: %s is not a table file", path)
	}
	ncols, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	schema := &types.Schema{}
	for i := uint64(0); i < ncols; i++ {
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		kb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		nb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		tt := types.T{Kind: types.Kind(kb), Nullable: nb != 0}
		if !tt.Kind.Valid() {
			return nil, fmt.Errorf("colstore: invalid kind %d in %s", kb, path)
		}
		schema.Cols = append(schema.Cols, types.Col(name, tt))
	}
	t := NewTable(schema)
	if !legacy {
		for i := range t.clustered {
			cb, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			t.clustered[i] = cb != 0
		}
	}
	rows, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	t.rows = int64(rows)
	for i := range t.cols {
		nblocks, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nblocks; j++ {
			var blk Block
			br, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			blk.Rows = int(br)
			cb, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			blk.Codec = compress.Codec(cb)
			if blk.Min, err = readValue(r); err != nil {
				return nil, err
			}
			if blk.Max, err = readValue(r); err != nil {
				return nil, err
			}
			dl, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			blk.Data = make([]byte, dl)
			if _, err := io.ReadFull(r, blk.Data); err != nil {
				return nil, err
			}
			t.cols[i].Blocks = append(t.cols[i].Blocks, blk)
		}
	}
	if legacy {
		// Pre-marker files: derive the markers from the summaries.
		t.RefreshClustered()
	}
	return t, nil
}

func writeByte(w io.Writer, b byte) { w.Write([]byte{b}) }

func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w io.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	io.WriteString(w, s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeValue(w io.Writer, v types.Value) {
	writeByte(w, byte(v.Kind))
	switch v.Kind {
	case types.KindString:
		writeString(w, v.Str)
	case types.KindFloat64:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F64))
		w.Write(buf[:])
	default:
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutVarint(buf[:], v.I64)
		w.Write(buf[:n])
	}
}

func readValue(r *bufio.Reader) (types.Value, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return types.Value{}, err
	}
	v := types.Value{Kind: types.Kind(kb)}
	switch v.Kind {
	case types.KindString:
		s, err := readString(r)
		if err != nil {
			return types.Value{}, err
		}
		v.Str = s
	case types.KindFloat64:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return types.Value{}, err
		}
		v.F64 = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	default:
		i, err := binary.ReadVarint(r)
		if err != nil {
			return types.Value{}, err
		}
		v.I64 = i
	}
	return v, nil
}
