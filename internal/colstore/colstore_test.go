package colstore

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Col("id", types.Int64),
		types.Col("qty", types.Int32),
		types.Col("price", types.Float64),
		types.Col("mode", types.String),
		types.Col("d", types.Date),
		types.Col("flag", types.Bool),
	)
}

func fillTable(t *testing.T, rows int) *Table {
	t.Helper()
	tab := NewTable(testSchema())
	ap := tab.NewAppender()
	modes := []string{"AIR", "RAIL", "SHIP"}
	batch := vec.NewBatchFromSchema(testSchema(), 512)
	i := 0
	for i < rows {
		n := 512
		if rows-i < n {
			n = rows - i
		}
		batch.Reset()
		batch.SetLen(n)
		for k := 0; k < n; k++ {
			r := i + k
			batch.Vecs[0].I64[k] = int64(r)
			batch.Vecs[1].I32[k] = int32(r % 50)
			batch.Vecs[2].F64[k] = float64(r) * 0.25
			batch.Vecs[3].Str[k] = modes[r%3]
			batch.Vecs[4].I32[k] = int32(10000 + r/100)
			batch.Vecs[5].Bool[k] = r%2 == 0
		}
		if err := ap.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
		i += n
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	return tab
}

func scanAll(t *testing.T, tab *Table, cols []int, vecSize int, filters ...RangeFilter) (*vec.Batch, []int64, int) {
	t.Helper()
	sc, err := tab.NewScanner(cols, vecSize, filters...)
	if err != nil {
		t.Fatal(err)
	}
	out := vec.NewBatch(sc.Kinds(), 0)
	acc := vec.NewBatch(sc.Kinds(), 0)
	var starts []int64
	total := 0
	for {
		start, n, done, err := sc.Next(out)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		starts = append(starts, start)
		total += n
		for i := range acc.Vecs {
			acc.Vecs[i].AppendVector(out.Vecs[i])
		}
	}
	acc.SetLen(total)
	return acc, starts, sc.SkippedGroups()
}

func TestAppendScanRoundTrip(t *testing.T) {
	const rows = 40000 // spans multiple row groups with a partial tail
	tab := fillTable(t, rows)
	if tab.Rows() != rows {
		t.Fatalf("rows = %d", tab.Rows())
	}
	if tab.NumBlocks() != 3 { // 16384+16384+7232
		t.Fatalf("blocks = %d", tab.NumBlocks())
	}
	acc, starts, _ := scanAll(t, tab, []int{0, 1, 2, 3, 4, 5}, 1024)
	if acc.Full() != rows {
		t.Fatalf("scanned %d", acc.Full())
	}
	if starts[0] != 0 {
		t.Fatalf("first start = %d", starts[0])
	}
	for i := 0; i < rows; i += 997 {
		if acc.Vecs[0].I64[i] != int64(i) {
			t.Fatalf("id[%d] = %d", i, acc.Vecs[0].I64[i])
		}
		if acc.Vecs[1].I32[i] != int32(i%50) {
			t.Fatalf("qty[%d]", i)
		}
		if acc.Vecs[2].F64[i] != float64(i)*0.25 {
			t.Fatalf("price[%d]", i)
		}
		if acc.Vecs[3].Str[i] != []string{"AIR", "RAIL", "SHIP"}[i%3] {
			t.Fatalf("mode[%d]", i)
		}
		if acc.Vecs[5].Bool[i] != (i%2 == 0) {
			t.Fatalf("flag[%d]", i)
		}
	}
}

func TestProjectionScan(t *testing.T) {
	tab := fillTable(t, 5000)
	acc, _, _ := scanAll(t, tab, []int{2, 0}, 700)
	if len(acc.Vecs) != 2 || acc.Full() != 5000 {
		t.Fatal("projection shape")
	}
	if acc.Vecs[0].Kind != types.KindFloat64 || acc.Vecs[1].Kind != types.KindInt64 {
		t.Fatal("projection kinds")
	}
	if acc.Vecs[1].I64[4999] != 4999 {
		t.Fatal("projection content")
	}
}

func TestBlockSkipping(t *testing.T) {
	tab := fillTable(t, BlockRows*4) // ids 0..65535 across 4 groups
	lo := types.NewInt64(int64(BlockRows*2 + 5))
	hi := types.NewInt64(int64(BlockRows*2 + 10))
	acc, _, skipped := scanAll(t, tab, []int{0}, 1024, RangeFilter{Col: 0, Lo: &lo, Hi: &hi})
	if skipped != 3 {
		t.Fatalf("skipped %d groups, want 3", skipped)
	}
	// All qualifying rows must still be present (skipping is conservative).
	found := 0
	for i := 0; i < acc.Full(); i++ {
		v := acc.Vecs[0].I64[i]
		if v >= lo.I64 && v <= hi.I64 {
			found++
		}
	}
	if found != 6 {
		t.Fatalf("found %d matching rows, want 6", found)
	}
}

func TestBlockSkippingOpenBounds(t *testing.T) {
	tab := fillTable(t, BlockRows*3)
	hi := types.NewInt64(100)
	_, _, skipped := scanAll(t, tab, []int{0}, 2048, RangeFilter{Col: 0, Hi: &hi})
	if skipped != 2 {
		t.Fatalf("hi-only filter skipped %d, want 2", skipped)
	}
	lo := types.NewInt64(int64(BlockRows*3 - 10))
	_, _, skipped = scanAll(t, tab, []int{0}, 2048, RangeFilter{Col: 0, Lo: &lo})
	if skipped != 2 {
		t.Fatalf("lo-only filter skipped %d, want 2", skipped)
	}
}

// Regression: NaN values are unordered, so an all-NaN float block used to
// summarize as Min=+Inf, Max=-Inf and skipGroup pruned it even though its
// rows are live. NaN presence must widen the summary so the block always
// survives skipping.
func TestNaNBlocksAreNeverSkipped(t *testing.T) {
	tab := NewTable(types.NewSchema(types.Col("f", types.Float64)))
	ap := tab.NewAppender()
	nan := math.NaN()
	// Group 0: all NaN. Group 1: mixed NaN and ordinary values.
	for i := 0; i < BlockRows; i++ {
		if err := ap.AppendRow([]types.Value{types.NewFloat64(nan)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < BlockRows; i++ {
		v := float64(i)
		if i%2 == 0 {
			v = nan
		}
		if err := ap.AppendRow([]types.Value{types.NewFloat64(v)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	lo, hi := types.NewFloat64(1e6), types.NewFloat64(2e6)
	acc, _, skipped := scanAll(t, tab, []int{0}, 1024, RangeFilter{Col: 0, Lo: &lo, Hi: &hi})
	if skipped != 0 {
		t.Fatalf("skipped %d NaN-carrying groups, want 0", skipped)
	}
	if acc.Full() != 2*BlockRows {
		t.Fatalf("scanned %d rows, want %d", acc.Full(), 2*BlockRows)
	}
	nans := 0
	for i := 0; i < acc.Full(); i++ {
		if math.IsNaN(acc.Vecs[0].F64[i]) {
			nans++
		}
	}
	if want := BlockRows + BlockRows/2; nans != want {
		t.Fatalf("NaN rows surviving scan = %d, want %d", nans, want)
	}
}

func TestNewScannerRejectsBadFilterColumn(t *testing.T) {
	tab := fillTable(t, 100)
	lo := types.NewInt64(1)
	if _, err := tab.NewScanner([]int{0}, 64, RangeFilter{Col: 99, Lo: &lo}); err == nil {
		t.Fatal("out-of-range filter column must error, not panic in skipGroup")
	}
	if _, err := tab.NewScanner([]int{0}, 64, RangeFilter{Col: -1, Lo: &lo}); err == nil {
		t.Fatal("negative filter column must error")
	}
}

func TestTotalGroupsAndPartitions(t *testing.T) {
	tab := fillTable(t, BlockRows*4)
	sc, err := tab.NewScanner([]int{0}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if sc.TotalGroups() != 4 {
		t.Fatalf("TotalGroups = %d, want 4", sc.TotalGroups())
	}
	part, err := tab.NewScannerPart([]int{0}, 1024, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if part.TotalGroups() != 2 {
		t.Fatalf("partition TotalGroups = %d, want 2", part.TotalGroups())
	}
}

func TestColumnSummary(t *testing.T) {
	tab := fillTable(t, BlockRows*2)
	lo, hi, ok := tab.ColumnSummary(0)
	if !ok {
		t.Fatal("no summary for populated column")
	}
	if lo.I64 != 0 || hi.I64 != int64(BlockRows*2-1) {
		t.Fatalf("summary [%v,%v]", lo, hi)
	}
	if _, _, ok := tab.ColumnSummary(42); ok {
		t.Fatal("summary for missing column")
	}
	empty := NewTable(types.NewSchema(types.Col("x", types.Int64)))
	if _, _, ok := empty.ColumnSummary(0); ok {
		t.Fatal("summary for empty table")
	}
}

func TestAppendRowAndPartialFlush(t *testing.T) {
	tab := NewTable(types.NewSchema(types.Col("x", types.Int64)))
	ap := tab.NewAppender()
	for i := 0; i < 10; i++ {
		if err := ap.AppendRow([]types.Value{types.NewInt64(int64(i * 3))}); err != nil {
			t.Fatal(err)
		}
	}
	if tab.Rows() != 0 {
		t.Fatal("rows visible before flush")
	}
	if err := ap.Close(); err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 10 {
		t.Fatalf("rows = %d", tab.Rows())
	}
	acc, _, _ := scanAll(t, tab, []int{0}, 4)
	if acc.Vecs[0].I64[9] != 27 {
		t.Fatal("content")
	}
	// Wrong arity rejected.
	if err := ap.AppendRow([]types.Value{types.NewInt64(1), types.NewInt64(2)}); err == nil {
		t.Fatal("arity error not detected")
	}
}

func TestCompressionEffective(t *testing.T) {
	tab := fillTable(t, BlockRows*2)
	raw := int64(BlockRows*2) * (8 + 4 + 8 + 4 + 4 + 1)
	comp := tab.CompressedBytes()
	if comp*2 > raw {
		t.Fatalf("compression ratio too weak: %d compressed vs %d raw", comp, raw)
	}
	// Sorted id column should pick PFOR-DELTA; low-cardinality mode PDICT.
	_, idCodec := tab.BlockMeta(0, 0)
	if idCodec.String() != "pfor-delta" {
		t.Fatalf("id codec = %v", idCodec)
	}
	_, modeCodec := tab.BlockMeta(3, 0)
	if modeCodec.String() != "pdict" {
		t.Fatalf("mode codec = %v", modeCodec)
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.vwt")
	tab := fillTable(t, 20000)
	if err := tab.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows() != 20000 || got.Schema().String() != tab.Schema().String() {
		t.Fatalf("loaded meta: %d %s", got.Rows(), got.Schema())
	}
	acc, _, _ := scanAll(t, got, []int{0, 3}, 1024)
	if acc.Full() != 20000 || acc.Vecs[0].I64[19999] != 19999 || acc.Vecs[1].Str[1] != "RAIL" {
		t.Fatal("loaded content")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.vwt")
	if err := os.WriteFile(path, []byte("not a table"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(filepath.Join(dir, "missing.vwt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestScannerColumnRangeError(t *testing.T) {
	tab := fillTable(t, 100)
	if _, err := tab.NewScanner([]int{99}, 0); err == nil {
		t.Fatal("bad column accepted")
	}
}

func TestScanStartPositions(t *testing.T) {
	tab := fillTable(t, BlockRows+100)
	sc, _ := tab.NewScanner([]int{0}, 1000)
	out := vec.NewBatch(sc.Kinds(), 0)
	var prevEnd int64
	for {
		start, n, done, err := sc.Next(out)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if start != prevEnd {
			t.Fatalf("start %d, want %d (SIDs must be dense)", start, prevEnd)
		}
		// Batches never cross row-group boundaries.
		if (start%BlockRows)+int64(n) > BlockRows {
			t.Fatalf("batch crosses row group: start=%d n=%d", start, n)
		}
		prevEnd = start + int64(n)
	}
	if prevEnd != BlockRows+100 {
		t.Fatalf("total = %d", prevEnd)
	}
}
