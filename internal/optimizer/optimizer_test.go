package optimizer

import (
	"math"

	"strings"
	"testing"

	"vectorwise/internal/expr"
	"vectorwise/internal/plan"
	"vectorwise/internal/types"
)

type fakeStats struct {
	rows map[string]int64
	cols map[string]*ColStats
}

func (f *fakeStats) TableRows(t string) int64 {
	if r, ok := f.rows[t]; ok {
		return r
	}
	return -1
}

func (f *fakeStats) Column(t, c string) *ColStats { return f.cols[t+"."+c] }

func mkScan(name string, key int, cols ...types.Column) *plan.Scan {
	return &plan.Scan{Table: name, Structure: "vectorwise", Key: key,
		Cols: types.NewSchema(cols...)}
}

func TestBuildColStats(t *testing.T) {
	var vals []types.Value
	for i := 0; i < 1000; i++ {
		vals = append(vals, types.NewInt64(int64(i)))
	}
	st := BuildColStats(vals, 10, 100)
	if st.Distinct != 1000 || st.Min.Int64() != 0 || st.Max.Int64() != 999 {
		t.Fatalf("stats: %+v", st)
	}
	if st.NullFrac < 0.09 || st.NullFrac > 0.1 {
		t.Fatalf("nullfrac: %v", st.NullFrac)
	}
	// Histogram-based range selectivity ~ linear.
	got := st.SelLE(types.NewInt64(499))
	if got < 0.40 || got > 0.50 {
		t.Fatalf("SelLE(499) = %v", got)
	}
	if st.SelLE(types.NewInt64(-5)) != 0 {
		t.Fatal("below min")
	}
	if st.SelLE(types.NewInt64(5000)) <= 0.89 {
		t.Fatal("above max should be ~1-nullfrac")
	}
	if eq := st.SelEq(); eq <= 0 || eq >= 0.01 {
		t.Fatalf("SelEq = %v", eq)
	}
	// Empty stats degrade gracefully.
	empty := BuildColStats(nil, 10, 0)
	if empty.SelLE(types.NewInt64(1)) != defaultRangeSel {
		t.Fatal("empty stats default")
	}
}

func TestPushdownThroughProjectAndJoin(t *testing.T) {
	l := mkScan("l", -1, types.Col("a", types.Int64), types.Col("x", types.Int64))
	r := mkScan("r", -1, types.Col("b", types.Int64))
	j := &plan.Join{Kind: plan.JoinInner, Left: l, Right: r,
		On: expr.NewCall("=", expr.Col(0, "a", types.Int64), expr.Col(2, "b", types.Int64))}
	pred := expr.NewCall("and",
		expr.NewCall(">", expr.Col(1, "x", types.Int64), expr.CInt(5)),   // left side
		expr.NewCall("<", expr.Col(2, "b", types.Int64), expr.CInt(100))) // right side
	root := &plan.Select{Child: j, Pred: pred}
	opt := New(nil)
	out := opt.Optimize(root)
	f := plan.Format(out)
	// Both conjuncts must sit below the join.
	jLine := strings.Index(f, "Join")
	xLine := strings.Index(f, "(x > 5)")
	bLine := strings.Index(f, "(b < 100)")
	if xLine < jLine || bLine < jLine {
		t.Fatalf("predicates not pushed below join:\n%s", f)
	}
}

func TestCrossPredicateBecomesJoinCondition(t *testing.T) {
	l := mkScan("l", -1, types.Col("a", types.Int64))
	r := mkScan("r", -1, types.Col("b", types.Int64))
	j := &plan.Join{Kind: plan.JoinCross, Left: l, Right: r}
	root := &plan.Select{Child: j,
		Pred: expr.NewCall("=", expr.Col(0, "a", types.Int64), expr.Col(1, "b", types.Int64))}
	out := New(nil).Optimize(root)
	found := false
	var rec func(plan.Node)
	rec = func(n plan.Node) {
		if jj, ok := n.(*plan.Join); ok && jj.Kind == plan.JoinInner && jj.On != nil {
			found = true
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(out)
	if !found {
		t.Fatalf("cross+pred did not become inner join:\n%s", plan.Format(out))
	}
}

func TestJoinReorderPutsSmallFirst(t *testing.T) {
	big := mkScan("big", -1, types.Col("a", types.Int64))
	mid := mkScan("mid", -1, types.Col("b", types.Int64))
	small := mkScan("small", -1, types.Col("c", types.Int64))
	stats := &fakeStats{rows: map[string]int64{"big": 1_000_000, "mid": 10_000, "small": 10}}
	// (big ⋈ mid) ⋈ small with chain predicates.
	j1 := &plan.Join{Kind: plan.JoinInner, Left: big, Right: mid,
		On: expr.NewCall("=", expr.Col(0, "a", types.Int64), expr.Col(1, "b", types.Int64))}
	j2 := &plan.Join{Kind: plan.JoinInner, Left: j1, Right: small,
		On: expr.NewCall("=", expr.Col(1, "b", types.Int64), expr.Col(2, "c", types.Int64))}
	out := New(stats).Optimize(j2)
	// The first (deepest-left) relation must be the small one.
	var leftmost *plan.Scan
	var rec func(plan.Node)
	rec = func(n plan.Node) {
		if s, ok := n.(*plan.Scan); ok && leftmost == nil {
			leftmost = s
		}
		ch := n.Children()
		if len(ch) > 0 {
			rec(ch[0])
		}
	}
	rec(out)
	if leftmost == nil || leftmost.Table != "small" {
		t.Fatalf("leftmost = %v:\n%s", leftmost, plan.Format(out))
	}
	// Output column order restored.
	if out.Schema().Len() != 3 || out.Schema().Cols[0].Name != "a" {
		t.Fatalf("schema after reorder: %s", out.Schema())
	}
}

func TestGroupBySimplificationByKey(t *testing.T) {
	s := mkScan("t", 0, types.Col("pk", types.Int64), types.Col("payload", types.String))
	agg := &plan.Aggregate{Child: s, GroupCols: []int{0, 1},
		Aggs: []plan.AggItem{{Fn: "count", Col: -1}}, Names: []string{"pk", "payload", "cnt"}}
	out := New(nil).Optimize(agg)
	var found *plan.Aggregate
	var rec func(plan.Node)
	rec = func(n plan.Node) {
		if a, ok := n.(*plan.Aggregate); ok {
			found = a
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(out)
	if found == nil || len(found.GroupCols) != 1 {
		t.Fatalf("FD simplification missed:\n%s", plan.Format(out))
	}
	if out.Schema().Len() != 3 {
		t.Fatalf("schema shape: %s", out.Schema())
	}
}

func TestEstimates(t *testing.T) {
	stats := &fakeStats{rows: map[string]int64{"t": 10_000}}
	o := New(stats)
	s := mkScan("t", -1, types.Col("a", types.Int64))
	if got := o.EstimateRows(s); got != 10_000 {
		t.Fatalf("scan estimate: %v", got)
	}
	sel := &plan.Select{Child: s, Pred: expr.NewCall("=", expr.Col(0, "a", types.Int64), expr.CInt(5))}
	if got := o.EstimateRows(sel); got != 1000 { // default eq selectivity 0.1
		t.Fatalf("select estimate: %v", got)
	}
	lim := &plan.Limit{Child: s, N: 7}
	if got := o.EstimateRows(lim); got != 7 {
		t.Fatalf("limit estimate: %v", got)
	}
}

// findScan returns the first Scan in a plan (prefix order).
func findScan(n plan.Node) *plan.Scan {
	if s, ok := n.(*plan.Scan); ok {
		return s
	}
	for _, c := range n.Children() {
		if s := findScan(c); s != nil {
			return s
		}
	}
	return nil
}

func TestScanRangeExtraction(t *testing.T) {
	scan := mkScan("t", -1, types.Col("k", types.Int64), types.Col("s", types.String))
	pred := expr.NewCall("and",
		expr.NewCall("and",
			expr.NewCall(">=", expr.Col(0, "k", types.Int64), expr.CInt(10)),
			expr.NewCall("<=", expr.Col(0, "k", types.Int64), expr.CInt(20))),
		expr.NewCall("=", expr.Col(1, "s", types.String), expr.CStr("x")))
	out := New(nil).Optimize(&plan.Select{Child: scan, Pred: pred})
	got := findScan(out)
	if got == nil || len(got.Ranges) != 2 {
		t.Fatalf("ranges not extracted:\n%s", plan.Format(out))
	}
	byCol := map[int]plan.ColRange{}
	for _, r := range got.Ranges {
		byCol[r.Col] = r
	}
	k := byCol[0]
	if k.Lo == nil || k.Hi == nil || k.Lo.I64 != 10 || k.Hi.I64 != 20 {
		t.Fatalf("k range = %v", k)
	}
	s := byCol[1]
	if s.Lo == nil || s.Hi == nil || s.Lo.Str != "x" || s.Hi.Str != "x" {
		t.Fatalf("s range = %v", s)
	}
	// The residual Selects must survive — skipping is block-granular only.
	selects := 0
	var rec func(plan.Node)
	rec = func(n plan.Node) {
		if _, ok := n.(*plan.Select); ok {
			selects++
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(out)
	if selects == 0 {
		t.Fatalf("residual Select dropped:\n%s", plan.Format(out))
	}
}

func TestScanRangeIntersectionAndFlip(t *testing.T) {
	scan := mkScan("t", -1, types.Col("k", types.Int64))
	// k > 5 AND k > 10 AND 100 >= k (flipped) intersect to [10, 100].
	pred := expr.NewCall("and",
		expr.NewCall("and",
			expr.NewCall(">", expr.Col(0, "k", types.Int64), expr.CInt(5)),
			expr.NewCall(">", expr.Col(0, "k", types.Int64), expr.CInt(10))),
		expr.NewCall(">=", expr.CInt(100), expr.Col(0, "k", types.Int64)))
	got := findScan(New(nil).Optimize(&plan.Select{Child: scan, Pred: pred}))
	if got == nil || len(got.Ranges) != 1 {
		t.Fatal("want one merged range")
	}
	r := got.Ranges[0]
	if r.Lo == nil || r.Lo.I64 != 10 || r.Hi == nil || r.Hi.I64 != 100 {
		t.Fatalf("merged range = %v", r)
	}
}

func TestScanRangeIgnoresNonSargable(t *testing.T) {
	scan := mkScan("t", -1, types.Col("k", types.Int64))
	// k+0 > 5 is not a bare column comparison; BETWEEN with a column bound
	// is not constant. Neither may produce a range.
	pred := expr.NewCall("and",
		expr.NewCall(">", expr.NewCall("+", expr.Col(0, "k", types.Int64), expr.CInt(0)), expr.CInt(5)),
		expr.NewCall("between", expr.Col(0, "k", types.Int64),
			expr.Col(0, "k", types.Int64), expr.CInt(9)))
	got := findScan(New(nil).Optimize(&plan.Select{Child: scan, Pred: pred}))
	if got != nil && len(got.Ranges) != 0 {
		t.Fatalf("non-sargable predicates produced ranges: %v", got.Ranges)
	}
}

func TestScanRangeBetween(t *testing.T) {
	scan := mkScan("t", -1, types.Col("k", types.Int64))
	pred := expr.NewCall("between", expr.Col(0, "k", types.Int64), expr.CInt(3), expr.CInt(7))
	got := findScan(New(nil).Optimize(&plan.Select{Child: scan, Pred: pred}))
	if got == nil || len(got.Ranges) != 1 {
		t.Fatal("BETWEEN not extracted")
	}
	r := got.Ranges[0]
	if r.Lo == nil || r.Lo.I64 != 3 || r.Hi == nil || r.Hi.I64 != 7 {
		t.Fatalf("between range = %v", r)
	}
}

// summaryStats is a fakeStats that also serves block-summary bounds.
type summaryStats struct {
	fakeStats
	bounds map[string][2]types.Value
}

func (s *summaryStats) ColumnBounds(table, col string) (types.Value, types.Value, bool) {
	b, ok := s.bounds[table+"."+col]
	return b[0], b[1], ok
}

func TestSummaryBoundsTightenEstimates(t *testing.T) {
	st := &summaryStats{
		fakeStats: fakeStats{rows: map[string]int64{"t": 10000}},
		bounds:    map[string][2]types.Value{"t.k": {types.NewInt64(0), types.NewInt64(999)}},
	}
	scan := mkScan("t", -1, types.Col("k", types.Int64))
	sel := &plan.Select{Child: scan,
		Pred: expr.NewCall("<=", expr.Col(0, "k", types.Int64), expr.CInt(99))}
	est := New(st).EstimateRows(sel)
	// Linear interpolation between summary bounds: ~10% of 10000 rows,
	// far tighter than the 1/3 default.
	if est < 500 || est > 1500 {
		t.Fatalf("summary-backed estimate = %v, want ~1000", est)
	}
	noBounds := New(&fakeStats{rows: map[string]int64{"t": 10000}}).EstimateRows(sel)
	if noBounds < 3000 {
		t.Fatalf("default estimate = %v, want ~3333", noBounds)
	}
}

func TestSummaryColStatsRejectsNonFiniteBounds(t *testing.T) {
	if st := SummaryColStats(types.NewFloat64(math.Inf(-1)), types.NewFloat64(math.Inf(1))); st != nil {
		t.Fatal("infinite summary bounds must fall back to defaults")
	}
	if st := SummaryColStats(types.NewFloat64(0), types.NewFloat64(100)); st == nil {
		t.Fatal("finite bounds rejected")
	}
}
