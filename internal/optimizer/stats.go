// Package optimizer plays the Ingres-optimizer role of Figure 1: it owns
// histogram-based cardinality estimation and rewrites logical plans —
// predicate pushdown, join ordering, functional-dependency-based group-by
// simplification and constant folding. The paper notes Vectorwise chose to
// *improve* the existing histogram-based Ingres optimizer rather than write
// a new one; accordingly this package is deliberately classical.
package optimizer

import (
	"math"

	"vectorwise/internal/types"
)

// ColStats summarizes one column for estimation.
type ColStats struct {
	Distinct int64
	Min, Max types.Value
	// Bounds are equi-depth histogram bucket upper bounds (ascending);
	// each bucket holds ~Rows/len(Bounds) rows.
	Bounds   []types.Value
	NullFrac float64
}

// Stats supplies table statistics; the engine's catalog implements it
// (populated by ANALYZE).
type Stats interface {
	// TableRows returns the row count, or -1 when unknown.
	TableRows(table string) int64
	// Column returns stats for a column, or nil when not analyzed.
	Column(table, col string) *ColStats
}

// SummaryStats is an optional extension of Stats: column bounds folded from
// the column store's per-block min/max summaries. They cost nothing to
// maintain, so the optimizer consults them whenever ANALYZE histograms are
// absent.
type SummaryStats interface {
	// ColumnBounds returns the column's global [min, max], or ok=false when
	// the table has no block summaries for it.
	ColumnBounds(table, col string) (min, max types.Value, ok bool)
}

// SummaryColStats builds a single-bucket histogram from block-summary
// bounds: range selectivity interpolates linearly between min and max,
// equality keeps its default (distinct count is unknown). Non-ordered kinds
// return nil — a summary-only histogram would estimate them as zero.
func SummaryColStats(min, max types.Value) *ColStats {
	if !(min.Kind.Numeric() || min.Kind == types.KindDate) {
		return nil
	}
	// NaN-bearing float blocks widen their summaries to ±Inf; interpolating
	// over a non-finite span would turn selectivities into NaN and poison
	// every downstream cost comparison. Estimate with defaults instead.
	if math.IsInf(min.AsFloat(), 0) || math.IsInf(max.AsFloat(), 0) ||
		math.IsNaN(min.AsFloat()) || math.IsNaN(max.AsFloat()) {
		return nil
	}
	return &ColStats{Min: min, Max: max, Bounds: []types.Value{max}}
}

// ClusterStats is an optional extension of Stats: ordered zone-map lookups
// over clustered columns. A column is clustered when its row groups are
// sorted and non-overlapping (a clustered bulk load produces this by
// construction), which lets a range predicate binary-search to a contiguous
// group interval instead of testing every group.
type ClusterStats interface {
	// ClusteredWindow returns the row-group interval [lo, hi) that can
	// contain values in [loV, hiV] (nil = open side), plus the table's
	// total group count. ok=false when the column is not clustered (or
	// unknown) — the caller then has no interval to prune to.
	ClusteredWindow(table, col string, loV, hiV *types.Value) (lo, hi, total int, ok bool)
}

// NoStats is a Stats that knows nothing (all defaults).
type NoStats struct{}

// TableRows implements Stats.
func (NoStats) TableRows(string) int64 { return -1 }

// Column implements Stats.
func (NoStats) Column(string, string) *ColStats { return nil }

// Default estimation constants, the classical textbook values.
const (
	defaultTableRows = 1000.0
	defaultEqSel     = 0.1
	defaultRangeSel  = 1.0 / 3.0
	defaultLikeSel   = 0.25
	defaultNeSel     = 0.9
)

// BuildColStats computes equi-depth histogram stats from a sorted sample of
// column values (the ANALYZE path). buckets is the histogram resolution.
func BuildColStats(sorted []types.Value, buckets int, nulls int64) *ColStats {
	st := &ColStats{}
	n := len(sorted)
	total := int64(n) + nulls
	if total > 0 {
		st.NullFrac = float64(nulls) / float64(total)
	}
	if n == 0 {
		return st
	}
	st.Min, st.Max = sorted[0], sorted[n-1]
	distinct := int64(1)
	for i := 1; i < n; i++ {
		if types.Compare(sorted[i-1], sorted[i]) != 0 {
			distinct++
		}
	}
	st.Distinct = distinct
	if buckets < 1 {
		buckets = 1
	}
	if buckets > n {
		buckets = n
	}
	for b := 1; b <= buckets; b++ {
		idx := b*n/buckets - 1
		st.Bounds = append(st.Bounds, sorted[idx])
	}
	return st
}

// SelLE estimates the fraction of rows with value <= v using the histogram.
func (st *ColStats) SelLE(v types.Value) float64 {
	if st == nil || len(st.Bounds) == 0 {
		return defaultRangeSel
	}
	if types.Compare(v, st.Min) < 0 {
		return 0
	}
	if types.Compare(v, st.Max) >= 0 {
		return 1 - st.NullFrac
	}
	// Find the first bucket bound >= v: fraction = buckets below + partial.
	lo, hi := 0, len(st.Bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if types.Compare(st.Bounds[mid], v) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	frac := float64(lo) / float64(len(st.Bounds))
	// Linear interpolation within the bucket for numeric kinds.
	if v.Kind.Numeric() || v.Kind == types.KindDate {
		var bucketLo types.Value
		if lo == 0 {
			bucketLo = st.Min
		} else {
			bucketLo = st.Bounds[lo-1]
		}
		bucketHi := st.Bounds[lo]
		span := bucketHi.AsFloat() - bucketLo.AsFloat()
		if span > 0 {
			part := (v.AsFloat() - bucketLo.AsFloat()) / span
			if part < 0 {
				part = 0
			}
			if part > 1 {
				part = 1
			}
			frac += part / float64(len(st.Bounds))
		}
	}
	return frac * (1 - st.NullFrac)
}

// SelEq estimates equality selectivity.
func (st *ColStats) SelEq() float64 {
	if st == nil || st.Distinct <= 0 {
		return defaultEqSel
	}
	return (1 - st.NullFrac) / float64(st.Distinct)
}
