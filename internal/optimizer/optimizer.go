package optimizer

import (
	"vectorwise/internal/expr"
	"vectorwise/internal/plan"
	"vectorwise/internal/types"
)

// Optimizer rewrites logical plans.
type Optimizer struct {
	Stats Stats
}

// New builds an optimizer; a nil stats source estimates with defaults.
func New(stats Stats) *Optimizer {
	if stats == nil {
		stats = NoStats{}
	}
	return &Optimizer{Stats: stats}
}

// Optimize runs all passes.
func (o *Optimizer) Optimize(n plan.Node) plan.Node {
	n = foldConstants(n)
	n = o.pushdown(n)
	n = o.reorderJoins(n)
	n = o.simplifyGroupBy(n)
	n = o.pushdown(n) // join reordering can expose new pushdowns
	n = o.extractScanRanges(n)
	return n
}

// --- constant folding ---

func foldConstants(n plan.Node) plan.Node {
	ch := n.Children()
	newCh := make([]plan.Node, len(ch))
	for i, c := range ch {
		newCh[i] = foldConstants(c)
	}
	n = n.WithChildren(newCh)
	switch t := n.(type) {
	case *plan.Select:
		return &plan.Select{Child: t.Child, Pred: expr.FoldConstants(t.Pred)}
	case *plan.Project:
		exprs := make([]expr.Expr, len(t.Exprs))
		for i, e := range t.Exprs {
			exprs[i] = expr.FoldConstants(e)
		}
		return &plan.Project{Child: t.Child, Exprs: exprs, Names: t.Names}
	case *plan.Join:
		if t.On != nil {
			return &plan.Join{Kind: t.Kind, Left: t.Left, Right: t.Right, On: expr.FoldConstants(t.On)}
		}
	}
	return n
}

// --- predicate pushdown ---

// pushdown moves Select predicates as close to scans as possible.
func (o *Optimizer) pushdown(n plan.Node) plan.Node {
	switch t := n.(type) {
	case *plan.Select:
		child := o.pushdown(t.Child)
		var out plan.Node = child
		for _, pred := range splitConjuncts(t.Pred) {
			out = pushPred(out, pred)
		}
		return out
	default:
		ch := n.Children()
		newCh := make([]plan.Node, len(ch))
		for i, c := range ch {
			newCh[i] = o.pushdown(c)
		}
		return n.WithChildren(newCh)
	}
}

func splitConjuncts(e expr.Expr) []expr.Expr {
	if c, ok := e.(*expr.Call); ok && c.Fn == "and" {
		return append(splitConjuncts(c.Args[0]), splitConjuncts(c.Args[1])...)
	}
	return []expr.Expr{e}
}

// andAll rebuilds a conjunction.
func andAll(preds []expr.Expr) expr.Expr {
	out := preds[0]
	for _, p := range preds[1:] {
		out = expr.NewCall("and", out, p)
	}
	return out
}

// pushPred pushes one conjunct into n as deep as legality allows.
func pushPred(n plan.Node, pred expr.Expr) plan.Node {
	cols := expr.Cols(pred)
	switch t := n.(type) {
	case *plan.Select:
		return &plan.Select{Child: pushPred(t.Child, pred), Pred: t.Pred}
	case *plan.Project:
		// Push through when every referenced projection is a bare column.
		remap := map[int]int{}
		ok := true
		for _, c := range cols {
			if cr, isCol := t.Exprs[c].(*expr.ColRef); isCol {
				remap[c] = cr.Idx
			} else {
				ok = false
				break
			}
		}
		if ok {
			return &plan.Project{Child: pushPred(t.Child, expr.RemapCols(pred, remap)),
				Exprs: t.Exprs, Names: t.Names}
		}
	case *plan.Join:
		nl := t.Left.Schema().Len()
		leftOnly, rightOnly := true, true
		for _, c := range cols {
			if c >= nl {
				leftOnly = false
			} else {
				rightOnly = false
			}
		}
		switch {
		case leftOnly && (t.Kind == plan.JoinInner || t.Kind == plan.JoinCross ||
			t.Kind == plan.JoinLeft || t.Kind == plan.JoinSemi ||
			t.Kind == plan.JoinAnti || t.Kind == plan.JoinAntiNull):
			return &plan.Join{Kind: t.Kind, Left: pushPred(t.Left, pred), Right: t.Right, On: t.On}
		case rightOnly && (t.Kind == plan.JoinInner || t.Kind == plan.JoinCross):
			remap := map[int]int{}
			for _, c := range cols {
				remap[c] = c - nl
			}
			return &plan.Join{Kind: t.Kind, Left: t.Left,
				Right: pushPred(t.Right, expr.RemapCols(pred, remap)), On: t.On}
		case t.Kind == plan.JoinInner || t.Kind == plan.JoinCross:
			// Cross-side predicate: merge into the join condition (turning
			// cross into inner when it gains a condition).
			on := t.On
			if on == nil {
				on = pred
			} else {
				on = expr.NewCall("and", on, pred)
			}
			kind := t.Kind
			if kind == plan.JoinCross {
				kind = plan.JoinInner
			}
			return &plan.Join{Kind: kind, Left: t.Left, Right: t.Right, On: on}
		}
	case *plan.Sort:
		return &plan.Sort{Child: pushPred(t.Child, pred), Keys: t.Keys}
	}
	return &plan.Select{Child: n, Pred: pred}
}

// --- scan-range extraction ---

// extractScanRanges annotates every vectorwise Scan reachable through a
// chain of Selects with the sargable bounds those Selects imply — the
// min/max block-skipping pushdown of the paper's sparse indexes. The
// Selects themselves stay in the plan: skipping prunes whole row groups,
// exact filtering remains the Select operator's job.
func (o *Optimizer) extractScanRanges(n plan.Node) plan.Node {
	ch := n.Children()
	newCh := make([]plan.Node, len(ch))
	for i, c := range ch {
		newCh[i] = o.extractScanRanges(c)
	}
	n = n.WithChildren(newCh)
	sel, ok := n.(*plan.Select)
	if !ok {
		return n
	}
	// Collect every conjunct of the Select chain above the scan.
	var preds []expr.Expr
	cur := plan.Node(sel)
	for {
		s, ok := cur.(*plan.Select)
		if !ok {
			break
		}
		preds = append(preds, splitConjuncts(s.Pred)...)
		cur = s.Child
	}
	scan, ok := cur.(*plan.Scan)
	if !ok || scan.Structure != "vectorwise" {
		return n
	}
	ranges := boundsOf(preds, scan.Cols)
	if len(ranges) == 0 {
		return n
	}
	// Rebuild the chain over a copy of the scan carrying the (complete,
	// freshly computed) range set. Inner Selects may have annotated a
	// partial set during recursion; this outermost pass wins.
	annotated := *scan
	annotated.Ranges = ranges
	annotated.Window = o.clusteredWindow(&annotated)
	return rebuildSelectChain(sel, &annotated)
}

// clusteredWindow intersects the clustered group intervals of the scan's
// range columns into one contiguous [Lo, Hi) window annotation, or nil when
// no range column is clustered. The window is a hint for parallelism and
// plan display; the scanner re-derives it at open time against its own
// snapshot (compile-time state must not leak into run-time results).
func (o *Optimizer) clusteredWindow(scan *plan.Scan) *plan.GroupWindow {
	cs, ok := o.Stats.(ClusterStats)
	if !ok {
		return nil
	}
	var w *plan.GroupWindow
	for _, r := range scan.Ranges {
		name := scan.Cols.Cols[r.Col].Name
		lo, hi, total, ok := cs.ClusteredWindow(scan.Table, name, r.Lo, r.Hi)
		if !ok {
			continue
		}
		if w == nil {
			w = &plan.GroupWindow{Lo: lo, Hi: hi, Total: total}
			continue
		}
		if lo > w.Lo {
			w.Lo = lo
		}
		if hi < w.Hi {
			w.Hi = hi
		}
	}
	if w != nil && w.Hi < w.Lo {
		w.Hi = w.Lo
	}
	return w
}

func rebuildSelectChain(n plan.Node, leaf plan.Node) plan.Node {
	s, ok := n.(*plan.Select)
	if !ok {
		return leaf
	}
	return &plan.Select{Child: rebuildSelectChain(s.Child, leaf), Pred: s.Pred}
}

// boundsOf intersects the sargable conjuncts into per-column ranges,
// ordered by first appearance.
func boundsOf(preds []expr.Expr, schema *types.Schema) []plan.ColRange {
	byCol := map[int]*plan.ColRange{}
	var order []int
	for _, p := range preds {
		col, lo, hi, ok := sargableBounds(p, schema)
		if !ok {
			continue
		}
		r, seen := byCol[col]
		if !seen {
			r = &plan.ColRange{Col: col}
			byCol[col] = r
			order = append(order, col)
		}
		if lo != nil && (r.Lo == nil || types.Compare(*lo, *r.Lo) > 0) {
			r.Lo = lo
		}
		if hi != nil && (r.Hi == nil || types.Compare(*hi, *r.Hi) < 0) {
			r.Hi = hi
		}
	}
	out := make([]plan.ColRange, 0, len(order))
	for _, c := range order {
		out = append(out, *byCol[c])
	}
	return out
}

// sargableBounds recognizes `col OP const` (either operand order) and
// `col BETWEEN const AND const` as inclusive bounds on a scan column.
// Strict < and > degrade to their inclusive forms — block skipping is
// conservative, the residual Select keeps the result exact.
func sargableBounds(p expr.Expr, schema *types.Schema) (col int, lo, hi *types.Value, ok bool) {
	call, isCall := p.(*expr.Call)
	if !isCall {
		return 0, nil, nil, false
	}
	if call.Fn == "between" && len(call.Args) == 3 {
		cr, okC := call.Args[0].(*expr.ColRef)
		loC, okL := constOperand(call.Args[1])
		hiC, okH := constOperand(call.Args[2])
		if !okC || !okL || !okH || !rangeComparable(schema, cr.Idx, loC.Kind) || !rangeComparable(schema, cr.Idx, hiC.Kind) {
			return 0, nil, nil, false
		}
		return cr.Idx, &loC, &hiC, true
	}
	if len(call.Args) != 2 {
		return 0, nil, nil, false
	}
	op := call.Fn
	cr, okC := call.Args[0].(*expr.ColRef)
	cv, okV := constOperand(call.Args[1])
	if !okC || !okV {
		// Flipped form: const OP col — mirror the operator.
		cr, okC = call.Args[1].(*expr.ColRef)
		cv, okV = constOperand(call.Args[0])
		if !okC || !okV {
			return 0, nil, nil, false
		}
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
	}
	if !rangeComparable(schema, cr.Idx, cv.Kind) {
		return 0, nil, nil, false
	}
	switch op {
	case "=":
		return cr.Idx, &cv, &cv, true
	case "<", "<=":
		return cr.Idx, nil, &cv, true
	case ">", ">=":
		return cr.Idx, &cv, nil, true
	}
	return 0, nil, nil, false
}

func constOperand(e expr.Expr) (types.Value, bool) {
	c, ok := e.(*expr.Const)
	if !ok || c.Val.Null {
		return types.Value{}, false
	}
	return c.Val, true
}

// rangeComparable reports whether types.Compare orders the filter constant
// against the column's block summaries meaningfully.
func rangeComparable(schema *types.Schema, col int, constKind types.Kind) bool {
	if col < 0 || col >= schema.Len() {
		return false
	}
	ck := schema.Cols[col].Type.Kind
	if ck == types.KindString {
		return constKind == types.KindString
	}
	ordered := func(k types.Kind) bool { return k.Numeric() || k == types.KindDate }
	return ordered(ck) && ordered(constKind)
}

// --- join reordering ---

// reorderJoins flattens connected inner/cross join trees and rebuilds them
// greedily by estimated cardinality (smallest intermediate result first) —
// the classical heuristic the histogram stats feed.
func (o *Optimizer) reorderJoins(n plan.Node) plan.Node {
	ch := n.Children()
	newCh := make([]plan.Node, len(ch))
	for i, c := range ch {
		newCh[i] = o.reorderJoins(c)
	}
	n = n.WithChildren(newCh)

	j, ok := n.(*plan.Join)
	if !ok || (j.Kind != plan.JoinInner && j.Kind != plan.JoinCross) {
		return n
	}
	rels, preds := flattenJoin(j)
	if len(rels) < 3 {
		return n
	}
	return o.buildGreedy(rels, preds, n.Schema())
}

// relation is one flattened join input with its original column offset.
type relation struct {
	node plan.Node
	off  int // column offset in the original join output
}

// flattenJoin collects inner/cross join inputs and all join predicates
// (expressed in the original combined column space).
func flattenJoin(j *plan.Join) ([]relation, []expr.Expr) {
	var rels []relation
	var preds []expr.Expr
	var rec func(n plan.Node, off int) int
	rec = func(n plan.Node, off int) int {
		if jj, ok := n.(*plan.Join); ok && (jj.Kind == plan.JoinInner || jj.Kind == plan.JoinCross) {
			lw := rec(jj.Left, off)
			rw := rec(jj.Right, off+lw)
			if jj.On != nil {
				// Shift right-side refs? On is in (left++right) local space,
				// which equals global [off, off+lw+rw): shift by off.
				preds = append(preds, expr.ShiftCols(jj.On, off))
			}
			return lw + rw
		}
		rels = append(rels, relation{node: n, off: off})
		return n.Schema().Len()
	}
	rec(j, 0)
	var split []expr.Expr
	for _, p := range preds {
		split = append(split, splitConjuncts(p)...)
	}
	return rels, split
}

// buildGreedy assembles a left-deep join tree: start with the smallest
// relation, repeatedly join the relation minimizing the estimated result.
// A final Project restores the original column order.
func (o *Optimizer) buildGreedy(rels []relation, preds []expr.Expr, origSchema *types.Schema) plan.Node {
	type state struct {
		node   plan.Node
		orig   []int // orig global column index per current output column
		joined []bool
	}
	used := make([]bool, len(rels))
	// Estimated base cardinalities.
	card := make([]float64, len(rels))
	for i, r := range rels {
		card[i] = o.estimate(r.node)
	}
	// Start with the smallest relation.
	start := 0
	for i := range rels {
		if card[i] < card[start] {
			start = i
		}
	}
	st := &state{node: rels[start].node, joined: used}
	used[start] = true
	for c := 0; c < rels[start].node.Schema().Len(); c++ {
		st.orig = append(st.orig, rels[start].off+c)
	}
	predUsed := make([]bool, len(preds))
	curCard := card[start]
	for joined := 1; joined < len(rels); joined++ {
		// Pick the unused relation with the cheapest estimated join.
		best, bestCard := -1, 0.0
		for i := range rels {
			if used[i] {
				continue
			}
			sel := o.joinSelectivity(st.orig, rels[i], preds, predUsed)
			est := curCard * card[i] * sel
			if best < 0 || est < bestCard {
				best, bestCard = i, est
			}
		}
		r := rels[best]
		used[best] = true
		// Gather applicable predicates: all columns available after this
		// join.
		avail := map[int]bool{}
		for _, g := range st.orig {
			avail[g] = true
		}
		for c := 0; c < r.node.Schema().Len(); c++ {
			avail[r.off+c] = true
		}
		var onParts []expr.Expr
		for pi, p := range preds {
			if predUsed[pi] {
				continue
			}
			all := true
			for _, g := range expr.Cols(p) {
				if !avail[g] {
					all = false
					break
				}
			}
			if all {
				onParts = append(onParts, p)
				predUsed[pi] = true
			}
		}
		// Remap predicates from global space to (current ++ new) space.
		newOrig := append(append([]int{}, st.orig...), nil...)
		for c := 0; c < r.node.Schema().Len(); c++ {
			newOrig = append(newOrig, r.off+c)
		}
		remap := map[int]int{}
		for local, g := range newOrig {
			remap[g] = local
		}
		kind := plan.JoinCross
		var on expr.Expr
		if len(onParts) > 0 {
			kind = plan.JoinInner
			mapped := make([]expr.Expr, len(onParts))
			for i, p := range onParts {
				mapped[i] = expr.RemapCols(p, remap)
			}
			on = andAll(mapped)
		}
		st.node = &plan.Join{Kind: kind, Left: st.node, Right: r.node, On: on}
		st.orig = newOrig
		curCard = bestCard
	}
	// Restore original column order.
	pos := map[int]int{}
	for local, g := range st.orig {
		pos[g] = local
	}
	var exprs []expr.Expr
	var names []string
	sch := st.node.Schema()
	for g := 0; g < origSchema.Len(); g++ {
		local := pos[g]
		exprs = append(exprs, expr.Col(local, sch.Cols[local].Name, sch.Cols[local].Type))
		names = append(names, origSchema.Cols[g].Name)
	}
	return &plan.Project{Child: st.node, Exprs: exprs, Names: names}
}

// joinSelectivity estimates the combined selectivity of predicates that
// connect the current state to candidate relation r.
func (o *Optimizer) joinSelectivity(curOrig []int, r relation, preds []expr.Expr, predUsed []bool) float64 {
	avail := map[int]bool{}
	for _, g := range curOrig {
		avail[g] = true
	}
	newCols := map[int]bool{}
	for c := 0; c < r.node.Schema().Len(); c++ {
		avail[r.off+c] = true
		newCols[r.off+c] = true
	}
	sel := 1.0
	connected := false
	for pi, p := range preds {
		if predUsed[pi] {
			continue
		}
		touchesNew := false
		all := true
		for _, g := range expr.Cols(p) {
			if newCols[g] {
				touchesNew = true
			}
			if !avail[g] {
				all = false
			}
		}
		if all && touchesNew {
			connected = true
			sel *= predSelectivity(p, nil, "")
		}
	}
	if !connected {
		return 10.0 // penalize Cartesian products
	}
	return sel
}

// --- cardinality estimation ---

// estimate guesses the output row count of a plan.
func (o *Optimizer) estimate(n plan.Node) float64 {
	switch t := n.(type) {
	case *plan.Scan:
		if rows := o.Stats.TableRows(t.Table); rows >= 0 {
			return float64(rows)
		}
		return defaultTableRows
	case *plan.Select:
		return o.estimate(t.Child) * o.selectivity(t.Child, t.Pred)
	case *plan.Project:
		return o.estimate(t.Child)
	case *plan.Join:
		l, r := o.estimate(t.Left), o.estimate(t.Right)
		switch t.Kind {
		case plan.JoinCross:
			return l * r
		case plan.JoinSemi:
			return l * 0.5
		case plan.JoinAnti, plan.JoinAntiNull:
			return l * 0.5
		case plan.JoinLeft:
			return l
		default:
			sel := 1.0
			if t.On != nil {
				for _, p := range splitConjuncts(t.On) {
					sel *= predSelectivity(p, nil, "")
				}
			}
			return l * r * sel
		}
	case *plan.Aggregate:
		if len(t.GroupCols) == 0 {
			return 1
		}
		return o.estimate(t.Child) / 10
	case *plan.Sort:
		return o.estimate(t.Child)
	case *plan.Limit:
		e := o.estimate(t.Child)
		if t.N >= 0 && float64(t.N) < e {
			return float64(t.N)
		}
		return e
	case *plan.Values:
		return float64(len(t.Rows))
	}
	return defaultTableRows
}

// selectivity estimates a predicate over a child plan, using histograms
// when the predicate compares a scan column to a constant.
func (o *Optimizer) selectivity(child plan.Node, pred expr.Expr) float64 {
	sel := 1.0
	for _, p := range splitConjuncts(pred) {
		st, _ := o.columnStatsFor(child, p)
		table := ""
		sel *= predSelectivity(p, st, table)
	}
	return sel
}

// columnStatsFor digs out stats when pred is `col OP const` directly over a
// scan (possibly through column-only projections/selects).
func (o *Optimizer) columnStatsFor(child plan.Node, pred expr.Expr) (*ColStats, string) {
	call, ok := pred.(*expr.Call)
	if !ok || len(call.Args) != 2 {
		return nil, ""
	}
	colRef, ok := call.Args[0].(*expr.ColRef)
	if !ok {
		return nil, ""
	}
	// Walk down through transparent nodes to the scan.
	idx := colRef.Idx
	n := child
	for {
		switch t := n.(type) {
		case *plan.Select:
			n = t.Child
		case *plan.Project:
			cr, ok := t.Exprs[idx].(*expr.ColRef)
			if !ok {
				return nil, ""
			}
			idx = cr.Idx
			n = t.Child
		case *plan.Scan:
			name := t.Cols.Cols[idx].Name
			if st := o.Stats.Column(t.Table, name); st != nil {
				return st, t.Table
			}
			// No histogram (ANALYZE has not run): fall back to the block
			// summaries the column store keeps anyway.
			if ss, ok := o.Stats.(SummaryStats); ok {
				if lo, hi, ok := ss.ColumnBounds(t.Table, name); ok {
					return SummaryColStats(lo, hi), t.Table
				}
			}
			return nil, t.Table
		default:
			return nil, ""
		}
	}
}

// predSelectivity estimates one conjunct.
func predSelectivity(p expr.Expr, st *ColStats, _ string) float64 {
	call, ok := p.(*expr.Call)
	if !ok {
		return 0.5
	}
	constRHS := func() (types.Value, bool) {
		if len(call.Args) != 2 {
			return types.Value{}, false
		}
		c, ok := call.Args[1].(*expr.Const)
		if !ok {
			return types.Value{}, false
		}
		return c.Val, true
	}
	switch call.Fn {
	case "=":
		if st != nil {
			return st.SelEq()
		}
		return defaultEqSel
	case "<>":
		return defaultNeSel
	case "<", "<=":
		if v, ok := constRHS(); ok && st != nil {
			return st.SelLE(v)
		}
		return defaultRangeSel
	case ">", ">=":
		if v, ok := constRHS(); ok && st != nil {
			return 1 - st.SelLE(v)
		}
		return defaultRangeSel
	case "between":
		if st != nil {
			if lo, ok := call.Args[1].(*expr.Const); ok {
				if hi, ok2 := call.Args[2].(*expr.Const); ok2 {
					s := st.SelLE(hi.Val) - st.SelLE(lo.Val)
					if s < 0 {
						s = 0
					}
					return s
				}
			}
		}
		return defaultRangeSel / 2
	case "like", "starts_with", "contains", "ends_with":
		return defaultLikeSel
	case "and":
		return predSelectivity(call.Args[0], st, "") * predSelectivity(call.Args[1], st, "")
	case "or":
		a := predSelectivity(call.Args[0], st, "")
		b := predSelectivity(call.Args[1], st, "")
		return a + b - a*b
	case "not":
		return 1 - predSelectivity(call.Args[0], st, "")
	}
	return 0.5
}

// --- FD-based group-by simplification ---

// simplifyGroupBy drops functionally dependent group columns: grouping on a
// table's primary key determines every other column of that table, so the
// extra keys become cheap MAX aggregates instead of widening the hash key.
// (The paper: "functional dependency tracking ... also benefit Ingres 10".)
func (o *Optimizer) simplifyGroupBy(n plan.Node) plan.Node {
	ch := n.Children()
	newCh := make([]plan.Node, len(ch))
	for i, c := range ch {
		newCh[i] = o.simplifyGroupBy(c)
	}
	n = n.WithChildren(newCh)
	agg, ok := n.(*plan.Aggregate)
	if !ok || len(agg.GroupCols) < 2 {
		return n
	}
	keyCols := keyColumns(agg.Child)
	if keyCols == nil {
		return n
	}
	// Does some group column carry a unique key?
	hasKey := false
	for _, g := range agg.GroupCols {
		if keyCols[g] {
			hasKey = true
			break
		}
	}
	if !hasKey {
		return n
	}
	// Keep key group columns; demote others to max() aggregates, then
	// restore the original output order with a projection.
	var newGroups []int
	type moved struct {
		outPos int // original output position
		aggIdx int // index into new aggregate list
	}
	var movedCols []moved
	var newAggs []plan.AggItem
	keptOut := map[int]int{} // original output pos → new group pos
	for i, g := range agg.GroupCols {
		if keyCols[g] {
			keptOut[i] = len(newGroups)
			newGroups = append(newGroups, g)
		} else {
			movedCols = append(movedCols, moved{outPos: i, aggIdx: len(newAggs)})
			newAggs = append(newAggs, plan.AggItem{Fn: "max", Col: g})
		}
	}
	nMoved := len(newAggs)
	newAggs = append(newAggs, agg.Aggs...)
	names := make([]string, 0, len(newGroups)+len(newAggs))
	for range newGroups {
		names = append(names, "")
	}
	for range newAggs {
		names = append(names, "")
	}
	for i := range names {
		names[i] = agg.Names[0] // placeholder, fixed below
	}
	newAgg := &plan.Aggregate{Child: agg.Child, GroupCols: newGroups, Aggs: newAggs, Names: names}
	// Rebuild names per new layout (group names then agg names).
	nn := make([]string, 0, len(names))
	for i, g := range agg.GroupCols {
		_ = g
		if _, kept := keptOut[i]; kept {
			nn = append(nn, agg.Names[i])
		}
	}
	for _, m := range movedCols {
		nn = append(nn, agg.Names[m.outPos])
	}
	nn = append(nn, agg.Names[len(agg.GroupCols):]...)
	newAgg.Names = nn
	// Projection restoring original column order.
	outSchema := newAgg.Schema()
	var exprs []expr.Expr
	var outNames []string
	for i := range agg.GroupCols {
		if np, kept := keptOut[i]; kept {
			c := outSchema.Cols[np]
			exprs = append(exprs, expr.Col(np, c.Name, c.Type))
		} else {
			for _, m := range movedCols {
				if m.outPos == i {
					np := len(newGroups) + m.aggIdx
					c := outSchema.Cols[np]
					exprs = append(exprs, expr.Col(np, c.Name, c.Type))
				}
			}
		}
		outNames = append(outNames, agg.Names[i])
	}
	for i := range agg.Aggs {
		np := len(newGroups) + nMoved + i
		c := outSchema.Cols[np]
		exprs = append(exprs, expr.Col(np, c.Name, c.Type))
		outNames = append(outNames, agg.Names[len(agg.GroupCols)+i])
	}
	return &plan.Project{Child: newAgg, Exprs: exprs, Names: outNames}
}

// keyColumns returns the set of child output columns that carry a unique
// key, or nil when unknown. Tracks keys through Select and column-only
// Project over a keyed Scan.
func keyColumns(n plan.Node) map[int]bool {
	switch t := n.(type) {
	case *plan.Scan:
		if t.Key < 0 {
			return nil
		}
		return map[int]bool{t.Key: true}
	case *plan.Select:
		return keyColumns(t.Child)
	case *plan.Project:
		below := keyColumns(t.Child)
		if below == nil {
			return nil
		}
		out := map[int]bool{}
		for i, e := range t.Exprs {
			if cr, ok := e.(*expr.ColRef); ok && below[cr.Idx] {
				out[i] = true
			}
		}
		if len(out) == 0 {
			return nil
		}
		return out
	}
	return nil
}

// EstimateRows exposes cardinality estimation (EXPLAIN, the parallelizer's
// fragment sizing).
func (o *Optimizer) EstimateRows(n plan.Node) float64 { return o.estimate(n) }
