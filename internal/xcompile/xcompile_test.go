package xcompile

import (
	"strings"
	"testing"

	"vectorwise/internal/algebra"
	"vectorwise/internal/expr"
	"vectorwise/internal/plan"
	"vectorwise/internal/types"
)

func scan2() *plan.Scan {
	return &plan.Scan{Table: "t", Structure: "vectorwise", Key: -1,
		Cols: types.NewSchema(types.Col("a", types.Int64), types.Col("b", types.Int64))}
}

func TestCompileChain(t *testing.T) {
	p := &plan.Limit{
		Child: &plan.Sort{
			Child: &plan.Project{
				Child: &plan.Select{Child: scan2(),
					Pred: expr.NewCall(">", expr.Col(0, "a", types.Int64), expr.CInt(1))},
				Exprs: []expr.Expr{expr.Col(0, "a", types.Int64)},
				Names: []string{"a"},
			},
			Keys: []plan.SortKey{{Col: 0, Desc: true}},
		},
		Offset: 0, N: 10,
	}
	alg, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Sort+Limit fuses into TopN.
	if _, ok := alg.(*algebra.TopN); !ok {
		t.Fatalf("expected TopN, got %T", alg)
	}
	f := algebra.Format(alg)
	for _, want := range []string{"TopN", "Project", "Select", "Scan('t'"} {
		if !strings.Contains(f, want) {
			t.Fatalf("missing %s:\n%s", want, f)
		}
	}
}

func TestCompileJoinKeyExtraction(t *testing.T) {
	l, r := scan2(), scan2()
	on := expr.NewCall("and",
		expr.NewCall("=", expr.Col(0, "a", types.Int64), expr.Col(2, "a", types.Int64)),
		expr.NewCall(">", expr.Col(1, "b", types.Int64), expr.Col(3, "b", types.Int64)))
	j := &plan.Join{Kind: plan.JoinInner, Left: l, Right: r, On: on}
	alg, err := Compile(j)
	if err != nil {
		t.Fatal(err)
	}
	// Residual > predicate becomes a Select above the hash join.
	sel, ok := alg.(*algebra.Select)
	if !ok {
		t.Fatalf("expected residual Select, got %T", alg)
	}
	hj, ok := sel.Child.(*algebra.HashJoin)
	if !ok || len(hj.LeftKeys) != 1 || hj.LeftKeys[0] != 0 || hj.RightKeys[0] != 0 {
		t.Fatalf("keys: %+v", hj)
	}
}

func TestCompileJoinReversedEquality(t *testing.T) {
	l, r := scan2(), scan2()
	on := expr.NewCall("=", expr.Col(3, "b", types.Int64), expr.Col(1, "b", types.Int64))
	j := &plan.Join{Kind: plan.JoinInner, Left: l, Right: r, On: on}
	alg, err := Compile(j)
	if err != nil {
		t.Fatal(err)
	}
	hj := alg.(*algebra.HashJoin)
	if hj.LeftKeys[0] != 1 || hj.RightKeys[0] != 1 {
		t.Fatalf("reversed keys: %+v", hj)
	}
}

func TestCompileCrossJoin(t *testing.T) {
	j := &plan.Join{Kind: plan.JoinCross, Left: scan2(), Right: scan2()}
	alg, err := Compile(j)
	if err != nil {
		t.Fatal(err)
	}
	// Cross joins compile to a constant-key hash join wrapped in a
	// projection that hides the helpers.
	if alg.Schema().Len() != 4 {
		t.Fatalf("cross join schema: %s", alg.Schema())
	}
}

func TestCompileSemiWithoutKeysFails(t *testing.T) {
	j := &plan.Join{Kind: plan.JoinSemi, Left: scan2(), Right: scan2(),
		On: expr.NewCall(">", expr.Col(0, "a", types.Int64), expr.Col(2, "a", types.Int64))}
	if _, err := Compile(j); err == nil {
		t.Fatal("semi join without equality keys accepted")
	}
}

func TestCompileAggrAndValues(t *testing.T) {
	agg := &plan.Aggregate{Child: scan2(), GroupCols: []int{0},
		Aggs: []plan.AggItem{{Fn: "sum", Col: 1}}, Names: []string{"a", "s"}}
	alg, err := Compile(agg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := alg.(*algebra.Aggr); !ok {
		t.Fatalf("expected Aggr, got %T", alg)
	}
	v := &plan.Values{Rows: [][]types.Value{{types.NewInt64(1)}},
		Cols: types.NewSchema(types.Col("x", types.Int64))}
	alg2, err := Compile(v)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := alg2.(*algebra.Values); !ok {
		t.Fatalf("expected Values, got %T", alg2)
	}
}
