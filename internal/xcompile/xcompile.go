// Package xcompile is the cross compiler of Figure 1: it translates
// optimized relational plans (internal/plan, the "Ingres" representation)
// into X100 algebra (internal/algebra). The translation extracts hash-join
// keys from join conditions, maps logical join kinds onto kernel join
// types and prepares sort keys — but leaves NULL decomposition and
// parallelization to the Vectorwise rewriter, mirroring the paper's
// division of labour.
package xcompile

import (
	"fmt"

	"vectorwise/internal/algebra"
	"vectorwise/internal/expr"
	"vectorwise/internal/plan"
	"vectorwise/internal/types"
)

// Compile translates an optimized logical plan into X100 algebra.
func Compile(n plan.Node) (algebra.Node, error) {
	switch t := n.(type) {
	case *plan.Scan:
		cols := make([]string, t.Cols.Len())
		for i, c := range t.Cols.Cols {
			cols[i] = c.Name
		}
		ranges := make([]algebra.ScanRange, len(t.Ranges))
		for i, r := range t.Ranges {
			ranges[i] = algebra.ScanRange{Col: r.Col, Lo: r.Lo, Hi: r.Hi}
		}
		var win *algebra.GroupWindow
		if t.Window != nil {
			win = &algebra.GroupWindow{Lo: t.Window.Lo, Hi: t.Window.Hi, Total: t.Window.Total}
		}
		return &algebra.Scan{Table: t.Table, Structure: t.Structure, Cols: cols,
			Out: t.Cols.Clone(), Ranges: ranges, Window: win}, nil
	case *plan.Select:
		child, err := Compile(t.Child)
		if err != nil {
			return nil, err
		}
		return &algebra.Select{Child: child, Pred: t.Pred}, nil
	case *plan.Project:
		child, err := Compile(t.Child)
		if err != nil {
			return nil, err
		}
		return &algebra.Project{Child: child, Exprs: t.Exprs, Names: t.Names}, nil
	case *plan.Join:
		return compileJoin(t)
	case *plan.Aggregate:
		child, err := Compile(t.Child)
		if err != nil {
			return nil, err
		}
		aggs := make([]algebra.AggItem, len(t.Aggs))
		for i, a := range t.Aggs {
			aggs[i] = algebra.AggItem{Fn: a.Fn, Col: a.Col}
		}
		return &algebra.Aggr{Child: child, GroupCols: t.GroupCols, Aggs: aggs, Names: t.Names}, nil
	case *plan.Sort:
		child, err := Compile(t.Child)
		if err != nil {
			return nil, err
		}
		keys := make([]algebra.SortKey, len(t.Keys))
		for i, k := range t.Keys {
			keys[i] = algebra.SortKey{Col: k.Col, Desc: k.Desc}
		}
		return &algebra.Sort{Child: child, Keys: keys}, nil
	case *plan.Limit:
		child, err := Compile(t.Child)
		if err != nil {
			return nil, err
		}
		// Fuse Sort+Limit into TopN (no offset).
		if s, ok := child.(*algebra.Sort); ok && t.N >= 0 && t.Offset == 0 {
			return &algebra.TopN{Child: s.Child, Keys: s.Keys, N: t.N}, nil
		}
		return &algebra.Limit{Child: child, Offset: t.Offset, N: t.N}, nil
	case *plan.Values:
		return &algebra.Values{Rows: t.Rows, Out: t.Cols.Clone()}, nil
	}
	return nil, fmt.Errorf("xcompile: unsupported plan node %T", n)
}

// compileJoin extracts equi-join keys from the ON condition.
func compileJoin(j *plan.Join) (algebra.Node, error) {
	left, err := Compile(j.Left)
	if err != nil {
		return nil, err
	}
	right, err := Compile(j.Right)
	if err != nil {
		return nil, err
	}
	nl := j.Left.Schema().Len()
	var kind algebra.JoinKind
	switch j.Kind {
	case plan.JoinInner, plan.JoinCross:
		kind = algebra.Inner
	case plan.JoinLeft:
		kind = algebra.LeftOuter
	case plan.JoinSemi:
		kind = algebra.Semi
	case plan.JoinAnti:
		kind = algebra.Anti
	case plan.JoinAntiNull:
		kind = algebra.AntiNullAware
	}
	var lk, rk []int
	var residual []expr.Expr
	if j.On != nil {
		for _, c := range conjuncts(j.On) {
			l, r, ok := equiPair(c, nl)
			if ok {
				lk = append(lk, l)
				rk = append(rk, r)
			} else {
				residual = append(residual, c)
			}
		}
	}
	if len(lk) == 0 {
		if j.Kind == plan.JoinCross {
			// Pure Cartesian product: join on a constant key.
			left2, lkc := appendConst(left)
			right2, rkc := appendConst(right)
			hj := &algebra.HashJoin{Left: left2, Right: right2, Kind: algebra.Inner,
				LeftKeys: []int{lkc}, RightKeys: []int{rkc}, LeftKeyNull: -1, RightKeyNull: -1}
			out := dropJoinHelperCols(hj, lkc, left.Schema().Len(), right.Schema().Len())
			return withResidual(out, residual, nil), nil
		}
		return nil, fmt.Errorf("xcompile: %v join without equality keys", j.Kind)
	}
	hj := &algebra.HashJoin{Left: left, Right: right, Kind: kind,
		LeftKeys: lk, RightKeys: rk, LeftKeyNull: -1, RightKeyNull: -1}
	var out algebra.Node = hj
	if len(residual) > 0 {
		if kind != algebra.Inner {
			return nil, fmt.Errorf("xcompile: non-equality condition on %v join", kind)
		}
		out = withResidual(out, residual, nil)
	}
	return out, nil
}

func conjuncts(e expr.Expr) []expr.Expr {
	if c, ok := e.(*expr.Call); ok && c.Fn == "and" {
		return append(conjuncts(c.Args[0]), conjuncts(c.Args[1])...)
	}
	return []expr.Expr{e}
}

// equiPair recognizes `leftcol = rightcol` across the boundary nl.
func equiPair(e expr.Expr, nl int) (int, int, bool) {
	c, ok := e.(*expr.Call)
	if !ok || c.Fn != "=" {
		return 0, 0, false
	}
	a, okA := c.Args[0].(*expr.ColRef)
	b, okB := c.Args[1].(*expr.ColRef)
	if !okA || !okB {
		return 0, 0, false
	}
	switch {
	case a.Idx < nl && b.Idx >= nl:
		return a.Idx, b.Idx - nl, true
	case b.Idx < nl && a.Idx >= nl:
		return b.Idx, a.Idx - nl, true
	}
	return 0, 0, false
}

// appendConst projects an extra constant 1 column (cross-join keys).
func appendConst(n algebra.Node) (algebra.Node, int) {
	s := n.Schema()
	var exprs []expr.Expr
	var names []string
	for i, c := range s.Cols {
		exprs = append(exprs, expr.Col(i, c.Name, c.Type))
		names = append(names, c.Name)
	}
	exprs = append(exprs, expr.CInt32(1))
	names = append(names, "$one")
	return &algebra.Project{Child: n, Exprs: exprs, Names: names}, len(exprs) - 1
}

// dropJoinHelperCols removes the two constant key columns from an inner
// join of (left+1) x (right+1) columns.
func dropJoinHelperCols(j algebra.Node, leftHelper, nl, nr int) algebra.Node {
	s := j.Schema()
	var exprs []expr.Expr
	var names []string
	for i := 0; i < s.Len(); i++ {
		if i == leftHelper || i == nl+1+nr { // left helper, right helper
			continue
		}
		exprs = append(exprs, expr.Col(i, s.Cols[i].Name, s.Cols[i].Type))
		names = append(names, s.Cols[i].Name)
	}
	return &algebra.Project{Child: j, Exprs: exprs, Names: names}
}

func withResidual(n algebra.Node, preds []expr.Expr, _ *types.Schema) algebra.Node {
	out := n
	for _, p := range preds {
		out = &algebra.Select{Child: out, Pred: p}
	}
	return out
}
