package primitives

// Aggregation primitives come in two shapes, following X100:
//
//   - direct aggregates over a (selected) vector, returning a scalar, used
//     for ungrouped aggregation, and
//   - grouped aggregates, where groups[i] gives each selected row's
//     aggregate-table slot and the primitive scatters updates into dense
//     per-group arrays.

// SumDirect returns the sum of the selected values.
func SumDirect[T Num](a []T, sel []int32, n int) T {
	var s T
	if sel == nil {
		for i := 0; i < n; i++ {
			s += a[i]
		}
		return s
	}
	for _, i := range sel {
		s += a[i]
	}
	return s
}

// CountDirect returns the number of selected values.
func CountDirect(sel []int32, n int) int64 {
	if sel == nil {
		return int64(n)
	}
	return int64(len(sel))
}

// MinDirect returns the minimum of the selected values and whether any value
// was present.
func MinDirect[T Ordered](a []T, sel []int32, n int) (T, bool) {
	var m T
	found := false
	if sel == nil {
		for i := 0; i < n; i++ {
			if !found || a[i] < m {
				m = a[i]
				found = true
			}
		}
		return m, found
	}
	for _, i := range sel {
		if !found || a[i] < m {
			m = a[i]
			found = true
		}
	}
	return m, found
}

// MaxDirect returns the maximum of the selected values and whether any value
// was present.
func MaxDirect[T Ordered](a []T, sel []int32, n int) (T, bool) {
	var m T
	found := false
	if sel == nil {
		for i := 0; i < n; i++ {
			if !found || a[i] > m {
				m = a[i]
				found = true
			}
		}
		return m, found
	}
	for _, i := range sel {
		if !found || a[i] > m {
			m = a[i]
			found = true
		}
	}
	return m, found
}

// Grouped aggregates. groups must be parallel to the *logical* rows: when
// sel is non-nil, groups[k] corresponds to row sel[k]; when sel is nil,
// groups[k] corresponds to row k. This matches how the hash-aggregation
// operator produces group positions for exactly the selected rows.

// SumGrouped adds selected values into acc[groups[k]].
func SumGrouped[T Num](acc []T, groups []int32, a []T, sel []int32, n int) {
	if sel == nil {
		for k := 0; k < n; k++ {
			acc[groups[k]] += a[k]
		}
		return
	}
	for k, i := range sel {
		acc[groups[k]] += a[i]
	}
}

// CountGrouped increments counts for each selected row's group.
func CountGrouped(acc []int64, groups []int32, sel []int32, n int) {
	if sel == nil {
		for k := 0; k < n; k++ {
			acc[groups[k]]++
		}
		return
	}
	for k := range sel {
		acc[groups[k]]++
	}
}

// MinGrouped folds minima into acc; seen tracks which groups already hold a
// value.
func MinGrouped[T Ordered](acc []T, seen []bool, groups []int32, a []T, sel []int32, n int) {
	if sel == nil {
		for k := 0; k < n; k++ {
			g := groups[k]
			if !seen[g] || a[k] < acc[g] {
				acc[g] = a[k]
				seen[g] = true
			}
		}
		return
	}
	for k, i := range sel {
		g := groups[k]
		if !seen[g] || a[i] < acc[g] {
			acc[g] = a[i]
			seen[g] = true
		}
	}
}

// MaxGrouped folds maxima into acc; seen tracks which groups already hold a
// value.
func MaxGrouped[T Ordered](acc []T, seen []bool, groups []int32, a []T, sel []int32, n int) {
	if sel == nil {
		for k := 0; k < n; k++ {
			g := groups[k]
			if !seen[g] || a[k] > acc[g] {
				acc[g] = a[k]
				seen[g] = true
			}
		}
		return
	}
	for k, i := range sel {
		g := groups[k]
		if !seen[g] || a[i] > acc[g] {
			acc[g] = a[i]
			seen[g] = true
		}
	}
}
