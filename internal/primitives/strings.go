package primitives

import "strings"

// String primitives. The paper's "Many Functions" bullet: the SQL standard
// plus migration compatibility required dozens of functions, implemented
// efficiently either natively in the kernel (this file) or by rewriting into
// combinations of others (internal/rewriter). Experiment E9 compares the two
// routes.

// UpperV computes dst = UPPER(a).
func UpperV(dst, a []string, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = strings.ToUpper(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = strings.ToUpper(a[i])
	}
}

// LowerV computes dst = LOWER(a).
func LowerV(dst, a []string, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = strings.ToLower(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = strings.ToLower(a[i])
	}
}

// LengthV computes dst = LENGTH(a) in bytes.
func LengthV(dst []int64, a []string, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = int64(len(a[i]))
		}
		return
	}
	for _, i := range sel {
		dst[i] = int64(len(a[i]))
	}
}

// ConcatVV computes dst = a || b.
func ConcatVV(dst, a, b []string, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			dst[i] = a[i] + b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] + b[i]
	}
}

// ConcatVC computes dst = a || c.
func ConcatVC(dst, a []string, c string, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = a[i] + c
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] + c
	}
}

// ConcatCV computes dst = c || a.
func ConcatCV(dst []string, c string, a []string, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = c + a[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = c + a[i]
	}
}

// substr implements SQL SUBSTR with 1-based start; out-of-range arguments
// clamp rather than error, per the standard.
func substr(s string, start, length int64) string {
	if length < 0 {
		length = 0
	}
	from := start - 1
	if from < 0 {
		// Negative/zero start positions eat into the length (SQL behaviour).
		length += from
		from = 0
		if length < 0 {
			length = 0
		}
	}
	if from >= int64(len(s)) {
		return ""
	}
	to := from + length
	if to > int64(len(s)) {
		to = int64(len(s))
	}
	return s[from:to]
}

// SubstrVCC computes dst = SUBSTR(a, start, length) with constant bounds.
func SubstrVCC(dst, a []string, start, length int64, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = substr(a[i], start, length)
		}
		return
	}
	for _, i := range sel {
		dst[i] = substr(a[i], start, length)
	}
}

// SubstrVVV computes dst = SUBSTR(a, start[i], length[i]).
func SubstrVVV(dst, a []string, start, length []int64, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = substr(a[i], start[i], length[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = substr(a[i], start[i], length[i])
	}
}

// TrimV computes dst = TRIM(a) (both sides, spaces).
func TrimV(dst, a []string, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = strings.TrimSpace(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = strings.TrimSpace(a[i])
	}
}

// LTrimV computes dst = LTRIM(a).
func LTrimV(dst, a []string, sel []int32) {
	f := func(s string) string { return strings.TrimLeft(s, " ") }
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = f(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = f(a[i])
	}
}

// RTrimV computes dst = RTRIM(a).
func RTrimV(dst, a []string, sel []int32) {
	f := func(s string) string { return strings.TrimRight(s, " ") }
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = f(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = f(a[i])
	}
}

// ReplaceVCC computes dst = REPLACE(a, old, new) with constant patterns.
func ReplaceVCC(dst, a []string, old, new string, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = strings.ReplaceAll(a[i], old, new)
		}
		return
	}
	for _, i := range sel {
		dst[i] = strings.ReplaceAll(a[i], old, new)
	}
}

// PositionVC computes dst = POSITION(needle IN a), 1-based, 0 when absent.
func PositionVC(dst []int64, a []string, needle string, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = int64(strings.Index(a[i], needle)) + 1
		}
		return
	}
	for _, i := range sel {
		dst[i] = int64(strings.Index(a[i], needle)) + 1
	}
}

// LPadVC computes dst = LPAD(a, width, pad).
func LPadVC(dst, a []string, width int64, pad string, sel []int32) {
	f := func(s string) string { return padStr(s, int(width), pad, true) }
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = f(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = f(a[i])
	}
}

// RPadVC computes dst = RPAD(a, width, pad).
func RPadVC(dst, a []string, width int64, pad string, sel []int32) {
	f := func(s string) string { return padStr(s, int(width), pad, false) }
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = f(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = f(a[i])
	}
}

func padStr(s string, width int, pad string, left bool) string {
	if width <= len(s) {
		return s[:width]
	}
	if pad == "" {
		return s
	}
	need := width - len(s)
	var b strings.Builder
	b.Grow(need)
	for b.Len() < need {
		rem := need - b.Len()
		if rem >= len(pad) {
			b.WriteString(pad)
		} else {
			b.WriteString(pad[:rem])
		}
	}
	if left {
		return b.String() + s
	}
	return s + b.String()
}

// LIKE support. Patterns are compiled once per query into a matcher, then
// applied vector-at-a-time — compiling per value would be exactly the kind
// of per-tuple overhead vectorization exists to avoid.

// LikeMatcher is a compiled SQL LIKE pattern (% = any run, _ = any byte,
// backslash escapes). Compilation detects the four common shapes (exact,
// prefix, suffix, contains) and dispatches them to direct string operations;
// everything else uses an iterative backtracking matcher.
type LikeMatcher struct {
	pattern string
	// Fast paths detected at compile time:
	kind    likeKind
	literal string
}

type likeKind uint8

const (
	likeGeneral likeKind = iota
	likeExact
	likePrefix
	likeSuffix
	likeContains
)

// CompileLike builds a matcher for a LIKE pattern.
func CompileLike(pattern string) *LikeMatcher {
	m := &LikeMatcher{pattern: pattern, kind: likeGeneral}
	// Classify: fast paths require no '_' and no escapes, with '%' only at
	// the very ends.
	inner := pattern
	hasL, hasR := false, false
	for len(inner) > 0 && inner[0] == '%' {
		hasL = true
		inner = inner[1:]
	}
	for len(inner) > 0 && inner[len(inner)-1] == '%' {
		hasR = true
		inner = inner[:len(inner)-1]
	}
	if !strings.ContainsAny(inner, "%_\\") {
		switch {
		case !hasL && !hasR:
			m.kind = likeExact
		case !hasL && hasR:
			m.kind = likePrefix
		case hasL && !hasR:
			m.kind = likeSuffix
		default:
			m.kind = likeContains
		}
		m.literal = inner
	}
	return m
}

// Match reports whether s matches the compiled pattern.
func (m *LikeMatcher) Match(s string) bool {
	switch m.kind {
	case likeExact:
		return s == m.literal
	case likePrefix:
		return strings.HasPrefix(s, m.literal)
	case likeSuffix:
		return strings.HasSuffix(s, m.literal)
	case likeContains:
		return strings.Contains(s, m.literal)
	}
	return likeMatch(s, m.pattern)
}

// likeMatch is the classic iterative wildcard matcher with single-level
// backtracking on the most recent '%'.
func likeMatch(s, p string) bool {
	si, pi := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		if pi < len(p) {
			switch c := p[pi]; {
			case c == '\\' && pi+1 < len(p):
				if p[pi+1] == s[si] {
					si++
					pi += 2
					continue
				}
			case c == '%':
				star, mark = pi, si
				pi++
				continue
			case c == '_' || c == s[si]:
				si++
				pi++
				continue
			}
		}
		if star >= 0 {
			mark++
			si = mark
			pi = star + 1
			continue
		}
		return false
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// SelLikeVC selects positions whose string matches the compiled pattern.
func SelLikeVC(dst []int32, a []string, m *LikeMatcher, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if m.Match(a[i]) {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if m.Match(a[i]) {
			dst = append(dst, i)
		}
	}
	return dst
}

// LikeV materializes LIKE results as a bool vector.
func LikeV(dst []bool, a []string, m *LikeMatcher, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = m.Match(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = m.Match(a[i])
	}
}
