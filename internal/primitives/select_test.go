package primitives

import (
	"testing"
	"testing/quick"
)

func TestSelVCFamily(t *testing.T) {
	a := []int64{5, 1, 7, 5, 3}
	check := func(name string, got []int32, want ...int32) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: got %v want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: got %v want %v", name, got, want)
			}
		}
	}
	check("eq", SelEqVC(nil, a, int64(5), nil, 5), 0, 3)
	check("ne", SelNeVC(nil, a, int64(5), nil, 5), 1, 2, 4)
	check("lt", SelLtVC(nil, a, int64(5), nil, 5), 1, 4)
	check("le", SelLeVC(nil, a, int64(5), nil, 5), 0, 1, 3, 4)
	check("gt", SelGtVC(nil, a, int64(5), nil, 5), 2)
	check("ge", SelGeVC(nil, a, int64(5), nil, 5), 0, 2, 3)
	check("between", SelBetweenVCC(nil, a, int64(3), int64(5), nil, 5), 0, 3, 4)
	// Chained through a prior selection.
	prior := []int32{0, 2, 4}
	check("chained gt", SelGtVC(nil, a, int64(4), prior, 5), 0, 2)
}

func TestSelVVFamily(t *testing.T) {
	a := []int32{1, 5, 3, 9}
	b := []int32{1, 4, 3, 10}
	if got := SelEqVV(nil, a, b, nil, 4); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("eqvv: %v", got)
	}
	if got := SelNeVV(nil, a, b, nil, 4); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("nevv: %v", got)
	}
	if got := SelLtVV(nil, a, b, nil, 4); len(got) != 1 || got[0] != 3 {
		t.Fatalf("ltvv: %v", got)
	}
	if got := SelGtVV(nil, a, b, nil, 4); len(got) != 1 || got[0] != 1 {
		t.Fatalf("gtvv: %v", got)
	}
	if got := SelLeVV(nil, a, b, nil, 4); len(got) != 3 {
		t.Fatalf("levv: %v", got)
	}
	if got := SelGeVV(nil, a, b, nil, 4); len(got) != 3 {
		t.Fatalf("gevv: %v", got)
	}
}

func TestSelStrings(t *testing.T) {
	a := []string{"apple", "banana", "apple", "cherry"}
	got := SelEqVC(nil, a, "apple", nil, 4)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("string eq: %v", got)
	}
	got = SelGtVC(nil, a, "banana", nil, 4)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("string gt: %v", got)
	}
}

func TestSelTrueFalse(t *testing.T) {
	b := []bool{true, false, true, false}
	if got := SelTrue(nil, b, nil, 4); len(got) != 2 || got[1] != 2 {
		t.Fatalf("true: %v", got)
	}
	if got := SelFalse(nil, b, nil, 4); len(got) != 2 || got[1] != 3 {
		t.Fatalf("false: %v", got)
	}
	if got := SelTrue(nil, b, []int32{1, 2, 3}, 4); len(got) != 1 || got[0] != 2 {
		t.Fatalf("true sel: %v", got)
	}
}

// Property: SelLtVC ∪ SelGeVC partitions the input selection.
func TestSelPartitionProperty(t *testing.T) {
	f := func(vals []int64, c int64) bool {
		n := len(vals)
		lt := SelLtVC(nil, vals, c, nil, n)
		ge := SelGeVC(nil, vals, c, nil, n)
		if len(lt)+len(ge) != n {
			return false
		}
		seen := make(map[int32]bool, n)
		for _, i := range lt {
			seen[i] = true
		}
		for _, i := range ge {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: selection vectors are always sorted ascending.
func TestSelSortedProperty(t *testing.T) {
	f := func(vals []float64, c float64) bool {
		got := SelGtVC(nil, vals, c, nil, len(vals))
		for i := 1; i < len(got); i++ {
			if got[i-1] >= got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
