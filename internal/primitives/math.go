package primitives

import "math"

// Math function primitives over float vectors.

// SqrtV computes dst = sqrt(a).
func SqrtV(dst, a []float64, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = math.Sqrt(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = math.Sqrt(a[i])
	}
}

// FloorV computes dst = floor(a).
func FloorV(dst, a []float64, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = math.Floor(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = math.Floor(a[i])
	}
}

// CeilV computes dst = ceil(a).
func CeilV(dst, a []float64, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = math.Ceil(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = math.Ceil(a[i])
	}
}

// RoundV computes dst = round-half-away-from-zero(a, digits).
func RoundV(dst, a []float64, digits int64, sel []int32) {
	scale := math.Pow(10, float64(digits))
	f := func(x float64) float64 { return math.Round(x*scale) / scale }
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = f(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = f(a[i])
	}
}

// PowVC computes dst = a ^ c.
func PowVC(dst, a []float64, c float64, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = math.Pow(a[i], c)
		}
		return
	}
	for _, i := range sel {
		dst[i] = math.Pow(a[i], c)
	}
}

// LnV computes dst = ln(a).
func LnV(dst, a []float64, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = math.Log(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = math.Log(a[i])
	}
}

// ExpV computes dst = e^a.
func ExpV(dst, a []float64, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = math.Exp(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = math.Exp(a[i])
	}
}

// SignV computes dst = sign(a) as -1, 0, +1.
func SignV[T Num](dst []T, a []T, sel []int32) {
	f := func(x T) T {
		switch {
		case x > 0:
			return 1
		case x < 0:
			return -1
		default:
			return 0
		}
	}
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = f(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = f(a[i])
	}
}
