package primitives

import (
	"testing"
	"testing/quick"
)

func TestDirectAggregates(t *testing.T) {
	a := []int64{3, 1, 4, 1, 5}
	if s := SumDirect(a, nil, 5); s != 14 {
		t.Fatalf("sum: %d", s)
	}
	if s := SumDirect(a, []int32{0, 2}, 5); s != 7 {
		t.Fatalf("sum sel: %d", s)
	}
	if c := CountDirect(nil, 5); c != 5 {
		t.Fatalf("count: %d", c)
	}
	if c := CountDirect([]int32{1, 2}, 5); c != 2 {
		t.Fatalf("count sel: %d", c)
	}
	if m, ok := MinDirect(a, nil, 5); !ok || m != 1 {
		t.Fatalf("min: %d %v", m, ok)
	}
	if m, ok := MaxDirect(a, nil, 5); !ok || m != 5 {
		t.Fatalf("max: %d %v", m, ok)
	}
	if _, ok := MinDirect(a, []int32{}, 5); ok {
		t.Fatal("empty min should report not-found")
	}
	if m, ok := MaxDirect([]string{"b", "a", "c"}, nil, 3); !ok || m != "c" {
		t.Fatalf("string max: %q", m)
	}
}

func TestGroupedAggregates(t *testing.T) {
	vals := []int64{10, 20, 30, 40}
	groups := []int32{0, 1, 0, 1}
	sum := make([]int64, 2)
	SumGrouped(sum, groups, vals, nil, 4)
	if sum[0] != 40 || sum[1] != 60 {
		t.Fatalf("sum grouped: %v", sum)
	}
	cnt := make([]int64, 2)
	CountGrouped(cnt, groups, nil, 4)
	if cnt[0] != 2 || cnt[1] != 2 {
		t.Fatalf("count grouped: %v", cnt)
	}
	mn := make([]int64, 2)
	seen := make([]bool, 2)
	MinGrouped(mn, seen, groups, vals, nil, 4)
	if mn[0] != 10 || mn[1] != 20 {
		t.Fatalf("min grouped: %v", mn)
	}
	mx := make([]int64, 2)
	seen2 := make([]bool, 2)
	MaxGrouped(mx, seen2, groups, vals, nil, 4)
	if mx[0] != 30 || mx[1] != 40 {
		t.Fatalf("max grouped: %v", mx)
	}
}

func TestGroupedWithSelection(t *testing.T) {
	vals := []int64{10, 20, 30, 40}
	sel := []int32{1, 3}    // logical rows are vals[1], vals[3]
	groups := []int32{0, 0} // parallel to sel
	sum := make([]int64, 1)
	SumGrouped(sum, groups, vals, sel, 4)
	if sum[0] != 60 {
		t.Fatalf("sum grouped sel: %v", sum)
	}
	cnt := make([]int64, 1)
	CountGrouped(cnt, groups, sel, 4)
	if cnt[0] != 2 {
		t.Fatalf("count grouped sel: %v", cnt)
	}
}

// Property: grouped sum over a single group equals direct sum.
func TestGroupedEqualsDirectProperty(t *testing.T) {
	f := func(vals []int64) bool {
		n := len(vals)
		groups := make([]int32, n)
		acc := make([]int64, 1)
		SumGrouped(acc, groups, vals, nil, n)
		return acc[0] == SumDirect(vals, nil, n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNullAwareVariants(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	aN := []bool{false, true, false, false}
	b := []float64{10, 10, 10, 10}
	bN := []bool{false, false, true, false}
	dst := make([]float64, 4)
	dstN := make([]bool, 4)
	NullAwareAddVV(dst, dstN, a, aN, b, bN, nil)
	if dst[0] != 11 || !dstN[1] || !dstN[2] || dst[3] != 14 || dstN[0] || dstN[3] {
		t.Fatalf("nullaware add: %v %v", dst, dstN)
	}
	NullAwareMulVV(dst, dstN, a, aN, b, bN, nil)
	if dst[0] != 10 || !dstN[1] || dst[3] != 40 {
		t.Fatalf("nullaware mul: %v %v", dst, dstN)
	}
	sel := NullAwareSelGtVC(nil, a, aN, 1.5, nil, 4)
	if len(sel) != 2 || sel[0] != 2 || sel[1] != 3 {
		t.Fatalf("nullaware sel: %v", sel)
	}
	s, c := NullAwareSumDirect(a, aN, nil, 4)
	if s != 8 || c != 3 {
		t.Fatalf("nullaware sum: %v %v", s, c)
	}
	// Decomposed path: value column holds safe zeros at NULL slots.
	av := []float64{1, 0, 3, 4}
	s2, c2 := DecomposedSumDirect(av, aN, nil, 4)
	if s2 != 8 || c2 != 3 {
		t.Fatalf("decomposed sum: %v %v", s2, c2)
	}
	if n := CountTrue(aN, []int32{0, 1}, 4); n != 1 {
		t.Fatalf("count true sel: %d", n)
	}
}

func TestHashBasics(t *testing.T) {
	a := []int64{1, 2, 1}
	h := make([]uint64, 3)
	HashInt(h, a, nil, 3)
	if h[0] != h[2] || h[0] == h[1] {
		t.Fatalf("int hash: %v", h)
	}
	s := []string{"x", "y", "x"}
	hs := make([]uint64, 3)
	HashString(hs, s, nil, 3)
	if hs[0] != hs[2] || hs[0] == hs[1] {
		t.Fatalf("str hash: %v", hs)
	}
	// Combining a second column separates (1,"x") from (1,"y").
	h2 := make([]uint64, 3)
	HashInt(h2, []int64{1, 1, 1}, nil, 3)
	RehashString(h2, s, nil, 3)
	if h2[0] == h2[1] || h2[0] != h2[2] {
		t.Fatalf("rehash: %v", h2)
	}
	f := []float64{0.0, 1.5, -0.0}
	hf := make([]uint64, 3)
	HashFloat(hf, f, nil, 3)
	if hf[0] != hf[2] {
		t.Fatal("-0.0 and 0.0 must hash equal")
	}
	b := []bool{true, false}
	hb := make([]uint64, 2)
	HashBool(hb, b, nil, 2)
	if hb[0] == hb[1] {
		t.Fatal("bool hash collision")
	}
	BucketMask(hf, 4, 3)
	for _, v := range hf {
		if v >= 16 {
			t.Fatal("bucket mask")
		}
	}
}

func TestHashWithSelection(t *testing.T) {
	a := []int32{7, 8, 9}
	dst := make([]uint64, 2)
	HashInt(dst, a, []int32{0, 2}, 3)
	full := make([]uint64, 3)
	HashInt(full, a, nil, 3)
	if dst[0] != full[0] || dst[1] != full[2] {
		t.Fatal("hash sel packs into dense positions")
	}
	RehashInt(dst, []int32{1, 1, 1}, []int32{0, 2}, 3)
	// Deterministic: recombining same inputs yields same outputs.
	dst2 := make([]uint64, 2)
	HashInt(dst2, a, []int32{0, 2}, 3)
	RehashInt(dst2, []int32{1, 1, 1}, []int32{0, 2}, 3)
	if dst[0] != dst2[0] || dst[1] != dst2[1] {
		t.Fatal("rehash not deterministic")
	}
}

func TestDatePrimitives(t *testing.T) {
	// 2020-02-29 and 1999-12-31.
	d1 := int32(18321)
	d2 := int32(10956)
	a := []int32{d1, d2}
	y := make([]int32, 2)
	DateYearV(y, a, nil)
	if y[0] != 2020 || y[1] != 1999 {
		t.Fatalf("year: %v", y)
	}
	m := make([]int32, 2)
	DateMonthV(m, a, nil)
	if m[0] != 2 || m[1] != 12 {
		t.Fatalf("month: %v", m)
	}
	d := make([]int32, 2)
	DateDayV(d, a, nil)
	if d[0] != 29 || d[1] != 31 {
		t.Fatalf("day: %v", d)
	}
	q := make([]int32, 2)
	DateQuarterV(q, a, nil)
	if q[0] != 1 || q[1] != 4 {
		t.Fatalf("quarter: %v", q)
	}
	dow := make([]int32, 2)
	DateDowV(dow, a, nil)
	if dow[0] != 6 { // 2020-02-29 was a Saturday
		t.Fatalf("dow: %v", dow)
	}
	add := make([]int32, 2)
	DateAddDaysVC(add, a, 1, nil)
	if add[0] != d1+1 {
		t.Fatal("add days")
	}
	DateAddMonthsVC(add, a, 12, nil)
	ym := make([]int32, 2)
	DateYearV(ym, add, nil)
	if ym[0] != 2021 {
		t.Fatalf("add months year: %v", ym)
	}
	diff := make([]int64, 2)
	DateDiffVV(diff, a, []int32{d2, d2}, nil)
	if diff[0] != int64(d1-d2) || diff[1] != 0 {
		t.Fatalf("diff: %v", diff)
	}
}

func TestMathPrimitives(t *testing.T) {
	a := []float64{4, 9}
	dst := make([]float64, 2)
	SqrtV(dst, a, nil)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatal("sqrt")
	}
	FloorV(dst, []float64{1.7, -1.2}, nil)
	if dst[0] != 1 || dst[1] != -2 {
		t.Fatal("floor")
	}
	CeilV(dst, []float64{1.2, -1.7}, nil)
	if dst[0] != 2 || dst[1] != -1 {
		t.Fatal("ceil")
	}
	RoundV(dst, []float64{1.256, 2.344}, 2, nil)
	if dst[0] != 1.26 || dst[1] != 2.34 {
		t.Fatalf("round: %v", dst)
	}
	PowVC(dst, []float64{2, 3}, 2, nil)
	if dst[0] != 4 || dst[1] != 9 {
		t.Fatal("pow")
	}
	LnV(dst, []float64{1, 1}, nil)
	if dst[0] != 0 {
		t.Fatal("ln")
	}
	ExpV(dst, []float64{0, 0}, nil)
	if dst[0] != 1 {
		t.Fatal("exp")
	}
	si := make([]int64, 3)
	SignV(si, []int64{-5, 0, 9}, nil)
	if si[0] != -1 || si[1] != 0 || si[2] != 1 {
		t.Fatal("sign")
	}
}
