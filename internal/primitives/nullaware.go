package primitives

// NULL handling contrast (experiment E7). Vectorwise's production choice —
// the paper's "NULLs" bullet — is to keep every primitive NULL-oblivious and
// represent a NULLable column as *two* plain columns: a value column holding
// a safe in-band value at NULL positions, plus a boolean null-indicator
// column. An expression over nullable inputs is rewritten into (a) the plain
// primitive over the value columns and (b) an OR over the indicator columns.
// Both parts are branch-free tight loops (AddVV + OrBool in this package).
//
// The functions in this file implement the road *not* taken: NULL-aware
// primitives that branch per element on the indicators. Each nullable
// operator variant must exist for every primitive (a combinatorial
// explosion X100 avoided), and the data-dependent branches defeat
// pipelining. E7 measures both approaches.

// NullAwareAddVV computes dst = a + b with per-element NULL propagation.
func NullAwareAddVV[T Num](dst []T, dstNull []bool, a []T, aNull []bool, b []T, bNull []bool, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			if aNull[i] || bNull[i] {
				dstNull[i] = true
				dst[i] = 0
			} else {
				dstNull[i] = false
				dst[i] = a[i] + b[i]
			}
		}
		return
	}
	for _, i := range sel {
		if aNull[i] || bNull[i] {
			dstNull[i] = true
			dst[i] = 0
		} else {
			dstNull[i] = false
			dst[i] = a[i] + b[i]
		}
	}
}

// NullAwareMulVV computes dst = a * b with per-element NULL propagation.
func NullAwareMulVV[T Num](dst []T, dstNull []bool, a []T, aNull []bool, b []T, bNull []bool, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			if aNull[i] || bNull[i] {
				dstNull[i] = true
				dst[i] = 0
			} else {
				dstNull[i] = false
				dst[i] = a[i] * b[i]
			}
		}
		return
	}
	for _, i := range sel {
		if aNull[i] || bNull[i] {
			dstNull[i] = true
			dst[i] = 0
		} else {
			dstNull[i] = false
			dst[i] = a[i] * b[i]
		}
	}
}

// NullAwareSelGtVC selects rows where a > c AND a IS NOT NULL, branching on
// the indicator per element.
func NullAwareSelGtVC[T Ordered](dst []int32, a []T, aNull []bool, c T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if !aNull[i] && a[i] > c {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if !aNull[i] && a[i] > c {
			dst = append(dst, i)
		}
	}
	return dst
}

// NullAwareSumDirect sums non-NULL selected values (branchy SQL SUM).
func NullAwareSumDirect[T Num](a []T, aNull []bool, sel []int32, n int) (T, int64) {
	var s T
	var cnt int64
	if sel == nil {
		for i := 0; i < n; i++ {
			if !aNull[i] {
				s += a[i]
				cnt++
			}
		}
		return s, cnt
	}
	for _, i := range sel {
		if !aNull[i] {
			s += a[i]
			cnt++
		}
	}
	return s, cnt
}

// Decomposed counterparts used by the rewriter-generated plans: these are
// thin named compositions so E7 can benchmark the exact production path.

// DecomposedSumDirect sums a nullable column represented as (values,
// indicator) by first zeroing NULL slots arithmetically: sum += v * (1 -
// ind). Because NULL slots already hold the safe value 0 on storage-loaded
// columns, the multiply is skipped and this degenerates to plain SumDirect
// plus a NOT-NULL count.
func DecomposedSumDirect[T Num](a []T, ind []bool, sel []int32, n int) (T, int64) {
	s := SumDirect(a, sel, n)
	nulls := CountTrue(ind, sel, n)
	var total int64
	if sel == nil {
		total = int64(n)
	} else {
		total = int64(len(sel))
	}
	return s, total - nulls
}

// CountTrue counts set positions of a bool vector under selection; used for
// null-indicator statistics and for COUNT(col) over decomposed columns.
func CountTrue(a []bool, sel []int32, n int) int64 {
	var c int64
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] {
				c++
			}
		}
		return c
	}
	for _, i := range sel {
		if a[i] {
			c++
		}
	}
	return c
}
