package primitives

import (
	"testing"
	"testing/quick"
)

func TestAddVV(t *testing.T) {
	a := []int64{1, 2, 3, 4}
	b := []int64{10, 20, 30, 40}
	dst := make([]int64, 4)
	AddVV(dst, a, b, nil)
	for i := range dst {
		if dst[i] != a[i]+b[i] {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
	}
	// Selected variant leaves unselected slots alone.
	dst2 := make([]int64, 4)
	AddVV(dst2, a, b, []int32{1, 3})
	if dst2[0] != 0 || dst2[1] != 22 || dst2[2] != 0 || dst2[3] != 44 {
		t.Fatalf("sel add: %v", dst2)
	}
}

func TestMapVCShapes(t *testing.T) {
	a := []float64{1, 2, 3}
	dst := make([]float64, 3)
	AddVC(dst, a, 0.5, nil)
	if dst[2] != 3.5 {
		t.Fatal("AddVC")
	}
	SubVC(dst, a, 1, nil)
	if dst[0] != 0 {
		t.Fatal("SubVC")
	}
	SubCV(dst, 10, a, nil)
	if dst[2] != 7 {
		t.Fatal("SubCV")
	}
	MulVC(dst, a, 2, nil)
	if dst[1] != 4 {
		t.Fatal("MulVC")
	}
	DivVCF(dst, a, 2, nil)
	if dst[1] != 1 {
		t.Fatal("DivVCF")
	}
}

func TestSubMulDiv(t *testing.T) {
	a := []int32{10, 20, 30}
	b := []int32{1, 2, 3}
	dst := make([]int32, 3)
	SubVV(dst, a, b, nil)
	if dst[2] != 27 {
		t.Fatal("SubVV")
	}
	MulVV(dst, a, b, nil)
	if dst[1] != 40 {
		t.Fatal("MulVV")
	}
	f := []float64{6, 9}
	g := []float64{2, 3}
	fd := make([]float64, 2)
	DivVVF(fd, f, g, nil)
	if fd[0] != 3 || fd[1] != 3 {
		t.Fatal("DivVVF")
	}
}

func TestNegAbsMinMax(t *testing.T) {
	a := []int64{-3, 5, 0}
	dst := make([]int64, 3)
	NegV(dst, a, nil)
	if dst[0] != 3 || dst[1] != -5 {
		t.Fatal("NegV")
	}
	AbsV(dst, a, nil)
	if dst[0] != 3 || dst[1] != 5 || dst[2] != 0 {
		t.Fatal("AbsV")
	}
	b := []int64{1, 9, -2}
	MinVV(dst, a, b, nil)
	if dst[0] != -3 || dst[1] != 5 || dst[2] != -2 {
		t.Fatal("MinVV")
	}
	MaxVV(dst, a, b, nil)
	if dst[0] != 1 || dst[1] != 9 || dst[2] != 0 {
		t.Fatal("MaxVV")
	}
}

func TestCmpAndLogical(t *testing.T) {
	a := []int64{1, 5, 5}
	b := []int64{5, 5, 1}
	eq := make([]bool, 3)
	CmpEqVV(eq, a, b, nil)
	if eq[0] || !eq[1] || eq[2] {
		t.Fatal("CmpEqVV")
	}
	lt := make([]bool, 3)
	CmpLtVV(lt, a, b, nil)
	if !lt[0] || lt[1] || lt[2] {
		t.Fatal("CmpLtVV")
	}
	ltc := make([]bool, 3)
	CmpLtVC(ltc, a, int64(5), nil)
	if !ltc[0] || ltc[1] {
		t.Fatal("CmpLtVC")
	}
	lec := make([]bool, 3)
	CmpLeVC(lec, a, int64(5), nil)
	if !lec[1] {
		t.Fatal("CmpLeVC")
	}
	eqc := make([]bool, 3)
	CmpEqVC(eqc, a, int64(5), nil)
	if eqc[0] || !eqc[1] {
		t.Fatal("CmpEqVC")
	}
	and := make([]bool, 3)
	AndBool(and, eq, lt, nil)
	if and[0] || and[1] || and[2] {
		t.Fatal("AndBool")
	}
	or := make([]bool, 3)
	OrBool(or, eq, lt, nil)
	if !or[0] || !or[1] || or[2] {
		t.Fatal("OrBool")
	}
	not := make([]bool, 3)
	NotBool(not, eq, nil)
	if !not[0] || not[1] {
		t.Fatal("NotBool")
	}
}

func TestCastAndIfThenElse(t *testing.T) {
	a := []int32{1, 2, 3}
	f := make([]float64, 3)
	CastNum(f, a, nil)
	if f[2] != 3.0 {
		t.Fatal("CastNum widen")
	}
	back := make([]int64, 3)
	CastNum(back, f, nil)
	if back[1] != 2 {
		t.Fatal("CastNum narrow")
	}
	cond := []bool{true, false, true}
	x := []int64{1, 2, 3}
	y := []int64{10, 20, 30}
	out := make([]int64, 3)
	IfThenElse(out, cond, x, y, nil)
	if out[0] != 1 || out[1] != 20 || out[2] != 3 {
		t.Fatal("IfThenElse")
	}
	IfThenElse(out, cond, x, y, []int32{1})
	if out[1] != 20 {
		t.Fatal("IfThenElse sel")
	}
}

func TestMod(t *testing.T) {
	a := []int64{10, 11, 12}
	b := []int64{3, 3, 5}
	dst := make([]int64, 3)
	ModVV(dst, a, b, nil)
	if dst[0] != 1 || dst[1] != 2 || dst[2] != 2 {
		t.Fatal("ModVV")
	}
	ModVC(dst, a, 4, nil)
	if dst[0] != 2 || dst[2] != 0 {
		t.Fatal("ModVC")
	}
}

// Property: AddVV with identity selection equals AddVV with nil selection.
func TestSelEquivalenceProperty(t *testing.T) {
	f := func(a, b []int64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		if n == 0 {
			return true
		}
		a, b = a[:n], b[:n]
		d1 := make([]int64, n)
		d2 := make([]int64, n)
		sel := make([]int32, n)
		for i := range sel {
			sel[i] = int32(i)
		}
		AddVV(d1, a, b, nil)
		AddVV(d2, a, b, sel)
		for i := range d1 {
			if d1[i] != d2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
