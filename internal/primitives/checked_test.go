package primitives

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCheckedAddNoOverflow(t *testing.T) {
	a := []int64{1, 2, 3}
	b := []int64{4, 5, 6}
	dst := make([]int64, 3)
	if err := CheckedAddVV(dst, a, b, nil); err != nil {
		t.Fatal(err)
	}
	if dst[2] != 9 {
		t.Fatal("sum wrong")
	}
}

func TestCheckedAddOverflow(t *testing.T) {
	a := []int64{1, math.MaxInt64, 3}
	b := []int64{1, 1, 3}
	dst := make([]int64, 3)
	err := CheckedAddVV(dst, a, b, nil)
	if err == nil {
		t.Fatal("expected overflow")
	}
	var pe *PosError
	if !errors.As(err, &pe) || pe.Pos != 1 || !errors.Is(err, ErrOverflow) {
		t.Fatalf("wrong error: %v", err)
	}
	// Negative overflow too.
	a = []int64{math.MinInt64}
	b = []int64{-1}
	if err := CheckedAddVV(make([]int64, 1), a, b, nil); !errors.Is(err, ErrOverflow) {
		t.Fatal("negative overflow missed")
	}
	// With selection: overflow at unselected position is ignored.
	a = []int64{math.MaxInt64, 5}
	b = []int64{1, 5}
	if err := CheckedAddVV(make([]int64, 2), a, b, []int32{1}); err != nil {
		t.Fatalf("unselected overflow reported: %v", err)
	}
}

func TestCheckedSub(t *testing.T) {
	dst := make([]int64, 2)
	if err := CheckedSubVV(dst, []int64{5, 0}, []int64{3, 7}, nil); err != nil || dst[1] != -7 {
		t.Fatalf("sub: %v %v", dst, err)
	}
	if err := CheckedSubVV(dst, []int64{math.MinInt64, 0}, []int64{1, 0}, nil); !errors.Is(err, ErrOverflow) {
		t.Fatal("sub overflow missed")
	}
	var pe *PosError
	err := CheckedSubVV(dst, []int64{0, math.MaxInt64}, []int64{0, -1}, nil)
	if !errors.As(err, &pe) || pe.Pos != 1 {
		t.Fatalf("sub overflow position: %v", err)
	}
}

func TestCheckedMulI64(t *testing.T) {
	dst := make([]int64, 2)
	if err := CheckedMulVVI64(dst, []int64{1 << 31, 3}, []int64{2, 3}, nil); err != nil || dst[1] != 9 {
		t.Fatalf("mul: %v %v", dst, err)
	}
	if err := CheckedMulVVI64(dst, []int64{1 << 32, 1}, []int64{1 << 32, 1}, nil); !errors.Is(err, ErrOverflow) {
		t.Fatal("mul overflow missed")
	}
	if err := CheckedMulVVI64(dst, []int64{math.MinInt64, 1}, []int64{-1, 1}, nil); !errors.Is(err, ErrOverflow) {
		t.Fatal("MinInt*-1 overflow missed")
	}
}

func TestCheckedMulI32(t *testing.T) {
	dst := make([]int32, 2)
	if err := CheckedMulVVI32(dst, []int32{1000, -4}, []int32{1000, 5}, nil); err != nil || dst[0] != 1000000 || dst[1] != -20 {
		t.Fatalf("mul32: %v %v", dst, err)
	}
	if err := CheckedMulVVI32(dst, []int32{1 << 20, 1}, []int32{1 << 20, 1}, nil); !errors.Is(err, ErrOverflow) {
		t.Fatal("mul32 overflow missed")
	}
}

func TestCheckedDiv(t *testing.T) {
	dst := make([]int64, 3)
	if err := CheckedDivVV(dst, []int64{10, 9, 8}, []int64{2, 3, 4}, nil); err != nil || dst[0] != 5 || dst[2] != 2 {
		t.Fatalf("div: %v %v", dst, err)
	}
	err := CheckedDivVV(dst, []int64{10, 9, 8}, []int64{2, 0, 4}, nil)
	var pe *PosError
	if !errors.As(err, &pe) || pe.Pos != 1 || !errors.Is(err, ErrDivByZero) {
		t.Fatalf("div0: %v", err)
	}
	// Selected: zero at unselected slot must not error.
	if err := CheckedDivVV(dst, []int64{10, 9, 8}, []int64{2, 0, 4}, []int32{0, 2}); err != nil {
		t.Fatalf("div sel: %v", err)
	}
}

func TestCheckedDivFloat(t *testing.T) {
	dst := make([]float64, 2)
	if err := CheckedDivVVF(dst, []float64{1, 4}, []float64{2, 2}, nil); err != nil || dst[1] != 2 {
		t.Fatalf("fdiv: %v %v", dst, err)
	}
	if err := CheckedDivVVF(dst, []float64{1, 4}, []float64{2, 0}, nil); !errors.Is(err, ErrDivByZero) {
		t.Fatal("fdiv0 missed")
	}
	if err := CheckedDivVCF(dst, []float64{1, 4}, 0, nil); !errors.Is(err, ErrDivByZero) {
		t.Fatal("fdivc0 missed")
	}
	if err := CheckedDivVCF(dst, []float64{1, 4}, 2, nil); err != nil || dst[0] != 0.5 {
		t.Fatalf("fdivc: %v %v", dst, err)
	}
}

func TestCheckedMod(t *testing.T) {
	dst := make([]int64, 2)
	if err := CheckedModVV(dst, []int64{10, 7}, []int64{3, 4}, nil); err != nil || dst[0] != 1 || dst[1] != 3 {
		t.Fatalf("mod: %v %v", dst, err)
	}
	if err := CheckedModVV(dst, []int64{10, 7}, []int64{3, 0}, nil); !errors.Is(err, ErrDivByZero) {
		t.Fatal("mod0 missed")
	}
	if err := CheckedModVV(dst, []int64{10, 7}, []int64{3, 0}, []int32{0}); err != nil {
		t.Fatal("mod sel")
	}
}

func TestNaiveChecked(t *testing.T) {
	dst := make([]int64, 2)
	if err := NaiveCheckedAddVV(dst, []int64{1, 2}, []int64{3, 4}, nil, NaiveAddOverflowCheck[int64]); err != nil || dst[1] != 6 {
		t.Fatalf("naive add: %v %v", dst, err)
	}
	err := NaiveCheckedAddVV(dst[:1], []int64{math.MaxInt64}, []int64{1}, nil, NaiveAddOverflowCheck[int64])
	if !errors.Is(err, ErrOverflow) {
		t.Fatal("naive overflow missed")
	}
	if err := NaiveCheckedDivVV(dst, []int64{6, 8}, []int64{2, 0}, nil); !errors.Is(err, ErrDivByZero) {
		t.Fatal("naive div0 missed")
	}
}

// Property: checked and naive-checked addition agree on both result and
// error/no-error outcome.
func TestCheckedAgreesWithNaiveProperty(t *testing.T) {
	f := func(a, b []int64) bool {
		n := min(len(a), len(b))
		a, b = a[:n], b[:n]
		d1 := make([]int64, n)
		d2 := make([]int64, n)
		e1 := CheckedAddVV(d1, a, b, nil)
		e2 := NaiveCheckedAddVV(d2, a, b, nil, NaiveAddOverflowCheck[int64])
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 != nil {
			var p1, p2 *PosError
			errors.As(e1, &p1)
			errors.As(e2, &p2)
			return p1.Pos == p2.Pos
		}
		for i := range d1 {
			if d1[i] != d2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPosErrorFormat(t *testing.T) {
	e := &PosError{Err: ErrOverflow, Pos: 7}
	if e.Error() != "arithmetic overflow at row offset 7" {
		t.Fatalf("format: %q", e.Error())
	}
}
