package primitives

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCaseAndLength(t *testing.T) {
	a := []string{"Hello", "WORLD"}
	up := make([]string, 2)
	UpperV(up, a, nil)
	if up[0] != "HELLO" {
		t.Fatal("upper")
	}
	lo := make([]string, 2)
	LowerV(lo, a, nil)
	if lo[1] != "world" {
		t.Fatal("lower")
	}
	ln := make([]int64, 2)
	LengthV(ln, a, nil)
	if ln[0] != 5 {
		t.Fatal("length")
	}
}

func TestConcat(t *testing.T) {
	a := []string{"a", "b"}
	b := []string{"1", "2"}
	dst := make([]string, 2)
	ConcatVV(dst, a, b, nil)
	if dst[1] != "b2" {
		t.Fatal("vv")
	}
	ConcatVC(dst, a, "!", nil)
	if dst[0] != "a!" {
		t.Fatal("vc")
	}
	ConcatCV(dst, "<", a, nil)
	if dst[1] != "<b" {
		t.Fatal("cv")
	}
}

func TestSubstr(t *testing.T) {
	cases := []struct {
		s      string
		start  int64
		length int64
		want   string
	}{
		{"hello", 1, 3, "hel"},
		{"hello", 2, 10, "ello"},
		{"hello", 0, 3, "he"},  // start 0 eats one char of length
		{"hello", -1, 4, "he"}, // negative start
		{"hello", 6, 2, ""},    // past end
		{"hello", 3, 0, ""},    // zero length
		{"hello", 3, -1, ""},   // negative length
	}
	for _, c := range cases {
		if got := substr(c.s, c.start, c.length); got != c.want {
			t.Errorf("substr(%q,%d,%d) = %q want %q", c.s, c.start, c.length, got, c.want)
		}
	}
	dst := make([]string, 1)
	SubstrVCC(dst, []string{"abcdef"}, 2, 3, nil)
	if dst[0] != "bcd" {
		t.Fatal("SubstrVCC")
	}
	SubstrVVV(dst, []string{"abcdef"}, []int64{3}, []int64{2}, nil)
	if dst[0] != "cd" {
		t.Fatal("SubstrVVV")
	}
}

func TestTrimFamily(t *testing.T) {
	a := []string{"  hi  "}
	dst := make([]string, 1)
	TrimV(dst, a, nil)
	if dst[0] != "hi" {
		t.Fatal("trim")
	}
	LTrimV(dst, a, nil)
	if dst[0] != "hi  " {
		t.Fatal("ltrim")
	}
	RTrimV(dst, a, nil)
	if dst[0] != "  hi" {
		t.Fatal("rtrim")
	}
}

func TestReplacePosition(t *testing.T) {
	dst := make([]string, 1)
	ReplaceVCC(dst, []string{"banana"}, "an", "AN", nil)
	if dst[0] != "bANANa" {
		t.Fatalf("replace: %q", dst[0])
	}
	pos := make([]int64, 2)
	PositionVC(pos, []string{"hello", "xyz"}, "ll", nil)
	if pos[0] != 3 || pos[1] != 0 {
		t.Fatalf("position: %v", pos)
	}
}

func TestPad(t *testing.T) {
	dst := make([]string, 1)
	LPadVC(dst, []string{"7"}, 3, "0", nil)
	if dst[0] != "007" {
		t.Fatalf("lpad: %q", dst[0])
	}
	RPadVC(dst, []string{"ab"}, 5, "xy", nil)
	if dst[0] != "abxyx" {
		t.Fatalf("rpad: %q", dst[0])
	}
	LPadVC(dst, []string{"abcdef"}, 3, "0", nil)
	if dst[0] != "abc" {
		t.Fatalf("lpad truncate: %q", dst[0])
	}
	LPadVC(dst, []string{"a"}, 4, "", nil)
	if dst[0] != "a" {
		t.Fatalf("lpad empty pad: %q", dst[0])
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		pattern string
		s       string
		want    bool
	}{
		{"hello", "hello", true},
		{"hello", "hell", false},
		{"he%", "hello", true},
		{"he%", "ahello", false},
		{"%llo", "hello", true},
		{"%ell%", "hello", true},
		{"%ell%", "helo", false},
		{"h_llo", "hello", true},
		{"h_llo", "hllo", false},
		{"%", "", true},
		{"%", "anything", true},
		{"_", "", false},
		{"_", "x", true},
		{"a%b%c", "aXbYc", true},
		{"a%b%c", "acb", false},
		{"a\\%b", "a%b", true},
		{"a\\%b", "aXb", false},
		{"%a%a%", "aa", true},
		{"%a%a%", "a", false},
		{"__%", "ab", true},
		{"__%", "a", false},
	}
	for _, c := range cases {
		m := CompileLike(c.pattern)
		if got := m.Match(c.s); got != c.want {
			t.Errorf("LIKE %q ~ %q = %v, want %v", c.s, c.pattern, got, c.want)
		}
	}
}

func TestLikeFastPathClassification(t *testing.T) {
	if CompileLike("abc").kind != likeExact {
		t.Error("exact")
	}
	if CompileLike("abc%").kind != likePrefix {
		t.Error("prefix")
	}
	if CompileLike("%abc").kind != likeSuffix {
		t.Error("suffix")
	}
	if CompileLike("%abc%").kind != likeContains {
		t.Error("contains")
	}
	if CompileLike("a_c").kind != likeGeneral {
		t.Error("underscore must be general")
	}
	if CompileLike("a%c").kind != likeGeneral {
		t.Error("inner %% must be general")
	}
}

func TestSelLikeAndLikeV(t *testing.T) {
	a := []string{"apple pie", "banana", "apple tart", "cherry"}
	m := CompileLike("apple%")
	got := SelLikeVC(nil, a, m, nil, 4)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("sel like: %v", got)
	}
	dst := make([]bool, 4)
	LikeV(dst, a, m, nil)
	if !dst[0] || dst[1] || !dst[2] || dst[3] {
		t.Fatalf("likev: %v", dst)
	}
}

// Property: the general matcher agrees with the fast paths on their shapes.
func TestLikeFastPathAgreesWithGeneral(t *testing.T) {
	sanitize := func(s string) string {
		return strings.Map(func(r rune) rune {
			if r == '%' || r == '_' || r == '\\' {
				return 'x'
			}
			return r
		}, s)
	}
	f := func(lit, s string) bool {
		lit, s = sanitize(lit), sanitize(s)
		for _, pat := range []string{lit, lit + "%", "%" + lit, "%" + lit + "%"} {
			fast := CompileLike(pat).Match(s)
			slow := likeMatch(s, pat)
			if fast != slow {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
