package primitives

import "vectorwise/internal/types"

// Date primitives operate on int32 day-number vectors (the storage
// representation of DATE). Extraction functions return int32 parts; the
// expression layer widens as needed.

// DateYearV computes dst = EXTRACT(YEAR FROM a).
func DateYearV(dst, a []int32, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = types.DateYear(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = types.DateYear(a[i])
	}
}

// DateMonthV computes dst = EXTRACT(MONTH FROM a).
func DateMonthV(dst, a []int32, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = types.DateMonth(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = types.DateMonth(a[i])
	}
}

// DateDayV computes dst = EXTRACT(DAY FROM a).
func DateDayV(dst, a []int32, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = types.DateDay(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = types.DateDay(a[i])
	}
}

// DateQuarterV computes dst = EXTRACT(QUARTER FROM a).
func DateQuarterV(dst, a []int32, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = types.DateQuarter(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = types.DateQuarter(a[i])
	}
}

// DateDowV computes dst = ISO day of week of a.
func DateDowV(dst, a []int32, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = types.DateDayOfWeek(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = types.DateDayOfWeek(a[i])
	}
}

// DateAddDaysVC computes dst = a + c days (dates are day numbers, so this is
// AddVC — provided as a named primitive for the function registry).
func DateAddDaysVC(dst, a []int32, c int32, sel []int32) {
	AddVC(dst, a, c, sel)
}

// DateAddMonthsVC computes dst = ADD_MONTHS(a, c) with day clamping.
func DateAddMonthsVC(dst, a []int32, c int32, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = types.DateAddMonths(a[i], c)
		}
		return
	}
	for _, i := range sel {
		dst[i] = types.DateAddMonths(a[i], c)
	}
}

// DateDiffVV computes dst = a - b in days, widened to int64.
func DateDiffVV(dst []int64, a, b []int32, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			dst[i] = int64(a[i]) - int64(b[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = int64(a[i]) - int64(b[i])
	}
}
