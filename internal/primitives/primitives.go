// Package primitives is the vectorized primitive library of the X100-style
// kernel: tight loops over typed slices, optionally driven by a selection
// vector, with no per-value interpretation, allocation or boxing.
//
// The package provides several variants of the arithmetic primitives that
// exist to reproduce specific claims of the paper:
//
//   - unchecked map primitives (the fast path),
//   - vectorized *checked* primitives that detect division-by-zero and
//     integer overflow with branch-light flag accumulation (the "special
//     algorithms in the kernel" the paper says had to be devised),
//   - deliberately naive per-value checked primitives used only by
//     experiment E8 to show what the paper calls "significant overhead" of
//     a straightforward implementation,
//   - branchy NULL-aware primitives used only by experiment E7 to contrast
//     with Vectorwise's two-column NULL decomposition.
package primitives

// Num constrains the numeric element types the kernel supports.
type Num interface {
	~int32 | ~int64 | ~float64
}

// Ordered constrains element types with a total order (comparisons,
// min/max, sort keys).
type Ordered interface {
	~int32 | ~int64 | ~float64 | ~string
}

// Integer constrains the integral element types (overflow checking applies
// only to these).
type Integer interface {
	~int32 | ~int64
}
