package primitives

import "math"

// Vectorized hashing. Hash columns combine into []uint64 buckets via
// multiply-xor mixing (a 64-bit finalizer derived from splitmix64), computed
// column-at-a-time as X100 does: first key column initializes the hash
// vector, subsequent columns combine into it.

const (
	hashSeed uint64 = 0x9e3779b97f4a7c15
	mixMul1  uint64 = 0xbf58476d1ce4e5b9
	mixMul2  uint64 = 0x94d049bb133111eb
)

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= mixMul1
	x ^= x >> 27
	x *= mixMul2
	x ^= x >> 31
	return x
}

// HashInt initializes dst with the hash of an integer column.
func HashInt[T Integer](dst []uint64, a []T, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			dst[i] = mix64(uint64(a[i]) + hashSeed)
		}
		return
	}
	for k, i := range sel {
		dst[k] = mix64(uint64(a[i]) + hashSeed)
	}
}

// HashFloat initializes dst with the hash of a float column; normalizes
// -0.0 to +0.0 so equal SQL values hash equally.
func HashFloat(dst []uint64, a []float64, sel []int32, n int) {
	h := func(f float64) uint64 {
		if f == 0 {
			f = 0 // collapse -0.0
		}
		return mix64(math.Float64bits(f) + hashSeed)
	}
	if sel == nil {
		for i := 0; i < n; i++ {
			dst[i] = h(a[i])
		}
		return
	}
	for k, i := range sel {
		dst[k] = h(a[i])
	}
}

// HashBool initializes dst with the hash of a bool column.
func HashBool(dst []uint64, a []bool, sel []int32, n int) {
	const t, f = 0x5851f42d4c957f2d, 0x14057b7ef767814f
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] {
				dst[i] = t
			} else {
				dst[i] = f
			}
		}
		return
	}
	for k, i := range sel {
		if a[i] {
			dst[k] = t
		} else {
			dst[k] = f
		}
	}
}

// HashString initializes dst with an FNV-1a hash of a string column,
// finalized with mix64.
func HashString(dst []uint64, a []string, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			dst[i] = hashStr(a[i])
		}
		return
	}
	for k, i := range sel {
		dst[k] = hashStr(a[i])
	}
}

func hashStr(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return mix64(h)
}

// RehashInt combines an integer column into existing hashes in dst.
func RehashInt[T Integer](dst []uint64, a []T, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			dst[i] = mix64(dst[i] ^ (uint64(a[i]) + hashSeed))
		}
		return
	}
	for k, i := range sel {
		dst[k] = mix64(dst[k] ^ (uint64(a[i]) + hashSeed))
	}
}

// RehashFloat combines a float column into existing hashes in dst.
func RehashFloat(dst []uint64, a []float64, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			f := a[i]
			if f == 0 {
				f = 0
			}
			dst[i] = mix64(dst[i] ^ (math.Float64bits(f) + hashSeed))
		}
		return
	}
	for k, i := range sel {
		f := a[i]
		if f == 0 {
			f = 0
		}
		dst[k] = mix64(dst[k] ^ (math.Float64bits(f) + hashSeed))
	}
}

// RehashBool combines a bool column into existing hashes in dst.
func RehashBool(dst []uint64, a []bool, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			v := uint64(0)
			if a[i] {
				v = 1
			}
			dst[i] = mix64(dst[i] ^ (v + hashSeed))
		}
		return
	}
	for k, i := range sel {
		v := uint64(0)
		if a[i] {
			v = 1
		}
		dst[k] = mix64(dst[k] ^ (v + hashSeed))
	}
}

// RehashString combines a string column into existing hashes in dst.
func RehashString(dst []uint64, a []string, sel []int32, n int) {
	if sel == nil {
		for i := 0; i < n; i++ {
			dst[i] = mix64(dst[i] ^ hashStr(a[i]))
		}
		return
	}
	for k, i := range sel {
		dst[k] = mix64(dst[k] ^ hashStr(a[i]))
	}
}

// BucketMask reduces hashes into [0, 2^bits) bucket numbers in place.
func BucketMask(dst []uint64, bits uint, n int) {
	mask := (uint64(1) << bits) - 1
	for i := 0; i < n; i++ {
		dst[i] &= mask
	}
}
