package primitives

import (
	"errors"
	"fmt"
	"math"
)

// Checked arithmetic: the paper's "Error handling and reporting" section
// explains that X100 originally assumed queries never fail, and that adding
// detection of division by zero, overflow etc. naively "would incur a
// significant overhead, and special algorithms in the kernel had to be
// devised".
//
// The special algorithm used here is *flag accumulation*: the loop computes
// wrapped results unconditionally and OR-accumulates an overflow indicator
// without branching on it, then a single test after the loop decides whether
// to rescan for the exact failing position. The common (error-free) path
// therefore costs one extra OR-and-compare per element and no branches; the
// error path pays a second scan but only when the query is failing anyway.
//
// The naive contrast variants (NaiveChecked*) check and construct error
// state per element through a function pointer — the straightforward
// implementation the paper warns about. Experiment E8 measures all three.

// ErrOverflow reports integer overflow in checked arithmetic.
var ErrOverflow = errors.New("arithmetic overflow")

// ErrDivByZero reports division by zero.
var ErrDivByZero = errors.New("division by zero")

// PosError decorates an arithmetic error with the failing vector position so
// the engine can report the offending row.
type PosError struct {
	Err error
	Pos int
}

// Error implements error.
func (e *PosError) Error() string { return fmt.Sprintf("%v at row offset %d", e.Err, e.Pos) }

// Unwrap exposes the underlying cause.
func (e *PosError) Unwrap() error { return e.Err }

// CheckedAddVV computes dst = a + b detecting signed overflow. Returns nil
// on success or a *PosError identifying the first failing position.
func CheckedAddVV[T Integer](dst, a, b []T, sel []int32) error {
	var flags T
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			s := a[i] + b[i]
			// Overflow iff operands share a sign that differs from the
			// result's: (a^s)&(b^s) has the sign bit set.
			flags |= (a[i] ^ s) & (b[i] ^ s)
			dst[i] = s
		}
	} else {
		for _, i := range sel {
			s := a[i] + b[i]
			flags |= (a[i] ^ s) & (b[i] ^ s)
			dst[i] = s
		}
	}
	if flags >= 0 {
		return nil
	}
	// Error path: rescan to locate the first overflow.
	if sel == nil {
		for i := range dst {
			if s := a[i] + b[i]; (a[i]^s)&(b[i]^s) < 0 {
				return &PosError{Err: ErrOverflow, Pos: i}
			}
		}
	} else {
		for k, i := range sel {
			if s := a[i] + b[i]; (a[i]^s)&(b[i]^s) < 0 {
				return &PosError{Err: ErrOverflow, Pos: k}
			}
		}
	}
	return &PosError{Err: ErrOverflow, Pos: -1}
}

// CheckedSubVV computes dst = a - b detecting signed overflow.
func CheckedSubVV[T Integer](dst, a, b []T, sel []int32) error {
	var flags T
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			s := a[i] - b[i]
			// Overflow iff a and b differ in sign and s's sign differs
			// from a's.
			flags |= (a[i] ^ b[i]) & (a[i] ^ s)
			dst[i] = s
		}
	} else {
		for _, i := range sel {
			s := a[i] - b[i]
			flags |= (a[i] ^ b[i]) & (a[i] ^ s)
			dst[i] = s
		}
	}
	if flags >= 0 {
		return nil
	}
	if sel == nil {
		for i := range dst {
			if s := a[i] - b[i]; (a[i]^b[i])&(a[i]^s) < 0 {
				return &PosError{Err: ErrOverflow, Pos: i}
			}
		}
	} else {
		for k, i := range sel {
			if s := a[i] - b[i]; (a[i]^b[i])&(a[i]^s) < 0 {
				return &PosError{Err: ErrOverflow, Pos: k}
			}
		}
	}
	return &PosError{Err: ErrOverflow, Pos: -1}
}

// CheckedMulVVI64 computes dst = a * b for int64 detecting overflow. The
// branch-light check divides the result back: overflow iff a != 0 and
// s/a != b (with the MinInt64 * -1 corner handled by the same test).
func CheckedMulVVI64(dst, a, b []int64, sel []int32) error {
	bad := false
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			s := a[i] * b[i]
			bad = bad || (a[i] != 0 && (s/a[i] != b[i] || (a[i] == -1 && b[i] == math.MinInt64)))
			dst[i] = s
		}
	} else {
		for _, i := range sel {
			s := a[i] * b[i]
			bad = bad || (a[i] != 0 && (s/a[i] != b[i] || (a[i] == -1 && b[i] == math.MinInt64)))
			dst[i] = s
		}
	}
	if !bad {
		return nil
	}
	locate := func(i int, k int) error {
		s := a[i] * b[i]
		if a[i] != 0 && (s/a[i] != b[i] || (a[i] == -1 && b[i] == math.MinInt64)) {
			return &PosError{Err: ErrOverflow, Pos: k}
		}
		return nil
	}
	if sel == nil {
		for i := range dst {
			if err := locate(i, i); err != nil {
				return err
			}
		}
	} else {
		for k, i := range sel {
			if err := locate(int(i), k); err != nil {
				return err
			}
		}
	}
	return &PosError{Err: ErrOverflow, Pos: -1}
}

// CheckedMulVVI32 computes dst = a * b for int32 detecting overflow by
// widening to 64-bit — the cheap width-promotion trick available to narrow
// types.
func CheckedMulVVI32(dst, a, b []int32, sel []int32) error {
	var flags int64
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			w := int64(a[i]) * int64(b[i])
			flags |= w - int64(int32(w)) // non-zero iff truncation loses bits
			dst[i] = int32(w)
		}
	} else {
		for _, i := range sel {
			w := int64(a[i]) * int64(b[i])
			flags |= w - int64(int32(w))
			dst[i] = int32(w)
		}
	}
	if flags == 0 {
		return nil
	}
	if sel == nil {
		for i := range dst {
			if w := int64(a[i]) * int64(b[i]); w != int64(int32(w)) {
				return &PosError{Err: ErrOverflow, Pos: i}
			}
		}
	} else {
		for k, i := range sel {
			if w := int64(a[i]) * int64(b[i]); w != int64(int32(w)) {
				return &PosError{Err: ErrOverflow, Pos: k}
			}
		}
	}
	return &PosError{Err: ErrOverflow, Pos: -1}
}

// CheckedDivVV computes dst = a / b for integers, detecting zero divisors
// (and the MinInt / -1 overflow). The scan for zero divisors is a separate
// vectorized pass so the division loop itself stays branch-free.
func CheckedDivVV[T Integer](dst, a, b []T, sel []int32) error {
	var prod T = 1
	if sel == nil {
		b2 := b[:len(dst)]
		for i := range b2 {
			prod *= boolToNum[T](b2[i] != 0)
		}
	} else {
		for _, i := range sel {
			prod *= boolToNum[T](b[i] != 0)
		}
	}
	if prod == 0 {
		if sel == nil {
			for i := range dst {
				if b[i] == 0 {
					return &PosError{Err: ErrDivByZero, Pos: i}
				}
			}
		} else {
			for k, i := range sel {
				if b[i] == 0 {
					return &PosError{Err: ErrDivByZero, Pos: k}
				}
			}
		}
	}
	// All divisors are non-zero; MinInt / -1 wraps in Go (no trap), matching
	// the engine's two's-complement semantics, so a plain loop suffices.
	if sel == nil {
		a2 := a[:len(dst)]
		b2 := b[:len(dst)]
		for i := range dst {
			dst[i] = a2[i] / b2[i]
		}
	} else {
		for _, i := range sel {
			dst[i] = a[i] / b[i]
		}
	}
	return nil
}

func boolToNum[T Integer](b bool) T {
	if b {
		return 1
	}
	return 0
}

// CheckedDivVCF computes dst = a / c for floats with a constant divisor,
// returning ErrDivByZero when c == 0 (SQL semantics, not IEEE Inf).
func CheckedDivVCF(dst, a []float64, c float64, sel []int32) error {
	if c == 0 {
		return &PosError{Err: ErrDivByZero, Pos: 0}
	}
	MulVC(dst, a, 1/c, sel)
	return nil
}

// CheckedDivVVF computes dst = a / b for floats with SQL division-by-zero
// detection using a multiplicative zero test over divisors (no branch per
// element on the happy path; a product collapses to zero iff any divisor is
// zero or denormal-underflows, which the rescan disambiguates).
func CheckedDivVVF(dst, a, b []float64, sel []int32) error {
	anyZero := false
	if sel == nil {
		b2 := b[:len(dst)]
		for i := range b2 {
			anyZero = anyZero || b2[i] == 0
		}
	} else {
		for _, i := range sel {
			anyZero = anyZero || b[i] == 0
		}
	}
	if anyZero {
		if sel == nil {
			for i := range dst {
				if b[i] == 0 {
					return &PosError{Err: ErrDivByZero, Pos: i}
				}
			}
		} else {
			for k, i := range sel {
				if b[i] == 0 {
					return &PosError{Err: ErrDivByZero, Pos: k}
				}
			}
		}
	}
	DivVVF(dst, a, b, sel)
	return nil
}

// CheckedModVV computes dst = a % b detecting zero divisors.
func CheckedModVV[T Integer](dst, a, b []T, sel []int32) error {
	anyZero := false
	if sel == nil {
		b2 := b[:len(dst)]
		for i := range b2 {
			anyZero = anyZero || b2[i] == 0
		}
		if anyZero {
			for i := range dst {
				if b[i] == 0 {
					return &PosError{Err: ErrDivByZero, Pos: i}
				}
			}
		}
		ModVV(dst, a, b, nil)
		return nil
	}
	for _, i := range sel {
		anyZero = anyZero || b[i] == 0
	}
	if anyZero {
		for k, i := range sel {
			if b[i] == 0 {
				return &PosError{Err: ErrDivByZero, Pos: k}
			}
		}
	}
	ModVV(dst, a, b, sel)
	return nil
}

// Naive per-value checked variants — the "straightforward implementation"
// baseline for experiment E8. checkFn is called per element through a
// function value, modelling the per-value error-checking plumbing (bounds
// validation, errno-style reporting) a non-vectorized engine pays.

// NaiveCheckFn validates one pair of operands; returns an error to abort.
type NaiveCheckFn[T Integer] func(a, b T) error

// NaiveCheckedAddVV is the per-element checked addition.
func NaiveCheckedAddVV[T Integer](dst, a, b []T, sel []int32, check NaiveCheckFn[T]) error {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			if err := check(a[i], b[i]); err != nil {
				return &PosError{Err: err, Pos: i}
			}
			dst[i] = a[i] + b[i]
		}
		return nil
	}
	for k, i := range sel {
		if err := check(a[i], b[i]); err != nil {
			return &PosError{Err: err, Pos: k}
		}
		dst[i] = a[i] + b[i]
	}
	return nil
}

// NaiveAddOverflowCheck is the standard per-pair overflow test.
func NaiveAddOverflowCheck[T Integer](a, b T) error {
	s := a + b
	if (a^s)&(b^s) < 0 {
		return ErrOverflow
	}
	return nil
}

// NaiveCheckedDivVV divides with a per-element zero test and error wrap.
func NaiveCheckedDivVV[T Integer](dst, a, b []T, sel []int32) error {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			if b[i] == 0 {
				return &PosError{Err: ErrDivByZero, Pos: i}
			}
			dst[i] = a[i] / b[i]
		}
		return nil
	}
	for k, i := range sel {
		if b[i] == 0 {
			return &PosError{Err: ErrDivByZero, Pos: k}
		}
		dst[i] = a[i] / b[i]
	}
	return nil
}
