package primitives

// Selection primitives evaluate a predicate over the input selection and
// append the qualifying positions to dst, returning the new selection. They
// are the X100 way of filtering: no data movement, just position lists.
//
// When sel is nil the predicate runs over positions [0, n).

// SelEqVC selects positions where a[i] == c.
func SelEqVC[T Ordered](dst []int32, a []T, c T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] == c {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] == c {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelNeVC selects positions where a[i] != c.
func SelNeVC[T Ordered](dst []int32, a []T, c T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] != c {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] != c {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelLtVC selects positions where a[i] < c.
func SelLtVC[T Ordered](dst []int32, a []T, c T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] < c {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] < c {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelLeVC selects positions where a[i] <= c.
func SelLeVC[T Ordered](dst []int32, a []T, c T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] <= c {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] <= c {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelGtVC selects positions where a[i] > c.
func SelGtVC[T Ordered](dst []int32, a []T, c T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] > c {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] > c {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelGeVC selects positions where a[i] >= c.
func SelGeVC[T Ordered](dst []int32, a []T, c T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] >= c {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] >= c {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelEqVV selects positions where a[i] == b[i].
func SelEqVV[T Ordered](dst []int32, a, b []T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] == b[i] {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] == b[i] {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelNeVV selects positions where a[i] != b[i].
func SelNeVV[T Ordered](dst []int32, a, b []T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] != b[i] {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] != b[i] {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelLtVV selects positions where a[i] < b[i].
func SelLtVV[T Ordered](dst []int32, a, b []T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] < b[i] {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] < b[i] {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelLeVV selects positions where a[i] <= b[i].
func SelLeVV[T Ordered](dst []int32, a, b []T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] <= b[i] {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] <= b[i] {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelGtVV selects positions where a[i] > b[i].
func SelGtVV[T Ordered](dst []int32, a, b []T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] > b[i] {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] > b[i] {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelGeVV selects positions where a[i] >= b[i].
func SelGeVV[T Ordered](dst []int32, a, b []T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] >= b[i] {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] >= b[i] {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelBetweenVCC selects positions where lo <= a[i] <= hi; a fused range
// predicate (one pass instead of two plus an AND).
func SelBetweenVCC[T Ordered](dst []int32, a []T, lo, hi T, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] >= lo && a[i] <= hi {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] >= lo && a[i] <= hi {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelTrue selects positions where the bool vector is true; used for
// predicates that were materialized as bool values (e.g. LIKE results).
func SelTrue(dst []int32, a []bool, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if a[i] {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if a[i] {
			dst = append(dst, i)
		}
	}
	return dst
}

// SelFalse selects positions where the bool vector is false (vectorized NOT
// on a filter).
func SelFalse(dst []int32, a []bool, sel []int32, n int) []int32 {
	dst = dst[:0]
	if sel == nil {
		for i := 0; i < n; i++ {
			if !a[i] {
				dst = append(dst, int32(i))
			}
		}
		return dst
	}
	for _, i := range sel {
		if !a[i] {
			dst = append(dst, i)
		}
	}
	return dst
}
