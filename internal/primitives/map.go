package primitives

// Map primitives compute dst[i] = f(a[i], b[i]) for every selected position.
// Each comes in vector×vector (VV) and vector×constant (VC) shapes, the two
// shapes X100 specializes; constant×vector is normalized to VC by the
// expression compiler (commuting or rewriting the operator).
//
// Unselected positions of dst are left untouched: downstream consumers only
// read selected positions.

// AddVV computes dst = a + b.
func AddVV[T Num](dst, a, b []T, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			dst[i] = a[i] + b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] + b[i]
	}
}

// AddVC computes dst = a + c.
func AddVC[T Num](dst, a []T, c T, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = a[i] + c
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] + c
	}
}

// SubVV computes dst = a - b.
func SubVV[T Num](dst, a, b []T, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			dst[i] = a[i] - b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] - b[i]
	}
}

// SubVC computes dst = a - c.
func SubVC[T Num](dst, a []T, c T, sel []int32) {
	AddVC(dst, a, -c, sel)
}

// SubCV computes dst = c - a.
func SubCV[T Num](dst []T, c T, a []T, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = c - a[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = c - a[i]
	}
}

// MulVV computes dst = a * b.
func MulVV[T Num](dst, a, b []T, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			dst[i] = a[i] * b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] * b[i]
	}
}

// MulVC computes dst = a * c.
func MulVC[T Num](dst, a []T, c T, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = a[i] * c
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] * c
	}
}

// DivVVF computes dst = a / b for floats (IEEE semantics; checked integer
// division lives in checked.go).
func DivVVF(dst, a, b []float64, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			dst[i] = a[i] / b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] / b[i]
	}
}

// DivVCF computes dst = a / c for floats.
func DivVCF(dst, a []float64, c float64, sel []int32) {
	MulVC(dst, a, 1/c, sel)
}

// NegV computes dst = -a.
func NegV[T Num](dst, a []T, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = -a[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = -a[i]
	}
}

// AbsV computes dst = |a|.
func AbsV[T Num](dst, a []T, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			if a[i] < 0 {
				dst[i] = -a[i]
			} else {
				dst[i] = a[i]
			}
		}
		return
	}
	for _, i := range sel {
		if a[i] < 0 {
			dst[i] = -a[i]
		} else {
			dst[i] = a[i]
		}
	}
}

// MinVV computes dst = min(a, b) element-wise.
func MinVV[T Ordered](dst, a, b []T, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			if a[i] < b[i] {
				dst[i] = a[i]
			} else {
				dst[i] = b[i]
			}
		}
		return
	}
	for _, i := range sel {
		if a[i] < b[i] {
			dst[i] = a[i]
		} else {
			dst[i] = b[i]
		}
	}
}

// MaxVV computes dst = max(a, b) element-wise.
func MaxVV[T Ordered](dst, a, b []T, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			if a[i] > b[i] {
				dst[i] = a[i]
			} else {
				dst[i] = b[i]
			}
		}
		return
	}
	for _, i := range sel {
		if a[i] > b[i] {
			dst[i] = a[i]
		} else {
			dst[i] = b[i]
		}
	}
}

// Comparison map primitives produce a bool vector (used when a comparison is
// projected as a value rather than used as a filter; filters use the Sel*
// primitives in select.go instead).

// CmpEqVV computes dst = (a == b).
func CmpEqVV[T Ordered](dst []bool, a, b []T, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = a[i] == b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] == b[i]
	}
}

// CmpEqVC computes dst = (a == c).
func CmpEqVC[T Ordered](dst []bool, a []T, c T, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = a[i] == c
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] == c
	}
}

// CmpLtVV computes dst = (a < b).
func CmpLtVV[T Ordered](dst []bool, a, b []T, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = a[i] < b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] < b[i]
	}
}

// CmpLtVC computes dst = (a < c).
func CmpLtVC[T Ordered](dst []bool, a []T, c T, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = a[i] < c
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] < c
	}
}

// CmpLeVC computes dst = (a <= c).
func CmpLeVC[T Ordered](dst []bool, a []T, c T, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = a[i] <= c
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] <= c
	}
}

// CmpNeVV computes dst = (a != b).
func CmpNeVV[T Ordered](dst []bool, a, b []T, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = a[i] != b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] != b[i]
	}
}

// CmpNeVC computes dst = (a != c).
func CmpNeVC[T Ordered](dst []bool, a []T, c T, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = a[i] != c
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] != c
	}
}

// CmpLeVV computes dst = (a <= b).
func CmpLeVV[T Ordered](dst []bool, a, b []T, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = a[i] <= b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] <= b[i]
	}
}

// CmpGtVV computes dst = (a > b).
func CmpGtVV[T Ordered](dst []bool, a, b []T, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = a[i] > b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] > b[i]
	}
}

// CmpGtVC computes dst = (a > c).
func CmpGtVC[T Ordered](dst []bool, a []T, c T, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = a[i] > c
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] > c
	}
}

// CmpGeVV computes dst = (a >= b).
func CmpGeVV[T Ordered](dst []bool, a, b []T, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = a[i] >= b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] >= b[i]
	}
}

// CmpGeVC computes dst = (a >= c).
func CmpGeVC[T Ordered](dst []bool, a []T, c T, sel []int32) {
	if sel == nil {
		for i := range dst {
			dst[i] = a[i] >= c
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] >= c
	}
}

// CmpGeVV and friends complete the comparison family so the expression
// compiler can bind any operator/shape pair directly without extra NOT
// passes.

// Logical primitives on bool vectors.

// AndBool computes dst = a && b.
func AndBool(dst, a, b []bool, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			dst[i] = a[i] && b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] && b[i]
	}
}

// OrBool computes dst = a || b.
func OrBool(dst, a, b []bool, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			dst[i] = a[i] || b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] || b[i]
	}
}

// NotBool computes dst = !a.
func NotBool(dst, a []bool, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = !a[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = !a[i]
	}
}

// Cast primitives.

// CastNum converts between numeric representations element-wise.
func CastNum[S Num, D Num](dst []D, a []S, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = D(a[i])
		}
		return
	}
	for _, i := range sel {
		dst[i] = D(a[i])
	}
}

// IfThenElse computes dst = cond ? a : b element-wise; the vectorized CASE
// primitive (both branches are evaluated, which is the standard vectorized
// trade-off — side-effect-free expressions make this safe).
func IfThenElse[T any](dst []T, cond []bool, a, b []T, sel []int32) {
	if sel == nil {
		for i := range dst {
			if cond[i] {
				dst[i] = a[i]
			} else {
				dst[i] = b[i]
			}
		}
		return
	}
	for _, i := range sel {
		if cond[i] {
			dst[i] = a[i]
		} else {
			dst[i] = b[i]
		}
	}
}

// ModVV computes dst = a mod b for integers with non-zero b (checked variant
// in checked.go handles zero divisors).
func ModVV[T Integer](dst, a, b []T, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		b = b[:len(dst)]
		for i := range dst {
			dst[i] = a[i] % b[i]
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] % b[i]
	}
}

// ModVC computes dst = a mod c for constant non-zero c.
func ModVC[T Integer](dst, a []T, c T, sel []int32) {
	if sel == nil {
		a = a[:len(dst)]
		for i := range dst {
			dst[i] = a[i] % c
		}
		return
	}
	for _, i := range sel {
		dst[i] = a[i] % c
	}
}
