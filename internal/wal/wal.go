// Package wal is the engine's write-ahead log: an append-only file of
// length-prefixed, CRC32C-framed commit records with group commit. Every
// committed transaction appends one logical record (table, ops) and blocks
// until an fsync covers it; concurrent committers coalesce into one fsync
// (the classic group-commit optimization), so the fsync rate is bounded by
// device latency, not by the commit rate.
//
// Frame layout (little endian):
//
//	u32 payload length | u32 CRC32C(payload) | payload bytes
//
// Recovery scans frames from the start and stops at the first frame that is
// short, fails its checksum, or does not decode — the torn tail a crash can
// leave — and truncates the file there. A record is committed iff its frame
// is fully durable, so recovery yields exactly the acknowledged prefix.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"vectorwise/internal/fsim"
	"vectorwise/internal/metrics"
)

// Durability instruments (satellite: exported via sys.metrics/SHOW METRICS).
var (
	mAppends   = metrics.Default.Counter("wal_appends_total")
	mFsyncs    = metrics.Default.Counter("wal_fsyncs_total")
	mBytes     = metrics.Default.Counter("wal_bytes_total")
	mGroupSize = metrics.Default.Histogram("wal_group_commit_size",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
)

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("wal: log closed")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	frameHeader = 8       // u32 length + u32 crc
	maxPayload  = 1 << 30 // sanity bound while scanning
)

// WAL is an open write-ahead log. Append is safe for concurrent use.
type WAL struct {
	fs   fsim.FS
	path string

	mu         sync.Mutex
	cond       *sync.Cond
	f          fsim.File
	nextSeq    uint64
	pending    []byte // framed records awaiting write+fsync
	pendingN   int64  // record count in pending
	pendingTop uint64 // highest seq in pending
	syncing    bool   // a leader is writing/syncing
	syncedSeq  uint64 // highest durable seq
	err        error  // sticky failure: the log is fail-stop
}

// ScanResult reports what opening the log found.
type ScanResult struct {
	Records   []*Record // the valid durable prefix, in order
	LastSeq   uint64    // seq of the last valid record (0 if none)
	TornBytes int64     // trailing garbage truncated from the file
}

// Open opens (creating if absent) the log at path, scans the existing
// records, truncates any torn tail, and returns the log positioned to
// append after the last valid record.
func Open(fs fsim.FS, path string) (*WAL, *ScanResult, error) {
	var data []byte
	if fs.Exists(path) {
		var err error
		data, err = fs.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
	}
	res := &ScanResult{}
	off := 0
	for {
		rec, next, ok := nextFrame(data, off, res.LastSeq)
		if !ok {
			break
		}
		res.Records = append(res.Records, rec)
		res.LastSeq = rec.Seq
		off = next
	}
	if off < len(data) {
		res.TornBytes = int64(len(data) - off)
		if err := fs.Truncate(path, int64(off)); err != nil {
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	f, err := fs.OpenAppend(path)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Sync(); err != nil { // make the truncation durable
		f.Close()
		return nil, nil, err
	}
	w := &WAL{fs: fs, path: path, f: f, nextSeq: res.LastSeq + 1, syncedSeq: res.LastSeq}
	w.cond = sync.NewCond(&w.mu)
	return w, res, nil
}

// nextFrame parses one frame at off. ok is false at a clean EOF or at the
// first sign of a torn/corrupt tail (short frame, bad CRC, bad payload,
// non-increasing seq).
func nextFrame(data []byte, off int, prevSeq uint64) (*Record, int, bool) {
	if off+frameHeader > len(data) {
		return nil, off, false
	}
	n := binary.LittleEndian.Uint32(data[off:])
	sum := binary.LittleEndian.Uint32(data[off+4:])
	if n == 0 || n > maxPayload || off+frameHeader+int(n) > len(data) {
		return nil, off, false
	}
	payload := data[off+frameHeader : off+frameHeader+int(n)]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, off, false
	}
	rec, err := decodePayload(payload)
	if err != nil || rec.Seq <= prevSeq {
		return nil, off, false
	}
	return rec, off + frameHeader + int(n), true
}

// frame appends the framed encoding of payload to dst.
func frame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
	return append(dst, payload...)
}

// LastSeq returns the most recently assigned record sequence (0 if none).
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq - 1
}

// Append assigns the next sequence to a commit record for table, writes it,
// and blocks until an fsync covers it. Concurrent appenders share fsyncs:
// whoever finds no sync in flight becomes the leader and flushes everything
// pending, the rest wait for their sequence to become durable.
func (w *WAL) Append(table string, ops []Op) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	seq := w.nextSeq
	w.nextSeq++
	payload := encodePayload(&Record{Seq: seq, Table: table, Ops: ops})
	w.pending = frame(w.pending, payload)
	w.pendingN++
	w.pendingTop = seq
	mAppends.Inc()
	mBytes.Add(int64(len(payload)) + frameHeader)

	for {
		if w.syncedSeq >= seq {
			return seq, nil
		}
		if w.err != nil {
			return 0, w.err
		}
		if !w.syncing {
			w.flushLocked()
			continue
		}
		w.cond.Wait()
	}
}

// flushLocked is the group-commit leader: it takes the pending batch, drops
// the lock for the write+fsync, and publishes the new durable horizon.
// Called with w.mu held; returns with w.mu held.
func (w *WAL) flushLocked() {
	batch := w.pending
	n := w.pendingN
	top := w.pendingTop
	w.pending = nil
	w.pendingN = 0
	w.syncing = true
	w.mu.Unlock()

	var err error
	if _, werr := w.f.Write(batch); werr != nil {
		err = werr
	} else if serr := w.f.Sync(); serr != nil {
		err = serr
	}

	w.mu.Lock()
	w.syncing = false
	if err != nil {
		// Fail-stop: the file may hold a torn batch; later appends would
		// interleave with garbage, so the log refuses them.
		w.err = fmt.Errorf("wal: %w", err)
	} else {
		w.syncedSeq = top
		mFsyncs.Inc()
		mGroupSize.Observe(float64(n))
	}
	w.cond.Broadcast()
}

// TruncateThrough drops every record with seq <= through by rewriting the
// tail into a temp file and atomically renaming it into place — the
// checkpoint's log-truncation step. Concurrent appends block for the
// duration.
func (w *WAL) TruncateThrough(through uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	for w.syncing {
		w.cond.Wait()
	}
	if len(w.pending) > 0 {
		w.flushLocked()
		if w.err != nil {
			return w.err
		}
	}
	data, err := w.fs.ReadFile(w.path)
	if err != nil {
		return err
	}
	kept := make([]byte, 0, len(data))
	off := 0
	var prev uint64
	for {
		rec, next, ok := nextFrame(data, off, prev)
		if !ok {
			break
		}
		if rec.Seq > through {
			kept = append(kept, data[off:next]...)
		}
		prev = rec.Seq
		off = next
	}
	tmp := w.path + ".tmp"
	tf, err := w.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := tf.Write(kept); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := w.fs.Rename(tmp, w.path); err != nil {
		return err
	}
	w.f.Close()
	f, err := w.fs.OpenAppend(w.path)
	if err != nil {
		w.err = fmt.Errorf("wal: reopen after truncate: %w", err)
		return w.err
	}
	w.f = f
	return nil
}

// Close flushes anything pending and closes the file. Later appends fail
// with ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncing {
		w.cond.Wait()
	}
	if w.err != nil {
		w.f.Close()
		return nil
	}
	if len(w.pending) > 0 {
		w.flushLocked()
	}
	err := w.f.Close()
	w.err = ErrClosed
	w.cond.Broadcast()
	return err
}
