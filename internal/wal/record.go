package wal

import (
	"encoding/binary"
	"fmt"
	"math"

	"vectorwise/internal/types"
)

// OpKind classifies one logical DML delta inside a commit record.
type OpKind uint8

// The op kinds. They mirror pdt.OpKind but are a separate type so the
// on-disk encoding is independent of in-memory enum values.
const (
	OpInsert OpKind = iota
	OpDelete
	OpModify
)

// Op is one logical delta of a committed transaction, in application order.
// Two anchor modes exist, matching the two commit paths of the txn layer:
//
//   - positional (Anchored == false): Pos is an image position in the
//     shared read-PDT's space at the moment this record applies; the fast
//     commit path (no intervening commits) logs these.
//   - SID-anchored (Anchored == true): Pos is a stable-table SID, invariant
//     under concurrent commits; the re-anchoring slow path logs these.
//
// Replaying records in sequence order through the same two application
// paths reproduces the shared read-PDT byte for byte.
type Op struct {
	Kind     OpKind
	Anchored bool
	Pos      int64
	Row      []types.Value // OpInsert: the full physical row
	ModCols  []int         // OpModify: parallel column/value pairs,
	ModVals  []types.Value //           sorted by column for determinism
}

// Record is one WAL entry: everything a single transaction committed to
// one table's shared read-PDT.
type Record struct {
	Seq   uint64
	Table string
	Ops   []Op
}

// --- payload encoding ---
//
//	uvarint seq
//	uvarint len(table) | table bytes
//	uvarint nops
//	per op:
//	    byte  flags = kind | anchored<<4
//	    varint pos
//	    OpInsert: uvarint nvals | values
//	    OpModify: uvarint nmods | per mod: uvarint col, value
//
// Values: byte kind, byte null; non-null payloads are uvarint+bytes for
// strings, 8 fixed bytes for floats, varint for everything else (ints,
// bools, dates all live in I64).

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

func appendValue(b []byte, v types.Value) []byte {
	b = append(b, byte(v.Kind))
	if v.Null {
		return append(b, 1)
	}
	b = append(b, 0)
	switch v.Kind {
	case types.KindString:
		b = appendUvarint(b, uint64(len(v.Str)))
		b = append(b, v.Str...)
	case types.KindFloat64:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F64))
	default:
		b = appendVarint(b, v.I64)
	}
	return b
}

// encodePayload serializes r (without framing).
func encodePayload(r *Record) []byte {
	b := make([]byte, 0, 64+32*len(r.Ops))
	b = appendUvarint(b, r.Seq)
	b = appendUvarint(b, uint64(len(r.Table)))
	b = append(b, r.Table...)
	b = appendUvarint(b, uint64(len(r.Ops)))
	for i := range r.Ops {
		op := &r.Ops[i]
		flags := byte(op.Kind)
		if op.Anchored {
			flags |= 1 << 4
		}
		b = append(b, flags)
		b = appendVarint(b, op.Pos)
		switch op.Kind {
		case OpInsert:
			b = appendUvarint(b, uint64(len(op.Row)))
			for _, v := range op.Row {
				b = appendValue(b, v)
			}
		case OpModify:
			b = appendUvarint(b, uint64(len(op.ModCols)))
			for j, c := range op.ModCols {
				b = appendUvarint(b, uint64(c))
				b = appendValue(b, op.ModVals[j])
			}
		}
	}
	return b
}

// byteCursor decodes sequentially with explicit error state.
type byteCursor struct {
	b   []byte
	off int
	err error
}

func (c *byteCursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("wal: payload truncated at byte %d reading %s", c.off, what)
	}
}

func (c *byteCursor) u8(what string) byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		c.fail(what)
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *byteCursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.off += n
	return v
}

func (c *byteCursor) varint(what string) int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.off += n
	return v
}

func (c *byteCursor) bytes(n uint64, what string) []byte {
	if c.err != nil {
		return nil
	}
	if uint64(len(c.b)-c.off) < n {
		c.fail(what)
		return nil
	}
	v := c.b[c.off : c.off+int(n)]
	c.off += int(n)
	return v
}

func (c *byteCursor) value(what string) types.Value {
	kind := types.Kind(c.u8(what + " kind"))
	null := c.u8(what+" null") != 0
	v := types.Value{Kind: kind, Null: null}
	if null || c.err != nil {
		return v
	}
	switch kind {
	case types.KindString:
		n := c.uvarint(what + " strlen")
		v.Str = string(c.bytes(n, what+" str"))
	case types.KindFloat64:
		raw := c.bytes(8, what+" float")
		if c.err == nil {
			v.F64 = math.Float64frombits(binary.LittleEndian.Uint64(raw))
		}
	default:
		v.I64 = c.varint(what + " int")
	}
	return v
}

// decodePayload parses one record payload.
func decodePayload(b []byte) (*Record, error) {
	c := &byteCursor{b: b}
	r := &Record{}
	r.Seq = c.uvarint("seq")
	tn := c.uvarint("table len")
	r.Table = string(c.bytes(tn, "table"))
	nops := c.uvarint("op count")
	if c.err != nil {
		return nil, c.err
	}
	if nops > uint64(len(b)) { // each op takes ≥2 bytes; reject absurd counts
		return nil, fmt.Errorf("wal: implausible op count %d in %d-byte payload", nops, len(b))
	}
	r.Ops = make([]Op, 0, nops)
	for i := uint64(0); i < nops; i++ {
		flags := c.u8("op flags")
		op := Op{Kind: OpKind(flags & 0x0f), Anchored: flags&(1<<4) != 0}
		op.Pos = c.varint("op pos")
		switch op.Kind {
		case OpInsert:
			nv := c.uvarint("row len")
			if c.err == nil && nv > uint64(len(b)) {
				return nil, fmt.Errorf("wal: implausible row arity %d", nv)
			}
			op.Row = make([]types.Value, 0, nv)
			for j := uint64(0); j < nv && c.err == nil; j++ {
				op.Row = append(op.Row, c.value("row value"))
			}
		case OpDelete:
		case OpModify:
			nm := c.uvarint("mod count")
			if c.err == nil && nm > uint64(len(b)) {
				return nil, fmt.Errorf("wal: implausible mod count %d", nm)
			}
			for j := uint64(0); j < nm && c.err == nil; j++ {
				col := c.uvarint("mod col")
				v := c.value("mod value")
				op.ModCols = append(op.ModCols, int(col))
				op.ModVals = append(op.ModVals, v)
			}
		default:
			return nil, fmt.Errorf("wal: unknown op kind %d", op.Kind)
		}
		if c.err != nil {
			return nil, c.err
		}
		r.Ops = append(r.Ops, op)
	}
	if c.off != len(b) {
		return nil, fmt.Errorf("wal: %d trailing bytes after record payload", len(b)-c.off)
	}
	return r, nil
}
