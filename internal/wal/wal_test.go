package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"vectorwise/internal/fsim"
	"vectorwise/internal/types"
)

func insOp(pos int64, anchored bool, vals ...types.Value) Op {
	return Op{Kind: OpInsert, Anchored: anchored, Pos: pos, Row: vals}
}

func sampleOps() []Op {
	return []Op{
		insOp(0, false, types.NewInt64(42), types.NewString("hello"), types.NewFloat64(3.5)),
		insOp(7, true, types.NewBool(true), types.NewDate(19000), types.NewNull(types.KindInt64)),
		{Kind: OpDelete, Pos: 3},
		{Kind: OpModify, Anchored: true, Pos: 5,
			ModCols: []int{1, 4}, ModVals: []types.Value{types.NewString(".dots\nand lines"), types.NewInt32(-9)}},
	}
}

func opsEqual(a, b []Op) bool {
	return fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", b)
}

func TestRecordRoundTrip(t *testing.T) {
	fs := fsim.NewMemFS()
	w, res, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.TornBytes != 0 {
		t.Fatalf("fresh log scan: %+v", res)
	}
	want := sampleOps()
	seq, err := w.Append("orders", want)
	if err != nil || seq != 1 {
		t.Fatalf("append: seq=%d err=%v", seq, err)
	}
	if _, err := w.Append("t2", nil); err != nil { // empty commit record
		t.Fatal(err)
	}
	w.Close()

	_, res2, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Records) != 2 || res2.LastSeq != 2 || res2.TornBytes != 0 {
		t.Fatalf("reopen scan: %+v", res2)
	}
	got := res2.Records[0]
	if got.Table != "orders" || got.Seq != 1 || !opsEqual(got.Ops, want) {
		t.Fatalf("record mismatch:\n got %+v\nwant %+v", got.Ops, want)
	}
}

// The crash matrix core: cut the log at EVERY byte offset; recovery must
// yield exactly the records whose frames are fully inside the prefix, and
// report the rest as torn.
func TestTornTailAtEveryByte(t *testing.T) {
	fs := fsim.NewMemFS()
	w, _, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	type mark struct{ end int64 }
	var marks []mark // cumulative durable length after each record
	for i := 0; i < 5; i++ {
		if _, err := w.Append("t", []Op{insOp(int64(i), false, types.NewInt64(int64(i)))}); err != nil {
			t.Fatal(err)
		}
		marks = append(marks, mark{end: fs.DurableLen("wal.log")})
	}
	w.Close()
	full, _ := fs.ReadFile("wal.log")

	for cut := 0; cut <= len(full); cut++ {
		cfs := fsim.NewMemFS()
		cfs.SetDurable("wal.log", full[:cut])
		_, res, err := Open(cfs, "wal.log")
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		wantRecs := 0
		for _, m := range marks {
			if int64(cut) >= m.end {
				wantRecs++
			}
		}
		if len(res.Records) != wantRecs {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(res.Records), wantRecs)
		}
		wantTorn := int64(cut)
		if wantRecs > 0 {
			wantTorn = int64(cut) - marks[wantRecs-1].end
		}
		if res.TornBytes != wantTorn {
			t.Fatalf("cut %d: torn %d, want %d", cut, res.TornBytes, wantTorn)
		}
		// The truncation is applied: reopening sees a clean log.
		_, res2, err := Open(cfs, "wal.log")
		if err != nil || res2.TornBytes != 0 || len(res2.Records) != wantRecs {
			t.Fatalf("cut %d: second open: %+v err=%v", cut, res2, err)
		}
	}
}

// A bit flip anywhere in the durable log makes everything from the damaged
// frame on invisible (committed-prefix semantics), never a panic or a
// wrong record.
func TestBitFlipTruncatesSuffix(t *testing.T) {
	fs := fsim.NewMemFS()
	w, _, _ := Open(fs, "wal.log")
	var ends []int64
	for i := 0; i < 4; i++ {
		w.Append("t", []Op{insOp(int64(i), false, types.NewString("payload-payload"))})
		ends = append(ends, fs.DurableLen("wal.log"))
	}
	w.Close()
	full, _ := fs.ReadFile("wal.log")

	for off := 0; off < len(full); off++ {
		cfs := fsim.NewMemFS()
		cfs.SetDurable("wal.log", full)
		if err := cfs.FlipBit("wal.log", int64(off)); err != nil {
			t.Fatal(err)
		}
		_, res, err := Open(cfs, "wal.log")
		if err != nil {
			t.Fatalf("flip %d: %v", off, err)
		}
		// Records strictly before the damaged frame survive.
		intact := 0
		for _, e := range ends {
			if int64(off) >= e {
				intact++
			}
		}
		if len(res.Records) != intact {
			t.Fatalf("flip %d: %d records, want %d", off, len(res.Records), intact)
		}
		for i, r := range res.Records {
			if r.Seq != uint64(i+1) {
				t.Fatalf("flip %d: record %d has seq %d", off, i, r.Seq)
			}
		}
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	fs := fsim.NewMemFS()
	w, _, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	seqs := make(chan uint64, goroutines*per)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := w.Append(fmt.Sprintf("t%d", g),
					[]Op{insOp(int64(i), false, types.NewInt64(int64(g*1000+i)))})
				if err != nil {
					t.Error(err)
					return
				}
				seqs <- seq
			}
		}(g)
	}
	wg.Wait()
	close(seqs)
	seen := map[uint64]bool{}
	for s := range seqs {
		if seen[s] {
			t.Fatalf("duplicate seq %d", s)
		}
		seen[s] = true
	}
	if len(seen) != goroutines*per {
		t.Fatalf("%d unique seqs", len(seen))
	}
	w.Close()
	_, res, err := Open(fs, "wal.log")
	if err != nil || len(res.Records) != goroutines*per || res.TornBytes != 0 {
		t.Fatalf("reopen: n=%d torn=%d err=%v", len(res.Records), res.TornBytes, err)
	}
	for i, r := range res.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d out of order: seq %d", i, r.Seq)
		}
	}
}

func TestTruncateThrough(t *testing.T) {
	fs := fsim.NewMemFS()
	w, _, _ := Open(fs, "wal.log")
	for i := 0; i < 6; i++ {
		w.Append("t", []Op{insOp(int64(i), false)})
	}
	if err := w.TruncateThrough(4); err != nil {
		t.Fatal(err)
	}
	// Appends keep working after truncation, with continuing seqs.
	seq, err := w.Append("t", []Op{insOp(99, false)})
	if err != nil || seq != 7 {
		t.Fatalf("append after truncate: seq=%d err=%v", seq, err)
	}
	w.Close()
	_, res, err := Open(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for _, r := range res.Records {
		got = append(got, r.Seq)
	}
	if fmt.Sprint(got) != "[5 6 7]" {
		t.Fatalf("post-truncate seqs %v", got)
	}
}

// fsync failure fail-stops the log: the failed append errors, and so does
// everything after it — no silent data loss.
func TestSyncFailureFailsStop(t *testing.T) {
	fs := fsim.NewMemFS()
	w, _, _ := Open(fs, "wal.log")
	if _, err := w.Append("t", []Op{insOp(1, false)}); err != nil {
		t.Fatal(err)
	}
	fs.FailNextSync(errors.New("device gone"))
	if _, err := w.Append("t", []Op{insOp(2, false)}); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	if _, err := w.Append("t", []Op{insOp(3, false)}); err == nil {
		t.Fatal("append after fsync failure succeeded")
	}
	// Only the acknowledged record is durable.
	fs.Crash()
	_, res, err := Open(fs, "wal.log")
	if err != nil || len(res.Records) != 1 {
		t.Fatalf("recovered %d records err=%v", len(res.Records), err)
	}
}

func TestAppendAfterClose(t *testing.T) {
	fs := fsim.NewMemFS()
	w, _, _ := Open(fs, "wal.log")
	w.Close()
	if _, err := w.Append("t", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
}
