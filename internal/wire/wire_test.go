package wire

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, errMsg, body string) (string, string) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteResponse(bufio.NewWriter(&buf), errMsg, body); err != nil {
		t.Fatal(err)
	}
	gotBody, gotErr, err := ReadResponse(bufio.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	return gotBody, gotErr
}

func TestRoundTripOK(t *testing.T) {
	body := "k | v\n1 | 2.5\n(1 row)\n"
	got, serverErr := roundTrip(t, "", body)
	if serverErr != "" {
		t.Fatalf("unexpected server error %q", serverErr)
	}
	if got != body {
		t.Fatalf("body = %q, want %q", got, body)
	}
}

func TestRoundTripDotLines(t *testing.T) {
	body := ".\n..leading dots\nplain\n"
	got, serverErr := roundTrip(t, "", body)
	if serverErr != "" || got != body {
		t.Fatalf("got %q / %q", got, serverErr)
	}
}

func TestRoundTripError(t *testing.T) {
	got, serverErr := roundTrip(t, "sql: no table \"t\"\nsecond line", "")
	if got != "" {
		t.Fatalf("error responses carry no body, got %q", got)
	}
	if serverErr != `sql: no table "t"; second line` {
		t.Fatalf("serverErr = %q", serverErr)
	}
}

func TestMultipleResponsesOneStream(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteResponse(w, "", "first\n"); err != nil {
		t.Fatal(err)
	}
	if err := WriteResponse(w, "boom", ""); err != nil {
		t.Fatal(err)
	}
	if err := WriteResponse(w, "", ""); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	b1, e1, err := ReadResponse(r)
	if err != nil || b1 != "first\n" || e1 != "" {
		t.Fatalf("resp1 = %q/%q/%v", b1, e1, err)
	}
	b2, e2, err := ReadResponse(r)
	if err != nil || b2 != "" || e2 != "boom" {
		t.Fatalf("resp2 = %q/%q/%v", b2, e2, err)
	}
	b3, e3, err := ReadResponse(r)
	if err != nil || b3 != "" || e3 != "" {
		t.Fatalf("resp3 = %q/%q/%v", b3, e3, err)
	}
}

func TestBadStatusLine(t *testing.T) {
	r := bufio.NewReader(strings.NewReader("hello\n.\n"))
	if _, _, err := ReadResponse(r); err == nil {
		t.Fatal("malformed status accepted")
	}
}
