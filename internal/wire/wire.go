// Package wire implements the vwserver line protocol shared by the server
// and the vwsql client mode.
//
// Requests are plain SQL text: the client streams lines and the server
// executes once it has seen a line containing ';' (so multi-line statements
// work exactly like the interactive shell). A lone `\q` closes the
// connection. Every executed request yields exactly one response:
//
//	!ok                         (or: !err <message>)
//	<payload line>              (a leading '.' is escaped by doubling)
//	...
//	.                           (lone dot terminates the response)
//
// The framing is text-only on purpose — a session is debuggable with nc(1).
package wire

import (
	"bufio"
	"fmt"
	"strings"
)

// WriteResponse frames one response onto w and flushes it. A non-empty
// errMsg makes it an error response; newlines in errMsg are flattened so
// the status stays a single line.
func WriteResponse(w *bufio.Writer, errMsg, body string) error {
	if errMsg != "" {
		fmt.Fprintf(w, "!err %s\n", strings.ReplaceAll(errMsg, "\n", "; "))
	} else {
		fmt.Fprintln(w, "!ok")
	}
	if body != "" {
		for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
			if strings.HasPrefix(line, ".") {
				w.WriteByte('.')
			}
			w.WriteString(line)
			w.WriteByte('\n')
		}
	}
	w.WriteString(".\n")
	return w.Flush()
}

// ReadResponse reads one framed response from r. serverErr carries the
// server-reported failure (empty on success); err is a transport-level
// error (closed connection, malformed frame).
func ReadResponse(r *bufio.Reader) (body, serverErr string, err error) {
	status, err := readLine(r)
	if err != nil {
		return "", "", err
	}
	switch {
	case status == "!ok":
	case strings.HasPrefix(status, "!err "):
		serverErr = strings.TrimPrefix(status, "!err ")
	case status == "!err":
		serverErr = "unknown server error"
	default:
		return "", "", fmt.Errorf("wire: bad status line %q", status)
	}
	var b strings.Builder
	for {
		line, err := readLine(r)
		if err != nil {
			return "", "", err
		}
		if line == "." {
			return b.String(), serverErr, nil
		}
		if strings.HasPrefix(line, ".") {
			line = line[1:]
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}
