// Package debughttp exposes the engine's observability surface over HTTP:
// a Prometheus-style text endpoint for the metrics registry and the
// standard pprof profiling handlers. It is opt-in — binaries mount it only
// when the operator passes -debug-addr.
package debughttp

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"vectorwise/internal/metrics"
	"vectorwise/internal/monitor"
)

// Handler builds the debug mux: /metrics (Prometheus text exposition 0.0.4
// of the given registry), /debug/pprof/* and, when mon is non-nil, /queries
// (plain-text active + recent query listing with phase traces).
func Handler(reg *metrics.Registry, mon *monitor.Monitor) http.Handler {
	if reg == nil {
		reg = metrics.Default
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if mon != nil {
		mux.HandleFunc("/queries", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprintln(w, "== active ==")
			for _, qi := range mon.Active() {
				fmt.Fprintf(w, "q%d [%s] %v  %s\n", qi.ID, qi.Status, qi.Duration.Round(time.Microsecond), qi.SQL)
			}
			fmt.Fprintln(w, "== recent ==")
			for _, qi := range mon.History() {
				fmt.Fprintf(w, "q%d [%s] %v rows=%d  %s\n",
					qi.ID, qi.Status, qi.Duration.Round(time.Microsecond), qi.Rows, qi.SQL)
				if len(qi.Spans) > 0 {
					fmt.Fprint(w, monitor.FormatSpans(qi.Spans))
				}
			}
		})
	}
	// The default pprof handlers register on http.DefaultServeMux; mount
	// them explicitly so this mux stays self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the debug server on addr in a goroutine and returns the
// listener error channel (buffered; nil until ListenAndServe fails).
func Serve(addr string, reg *metrics.Registry, mon *monitor.Monitor) <-chan error {
	errc := make(chan error, 1)
	srv := &http.Server{Addr: addr, Handler: Handler(reg, mon)}
	go func() { errc <- srv.ListenAndServe() }()
	return errc
}
