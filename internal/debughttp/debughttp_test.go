package debughttp

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vectorwise/internal/metrics"
	"vectorwise/internal/monitor"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("demo_hits_total").Add(7)
	reg.Gauge("demo_depth").Set(3)
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"# TYPE demo_hits_total counter",
		"demo_hits_total 7",
		"demo_depth 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in:\n%s", want, body)
		}
	}
	// The endpoint serves the registry's live state, not a boot-time copy.
	reg.Counter("demo_hits_total").Add(5)
	_, body = get(t, srv, "/metrics")
	if !strings.Contains(body, "demo_hits_total 12") {
		t.Fatalf("endpoint did not track registry: %s", body)
	}
}

func TestQueriesEndpoint(t *testing.T) {
	mon := monitor.New(16)
	qi, _ := mon.StartQuery(context.Background(), "SELECT 1")
	mon.FinishQuery(qi, 1, nil)
	srv := httptest.NewServer(Handler(metrics.NewRegistry(), mon))
	defer srv.Close()
	code, body := get(t, srv, "/queries")
	if code != http.StatusOK || !strings.Contains(body, "SELECT 1") {
		t.Fatalf("queries endpoint: %d\n%s", code, body)
	}
}

func TestPprofIndex(t *testing.T) {
	srv := httptest.NewServer(Handler(metrics.NewRegistry(), nil))
	defer srv.Close()
	code, body := get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", code)
	}
}
