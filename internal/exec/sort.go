package exec

import (
	"container/heap"
	"fmt"
	"sort"

	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// SortKey orders by one column.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort materializes its input and emits it ordered by the sort keys
// (stable, so equal keys keep arrival order).
type Sort struct {
	Child Operator
	Keys  []SortKey

	ctx    *Ctx
	store  []*vec.Vector
	perm   []int32
	emitAt int
	out    *vec.Batch
	built  bool
}

// NewSort builds a sort operator.
func NewSort(child Operator, keys []SortKey) *Sort {
	return &Sort{Child: child, Keys: keys}
}

// Kinds implements Operator.
func (s *Sort) Kinds() []types.Kind { return s.Child.Kinds() }

// Open implements Operator.
func (s *Sort) Open(ctx *Ctx) error {
	s.ctx = ctx
	s.built = false
	s.emitAt = 0
	kinds := s.Child.Kinds()
	s.store = make([]*vec.Vector, len(kinds))
	for i, k := range kinds {
		s.store[i] = vec.New(k, ctx.vecSize())
	}
	s.out = vec.NewBatch(kinds, ctx.vecSize())
	return s.Child.Open(ctx)
}

// cmpRows builds a comparator over stored rows for the given keys.
func cmpRows(store []*vec.Vector, keys []SortKey) (func(a, b int32) int, error) {
	cmps := make([]func(a, b int32) int, len(keys))
	for i, k := range keys {
		v := store[k.Col]
		sign := 1
		if k.Desc {
			sign = -1
		}
		switch v.Kind {
		case types.KindBool:
			cmps[i] = func(a, b int32) int {
				x, y := v.Bool[a], v.Bool[b]
				switch {
				case x == y:
					return 0
				case !x:
					return -sign
				default:
					return sign
				}
			}
		case types.KindInt32, types.KindDate:
			cmps[i] = func(a, b int32) int { return sign * cmpOrd(v.I32[a], v.I32[b]) }
		case types.KindInt64:
			cmps[i] = func(a, b int32) int { return sign * cmpOrd(v.I64[a], v.I64[b]) }
		case types.KindFloat64:
			cmps[i] = func(a, b int32) int { return sign * cmpOrd(v.F64[a], v.F64[b]) }
		case types.KindString:
			cmps[i] = func(a, b int32) int { return sign * cmpOrd(v.Str[a], v.Str[b]) }
		default:
			return nil, fmt.Errorf("exec: sort on kind %v", v.Kind)
		}
	}
	return func(a, b int32) int {
		for _, c := range cmps {
			if r := c(a, b); r != 0 {
				return r
			}
		}
		return 0
	}, nil
}

func cmpOrd[T int32 | int64 | float64 | string](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Next implements Operator.
func (s *Sort) Next() (*vec.Batch, error) {
	if !s.built {
		if err := s.consume(); err != nil {
			return nil, err
		}
		cmp, err := cmpRows(s.store, s.Keys)
		if err != nil {
			return nil, err
		}
		sort.SliceStable(s.perm, func(i, j int) bool { return cmp(s.perm[i], s.perm[j]) < 0 })
		s.built = true
	}
	total := len(s.perm)
	if s.emitAt >= total {
		return nil, nil
	}
	if err := s.ctx.poll(); err != nil {
		return nil, err
	}
	n := s.ctx.vecSize()
	if rem := total - s.emitAt; n > rem {
		n = rem
	}
	window := s.perm[s.emitAt : s.emitAt+n]
	for c := range s.out.Vecs {
		s.out.Vecs[c].Reset()
		s.out.Vecs[c].GatherFrom(s.store[c], window)
	}
	s.out.Sel = nil
	s.out.ForceLen(n)
	s.emitAt += n
	return s.out, nil
}

func (s *Sort) consume() error {
	for {
		if err := s.ctx.poll(); err != nil {
			return err
		}
		b, err := s.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if err := s.ctx.charge(b); err != nil {
			return err
		}
		base := int32(0)
		if len(s.store) > 0 {
			base = int32(s.store[0].Len())
		}
		for c := range s.store {
			appendSelected(s.store[c], b.Vecs[c], b.Sel, b.Full())
		}
		for i := 0; i < b.Rows(); i++ {
			s.perm = append(s.perm, base+int32(i))
		}
	}
}

// Close implements Operator.
func (s *Sort) Close() { s.Child.Close() }

// TopN keeps only the first N rows of the sorted order, using a bounded
// max-heap instead of a full sort — the standard ORDER BY ... LIMIT n
// specialization.
type TopN struct {
	Child Operator
	Keys  []SortKey
	N     int

	ctx    *Ctx
	store  []*vec.Vector
	cmp    func(a, b int32) int
	hp     *rowHeap
	out    *vec.Batch
	built  bool
	emitAt int
	order  []int32
}

// NewTopN builds a top-N operator.
func NewTopN(child Operator, keys []SortKey, n int) *TopN {
	return &TopN{Child: child, Keys: keys, N: n}
}

// Kinds implements Operator.
func (t *TopN) Kinds() []types.Kind { return t.Child.Kinds() }

// Open implements Operator.
func (t *TopN) Open(ctx *Ctx) error {
	t.ctx = ctx
	t.built = false
	t.emitAt = 0
	kinds := t.Child.Kinds()
	t.store = make([]*vec.Vector, len(kinds))
	for i, k := range kinds {
		t.store[i] = vec.New(k, ctx.vecSize())
	}
	t.out = vec.NewBatch(kinds, ctx.vecSize())
	return t.Child.Open(ctx)
}

type rowHeap struct {
	rows []int32
	cmp  func(a, b int32) int
}

func (h *rowHeap) Len() int           { return len(h.rows) }
func (h *rowHeap) Less(i, j int) bool { return h.cmp(h.rows[i], h.rows[j]) > 0 } // max-heap
func (h *rowHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *rowHeap) Push(x any)         { h.rows = append(h.rows, x.(int32)) }
func (h *rowHeap) Pop() any {
	n := len(h.rows)
	x := h.rows[n-1]
	h.rows = h.rows[:n-1]
	return x
}

// Next implements Operator.
func (t *TopN) Next() (*vec.Batch, error) {
	if !t.built {
		cmp, err := cmpRows(t.store, t.Keys)
		if err != nil {
			return nil, err
		}
		t.cmp = cmp
		t.hp = &rowHeap{cmp: cmp}
		if err := t.consume(); err != nil {
			return nil, err
		}
		// Drain the heap into ascending order.
		t.order = make([]int32, len(t.hp.rows))
		for i := len(t.order) - 1; i >= 0; i-- {
			t.order[i] = heap.Pop(t.hp).(int32)
		}
		t.built = true
	}
	if t.emitAt >= len(t.order) {
		return nil, nil
	}
	if err := t.ctx.poll(); err != nil {
		return nil, err
	}
	n := t.ctx.vecSize()
	if rem := len(t.order) - t.emitAt; n > rem {
		n = rem
	}
	window := t.order[t.emitAt : t.emitAt+n]
	for c := range t.out.Vecs {
		t.out.Vecs[c].Reset()
		t.out.Vecs[c].GatherFrom(t.store[c], window)
	}
	t.out.Sel = nil
	t.out.ForceLen(n)
	t.emitAt += n
	return t.out, nil
}

func (t *TopN) consume() error {
	for {
		if err := t.ctx.poll(); err != nil {
			return err
		}
		b, err := t.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		for i := 0; i < b.Rows(); i++ {
			phys := b.RowIndex(i)
			// Copy the candidate row into the store.
			idx := int32(t.store[0].Len())
			for c := range t.store {
				t.store[c].Append(b.Vecs[c].Get(phys))
			}
			heap.Push(t.hp, idx)
			if t.hp.Len() > t.N {
				heap.Pop(t.hp)
			}
		}
		// Periodically compact the store to the live heap rows so memory
		// stays O(N), not O(input).
		if t.store[0].Len() > 4*t.N+1024 {
			t.compact()
		}
	}
}

func (t *TopN) compact() {
	live := append([]int32(nil), t.hp.rows...)
	remap := make(map[int32]int32, len(live))
	newStore := make([]*vec.Vector, len(t.store))
	for c := range t.store {
		newStore[c] = vec.New(t.store[c].Kind, len(live))
	}
	for newIdx, old := range live {
		for c := range t.store {
			newStore[c].Append(t.store[c].Get(int(old)))
		}
		remap[old] = int32(newIdx)
	}
	t.store = newStore
	for i, r := range t.hp.rows {
		t.hp.rows[i] = remap[r]
	}
	// Rebuild comparator closures over the new store.
	cmp, _ := cmpRows(t.store, t.Keys)
	t.cmp = cmp
	t.hp.cmp = cmp
}

// Close implements Operator.
func (t *TopN) Close() { t.Child.Close() }
