package exec

import (
	"context"
	"sync"
	"sync/atomic"

	"vectorwise/internal/metrics"
	"vectorwise/internal/pdt"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// Morsel-driven scans: instead of assigning row-group partitions to workers
// at compile time, P scan workers pull row-group morsels from one shared
// queue at run time. Skewed groups self-balance (a worker stuck on a fat
// group simply claims fewer morsels while its siblings steal the rest), and
// deltas arriving between compile and run change what the queue serves —
// never the plan shape.

var mMorselSteals = metrics.Default.Counter("exec_morsel_steals_total")

// MorselScanner is one worker's repositionable view of a table: SeekGroup
// selects a row-group morsel, then Next drains it (done=true at its end).
// colstore.Scanner implements it.
type MorselScanner interface {
	pdt.BatchSource
	SeekGroup(g int)
}

// MorselSource is the run-time view of a parallel table scan, constructed
// at Open (inside the query's snapshot, after every compile-time decision).
// Either the table is morsel-scannable (NumMorsels > 0, one independent
// MorselScanner per worker), or it degrades to a single serial stream
// (NumMorsels == 0: the PDT-merge path, where delta application is
// positional over the whole table).
type MorselSource interface {
	// NumMorsels reports how many row-group morsels the snapshot offers;
	// 0 means only Serial is available.
	NumMorsels() int
	// Worker returns a fresh repositionable scanner (one per worker).
	Worker() (MorselScanner, error)
	// Serial returns the fallback stream when NumMorsels() == 0.
	Serial() (pdt.BatchSource, error)
}

// CoopStream delivers row-group morsels with their raw bytes, in whatever
// order benefits the system — the cooperative-scan path, where a shared
// buffer manager decides which group every attached query receives next.
// One stream is shared by all sibling workers of a fragment; each group is
// delivered exactly once across them. ok=false means the scan has consumed
// every group.
type CoopStream interface {
	Next(ctx context.Context) (g int, payload []byte, ok bool, err error)
	// Close detaches from the shared buffer manager; idempotent.
	Close()
}

// CoopMorselSource is a MorselSource whose groups may arrive through a
// cooperative stream. A nil Coop means "scan alone this time" and the
// normal morsel queue applies.
type CoopMorselSource interface {
	MorselSource
	Coop() CoopStream
}

// PayloadSeeker is a MorselScanner that can reposition onto a group whose
// bytes were already delivered (colstore.Scanner.SeekGroupData).
type PayloadSeeker interface {
	SeekGroupData(g int, payload []byte) error
}

// SerialMorselSource wraps a plain batch source as a MorselSource with no
// morsels — the delta-path fallback a single worker claims whole.
func SerialMorselSource(src pdt.BatchSource) MorselSource {
	return serialMorselSource{src: src}
}

type serialMorselSource struct{ src pdt.BatchSource }

func (s serialMorselSource) NumMorsels() int                  { return 0 }
func (s serialMorselSource) Worker() (MorselScanner, error)   { return nil, nil }
func (s serialMorselSource) Serial() (pdt.BatchSource, error) { return s.src, nil }

// MorselQueue hands out row-group morsels to P workers. Each worker owns a
// contiguous deque (preserving sequential decode locality); when a worker's
// deque runs dry it steals from the back of the fullest sibling. A mutex
// guards the whole structure — at 16K rows per morsel, contention is a few
// dozen lock acquisitions per scanned gigabyte, unmeasurable next to
// decompression.
type MorselQueue struct {
	mu     sync.Mutex
	deques [][]int
	counts []int64 // morsels served per worker (atomic reads for stats)
	steals int64
}

// NewMorselQueue distributes morsels [0, n) contiguously over the workers.
func NewMorselQueue(n, workers int) *MorselQueue {
	if workers < 1 {
		workers = 1
	}
	q := &MorselQueue{
		deques: make([][]int, workers),
		counts: make([]int64, workers),
	}
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		for g := lo; g < hi; g++ {
			q.deques[w] = append(q.deques[w], g)
		}
	}
	return q
}

// Next claims the next morsel for worker w: the front of its own deque, or
// a steal from the back of the fullest sibling. ok=false when the queue is
// exhausted.
func (q *MorselQueue) Next(w int) (g int, stolen bool, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if d := q.deques[w]; len(d) > 0 {
		g = d[0]
		q.deques[w] = d[1:]
		atomic.AddInt64(&q.counts[w], 1)
		return g, false, true
	}
	victim, most := -1, 0
	for i, d := range q.deques {
		if len(d) > most {
			victim, most = i, len(d)
		}
	}
	if victim < 0 {
		return 0, false, false
	}
	d := q.deques[victim]
	g = d[len(d)-1]
	q.deques[victim] = d[:len(d)-1]
	q.steals++
	atomic.AddInt64(&q.counts[w], 1)
	mMorselSteals.Inc()
	return g, true, true
}

// Steals reports how many morsels were claimed by a worker other than the
// one holding them initially.
func (q *MorselQueue) Steals() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.steals
}

// Counts snapshots the per-worker morsel counts.
func (q *MorselQueue) Counts() []int64 {
	out := make([]int64, len(q.counts))
	for i := range out {
		out[i] = atomic.LoadInt64(&q.counts[i])
	}
	return out
}

// morselState is the run-time state the P sibling MorselScan workers of one
// parallel fragment share, created lazily under Ctx.SharedState by the
// first worker to open.
type morselState struct {
	once  sync.Once
	err   error
	src   MorselSource
	queue *MorselQueue
	coop  CoopStream

	serial        pdt.BatchSource
	serialClaimed atomic.Bool
	coopClose     sync.Once
}

func (st *morselState) init(workers int, mk func() (MorselSource, error)) {
	st.once.Do(func() {
		src, err := mk()
		if err != nil {
			st.err = err
			return
		}
		st.src = src
		if n := src.NumMorsels(); n > 0 {
			if cs, ok := src.(CoopMorselSource); ok {
				if c := cs.Coop(); c != nil {
					st.coop = c
					return
				}
			}
			st.queue = NewMorselQueue(n, workers)
			return
		}
		st.serial, st.err = src.Serial()
	})
}

// closeCoop detaches the shared cooperative stream exactly once, however
// many workers call Close (including after failed Opens).
func (st *morselState) closeCoop() {
	if st.coop != nil {
		st.coopClose.Do(st.coop.Close)
	}
}

// MorselScan is one worker of a morsel-driven parallel scan. All workers
// sharing a Key pull from the same MorselQueue; when the source degrades to
// a serial stream (deltas at run time), exactly one worker claims it and
// the rest come up empty — the plan keeps its parallel shape either way.
type MorselScan struct {
	kinds []types.Kind
	// SourceFn builds the shared run-time source at Open, once the vector
	// size and snapshot are known. Only one worker's closure actually runs.
	SourceFn func(vecSize int) (MorselSource, error)
	Key      any // shared-state identity linking sibling workers
	Worker   int
	Workers  int
	OpLabel  string // metrics label, e.g. "ParallelScan"

	ctx     *Ctx
	st      *morselState
	scanner MorselScanner
	serial  pdt.BatchSource
	buf     *vec.Batch
	inGroup bool
	morsels int64
	stolen  int64
	class   *opClassMetrics
	mCount  *Counter
}

// NewMorselScan builds one scan worker.
func NewMorselScan(kinds []types.Kind, key any, worker, workers int, label string,
	sourceFn func(vecSize int) (MorselSource, error)) *MorselScan {
	return &MorselScan{kinds: kinds, SourceFn: sourceFn, Key: key,
		Worker: worker, Workers: workers, OpLabel: label}
}

// Kinds implements Operator.
func (m *MorselScan) Kinds() []types.Kind { return m.kinds }

// Open implements Operator: resolves (or joins) the shared morsel state.
func (m *MorselScan) Open(ctx *Ctx) error {
	m.ctx = ctx
	m.scanner = nil
	m.serial = nil
	m.inGroup = false
	m.morsels, m.stolen = 0, 0
	label := m.OpLabel
	if label == "" {
		label = "ParallelScan"
	}
	m.mCount = metrics.Default.Counter(`exec_morsels_total{op="` + label + `"}`)
	vecSize := ctx.vecSize()
	m.st = ctx.SharedState(m.Key, func() any { return &morselState{} }).(*morselState)
	m.st.init(m.Workers, func() (MorselSource, error) { return m.SourceFn(vecSize) })
	if m.st.err != nil {
		return m.st.err
	}
	if m.st.serial != nil {
		if m.st.serialClaimed.CompareAndSwap(false, true) {
			m.serial = m.st.serial
			m.morsels++ // the whole merged scan counts as one fat morsel
			m.mCount.Inc()
		}
		m.buf = vec.NewBatch(m.serialKinds(), vecSize)
		return nil
	}
	sc, err := m.st.src.Worker()
	if err != nil {
		return err
	}
	m.scanner = sc
	m.buf = vec.NewBatch(m.kinds, vecSize)
	return nil
}

func (m *MorselScan) serialKinds() []types.Kind {
	if m.serial != nil {
		return m.serial.Kinds()
	}
	return m.kinds
}

// Next implements Operator.
func (m *MorselScan) Next() (*vec.Batch, error) {
	if err := m.ctx.poll(); err != nil {
		return nil, err
	}
	if m.st.serial != nil {
		if m.serial == nil {
			return nil, nil // another worker claimed the serial stream
		}
		_, _, done, err := m.serial.Next(m.buf)
		if err != nil || done {
			return nil, err
		}
		return m.buf, nil
	}
	for {
		if m.inGroup {
			_, _, done, err := m.scanner.Next(m.buf)
			if err != nil {
				return nil, err
			}
			if !done {
				return m.buf, nil
			}
			m.inGroup = false
		}
		if m.st.coop != nil {
			// Cooperative path: the shared stream decides which group this
			// worker gets next, and hands over its bytes with it.
			g, payload, ok, err := m.st.coop.Next(m.ctx.Ctx)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, nil
			}
			m.morsels++
			m.mCount.Inc()
			if ps, can := m.scanner.(PayloadSeeker); can {
				if err := ps.SeekGroupData(g, payload); err != nil {
					return nil, err
				}
			} else {
				m.scanner.SeekGroup(g)
			}
			m.inGroup = true
			continue
		}
		g, stolen, ok := m.st.queue.Next(m.Worker)
		if !ok {
			return nil, nil
		}
		m.morsels++
		if stolen {
			m.stolen++
		}
		m.mCount.Inc()
		m.scanner.SeekGroup(g)
		m.inGroup = true
	}
}

// Close implements Operator.
func (m *MorselScan) Close() {
	if m.st != nil {
		m.st.closeCoop()
	}
}

// MorselStats implements the profiling shell's morselReporter.
func (m *MorselScan) MorselStats() (morsels, steals int64) { return m.morsels, m.stolen }

// SkipStats reports block-skipping counters from this worker's scanner.
func (m *MorselScan) SkipStats() (int64, int64) {
	if gs, ok := m.scanner.(GroupSkipping); ok {
		return int64(gs.SkippedGroups()), int64(gs.TotalGroups())
	}
	return 0, 0
}

// SkippedByteStats reports the encoded bytes this worker's scanner skipped.
func (m *MorselScan) SkippedByteStats() int64 {
	if bs, ok := m.scanner.(ByteSkipping); ok {
		return bs.SkippedBytes()
	}
	return 0
}
