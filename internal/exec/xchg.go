package exec

import (
	"sync"
	"sync/atomic"

	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// The Xchg (exchange) operators implement Volcano-style parallelism: plan
// fragments run in their own goroutines and meet at exchange boundaries.
// The paper's "Multi-core" bullet (claim C9) notes Vectorwise built its
// parallelizer *in the rewriter* by inserting exactly these operators;
// internal/rewriter does the same and experiment E6 measures the scaling.

// XchgUnion runs each child in its own goroutine and merges their batches
// into one stream (no ordering guarantees).
type XchgUnion struct {
	Children []Operator

	ctx     *Ctx
	ch      chan *vec.Batch
	errCh   chan error
	wg      sync.WaitGroup
	stop    chan struct{}
	stopped sync.Once
	opened  bool
}

// NewXchgUnion builds an exchange union.
func NewXchgUnion(children ...Operator) *XchgUnion {
	return &XchgUnion{Children: children}
}

// Kinds implements Operator.
func (x *XchgUnion) Kinds() []types.Kind { return x.Children[0].Kinds() }

// Open implements Operator: starts one producer goroutine per child.
func (x *XchgUnion) Open(ctx *Ctx) error {
	x.ctx = ctx
	x.ch = make(chan *vec.Batch, len(x.Children)*2)
	x.errCh = make(chan error, len(x.Children))
	x.stop = make(chan struct{})
	x.opened = true
	for _, c := range x.Children {
		x.wg.Add(1)
		go x.produce(c)
	}
	go func() {
		x.wg.Wait()
		close(x.ch)
	}()
	return nil
}

func (x *XchgUnion) produce(child Operator) {
	defer x.wg.Done()
	if err := child.Open(x.ctx); err != nil {
		child.Close()
		x.fail(err)
		return
	}
	defer child.Close()
	for {
		// A stopped exchange (early consumer Close, e.g. under LIMIT) must
		// not keep pulling from the child pipeline.
		select {
		case <-x.stop:
			return
		default:
		}
		b, err := child.Next()
		if err != nil {
			x.fail(err)
			return
		}
		if b == nil {
			return
		}
		// Producers reuse their batches, so ship a compacted copy across
		// the thread boundary (the standard exchange copy).
		out := b.Clone()
		select {
		case x.ch <- out:
		case <-x.stop:
			return
		}
	}
}

func (x *XchgUnion) fail(err error) {
	select {
	case x.errCh <- err:
	default:
	}
	x.stopped.Do(func() { close(x.stop) })
}

// Next implements Operator.
func (x *XchgUnion) Next() (*vec.Batch, error) {
	for {
		select {
		case err := <-x.errCh:
			x.stopped.Do(func() { close(x.stop) })
			return nil, err
		case b, ok := <-x.ch:
			if !ok {
				// Producers done; surface any late error.
				select {
				case err := <-x.errCh:
					return nil, err
				default:
					return nil, nil
				}
			}
			return b, nil
		case <-x.ctx.Ctx.Done():
			x.stopped.Do(func() { close(x.stop) })
			return nil, x.ctx.poll()
		}
	}
}

// Close implements Operator: tears down producers and drains the channel so
// they can exit, then waits for them — after Close returns, no producer
// goroutine survives, even when the consumer quit early (LIMIT).
func (x *XchgUnion) Close() {
	if !x.opened {
		for _, c := range x.Children {
			c.Close()
		}
		return
	}
	x.stopped.Do(func() { close(x.stop) })
	for range x.ch {
		// drain until producers close it
	}
	x.wg.Wait()
	x.opened = false
}

// XchgHashSplit partitions one input stream into P output operators by the
// hash of key columns; each partition can then feed an independent plan
// fragment (partitioned joins/aggregations).
type XchgHashSplit struct {
	Input   Operator
	KeyCols []int
	P       int

	parts    []*splitPart
	once     sync.Once
	err      error
	stop     chan struct{}
	stopOnce sync.Once
	started  atomic.Bool
}

type splitPart struct {
	parent *XchgHashSplit
	ch     chan *vec.Batch
	ctx    *Ctx
}

// NewXchgHashSplit builds the splitter and returns its P partition
// operators. The input is driven by a single goroutine started lazily when
// the first partition is opened; all partitions must be consumed (each by
// exactly one reader).
func NewXchgHashSplit(input Operator, keyCols []int, p int) []Operator {
	x := &XchgHashSplit{Input: input, KeyCols: keyCols, P: p, stop: make(chan struct{})}
	out := make([]Operator, p)
	x.parts = make([]*splitPart, p)
	for i := 0; i < p; i++ {
		x.parts[i] = &splitPart{parent: x, ch: make(chan *vec.Batch, 4)}
		out[i] = x.parts[i]
	}
	return out
}

// Kinds implements Operator.
func (s *splitPart) Kinds() []types.Kind { return s.parent.Input.Kinds() }

// Open implements Operator.
func (s *splitPart) Open(ctx *Ctx) error {
	s.ctx = ctx
	s.parent.once.Do(func() {
		s.parent.started.Store(true)
		go s.parent.drive(ctx)
	})
	return nil
}

func (x *XchgHashSplit) drive(ctx *Ctx) {
	defer func() {
		for _, p := range x.parts {
			close(p.ch)
		}
	}()
	if err := x.Input.Open(ctx); err != nil {
		x.err = err
		return
	}
	defer x.Input.Close()
	kinds := x.Input.Kinds()
	// Per-partition accumulation buffers.
	accs := make([]*vec.Batch, x.P)
	for i := range accs {
		accs[i] = vec.NewBatch(kinds, ctx.vecSize())
	}
	flush := func(i int) bool {
		if accs[i].Full() == 0 {
			return true
		}
		select {
		case x.parts[i].ch <- accs[i]:
			accs[i] = vec.NewBatch(kinds, ctx.vecSize())
			return true
		case <-x.stop:
			return false
		case <-ctx.Ctx.Done():
			return false
		}
	}
	var hashBuf []uint64
	for {
		b, err := x.Input.Next()
		if err != nil {
			x.err = err
			return
		}
		if b == nil {
			break
		}
		rows := b.Rows()
		if rows == 0 {
			continue
		}
		if cap(hashBuf) < rows {
			hashBuf = make([]uint64, rows)
		}
		hv := hashBuf[:rows]
		if err := hashKeys(hv, b.Vecs, x.KeyCols, b.Sel, b.Full()); err != nil {
			x.err = err
			return
		}
		for k := 0; k < rows; k++ {
			part := int(hv[k] % uint64(x.P))
			phys := b.RowIndex(k)
			acc := accs[part]
			at := acc.Full()
			for c := range acc.Vecs {
				acc.Vecs[c].Grow(at + 1)
				acc.Vecs[c].SetLen(at + 1)
				acc.Vecs[c].Set(at, b.Vecs[c].Get(phys))
			}
			acc.ForceLen(at + 1)
			if at+1 >= ctx.vecSize() {
				if !flush(part) {
					return
				}
			}
		}
	}
	for i := range accs {
		if !flush(i) {
			return
		}
	}
}

// Next implements Operator.
func (s *splitPart) Next() (*vec.Batch, error) {
	select {
	case b, ok := <-s.ch:
		if !ok {
			if s.parent.err != nil {
				return nil, s.parent.err
			}
			return nil, nil
		}
		return b, nil
	case <-s.ctx.Ctx.Done():
		return nil, s.ctx.poll()
	}
}

// Close implements Operator: stops the driver and drains this part until
// the driver closes it. The old implementation spawned an unconditional
// drain goroutine, which leaked forever when the driver never started (no
// partition opened) or stayed blocked on a sibling partition.
func (s *splitPart) Close() {
	s.parent.stopOnce.Do(func() { close(s.parent.stop) })
	if !s.parent.started.Load() {
		return
	}
	for range s.ch {
	}
}
