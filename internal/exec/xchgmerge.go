package exec

import (
	"fmt"
	"sync"

	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// XchgMerge is the order-preserving exchange: each child produces a stream
// already sorted on Keys (a per-worker local sort or top-N), and the
// consumer performs a P-way merge, so the union is globally sorted without
// re-sorting. Ties across children resolve by child index, keeping the
// merge deterministic on duplicate keys.
type XchgMerge struct {
	Children []Operator
	Keys     []SortKey

	ctx     *Ctx
	streams []*mergeStream
	errCh   chan error
	wg      sync.WaitGroup
	stop    chan struct{}
	stopped sync.Once
	opened  bool
	cmp     func(a *vec.Batch, ai int, b *vec.Batch, bi int) int
	out     *vec.Batch
	done    bool
}

type mergeStream struct {
	ch   chan *vec.Batch
	cur  *vec.Batch
	pos  int
	done bool
}

// NewXchgMerge builds an order-preserving exchange over pre-sorted children.
func NewXchgMerge(keys []SortKey, children ...Operator) *XchgMerge {
	return &XchgMerge{Children: children, Keys: keys}
}

// Kinds implements Operator.
func (x *XchgMerge) Kinds() []types.Kind { return x.Children[0].Kinds() }

// Open implements Operator: starts one producer goroutine per child.
func (x *XchgMerge) Open(ctx *Ctx) error {
	x.ctx = ctx
	x.errCh = make(chan error, len(x.Children))
	x.stop = make(chan struct{})
	x.stopped = sync.Once{}
	x.done = false
	x.opened = true
	cmp, err := cmpBatchRows(x.Kinds(), x.Keys)
	if err != nil {
		return err
	}
	x.cmp = cmp
	x.out = vec.NewBatch(x.Kinds(), ctx.vecSize())
	x.streams = make([]*mergeStream, len(x.Children))
	for i, c := range x.Children {
		s := &mergeStream{ch: make(chan *vec.Batch, 2)}
		x.streams[i] = s
		x.wg.Add(1)
		go x.produce(c, s)
	}
	return nil
}

func (x *XchgMerge) produce(child Operator, s *mergeStream) {
	defer x.wg.Done()
	defer close(s.ch)
	if err := child.Open(x.ctx); err != nil {
		child.Close()
		x.fail(err)
		return
	}
	defer child.Close()
	for {
		select {
		case <-x.stop:
			return
		default:
		}
		b, err := child.Next()
		if err != nil {
			x.fail(err)
			return
		}
		if b == nil {
			return
		}
		if b.Rows() == 0 {
			continue
		}
		out := b.Clone()
		select {
		case s.ch <- out:
		case <-x.stop:
			return
		}
	}
}

func (x *XchgMerge) fail(err error) {
	select {
	case x.errCh <- err:
	default:
	}
	x.stopped.Do(func() { close(x.stop) })
}

// advance ensures stream s holds a current batch or is marked done.
func (x *XchgMerge) advance(s *mergeStream) error {
	for !s.done && (s.cur == nil || s.pos >= s.cur.Rows()) {
		select {
		case err := <-x.errCh:
			x.stopped.Do(func() { close(x.stop) })
			return err
		case b, ok := <-s.ch:
			if !ok {
				s.done = true
				s.cur = nil
				// A closed stream may mean a failed producer: surface it.
				select {
				case err := <-x.errCh:
					x.stopped.Do(func() { close(x.stop) })
					return err
				default:
				}
				return nil
			}
			s.cur = b
			s.pos = 0
		case <-x.ctx.Ctx.Done():
			x.stopped.Do(func() { close(x.stop) })
			return x.ctx.poll()
		}
	}
	return nil
}

// Next implements Operator: merges the pre-sorted streams row-at-a-time
// into vector-sized output batches.
func (x *XchgMerge) Next() (*vec.Batch, error) {
	if x.done {
		return nil, nil
	}
	x.out.Reset()
	n := 0
	limit := x.ctx.vecSize()
	for n < limit {
		best := -1
		for i, s := range x.streams {
			if err := x.advance(s); err != nil {
				return nil, err
			}
			if s.done {
				continue
			}
			if best < 0 || x.cmp(s.cur, s.cur.RowIndex(s.pos), x.streams[best].cur,
				x.streams[best].cur.RowIndex(x.streams[best].pos)) < 0 {
				best = i
			}
		}
		if best < 0 {
			x.done = true
			break
		}
		s := x.streams[best]
		phys := s.cur.RowIndex(s.pos)
		for c := range x.out.Vecs {
			x.out.Vecs[c].Append(s.cur.Vecs[c].Get(phys))
		}
		s.pos++
		n++
	}
	if n == 0 {
		return nil, nil
	}
	x.out.Sel = nil
	x.out.ForceLen(n)
	return x.out, nil
}

// Close implements Operator: stops producers and drains every stream so
// their goroutines can exit even when the consumer quit early.
func (x *XchgMerge) Close() {
	if !x.opened {
		for _, c := range x.Children {
			c.Close()
		}
		return
	}
	x.stopped.Do(func() { close(x.stop) })
	for _, s := range x.streams {
		for range s.ch {
		}
	}
	x.wg.Wait()
	x.opened = false
}

// cmpBatchRows builds a cross-batch row comparator over the sort keys —
// the merge needs to order rows living in different children's batches,
// which cmpRows (single-store) cannot express.
func cmpBatchRows(kinds []types.Kind, keys []SortKey) (func(a *vec.Batch, ai int, b *vec.Batch, bi int) int, error) {
	cmps := make([]func(a *vec.Batch, ai int, b *vec.Batch, bi int) int, len(keys))
	for i, k := range keys {
		col := k.Col
		sign := 1
		if k.Desc {
			sign = -1
		}
		switch kinds[col] {
		case types.KindBool:
			cmps[i] = func(a *vec.Batch, ai int, b *vec.Batch, bi int) int {
				x, y := a.Vecs[col].Bool[ai], b.Vecs[col].Bool[bi]
				switch {
				case x == y:
					return 0
				case !x:
					return -sign
				default:
					return sign
				}
			}
		case types.KindInt32, types.KindDate:
			cmps[i] = func(a *vec.Batch, ai int, b *vec.Batch, bi int) int {
				return sign * cmpOrd(a.Vecs[col].I32[ai], b.Vecs[col].I32[bi])
			}
		case types.KindInt64:
			cmps[i] = func(a *vec.Batch, ai int, b *vec.Batch, bi int) int {
				return sign * cmpOrd(a.Vecs[col].I64[ai], b.Vecs[col].I64[bi])
			}
		case types.KindFloat64:
			cmps[i] = func(a *vec.Batch, ai int, b *vec.Batch, bi int) int {
				return sign * cmpOrd(a.Vecs[col].F64[ai], b.Vecs[col].F64[bi])
			}
		case types.KindString:
			cmps[i] = func(a *vec.Batch, ai int, b *vec.Batch, bi int) int {
				return sign * cmpOrd(a.Vecs[col].Str[ai], b.Vecs[col].Str[bi])
			}
		default:
			return nil, fmt.Errorf("exec: merge on kind %v", kinds[col])
		}
	}
	return func(a *vec.Batch, ai int, b *vec.Batch, bi int) int {
		for _, c := range cmps {
			if r := c(a, ai, b, bi); r != 0 {
				return r
			}
		}
		return 0
	}, nil
}
