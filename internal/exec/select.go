package exec

import (
	"fmt"

	"vectorwise/internal/expr"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// Select filters its input with a compiled selection program; it never
// copies data — qualifying rows are described by a selection vector.
type Select struct {
	Child Operator
	Pred  expr.Expr

	ctx    *Ctx
	filter *expr.Filter
	out    vec.Batch
}

// NewSelect builds a filter operator.
func NewSelect(child Operator, pred expr.Expr) *Select {
	return &Select{Child: child, Pred: pred}
}

// Kinds implements Operator.
func (s *Select) Kinds() []types.Kind { return s.Child.Kinds() }

// Open implements Operator.
func (s *Select) Open(ctx *Ctx) error {
	s.ctx = ctx
	f, err := expr.CompileFilter(s.Pred, s.Child.Kinds(), ctx.Mode)
	if err != nil {
		return err
	}
	s.filter = f
	return s.Child.Open(ctx)
}

// Next implements Operator.
func (s *Select) Next() (*vec.Batch, error) {
	for {
		b, err := s.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		sel, err := s.filter.Apply(b)
		if err != nil {
			return nil, err
		}
		if len(sel) == 0 {
			continue
		}
		s.out = *b
		s.out.Sel = sel
		return &s.out, nil
	}
}

// Close implements Operator.
func (s *Select) Close() { s.Child.Close() }

// Project evaluates expressions over its input; column references alias
// input vectors (zero copy), computed expressions land in evaluator
// registers. The output carries the input's selection vector.
type Project struct {
	Child Operator
	Exprs []expr.Expr

	ctx   *Ctx
	evals []*expr.Evaluator
	// direct[i] >= 0 marks pure column references passed through by alias.
	direct []int
	kinds  []types.Kind
	out    vec.Batch
}

// NewProject builds a projection.
func NewProject(child Operator, exprs []expr.Expr) *Project {
	p := &Project{Child: child, Exprs: exprs}
	p.kinds = make([]types.Kind, len(exprs))
	for i, e := range exprs {
		p.kinds[i] = e.Type().Kind
	}
	return p
}

// Kinds implements Operator.
func (p *Project) Kinds() []types.Kind { return p.kinds }

// Open implements Operator.
func (p *Project) Open(ctx *Ctx) error {
	p.ctx = ctx
	inKinds := p.Child.Kinds()
	p.evals = make([]*expr.Evaluator, len(p.Exprs))
	p.direct = make([]int, len(p.Exprs))
	for i, e := range p.Exprs {
		if c, ok := e.(*expr.ColRef); ok {
			p.direct[i] = c.Idx
			continue
		}
		p.direct[i] = -1
		ev, err := expr.Compile(e, inKinds, ctx.Mode)
		if err != nil {
			return err
		}
		p.evals[i] = ev
	}
	p.out.Vecs = make([]*vec.Vector, len(p.Exprs))
	return p.Child.Open(ctx)
}

// Next implements Operator.
func (p *Project) Next() (*vec.Batch, error) {
	b, err := p.Child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	for i := range p.Exprs {
		if d := p.direct[i]; d >= 0 {
			p.out.Vecs[i] = b.Vecs[d]
			continue
		}
		v, err := p.evals[i].Eval(b)
		if err != nil {
			return nil, err
		}
		p.out.Vecs[i] = v
	}
	p.out.Sel = b.Sel
	p.out.ForceLen(b.Full())
	return &p.out, nil
}

// Close implements Operator.
func (p *Project) Close() { p.Child.Close() }

// Limit passes through the first N logical rows (after an optional offset).
type Limit struct {
	Child  Operator
	Offset int64
	N      int64

	ctx     *Ctx
	skipped int64
	emitted int64
	out     vec.Batch
	selBuf  []int32
}

// NewLimit builds LIMIT n OFFSET off.
func NewLimit(child Operator, offset, n int64) *Limit {
	return &Limit{Child: child, Offset: offset, N: n}
}

// Kinds implements Operator.
func (l *Limit) Kinds() []types.Kind { return l.Child.Kinds() }

// Open implements Operator.
func (l *Limit) Open(ctx *Ctx) error {
	l.ctx = ctx
	l.skipped, l.emitted = 0, 0
	return l.Child.Open(ctx)
}

// Next implements Operator.
func (l *Limit) Next() (*vec.Batch, error) {
	for {
		if l.N >= 0 && l.emitted >= l.N {
			return nil, nil
		}
		b, err := l.Child.Next()
		if err != nil || b == nil {
			return nil, err
		}
		rows := int64(b.Rows())
		// Skip offset rows.
		drop := int64(0)
		if l.skipped < l.Offset {
			drop = l.Offset - l.skipped
			if drop > rows {
				l.skipped += rows
				continue
			}
			l.skipped += drop
		}
		take := rows - drop
		if l.N >= 0 && take > l.N-l.emitted {
			take = l.N - l.emitted
		}
		if take <= 0 {
			continue
		}
		l.emitted += take
		if drop == 0 && take == rows {
			return b, nil
		}
		// Narrow via selection vector.
		l.selBuf = l.selBuf[:0]
		for i := drop; i < drop+take; i++ {
			l.selBuf = append(l.selBuf, int32(b.RowIndex(int(i))))
		}
		l.out = *b
		l.out.Sel = l.selBuf
		return &l.out, nil
	}
}

// Close implements Operator.
func (l *Limit) Close() { l.Child.Close() }

// Union concatenates the streams of its children (UNION ALL).
type Union struct {
	Children []Operator
	ctx      *Ctx
	at       int
}

// NewUnion builds a UNION ALL.
func NewUnion(children ...Operator) (*Union, error) {
	if len(children) == 0 {
		return nil, fmt.Errorf("exec: union of nothing")
	}
	k0 := children[0].Kinds()
	for _, c := range children[1:] {
		k := c.Kinds()
		if len(k) != len(k0) {
			return nil, fmt.Errorf("exec: union children differ in arity")
		}
		for i := range k {
			if k[i] != k0[i] {
				return nil, fmt.Errorf("exec: union children differ in column %d kind", i)
			}
		}
	}
	return &Union{Children: children}, nil
}

// Kinds implements Operator.
func (u *Union) Kinds() []types.Kind { return u.Children[0].Kinds() }

// Open implements Operator.
func (u *Union) Open(ctx *Ctx) error {
	u.ctx = ctx
	u.at = 0
	for _, c := range u.Children {
		if err := c.Open(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator.
func (u *Union) Next() (*vec.Batch, error) {
	for u.at < len(u.Children) {
		b, err := u.Children[u.at].Next()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.at++
	}
	return nil, nil
}

// Close implements Operator.
func (u *Union) Close() {
	for _, c := range u.Children {
		c.Close()
	}
}
