package exec

import (
	"errors"
	"fmt"
	"sync/atomic"

	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// ErrBudget reports that a query tried to materialize more than its memory
// budget allows. Pipelined operators are exempt — only the materializing
// ones (sort stores, hash-join builds, aggregation tables) charge, because
// they are what actually accumulates with input size.
var ErrBudget = errors.New("exec: query memory budget exceeded")

// MemBudget is a per-query cap on materialized bytes, shared by every
// operator (across all parallel workers) of one query. A nil budget or a
// zero limit means unlimited.
type MemBudget struct {
	limit int64
	used  atomic.Int64
}

// NewMemBudget creates a budget of limit bytes (<= 0: unlimited).
func NewMemBudget(limit int64) *MemBudget { return &MemBudget{limit: limit} }

// Charge records n more materialized bytes and fails when the total passes
// the limit. Estimates, not allocations: close enough to stop a runaway
// sort or join build long before the process is at risk.
func (m *MemBudget) Charge(n int64) error {
	if m == nil || m.limit <= 0 {
		return nil
	}
	if used := m.used.Add(n); used > m.limit {
		return fmt.Errorf("%w: %d bytes materialized, limit %d", ErrBudget, used, m.limit)
	}
	return nil
}

// Used reports the bytes charged so far.
func (m *MemBudget) Used() int64 {
	if m == nil {
		return 0
	}
	return m.used.Load()
}

// Limit reports the configured cap (0 = unlimited).
func (m *MemBudget) Limit() int64 {
	if m == nil {
		return 0
	}
	return m.limit
}

// charge bills the selected rows of b against the query budget.
func (c *Ctx) charge(b *vec.Batch) error {
	if c.Budget == nil {
		return nil
	}
	return c.Budget.Charge(batchBytes(b))
}

// batchBytes estimates the heap footprint of the selected rows of b.
func batchBytes(b *vec.Batch) int64 {
	rows := int64(b.Rows())
	var total int64
	for _, v := range b.Vecs {
		switch v.Kind {
		case types.KindBool:
			total += rows
		case types.KindInt32, types.KindDate:
			total += rows * 4
		case types.KindString:
			total += rows * 16 // string header
			for i := 0; i < int(rows); i++ {
				total += int64(len(v.Str[b.RowIndex(i)]))
			}
		default:
			total += rows * 8
		}
	}
	return total
}
