// Package exec is the X100 execution kernel: vectorized physical operators
// composed into pull-based pipelines. Operators exchange *vec.Batch values
// (~1K rows per column) and do all per-value work inside the primitive
// library — the design that makes claim C1 (">10× faster than conventional
// engines") hold.
//
// Every operator polls the query context between batches, which is how
// query cancellation (claim C11) propagates through arbitrarily deep —
// and, with the Xchg operators, parallel — plans.
package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"vectorwise/internal/expr"
	"vectorwise/internal/metrics"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// Operator is a vectorized physical operator.
type Operator interface {
	// Kinds describes the output vectors.
	Kinds() []types.Kind
	// Open prepares the operator tree for execution.
	Open(ctx *Ctx) error
	// Next returns the next batch, or nil at end of stream. The batch is
	// owned by the operator and valid until the following Next or Close.
	Next() (*vec.Batch, error)
	// Close releases resources; must be idempotent and callable after a
	// failed Open.
	Close()
}

// Ctx carries per-query execution state.
type Ctx struct {
	// Ctx cancels the query (user cancellation, timeouts).
	Ctx context.Context
	// VecSize is the vector length; 0 means vec.DefaultSize. Experiment E2
	// sweeps it.
	VecSize int
	// Mode selects checked/naive arithmetic for expression compilation.
	Mode expr.Mode
	// Profile enables per-operator counters (claim C12: monitoring).
	Profile bool
	// Budget caps the bytes materializing operators may accumulate for this
	// query; nil means unlimited. Set by the session layer's admission
	// control.
	Budget *MemBudget

	// shared links sibling operators of one parallel fragment (a morsel
	// queue shared by P scan workers), keyed by the plan-time spec that
	// spawned them. Scoped to the Ctx, so every execution gets fresh state.
	shared sync.Map
}

// SharedState returns the state registered under key, creating it with mk
// on first use. Safe to call concurrently from exchange goroutines; exactly
// one value wins and all callers see it.
func (c *Ctx) SharedState(key any, mk func() any) any {
	if v, ok := c.shared.Load(key); ok {
		return v
	}
	v, _ := c.shared.LoadOrStore(key, mk())
	return v
}

// NewCtx builds a context with defaults.
func NewCtx(ctx context.Context) *Ctx {
	return &Ctx{Ctx: ctx, VecSize: vec.DefaultSize}
}

func (c *Ctx) vecSize() int {
	if c.VecSize <= 0 {
		return vec.DefaultSize
	}
	return c.VecSize
}

// ErrCancelled reports query cancellation (wraps the context error).
var ErrCancelled = errors.New("exec: query cancelled")

// poll checks for cancellation; operators call it once per batch.
func (c *Ctx) poll() error {
	select {
	case <-c.Ctx.Done():
		return errors.Join(ErrCancelled, c.Ctx.Err())
	default:
		return nil
	}
}

// OpStats are per-operator profile counters. SkippedGroups/TotalGroups are
// populated only for scans whose source supports min/max block skipping;
// Morsels/MorselSteals only for morsel-driven scan workers.
type OpStats struct {
	Batches       int64
	Rows          int64
	Nanos         int64
	SkippedGroups int64
	TotalGroups   int64
	SkippedBytes  int64
	Morsels       int64
	MorselSteals  int64
}

// GroupSkipping is implemented by batch sources that prune row groups with
// min/max summaries (colstore scanners); the profiling shell surfaces the
// counters as "skipped=N/M groups".
type GroupSkipping interface {
	SkippedGroups() int
	TotalGroups() int
}

// ByteSkipping extends GroupSkipping with the encoded size of the pruned
// groups — the physical I/O a scan avoided, not just the group count.
type ByteSkipping interface {
	SkippedBytes() int64
}

// skipReporter is the operator-level view of GroupSkipping (ColScan
// implements it by delegating to its source).
type skipReporter interface {
	SkipStats() (skipped, total int64)
}

// byteSkipReporter is the operator-level view of ByteSkipping.
type byteSkipReporter interface {
	SkippedByteStats() int64
}

// morselReporter is implemented by morsel-driven scan workers; the
// profiling shell surfaces the counters as "morsels=N (stolen=K)" so load
// balance is observable per worker.
type morselReporter interface {
	MorselStats() (morsels, steals int64)
}

// opClassMetrics are the always-on per-operator-class instruments
// (vectors/rows produced). One pair per op name, resolved once and shared
// by every instance of that class; Next pays two atomic adds per batch.
type opClassMetrics struct {
	rows, batches *Counter
}

// Counter aliases the metrics counter so operator code reads naturally.
type Counter = metrics.Counter

var opMetricsCache sync.Map // op name -> *opClassMetrics

func classMetrics(op string) *opClassMetrics {
	if m, ok := opMetricsCache.Load(op); ok {
		return m.(*opClassMetrics)
	}
	m := &opClassMetrics{
		rows:    metrics.Default.Counter(`exec_rows_total{op="` + op + `"}`),
		batches: metrics.Default.Counter(`exec_vectors_total{op="` + op + `"}`),
	}
	actual, _ := opMetricsCache.LoadOrStore(op, m)
	return actual.(*opClassMetrics)
}

// Profiled wraps an operator with counters when profiling is on. The
// engine-wide per-class rows/vectors metrics stay on unconditionally —
// they are two atomic adds per batch, invisible next to the work of
// producing the batch.
type Profiled struct {
	Name  string
	Child Operator
	stats OpStats
	class *opClassMetrics
	on    bool
}

// NewProfiled wraps child.
func NewProfiled(name string, child Operator) *Profiled {
	return &Profiled{Name: name, Child: child, class: classMetrics(name)}
}

// Kinds implements Operator.
func (p *Profiled) Kinds() []types.Kind { return p.Child.Kinds() }

// Open implements Operator.
func (p *Profiled) Open(ctx *Ctx) error {
	p.on = ctx.Profile
	return p.Child.Open(ctx)
}

// Next implements Operator.
func (p *Profiled) Next() (*vec.Batch, error) {
	if !p.on {
		b, err := p.Child.Next()
		if b != nil {
			p.class.batches.Inc()
			p.class.rows.Add(int64(b.Rows()))
		}
		return b, err
	}
	t0 := time.Now()
	b, err := p.Child.Next()
	atomic.AddInt64(&p.stats.Nanos, int64(time.Since(t0)))
	if b != nil {
		atomic.AddInt64(&p.stats.Batches, 1)
		atomic.AddInt64(&p.stats.Rows, int64(b.Rows()))
		p.class.batches.Inc()
		p.class.rows.Add(int64(b.Rows()))
	}
	return b, err
}

// Close implements Operator.
func (p *Profiled) Close() { p.Child.Close() }

// Stats returns a snapshot of the counters.
func (p *Profiled) Stats() OpStats {
	st := OpStats{
		Batches: atomic.LoadInt64(&p.stats.Batches),
		Rows:    atomic.LoadInt64(&p.stats.Rows),
		Nanos:   atomic.LoadInt64(&p.stats.Nanos),
	}
	if sk, ok := p.Child.(skipReporter); ok {
		st.SkippedGroups, st.TotalGroups = sk.SkipStats()
	}
	if bs, ok := p.Child.(byteSkipReporter); ok {
		st.SkippedBytes = bs.SkippedByteStats()
	}
	if mr, ok := p.Child.(morselReporter); ok {
		st.Morsels, st.MorselSteals = mr.MorselStats()
	}
	return st
}

// Run drains an operator tree, passing each batch to emit; it handles
// Open/Close and converts cancellation into a clean error.
func Run(ctx *Ctx, root Operator, emit func(*vec.Batch) error) error {
	if err := root.Open(ctx); err != nil {
		root.Close()
		return err
	}
	defer root.Close()
	for {
		b, err := root.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		if emit != nil {
			if err := emit(b); err != nil {
				return err
			}
		}
	}
}

// Collect drains an operator into boxed rows (tests, small results).
func Collect(ctx *Ctx, root Operator) ([][]types.Value, error) {
	var out [][]types.Value
	err := Run(ctx, root, func(b *vec.Batch) error {
		for i := 0; i < b.Rows(); i++ {
			out = append(out, b.GetRow(i))
		}
		return nil
	})
	return out, err
}
