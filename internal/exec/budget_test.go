package exec

import (
	"context"
	"errors"
	"sync"
	"testing"

	"vectorwise/internal/pdt"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

func seqOperator(n int) Operator {
	kinds := []types.Kind{types.KindInt64}
	var batches []*vec.Batch
	for at := 0; at < n; at += 64 {
		k := n - at
		if k > 64 {
			k = 64
		}
		b := vec.NewBatch(kinds, k)
		b.SetLen(k)
		for i := 0; i < k; i++ {
			b.Vecs[0].Set(i, types.NewInt64(int64(at+i)))
		}
		batches = append(batches, b)
	}
	return NewBatchSupplier(kinds, batches)
}

func TestMemBudgetStopsSort(t *testing.T) {
	ctx := NewCtx(context.Background())
	ctx.Budget = NewMemBudget(256) // far less than 10k rows × 8 bytes
	s := NewSort(seqOperator(10000), []SortKey{{Col: 0, Desc: true}})
	_, err := Collect(ctx, s)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if ctx.Budget.Used() <= 0 {
		t.Fatal("no bytes charged")
	}
}

func TestMemBudgetStopsJoinBuild(t *testing.T) {
	ctx := NewCtx(context.Background())
	ctx.Budget = NewMemBudget(256)
	j := NewHashJoin(seqOperator(10), seqOperator(10000), []int{0}, []int{0}, Inner)
	if _, err := Collect(ctx, j); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestMemBudgetStopsAggGroups(t *testing.T) {
	ctx := NewCtx(context.Background())
	ctx.Budget = NewMemBudget(256) // 10k distinct groups cannot fit
	a, err := NewHashAgg(seqOperator(10000), []int{0}, []AggSpec{{Fn: AggCount, Col: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(ctx, a); !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestMemBudgetUnlimitedAndNil(t *testing.T) {
	for _, budget := range []*MemBudget{nil, NewMemBudget(0)} {
		ctx := NewCtx(context.Background())
		ctx.Budget = budget
		rows, err := Collect(ctx, NewSort(seqOperator(5000), []SortKey{{Col: 0}}))
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 5000 {
			t.Fatalf("rows = %d", len(rows))
		}
	}
}

// The budget is shared across a query's parallel workers: concurrent charges
// against one MemBudget must account every byte (run under -race).
func TestMemBudgetConcurrentCharges(t *testing.T) {
	m := NewMemBudget(1 << 40)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if err := m.Charge(3); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if m.Used() != 8*1000*3 {
		t.Fatalf("used = %d", m.Used())
	}
}

var _ pdt.BatchSource = (*seqBatchSource)(nil)
