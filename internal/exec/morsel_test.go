package exec

import (
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"vectorwise/internal/pdt"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// Every morsel must be claimed exactly once when P workers race the queue
// to exhaustion (run under -race).
func TestMorselQueueConcurrentExhaustion(t *testing.T) {
	const n, workers = 200, 8
	q := NewMorselQueue(n, workers)
	claimed := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				g, _, ok := q.Next(w)
				if !ok {
					return
				}
				claimed[w] = append(claimed[w], g)
			}
		}(w)
	}
	wg.Wait()
	seen := make([]int, n)
	total := 0
	for _, c := range claimed {
		for _, g := range c {
			seen[g]++
			total++
		}
	}
	if total != n {
		t.Fatalf("claimed %d morsels, want %d", total, n)
	}
	for g, c := range seen {
		if c != 1 {
			t.Fatalf("morsel %d claimed %d times", g, c)
		}
	}
	var counted int64
	for _, c := range q.Counts() {
		counted += c
	}
	if counted != n {
		t.Fatalf("Counts() sums to %d, want %d", counted, n)
	}
}

// One giant row group among many tiny ones: with work stealing, the worker
// stuck on the giant morsel claims few while its siblings steal its deque,
// so no worker ends up with more than 2× the median morsel count.
func TestMorselQueueSkewBalances(t *testing.T) {
	const n, workers = 33, 4
	cost := func(g int) time.Duration {
		if g == 0 {
			return 30 * time.Millisecond // the giant group, owned by worker 0
		}
		return time.Millisecond
	}
	q := NewMorselQueue(n, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				g, _, ok := q.Next(w)
				if !ok {
					return
				}
				time.Sleep(cost(g))
			}
		}(w)
	}
	wg.Wait()
	counts := q.Counts()
	sorted := append([]int64{}, counts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	median := float64(sorted[workers/2-1]+sorted[workers/2]) / 2
	for w, c := range counts {
		if float64(c) > 2*median {
			t.Fatalf("worker %d claimed %d morsels, > 2× median %.1f (counts=%v)",
				w, c, median, counts)
		}
	}
	if q.Steals() == 0 {
		t.Fatalf("skewed queue saw no steals (counts=%v)", counts)
	}
}

// fakeScanner serves synthetic row groups: group g holds sizes[g] rows with
// values g*1000+i on one BIGINT column.
type fakeScanner struct {
	sizes []int
	g     int
	done  bool
}

func (f *fakeScanner) Kinds() []types.Kind { return []types.Kind{types.KindInt64} }

func (f *fakeScanner) SeekGroup(g int) { f.g = g; f.done = false }

func (f *fakeScanner) Next(b *vec.Batch) (int64, int, bool, error) {
	if f.done {
		return 0, 0, true, nil
	}
	n := f.sizes[f.g]
	b.Reset()
	b.SetLen(n)
	for i := 0; i < n; i++ {
		b.Vecs[0].Set(i, types.NewInt64(int64(f.g*1000+i)))
	}
	f.done = true
	return 0, n, false, nil
}

type fakeMorselSource struct{ sizes []int }

func (s *fakeMorselSource) NumMorsels() int { return len(s.sizes) }

func (s *fakeMorselSource) Worker() (MorselScanner, error) {
	return &fakeScanner{sizes: s.sizes}, nil
}

func (s *fakeMorselSource) Serial() (pdt.BatchSource, error) { return nil, nil }

// morselWorkers builds P MorselScan workers sharing one queue over src.
func morselWorkers(workers int, mk func(int) (MorselSource, error)) []*MorselScan {
	key := new(int)
	out := make([]*MorselScan, workers)
	for w := 0; w < workers; w++ {
		out[w] = NewMorselScan([]types.Kind{types.KindInt64}, key, w, workers,
			"ParallelScan", mk)
	}
	return out
}

func TestMorselScanWorkersShareQueue(t *testing.T) {
	sizes := []int{5, 1, 64, 2, 9, 3, 3, 17, 1, 40, 8, 6}
	want := 0
	for _, s := range sizes {
		want += s
	}
	const workers = 4
	src := &fakeMorselSource{sizes: sizes}
	scans := morselWorkers(workers, func(int) (MorselSource, error) { return src, nil })
	ops := make([]Operator, workers)
	for i, s := range scans {
		ops[i] = s
	}
	rows := collect(t, NewXchgUnion(ops...))
	if len(rows) != want {
		t.Fatalf("parallel scan yielded %d rows, want %d", len(rows), want)
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		seen[r[0].Int64()] = true
	}
	for g, sz := range sizes {
		for i := 0; i < sz; i++ {
			if !seen[int64(g*1000+i)] {
				t.Fatalf("row %d of group %d missing", i, g)
			}
		}
	}
	var morsels int64
	for _, s := range scans {
		m, _ := s.MorselStats()
		morsels += m
	}
	if morsels != int64(len(sizes)) {
		t.Fatalf("workers claimed %d morsels total, want %d", morsels, len(sizes))
	}
}

// seqBatchSource is a serial pdt.BatchSource of n rows (0..n-1).
type seqBatchSource struct {
	n, at int
}

func (s *seqBatchSource) Kinds() []types.Kind { return []types.Kind{types.KindInt64} }

func (s *seqBatchSource) Next(b *vec.Batch) (int64, int, bool, error) {
	if s.at >= s.n {
		return 0, 0, true, nil
	}
	k := s.n - s.at
	if k > 64 {
		k = 64
	}
	b.Reset()
	b.SetLen(k)
	for i := 0; i < k; i++ {
		b.Vecs[0].Set(i, types.NewInt64(int64(s.at+i)))
	}
	s.at += k
	return int64(s.at - k), k, false, nil
}

// A source that degrades to a serial stream at run time must be claimed by
// exactly one worker; the others come up empty but the union stays exact.
func TestMorselScanSerialFallbackSingleClaim(t *testing.T) {
	const rows, workers = 100, 4
	scans := morselWorkers(workers, func(int) (MorselSource, error) {
		return SerialMorselSource(&seqBatchSource{n: rows}), nil
	})
	ops := make([]Operator, workers)
	for i, s := range scans {
		ops[i] = s
	}
	got := collect(t, NewXchgUnion(ops...))
	if len(got) != rows {
		t.Fatalf("serial fallback yielded %d rows, want %d", len(got), rows)
	}
	claimers := 0
	for _, s := range scans {
		if m, _ := s.MorselStats(); m > 0 {
			claimers++
		}
	}
	if claimers != 1 {
		t.Fatalf("%d workers claimed the serial stream, want exactly 1", claimers)
	}
}

// sortedBatches builds one pre-sorted two-column (key, src) child stream.
func sortedBatches(t *testing.T, src int64, keys ...int64) Operator {
	t.Helper()
	kinds := []types.Kind{types.KindInt64, types.KindInt64}
	b := vec.NewBatch(kinds, len(keys)+1)
	b.SetLen(len(keys))
	for i, k := range keys {
		b.Vecs[0].Set(i, types.NewInt64(k))
		b.Vecs[1].Set(i, types.NewInt64(src))
	}
	return NewBatchSupplier(kinds, []*vec.Batch{b})
}

// XchgMerge keeps the union of pre-sorted children globally sorted, and
// duplicate keys come out in child-index order (deterministic ties).
func TestXchgMergeOrderingAndDuplicates(t *testing.T) {
	m := NewXchgMerge([]SortKey{{Col: 0}},
		sortedBatches(t, 0, 1, 2, 2, 5, 9),
		sortedBatches(t, 1, 2, 2, 3, 9),
		sortedBatches(t, 2, 0, 2, 7),
	)
	rows := collect(t, m)
	wantKeys := []int64{0, 1, 2, 2, 2, 2, 2, 3, 5, 7, 9, 9}
	wantSrc := []int64{2, 0, 0, 0, 1, 1, 2, 1, 0, 2, 0, 1}
	if len(rows) != len(wantKeys) {
		t.Fatalf("merge yielded %d rows, want %d: %v", len(rows), len(wantKeys), rows)
	}
	for i, r := range rows {
		if r[0].Int64() != wantKeys[i] || r[1].Int64() != wantSrc[i] {
			t.Fatalf("row %d = (%d, %d), want (%d, %d)",
				i, r[0].Int64(), r[1].Int64(), wantKeys[i], wantSrc[i])
		}
	}
}

// Descending keys merge in descending order.
func TestXchgMergeDescending(t *testing.T) {
	m := NewXchgMerge([]SortKey{{Col: 0, Desc: true}},
		sortedBatches(t, 0, 9, 5, 1),
		sortedBatches(t, 1, 8, 5, 2),
	)
	rows := collect(t, m)
	want := []int64{9, 8, 5, 5, 2, 1}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i, r := range rows {
		if r[0].Int64() != want[i] {
			t.Fatalf("row %d key = %d, want %d", i, r[0].Int64(), want[i])
		}
	}
}

// endless produces batches forever — the pipeline below a LIMIT that quits
// early, exercising exchange teardown.
type endless struct {
	ctx *Ctx
	buf *vec.Batch
}

func (e *endless) Kinds() []types.Kind { return []types.Kind{types.KindInt64} }

func (e *endless) Open(ctx *Ctx) error {
	e.ctx = ctx
	n := ctx.vecSize()
	e.buf = vec.NewBatch(e.Kinds(), n)
	e.buf.SetLen(n)
	for i := 0; i < n; i++ {
		e.buf.Vecs[0].Set(i, types.NewInt64(int64(i)))
	}
	return nil
}

func (e *endless) Next() (*vec.Batch, error) {
	if err := e.ctx.poll(); err != nil {
		return nil, err
	}
	return e.buf, nil
}

func (e *endless) Close() {}

// Early consumer Close (LIMIT above an exchange) must not leak producer
// goroutines: XchgUnion.Close waits for every producer to exit.
func TestXchgUnionEarlyCloseNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		limit := NewLimit(NewXchgUnion(&endless{}, &endless{}, &endless{}), 0, 10)
		rows := collect(t, limit)
		if len(rows) != 10 {
			t.Fatalf("limit rows = %d, want 10", len(rows))
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Fatalf("goroutines leaked: %d running, baseline %d", g, base)
	}
}

// The same teardown guarantee holds for the order-preserving merge.
func TestXchgMergeEarlyCloseNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for round := 0; round < 5; round++ {
		limit := NewLimit(NewXchgMerge([]SortKey{{Col: 0}}, &endless{}, &endless{}), 0, 7)
		rows := collect(t, limit)
		if len(rows) != 7 {
			t.Fatalf("limit rows = %d, want 7", len(rows))
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Fatalf("goroutines leaked: %d running, baseline %d", g, base)
	}
}
