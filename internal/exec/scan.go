package exec

import (
	"vectorwise/internal/pdt"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// ColScan adapts a positional batch source (a colstore scanner, possibly
// wrapped in PDT mergers by the txn layer) into an operator, polling for
// cancellation between vectors.
type ColScan struct {
	// SourceFn defers source construction to Open so the vector size and
	// snapshot are taken at execution time.
	SourceFn func(vecSize int) (pdt.BatchSource, error)
	kinds    []types.Kind

	ctx *Ctx
	src pdt.BatchSource
	buf *vec.Batch
}

// NewColScan builds a scan over a deferred source with the given output
// kinds.
func NewColScan(kinds []types.Kind, sourceFn func(vecSize int) (pdt.BatchSource, error)) *ColScan {
	return &ColScan{SourceFn: sourceFn, kinds: kinds}
}

// Kinds implements Operator.
func (s *ColScan) Kinds() []types.Kind { return s.kinds }

// Open implements Operator.
func (s *ColScan) Open(ctx *Ctx) error {
	s.ctx = ctx
	src, err := s.SourceFn(ctx.vecSize())
	if err != nil {
		return err
	}
	s.src = src
	s.buf = vec.NewBatch(s.kinds, ctx.vecSize())
	return nil
}

// Next implements Operator.
func (s *ColScan) Next() (*vec.Batch, error) {
	if err := s.ctx.poll(); err != nil {
		return nil, err
	}
	_, _, done, err := s.src.Next(s.buf)
	if err != nil {
		return nil, err
	}
	if done {
		return nil, nil
	}
	return s.buf, nil
}

// Close implements Operator.
func (s *ColScan) Close() {}

// SkipStats reports (skipped, total) row groups when the underlying source
// does min/max block skipping; zeros otherwise (e.g. the PDT-merge path).
// Read after the query drains — the profiling shell calls it from Stats.
func (s *ColScan) SkipStats() (int64, int64) {
	if gs, ok := s.src.(GroupSkipping); ok {
		return int64(gs.SkippedGroups()), int64(gs.TotalGroups())
	}
	return 0, 0
}

// SkippedByteStats reports the encoded bytes of the skipped groups when the
// source tracks them.
func (s *ColScan) SkippedByteStats() int64 {
	if bs, ok := s.src.(ByteSkipping); ok {
		return bs.SkippedBytes()
	}
	return 0
}

// Values is a literal-rows operator (VALUES lists, tests).
type Values struct {
	Schema *types.Schema
	Rows   [][]types.Value

	ctx *Ctx
	at  int
	buf *vec.Batch
}

// NewValues builds a Values operator.
func NewValues(schema *types.Schema, rows [][]types.Value) *Values {
	return &Values{Schema: schema, Rows: rows}
}

// Kinds implements Operator.
func (v *Values) Kinds() []types.Kind {
	out := make([]types.Kind, v.Schema.Len())
	for i, c := range v.Schema.Cols {
		out[i] = c.Type.Kind
	}
	return out
}

// Open implements Operator.
func (v *Values) Open(ctx *Ctx) error {
	v.ctx = ctx
	v.at = 0
	v.buf = vec.NewBatch(v.Kinds(), ctx.vecSize())
	return nil
}

// Next implements Operator.
func (v *Values) Next() (*vec.Batch, error) {
	if err := v.ctx.poll(); err != nil {
		return nil, err
	}
	if v.at >= len(v.Rows) {
		return nil, nil
	}
	n := v.ctx.vecSize()
	if rem := len(v.Rows) - v.at; n > rem {
		n = rem
	}
	v.buf.Reset()
	v.buf.SetLen(n)
	for i := 0; i < n; i++ {
		for c, val := range v.Rows[v.at+i] {
			v.buf.Vecs[c].Set(i, val)
		}
	}
	v.at += n
	return v.buf, nil
}

// Close implements Operator.
func (v *Values) Close() {}

// BatchSupplier replays pre-built batches; the exchange operators and tests
// use it.
type BatchSupplier struct {
	kinds   []types.Kind
	Batches []*vec.Batch
	at      int
	ctx     *Ctx
}

// NewBatchSupplier builds a supplier.
func NewBatchSupplier(kinds []types.Kind, batches []*vec.Batch) *BatchSupplier {
	return &BatchSupplier{kinds: kinds, Batches: batches}
}

// Kinds implements Operator.
func (s *BatchSupplier) Kinds() []types.Kind { return s.kinds }

// Open implements Operator.
func (s *BatchSupplier) Open(ctx *Ctx) error { s.ctx = ctx; s.at = 0; return nil }

// Next implements Operator.
func (s *BatchSupplier) Next() (*vec.Batch, error) {
	if err := s.ctx.poll(); err != nil {
		return nil, err
	}
	if s.at >= len(s.Batches) {
		return nil, nil
	}
	b := s.Batches[s.at]
	s.at++
	return b, nil
}

// Close implements Operator.
func (s *BatchSupplier) Close() {}
