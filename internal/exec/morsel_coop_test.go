package exec

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeCoopStream deals groups from a fixed (arbitrary) order, shared by all
// workers; each group goes out exactly once.
type fakeCoopStream struct {
	mu     sync.Mutex
	order  []int
	at     int
	closed atomic.Int32
}

func (s *fakeCoopStream) Next(ctx context.Context) (int, []byte, bool, error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.at >= len(s.order) {
		return 0, nil, false, nil
	}
	g := s.order[s.at]
	s.at++
	return g, nil, true, nil
}

func (s *fakeCoopStream) Close() { s.closed.Add(1) }

// fakeCoopSource is a fakeMorselSource whose groups arrive cooperatively.
type fakeCoopSource struct {
	fakeMorselSource
	stream *fakeCoopStream
}

func (s *fakeCoopSource) Coop() CoopStream {
	if s.stream == nil {
		return nil // typed-nil would read as a non-nil interface
	}
	return s.stream
}

// Workers fed by a cooperative stream must between them consume every group
// exactly once — in the stream's order, not the queue's — and detach the
// stream exactly once at Close however many workers share it.
func TestMorselScanCooperativeStream(t *testing.T) {
	sizes := []int{5, 1, 64, 2, 9, 3, 3, 17, 1, 40, 8, 6}
	want := 0
	for _, s := range sizes {
		want += s
	}
	// Reverse delivery order: cooperative order is whatever the ABM picks.
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = len(sizes) - 1 - i
	}
	stream := &fakeCoopStream{order: order}
	src := &fakeCoopSource{fakeMorselSource{sizes: sizes}, stream}
	const workers = 4
	scans := morselWorkers(workers, func(int) (MorselSource, error) { return src, nil })
	ops := make([]Operator, workers)
	for i, s := range scans {
		ops[i] = s
	}
	rows := collect(t, NewXchgUnion(ops...))
	if len(rows) != want {
		t.Fatalf("cooperative scan yielded %d rows, want %d", len(rows), want)
	}
	seen := map[int64]bool{}
	for _, r := range rows {
		if seen[r[0].Int64()] {
			t.Fatalf("row %d delivered twice", r[0].Int64())
		}
		seen[r[0].Int64()] = true
	}
	var morsels int64
	for _, s := range scans {
		m, _ := s.MorselStats()
		morsels += m
	}
	if morsels != int64(len(sizes)) {
		t.Fatalf("workers claimed %d morsels total, want %d", morsels, len(sizes))
	}
	if c := stream.closed.Load(); c != 1 {
		t.Fatalf("stream closed %d times, want exactly 1", c)
	}
}

// A source whose Coop() returns nil (alone this time) must fall back to the
// normal morsel queue.
func TestMorselScanCoopNilFallsBackToQueue(t *testing.T) {
	sizes := []int{4, 4, 4, 4}
	src := &fakeCoopSource{fakeMorselSource{sizes: sizes}, nil}
	scans := morselWorkers(2, func(int) (MorselSource, error) { return src, nil })
	rows := collect(t, NewXchgUnion(scans[0], scans[1]))
	if len(rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(rows))
	}
}
