package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"vectorwise/internal/expr"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// mkValues builds a Values operator from a schema description and rows.
func mkValues(schema *types.Schema, rows ...[]types.Value) *Values {
	return NewValues(schema, rows)
}

func intRows(vals ...int64) ([][]types.Value, *types.Schema) {
	rows := make([][]types.Value, len(vals))
	for i, v := range vals {
		rows[i] = []types.Value{types.NewInt64(v)}
	}
	return rows, types.NewSchema(types.Col("x", types.Int64))
}

// seqSource produces n rows of (i, i%mod, float(i)) for pipeline tests.
func seqSource(n int, mod int64) Operator {
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{
			types.NewInt64(int64(i)),
			types.NewInt64(int64(i) % mod),
			types.NewFloat64(float64(i) * 0.5),
		}
	}
	schema := types.NewSchema(
		types.Col("a", types.Int64),
		types.Col("b", types.Int64),
		types.Col("c", types.Float64),
	)
	return NewValues(schema, rows)
}

func collect(t *testing.T, op Operator) [][]types.Value {
	t.Helper()
	rows, err := Collect(NewCtx(context.Background()), op)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestValuesRoundTrip(t *testing.T) {
	rows, schema := intRows(1, 2, 3)
	got := collect(t, mkValues(schema, rows...))
	if len(got) != 3 || got[2][0].Int64() != 3 {
		t.Fatalf("values: %v", got)
	}
}

func TestSelect(t *testing.T) {
	src := seqSource(1000, 10)
	pred := expr.NewCall(">", expr.Col(0, "a", types.Int64), expr.CInt(994))
	got := collect(t, NewSelect(src, pred))
	if len(got) != 5 || got[0][0].Int64() != 995 {
		t.Fatalf("select: %v", got)
	}
}

func TestSelectConjunction(t *testing.T) {
	src := seqSource(1000, 10)
	pred := expr.NewCall("and",
		expr.NewCall("=", expr.Col(1, "b", types.Int64), expr.CInt(3)),
		expr.NewCall("<", expr.Col(0, "a", types.Int64), expr.CInt(100)))
	got := collect(t, NewSelect(src, pred))
	if len(got) != 10 {
		t.Fatalf("conjunction rows: %d", len(got))
	}
	for _, r := range got {
		if r[0].Int64()%10 != 3 || r[0].Int64() >= 100 {
			t.Fatalf("bad row %v", r)
		}
	}
}

func TestProject(t *testing.T) {
	src := seqSource(100, 7)
	exprs := []expr.Expr{
		expr.NewCall("+", expr.Col(0, "a", types.Int64), expr.CInt(1000)),
		expr.Col(2, "c", types.Float64),
	}
	got := collect(t, NewProject(src, exprs))
	if len(got) != 100 || got[5][0].Int64() != 1005 || got[5][1].Float64() != 2.5 {
		t.Fatalf("project: %v", got[5])
	}
}

func TestProjectAfterSelect(t *testing.T) {
	src := seqSource(100, 7)
	sel := NewSelect(src, expr.NewCall("<", expr.Col(0, "a", types.Int64), expr.CInt(3)))
	proj := NewProject(sel, []expr.Expr{
		expr.NewCall("*", expr.Col(0, "a", types.Int64), expr.CInt(2)),
	})
	got := collect(t, proj)
	if len(got) != 3 || got[2][0].Int64() != 4 {
		t.Fatalf("project after select: %v", got)
	}
}

func TestLimitOffset(t *testing.T) {
	rows, schema := intRows(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	got := collect(t, NewLimit(mkValues(schema, rows...), 3, 4))
	if len(got) != 4 || got[0][0].Int64() != 3 || got[3][0].Int64() != 6 {
		t.Fatalf("limit/offset: %v", got)
	}
	// Limit crossing batch boundaries.
	src := seqSource(5000, 3)
	got2 := collect(t, NewLimit(src, 2040, 100))
	if len(got2) != 100 || got2[0][0].Int64() != 2040 {
		t.Fatalf("limit across batches: %d %v", len(got2), got2[0])
	}
}

func TestUnion(t *testing.T) {
	r1, schema := intRows(1, 2)
	r2, _ := intRows(3)
	u, err := NewUnion(mkValues(schema, r1...), mkValues(schema, r2...))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, u)
	if len(got) != 3 || got[2][0].Int64() != 3 {
		t.Fatalf("union: %v", got)
	}
	// Mismatched arity rejected.
	two := types.NewSchema(types.Col("a", types.Int64), types.Col("b", types.Int64))
	if _, err := NewUnion(mkValues(schema, r1...), mkValues(two)); err == nil {
		t.Fatal("union arity accepted")
	}
}

func joinSides() (Operator, Operator) {
	orders := types.NewSchema(types.Col("okey", types.Int64), types.Col("cust", types.Int64))
	customers := types.NewSchema(types.Col("ckey", types.Int64), types.Col("name", types.String))
	ordRows := [][]types.Value{
		{types.NewInt64(1), types.NewInt64(10)},
		{types.NewInt64(2), types.NewInt64(20)},
		{types.NewInt64(3), types.NewInt64(10)},
		{types.NewInt64(4), types.NewInt64(99)}, // no customer
	}
	custRows := [][]types.Value{
		{types.NewInt64(10), types.NewString("alice")},
		{types.NewInt64(20), types.NewString("bob")},
		{types.NewInt64(30), types.NewString("carol")}, // no orders
	}
	return NewValues(orders, ordRows), NewValues(customers, custRows)
}

func TestHashJoinInner(t *testing.T) {
	probe, build := joinSides()
	j := NewHashJoin(probe, build, []int{1}, []int{0}, Inner)
	got := collect(t, j)
	if len(got) != 3 {
		t.Fatalf("inner join rows: %v", got)
	}
	names := map[int64]string{}
	for _, r := range got {
		names[r[0].Int64()] = r[3].Str
	}
	if names[1] != "alice" || names[2] != "bob" || names[3] != "alice" {
		t.Fatalf("inner join content: %v", names)
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	probe, build := joinSides()
	j := NewHashJoin(probe, build, []int{1}, []int{0}, LeftOuter)
	got := collect(t, j)
	if len(got) != 4 {
		t.Fatalf("left outer rows: %v", got)
	}
	for _, r := range got {
		matched := r[4].Bool()
		if r[0].Int64() == 4 {
			if matched || r[3].Str != "" {
				t.Fatalf("non-match row wrong: %v", r)
			}
		} else if !matched {
			t.Fatalf("match row flagged unmatched: %v", r)
		}
	}
}

func TestHashJoinSemiAnti(t *testing.T) {
	probe, build := joinSides()
	semi := collect(t, NewHashJoin(probe, build, []int{1}, []int{0}, Semi))
	if len(semi) != 3 {
		t.Fatalf("semi: %v", semi)
	}
	probe2, build2 := joinSides()
	anti := collect(t, NewHashJoin(probe2, build2, []int{1}, []int{0}, Anti))
	if len(anti) != 1 || anti[0][0].Int64() != 4 {
		t.Fatalf("anti: %v", anti)
	}
}

// NOT IN with NULLs: a NULL in the build side means *no* probe row
// qualifies; NULL probe keys never qualify (claim C10).
func TestHashJoinAntiNullAware(t *testing.T) {
	mk := func(vals []int64, nulls []bool) Operator {
		schema := types.NewSchema(types.Col("v", types.Int64), types.Col("v_null", types.Bool))
		rows := make([][]types.Value, len(vals))
		for i := range vals {
			rows[i] = []types.Value{types.NewInt64(vals[i]), types.NewBool(nulls[i])}
		}
		return NewValues(schema, rows)
	}
	// Case 1: build has a NULL → empty result.
	probe := mk([]int64{1, 2, 3}, []bool{false, false, false})
	build := mk([]int64{1, 0}, []bool{false, true})
	j := NewHashJoin(probe, build, []int{0}, []int{0}, AntiNullAware)
	j.LeftKeyNull, j.RightKeyNull = 1, 1
	if got := collect(t, j); len(got) != 0 {
		t.Fatalf("build NULL should empty NOT IN: %v", got)
	}
	// Case 2: no build NULLs → plain anti join minus NULL probe keys.
	probe = mk([]int64{1, 2, 0}, []bool{false, false, true})
	build = mk([]int64{1}, []bool{false})
	j = NewHashJoin(probe, build, []int{0}, []int{0}, AntiNullAware)
	j.LeftKeyNull, j.RightKeyNull = 1, 1
	got := collect(t, j)
	if len(got) != 1 || got[0][0].Int64() != 2 {
		t.Fatalf("null-aware anti: %v", got)
	}
	// Contrast: plain Anti would return the NULL probe row too.
	probe = mk([]int64{1, 2, 0}, []bool{false, false, true})
	build = mk([]int64{1}, []bool{false})
	plain := collect(t, NewHashJoin(probe, build, []int{0}, []int{0}, Anti))
	if len(plain) != 2 {
		t.Fatalf("plain anti: %v", plain)
	}
}

func TestHashJoinMultiKeyAndEmptyBuild(t *testing.T) {
	schema := types.NewSchema(types.Col("a", types.Int64), types.Col("b", types.String))
	rows := [][]types.Value{
		{types.NewInt64(1), types.NewString("x")},
		{types.NewInt64(1), types.NewString("y")},
		{types.NewInt64(2), types.NewString("x")},
	}
	probe := NewValues(schema, rows)
	build := NewValues(schema, rows[:2])
	j := NewHashJoin(probe, build, []int{0, 1}, []int{0, 1}, Inner)
	got := collect(t, j)
	if len(got) != 2 {
		t.Fatalf("multi-key join: %v", got)
	}
	// Empty build side.
	probe2 := NewValues(schema, rows)
	empty := NewValues(schema, nil)
	inner := collect(t, NewHashJoin(probe2, empty, []int{0}, []int{0}, Inner))
	if len(inner) != 0 {
		t.Fatal("empty build inner join must be empty")
	}
	probe3 := NewValues(schema, rows)
	empty2 := NewValues(schema, nil)
	anti := collect(t, NewHashJoin(probe3, empty2, []int{0}, []int{0}, Anti))
	if len(anti) != 3 {
		t.Fatal("anti join against empty build keeps all rows")
	}
}

func TestHashJoinDuplicateBuildKeys(t *testing.T) {
	schema := types.NewSchema(types.Col("k", types.Int64))
	probe := NewValues(schema, [][]types.Value{{types.NewInt64(7)}})
	build := NewValues(schema, [][]types.Value{{types.NewInt64(7)}, {types.NewInt64(7)}})
	got := collect(t, NewHashJoin(probe, build, []int{0}, []int{0}, Inner))
	if len(got) != 2 {
		t.Fatalf("duplicate build keys: %v", got)
	}
}

func TestHashAggGrouped(t *testing.T) {
	src := seqSource(1000, 4) // groups 0..3, 250 rows each
	agg, err := NewHashAgg(src, []int{1}, []AggSpec{
		{Fn: AggCount, Col: -1},
		{Fn: AggSum, Col: 0},
		{Fn: AggMin, Col: 0},
		{Fn: AggMax, Col: 0},
		{Fn: AggAvg, Col: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, agg)
	if len(got) != 4 {
		t.Fatalf("groups: %v", len(got))
	}
	sort.Slice(got, func(i, j int) bool { return got[i][0].Int64() < got[j][0].Int64() })
	for g := int64(0); g < 4; g++ {
		r := got[g]
		if r[1].Int64() != 250 {
			t.Fatalf("count g%d: %v", g, r)
		}
		// sum of arithmetic sequence g, g+4, ..., g+996.
		wantSum := 250*g + 4*(249*250/2)
		if r[2].Int64() != wantSum {
			t.Fatalf("sum g%d: %d want %d", g, r[2].Int64(), wantSum)
		}
		if r[3].Int64() != g || r[4].Int64() != g+996 {
			t.Fatalf("min/max g%d: %v", g, r)
		}
		wantAvg := (float64(g) + float64(g+996)) / 2 * 0.5
		if r[5].Float64() != wantAvg {
			t.Fatalf("avg g%d: %v want %v", g, r[5].Float64(), wantAvg)
		}
	}
}

func TestHashAggScalar(t *testing.T) {
	src := seqSource(100, 3)
	agg, _ := NewHashAgg(src, nil, []AggSpec{
		{Fn: AggCount, Col: -1},
		{Fn: AggSum, Col: 0},
	})
	got := collect(t, agg)
	if len(got) != 1 || got[0][0].Int64() != 100 || got[0][1].Int64() != 4950 {
		t.Fatalf("scalar agg: %v", got)
	}
	// Empty input still yields one row.
	empty := NewValues(types.NewSchema(types.Col("x", types.Int64)), nil)
	agg2, _ := NewHashAgg(empty, nil, []AggSpec{{Fn: AggCount, Col: -1}})
	got2 := collect(t, agg2)
	if len(got2) != 1 || got2[0][0].Int64() != 0 {
		t.Fatalf("empty scalar agg: %v", got2)
	}
}

func TestHashAggManyGroups(t *testing.T) {
	src := seqSource(20000, 5000) // forces rehash
	agg, _ := NewHashAgg(src, []int{1}, []AggSpec{{Fn: AggCount, Col: -1}})
	got := collect(t, agg)
	if len(got) != 5000 {
		t.Fatalf("many groups: %d", len(got))
	}
	for _, r := range got {
		if r[1].Int64() != 4 {
			t.Fatalf("group count: %v", r)
		}
	}
}

func TestHashAggStringKeys(t *testing.T) {
	schema := types.NewSchema(types.Col("k", types.String), types.Col("v", types.Int64))
	rows := [][]types.Value{
		{types.NewString("a"), types.NewInt64(1)},
		{types.NewString("b"), types.NewInt64(2)},
		{types.NewString("a"), types.NewInt64(3)},
	}
	agg, _ := NewHashAgg(NewValues(schema, rows), []int{0}, []AggSpec{
		{Fn: AggSum, Col: 1},
		{Fn: AggMax, Col: 0},
	})
	got := collect(t, agg)
	if len(got) != 2 {
		t.Fatalf("string groups: %v", got)
	}
	m := map[string]int64{}
	for _, r := range got {
		m[r[0].Str] = r[1].Int64()
		if r[2].Str != r[0].Str {
			t.Fatalf("max(string key) should echo key: %v", r)
		}
	}
	if m["a"] != 4 || m["b"] != 2 {
		t.Fatalf("string agg sums: %v", m)
	}
}

func TestSortAscDesc(t *testing.T) {
	rows, schema := intRows(3, 1, 4, 1, 5, 9, 2, 6)
	got := collect(t, NewSort(mkValues(schema, rows...), []SortKey{{Col: 0}}))
	want := []int64{1, 1, 2, 3, 4, 5, 6, 9}
	for i := range want {
		if got[i][0].Int64() != want[i] {
			t.Fatalf("sort asc: %v", got)
		}
	}
	rows2, _ := intRows(3, 1, 4)
	got2 := collect(t, NewSort(mkValues(schema, rows2...), []SortKey{{Col: 0, Desc: true}}))
	if got2[0][0].Int64() != 4 || got2[2][0].Int64() != 1 {
		t.Fatalf("sort desc: %v", got2)
	}
}

func TestSortMultiKeyStable(t *testing.T) {
	schema := types.NewSchema(types.Col("k", types.Int64), types.Col("s", types.String))
	rows := [][]types.Value{
		{types.NewInt64(2), types.NewString("b")},
		{types.NewInt64(1), types.NewString("z")},
		{types.NewInt64(2), types.NewString("a")},
		{types.NewInt64(1), types.NewString("y")},
	}
	got := collect(t, NewSort(NewValues(schema, rows), []SortKey{{Col: 0}, {Col: 1, Desc: true}}))
	if got[0][1].Str != "z" || got[1][1].Str != "y" || got[2][1].Str != "b" || got[3][1].Str != "a" {
		t.Fatalf("multi-key sort: %v", got)
	}
}

func TestTopN(t *testing.T) {
	src := seqSource(10000, 7)
	top := NewTopN(src, []SortKey{{Col: 0, Desc: true}}, 5)
	got := collect(t, top)
	if len(got) != 5 {
		t.Fatalf("topn len: %v", got)
	}
	for i, want := range []int64{9999, 9998, 9997, 9996, 9995} {
		if got[i][0].Int64() != want {
			t.Fatalf("topn: %v", got)
		}
	}
	// TopN larger than input = full sort.
	rows, schema := intRows(3, 1, 2)
	got2 := collect(t, NewTopN(mkValues(schema, rows...), []SortKey{{Col: 0}}, 10))
	if len(got2) != 3 || got2[0][0].Int64() != 1 {
		t.Fatalf("topn small input: %v", got2)
	}
}

func TestTopNMatchesSortLimit(t *testing.T) {
	src1 := seqSource(5000, 13)
	src2 := seqSource(5000, 13)
	keys := []SortKey{{Col: 1}, {Col: 0, Desc: true}}
	topGot := collect(t, NewTopN(src1, keys, 50))
	sortGot := collect(t, NewLimit(NewSort(src2, keys), 0, 50))
	if len(topGot) != len(sortGot) {
		t.Fatalf("lengths differ: %d vs %d", len(topGot), len(sortGot))
	}
	for i := range topGot {
		if topGot[i][0].Int64() != sortGot[i][0].Int64() {
			t.Fatalf("row %d differs: %v vs %v", i, topGot[i], sortGot[i])
		}
	}
}

func TestXchgUnionParallel(t *testing.T) {
	var children []Operator
	for i := 0; i < 4; i++ {
		rows := make([][]types.Value, 100)
		for j := range rows {
			rows[j] = []types.Value{types.NewInt64(int64(i*100 + j))}
		}
		children = append(children, NewValues(types.NewSchema(types.Col("x", types.Int64)), rows))
	}
	got := collect(t, NewXchgUnion(children...))
	if len(got) != 400 {
		t.Fatalf("xchg union rows: %d", len(got))
	}
	seen := map[int64]bool{}
	for _, r := range got {
		seen[r[0].Int64()] = true
	}
	if len(seen) != 400 {
		t.Fatalf("xchg union distinct: %d", len(seen))
	}
}

func TestXchgUnionAggregate(t *testing.T) {
	// Parallel partial aggregation + final aggregation: the E6 plan shape.
	var partials []Operator
	for i := 0; i < 4; i++ {
		src := seqSource(1000, 4)
		part, _ := NewHashAgg(src, []int{1}, []AggSpec{{Fn: AggCount, Col: -1}, {Fn: AggSum, Col: 0}})
		partials = append(partials, part)
	}
	final, _ := NewHashAgg(NewXchgUnion(partials...), []int{0}, []AggSpec{
		{Fn: AggSum, Col: 1}, {Fn: AggSum, Col: 2},
	})
	got := collect(t, final)
	if len(got) != 4 {
		t.Fatalf("final groups: %v", got)
	}
	for _, r := range got {
		if r[1].Int64() != 1000 { // 4 partials x 250
			t.Fatalf("final count: %v", r)
		}
	}
}

func TestXchgHashSplit(t *testing.T) {
	src := seqSource(1000, 10)
	parts := NewXchgHashSplit(src, []int{1}, 3)
	results := make(chan map[int64]int64, len(parts))
	errs := make(chan error, len(parts))
	for _, p := range parts {
		go func(p Operator) {
			counts := map[int64]int64{}
			err := Run(NewCtx(context.Background()), p, func(b *vec.Batch) error {
				for i := 0; i < b.Rows(); i++ {
					counts[b.GetRow(i)[1].Int64()]++
				}
				return nil
			})
			errs <- err
			results <- counts
		}(p)
	}
	merged := map[int64]int64{}
	keyPart := map[int64]int{}
	for pi := 0; pi < len(parts); pi++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		counts := <-results
		for k, c := range counts {
			merged[k] += c
			keyPart[k]++
		}
	}
	if len(merged) != 10 {
		t.Fatalf("keys: %v", merged)
	}
	for k, c := range merged {
		if c != 100 {
			t.Fatalf("key %d count %d", k, c)
		}
		if keyPart[k] != 1 {
			t.Fatalf("key %d appeared in %d partitions", k, keyPart[k])
		}
	}
}

func TestCancellationStopsPipeline(t *testing.T) {
	// An infinite source: Values with a huge row count would allocate, so
	// use a custom operator.
	src := &infiniteSource{}
	agg, _ := NewHashAgg(src, nil, []AggSpec{{Fn: AggSum, Col: 0}})
	ctx, cancel := context.WithCancel(context.Background())
	ectx := NewCtx(ctx)
	done := make(chan error, 1)
	go func() {
		_, err := Collect(ectx, agg)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("expected cancellation, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation did not stop the query")
	}
}

func TestCancellationStopsParallelPlan(t *testing.T) {
	var children []Operator
	for i := 0; i < 4; i++ {
		children = append(children, &infiniteSource{})
	}
	x := NewXchgUnion(children...)
	ctx, cancel := context.WithCancel(context.Background())
	ectx := NewCtx(ctx)
	done := make(chan error, 1)
	go func() {
		err := Run(ectx, x, func(*vec.Batch) error { return nil })
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parallel cancellation hung")
	}
}

// infiniteSource yields batches forever (until cancelled).
type infiniteSource struct {
	ctx *Ctx
	buf *vec.Batch
}

func (s *infiniteSource) Kinds() []types.Kind { return []types.Kind{types.KindInt64} }

func (s *infiniteSource) Open(ctx *Ctx) error {
	s.ctx = ctx
	s.buf = vec.NewBatch(s.Kinds(), ctx.vecSize())
	s.buf.SetLen(ctx.vecSize())
	return nil
}

func (s *infiniteSource) Next() (*vec.Batch, error) {
	if err := s.ctx.poll(); err != nil {
		return nil, err
	}
	return s.buf, nil
}

func (s *infiniteSource) Close() {}

func TestProfiledCounters(t *testing.T) {
	src := seqSource(1000, 4)
	p := NewProfiled("values", src)
	ctx := NewCtx(context.Background())
	ctx.Profile = true
	if _, err := Collect(ctx, p); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Rows != 1000 || st.Batches == 0 {
		t.Fatalf("profile stats: %+v", st)
	}
}

func TestErrorPropagation(t *testing.T) {
	// Division by zero inside a projection surfaces as a query error.
	src := seqSource(100, 4)
	proj := NewProject(src, []expr.Expr{
		expr.NewCall("/", expr.CInt(1), expr.Col(1, "b", types.Int64)),
	})
	ctx := NewCtx(context.Background())
	ctx.Mode = expr.Mode{Checked: true}
	_, err := Collect(ctx, proj)
	if err == nil {
		t.Fatal("expected division by zero")
	}
}

func TestVectorSizeSweepCorrectness(t *testing.T) {
	// The same query must give identical answers at any vector size (E2's
	// correctness precondition).
	for _, vs := range []int{1, 7, 64, 1024, 8192} {
		src := seqSource(3000, 11)
		sel := NewSelect(src, expr.NewCall(">", expr.Col(1, "b", types.Int64), expr.CInt(4)))
		agg, _ := NewHashAgg(sel, nil, []AggSpec{{Fn: AggCount, Col: -1}, {Fn: AggSum, Col: 0}})
		ctx := NewCtx(context.Background())
		ctx.VecSize = vs
		rows, err := Collect(ctx, agg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 1 {
			t.Fatal("scalar agg shape")
		}
		if rows[0][0].Int64() != 1635 {
			t.Fatalf("vecsize %d: count=%v", vs, rows[0][0])
		}
	}
}

func TestJoinKindMismatchRejected(t *testing.T) {
	a := NewValues(types.NewSchema(types.Col("x", types.Int64)), nil)
	b := NewValues(types.NewSchema(types.Col("y", types.String)), nil)
	j := NewHashJoin(a, b, []int{0}, []int{0}, Inner)
	err := j.Open(NewCtx(context.Background()))
	if err == nil {
		t.Fatal("kind mismatch accepted")
	}
	j.Close()
	_ = fmt.Sprint(j)
}
