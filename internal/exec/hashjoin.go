package exec

import (
	"fmt"
	"math/bits"
	"sync"

	"vectorwise/internal/primitives"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// JoinType selects the join semantics.
type JoinType uint8

// The join types. AntiNullAware implements SQL NOT IN semantics — the
// paper's "NULL intricacies" bullet (claim C10): a NULL anywhere on the
// build side empties the result, and probe rows with NULL keys never
// qualify. The rewriter decomposes NULLable keys into value+indicator
// columns and selects this type.
const (
	Inner JoinType = iota
	LeftOuter
	Semi
	Anti
	AntiNullAware
)

// String names the join type.
func (t JoinType) String() string {
	switch t {
	case Inner:
		return "inner"
	case LeftOuter:
		return "leftouter"
	case Semi:
		return "semi"
	case Anti:
		return "anti"
	case AntiNullAware:
		return "anti-nullaware"
	default:
		return "join?"
	}
}

// HashJoin joins Left (probe side) against Right (build side) on equality
// of the key columns.
//
// Output schemas:
//   - Inner:      left columns ++ right columns
//   - LeftOuter:  left columns ++ right columns ++ BOOL match indicator
//     (right columns hold safe values on non-matches; the rewriter turns
//     the indicator into the NULL indicators of right columns)
//   - Semi/Anti:  left columns only
type HashJoin struct {
	Left, Right         Operator
	LeftKeys, RightKeys []int
	Type                JoinType
	// Null-indicator columns for AntiNullAware; -1 when keys are
	// non-nullable.
	LeftKeyNull, RightKeyNull int
	// Shared supplies a pre-built (or built-once-on-first-Open) hash table
	// instead of draining Right — the parallel probe case, where P probe
	// workers read one build. Right is nil when Shared is set.
	Shared *SharedBuild

	ctx *Ctx

	// Build state.
	tbl        *hashTable
	buildKinds []types.Kind
	cmps       []func(buildRow int32, probe *vec.Batch, phys int32) bool

	// Probe state.
	probe     *vec.Batch
	hashBuf   []uint64
	probeIdx  []int32 // match pairs pending emission
	buildIdx  []int32
	matchedBf []bool
	emitAt    int
	selBuf    []int32
	out       *vec.Batch
	outSel    vec.Batch
	kinds     []types.Kind
}

// NewHashJoin builds a hash join.
func NewHashJoin(left, right Operator, leftKeys, rightKeys []int, jt JoinType) *HashJoin {
	h := &HashJoin{Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys,
		Type: jt, LeftKeyNull: -1, RightKeyNull: -1}
	h.buildKinds = right.Kinds()
	h.kinds = joinOutKinds(left.Kinds(), h.buildKinds, jt)
	return h
}

// NewHashJoinShared builds a probe-side hash join over a shared build.
func NewHashJoinShared(left Operator, shared *SharedBuild, leftKeys, rightKeys []int, jt JoinType) *HashJoin {
	h := &HashJoin{Left: left, Shared: shared, LeftKeys: leftKeys, RightKeys: rightKeys,
		Type: jt, LeftKeyNull: -1, RightKeyNull: -1}
	h.buildKinds = shared.Source.Kinds()
	h.kinds = joinOutKinds(left.Kinds(), h.buildKinds, jt)
	return h
}

func joinOutKinds(left, right []types.Kind, jt JoinType) []types.Kind {
	switch jt {
	case Inner:
		return append(append([]types.Kind{}, left...), right...)
	case LeftOuter:
		out := append(append([]types.Kind{}, left...), right...)
		return append(out, types.KindBool)
	default:
		return append([]types.Kind{}, left...)
	}
}

// Kinds implements Operator.
func (h *HashJoin) Kinds() []types.Kind { return h.kinds }

// hashTable is a drained build side plus its chained bucket array — the
// read-only structure probe workers share in parallel joins.
type hashTable struct {
	cols       []*vec.Vector // compacted build columns
	rows       int
	heads      []int32
	next       []int32
	mask       uint64
	hasNullKey bool
}

// buildHashTable drains src (already opened) into a chained hash table:
// power-of-two buckets ≥ 2·rows. trackNull records whether any build key's
// null indicator (keyNull) fires — the AntiNullAware (NOT IN) poison bit.
func buildHashTable(ctx *Ctx, src Operator, keys []int, keyNull int, trackNull bool) (*hashTable, error) {
	kinds := src.Kinds()
	t := &hashTable{cols: make([]*vec.Vector, len(kinds))}
	for i, k := range kinds {
		t.cols[i] = vec.New(k, ctx.vecSize())
	}
	for {
		if err := ctx.poll(); err != nil {
			return nil, err
		}
		b, err := src.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if err := ctx.charge(b); err != nil {
			return nil, err
		}
		if trackNull && keyNull >= 0 {
			if primitives.CountTrue(b.Vecs[keyNull].Bool, b.Sel, b.Full()) > 0 {
				t.hasNullKey = true
			}
		}
		for c := range t.cols {
			appendSelected(t.cols[c], b.Vecs[c], b.Sel, b.Full())
		}
	}
	if len(t.cols) > 0 {
		t.rows = t.cols[0].Len()
	}
	nb := 2 * t.rows
	if nb < 16 {
		nb = 16
	}
	shift := bits.Len(uint(nb - 1))
	nBuckets := 1 << shift
	t.mask = uint64(nBuckets - 1)
	t.heads = make([]int32, nBuckets)
	for i := range t.heads {
		t.heads[i] = -1
	}
	t.next = make([]int32, t.rows)
	if t.rows > 0 {
		hv := make([]uint64, t.rows)
		if err := hashKeys(hv, t.cols, keys, nil, t.rows); err != nil {
			return nil, err
		}
		for i := 0; i < t.rows; i++ {
			bkt := hv[i] & t.mask
			t.next[i] = t.heads[bkt]
			t.heads[bkt] = int32(i)
		}
	}
	return t, nil
}

// SharedBuild builds one hash table from Source exactly once — whichever
// probe worker opens first pays the build; the rest block on it and then
// probe the same read-only table (the "shared build" of morsel-driven
// parallel joins).
type SharedBuild struct {
	Source    Operator
	Keys      []int
	KeyNull   int
	TrackNull bool

	once sync.Once
	tbl  *hashTable
	err  error
}

// NewSharedBuild wraps the build-side operator tree.
func NewSharedBuild(source Operator, keys []int, keyNull int, trackNull bool) *SharedBuild {
	return &SharedBuild{Source: source, Keys: keys, KeyNull: keyNull, TrackNull: trackNull}
}

// Table returns the hash table, building it on first call.
func (s *SharedBuild) Table(ctx *Ctx) (*hashTable, error) {
	s.once.Do(func() {
		if err := s.Source.Open(ctx); err != nil {
			s.Source.Close()
			s.err = err
			return
		}
		s.tbl, s.err = buildHashTable(ctx, s.Source, s.Keys, s.KeyNull, s.TrackNull)
		s.Source.Close()
	})
	return s.tbl, s.err
}

// Close releases the build source if no probe ever triggered the build
// (e.g. every probe's Open failed); safe to call any number of times.
func (s *SharedBuild) Close() {
	s.once.Do(func() {
		s.Source.Close()
		s.err = fmt.Errorf("exec: shared build closed before use")
	})
}

// Open implements Operator: drains the build side and assembles the table.
func (h *HashJoin) Open(ctx *Ctx) error {
	h.ctx = ctx
	if len(h.LeftKeys) != len(h.RightKeys) || len(h.LeftKeys) == 0 {
		return fmt.Errorf("exec: hash join needs matching non-empty key lists")
	}
	if err := h.Left.Open(ctx); err != nil {
		return err
	}
	if h.Shared != nil {
		tbl, err := h.Shared.Table(ctx)
		if err != nil {
			return err
		}
		h.tbl = tbl
	} else {
		if err := h.Right.Open(ctx); err != nil {
			return err
		}
		tbl, err := buildHashTable(ctx, h.Right, h.RightKeys, h.RightKeyNull,
			h.Type == AntiNullAware)
		if err != nil {
			return err
		}
		h.tbl = tbl
	}
	rk := h.buildKinds
	// Key comparators.
	lk := h.Left.Kinds()
	h.cmps = make([]func(int32, *vec.Batch, int32) bool, len(h.LeftKeys))
	for i := range h.LeftKeys {
		pc, bc := h.LeftKeys[i], h.RightKeys[i]
		if lk[pc] != rk[bc] {
			return fmt.Errorf("exec: join key %d kinds differ (%v vs %v)", i, lk[pc], rk[bc])
		}
		bv := h.tbl.cols[bc]
		switch lk[pc] {
		case types.KindBool:
			h.cmps[i] = func(br int32, p *vec.Batch, ph int32) bool { return bv.Bool[br] == p.Vecs[pc].Bool[ph] }
		case types.KindInt32, types.KindDate:
			h.cmps[i] = func(br int32, p *vec.Batch, ph int32) bool { return bv.I32[br] == p.Vecs[pc].I32[ph] }
		case types.KindInt64:
			h.cmps[i] = func(br int32, p *vec.Batch, ph int32) bool { return bv.I64[br] == p.Vecs[pc].I64[ph] }
		case types.KindFloat64:
			h.cmps[i] = func(br int32, p *vec.Batch, ph int32) bool { return bv.F64[br] == p.Vecs[pc].F64[ph] }
		case types.KindString:
			h.cmps[i] = func(br int32, p *vec.Batch, ph int32) bool { return bv.Str[br] == p.Vecs[pc].Str[ph] }
		default:
			return fmt.Errorf("exec: join on kind %v", lk[pc])
		}
	}
	h.out = vec.NewBatch(h.kinds, ctx.vecSize())
	return nil
}

// appendSelected appends the selected rows of src to dst.
func appendSelected(dst, src *vec.Vector, sel []int32, n int) {
	if sel == nil {
		dst.AppendVector(src)
		return
	}
	dst.GatherFrom(src, sel)
}

// hashKeys hashes the key columns of cols into dst (dense, parallel to the
// selection).
func hashKeys(dst []uint64, cols []*vec.Vector, keys []int, sel []int32, n int) error {
	for ki, c := range keys {
		v := cols[c]
		first := ki == 0
		switch v.Kind {
		case types.KindBool:
			if first {
				primitives.HashBool(dst, v.Bool, sel, n)
			} else {
				primitives.RehashBool(dst, v.Bool, sel, n)
			}
		case types.KindInt32, types.KindDate:
			if first {
				primitives.HashInt(dst, v.I32, sel, n)
			} else {
				primitives.RehashInt(dst, v.I32, sel, n)
			}
		case types.KindInt64:
			if first {
				primitives.HashInt(dst, v.I64, sel, n)
			} else {
				primitives.RehashInt(dst, v.I64, sel, n)
			}
		case types.KindFloat64:
			if first {
				primitives.HashFloat(dst, v.F64, sel, n)
			} else {
				primitives.RehashFloat(dst, v.F64, sel, n)
			}
		case types.KindString:
			if first {
				primitives.HashString(dst, v.Str, sel, n)
			} else {
				primitives.RehashString(dst, v.Str, sel, n)
			}
		default:
			return fmt.Errorf("exec: cannot hash kind %v", v.Kind)
		}
	}
	return nil
}

// Next implements Operator.
func (h *HashJoin) Next() (*vec.Batch, error) {
	switch h.Type {
	case Inner, LeftOuter:
		return h.nextPairs()
	default:
		return h.nextExistential()
	}
}

// nextPairs emits match pairs (and non-matches for LeftOuter).
func (h *HashJoin) nextPairs() (*vec.Batch, error) {
	for {
		// Flush pending pairs in vector-size chunks.
		if h.emitAt < len(h.probeIdx) {
			n := h.ctx.vecSize()
			if rem := len(h.probeIdx) - h.emitAt; n > rem {
				n = rem
			}
			h.emit(h.probeIdx[h.emitAt:h.emitAt+n], h.buildIdx[h.emitAt:h.emitAt+n])
			h.emitAt += n
			return h.out, nil
		}
		if err := h.ctx.poll(); err != nil {
			return nil, err
		}
		b, err := h.Left.Next()
		if err != nil || b == nil {
			return nil, err
		}
		h.probe = b
		h.probeIdx = h.probeIdx[:0]
		h.buildIdx = h.buildIdx[:0]
		h.emitAt = 0
		rows := b.Rows()
		if rows == 0 {
			continue
		}
		if cap(h.hashBuf) < rows {
			h.hashBuf = make([]uint64, rows)
		}
		hv := h.hashBuf[:rows]
		if err := hashKeys(hv, b.Vecs, h.LeftKeys, b.Sel, b.Full()); err != nil {
			return nil, err
		}
		for k := 0; k < rows; k++ {
			phys := int32(b.RowIndex(k))
			matched := false
			if h.tbl.rows > 0 {
				for br := h.tbl.heads[hv[k]&h.tbl.mask]; br >= 0; br = h.tbl.next[br] {
					if h.keyEq(br, b, phys) {
						h.probeIdx = append(h.probeIdx, phys)
						h.buildIdx = append(h.buildIdx, br)
						matched = true
					}
				}
			}
			if !matched && h.Type == LeftOuter {
				h.probeIdx = append(h.probeIdx, phys)
				h.buildIdx = append(h.buildIdx, -1)
			}
		}
	}
}

func (h *HashJoin) keyEq(buildRow int32, probe *vec.Batch, phys int32) bool {
	for _, cmp := range h.cmps {
		if !cmp(buildRow, probe, phys) {
			return false
		}
	}
	return true
}

// emit assembles an output chunk from match pairs.
func (h *HashJoin) emit(probeIdx, buildIdx []int32) {
	nl := len(h.Left.Kinds())
	n := len(probeIdx)
	for c := 0; c < nl; c++ {
		h.out.Vecs[c].Reset()
		h.out.Vecs[c].GatherFrom(h.probe.Vecs[c], probeIdx)
	}
	for c := range h.tbl.cols {
		ov := h.out.Vecs[nl+c]
		ov.Reset()
		ov.Grow(n)
		ov.SetLen(n)
		gatherWithDefault(ov, h.tbl.cols[c], buildIdx)
	}
	if h.Type == LeftOuter {
		mv := h.out.Vecs[len(h.kinds)-1]
		mv.Grow(n)
		mv.SetLen(n)
		for i, bi := range buildIdx {
			mv.Bool[i] = bi >= 0
		}
	}
	h.out.Sel = nil
	h.out.ForceLen(n)
}

// gatherWithDefault gathers build rows; index -1 produces the safe zero
// value (LeftOuter non-matches — NULL decomposition's in-band value).
func gatherWithDefault(dst, src *vec.Vector, idx []int32) {
	switch dst.Kind {
	case types.KindBool:
		for i, j := range idx {
			if j >= 0 {
				dst.Bool[i] = src.Bool[j]
			} else {
				dst.Bool[i] = false
			}
		}
	case types.KindInt32, types.KindDate:
		for i, j := range idx {
			if j >= 0 {
				dst.I32[i] = src.I32[j]
			} else {
				dst.I32[i] = 0
			}
		}
	case types.KindInt64:
		for i, j := range idx {
			if j >= 0 {
				dst.I64[i] = src.I64[j]
			} else {
				dst.I64[i] = 0
			}
		}
	case types.KindFloat64:
		for i, j := range idx {
			if j >= 0 {
				dst.F64[i] = src.F64[j]
			} else {
				dst.F64[i] = 0
			}
		}
	case types.KindString:
		for i, j := range idx {
			if j >= 0 {
				dst.Str[i] = src.Str[j]
			} else {
				dst.Str[i] = ""
			}
		}
	}
}

// nextExistential handles Semi / Anti / AntiNullAware: probe rows pass or
// fail as a selection vector, no data movement.
func (h *HashJoin) nextExistential() (*vec.Batch, error) {
	for {
		if err := h.ctx.poll(); err != nil {
			return nil, err
		}
		b, err := h.Left.Next()
		if err != nil || b == nil {
			return nil, err
		}
		// NOT IN with a NULL on the build side: nothing qualifies, but we
		// must still drain the probe side cheaply.
		if h.Type == AntiNullAware && h.tbl.hasNullKey {
			continue
		}
		rows := b.Rows()
		if rows == 0 {
			continue
		}
		if cap(h.hashBuf) < rows {
			h.hashBuf = make([]uint64, rows)
		}
		hv := h.hashBuf[:rows]
		if err := hashKeys(hv, b.Vecs, h.LeftKeys, b.Sel, b.Full()); err != nil {
			return nil, err
		}
		h.selBuf = h.selBuf[:0]
		var probeNull []bool
		if h.Type == AntiNullAware && h.LeftKeyNull >= 0 {
			probeNull = b.Vecs[h.LeftKeyNull].Bool
		}
		for k := 0; k < rows; k++ {
			phys := int32(b.RowIndex(k))
			matched := false
			if h.tbl.rows > 0 {
				for br := h.tbl.heads[hv[k]&h.tbl.mask]; br >= 0; br = h.tbl.next[br] {
					if h.keyEq(br, b, phys) {
						matched = true
						break
					}
				}
			}
			keep := false
			switch h.Type {
			case Semi:
				keep = matched
			case Anti:
				keep = !matched
			case AntiNullAware:
				// Probe NULL keys compare UNKNOWN to everything: excluded.
				keep = !matched && (probeNull == nil || !probeNull[phys])
			}
			if keep {
				h.selBuf = append(h.selBuf, phys)
			}
		}
		if len(h.selBuf) == 0 {
			continue
		}
		h.outSel = *b
		h.outSel.Sel = h.selBuf
		return &h.outSel, nil
	}
}

// Close implements Operator.
func (h *HashJoin) Close() {
	h.Left.Close()
	if h.Right != nil {
		h.Right.Close()
	}
}

// parallelHashJoin is the composite the planner instantiates for a
// probe-parallel join: P HashJoins over one SharedBuild, merged by an
// exchange union. Close tears down the union (probe workers) and releases
// the build source if nothing ever built it.
type parallelHashJoin struct {
	union *XchgUnion
	sb    *SharedBuild
}

// NewParallelHashJoin wires a shared build, P probe-side joins, and the
// merging exchange into one operator.
func NewParallelHashJoin(build Operator, probes []Operator, leftKeys, rightKeys []int,
	jt JoinType, leftNull, rightNull int) Operator {
	sb := NewSharedBuild(build, rightKeys, rightNull, jt == AntiNullAware)
	hjs := make([]Operator, len(probes))
	for i, p := range probes {
		hj := NewHashJoinShared(p, sb, leftKeys, rightKeys, jt)
		hj.LeftKeyNull = leftNull
		hj.RightKeyNull = rightNull
		hjs[i] = hj
	}
	return &parallelHashJoin{union: NewXchgUnion(hjs...), sb: sb}
}

// Kinds implements Operator.
func (p *parallelHashJoin) Kinds() []types.Kind { return p.union.Kinds() }

// Open implements Operator.
func (p *parallelHashJoin) Open(ctx *Ctx) error { return p.union.Open(ctx) }

// Next implements Operator.
func (p *parallelHashJoin) Next() (*vec.Batch, error) { return p.union.Next() }

// Close implements Operator.
func (p *parallelHashJoin) Close() {
	p.union.Close()
	p.sb.Close()
}
