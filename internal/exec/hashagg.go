package exec

import (
	"fmt"

	"vectorwise/internal/primitives"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// AggFn enumerates aggregate functions.
type AggFn uint8

// The aggregate functions. The kernel is NULL-oblivious: COUNT(col) over a
// NULLable column is rewritten upstream into SUM over the negated
// indicator, so only these physical aggregates exist.
const (
	AggCount AggFn = iota // COUNT(*)
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String names the aggregate.
func (f AggFn) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	default:
		return "agg?"
	}
}

// AggSpec is one aggregate over an input column (-1 for COUNT(*)).
type AggSpec struct {
	Fn  AggFn
	Col int
}

// ResultKind returns the aggregate's output kind over the given input kind.
func (a AggSpec) ResultKind(in []types.Kind) (types.Kind, error) {
	switch a.Fn {
	case AggCount:
		return types.KindInt64, nil
	case AggAvg:
		return types.KindFloat64, nil
	case AggSum:
		switch in[a.Col] {
		case types.KindInt32, types.KindInt64:
			return types.KindInt64, nil
		case types.KindFloat64:
			return types.KindFloat64, nil
		}
		return 0, fmt.Errorf("exec: sum over %v", in[a.Col])
	case AggMin, AggMax:
		return in[a.Col], nil
	}
	return 0, fmt.Errorf("exec: unknown aggregate")
}

// HashAgg groups its input by the group columns and computes aggregates;
// with no group columns it produces exactly one row (scalar aggregation).
// Output: group columns, then aggregates, in declaration order.
type HashAgg struct {
	Child     Operator
	GroupCols []int
	Aggs      []AggSpec

	ctx     *Ctx
	kinds   []types.Kind
	inK     []types.Kind
	keys    []*vec.Vector // per-group key values
	hashes  []uint64      // per-group hash
	heads   []int32
	next    []int32
	mask    uint64
	states  []*aggState
	nGroups int

	hashBuf  []uint64
	groupBuf []int32
	built    bool
	emitAt   int
	out      *vec.Batch
}

type aggState struct {
	spec AggSpec
	kind types.Kind // result kind
	inK  types.Kind
	sumI []int64
	sumF []float64
	cnt  []int64
	mm   *vec.Vector
	seen []bool
}

// NewHashAgg builds an aggregation operator.
func NewHashAgg(child Operator, groupCols []int, aggs []AggSpec) (*HashAgg, error) {
	h := &HashAgg{Child: child, GroupCols: groupCols, Aggs: aggs}
	h.inK = child.Kinds()
	for _, g := range groupCols {
		h.kinds = append(h.kinds, h.inK[g])
	}
	for _, a := range aggs {
		k, err := a.ResultKind(h.inK)
		if err != nil {
			return nil, err
		}
		h.kinds = append(h.kinds, k)
	}
	return h, nil
}

// Kinds implements Operator.
func (h *HashAgg) Kinds() []types.Kind { return h.kinds }

// Open implements Operator.
func (h *HashAgg) Open(ctx *Ctx) error {
	h.ctx = ctx
	h.built = false
	h.emitAt = 0
	h.nGroups = 0
	h.keys = make([]*vec.Vector, len(h.GroupCols))
	for i, g := range h.GroupCols {
		h.keys[i] = vec.New(h.inK[g], 64)
	}
	h.hashes = h.hashes[:0]
	nb := 1024
	h.heads = make([]int32, nb)
	for i := range h.heads {
		h.heads[i] = -1
	}
	h.mask = uint64(nb - 1)
	h.next = h.next[:0]
	h.states = make([]*aggState, len(h.Aggs))
	for i, a := range h.Aggs {
		k, _ := a.ResultKind(h.inK)
		st := &aggState{spec: a, kind: k}
		if a.Col >= 0 {
			st.inK = h.inK[a.Col]
		}
		if a.Fn == AggMin || a.Fn == AggMax {
			st.mm = vec.New(k, 64)
		}
		h.states[i] = st
	}
	h.out = vec.NewBatch(h.kinds, ctx.vecSize())
	return h.Child.Open(ctx)
}

// Next implements Operator.
func (h *HashAgg) Next() (*vec.Batch, error) {
	if !h.built {
		if err := h.consume(); err != nil {
			return nil, err
		}
		h.built = true
	}
	// Scalar aggregation always emits one row.
	if len(h.GroupCols) == 0 && h.nGroups == 0 && h.emitAt == 0 {
		h.ensureGroups(1)
		h.nGroups = 1
	}
	if h.emitAt >= h.nGroups {
		return nil, nil
	}
	if err := h.ctx.poll(); err != nil {
		return nil, err
	}
	n := h.ctx.vecSize()
	if rem := h.nGroups - h.emitAt; n > rem {
		n = rem
	}
	h.out.Reset()
	h.out.SetLen(n)
	for c := range h.GroupCols {
		h.out.Vecs[c].CopyFrom(sliceVec(h.keys[c], h.emitAt, n), nil, n)
	}
	base := len(h.GroupCols)
	for ai, st := range h.states {
		ov := h.out.Vecs[base+ai]
		for i := 0; i < n; i++ {
			g := h.emitAt + i
			switch st.spec.Fn {
			case AggCount:
				ov.I64[i] = st.cnt[g]
			case AggSum:
				if st.kind == types.KindInt64 {
					ov.I64[i] = st.sumI[g]
				} else {
					ov.F64[i] = st.sumF[g]
				}
			case AggAvg:
				if st.cnt[g] > 0 {
					ov.F64[i] = st.sumF[g] / float64(st.cnt[g])
				} else {
					ov.F64[i] = 0
				}
			case AggMin, AggMax:
				ov.Set(i, st.mm.Get(g))
			}
		}
	}
	h.emitAt += n
	return h.out, nil
}

func sliceVec(v *vec.Vector, off, n int) *vec.Vector {
	out := vec.New(v.Kind, 0)
	switch v.Kind {
	case types.KindBool:
		out.Bool = v.Bool[off : off+n]
	case types.KindInt32, types.KindDate:
		out.I32 = v.I32[off : off+n]
	case types.KindInt64:
		out.I64 = v.I64[off : off+n]
	case types.KindFloat64:
		out.F64 = v.F64[off : off+n]
	case types.KindString:
		out.Str = v.Str[off : off+n]
	}
	out.SetLen(n)
	return out
}

// consume drains the child, building groups and folding aggregates.
func (h *HashAgg) consume() error {
	for {
		if err := h.ctx.poll(); err != nil {
			return err
		}
		b, err := h.Child.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		rows := b.Rows()
		if rows == 0 {
			continue
		}
		if len(h.GroupCols) == 0 {
			h.ensureGroups(1)
			if h.nGroups == 0 {
				h.nGroups = 1
			}
			if cap(h.groupBuf) < rows {
				h.groupBuf = make([]int32, rows)
			}
			g := h.groupBuf[:rows]
			for i := range g {
				g[i] = 0
			}
			h.fold(g, b)
			continue
		}
		if cap(h.hashBuf) < rows {
			h.hashBuf = make([]uint64, rows)
		}
		hv := h.hashBuf[:rows]
		if err := hashKeys(hv, b.Vecs, h.GroupCols, b.Sel, b.Full()); err != nil {
			return err
		}
		if cap(h.groupBuf) < rows {
			h.groupBuf = make([]int32, rows)
		}
		groups := h.groupBuf[:rows]
		prevGroups := h.nGroups
		for k := 0; k < rows; k++ {
			phys := int32(b.RowIndex(k))
			gid := h.findOrInsert(hv[k], b, phys)
			groups[k] = gid
		}
		if grown := h.nGroups - prevGroups; grown > 0 && h.ctx.Budget != nil {
			// Aggregation memory grows with distinct groups, not input rows:
			// bill the new groups' key + state footprint.
			if err := h.ctx.Budget.Charge(int64(grown) * h.groupBytes()); err != nil {
				return err
			}
		}
		h.fold(groups, b)
	}
}

// groupBytes estimates the per-group footprint: key values, hash and chain
// slots, and one state slot per aggregate.
func (h *HashAgg) groupBytes() int64 {
	n := int64(16) // hash + chain link + slack
	for _, g := range h.GroupCols {
		if h.inK[g] == types.KindString {
			n += 32
		} else {
			n += 8
		}
	}
	n += int64(len(h.Aggs)) * 24
	return n
}

func (h *HashAgg) findOrInsert(hash uint64, b *vec.Batch, phys int32) int32 {
	bkt := hash & h.mask
	for g := h.heads[bkt]; g >= 0; g = h.next[g] {
		if h.hashes[g] == hash && h.groupKeyEq(int(g), b, phys) {
			return g
		}
	}
	// New group.
	gid := int32(h.nGroups)
	h.nGroups++
	h.ensureGroups(h.nGroups)
	for c, gc := range h.GroupCols {
		h.keys[c].Append(b.Vecs[gc].Get(int(phys)))
	}
	h.hashes = append(h.hashes, hash)
	h.next = append(h.next, h.heads[bkt])
	h.heads[bkt] = gid
	if uint64(h.nGroups)*2 > h.mask {
		h.rehash()
	}
	return gid
}

func (h *HashAgg) groupKeyEq(g int, b *vec.Batch, phys int32) bool {
	for c, gc := range h.GroupCols {
		kv := h.keys[c]
		iv := b.Vecs[gc]
		switch kv.Kind {
		case types.KindBool:
			if kv.Bool[g] != iv.Bool[phys] {
				return false
			}
		case types.KindInt32, types.KindDate:
			if kv.I32[g] != iv.I32[phys] {
				return false
			}
		case types.KindInt64:
			if kv.I64[g] != iv.I64[phys] {
				return false
			}
		case types.KindFloat64:
			if kv.F64[g] != iv.F64[phys] {
				return false
			}
		case types.KindString:
			if kv.Str[g] != iv.Str[phys] {
				return false
			}
		}
	}
	return true
}

func (h *HashAgg) rehash() {
	nb := (int(h.mask) + 1) * 2
	h.heads = make([]int32, nb)
	for i := range h.heads {
		h.heads[i] = -1
	}
	h.mask = uint64(nb - 1)
	for g := 0; g < h.nGroups; g++ {
		bkt := h.hashes[g] & h.mask
		h.next[g] = h.heads[bkt]
		h.heads[bkt] = int32(g)
	}
}

// ensureGroups grows every aggregate state to hold n groups.
func (h *HashAgg) ensureGroups(n int) {
	for _, st := range h.states {
		switch st.spec.Fn {
		case AggCount:
			st.cnt = growI64(st.cnt, n)
		case AggSum:
			if st.kind == types.KindInt64 {
				st.sumI = growI64(st.sumI, n)
			} else {
				st.sumF = growF64(st.sumF, n)
			}
		case AggAvg:
			st.sumF = growF64(st.sumF, n)
			st.cnt = growI64(st.cnt, n)
		case AggMin, AggMax:
			st.mm.Grow(n * 2)
			st.mm.SetLen(n)
			for len(st.seen) < n {
				st.seen = append(st.seen, false)
			}
		}
	}
}

func growI64(s []int64, n int) []int64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

func growF64(s []float64, n int) []float64 {
	for len(s) < n {
		s = append(s, 0)
	}
	return s
}

// fold applies one batch's rows to the aggregate states. groups is parallel
// to the batch's logical rows.
func (h *HashAgg) fold(groups []int32, b *vec.Batch) {
	sel, n := b.Sel, b.Full()
	for _, st := range h.states {
		switch st.spec.Fn {
		case AggCount:
			primitives.CountGrouped(st.cnt, groups, sel, n)
		case AggSum:
			h.foldSum(st, groups, b, sel, n)
		case AggAvg:
			h.foldAvg(st, groups, b, sel, n)
		case AggMin:
			h.foldMinMax(st, groups, b, sel, n, true)
		case AggMax:
			h.foldMinMax(st, groups, b, sel, n, false)
		}
	}
}

func (h *HashAgg) foldSum(st *aggState, groups []int32, b *vec.Batch, sel []int32, n int) {
	v := b.Vecs[st.spec.Col]
	switch st.inK {
	case types.KindInt32:
		if sel == nil {
			for k := 0; k < n; k++ {
				st.sumI[groups[k]] += int64(v.I32[k])
			}
		} else {
			for k, i := range sel {
				st.sumI[groups[k]] += int64(v.I32[i])
			}
		}
	case types.KindInt64:
		primitives.SumGrouped(st.sumI, groups, v.I64, sel, n)
	case types.KindFloat64:
		primitives.SumGrouped(st.sumF, groups, v.F64, sel, n)
	}
}

func (h *HashAgg) foldAvg(st *aggState, groups []int32, b *vec.Batch, sel []int32, n int) {
	v := b.Vecs[st.spec.Col]
	primitives.CountGrouped(st.cnt, groups, sel, n)
	switch st.inK {
	case types.KindInt32:
		if sel == nil {
			for k := 0; k < n; k++ {
				st.sumF[groups[k]] += float64(v.I32[k])
			}
		} else {
			for k, i := range sel {
				st.sumF[groups[k]] += float64(v.I32[i])
			}
		}
	case types.KindInt64:
		if sel == nil {
			for k := 0; k < n; k++ {
				st.sumF[groups[k]] += float64(v.I64[k])
			}
		} else {
			for k, i := range sel {
				st.sumF[groups[k]] += float64(v.I64[i])
			}
		}
	case types.KindFloat64:
		primitives.SumGrouped(st.sumF, groups, v.F64, sel, n)
	}
}

func (h *HashAgg) foldMinMax(st *aggState, groups []int32, b *vec.Batch, sel []int32, n int, isMin bool) {
	v := b.Vecs[st.spec.Col]
	switch st.inK {
	case types.KindInt32, types.KindDate:
		if isMin {
			primitives.MinGrouped(st.mm.I32, st.seen, groups, v.I32, sel, n)
		} else {
			primitives.MaxGrouped(st.mm.I32, st.seen, groups, v.I32, sel, n)
		}
	case types.KindInt64:
		if isMin {
			primitives.MinGrouped(st.mm.I64, st.seen, groups, v.I64, sel, n)
		} else {
			primitives.MaxGrouped(st.mm.I64, st.seen, groups, v.I64, sel, n)
		}
	case types.KindFloat64:
		if isMin {
			primitives.MinGrouped(st.mm.F64, st.seen, groups, v.F64, sel, n)
		} else {
			primitives.MaxGrouped(st.mm.F64, st.seen, groups, v.F64, sel, n)
		}
	case types.KindString:
		if isMin {
			primitives.MinGrouped(st.mm.Str, st.seen, groups, v.Str, sel, n)
		} else {
			primitives.MaxGrouped(st.mm.Str, st.seen, groups, v.Str, sel, n)
		}
	case types.KindBool:
		// MIN/MAX over booleans: false < true.
		if sel == nil {
			for k := 0; k < n; k++ {
				foldBoolMM(st, groups[k], v.Bool[k], isMin)
			}
		} else {
			for k, i := range sel {
				foldBoolMM(st, groups[k], v.Bool[i], isMin)
			}
		}
	}
}

func foldBoolMM(st *aggState, g int32, val bool, isMin bool) {
	if !st.seen[g] {
		st.mm.Bool[g] = val
		st.seen[g] = true
		return
	}
	if isMin && !val {
		st.mm.Bool[g] = false
	}
	if !isMin && val {
		st.mm.Bool[g] = true
	}
}

// Close implements Operator.
func (h *HashAgg) Close() { h.Child.Close() }
