// Package rowengine is the "classic Ingres" substrate of Figure 1: slotted-
// page heap storage with tuple-at-a-time Volcano operators. It exists for
// two reasons mirroring the paper:
//
//   - it is the conventional engine the X100 kernel's >10× claim (C1,
//     experiment E1) is measured against, and
//   - Vectorwise shipped with *both* storage engines — classic tables for
//     OLTP-style access, Vectorwise tables for OLAP (C5, experiment E12) —
//     so the engine layer here offers the same choice.
package rowengine

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"vectorwise/internal/types"
)

// PageSize is the classic 8KB heap page.
const PageSize = 8192

// RowID addresses a row: page number and slot within it.
type RowID struct {
	Page int32
	Slot int32
}

// page is a slotted page: rows grow from the front of data, the slot
// directory holds (offset, length) pairs; length 0 marks a deleted slot.
type page struct {
	data  []byte
	slots []slot
	free  int // next write offset in data
}

type slot struct {
	off, length int32
}

func newPage() *page {
	return &page{data: make([]byte, 0, PageSize)}
}

// fits reports whether n more bytes (plus a slot) fit.
func (p *page) fits(n int) bool {
	const slotCost = 8
	return len(p.data)+n+(len(p.slots)+1)*slotCost <= PageSize
}

func (p *page) insert(enc []byte) int32 {
	off := int32(len(p.data))
	p.data = append(p.data, enc...)
	p.slots = append(p.slots, slot{off: off, length: int32(len(enc))})
	return int32(len(p.slots) - 1)
}

// HeapTable is a row-store table with an optional unique hash index on one
// integer column (the "primary index" used for point lookups).
type HeapTable struct {
	mu     sync.RWMutex
	schema *types.Schema
	pages  []*page
	rows   int64
	keyCol int // -1 = no index
	index  map[int64]RowID
}

// NewHeapTable creates a heap table; keyCol ≥ 0 builds a unique hash index
// on that integer column.
func NewHeapTable(schema *types.Schema, keyCol int) *HeapTable {
	t := &HeapTable{schema: schema.Clone(), keyCol: keyCol}
	if keyCol >= 0 {
		t.index = make(map[int64]RowID)
	}
	return t
}

// Schema returns the table schema.
func (t *HeapTable) Schema() *types.Schema { return t.schema }

// Rows returns the live row count.
func (t *HeapTable) Rows() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows
}

// Insert appends a row and returns its RowID.
func (t *HeapTable) Insert(row []types.Value) (RowID, error) {
	if len(row) != t.schema.Len() {
		return RowID{}, fmt.Errorf("rowengine: row arity %d, want %d", len(row), t.schema.Len())
	}
	enc := encodeRow(nil, row)
	if len(enc)+16 > PageSize {
		return RowID{}, fmt.Errorf("rowengine: row of %d bytes exceeds page size", len(enc))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.index != nil {
		k := row[t.keyCol].AsInt()
		if _, dup := t.index[k]; dup {
			return RowID{}, fmt.Errorf("rowengine: duplicate key %d", k)
		}
	}
	var p *page
	if n := len(t.pages); n > 0 && t.pages[n-1].fits(len(enc)) {
		p = t.pages[n-1]
	} else {
		p = newPage()
		t.pages = append(t.pages, p)
	}
	slotIdx := p.insert(enc)
	rid := RowID{Page: int32(len(t.pages) - 1), Slot: slotIdx}
	if t.index != nil {
		t.index[row[t.keyCol].AsInt()] = rid
	}
	t.rows++
	return rid, nil
}

// Get fetches the row at rid (nil if the slot is deleted).
func (t *HeapTable) Get(rid RowID) ([]types.Value, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.getLocked(rid)
}

func (t *HeapTable) getLocked(rid RowID) ([]types.Value, error) {
	if int(rid.Page) >= len(t.pages) {
		return nil, fmt.Errorf("rowengine: page %d out of range", rid.Page)
	}
	p := t.pages[rid.Page]
	if int(rid.Slot) >= len(p.slots) {
		return nil, fmt.Errorf("rowengine: slot %d out of range", rid.Slot)
	}
	s := p.slots[rid.Slot]
	if s.length == 0 {
		return nil, nil
	}
	row, err := decodeRow(t.schema, p.data[s.off:s.off+s.length])
	if err != nil {
		return nil, err
	}
	return row, nil
}

// Lookup finds a row by indexed key; (nil, nil) when absent.
func (t *HeapTable) Lookup(key int64) ([]types.Value, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.index == nil {
		return nil, fmt.Errorf("rowengine: table has no index")
	}
	rid, ok := t.index[key]
	if !ok {
		return nil, nil
	}
	return t.getLocked(rid)
}

// Delete removes the row at rid.
func (t *HeapTable) Delete(rid RowID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, err := t.getLocked(rid)
	if err != nil {
		return err
	}
	if row == nil {
		return nil // already deleted
	}
	t.pages[rid.Page].slots[rid.Slot].length = 0
	if t.index != nil {
		delete(t.index, row[t.keyCol].AsInt())
	}
	t.rows--
	return nil
}

// DeleteByKey removes the row with the indexed key; reports whether a row
// was removed.
func (t *HeapTable) DeleteByKey(key int64) (bool, error) {
	t.mu.Lock()
	rid, ok := t.index[key]
	t.mu.Unlock()
	if !ok {
		return false, nil
	}
	return true, t.Delete(rid)
}

// Update rewrites the row at rid in place when it fits, else as
// delete+insert (returning the possibly changed RowID).
func (t *HeapTable) Update(rid RowID, row []types.Value) (RowID, error) {
	t.mu.Lock()
	old, err := t.getLocked(rid)
	if err != nil || old == nil {
		t.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("rowengine: update of deleted row")
		}
		return RowID{}, err
	}
	enc := encodeRow(nil, row)
	p := t.pages[rid.Page]
	s := &p.slots[rid.Slot]
	if int32(len(enc)) <= s.length {
		copy(p.data[s.off:], enc)
		s.length = int32(len(enc))
		if t.index != nil {
			delete(t.index, old[t.keyCol].AsInt())
			t.index[row[t.keyCol].AsInt()] = rid
		}
		t.mu.Unlock()
		return rid, nil
	}
	// Doesn't fit: delete + reinsert.
	s.length = 0
	if t.index != nil {
		delete(t.index, old[t.keyCol].AsInt())
	}
	t.rows--
	t.mu.Unlock()
	return t.Insert(row)
}

// ScanFunc iterates all live rows in heap order; return false to stop.
func (t *HeapTable) ScanFunc(f func(rid RowID, row []types.Value) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for pi, p := range t.pages {
		for si, s := range p.slots {
			if s.length == 0 {
				continue
			}
			row, err := decodeRow(t.schema, p.data[s.off:s.off+s.length])
			if err != nil {
				return err
			}
			if !f(RowID{Page: int32(pi), Slot: int32(si)}, row) {
				return nil
			}
		}
	}
	return nil
}

// BytesUsed returns the heap's allocated page bytes.
func (t *HeapTable) BytesUsed() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int64(len(t.pages)) * PageSize
}

// Row encoding: per value, a tag byte (kind | null bit) and a fixed or
// length-prefixed payload.

const nullBit = 0x80

func encodeRow(dst []byte, row []types.Value) []byte {
	for _, v := range row {
		tag := byte(v.Kind)
		if v.Null {
			tag |= nullBit
		}
		dst = append(dst, tag)
		if v.Null {
			continue
		}
		switch v.Kind {
		case types.KindBool:
			if v.I64 != 0 {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		case types.KindInt32, types.KindDate:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(v.I64)))
		case types.KindInt64:
			dst = binary.LittleEndian.AppendUint64(dst, uint64(v.I64))
		case types.KindFloat64:
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.F64))
		case types.KindString:
			var lenBuf [binary.MaxVarintLen64]byte
			n := binary.PutUvarint(lenBuf[:], uint64(len(v.Str)))
			dst = append(dst, lenBuf[:n]...)
			dst = append(dst, v.Str...)
		}
	}
	return dst
}

func decodeRow(schema *types.Schema, src []byte) ([]types.Value, error) {
	row := make([]types.Value, schema.Len())
	for i := range row {
		if len(src) < 1 {
			return nil, fmt.Errorf("rowengine: truncated row")
		}
		tag := src[0]
		src = src[1:]
		kind := types.Kind(tag &^ nullBit)
		if tag&nullBit != 0 {
			row[i] = types.NewNull(kind)
			continue
		}
		switch kind {
		case types.KindBool:
			if len(src) < 1 {
				return nil, fmt.Errorf("rowengine: truncated bool")
			}
			row[i] = types.NewBool(src[0] != 0)
			src = src[1:]
		case types.KindInt32, types.KindDate:
			if len(src) < 4 {
				return nil, fmt.Errorf("rowengine: truncated int32")
			}
			u := binary.LittleEndian.Uint32(src)
			if kind == types.KindDate {
				row[i] = types.NewDate(int32(u))
			} else {
				row[i] = types.NewInt32(int32(u))
			}
			src = src[4:]
		case types.KindInt64:
			if len(src) < 8 {
				return nil, fmt.Errorf("rowengine: truncated int64")
			}
			row[i] = types.NewInt64(int64(binary.LittleEndian.Uint64(src)))
			src = src[8:]
		case types.KindFloat64:
			if len(src) < 8 {
				return nil, fmt.Errorf("rowengine: truncated float")
			}
			row[i] = types.NewFloat64(math.Float64frombits(binary.LittleEndian.Uint64(src)))
			src = src[8:]
		case types.KindString:
			l, n := binary.Uvarint(src)
			if n <= 0 || len(src) < n+int(l) {
				return nil, fmt.Errorf("rowengine: truncated string")
			}
			row[i] = types.NewString(string(src[n : n+int(l)]))
			src = src[n+int(l):]
		default:
			return nil, fmt.Errorf("rowengine: bad kind tag %d", kind)
		}
	}
	return row, nil
}
