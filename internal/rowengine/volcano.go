package rowengine

import (
	"context"
	"sort"

	"vectorwise/internal/expr"
	"vectorwise/internal/types"
)

// RowOperator is the classic Volcano iterator: one boxed tuple per Next
// call, with all the per-tuple interpretation overhead that entails. This
// is deliberately the "conventional query engine" of the paper's >10×
// comparison — do not optimize it into something vectorized.
type RowOperator interface {
	// Open prepares the operator.
	Open(ctx context.Context) error
	// Next returns the next row or nil at end of stream.
	Next() ([]types.Value, error)
	// Close releases resources.
	Close()
	// Schema describes the output columns.
	Schema() *types.Schema
}

// TableScan iterates a heap table.
type TableScan struct {
	Table *HeapTable

	ctx     context.Context
	rows    [][]types.Value // snapshot cursor (simple and stable)
	at      int
	counter int
}

// NewTableScan builds a heap scan.
func NewTableScan(t *HeapTable) *TableScan { return &TableScan{Table: t} }

// Schema implements RowOperator.
func (s *TableScan) Schema() *types.Schema { return s.Table.Schema() }

// Open implements RowOperator.
func (s *TableScan) Open(ctx context.Context) error {
	s.ctx = ctx
	s.at = 0
	s.rows = s.rows[:0]
	return s.Table.ScanFunc(func(_ RowID, row []types.Value) bool {
		s.rows = append(s.rows, row)
		return true
	})
}

// Next implements RowOperator.
func (s *TableScan) Next() ([]types.Value, error) {
	s.counter++
	if s.counter&1023 == 0 {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
	}
	if s.at >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.at]
	s.at++
	return r, nil
}

// Close implements RowOperator.
func (s *TableScan) Close() {}

// Filter drops rows whose predicate is not TRUE (NULL-aware three-valued
// logic via the row interpreter).
type Filter struct {
	Child RowOperator
	Pred  expr.Expr
}

// NewFilter builds a filter.
func NewFilter(child RowOperator, pred expr.Expr) *Filter {
	return &Filter{Child: child, Pred: pred}
}

// Schema implements RowOperator.
func (f *Filter) Schema() *types.Schema { return f.Child.Schema() }

// Open implements RowOperator.
func (f *Filter) Open(ctx context.Context) error { return f.Child.Open(ctx) }

// Next implements RowOperator.
func (f *Filter) Next() ([]types.Value, error) {
	for {
		row, err := f.Child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := expr.EvalRow(f.Pred, row)
		if err != nil {
			return nil, err
		}
		if !v.Null && v.Bool() {
			return row, nil
		}
	}
}

// Close implements RowOperator.
func (f *Filter) Close() { f.Child.Close() }

// Map projects expressions per row.
type Map struct {
	Child RowOperator
	Exprs []expr.Expr
	Names []string
	out   []types.Value
}

// NewMap builds a projection.
func NewMap(child RowOperator, exprs []expr.Expr, names []string) *Map {
	return &Map{Child: child, Exprs: exprs, Names: names}
}

// Schema implements RowOperator.
func (m *Map) Schema() *types.Schema {
	s := &types.Schema{}
	for i, e := range m.Exprs {
		name := ""
		if i < len(m.Names) {
			name = m.Names[i]
		}
		s.Cols = append(s.Cols, types.Col(name, e.Type()))
	}
	return s
}

// Open implements RowOperator.
func (m *Map) Open(ctx context.Context) error {
	m.out = make([]types.Value, len(m.Exprs))
	return m.Child.Open(ctx)
}

// Next implements RowOperator.
func (m *Map) Next() ([]types.Value, error) {
	row, err := m.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	for i, e := range m.Exprs {
		v, err := expr.EvalRow(e, row)
		if err != nil {
			return nil, err
		}
		m.out[i] = v
	}
	// Copy: consumers may retain rows (sort, join build).
	out := make([]types.Value, len(m.out))
	copy(out, m.out)
	return out, nil
}

// Close implements RowOperator.
func (m *Map) Close() { m.Child.Close() }

// HashJoinRow is the classic hash join over boxed keys.
type HashJoinRow struct {
	Left, Right         RowOperator
	LeftKeys, RightKeys []int

	table   map[string][][]types.Value
	pending [][]types.Value
	ctx     context.Context
}

// NewHashJoinRow builds an inner hash join.
func NewHashJoinRow(l, r RowOperator, lk, rk []int) *HashJoinRow {
	return &HashJoinRow{Left: l, Right: r, LeftKeys: lk, RightKeys: rk}
}

// Schema implements RowOperator.
func (j *HashJoinRow) Schema() *types.Schema {
	s := &types.Schema{}
	s.Cols = append(s.Cols, j.Left.Schema().Cols...)
	s.Cols = append(s.Cols, j.Right.Schema().Cols...)
	return s
}

func rowKey(row []types.Value, cols []int) string {
	k := ""
	for _, c := range cols {
		k += row[c].String() + "\x00"
	}
	return k
}

// Open implements RowOperator: builds on the right input.
func (j *HashJoinRow) Open(ctx context.Context) error {
	j.ctx = ctx
	if err := j.Left.Open(ctx); err != nil {
		return err
	}
	if err := j.Right.Open(ctx); err != nil {
		return err
	}
	j.table = make(map[string][][]types.Value)
	for {
		row, err := j.Right.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		k := rowKey(row, j.RightKeys)
		j.table[k] = append(j.table[k], row)
	}
	return nil
}

// Next implements RowOperator.
func (j *HashJoinRow) Next() ([]types.Value, error) {
	for {
		if len(j.pending) > 0 {
			out := j.pending[0]
			j.pending = j.pending[1:]
			return out, nil
		}
		lrow, err := j.Left.Next()
		if err != nil || lrow == nil {
			return nil, err
		}
		// NULL keys never join.
		nullKey := false
		for _, c := range j.LeftKeys {
			if lrow[c].Null {
				nullKey = true
			}
		}
		if nullKey {
			continue
		}
		for _, rrow := range j.table[rowKey(lrow, j.LeftKeys)] {
			out := make([]types.Value, 0, len(lrow)+len(rrow))
			out = append(out, lrow...)
			out = append(out, rrow...)
			j.pending = append(j.pending, out)
		}
	}
}

// Close implements RowOperator.
func (j *HashJoinRow) Close() {
	j.Left.Close()
	j.Right.Close()
}

// AggRow is the classic hash aggregation with boxed group keys.
type AggRow struct {
	Child     RowOperator
	GroupCols []int
	Aggs      []RowAggSpec

	groups map[string]*rowGroup
	order  []string
	at     int
	ctx    context.Context
}

// RowAggSpec mirrors exec.AggSpec for the row engine.
type RowAggSpec struct {
	Fn  string // count, sum, min, max, avg
	Col int
}

type rowGroup struct {
	key    []types.Value
	states []*rowGroup // one state per aggregate (key fields unused there)
	cnt    int64
	sumF   float64
	sumI   int64
	mm     types.Value
	seen   bool
}

// NewAggRow builds an aggregation.
func NewAggRow(child RowOperator, groupCols []int, aggs []RowAggSpec) *AggRow {
	return &AggRow{Child: child, GroupCols: groupCols, Aggs: aggs}
}

// Schema implements RowOperator.
func (a *AggRow) Schema() *types.Schema {
	s := &types.Schema{}
	in := a.Child.Schema()
	for _, g := range a.GroupCols {
		s.Cols = append(s.Cols, in.Cols[g])
	}
	for _, sp := range a.Aggs {
		var t types.T
		switch sp.Fn {
		case "count":
			t = types.Int64
		case "avg":
			t = types.Float64
		case "sum":
			if in.Cols[sp.Col].Type.Kind == types.KindFloat64 {
				t = types.Float64
			} else {
				t = types.Int64
			}
		default:
			t = in.Cols[sp.Col].Type
		}
		s.Cols = append(s.Cols, types.Col(sp.Fn, t))
	}
	return s
}

// Open implements RowOperator.
func (a *AggRow) Open(ctx context.Context) error {
	a.ctx = ctx
	a.groups = nil
	a.order = nil
	a.at = 0
	return a.Child.Open(ctx)
}

// Next implements RowOperator.
func (a *AggRow) Next() ([]types.Value, error) {
	if a.groups == nil {
		if err := a.consume(); err != nil {
			return nil, err
		}
	}
	if a.at >= len(a.order) {
		return nil, nil
	}
	g := a.groups[a.order[a.at]]
	a.at++
	out := make([]types.Value, 0, len(a.GroupCols)+len(a.Aggs))
	out = append(out, g.key...)
	for i, sp := range a.Aggs {
		st := a.stateOf(g, i)
		switch sp.Fn {
		case "count":
			out = append(out, types.NewInt64(st.cnt))
		case "sum":
			if a.Child.Schema().Cols[sp.Col].Type.Kind == types.KindFloat64 {
				out = append(out, types.NewFloat64(st.sumF))
			} else {
				out = append(out, types.NewInt64(st.sumI))
			}
		case "avg":
			if st.cnt == 0 {
				out = append(out, types.NewNull(types.KindFloat64))
			} else {
				out = append(out, types.NewFloat64(st.sumF/float64(st.cnt)))
			}
		case "min", "max":
			if !st.seen {
				out = append(out, types.NewNull(a.Child.Schema().Cols[sp.Col].Type.Kind))
			} else {
				out = append(out, st.mm)
			}
		}
	}
	return out, nil
}

// stateOf returns the per-aggregate state; rowGroup holds one state per
// aggregate in a slice indexed by aggregate position.
func (a *AggRow) stateOf(g *rowGroup, i int) *rowGroup {
	return g.states[i]
}

func (a *AggRow) consume() error {
	a.groups = make(map[string]*rowGroup)
	if len(a.GroupCols) == 0 {
		a.ensureGroup("", nil)
	}
	n := 0
	for {
		n++
		if n&1023 == 0 {
			if err := a.ctx.Err(); err != nil {
				return err
			}
		}
		row, err := a.Child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			return nil
		}
		key := rowKey(row, a.GroupCols)
		g, ok := a.groups[key]
		if !ok {
			kv := make([]types.Value, len(a.GroupCols))
			for i, c := range a.GroupCols {
				kv[i] = row[c]
			}
			g = a.ensureGroup(key, kv)
		}
		for i, sp := range a.Aggs {
			st := g.states[i]
			var v types.Value
			if sp.Col >= 0 {
				v = row[sp.Col]
				if v.Null {
					continue // SQL aggregates skip NULLs
				}
			}
			switch sp.Fn {
			case "count":
				st.cnt++
			case "sum":
				st.sumI += v.AsInt()
				st.sumF += v.AsFloat()
			case "avg":
				st.cnt++
				st.sumF += v.AsFloat()
			case "min":
				if !st.seen || types.Compare(v, st.mm) < 0 {
					st.mm = v
					st.seen = true
				}
			case "max":
				if !st.seen || types.Compare(v, st.mm) > 0 {
					st.mm = v
					st.seen = true
				}
			}
		}
	}
}

func (a *AggRow) ensureGroup(key string, kv []types.Value) *rowGroup {
	g := &rowGroup{key: kv}
	g.states = make([]*rowGroup, len(a.Aggs))
	for i := range g.states {
		g.states[i] = &rowGroup{}
	}
	a.groups[key] = g
	a.order = append(a.order, key)
	return g
}

// Close implements RowOperator.
func (a *AggRow) Close() { a.Child.Close() }

// SortRow materializes and sorts (classic external-sort stand-in).
type SortRow struct {
	Child RowOperator
	Keys  []SortKeyRow
	rows  [][]types.Value
	at    int
}

// SortKeyRow orders by one output column.
type SortKeyRow struct {
	Col  int
	Desc bool
}

// NewSortRow builds a sort.
func NewSortRow(child RowOperator, keys []SortKeyRow) *SortRow {
	return &SortRow{Child: child, Keys: keys}
}

// Schema implements RowOperator.
func (s *SortRow) Schema() *types.Schema { return s.Child.Schema() }

// Open implements RowOperator.
func (s *SortRow) Open(ctx context.Context) error {
	s.rows = nil
	s.at = 0
	if err := s.Child.Open(ctx); err != nil {
		return err
	}
	for {
		row, err := s.Child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		s.rows = append(s.rows, row)
	}
	sort.SliceStable(s.rows, func(i, j int) bool {
		for _, k := range s.Keys {
			a, b := s.rows[i][k.Col], s.rows[j][k.Col]
			// NULLs sort first.
			switch {
			case a.Null && b.Null:
				continue
			case a.Null:
				return !k.Desc
			case b.Null:
				return k.Desc
			}
			c := types.Compare(a, b)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}

// Next implements RowOperator.
func (s *SortRow) Next() ([]types.Value, error) {
	if s.at >= len(s.rows) {
		return nil, nil
	}
	r := s.rows[s.at]
	s.at++
	return r, nil
}

// Close implements RowOperator.
func (s *SortRow) Close() { s.Child.Close() }

// LimitRow caps the stream.
type LimitRow struct {
	Child RowOperator
	N     int64
	seen  int64
}

// NewLimitRow builds a LIMIT.
func NewLimitRow(child RowOperator, n int64) *LimitRow { return &LimitRow{Child: child, N: n} }

// Schema implements RowOperator.
func (l *LimitRow) Schema() *types.Schema { return l.Child.Schema() }

// Open implements RowOperator.
func (l *LimitRow) Open(ctx context.Context) error { l.seen = 0; return l.Child.Open(ctx) }

// Next implements RowOperator.
func (l *LimitRow) Next() ([]types.Value, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	row, err := l.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

// Close implements RowOperator.
func (l *LimitRow) Close() { l.Child.Close() }

// CollectRows drains a row plan.
func CollectRows(ctx context.Context, op RowOperator) ([][]types.Value, error) {
	if err := op.Open(ctx); err != nil {
		op.Close()
		return nil, err
	}
	defer op.Close()
	var out [][]types.Value
	for {
		row, err := op.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}
