package rowengine

import (
	"context"
	"testing"

	"vectorwise/internal/expr"
	"vectorwise/internal/types"
)

func testTable(t *testing.T, rows int, keyCol int) *HeapTable {
	t.Helper()
	schema := types.NewSchema(
		types.Col("id", types.Int64),
		types.Col("grp", types.Int64),
		types.Col("name", types.String),
		types.Col("val", types.Float64),
	)
	tab := NewHeapTable(schema, keyCol)
	for i := 0; i < rows; i++ {
		_, err := tab.Insert([]types.Value{
			types.NewInt64(int64(i)),
			types.NewInt64(int64(i % 5)),
			types.NewString("name" + string(rune('A'+i%3))),
			types.NewFloat64(float64(i) * 1.5),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestHeapInsertGetRoundTrip(t *testing.T) {
	tab := testTable(t, 1000, 0)
	if tab.Rows() != 1000 {
		t.Fatalf("rows: %d", tab.Rows())
	}
	row, err := tab.Lookup(567)
	if err != nil || row == nil {
		t.Fatalf("lookup: %v %v", row, err)
	}
	if row[0].Int64() != 567 || row[2].Str != "nameA" || row[3].Float64() != 850.5 {
		t.Fatalf("content: %v", row)
	}
	if r, err := tab.Lookup(99999); err != nil || r != nil {
		t.Fatalf("missing lookup: %v %v", r, err)
	}
	// Several pages were used for 1000 rows.
	if tab.BytesUsed() < 2*PageSize {
		t.Fatalf("pages: %d", tab.BytesUsed())
	}
}

func TestHeapDuplicateKeyRejected(t *testing.T) {
	tab := testTable(t, 5, 0)
	_, err := tab.Insert([]types.Value{
		types.NewInt64(3), types.NewInt64(0), types.NewString(""), types.NewFloat64(0),
	})
	if err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestHeapDeleteUpdate(t *testing.T) {
	tab := testTable(t, 100, 0)
	ok, err := tab.DeleteByKey(50)
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if tab.Rows() != 99 {
		t.Fatalf("rows after delete: %d", tab.Rows())
	}
	if r, _ := tab.Lookup(50); r != nil {
		t.Fatal("deleted row still found")
	}
	if ok, _ := tab.DeleteByKey(50); ok {
		t.Fatal("double delete reported success")
	}
	// In-place update (same size).
	var rid RowID
	tab.ScanFunc(func(r RowID, row []types.Value) bool {
		if row[0].Int64() == 10 {
			rid = r
			return false
		}
		return true
	})
	nrid, err := tab.Update(rid, []types.Value{
		types.NewInt64(10), types.NewInt64(9), types.NewString("nameA"), types.NewFloat64(-1),
	})
	if err != nil {
		t.Fatal(err)
	}
	row, _ := tab.Get(nrid)
	if row[1].Int64() != 9 || row[3].Float64() != -1 {
		t.Fatalf("update: %v", row)
	}
	// Growing update forces relocation.
	nrid2, err := tab.Update(nrid, []types.Value{
		types.NewInt64(10), types.NewInt64(9), types.NewString("a much longer name than before"), types.NewFloat64(-1),
	})
	if err != nil {
		t.Fatal(err)
	}
	row, _ = tab.Get(nrid2)
	if row[2].Str != "a much longer name than before" {
		t.Fatalf("relocated update: %v", row)
	}
	if r, _ := tab.Lookup(10); r == nil {
		t.Fatal("index lost after relocation")
	}
}

func TestNullRoundTrip(t *testing.T) {
	schema := types.NewSchema(types.Col("a", types.Int64.Null()), types.Col("b", types.String.Null()))
	tab := NewHeapTable(schema, -1)
	if _, err := tab.Insert([]types.Value{types.NewNull(types.KindInt64), types.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	var got []types.Value
	tab.ScanFunc(func(_ RowID, row []types.Value) bool { got = row; return false })
	if !got[0].Null || got[1].Str != "x" {
		t.Fatalf("null roundtrip: %v", got)
	}
}

func col(tab *HeapTable, i int) *expr.ColRef {
	c := tab.Schema().Cols[i]
	return expr.Col(i, c.Name, c.Type)
}

func TestVolcanoPipeline(t *testing.T) {
	tab := testTable(t, 1000, -1)
	scan := NewTableScan(tab)
	filt := NewFilter(scan, expr.NewCall("<", col(tab, 0), expr.CInt(10)))
	proj := NewMap(filt, []expr.Expr{
		expr.NewCall("*", col(tab, 0), expr.CInt(2)),
		col(tab, 2),
	}, []string{"double", "name"})
	rows, err := CollectRows(context.Background(), proj)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 || rows[9][0].Int64() != 18 {
		t.Fatalf("pipeline: %v", rows)
	}
	if proj.Schema().Cols[0].Name != "double" {
		t.Fatal("schema names")
	}
}

func TestVolcanoAgg(t *testing.T) {
	tab := testTable(t, 1000, -1)
	agg := NewAggRow(NewTableScan(tab), []int{1}, []RowAggSpec{
		{Fn: "count", Col: -1},
		{Fn: "sum", Col: 0},
		{Fn: "min", Col: 3},
		{Fn: "max", Col: 3},
		{Fn: "avg", Col: 0},
	})
	rows, err := CollectRows(context.Background(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("groups: %v", len(rows))
	}
	for _, r := range rows {
		g := r[0].Int64()
		if r[1].Int64() != 200 {
			t.Fatalf("count g%d: %v", g, r)
		}
		wantSum := 200*g + 5*(199*200/2)
		if r[2].Int64() != wantSum {
			t.Fatalf("sum g%d: %v want %d", g, r[2], wantSum)
		}
		if r[3].Float64() != float64(g)*1.5 {
			t.Fatalf("min g%d: %v", g, r)
		}
	}
}

func TestVolcanoScalarAggEmpty(t *testing.T) {
	tab := testTable(t, 0, -1)
	agg := NewAggRow(NewTableScan(tab), nil, []RowAggSpec{{Fn: "count", Col: -1}, {Fn: "avg", Col: 0}})
	rows, err := CollectRows(context.Background(), agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0].Int64() != 0 || !rows[0][1].Null {
		t.Fatalf("empty agg: %v", rows)
	}
}

func TestVolcanoJoin(t *testing.T) {
	left := testTable(t, 10, -1)
	rightSchema := types.NewSchema(types.Col("g", types.Int64), types.Col("label", types.String))
	right := NewHeapTable(rightSchema, -1)
	for g := 0; g < 3; g++ { // groups 3,4 unmatched
		right.Insert([]types.Value{types.NewInt64(int64(g)), types.NewString("G" + string(rune('0'+g)))})
	}
	j := NewHashJoinRow(NewTableScan(left), NewTableScan(right), []int{1}, []int{0})
	rows, err := CollectRows(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // ids 0..9 with grp<3: grp0:0,5 grp1:1,6 grp2:2,7
		t.Fatalf("join rows: %d", len(rows))
	}
	for _, r := range rows {
		if r[1].Int64() != r[4].Int64() {
			t.Fatalf("key mismatch: %v", r)
		}
	}
}

func TestVolcanoJoinNullKeys(t *testing.T) {
	schema := types.NewSchema(types.Col("k", types.Int64.Null()))
	l := NewHeapTable(schema, -1)
	l.Insert([]types.Value{types.NewNull(types.KindInt64)})
	l.Insert([]types.Value{types.NewInt64(1)})
	r := NewHeapTable(schema, -1)
	r.Insert([]types.Value{types.NewInt64(1)})
	j := NewHashJoinRow(NewTableScan(l), NewTableScan(r), []int{0}, []int{0})
	rows, err := CollectRows(context.Background(), j)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("NULL keys must not join: %v", rows)
	}
}

func TestVolcanoSortLimit(t *testing.T) {
	tab := testTable(t, 100, -1)
	sorted := NewSortRow(NewTableScan(tab), []SortKeyRow{{Col: 1}, {Col: 0, Desc: true}})
	lim := NewLimitRow(sorted, 3)
	rows, err := CollectRows(context.Background(), lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][1].Int64() != 0 || rows[0][0].Int64() != 95 {
		t.Fatalf("sort/limit: %v", rows)
	}
}

func TestVolcanoCancellation(t *testing.T) {
	tab := testTable(t, 50000, -1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	agg := NewAggRow(NewTableScan(tab), nil, []RowAggSpec{{Fn: "count", Col: -1}})
	if _, err := CollectRows(ctx, agg); err == nil {
		t.Fatal("cancelled row plan completed")
	}
}
