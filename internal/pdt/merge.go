package pdt

import (
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// BatchSource is a positional batch stream: every batch comes with the
// image position of its first row. The colstore Scanner satisfies it, and
// Merger satisfies it too — which is what lets PDT layers stack (stable →
// read-PDT image → write-PDT image).
type BatchSource interface {
	// Next fills b and returns the position of its first row, or done.
	Next(b *vec.Batch) (start int64, n int, done bool, err error)
	// Kinds describes the produced vectors.
	Kinds() []types.Kind
}

// Merger merges a PDT snapshot into a positional stream: deletes are
// filtered with a selection vector, modifies patch values (copy-on-write),
// inserts are spliced in order. Batches without deltas pass through
// zero-copy — the common fast path that keeps merge overhead near zero for
// mostly-clean tables (experiment E5 measures this).
type Merger struct {
	src   BatchSource
	kinds []types.Kind
	ops   []Op
	cur   int   // next op to apply
	outAt int64 // image position of the next row we will emit

	selBuf  []int32
	spliced *vec.Batch
	in      *vec.Batch // private input batch: the caller's batch aliases our
	// output buffers between calls, so the source must never fill it directly
}

// NewMerger wraps src with the deltas of p (snapshotted at call time).
func NewMerger(src BatchSource, p *PDT) *Merger {
	mMergeScans.Inc()
	return &Merger{src: src, kinds: src.Kinds(), ops: p.Ops()}
}

// NewMergerOps is NewMerger over a pre-flattened snapshot.
func NewMergerOps(src BatchSource, ops []Op) *Merger {
	mMergeScans.Inc()
	return &Merger{src: src, kinds: src.Kinds(), ops: ops}
}

// Kinds implements BatchSource.
func (m *Merger) Kinds() []types.Kind { return m.kinds }

// Next implements BatchSource: emits the merged image in order. The
// caller's batch is overwritten to alias merger-owned storage, valid until
// the next call.
func (m *Merger) Next(b *vec.Batch) (int64, int, bool, error) {
	if m.in == nil {
		m.in = vec.NewBatch(m.kinds, vec.DefaultSize)
	}
	for {
		srcStart, n, done, err := m.src.Next(m.in)
		if err != nil {
			return 0, 0, false, err
		}
		if done {
			// Emit any trailing inserts (anchored at or beyond the end).
			if m.cur < len(m.ops) {
				return m.emitTail(b)
			}
			return 0, 0, true, nil
		}
		// Ops overlapping [srcStart, srcStart+n): ops are SID-sorted and we
		// consume them monotonically.
		lo := m.cur
		hi := lo
		for hi < len(m.ops) && m.ops[hi].SID < srcStart+int64(n) {
			hi++
		}
		if lo == hi {
			// Fast path: untouched range passes through.
			start := m.outAt
			m.outAt += int64(n)
			*b = *m.in
			return start, n, false, nil
		}
		start := m.outAt
		out := m.mergeRange(m.in, srcStart, n, m.ops[lo:hi])
		m.cur = hi
		m.outAt += int64(out.Rows())
		mMergeRows.Add(int64(out.Rows()))
		*b = *out
		if out.Rows() == 0 {
			continue // everything in range was deleted; pull more input
		}
		return start, out.Rows(), false, nil
	}
}

// mergeRange applies ops (all with SID within the batch's logical rows) to
// the batch. Logical row i of the batch has image position srcStart+i; the
// batch may carry a selection vector from a lower merge layer.
func (m *Merger) mergeRange(b *vec.Batch, srcStart int64, n int, ops []Op) *vec.Batch {
	hasIns, hasMod := false, false
	for _, op := range ops {
		switch op.Kind {
		case OpIns:
			hasIns = true
		case OpMod:
			hasMod = true
		}
	}
	if !hasIns {
		del := map[int64]bool{}
		var mods []Op
		for _, op := range ops {
			if op.Kind == OpDel {
				del[op.SID] = true
			} else if op.Kind == OpMod {
				mods = append(mods, op)
			}
		}
		if m.selBuf == nil {
			// Never nil: an empty selection means "no rows", nil means
			// "all rows".
			m.selBuf = make([]int32, 0, n)
		}
		if !hasMod {
			// Deletes only: narrow the selection vector, zero copy.
			m.selBuf = m.selBuf[:0]
			for i := 0; i < n; i++ {
				if !del[srcStart+int64(i)] {
					m.selBuf = append(m.selBuf, int32(b.RowIndex(i)))
				}
			}
			b.Sel = m.selBuf
			return b
		}
		// Modifies (and maybe deletes): copy-on-write into a dense batch.
		out := m.cow(b, n)
		for _, op := range mods {
			at := int(op.SID - srcStart)
			for c, v := range op.Mods {
				out.Vecs[c].Set(at, v)
			}
		}
		m.selBuf = m.selBuf[:0]
		for i := 0; i < n; i++ {
			if !del[srcStart+int64(i)] {
				m.selBuf = append(m.selBuf, int32(i))
			}
		}
		out.Sel = m.selBuf
		if len(m.selBuf) == n {
			out.Sel = nil
		}
		return out
	}
	// Slow path with inserts: assemble row-wise in image order.
	out := m.splicedBatch(n + len(ops))
	oi := 0
	k := 0
	for i := 0; i <= n; i++ {
		sid := srcStart + int64(i)
		// Inserts anchored before logical row i.
		for k < len(ops) && ops[k].SID == sid && ops[k].Kind == OpIns {
			for c, v := range ops[k].Row {
				out.Vecs[c].Set(oi, v)
			}
			oi++
			k++
		}
		if i == n {
			break
		}
		deleted := false
		var mods map[int]types.Value
		for k < len(ops) && ops[k].SID == sid {
			switch ops[k].Kind {
			case OpDel:
				deleted = true
			case OpMod:
				mods = ops[k].Mods
			}
			k++
		}
		if deleted {
			continue
		}
		p := b.RowIndex(i)
		for c := range out.Vecs {
			out.Vecs[c].Set(oi, b.Vecs[c].Get(p))
		}
		for c, v := range mods {
			out.Vecs[c].Set(oi, v)
		}
		oi++
	}
	out.SetLen(oi)
	out.Sel = nil
	return out
}

// cow compacts the batch's logical rows into the merger's own dense batch
// so modifies don't scribble on the scanner's decode buffers.
func (m *Merger) cow(b *vec.Batch, n int) *vec.Batch {
	out := m.splicedBatch(n)
	for c := range b.Vecs {
		out.Vecs[c].CopyFrom(b.Vecs[c], b.Sel, n)
	}
	out.SetLen(n)
	out.Sel = nil
	return out
}

func (m *Merger) splicedBatch(capHint int) *vec.Batch {
	if m.spliced == nil {
		m.spliced = vec.NewBatch(m.kinds, capHint)
	}
	m.spliced.Reset()
	for _, v := range m.spliced.Vecs {
		v.Grow(capHint)
	}
	m.spliced.SetLen(capHint)
	return m.spliced
}

// emitTail produces the inserts anchored at the table end.
func (m *Merger) emitTail(b *vec.Batch) (int64, int, bool, error) {
	ops := m.ops[m.cur:]
	out := m.splicedBatch(len(ops))
	oi := 0
	for _, op := range ops {
		if op.Kind == OpIns {
			for c, v := range op.Row {
				out.Vecs[c].Set(oi, v)
			}
			oi++
		}
	}
	m.cur = len(m.ops)
	if oi == 0 {
		return 0, 0, true, nil
	}
	out.SetLen(oi)
	start := m.outAt
	m.outAt += int64(oi)
	*b = *out
	return start, oi, false, nil
}
