// Package pdt implements Positional Delta Trees (Héman, Zukowski, Nes,
// Sidirourgos, Boncz; SIGMOD 2010): the differential update structure
// underneath Vectorwise transactions (paper claims C4 and "Transactions").
//
// A PDT records inserts, deletes and modifies against an immutable
// *stable* table image, keyed by position. Two position spaces exist:
//
//   - SID (stable ID): a row's position in the stable table,
//   - RID (row ID): a row's position in the current image (stable + PDT).
//
// The tree is a counted AVL ordered by image position; every subtree
// carries its insert/delete counts, so RID↔SID arithmetic is O(log d) for
// d deltas, and updates are O(log d) too. Scans merge the PDT with the
// stable stream positionally — no key lookups, which is exactly why the
// scheme is column-store friendly.
//
// PDTs layer: a transaction's private write-PDT sits on top of the shared
// read-PDT, whose image in turn overlays the stable table. Propagation
// replays one layer's ops onto the layer below (see Propagate and the txn
// package).
package pdt

import (
	"fmt"

	"vectorwise/internal/types"
)

// OpKind classifies a delta.
type OpKind uint8

// The delta kinds.
const (
	// OpIns is a row insertion anchored before stable row SID.
	OpIns OpKind = iota
	// OpDel deletes stable row SID.
	OpDel
	// OpMod modifies columns of stable row SID.
	OpMod
)

// Op is one delta in image order, as exposed by Ops() snapshots.
type Op struct {
	Kind OpKind
	SID  int64
	Row  []types.Value       // OpIns: the full new row
	Mods map[int]types.Value // OpMod: column → new value
}

type node struct {
	kind OpKind
	sid  int64
	row  []types.Value
	mods map[int]types.Value

	left, right *node
	height      int
	ins, del    int // subtree totals (including self)
}

// PDT is a positional delta tree. The zero value is NOT usable; call New.
type PDT struct {
	root *node
	ops  int
}

// New creates an empty PDT.
func New() *PDT { return &PDT{} }

// Len returns the number of delta ops.
func (p *PDT) Len() int { return p.ops }

// Delta returns inserts-minus-deletes: how much the image size differs from
// the stable size.
func (p *PDT) Delta() int64 {
	if p.root == nil {
		return 0
	}
	return int64(p.root.ins - p.root.del)
}

// ImageRows returns the visible row count over a stable table of the given
// size.
func (p *PDT) ImageRows(stableRows int64) int64 { return stableRows + p.Delta() }

// --- node helpers ---

func h(n *node) int {
	if n == nil {
		return 0
	}
	return n.height
}

func insOf(n *node) int {
	if n == nil {
		return 0
	}
	return n.ins
}

func delOf(n *node) int {
	if n == nil {
		return 0
	}
	return n.del
}

func (n *node) selfIns() int {
	if n.kind == OpIns {
		return 1
	}
	return 0
}

func (n *node) selfDel() int {
	if n.kind == OpDel {
		return 1
	}
	return 0
}

func (n *node) update() {
	n.height = 1 + max(h(n.left), h(n.right))
	n.ins = insOf(n.left) + insOf(n.right) + n.selfIns()
	n.del = delOf(n.left) + delOf(n.right) + n.selfDel()
}

func rotateRight(y *node) *node {
	x := y.left
	y.left = x.right
	x.right = y
	y.update()
	x.update()
	return x
}

func rotateLeft(x *node) *node {
	y := x.right
	x.right = y.left
	y.left = x
	x.update()
	y.update()
	return y
}

func rebalance(n *node) *node {
	n.update()
	switch bf := h(n.left) - h(n.right); {
	case bf > 1:
		if h(n.left.left) < h(n.left.right) {
			n.left = rotateLeft(n.left)
		}
		return rotateRight(n)
	case bf < -1:
		if h(n.right.right) < h(n.right.left) {
			n.right = rotateRight(n.right)
		}
		return rotateLeft(n)
	}
	return n
}

// pos computes a node's image position given the insert/delete counts of
// everything before it (ancestors' left context plus its own left subtree).
func (n *node) pos(ia, da int) int64 {
	return n.sid + int64(ia+insOf(n.left)) - int64(da+delOf(n.left))
}

// --- location ---

// locKind says what an image RID resolved to.
type locKind uint8

const (
	locStable locKind = iota // untouched stable row
	locIns                   // a PDT-inserted row
	locMod                   // a modified stable row
)

type location struct {
	kind locKind
	sid  int64 // stable row (locStable / locMod)
	nd   *node // locIns / locMod node
}

// locate resolves image position rid.
func (p *PDT) locate(rid int64) location {
	n := p.root
	ia, da := 0, 0
	for n != nil {
		pos := n.pos(ia, da)
		switch {
		case rid < pos:
			n = n.left
		case rid == pos && n.kind == OpIns:
			return location{kind: locIns, nd: n, sid: n.sid}
		case rid == pos && n.kind == OpMod:
			return location{kind: locMod, nd: n, sid: n.sid}
		default:
			// rid > pos, or rid == pos at a delete (the deleted stable row
			// is invisible; this position belongs to a later row).
			ia += insOf(n.left) + n.selfIns()
			da += delOf(n.left) + n.selfDel()
			n = n.right
		}
	}
	return location{kind: locStable, sid: rid - int64(ia) + int64(da)}
}

// SIDForRID maps an image position to the stable row it shows, or -1 for
// inserted rows; exported for tests and the txn layer's conflict checks.
func (p *PDT) SIDForRID(rid int64) int64 {
	loc := p.locate(rid)
	if loc.kind == locIns {
		return -1
	}
	return loc.sid
}

// Resolve maps an image position to (stable SID, whether the row is a
// PDT insert). For inserts the returned SID is the insert's anchor.
func (p *PDT) Resolve(rid int64) (sid int64, inserted bool) {
	loc := p.locate(rid)
	return loc.sid, loc.kind == locIns
}

// --- updates ---

// InsertAt inserts a row so that it appears at image position rid.
func (p *PDT) InsertAt(rid int64, row []types.Value) error {
	if rid < 0 {
		return fmt.Errorf("pdt: insert at negative position %d", rid)
	}
	r := make([]types.Value, len(row))
	copy(r, row)
	nn := &node{kind: OpIns, row: r, height: 1, ins: 1}
	p.root = insertByRID(p.root, nn, rid, 0, 0)
	p.ops++
	mInserts.Inc()
	return nil
}

// insertByRID descends by image position; the new insert lands before
// whatever currently occupies rid. The anchor SID is assigned at the leaf.
func insertByRID(n, nn *node, rid int64, ia, da int) *node {
	if n == nil {
		nn.sid = rid - int64(ia) + int64(da)
		return nn
	}
	pos := n.pos(ia, da)
	goLeft := rid < pos
	if rid == pos {
		// Land before an insert or modified row at this position; a delete
		// at this position covers an invisible row, keep going right.
		goLeft = n.kind != OpDel
	}
	if goLeft {
		n.left = insertByRID(n.left, nn, rid, ia, da)
	} else {
		n.right = insertByRID(n.right, nn, rid,
			ia+insOf(n.left)+n.selfIns(), da+delOf(n.left)+n.selfDel())
	}
	return rebalance(n)
}

// DeleteAt removes the row at image position rid.
func (p *PDT) DeleteAt(rid int64) error {
	if rid < 0 {
		return fmt.Errorf("pdt: delete at negative position %d", rid)
	}
	loc := p.locate(rid)
	switch loc.kind {
	case locIns:
		// The inserted row vanishes entirely.
		p.root = removeInsByRID(p.root, rid, 0, 0)
		p.ops--
		return nil
	case locMod:
		// The modify becomes a delete of the same stable row.
		loc.nd.kind = OpDel
		loc.nd.mods = nil
		refreshAggregates(p.root)
		mDeletes.Inc()
		return nil
	default:
		nn := &node{kind: OpDel, sid: loc.sid, height: 1, del: 1}
		p.root = insertBySID(p.root, nn)
		p.ops++
		mDeletes.Inc()
		return nil
	}
}

// ModifyAt changes one column of the row at image position rid.
func (p *PDT) ModifyAt(rid int64, col int, v types.Value) error {
	if rid < 0 {
		return fmt.Errorf("pdt: modify at negative position %d", rid)
	}
	loc := p.locate(rid)
	switch loc.kind {
	case locIns:
		loc.nd.row[col] = v
		return nil
	case locMod:
		loc.nd.mods[col] = v
		return nil
	default:
		nn := &node{kind: OpMod, sid: loc.sid, height: 1,
			mods: map[int]types.Value{col: v}}
		p.root = insertBySID(p.root, nn)
		p.ops++
		mModifies.Inc()
		return nil
	}
}

// insertBySID places a delete/modify node for a stable row: after all
// inserts anchored at the same SID, in SID order relative to other
// stable-row ops.
func insertBySID(n, nn *node) *node {
	if n == nil {
		return nn
	}
	// Go left only if the new op's stable row strictly precedes n's anchor;
	// at equal SID, inserts (anchored before the row) sort first, so the
	// del/mod goes right.
	if nn.sid < n.sid {
		n.left = insertBySID(n.left, nn)
	} else {
		n.right = insertBySID(n.right, nn)
	}
	return rebalance(n)
}

// --- SID-anchored redo APIs ---
//
// Commit-time propagation (see the txn package) replays a transaction's
// ops onto the shared read-PDT *by stable SID*, which is invariant under
// concurrent commits — no positional rebasing needed.

// InsertAtSID inserts a row anchored immediately before stable row sid,
// after any inserts already anchored there (commit order).
func (p *PDT) InsertAtSID(sid int64, row []types.Value) {
	r := make([]types.Value, len(row))
	copy(r, row)
	nn := &node{kind: OpIns, sid: sid, row: r, height: 1, ins: 1}
	p.root = insertInsBySID(p.root, nn)
	p.ops++
	mInserts.Inc()
}

// insertInsBySID keeps the same-SID ordering invariant: inserts (in arrival
// order) strictly before the del/mod node of that SID.
func insertInsBySID(n, nn *node) *node {
	if n == nil {
		return nn
	}
	goLeft := nn.sid < n.sid || (nn.sid == n.sid && n.kind != OpIns)
	if goLeft {
		n.left = insertInsBySID(n.left, nn)
	} else {
		n.right = insertInsBySID(n.right, nn)
	}
	return rebalance(n)
}

// findStableOp returns the del/mod node for stable row sid, if any.
func (p *PDT) findStableOp(sid int64) *node {
	n := p.root
	for n != nil {
		switch {
		case sid < n.sid:
			n = n.left
		case sid > n.sid:
			n = n.right
		default:
			if n.kind != OpIns {
				return n
			}
			// Inserts at this SID sort before the del/mod; keep right.
			n = n.right
		}
	}
	return nil
}

// DeleteAtSID marks stable row sid deleted. Deleting an already-deleted row
// is an error (the txn layer's conflict check prevents it).
func (p *PDT) DeleteAtSID(sid int64) error {
	if nd := p.findStableOp(sid); nd != nil {
		if nd.kind == OpDel {
			return fmt.Errorf("pdt: stable row %d already deleted", sid)
		}
		nd.kind = OpDel
		nd.mods = nil
		refreshAggregates(p.root)
		mDeletes.Inc()
		return nil
	}
	nn := &node{kind: OpDel, sid: sid, height: 1, del: 1}
	p.root = insertBySID(p.root, nn)
	p.ops++
	mDeletes.Inc()
	return nil
}

// ModifyAtSID updates one column of stable row sid.
func (p *PDT) ModifyAtSID(sid int64, col int, v types.Value) error {
	if nd := p.findStableOp(sid); nd != nil {
		if nd.kind == OpDel {
			return fmt.Errorf("pdt: stable row %d is deleted", sid)
		}
		nd.mods[col] = v
		return nil
	}
	nn := &node{kind: OpMod, sid: sid, height: 1, mods: map[int]types.Value{col: v}}
	p.root = insertBySID(p.root, nn)
	p.ops++
	mModifies.Inc()
	return nil
}

// StableDeleted reports whether stable row sid is marked deleted.
func (p *PDT) StableDeleted(sid int64) bool {
	nd := p.findStableOp(sid)
	return nd != nil && nd.kind == OpDel
}

// removeInsByRID deletes the insert node at image position rid, navigating
// by the same positional arithmetic as locate.
func removeInsByRID(n *node, rid int64, ia, da int) *node {
	if n == nil {
		return nil // caller guaranteed existence via locate
	}
	pos := n.pos(ia, da)
	switch {
	case rid < pos:
		n.left = removeInsByRID(n.left, rid, ia, da)
	case rid == pos && n.kind == OpIns:
		return spliceOut(n)
	default:
		n.right = removeInsByRID(n.right, rid,
			ia+insOf(n.left)+n.selfIns(), da+delOf(n.left)+n.selfDel())
	}
	return rebalance(n)
}

// spliceOut removes the root of a subtree, promoting its in-order successor.
func spliceOut(n *node) *node {
	if n.left == nil {
		return n.right
	}
	if n.right == nil {
		return n.left
	}
	// Pull up the leftmost node of the right subtree.
	var succ *node
	n.right, succ = popLeftmost(n.right)
	succ.left = n.left
	succ.right = n.right
	return rebalance(succ)
}

func popLeftmost(n *node) (*node, *node) {
	if n.left == nil {
		return n.right, n
	}
	var leftmost *node
	n.left, leftmost = popLeftmost(n.left)
	return rebalance(n), leftmost
}

// refreshAggregates recomputes subtree counts after an in-place kind change.
func refreshAggregates(n *node) {
	if n == nil {
		return
	}
	refreshAggregates(n.left)
	refreshAggregates(n.right)
	n.update()
}

// Ops returns the deltas as a flat, in-order snapshot (SID-ascending).
func (p *PDT) Ops() []Op {
	out := make([]Op, 0, p.ops)
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		op := Op{Kind: n.kind, SID: n.sid}
		if n.kind == OpIns {
			op.Row = n.row
		}
		if n.kind == OpMod {
			op.Mods = n.mods
		}
		out = append(out, op)
		walk(n.right)
	}
	walk(p.root)
	return out
}

// Clone returns a structural copy sharing no mutable nodes; snapshots for
// readers while writers continue (the read-PDT versioning trick).
func (p *PDT) Clone() *PDT {
	var cp func(n *node) *node
	cp = func(n *node) *node {
		if n == nil {
			return nil
		}
		nn := *n
		if n.row != nil {
			nn.row = append([]types.Value(nil), n.row...)
		}
		if n.mods != nil {
			nn.mods = make(map[int]types.Value, len(n.mods))
			for k, v := range n.mods {
				nn.mods[k] = v
			}
		}
		nn.left = cp(n.left)
		nn.right = cp(n.right)
		return &nn
	}
	return &PDT{root: cp(p.root), ops: p.ops}
}

// Propagate replays src's ops (positions in src's own image space — i.e.
// the image *over* dst) onto dst: the write-PDT → read-PDT merge at commit,
// and equally the read-PDT → stable merge during checkpoints.
//
// Correctness relies on replaying in the same logical order the ops were
// made visible: an Ops() snapshot is already in image order, and positions
// in it are stable under later ops in the same snapshot... they are not —
// so positions are adjusted while replaying: an insert at position q shifts
// later positions up by one, a delete shifts them down. The snapshot's SIDs
// are positions in dst's image *before any of src's ops*, so the running
// adjustment restores each op's intended location.
func Propagate(dst *PDT, src *PDT) error {
	shift := int64(0)
	for _, op := range src.Ops() {
		switch op.Kind {
		case OpIns:
			if err := dst.InsertAt(op.SID+shift, op.Row); err != nil {
				return err
			}
			shift++
		case OpDel:
			if err := dst.DeleteAt(op.SID + shift); err != nil {
				return err
			}
			shift--
		case OpMod:
			for c, v := range op.Mods {
				if err := dst.ModifyAt(op.SID+shift, c, v); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
