package pdt

import "vectorwise/internal/metrics"

// Delta-tree instruments: how much differential state queries carry and how
// often merge-scans have to reconcile it. Updated with single atomic adds
// on the mutation and merge paths.
var (
	mInserts    = metrics.Default.Counter("pdt_inserts_total")
	mDeletes    = metrics.Default.Counter("pdt_deletes_total")
	mModifies   = metrics.Default.Counter("pdt_modifies_total")
	mMergeScans = metrics.Default.Counter("pdt_merge_scans_total")
	mMergeRows  = metrics.Default.Counter("pdt_merge_rows_total")
)
