package pdt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// naiveImage is the reference model: a plain slice of rows that every PDT
// operation is checked against.
type naiveImage struct {
	rows [][]types.Value
}

func newNaive(stable []int64) *naiveImage {
	n := &naiveImage{}
	for _, v := range stable {
		n.rows = append(n.rows, []types.Value{types.NewInt64(v)})
	}
	return n
}

func (n *naiveImage) insert(at int64, row []types.Value) {
	n.rows = append(n.rows, nil)
	copy(n.rows[at+1:], n.rows[at:])
	r := append([]types.Value(nil), row...)
	n.rows[at] = r
}

func (n *naiveImage) delete(at int64) {
	n.rows = append(n.rows[:at], n.rows[at+1:]...)
}

func (n *naiveImage) modify(at int64, col int, v types.Value) {
	n.rows[at] = append([]types.Value(nil), n.rows[at]...)
	n.rows[at][col] = v
}

// sliceSource replays stable rows as a BatchSource.
type sliceSource struct {
	vals  []int64
	at    int
	batch int
}

func (s *sliceSource) Kinds() []types.Kind { return []types.Kind{types.KindInt64} }

func (s *sliceSource) Next(b *vec.Batch) (int64, int, bool, error) {
	if s.at >= len(s.vals) {
		return 0, 0, true, nil
	}
	n := s.batch
	if rem := len(s.vals) - s.at; n > rem {
		n = rem
	}
	b.Vecs[0].Grow(n)
	b.Sel = nil
	for i := 0; i < n; i++ {
		b.Vecs[0].I64[i] = s.vals[s.at+i]
	}
	b.SetLen(n)
	start := int64(s.at)
	s.at += n
	return start, n, false, nil
}

func mergeAll(t *testing.T, stable []int64, p *PDT, batch int) []int64 {
	t.Helper()
	src := &sliceSource{vals: stable, batch: batch}
	m := NewMerger(src, p)
	out := vec.NewBatch(m.Kinds(), 0)
	var got []int64
	var wantStart int64
	for {
		start, n, done, err := m.Next(out)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		if start != wantStart {
			t.Fatalf("batch start %d, want %d", start, wantStart)
		}
		wantStart += int64(n)
		for i := 0; i < n; i++ {
			got = append(got, out.Vecs[0].Get(out.RowIndex(i)).Int64())
		}
	}
	return got
}

func checkImage(t *testing.T, stable []int64, p *PDT, model *naiveImage) {
	t.Helper()
	for _, batch := range []int{3, 7, 64} {
		got := mergeAll(t, stable, p, batch)
		if len(got) != len(model.rows) {
			t.Fatalf("batch=%d: image size %d, want %d", batch, len(got), len(model.rows))
		}
		for i := range got {
			if got[i] != model.rows[i][0].Int64() {
				t.Fatalf("batch=%d row %d: %d want %d", batch, i, got[i], model.rows[i][0].Int64())
			}
		}
	}
	if p.ImageRows(int64(len(stable))) != int64(len(model.rows)) {
		t.Fatalf("ImageRows %d, want %d", p.ImageRows(int64(len(stable))), len(model.rows))
	}
}

func stableVals(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i * 100)
	}
	return out
}

func row(v int64) []types.Value { return []types.Value{types.NewInt64(v)} }

func TestInsertBasics(t *testing.T) {
	stable := stableVals(5)
	p := New()
	model := newNaive(stable)
	// Insert at front, middle, end.
	for _, at := range []int64{0, 3, 7} {
		if err := p.InsertAt(at, row(-at-1)); err != nil {
			t.Fatal(err)
		}
		model.insert(at, row(-at-1))
	}
	checkImage(t, stable, p, model)
	if p.Len() != 3 || p.Delta() != 3 {
		t.Fatalf("len=%d delta=%d", p.Len(), p.Delta())
	}
}

func TestDeleteBasics(t *testing.T) {
	stable := stableVals(6)
	p := New()
	model := newNaive(stable)
	p.DeleteAt(2)
	model.delete(2)
	p.DeleteAt(2) // deletes what shifted into position 2
	model.delete(2)
	p.DeleteAt(0)
	model.delete(0)
	checkImage(t, stable, p, model)
	if p.Delta() != -3 {
		t.Fatalf("delta=%d", p.Delta())
	}
}

func TestModifyBasics(t *testing.T) {
	stable := stableVals(4)
	p := New()
	model := newNaive(stable)
	p.ModifyAt(1, 0, types.NewInt64(111))
	model.modify(1, 0, types.NewInt64(111))
	p.ModifyAt(1, 0, types.NewInt64(222)) // re-modify same row
	model.modify(1, 0, types.NewInt64(222))
	checkImage(t, stable, p, model)
}

func TestInsertThenDeleteInsert(t *testing.T) {
	stable := stableVals(3)
	p := New()
	model := newNaive(stable)
	p.InsertAt(1, row(-1))
	model.insert(1, row(-1))
	// Deleting the inserted row removes the op entirely.
	p.DeleteAt(1)
	model.delete(1)
	if p.Len() != 0 {
		t.Fatalf("ops=%d after insert+delete", p.Len())
	}
	checkImage(t, stable, p, model)
}

func TestModifyInsertedAndDeleteModified(t *testing.T) {
	stable := stableVals(3)
	p := New()
	model := newNaive(stable)
	p.InsertAt(2, row(-7))
	model.insert(2, row(-7))
	p.ModifyAt(2, 0, types.NewInt64(-8)) // modify own insert in place
	model.modify(2, 0, types.NewInt64(-8))
	if p.Len() != 1 {
		t.Fatalf("modify of insert must not add ops: %d", p.Len())
	}
	p.ModifyAt(0, 0, types.NewInt64(5))
	model.modify(0, 0, types.NewInt64(5))
	p.DeleteAt(0) // delete a modified stable row: mod → del
	model.delete(0)
	checkImage(t, stable, p, model)
}

func TestSIDMapping(t *testing.T) {
	p := New()
	p.InsertAt(3, row(-1)) // image: 0 1 2 [ins] 3 4 ...
	p.DeleteAt(6)          // deletes stable row 5
	if sid := p.SIDForRID(0); sid != 0 {
		t.Fatalf("rid0 → %d", sid)
	}
	if sid := p.SIDForRID(3); sid != -1 {
		t.Fatalf("rid3 (insert) → %d", sid)
	}
	if sid := p.SIDForRID(4); sid != 3 {
		t.Fatalf("rid4 → %d", sid)
	}
	if sid := p.SIDForRID(6); sid != 6 { // 5 deleted: rid6 shows stable 6
		t.Fatalf("rid6 → %d", sid)
	}
	sid, ins := p.Resolve(3)
	if !ins || sid != 3 {
		t.Fatalf("resolve insert: %d %v", sid, ins)
	}
	if !p.StableDeleted(5) || p.StableDeleted(4) {
		t.Fatal("StableDeleted wrong")
	}
}

func TestSIDAnchoredAPIs(t *testing.T) {
	stable := stableVals(5)
	p := New()
	model := newNaive(stable)
	p.InsertAtSID(2, row(-1))
	model.insert(2, row(-1))
	p.InsertAtSID(2, row(-2)) // second insert at same anchor: after the first
	model.insert(3, row(-2))
	if err := p.DeleteAtSID(4); err != nil {
		t.Fatal(err)
	}
	model.delete(6) // stable row 4 is at image position 6 now
	if err := p.ModifyAtSID(0, 0, types.NewInt64(42)); err != nil {
		t.Fatal(err)
	}
	model.modify(0, 0, types.NewInt64(42))
	checkImage(t, stable, p, model)
	if err := p.DeleteAtSID(4); err == nil {
		t.Fatal("double delete by SID accepted")
	}
	if err := p.ModifyAtSID(4, 0, types.NewInt64(1)); err == nil {
		t.Fatal("modify of deleted row accepted")
	}
	// Modify then delete via SID APIs.
	if err := p.ModifyAtSID(1, 0, types.NewInt64(7)); err != nil {
		t.Fatal(err)
	}
	if err := p.DeleteAtSID(1); err != nil {
		t.Fatal(err)
	}
	model.modify(1, 0, types.NewInt64(7))
	model.delete(1)
	checkImage(t, stable, p, model)
}

func TestSIDMappingStable(t *testing.T) { // rid mapping with no deltas
	p := New()
	if sid := p.SIDForRID(7); sid != 7 {
		t.Fatalf("identity mapping broken: %d", sid)
	}
}

func TestClone(t *testing.T) {
	stable := stableVals(5)
	p := New()
	p.InsertAt(2, row(-1))
	p.ModifyAt(0, 0, types.NewInt64(9))
	c := p.Clone()
	p.DeleteAt(4)
	p.ModifyAt(0, 0, types.NewInt64(10))
	// The clone is unaffected.
	model := newNaive(stable)
	model.insert(2, row(-1))
	model.modify(0, 0, types.NewInt64(9))
	checkImage(t, stable, c, model)
}

func TestPropagate(t *testing.T) {
	stable := stableVals(8)
	read := New()
	read.InsertAt(2, row(-1))
	read.DeleteAt(5)
	model := newNaive(stable)
	model.insert(2, row(-1))
	model.delete(5)

	// A write-PDT built over the read image.
	write := New()
	write.InsertAt(0, row(-100))
	model.insert(0, row(-100))
	write.DeleteAt(3)
	model.delete(3)
	write.ModifyAt(4, 0, types.NewInt64(77))
	model.modify(4, 0, types.NewInt64(77))
	write.InsertAt(8, row(-200))
	model.insert(8, row(-200))

	if err := Propagate(read, write); err != nil {
		t.Fatal(err)
	}
	checkImage(t, stable, read, model)
}

// Property: random op sequences keep the PDT image identical to the naive
// model, under multiple merge batch sizes.
func TestRandomOpsAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		nStable := 20 + rng.Intn(80)
		stable := stableVals(nStable)
		p := New()
		model := newNaive(stable)
		nOps := 100 + rng.Intn(100)
		for o := 0; o < nOps; o++ {
			size := int64(len(model.rows))
			switch op := rng.Intn(3); {
			case op == 0 || size == 0: // insert
				at := rng.Int63n(size + 1)
				v := int64(-(trial*1000 + o))
				p.InsertAt(at, row(v))
				model.insert(at, row(v))
			case op == 1: // delete
				at := rng.Int63n(size)
				p.DeleteAt(at)
				model.delete(at)
			default: // modify
				at := rng.Int63n(size)
				v := types.NewInt64(int64(trial*1000000 + o))
				p.ModifyAt(at, 0, v)
				model.modify(at, 0, v)
			}
		}
		checkImage(t, stable, p, model)
	}
}

// Property: Propagate(empty ← ops) equals applying ops directly.
func TestPropagateEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stable := stableVals(30)
		read := New()
		// Seed the read layer.
		read.InsertAt(int64(rng.Intn(31)), row(-1))
		read.DeleteAt(int64(rng.Intn(30)))
		snapshot := read.Clone()

		write := New()
		model := mergeVals(stable, snapshot)
		for o := 0; o < 20; o++ {
			size := int64(len(model))
			switch op := rng.Intn(3); {
			case op == 0 || size == 0:
				at := rng.Int63n(size + 1)
				write.InsertAt(at, row(int64(-100-o)))
				model = insertVal(model, at, int64(-100-o))
			case op == 1:
				at := rng.Int63n(size)
				write.DeleteAt(at)
				model = append(model[:at], model[at+1:]...)
			default:
				at := rng.Int63n(size)
				write.ModifyAt(at, 0, types.NewInt64(int64(o*7)))
				model[at] = int64(o * 7)
			}
		}
		if err := Propagate(read, write); err != nil {
			return false
		}
		got := mergeVals(stable, read)
		if len(got) != len(model) {
			return false
		}
		for i := range got {
			if got[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func mergeVals(stable []int64, p *PDT) []int64 {
	src := &sliceSource{vals: stable, batch: 16}
	m := NewMerger(src, p)
	out := vec.NewBatch(m.Kinds(), 0)
	var got []int64
	for {
		_, n, done, err := m.Next(out)
		if err != nil || done {
			break
		}
		for i := 0; i < n; i++ {
			got = append(got, out.Vecs[0].Get(out.RowIndex(i)).Int64())
		}
	}
	return got
}

func insertVal(s []int64, at int64, v int64) []int64 {
	s = append(s, 0)
	copy(s[at+1:], s[at:])
	s[at] = v
	return s
}

func TestMergerStacking(t *testing.T) {
	stable := stableVals(10)
	read := New()
	read.DeleteAt(0)
	read.InsertAt(4, row(-5))
	model := newNaive(stable)
	model.delete(0)
	model.insert(4, row(-5))

	write := New()
	write.ModifyAt(4, 0, types.NewInt64(99)) // modifies the read-inserted row
	model.modify(4, 0, types.NewInt64(99))
	write.InsertAt(0, row(-9))
	model.insert(0, row(-9))
	write.DeleteAt(10)
	model.delete(10)

	src := &sliceSource{vals: stable, batch: 4}
	m1 := NewMerger(src, read)
	m2 := NewMerger(m1, write)
	out := vec.NewBatch(m2.Kinds(), 0)
	var got []int64
	for {
		_, n, done, err := m2.Next(out)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		for i := 0; i < n; i++ {
			got = append(got, out.Vecs[0].Get(out.RowIndex(i)).Int64())
		}
	}
	if len(got) != len(model.rows) {
		t.Fatalf("stacked image size %d want %d", len(got), len(model.rows))
	}
	for i := range got {
		if got[i] != model.rows[i][0].Int64() {
			t.Fatalf("stacked row %d: %d want %d", i, got[i], model.rows[i][0].Int64())
		}
	}
}

func TestEmptyPDTPassThrough(t *testing.T) {
	stable := stableVals(100)
	p := New()
	got := mergeAll(t, stable, p, 32)
	if len(got) != 100 || got[99] != 9900 {
		t.Fatal("pass-through broken")
	}
}

func TestOpsSnapshotOrdering(t *testing.T) {
	p := New()
	p.InsertAt(5, row(-1))
	p.DeleteAt(2)
	p.ModifyAt(0, 0, types.NewInt64(1))
	ops := p.Ops()
	if len(ops) != 3 {
		t.Fatalf("ops: %d", len(ops))
	}
	for i := 1; i < len(ops); i++ {
		if ops[i-1].SID > ops[i].SID {
			t.Fatalf("ops not SID-sorted: %v", ops)
		}
	}
}
