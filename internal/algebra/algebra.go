// Package algebra defines the X100 algebra: the physical operator tree the
// cross compiler emits and the Vectorwise rewriter transforms before the
// kernel executes it. Expressions reuse internal/expr with positional
// column references.
//
// Before the rewriter's NULL-decomposition pass, schemas may still carry
// NULLable columns and expressions may use the logical NULL functions
// (isnull, ifnull, …); afterwards every column is a plain physical vector
// and the engine's plan builder (internal/engine) can instantiate kernel
// operators directly.
package algebra

import (
	"fmt"
	"strings"

	"vectorwise/internal/expr"
	"vectorwise/internal/types"
)

// Node is an algebra operator.
type Node interface {
	// Schema returns the output columns.
	Schema() *types.Schema
	// Children returns the inputs.
	Children() []Node
	// WithChildren rebuilds with new inputs.
	WithChildren(ch []Node) Node
	// Line renders this node (one line, children excluded).
	Line() string
}

// ScanRange restricts scan output column Col to the inclusive interval
// [Lo, Hi] (nil = open side) for min/max block skipping. The exact filter
// remains a Select above the scan; the range only prunes row groups.
type ScanRange struct {
	Col    int
	Lo, Hi *types.Value
}

// String renders the range for plan display.
func (r ScanRange) String() string { return types.FormatRange("$", r.Col, r.Lo, r.Hi) }

// GroupWindow is the contiguous row-group interval [Lo, Hi) of Total groups
// a clustered range scan expects to touch (ordered zone-map pruning). A
// planning hint only: scans re-derive the window against their own storage
// snapshot at open time.
type GroupWindow struct {
	Lo, Hi, Total int
}

// String renders the window for plan display.
func (w GroupWindow) String() string {
	return fmt.Sprintf("groups=[%d,%d)/%d", w.Lo, w.Hi, w.Total)
}

// Scan reads columns of a stable table. In parallel plans the parallelizer
// clones the scan into P morsel workers: all clones share MorselID (one
// run-time work queue of row-group morsels) and each carries its Worker
// slot. Morsels == 0 means a plain serial scan.
type Scan struct {
	Table     string
	Structure string
	Cols      []string // physical column names requested
	Out       *types.Schema
	// Morsels is the worker count of the morsel queue this scan belongs to
	// (0 = serial); MorselID links sibling workers to the same queue and
	// Worker is this clone's slot in it.
	Morsels  int
	MorselID int
	Worker   int
	// Ranges are sargable block-skipping bounds on output columns. Value
	// columns keep their positions through NULL decomposition, so the
	// rewriter carries them unchanged.
	Ranges []ScanRange
	// Window is the clustered group interval implied by Ranges, when a
	// range column is clustered (nil otherwise).
	Window *GroupWindow
}

// Schema implements Node.
func (s *Scan) Schema() *types.Schema { return s.Out }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// WithChildren implements Node.
func (s *Scan) WithChildren(ch []Node) Node { return s }

// Line implements Node.
func (s *Scan) Line() string {
	part := ""
	if s.Morsels > 1 {
		part = fmt.Sprintf(" morsel worker %d/%d", s.Worker, s.Morsels)
	}
	rng := ""
	if len(s.Ranges) > 0 {
		parts := make([]string, len(s.Ranges))
		for i, r := range s.Ranges {
			parts[i] = r.String()
		}
		rng = ", ranges=[" + strings.Join(parts, ", ") + "]"
	}
	if s.Window != nil {
		rng += ", " + s.Window.String()
	}
	return fmt.Sprintf("Scan('%s', [%s]%s%s)", s.Table, strings.Join(s.Cols, ", "), part, rng)
}

// Select filters by a boolean expression.
type Select struct {
	Child Node
	Pred  expr.Expr
}

// Schema implements Node.
func (s *Select) Schema() *types.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Child} }

// WithChildren implements Node.
func (s *Select) WithChildren(ch []Node) Node { return &Select{Child: ch[0], Pred: s.Pred} }

// Line implements Node.
func (s *Select) Line() string { return "Select(" + s.Pred.String() + ")" }

// Project computes expressions.
type Project struct {
	Child Node
	Exprs []expr.Expr
	Names []string
}

// Schema implements Node.
func (p *Project) Schema() *types.Schema {
	s := &types.Schema{}
	for i, e := range p.Exprs {
		s.Cols = append(s.Cols, types.Col(p.Names[i], e.Type()))
	}
	return s
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// WithChildren implements Node.
func (p *Project) WithChildren(ch []Node) Node {
	return &Project{Child: ch[0], Exprs: p.Exprs, Names: p.Names}
}

// Line implements Node.
func (p *Project) Line() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = p.Names[i] + "=" + e.String()
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// AggItem is one aggregate over a child column.
type AggItem struct {
	Fn  string // count, sum, min, max, avg
	Col int    // -1 for count(*)
}

// Aggr groups and aggregates.
type Aggr struct {
	Child     Node
	GroupCols []int
	Aggs      []AggItem
	Names     []string
}

// Schema implements Node.
func (a *Aggr) Schema() *types.Schema {
	in := a.Child.Schema()
	s := &types.Schema{}
	for i, g := range a.GroupCols {
		c := in.Cols[g]
		c.Name = a.Names[i]
		s.Cols = append(s.Cols, c)
	}
	for i, it := range a.Aggs {
		var t types.T
		switch it.Fn {
		case "count":
			t = types.Int64
		case "avg":
			t = types.Float64
		case "sum":
			if in.Cols[it.Col].Type.Kind == types.KindFloat64 {
				t = types.Float64
			} else {
				t = types.Int64
			}
			t.Nullable = in.Cols[it.Col].Type.Nullable
		default:
			t = in.Cols[it.Col].Type
		}
		s.Cols = append(s.Cols, types.Col(a.Names[len(a.GroupCols)+i], t))
	}
	return s
}

// Children implements Node.
func (a *Aggr) Children() []Node { return []Node{a.Child} }

// WithChildren implements Node.
func (a *Aggr) WithChildren(ch []Node) Node {
	return &Aggr{Child: ch[0], GroupCols: a.GroupCols, Aggs: a.Aggs, Names: a.Names}
}

// Line implements Node.
func (a *Aggr) Line() string {
	var aggs []string
	for _, it := range a.Aggs {
		if it.Col < 0 {
			aggs = append(aggs, it.Fn+"(*)")
		} else {
			aggs = append(aggs, fmt.Sprintf("%s($%d)", it.Fn, it.Col))
		}
	}
	return fmt.Sprintf("Aggr(groups=%v, [%s])", a.GroupCols, strings.Join(aggs, ", "))
}

// JoinKind mirrors the kernel's join types.
type JoinKind uint8

// The algebra join kinds.
const (
	Inner JoinKind = iota
	LeftOuter
	Semi
	Anti
	AntiNullAware
)

// String names the kind.
func (k JoinKind) String() string {
	return [...]string{"inner", "leftouter", "semi", "anti", "antinull"}[k]
}

// HashJoin joins on key-column equality. After NULL decomposition,
// LeftKeyNull/RightKeyNull point at indicator columns for the null-aware
// anti join (-1 otherwise).
type HashJoin struct {
	Left, Right  Node
	Kind         JoinKind
	LeftKeys     []int
	RightKeys    []int
	LeftKeyNull  int
	RightKeyNull int
	// WithMatch exposes the LeftOuter match indicator as a trailing BOOL
	// column (set by the rewriter's decomposition pass).
	WithMatch bool
}

// Schema implements Node.
func (j *HashJoin) Schema() *types.Schema {
	s := &types.Schema{}
	s.Cols = append(s.Cols, j.Left.Schema().Cols...)
	switch j.Kind {
	case Semi, Anti, AntiNullAware:
		return s
	case LeftOuter:
		for _, c := range j.Right.Schema().Cols {
			if !j.WithMatch {
				c.Type = c.Type.Null()
			}
			s.Cols = append(s.Cols, c)
		}
		if j.WithMatch {
			s.Cols = append(s.Cols, types.Col("$match", types.Bool))
		}
		return s
	default:
		s.Cols = append(s.Cols, j.Right.Schema().Cols...)
		return s
	}
}

// Children implements Node.
func (j *HashJoin) Children() []Node { return []Node{j.Left, j.Right} }

// WithChildren implements Node.
func (j *HashJoin) WithChildren(ch []Node) Node {
	out := *j
	out.Left, out.Right = ch[0], ch[1]
	return &out
}

// Line implements Node.
func (j *HashJoin) Line() string {
	return fmt.Sprintf("HashJoin%s(lk=%v, rk=%v)", j.Kind, j.LeftKeys, j.RightKeys)
}

// SortKey orders by one column.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort orders rows.
type Sort struct {
	Child Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() *types.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// WithChildren implements Node.
func (s *Sort) WithChildren(ch []Node) Node { return &Sort{Child: ch[0], Keys: s.Keys} }

// Line implements Node.
func (s *Sort) Line() string { return fmt.Sprintf("Sort(%v)", s.Keys) }

// TopN is Sort fused with a row limit.
type TopN struct {
	Child Node
	Keys  []SortKey
	N     int64
}

// Schema implements Node.
func (t *TopN) Schema() *types.Schema { return t.Child.Schema() }

// Children implements Node.
func (t *TopN) Children() []Node { return []Node{t.Child} }

// WithChildren implements Node.
func (t *TopN) WithChildren(ch []Node) Node { return &TopN{Child: ch[0], Keys: t.Keys, N: t.N} }

// Line implements Node.
func (t *TopN) Line() string { return fmt.Sprintf("TopN(%v, %d)", t.Keys, t.N) }

// Limit caps output.
type Limit struct {
	Child  Node
	Offset int64
	N      int64
}

// Schema implements Node.
func (l *Limit) Schema() *types.Schema { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// WithChildren implements Node.
func (l *Limit) WithChildren(ch []Node) Node {
	return &Limit{Child: ch[0], Offset: l.Offset, N: l.N}
}

// Line implements Node.
func (l *Limit) Line() string { return fmt.Sprintf("Limit(%d, %d)", l.Offset, l.N) }

// UnionAll concatenates children.
type UnionAll struct{ Kids []Node }

// Schema implements Node.
func (u *UnionAll) Schema() *types.Schema { return u.Kids[0].Schema() }

// Children implements Node.
func (u *UnionAll) Children() []Node { return u.Kids }

// WithChildren implements Node.
func (u *UnionAll) WithChildren(ch []Node) Node { return &UnionAll{Kids: ch} }

// Line implements Node.
func (u *UnionAll) Line() string { return fmt.Sprintf("UnionAll(%d)", len(u.Kids)) }

// XchgUnion merges children executed in parallel goroutines — the
// Volcano-style exchange the rewriter's parallelizer inserts (claim C9).
type XchgUnion struct{ Kids []Node }

// Schema implements Node.
func (x *XchgUnion) Schema() *types.Schema { return x.Kids[0].Schema() }

// Children implements Node.
func (x *XchgUnion) Children() []Node { return x.Kids }

// WithChildren implements Node.
func (x *XchgUnion) WithChildren(ch []Node) Node { return &XchgUnion{Kids: ch} }

// Line implements Node.
func (x *XchgUnion) Line() string { return fmt.Sprintf("XchgUnion(%d)", len(x.Kids)) }

// XchgMerge is the order-preserving exchange: each child is a parallel
// fragment already sorted on Keys (a per-worker local sort or top-N) and
// the merge keeps the union globally sorted — how the parallelizer
// parallelizes Sort and TopN without a serial re-sort.
type XchgMerge struct {
	Kids []Node
	Keys []SortKey
}

// Schema implements Node.
func (x *XchgMerge) Schema() *types.Schema { return x.Kids[0].Schema() }

// Children implements Node.
func (x *XchgMerge) Children() []Node { return x.Kids }

// WithChildren implements Node.
func (x *XchgMerge) WithChildren(ch []Node) Node { return &XchgMerge{Kids: ch, Keys: x.Keys} }

// Line implements Node.
func (x *XchgMerge) Line() string { return fmt.Sprintf("XchgMerge(%d, %v)", len(x.Kids), x.Keys) }

// ParallelHashJoin is a hash join whose build side runs once (shared by
// every worker) while P probe fragments — morsel-scan chains — probe it
// concurrently, merged by an exchange union. Children are [Build,
// Probes...]; the probe fragments all share the probe-side schema.
type ParallelHashJoin struct {
	Build        Node
	Probes       []Node
	Kind         JoinKind
	LeftKeys     []int
	RightKeys    []int
	LeftKeyNull  int
	RightKeyNull int
	WithMatch    bool
}

// Schema implements Node: identical to the equivalent serial HashJoin.
func (j *ParallelHashJoin) Schema() *types.Schema {
	eq := &HashJoin{Left: j.Probes[0], Right: j.Build, Kind: j.Kind,
		WithMatch: j.WithMatch}
	return eq.Schema()
}

// Children implements Node.
func (j *ParallelHashJoin) Children() []Node {
	return append([]Node{j.Build}, j.Probes...)
}

// WithChildren implements Node.
func (j *ParallelHashJoin) WithChildren(ch []Node) Node {
	out := *j
	out.Build = ch[0]
	out.Probes = ch[1:]
	return &out
}

// Line implements Node.
func (j *ParallelHashJoin) Line() string {
	return fmt.Sprintf("ParallelHashJoin%s(lk=%v, rk=%v, probes=%d)",
		j.Kind, j.LeftKeys, j.RightKeys, len(j.Probes))
}

// Values is a literal relation.
type Values struct {
	Rows [][]types.Value
	Out  *types.Schema
}

// Schema implements Node.
func (v *Values) Schema() *types.Schema { return v.Out }

// Children implements Node.
func (v *Values) Children() []Node { return nil }

// WithChildren implements Node.
func (v *Values) WithChildren(ch []Node) Node { return v }

// Line implements Node.
func (v *Values) Line() string { return fmt.Sprintf("Values(%d)", len(v.Rows)) }

// Format renders the algebra tree in indented X100 style.
func Format(n Node) string {
	var b strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Line())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}

// Walk visits the tree prefix-order.
func Walk(n Node, f func(Node) bool) {
	if !f(n) {
		return
	}
	for _, c := range n.Children() {
		Walk(c, f)
	}
}
