package algebra

import (
	"strings"
	"testing"

	"vectorwise/internal/expr"
	"vectorwise/internal/types"
)

func testScan() *Scan {
	return &Scan{Table: "t", Structure: "vectorwise", Cols: []string{"a", "b"},
		Out: types.NewSchema(types.Col("a", types.Int64), types.Col("b", types.Float64))}
}

func TestSchemaPropagation(t *testing.T) {
	s := testScan()
	sel := &Select{Child: s, Pred: expr.NewCall(">", expr.Col(0, "a", types.Int64), expr.CInt(1))}
	if sel.Schema().Len() != 2 {
		t.Fatal("select schema")
	}
	proj := &Project{Child: sel,
		Exprs: []expr.Expr{expr.NewCall("*", expr.Col(1, "b", types.Float64), expr.CFloat(2))},
		Names: []string{"bb"}}
	ps := proj.Schema()
	if ps.Len() != 1 || ps.Cols[0].Name != "bb" || ps.Cols[0].Type.Kind != types.KindFloat64 {
		t.Fatalf("project schema: %s", ps)
	}
	agg := &Aggr{Child: proj, GroupCols: nil,
		Aggs:  []AggItem{{Fn: "count", Col: -1}, {Fn: "sum", Col: 0}, {Fn: "avg", Col: 0}},
		Names: []string{"c", "s", "a"}}
	as := agg.Schema()
	if as.Cols[0].Type.Kind != types.KindInt64 || as.Cols[1].Type.Kind != types.KindFloat64 ||
		as.Cols[2].Type.Kind != types.KindFloat64 {
		t.Fatalf("aggr schema: %s", as)
	}
}

func TestJoinSchemas(t *testing.T) {
	l, r := testScan(), testScan()
	inner := &HashJoin{Left: l, Right: r, Kind: Inner, LeftKeys: []int{0}, RightKeys: []int{0}}
	if inner.Schema().Len() != 4 {
		t.Fatal("inner schema")
	}
	semi := &HashJoin{Left: l, Right: r, Kind: Semi, LeftKeys: []int{0}, RightKeys: []int{0}}
	if semi.Schema().Len() != 2 {
		t.Fatal("semi schema")
	}
	lo := &HashJoin{Left: l, Right: r, Kind: LeftOuter, LeftKeys: []int{0}, RightKeys: []int{0}}
	s := lo.Schema()
	if s.Len() != 4 || !s.Cols[2].Type.Nullable {
		t.Fatalf("leftouter schema: %s", s)
	}
	lo.WithMatch = true
	s = lo.Schema()
	if s.Len() != 5 || s.Cols[4].Name != "$match" || s.Cols[2].Type.Nullable {
		t.Fatalf("leftouter+match schema: %s", s)
	}
}

func TestFormatAndWalk(t *testing.T) {
	s := testScan()
	plan := &Limit{Child: &Sort{Child: s, Keys: []SortKey{{Col: 0, Desc: true}}}, N: 5}
	f := Format(plan)
	for _, want := range []string{"Limit(0, 5)", "Sort(", "Scan('t', [a, b])"} {
		if !strings.Contains(f, want) {
			t.Fatalf("format missing %q:\n%s", want, f)
		}
	}
	count := 0
	Walk(plan, func(Node) bool { count++; return true })
	if count != 3 {
		t.Fatalf("walk visited %d", count)
	}
	// Morsel-worker scan renders its slot.
	ps := testScan()
	ps.Worker, ps.Morsels = 2, 4
	if !strings.Contains(ps.Line(), "morsel worker 2/4") {
		t.Fatalf("scan line: %s", ps.Line())
	}
}

func TestWithChildrenRebuild(t *testing.T) {
	s := testScan()
	sel := &Select{Child: s, Pred: expr.CBool(true)}
	s2 := testScan()
	rebuilt := sel.WithChildren([]Node{s2}).(*Select)
	if rebuilt.Child != s2 || rebuilt.Pred != sel.Pred {
		t.Fatal("WithChildren broken")
	}
	u := &UnionAll{Kids: []Node{s, s2}}
	if u.WithChildren([]Node{s2, s}).(*UnionAll).Kids[0] != s2 {
		t.Fatal("union WithChildren")
	}
}
