package vec

// Selection-vector helpers. A selection vector is a sorted []int32 of
// physical row positions; nil denotes the identity selection.

// Identity fills dst with 0..n-1 and returns it (allocating when needed).
func Identity(dst []int32, n int) []int32 {
	if cap(dst) < n {
		dst = make([]int32, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = int32(i)
	}
	return dst
}

// AndSel intersects two selection vectors (both sorted ascending); either
// may be nil meaning "first n rows". The result is written into dst.
func AndSel(dst, a, b []int32, n int) []int32 {
	if a == nil && b == nil {
		return Identity(dst, n)
	}
	if a == nil {
		return append(dst[:0], b...)
	}
	if b == nil {
		return append(dst[:0], a...)
	}
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// OrSel unions two sorted selection vectors into dst; either operand may be
// nil meaning "first n rows" (in which case the union is also everything).
func OrSel(dst, a, b []int32, n int) []int32 {
	if a == nil || b == nil {
		return Identity(dst, n)
	}
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	dst = append(dst, a[i:]...)
	dst = append(dst, b[j:]...)
	return dst
}

// Invert produces positions in [0,n) absent from sel (sel sorted ascending).
// Used by NOT and by anti-join selection logic.
func Invert(dst, sel []int32, n int) []int32 {
	dst = dst[:0]
	j := 0
	for i := int32(0); int(i) < n; i++ {
		if j < len(sel) && sel[j] == i {
			j++
			continue
		}
		dst = append(dst, i)
	}
	return dst
}
