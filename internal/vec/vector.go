// Package vec provides the core data structures of vectorized execution:
// typed value vectors, selection vectors and batches. A batch of ~1024
// values per column is the unit of work flowing between operators — large
// enough to amortize interpretation overhead, small enough to stay resident
// in the CPU cache. This is the central design of X100 [Boncz, Zukowski,
// Nes, CIDR 2005] that the paper's first claim (">10x faster than
// conventional engines") rests on.
package vec

import (
	"fmt"

	"vectorwise/internal/types"
)

// DefaultSize is the default number of values per vector. X100's experiments
// put the optimum around 1K values; experiment E2 reproduces that sweep.
const DefaultSize = 1024

// Vector is a fixed-capacity, variable-length array of values of one
// physical kind. Only the slice matching Kind is non-nil. DATE values live
// in I32, making all date primitives plain int32 loops.
type Vector struct {
	Kind types.Kind
	n    int

	Bool []bool
	I32  []int32
	I64  []int64
	F64  []float64
	Str  []string
}

// New allocates a vector of the given kind with capacity capHint.
func New(kind types.Kind, capHint int) *Vector {
	v := &Vector{Kind: kind}
	switch kind {
	case types.KindBool:
		v.Bool = make([]bool, capHint)
	case types.KindInt32, types.KindDate:
		v.I32 = make([]int32, capHint)
	case types.KindInt64:
		v.I64 = make([]int64, capHint)
	case types.KindFloat64:
		v.F64 = make([]float64, capHint)
	case types.KindString:
		v.Str = make([]string, capHint)
	default:
		panic(fmt.Sprintf("vec: cannot allocate vector of kind %v", kind))
	}
	return v
}

// Len returns the number of live values.
func (v *Vector) Len() int { return v.n }

// SetLen sets the number of live values; it must not exceed capacity.
func (v *Vector) SetLen(n int) {
	if n > v.Cap() {
		panic(fmt.Sprintf("vec: SetLen(%d) beyond capacity %d", n, v.Cap()))
	}
	v.n = n
}

// Cap returns the allocated capacity.
func (v *Vector) Cap() int {
	switch v.Kind {
	case types.KindBool:
		return len(v.Bool)
	case types.KindInt32, types.KindDate:
		return len(v.I32)
	case types.KindInt64:
		return len(v.I64)
	case types.KindFloat64:
		return len(v.F64)
	case types.KindString:
		return len(v.Str)
	default:
		return 0
	}
}

// Grow ensures capacity of at least n, preserving contents.
func (v *Vector) Grow(n int) {
	if v.Cap() >= n {
		return
	}
	switch v.Kind {
	case types.KindBool:
		nb := make([]bool, n)
		copy(nb, v.Bool)
		v.Bool = nb
	case types.KindInt32, types.KindDate:
		ni := make([]int32, n)
		copy(ni, v.I32)
		v.I32 = ni
	case types.KindInt64:
		ni := make([]int64, n)
		copy(ni, v.I64)
		v.I64 = ni
	case types.KindFloat64:
		nf := make([]float64, n)
		copy(nf, v.F64)
		v.F64 = nf
	case types.KindString:
		ns := make([]string, n)
		copy(ns, v.Str)
		v.Str = ns
	}
}

// Get boxes value i; for tests, result rendering and slow paths only.
func (v *Vector) Get(i int) types.Value {
	switch v.Kind {
	case types.KindBool:
		return types.NewBool(v.Bool[i])
	case types.KindInt32:
		return types.NewInt32(v.I32[i])
	case types.KindDate:
		return types.NewDate(v.I32[i])
	case types.KindInt64:
		return types.NewInt64(v.I64[i])
	case types.KindFloat64:
		return types.NewFloat64(v.F64[i])
	case types.KindString:
		return types.NewString(v.Str[i])
	default:
		panic("vec: Get on invalid vector")
	}
}

// Set stores boxed value val at position i; slow path (loads, literals).
func (v *Vector) Set(i int, val types.Value) {
	switch v.Kind {
	case types.KindBool:
		v.Bool[i] = val.Bool()
	case types.KindInt32, types.KindDate:
		v.I32[i] = int32(val.I64)
	case types.KindInt64:
		v.I64[i] = val.I64
	case types.KindFloat64:
		if val.Kind == types.KindFloat64 {
			v.F64[i] = val.F64
		} else {
			v.F64[i] = val.AsFloat()
		}
	case types.KindString:
		v.Str[i] = val.Str
	default:
		panic("vec: Set on invalid vector")
	}
}

// Append adds a boxed value at the end, growing if needed; slow path.
func (v *Vector) Append(val types.Value) {
	if v.n == v.Cap() {
		n := v.Cap() * 2
		if n < 16 {
			n = 16
		}
		v.Grow(n)
	}
	v.Set(v.n, val)
	v.n++
}

// Fill sets positions [0,n) to the boxed value and the length to n; used to
// materialize constant vectors.
func (v *Vector) Fill(val types.Value, n int) {
	v.Grow(n)
	switch v.Kind {
	case types.KindBool:
		b := val.Bool()
		for i := 0; i < n; i++ {
			v.Bool[i] = b
		}
	case types.KindInt32, types.KindDate:
		x := int32(val.I64)
		for i := 0; i < n; i++ {
			v.I32[i] = x
		}
	case types.KindInt64:
		for i := 0; i < n; i++ {
			v.I64[i] = val.I64
		}
	case types.KindFloat64:
		f := val.F64
		if val.Kind != types.KindFloat64 {
			f = val.AsFloat()
		}
		for i := 0; i < n; i++ {
			v.F64[i] = f
		}
	case types.KindString:
		for i := 0; i < n; i++ {
			v.Str[i] = val.Str
		}
	}
	v.n = n
}

// CopyFrom copies src[sel[i]] (or src[i] when sel is nil) into v[0..], sets
// v's length and returns it. This is the "materialize through selection
// vector" kernel used when an operator needs densely packed output.
func (v *Vector) CopyFrom(src *Vector, sel []int32, n int) *Vector {
	v.Grow(n)
	if sel == nil {
		switch v.Kind {
		case types.KindBool:
			copy(v.Bool[:n], src.Bool[:n])
		case types.KindInt32, types.KindDate:
			copy(v.I32[:n], src.I32[:n])
		case types.KindInt64:
			copy(v.I64[:n], src.I64[:n])
		case types.KindFloat64:
			copy(v.F64[:n], src.F64[:n])
		case types.KindString:
			copy(v.Str[:n], src.Str[:n])
		}
	} else {
		switch v.Kind {
		case types.KindBool:
			for i := 0; i < n; i++ {
				v.Bool[i] = src.Bool[sel[i]]
			}
		case types.KindInt32, types.KindDate:
			for i := 0; i < n; i++ {
				v.I32[i] = src.I32[sel[i]]
			}
		case types.KindInt64:
			for i := 0; i < n; i++ {
				v.I64[i] = src.I64[sel[i]]
			}
		case types.KindFloat64:
			for i := 0; i < n; i++ {
				v.F64[i] = src.F64[sel[i]]
			}
		case types.KindString:
			for i := 0; i < n; i++ {
				v.Str[i] = src.Str[sel[i]]
			}
		}
	}
	v.n = n
	return v
}

// GatherFrom appends src[idx[i]] for each index, used by join result
// construction (fetch build-side columns by match row id).
func (v *Vector) GatherFrom(src *Vector, idx []int32) {
	base := v.n
	n := len(idx)
	v.Grow(base + n)
	switch v.Kind {
	case types.KindBool:
		for i, j := range idx {
			v.Bool[base+i] = src.Bool[j]
		}
	case types.KindInt32, types.KindDate:
		for i, j := range idx {
			v.I32[base+i] = src.I32[j]
		}
	case types.KindInt64:
		for i, j := range idx {
			v.I64[base+i] = src.I64[j]
		}
	case types.KindFloat64:
		for i, j := range idx {
			v.F64[base+i] = src.F64[j]
		}
	case types.KindString:
		for i, j := range idx {
			v.Str[base+i] = src.Str[j]
		}
	}
	v.n = base + n
}

// AppendVector appends all live values of src.
func (v *Vector) AppendVector(src *Vector) {
	base := v.n
	n := src.n
	v.Grow(base + n)
	switch v.Kind {
	case types.KindBool:
		copy(v.Bool[base:], src.Bool[:n])
	case types.KindInt32, types.KindDate:
		copy(v.I32[base:], src.I32[:n])
	case types.KindInt64:
		copy(v.I64[base:], src.I64[:n])
	case types.KindFloat64:
		copy(v.F64[base:], src.F64[:n])
	case types.KindString:
		copy(v.Str[base:], src.Str[:n])
	}
	v.n = base + n
}

// Reset truncates the vector to zero length without releasing storage.
func (v *Vector) Reset() { v.n = 0 }

// String renders a short debug form.
func (v *Vector) String() string {
	s := fmt.Sprintf("%v[%d]{", v.Kind, v.n)
	for i := 0; i < v.n && i < 8; i++ {
		if i > 0 {
			s += " "
		}
		s += v.Get(i).String()
	}
	if v.n > 8 {
		s += " …"
	}
	return s + "}"
}
