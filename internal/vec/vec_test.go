package vec

import (
	"testing"
	"testing/quick"

	"vectorwise/internal/types"
)

func TestNewAllKinds(t *testing.T) {
	for _, k := range []types.Kind{types.KindBool, types.KindInt32, types.KindInt64,
		types.KindFloat64, types.KindString, types.KindDate} {
		v := New(k, 8)
		if v.Cap() != 8 || v.Len() != 0 {
			t.Errorf("New(%v) cap=%d len=%d", k, v.Cap(), v.Len())
		}
	}
}

func TestNewInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(types.KindInvalid, 4)
}

func TestSetGetRoundTrip(t *testing.T) {
	vals := []types.Value{
		types.NewBool(true), types.NewInt32(-5), types.NewInt64(1 << 40),
		types.NewFloat64(3.25), types.NewString("xyz"), types.NewDate(12345),
	}
	for _, val := range vals {
		v := New(val.Kind, 4)
		v.SetLen(1)
		v.Set(0, val)
		got := v.Get(0)
		if got.String() != val.String() {
			t.Errorf("roundtrip %v: got %v", val, got)
		}
	}
}

func TestAppendGrows(t *testing.T) {
	v := New(types.KindInt64, 2)
	for i := 0; i < 100; i++ {
		v.Append(types.NewInt64(int64(i)))
	}
	if v.Len() != 100 {
		t.Fatalf("len = %d", v.Len())
	}
	for i := 0; i < 100; i++ {
		if v.I64[i] != int64(i) {
			t.Fatalf("v[%d] = %d", i, v.I64[i])
		}
	}
}

func TestFill(t *testing.T) {
	v := New(types.KindFloat64, 0)
	v.Fill(types.NewInt64(7), 10) // cross-kind fill promotes to float
	if v.Len() != 10 || v.F64[9] != 7.0 {
		t.Fatalf("fill: %v", v)
	}
	s := New(types.KindString, 0)
	s.Fill(types.NewString("ab"), 3)
	if s.Str[2] != "ab" {
		t.Fatal("string fill")
	}
}

func TestCopyFromWithSel(t *testing.T) {
	src := New(types.KindInt32, 8)
	src.SetLen(8)
	for i := range src.I32 {
		src.I32[i] = int32(i * 10)
	}
	dst := New(types.KindInt32, 0)
	dst.CopyFrom(src, []int32{1, 3, 5}, 3)
	if dst.Len() != 3 || dst.I32[0] != 10 || dst.I32[1] != 30 || dst.I32[2] != 50 {
		t.Fatalf("CopyFrom sel: %v", dst)
	}
	dst2 := New(types.KindInt32, 0)
	dst2.CopyFrom(src, nil, 4)
	if dst2.Len() != 4 || dst2.I32[3] != 30 {
		t.Fatalf("CopyFrom dense: %v", dst2)
	}
}

func TestGatherAppend(t *testing.T) {
	src := New(types.KindString, 4)
	src.SetLen(4)
	copy(src.Str, []string{"a", "b", "c", "d"})
	dst := New(types.KindString, 0)
	dst.GatherFrom(src, []int32{3, 0})
	dst.GatherFrom(src, []int32{2})
	if dst.Len() != 3 || dst.Str[0] != "d" || dst.Str[1] != "a" || dst.Str[2] != "c" {
		t.Fatalf("gather: %v", dst.Str[:3])
	}
	dst.AppendVector(src)
	if dst.Len() != 7 || dst.Str[6] != "d" {
		t.Fatalf("append vector: %v", dst.Str[:dst.Len()])
	}
}

func TestSetLenBeyondCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(types.KindInt64, 2).SetLen(3)
}

func TestBatchBasics(t *testing.T) {
	s := types.NewSchema(types.Col("a", types.Int64), types.Col("b", types.String))
	b := NewBatchFromSchema(s, 4)
	b.SetLen(3)
	b.Vecs[0].I64[0], b.Vecs[0].I64[1], b.Vecs[0].I64[2] = 10, 20, 30
	b.Vecs[1].Str[0], b.Vecs[1].Str[1], b.Vecs[1].Str[2] = "x", "y", "z"
	if b.Rows() != 3 || b.Full() != 3 {
		t.Fatal("rows")
	}
	b.Sel = []int32{0, 2}
	if b.Rows() != 2 || b.RowIndex(1) != 2 {
		t.Fatal("sel rows")
	}
	row := b.GetRow(1)
	if row[0].Int64() != 30 || row[1].Str != "z" {
		t.Fatalf("GetRow: %v", row)
	}
}

func TestBatchCompactClone(t *testing.T) {
	b := NewBatch([]types.Kind{types.KindInt32}, 5)
	b.SetLen(5)
	for i := range b.Vecs[0].I32 {
		b.Vecs[0].I32[i] = int32(i)
	}
	b.Sel = []int32{1, 4}
	c := b.Clone()
	b.Compact()
	if b.Sel != nil || b.Rows() != 2 || b.Vecs[0].I32[0] != 1 || b.Vecs[0].I32[1] != 4 {
		t.Fatalf("compact: %v", b.Vecs[0].I32[:b.Rows()])
	}
	if c.Rows() != 2 || c.Vecs[0].I32[1] != 4 {
		t.Fatalf("clone: %v", c)
	}
	// Clone must not alias.
	c.Vecs[0].I32[0] = 99
	if b.Vecs[0].I32[0] == 99 {
		t.Fatal("clone aliases original")
	}
}

func TestIdentity(t *testing.T) {
	s := Identity(nil, 4)
	if len(s) != 4 || s[3] != 3 {
		t.Fatalf("identity: %v", s)
	}
	s2 := Identity(s, 2)
	if len(s2) != 2 {
		t.Fatal("identity reuse")
	}
}

func TestAndSel(t *testing.T) {
	a := []int32{0, 2, 4, 6}
	b := []int32{2, 3, 4, 7}
	got := AndSel(nil, a, b, 8)
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("and: %v", got)
	}
	if got := AndSel(nil, nil, b, 8); len(got) != 4 {
		t.Fatalf("and nil a: %v", got)
	}
	if got := AndSel(nil, a, nil, 8); len(got) != 4 {
		t.Fatalf("and nil b: %v", got)
	}
	if got := AndSel(nil, nil, nil, 3); len(got) != 3 {
		t.Fatalf("and nil nil: %v", got)
	}
}

func TestInvert(t *testing.T) {
	got := Invert(nil, []int32{1, 3}, 5)
	want := []int32{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("invert: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("invert: %v", got)
		}
	}
}

// Property: Invert(Invert(sel)) == sel for sorted unique selections.
func TestInvertInvolution(t *testing.T) {
	f := func(mask uint16) bool {
		var sel []int32
		for i := 0; i < 16; i++ {
			if mask&(1<<i) != 0 {
				sel = append(sel, int32(i))
			}
		}
		inv := Invert(nil, sel, 16)
		back := Invert(nil, inv, 16)
		if len(back) != len(sel) {
			return false
		}
		for i := range sel {
			if back[i] != sel[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
