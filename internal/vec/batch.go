package vec

import (
	"fmt"

	"vectorwise/internal/types"
)

// Batch is the unit of data flow between vectorized operators: a set of
// parallel vectors plus an optional selection vector. When Sel is non-nil,
// only the positions it lists are logically present; operators pass
// selection vectors downstream instead of copying data (the X100 approach
// to cheap filters).
type Batch struct {
	Vecs []*Vector
	Sel  []int32 // nil means "all n rows selected"
	n    int     // physical row count in each vector
}

// NewBatch allocates a batch with one vector per kind, each with capacity
// capHint.
func NewBatch(kinds []types.Kind, capHint int) *Batch {
	b := &Batch{Vecs: make([]*Vector, len(kinds))}
	for i, k := range kinds {
		b.Vecs[i] = New(k, capHint)
	}
	return b
}

// NewBatchFromSchema allocates a batch shaped like a schema. NULLable
// logical columns are the rewriter's concern — at the batch level every
// column is a plain physical vector.
func NewBatchFromSchema(s *types.Schema, capHint int) *Batch {
	kinds := make([]types.Kind, s.Len())
	for i, c := range s.Cols {
		kinds[i] = c.Type.Kind
	}
	return NewBatch(kinds, capHint)
}

// Rows returns the logical row count (after selection).
func (b *Batch) Rows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// Full returns the physical row count (before selection).
func (b *Batch) Full() int { return b.n }

// SetLen sets the physical row count and propagates it to every vector.
func (b *Batch) SetLen(n int) {
	b.n = n
	for _, v := range b.Vecs {
		v.SetLen(n)
	}
}

// ForceLen sets the physical row count without touching the vectors; for
// callers that assembled the vectors themselves (aliasing, projections).
func (b *Batch) ForceLen(n int) { b.n = n }

// Reset clears the batch for reuse: zero rows, no selection.
func (b *Batch) Reset() {
	b.n = 0
	b.Sel = nil
	for _, v := range b.Vecs {
		v.Reset()
	}
}

// RowIndex maps a logical row to its physical position.
func (b *Batch) RowIndex(i int) int {
	if b.Sel != nil {
		return int(b.Sel[i])
	}
	return i
}

// GetRow boxes logical row i; slow path for results and tests.
func (b *Batch) GetRow(i int) []types.Value {
	p := b.RowIndex(i)
	out := make([]types.Value, len(b.Vecs))
	for c, v := range b.Vecs {
		out[c] = v.Get(p)
	}
	return out
}

// Compact materializes the selection vector: rows are copied so that the
// batch becomes dense and Sel becomes nil. Operators that buffer data (sort,
// hash build) call this before retaining vectors.
func (b *Batch) Compact() {
	if b.Sel == nil {
		return
	}
	n := len(b.Sel)
	for i, v := range b.Vecs {
		nv := New(v.Kind, n)
		nv.CopyFrom(v, b.Sel, n)
		b.Vecs[i] = nv
	}
	b.n = n
	b.Sel = nil
}

// Clone deep-copies the batch (including materializing any selection).
func (b *Batch) Clone() *Batch {
	out := &Batch{Vecs: make([]*Vector, len(b.Vecs)), n: b.Rows()}
	sel := b.Sel
	for i, v := range b.Vecs {
		nv := New(v.Kind, b.Rows())
		nv.CopyFrom(v, sel, b.Rows())
		out.Vecs[i] = nv
	}
	return out
}

// String renders a short debug form.
func (b *Batch) String() string {
	return fmt.Sprintf("Batch{cols=%d rows=%d sel=%v}", len(b.Vecs), b.Rows(), b.Sel != nil)
}
