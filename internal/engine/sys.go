package engine

import (
	"fmt"
	"sort"

	"vectorwise/internal/metrics"
	"vectorwise/internal/monitor"
	"vectorwise/internal/plan"
	"vectorwise/internal/rowengine"
	"vectorwise/internal/types"
)

// sysSchemas declares the introspection virtual tables. They resolve like
// heap tables, so the whole SQL surface (WHERE, GROUP BY, joins) works on
// them; the storage is materialized per query from live engine state.
var sysSchemas = map[string]*types.Schema{
	"sys.metrics": types.NewSchema(
		types.Col("name", types.String),
		types.Col("kind", types.String),
		types.Col("value", types.Float64),
	),
	"sys.queries": types.NewSchema(
		types.Col("id", types.Int64),
		types.Col("status", types.String),
		types.Col("rows", types.Int64),
		types.Col("duration_ms", types.Float64),
		types.Col("sql", types.String),
		types.Col("error", types.String),
	),
	"sys.events": types.NewSchema(
		types.Col("time", types.String),
		types.Col("kind", types.String),
		types.Col("msg", types.String),
	),
	"sys.sessions": types.NewSchema(
		types.Col("id", types.Int64),
		types.Col("state", types.String),
		types.Col("queries", types.Int64),
		types.Col("active", types.Int64),
		types.Col("reserved_bytes", types.Int64),
		types.Col("age_ms", types.Float64),
	),
}

// sysTableMeta resolves a virtual table's catalog entry (nil if name is not
// a sys table).
func sysTableMeta(name string) *plan.TableMeta {
	sch, ok := sysSchemas[name]
	if !ok {
		return nil
	}
	return &plan.TableMeta{Name: name, Schema: sch, Structure: "heap", Key: -1}
}

// sysHeap materializes a virtual table as a transient heap: a consistent
// snapshot of the registry/monitor taken when the query instantiates its
// plan. The executor's ordinary HeapScan does the rest.
func (db *DB) sysHeap(name string) (*rowengine.HeapTable, error) {
	sch, ok := sysSchemas[name]
	if !ok {
		return nil, fmt.Errorf("engine: no system table %q", name)
	}
	ht := rowengine.NewHeapTable(sch, -1)
	insert := func(row []types.Value) error {
		_, err := ht.Insert(row)
		return err
	}
	switch name {
	case "sys.metrics":
		for _, s := range metrics.Default.Snapshot() {
			if err := insert([]types.Value{
				types.NewString(s.Name),
				types.NewString(s.Kind),
				types.NewFloat64(s.Value),
			}); err != nil {
				return nil, err
			}
		}
	case "sys.queries":
		qis := db.Monitor.History()
		qis = append(qis, db.Monitor.Active()...)
		sort.Slice(qis, func(i, j int) bool { return qis[i].ID < qis[j].ID })
		for _, qi := range qis {
			if err := insert([]types.Value{
				types.NewInt64(qi.ID),
				types.NewString(string(qi.Status)),
				types.NewInt64(qi.Rows),
				types.NewFloat64(float64(qi.Duration.Nanoseconds()) / 1e6),
				types.NewString(qi.SQL),
				types.NewString(qi.Err),
			}); err != nil {
				return nil, err
			}
		}
	case "sys.events":
		for _, ev := range db.Monitor.Events() {
			if err := insert([]types.Value{
				types.NewString(ev.Time.Format("2006-01-02 15:04:05.000")),
				types.NewString(string(ev.Kind)),
				types.NewString(ev.Msg),
			}); err != nil {
				return nil, err
			}
		}
	case "sys.sessions":
		// Empty when no session layer is attached (library/REPL use).
		if db.SessionSource != nil {
			for _, si := range db.SessionSource() {
				if err := insert([]types.Value{
					types.NewInt64(si.ID),
					types.NewString(si.State),
					types.NewInt64(si.Queries),
					types.NewInt64(si.Active),
					types.NewInt64(si.Reserved),
					types.NewFloat64(si.AgeMS),
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	return ht, nil
}

// MetricsSnapshot exposes the engine-wide registry snapshot (shell \stats,
// benchmarks).
func (db *DB) MetricsSnapshot() []metrics.Sample { return metrics.Default.Snapshot() }

// FindQuery returns a monitored query record by ID (shell \trace).
func (db *DB) FindQuery(id int64) (monitor.QueryInfo, bool) { return db.Monitor.Find(id) }
