package engine

import (
	"strconv"
	"strings"
	"testing"

	"vectorwise/internal/colstore"
)

// metricValue reads one counter through the SQL surface itself.
func metricValue(t *testing.T, db *DB, name string) float64 {
	t.Helper()
	res := mustExec(t, db, `SELECT value FROM sys.metrics WHERE name = '`+name+`'`)
	if len(res.Rows) != 1 {
		t.Fatalf("sys.metrics lookup %q: %d rows", name, len(res.Rows))
	}
	return res.Rows[0][0].AsFloat()
}

func TestSysMetricsLiveCounters(t *testing.T) {
	const blocks = 8
	db := rangeDB(t, blocks)
	scanned0 := metricValue(t, db, "colstore_groups_scanned_total")
	skipped0 := metricValue(t, db, "colstore_groups_skipped_total")
	// A selective range scan over block-clustered data must prune most row
	// groups and decode at least one.
	lo := 3 * colstore.BlockRows
	mustExec(t, db, `SELECT k, v FROM pts WHERE k BETWEEN `+strconv.Itoa(lo)+
		` AND `+strconv.Itoa(lo+99))
	scanned1 := metricValue(t, db, "colstore_groups_scanned_total")
	skipped1 := metricValue(t, db, "colstore_groups_skipped_total")
	if scanned1 <= scanned0 {
		t.Fatalf("groups_scanned did not move: %v -> %v", scanned0, scanned1)
	}
	if skipped1 < skipped0+float64(blocks-2) {
		t.Fatalf("groups_skipped did not move: %v -> %v", skipped0, skipped1)
	}
	// Executor per-operator-class counters move too.
	if v := metricValue(t, db, `exec_rows_total{op="Scan"}`); v <= 0 {
		t.Fatalf("exec rows counter: %v", v)
	}
}

func TestSysQueriesAndEvents(t *testing.T) {
	db := itemsDB(t)
	mustExec(t, db, `SELECT count(*) FROM items`)
	q := mustExec(t, db, `SELECT id, status, rows, sql FROM sys.queries WHERE status = 'done'`)
	if len(q.Rows) == 0 {
		t.Fatal("sys.queries empty after a completed query")
	}
	found := false
	for _, r := range q.Rows {
		if strings.Contains(r[3].Str, "count(*)") || strings.Contains(r[3].Str, "COUNT") {
			found = true
		}
	}
	if !found {
		t.Fatalf("sys.queries does not list the count query: %+v", q.Rows)
	}
	ev := mustExec(t, db, `SELECT kind, msg FROM sys.events WHERE kind = 'query.end'`)
	if len(ev.Rows) == 0 {
		t.Fatal("sys.events has no query.end records")
	}
}

func TestShowMetricsAndEvents(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `SHOW METRICS`)
	if len(res.Rows) == 0 {
		t.Fatal("SHOW METRICS returned nothing")
	}
	seen := map[string]bool{}
	for _, r := range res.Rows {
		seen[r[0].Str] = true
	}
	for _, want := range []string{"monitor_queries_total", "colstore_groups_scanned_total"} {
		if !seen[want] {
			t.Fatalf("SHOW METRICS missing %q", want)
		}
	}
	if len(mustExec(t, db, `SHOW EVENTS`).Rows) == 0 {
		t.Fatal("SHOW EVENTS returned nothing")
	}
}

func TestProfilePhaseTrace(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `PROFILE SELECT grp, count(*) FROM items GROUP BY grp`)
	for _, want := range []string{"== phase trace ==", "parse", "bind", "optimize",
		"xcompile", "rewrite", "build", "execute", "total"} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("PROFILE output missing %q:\n%s", want, res.Text)
		}
	}
}

func TestQuerySpansRecorded(t *testing.T) {
	db := itemsDB(t)
	mustExec(t, db, `SELECT count(*) FROM items`)
	h := db.Monitor.History()
	last := h[len(h)-1]
	if len(last.Spans) < 6 {
		t.Fatalf("expected full span trace, got %+v", last.Spans)
	}
	if last.Spans[0].Phase != "parse" || last.Spans[len(last.Spans)-1].Phase != "execute" {
		t.Fatalf("span order: %+v", last.Spans)
	}
}

func TestSysMetricsAggregable(t *testing.T) {
	db := itemsDB(t)
	// The virtual table flows through the ordinary pipeline: aggregation
	// over it must work.
	res := mustExec(t, db, `SELECT count(*) FROM sys.metrics WHERE kind = 'counter'`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() <= 0 {
		t.Fatalf("aggregate over sys.metrics: %+v", res.Rows)
	}
}
