package engine

import (
	"regexp"
	"strconv"
	"testing"

	"vectorwise/internal/colstore"
	"vectorwise/internal/types"
)

// rangeDB builds a vectorwise table whose k column is block-clustered
// (monotonically increasing), spanning the given number of row groups.
func rangeDB(t *testing.T, blocks int) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE pts (k BIGINT NOT NULL, v DOUBLE NOT NULL)`)
	rows := blocks * colstore.BlockRows
	err := db.LoadBatchFunc("pts", func(emit func([]types.Value) error) error {
		for i := 0; i < rows; i++ {
			if err := emit([]types.Value{
				types.NewInt64(int64(i)),
				types.NewFloat64(float64(i) * 0.5),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

var skippedRe = regexp.MustCompile(`skipped=(\d+)/(\d+) groups`)

// profileSkips runs PROFILE <q> and returns the scan's skipped/total groups;
// ok=false when the profile carries no skip counters (the PDT-merge path).
func profileSkips(t *testing.T, db *DB, q string) (skipped, total int, ok bool) {
	t.Helper()
	res := mustExec(t, db, "PROFILE "+q)
	m := skippedRe.FindStringSubmatch(res.Text)
	if m == nil {
		return 0, 0, false
	}
	skipped, _ = strconv.Atoi(m[1])
	total, _ = strconv.Atoi(m[2])
	return skipped, total, true
}

func sameRows(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for c := range a.Rows[i] {
			if a.Rows[i][c].String() != b.Rows[i][c].String() {
				t.Fatalf("row %d col %d: %v vs %v", i, c, a.Rows[i][c], b.Rows[i][c])
			}
		}
	}
}

func TestRangePushdownSkipsBlocks(t *testing.T) {
	const blocks = 12
	db := rangeDB(t, blocks)
	lo := 5 * colstore.BlockRows
	hi := lo + 99
	rangeQ := `SELECT k, v FROM pts WHERE k BETWEEN ` + strconv.Itoa(lo) +
		` AND ` + strconv.Itoa(hi) + ` ORDER BY k`
	// (a) the profile reports pruned row groups on the Scan operator.
	skipped, total, ok := profileSkips(t, db, rangeQ)
	if !ok {
		t.Fatal("delta-free scan reported no skip counters")
	}
	if total != blocks {
		t.Fatalf("total groups = %d, want %d", total, blocks)
	}
	if skipped != blocks-1 {
		t.Fatalf("skipped = %d/%d, want %d", skipped, total, blocks-1)
	}
	// (b) results match the same query with skipping disabled (k+0 is not
	// sargable, so no range annotation reaches the scan).
	withSkip := mustExec(t, db, rangeQ)
	noSkip := mustExec(t, db, `SELECT k, v FROM pts WHERE k + 0 BETWEEN `+
		strconv.Itoa(lo)+` AND `+strconv.Itoa(hi)+` ORDER BY k`)
	if len(withSkip.Rows) != 100 {
		t.Fatalf("range query returned %d rows, want 100", len(withSkip.Rows))
	}
	sameRows(t, withSkip, noSkip)

	// (c) an UPDATE and DELETE force the PDT-merge path (filters disabled);
	// the same query must stay exact.
	mustExec(t, db, `UPDATE pts SET v = -1 WHERE k = `+strconv.Itoa(lo+10))
	mustExec(t, db, `DELETE FROM pts WHERE k = `+strconv.Itoa(lo+20))
	after := mustExec(t, db, rangeQ)
	if len(after.Rows) != 99 {
		t.Fatalf("after UPDATE/DELETE: %d rows, want 99", len(after.Rows))
	}
	seenUpdated := false
	for _, r := range after.Rows {
		k := r[0].I64
		if k == int64(lo+20) {
			t.Fatal("deleted row still visible")
		}
		if k == int64(lo+10) {
			seenUpdated = true
			if r[1].F64 != -1 {
				t.Fatalf("updated row v = %v, want -1", r[1].F64)
			}
		}
	}
	if !seenUpdated {
		t.Fatal("updated row missing")
	}
	// The merge path must not skip (every stable row must flow): no skip
	// counters appear because the source is the PDT merger, not a scanner.
	if skipped, _, ok := profileSkips(t, db, rangeQ); ok && skipped != 0 {
		t.Fatalf("PDT-merge path skipped %d groups, want 0", skipped)
	}
}

func TestExplainPhysicalShowsScanFilters(t *testing.T) {
	db := rangeDB(t, 2)
	res := mustExec(t, db, `EXPLAIN PHYSICAL SELECT k FROM pts WHERE k >= 100 AND k < 200`)
	if !regexp.MustCompile(`filters=\[col0 in \[100,200\]\]`).MatchString(res.Text) {
		t.Fatalf("scan filters not rendered:\n%s", res.Text)
	}
}

func TestParallelRangePushdownMatchesSerial(t *testing.T) {
	db := rangeDB(t, 8)
	q := `SELECT COUNT(*), MIN(k), MAX(k) FROM pts WHERE k >= ` +
		strconv.Itoa(3*colstore.BlockRows) + ` AND k < ` + strconv.Itoa(4*colstore.BlockRows)
	serial := mustExec(t, db, q)
	parallel := mustExec(t, db, q+` WITH (PARALLEL=4)`)
	sameRows(t, serial, parallel)
	if serial.Rows[0][0].I64 != int64(colstore.BlockRows) {
		t.Fatalf("count = %v", serial.Rows[0][0])
	}
}

// Regression: partsAvailable consults PendingOps at compile time, but a
// write can commit before Instantiate. The partitioned ScanSource must then
// degrade to the serial PDT-merge scan on part 0 (empty elsewhere) instead
// of failing the query.
func TestPartitionedScanDeltaRaceDegrades(t *testing.T) {
	db := rangeDB(t, 3)
	stable := 3 * colstore.BlockRows
	// Commit a delta after "compile time": the table now has pending ops.
	mustExec(t, db, `INSERT INTO pts VALUES (`+strconv.Itoa(stable)+`, 0.0)`)
	session := newQuerySession(db)
	defer session.close()
	totalRows := 0
	for part := 0; part < 4; part++ {
		src, err := session.ScanSource("pts", []int{0}, part, 4, 0, nil)
		if err != nil {
			t.Fatalf("part %d: %v", part, err)
		}
		b := newBatchFor(src)
		partRows := 0
		for {
			_, n, done, err := src.Next(b)
			if err != nil {
				t.Fatalf("part %d next: %v", part, err)
			}
			if done {
				break
			}
			partRows += n
		}
		if part > 0 && partRows != 0 {
			t.Fatalf("part %d served %d rows, want 0 (degraded serial scan)", part, partRows)
		}
		totalRows += partRows
	}
	if totalRows != stable+1 {
		t.Fatalf("degraded scan saw %d rows, want %d (stable + delta)", totalRows, stable+1)
	}
}
