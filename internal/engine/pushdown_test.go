package engine

import (
	"context"
	"regexp"
	"strconv"
	"testing"

	"vectorwise/internal/colstore"
	"vectorwise/internal/types"
)

// rangeDB builds a vectorwise table whose k column is block-clustered
// (monotonically increasing), spanning the given number of row groups.
func rangeDB(t *testing.T, blocks int) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE pts (k BIGINT NOT NULL, v DOUBLE NOT NULL)`)
	rows := blocks * colstore.BlockRows
	err := db.LoadBatchFunc("pts", func(emit func([]types.Value) error) error {
		for i := 0; i < rows; i++ {
			if err := emit([]types.Value{
				types.NewInt64(int64(i)),
				types.NewFloat64(float64(i) * 0.5),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

var skippedRe = regexp.MustCompile(`skipped=(\d+)/(\d+) groups`)

// profileSkips runs PROFILE <q> and returns the scan's skipped/total groups;
// ok=false when the profile carries no skip counters (the PDT-merge path).
func profileSkips(t *testing.T, db *DB, q string) (skipped, total int, ok bool) {
	t.Helper()
	res := mustExec(t, db, "PROFILE "+q)
	m := skippedRe.FindStringSubmatch(res.Text)
	if m == nil {
		return 0, 0, false
	}
	skipped, _ = strconv.Atoi(m[1])
	total, _ = strconv.Atoi(m[2])
	return skipped, total, true
}

func sameRows(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for c := range a.Rows[i] {
			if a.Rows[i][c].String() != b.Rows[i][c].String() {
				t.Fatalf("row %d col %d: %v vs %v", i, c, a.Rows[i][c], b.Rows[i][c])
			}
		}
	}
}

func TestRangePushdownSkipsBlocks(t *testing.T) {
	const blocks = 12
	db := rangeDB(t, blocks)
	lo := 5 * colstore.BlockRows
	hi := lo + 99
	rangeQ := `SELECT k, v FROM pts WHERE k BETWEEN ` + strconv.Itoa(lo) +
		` AND ` + strconv.Itoa(hi) + ` ORDER BY k`
	// (a) the profile reports pruned row groups on the Scan operator.
	skipped, total, ok := profileSkips(t, db, rangeQ)
	if !ok {
		t.Fatal("delta-free scan reported no skip counters")
	}
	if total != blocks {
		t.Fatalf("total groups = %d, want %d", total, blocks)
	}
	if skipped != blocks-1 {
		t.Fatalf("skipped = %d/%d, want %d", skipped, total, blocks-1)
	}
	// (b) results match the same query with skipping disabled (k+0 is not
	// sargable, so no range annotation reaches the scan).
	withSkip := mustExec(t, db, rangeQ)
	noSkip := mustExec(t, db, `SELECT k, v FROM pts WHERE k + 0 BETWEEN `+
		strconv.Itoa(lo)+` AND `+strconv.Itoa(hi)+` ORDER BY k`)
	if len(withSkip.Rows) != 100 {
		t.Fatalf("range query returned %d rows, want 100", len(withSkip.Rows))
	}
	sameRows(t, withSkip, noSkip)

	// (c) an UPDATE and DELETE force the PDT-merge path (filters disabled);
	// the same query must stay exact.
	mustExec(t, db, `UPDATE pts SET v = -1 WHERE k = `+strconv.Itoa(lo+10))
	mustExec(t, db, `DELETE FROM pts WHERE k = `+strconv.Itoa(lo+20))
	after := mustExec(t, db, rangeQ)
	if len(after.Rows) != 99 {
		t.Fatalf("after UPDATE/DELETE: %d rows, want 99", len(after.Rows))
	}
	seenUpdated := false
	for _, r := range after.Rows {
		k := r[0].I64
		if k == int64(lo+20) {
			t.Fatal("deleted row still visible")
		}
		if k == int64(lo+10) {
			seenUpdated = true
			if r[1].F64 != -1 {
				t.Fatalf("updated row v = %v, want -1", r[1].F64)
			}
		}
	}
	if !seenUpdated {
		t.Fatal("updated row missing")
	}
	// The merge path must not skip (every stable row must flow): no skip
	// counters appear because the source is the PDT merger, not a scanner.
	if skipped, _, ok := profileSkips(t, db, rangeQ); ok && skipped != 0 {
		t.Fatalf("PDT-merge path skipped %d groups, want 0", skipped)
	}
}

func TestExplainPhysicalShowsScanFilters(t *testing.T) {
	db := rangeDB(t, 2)
	res := mustExec(t, db, `EXPLAIN PHYSICAL SELECT k FROM pts WHERE k >= 100 AND k < 200`)
	if !regexp.MustCompile(`filters=\[col0 in \[100,200\]\]`).MatchString(res.Text) {
		t.Fatalf("scan filters not rendered:\n%s", res.Text)
	}
}

func TestParallelRangePushdownMatchesSerial(t *testing.T) {
	db := rangeDB(t, 8)
	q := `SELECT COUNT(*), MIN(k), MAX(k) FROM pts WHERE k >= ` +
		strconv.Itoa(3*colstore.BlockRows) + ` AND k < ` + strconv.Itoa(4*colstore.BlockRows)
	serial := mustExec(t, db, q)
	parallel := mustExec(t, db, q+` WITH (PARALLEL=4)`)
	sameRows(t, serial, parallel)
	if serial.Rows[0][0].I64 != int64(colstore.BlockRows) {
		t.Fatalf("count = %v", serial.Rows[0][0])
	}
}

// Regression for the old compile-vs-run delta race: the retired partition
// hint consulted PendingOps at compile time, so a delta committed before
// Instantiate collapsed a partitioned plan to serial-on-part-0. Morsel
// scheduling decides at run time instead — a pending delta must neither
// shrink the plan's degree below 2 nor lose rows.
func TestParallelScanDeltaKeepsDegree(t *testing.T) {
	db := rangeDB(t, 4)
	stable := 4 * colstore.BlockRows
	// Commit a delta ("concurrent INSERT"): the snapshot now carries PDTs.
	mustExec(t, db, `INSERT INTO pts VALUES (`+strconv.Itoa(stable)+`, 0.0)`)

	// The plan keeps its parallel shape — degree stays > 1 despite deltas.
	q := `SELECT COUNT(*), MAX(k) FROM pts WITH (PARALLEL=4)`
	exp := mustExec(t, db, `EXPLAIN PHYSICAL `+q)
	if !regexp.MustCompile(`Xchg\(degree=4\)`).MatchString(exp.Text) ||
		!regexp.MustCompile(`ParallelScan\(`).MatchString(exp.Text) {
		t.Fatalf("delta forced the plan serial:\n%s", exp.Text)
	}

	// The run-time morsel source serves the delta-merged stream through one
	// worker; the result must still include every row.
	res := mustExec(t, db, q)
	if got := res.Rows[0][0].I64; got != int64(stable+1) {
		t.Fatalf("parallel count with delta = %d, want %d", got, stable+1)
	}
	if got := res.Rows[0][1].I64; got != int64(stable) {
		t.Fatalf("parallel max with delta = %d, want %d", got, stable)
	}

	// Direct check of the run-time decision: the session's morsel source
	// degrades to a single serial stream exactly one worker can claim.
	session := newQuerySession(db, context.Background())
	defer session.close()
	src, err := session.MorselSource("pts", []int{0}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if src.NumMorsels() != 0 {
		t.Fatalf("delta snapshot offered %d morsels, want serial fallback", src.NumMorsels())
	}
	serial, err := src.Serial()
	if err != nil {
		t.Fatal(err)
	}
	b := newBatchFor(serial)
	rows := 0
	for {
		_, n, done, err := serial.Next(b)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
		rows += n
	}
	if rows != stable+1 {
		t.Fatalf("serial fallback saw %d rows, want %d (stable + delta)", rows, stable+1)
	}

	// And once the delta is checkpointed into stable storage, the same
	// session API serves real morsels again.
	mustExec(t, db, `CHECKPOINT pts`)
	session2 := newQuerySession(db, context.Background())
	defer session2.close()
	src2, err := session2.MorselSource("pts", []int{0}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if src2.NumMorsels() < 4 {
		t.Fatalf("flushed table offers %d morsels, want >= 4", src2.NumMorsels())
	}
}
