package engine

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"vectorwise/internal/colstore"
	"vectorwise/internal/types"
)

func ptrInt64(v int64) *types.Value {
	x := types.NewInt64(v)
	return &x
}

// clusterCSV writes a CSV of rows (k, v, label) whose k values are a fixed
// pseudo-random permutation of [0, rows) — deterministically unsorted, so a
// plain COPY interleaves every row group while a clustered COPY must sort.
// Every 10th row's v is NULL (empty field) to exercise the NULL path.
func clusterCSV(t *testing.T, rows int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cluster.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < rows; i++ {
		k := (i * 7919) % rows // 7919 is prime and coprime to rows
		v := strconv.FormatFloat(float64(k)*0.5, 'g', -1, 64)
		if i%10 == 3 {
			v = ""
		}
		fmt.Fprintf(f, "%d,%s,label%d\n", k, v, k%7)
	}
	return path
}

func clusterDB(t *testing.T, table string) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE `+table+` (k BIGINT NOT NULL, v DOUBLE, label VARCHAR NOT NULL)`)
	return db
}

// (a) A clustered load produces sorted storage: tight, disjoint per-group
// min/max summaries and a persisted clustered marker on the sort column.
func TestClusteredCopyProducesSortedTightGroups(t *testing.T) {
	const blocks = 3
	rows := blocks * colstore.BlockRows
	csv := clusterCSV(t, rows)
	db := clusterDB(t, "t")
	res := mustExec(t, db, `COPY t FROM '`+csv+`' ORDER BY k`)
	if res.Affected != int64(rows) {
		t.Fatalf("loaded %d rows, want %d", res.Affected, rows)
	}

	e, err := db.entry("t")
	if err != nil {
		t.Fatal(err)
	}
	stable := e.store.Stable()
	if !stable.Clustered(0) {
		t.Fatal("sort column lost its clustered marker")
	}
	if n := stable.NumBlocks(); n != blocks {
		t.Fatalf("table spans %d groups, want %d", n, blocks)
	}
	// Tight by construction: group g holds exactly [g*BlockRows, (g+1)*BlockRows).
	for g := 0; g < blocks; g++ {
		lo, hi := stable.ClusteredWindow([]colstore.RangeFilter{{
			Col: 0,
			Lo:  ptrInt64(int64(g * colstore.BlockRows)),
			Hi:  ptrInt64(int64(g*colstore.BlockRows + 10)),
		}})
		if lo != g || hi != g+1 {
			t.Fatalf("group window for group %d range = [%d,%d), want [%d,%d)", g, lo, hi, g, g+1)
		}
	}
	// The stream really is globally sorted.
	sorted := mustExec(t, db, `SELECT MIN(k), MAX(k), COUNT(*) FROM t`)
	if sorted.Rows[0][0].I64 != 0 || sorted.Rows[0][1].I64 != int64(rows-1) ||
		sorted.Rows[0][2].I64 != int64(rows) {
		t.Fatalf("min/max/count = %v", sorted.Rows[0])
	}
}

// (b) A serial range query on the clustered column prunes to the group
// window and PROFILE reports near-perfect skipping, including bytes.
func TestClusteredRangeQueryPrunesToWindow(t *testing.T) {
	const blocks = 5
	rows := blocks * colstore.BlockRows
	csv := clusterCSV(t, rows)
	db := clusterDB(t, "t")
	mustExec(t, db, `COPY t FROM '`+csv+`' ORDER BY k`)

	lo := 2 * colstore.BlockRows
	q := `SELECT COUNT(*) FROM t WHERE k BETWEEN ` + strconv.Itoa(lo) +
		` AND ` + strconv.Itoa(lo+99)
	skipped, total, ok := profileSkips(t, db, q)
	if !ok {
		t.Fatal("clustered scan reported no skip counters")
	}
	if total != blocks || skipped != blocks-1 {
		t.Fatalf("skipped = %d/%d, want %d/%d", skipped, total, blocks-1, blocks)
	}
	res := mustExec(t, db, "PROFILE "+q)
	if !regexp.MustCompile(`skipped=\d+/\d+ groups \(\d+ bytes\)`).MatchString(res.Text) {
		t.Fatalf("profile missing skipped-bytes counter:\n%s", res.Text)
	}
	// The plan itself carries the window annotation.
	exp := mustExec(t, db, `EXPLAIN `+q)
	if !regexp.MustCompile(`groups=\[2,3\)/5`).MatchString(exp.Text) {
		t.Fatalf("plan missing clustered window annotation:\n%s", exp.Text)
	}

	// The morsel source offers only window groups — parallel scans never
	// even see the pruned ones.
	session := newQuerySession(db, context.Background())
	defer session.close()
	src, err := session.MorselSource("t", []int{0}, 0, []colstore.RangeFilter{{
		Col: 0, Lo: ptrInt64(int64(lo)), Hi: ptrInt64(int64(lo + 99)),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if src.NumMorsels() != 1 {
		t.Fatalf("morsel source offered %d morsels, want 1 (the window group)", src.NumMorsels())
	}
	parallel := mustExec(t, db, q+` WITH (PARALLEL=4)`)
	if parallel.Rows[0][0].I64 != 100 {
		t.Fatalf("parallel windowed count = %v, want 100", parallel.Rows[0][0])
	}
}

// (c) Clustered and unclustered layouts are semantically identical — same
// query results before and after UPDATE/DELETE deltas.
func TestClusteredLayoutMatchesUnclustered(t *testing.T) {
	const blocks = 3
	rows := blocks * colstore.BlockRows
	csv := clusterCSV(t, rows)
	db := clusterDB(t, "clu")
	mustExec(t, db, `CREATE TABLE unc (k BIGINT NOT NULL, v DOUBLE, label VARCHAR NOT NULL)`)
	mustExec(t, db, `COPY clu FROM '`+csv+`' ORDER BY k`)
	mustExec(t, db, `COPY unc FROM '`+csv+`'`)

	queries := []string{
		`SELECT COUNT(*), MIN(k), MAX(k), SUM(v) FROM %s`,
		`SELECT k, v, label FROM %s WHERE k BETWEEN 100 AND 300 ORDER BY k`,
		`SELECT label, COUNT(*) FROM %s WHERE v IS NULL GROUP BY label ORDER BY label`,
	}
	check := func(stage string) {
		t.Helper()
		for _, q := range queries {
			a := mustExec(t, db, fmt.Sprintf(q, "clu"))
			b := mustExec(t, db, fmt.Sprintf(q, "unc"))
			sameRows(t, a, b)
			_ = stage
		}
	}
	check("loaded")

	// Deltas over the clustered table must merge exactly like any other.
	for _, tbl := range []string{"clu", "unc"} {
		mustExec(t, db, `UPDATE `+tbl+` SET v = -5 WHERE k = 150`)
		mustExec(t, db, `DELETE FROM `+tbl+` WHERE k = 200`)
	}
	check("after deltas")
	got := mustExec(t, db, `SELECT v FROM clu WHERE k = 150`)
	if got.Rows[0][0].F64 != -5 {
		t.Fatalf("updated clustered row v = %v, want -5", got.Rows[0][0])
	}
}

// COPY ... ORDER BY guards: non-empty targets and unknown columns fail
// cleanly instead of producing an interleaved "clustered" table.
func TestClusteredCopyGuards(t *testing.T) {
	csv := clusterCSV(t, 100)
	db := clusterDB(t, "t")
	mustExec(t, db, `INSERT INTO t VALUES (1, 1.0, 'x')`)
	execErr(t, db, `COPY t FROM '`+csv+`' ORDER BY k`)
	mustExec(t, db, `CREATE TABLE t2 (k BIGINT NOT NULL, v DOUBLE, label VARCHAR NOT NULL)`)
	execErr(t, db, `COPY t2 FROM '`+csv+`' ORDER BY nope`)
	mustExec(t, db, `CREATE TABLE h (k BIGINT NOT NULL, v DOUBLE, label VARCHAR NOT NULL) WITH STRUCTURE=HEAP`)
	execErr(t, db, `COPY h FROM '`+csv+`' ORDER BY k`)
}
