package engine

import (
	"context"
	"fmt"

	"vectorwise/internal/algebra"
	"vectorwise/internal/exec"
	"vectorwise/internal/expr"
	"vectorwise/internal/optimizer"
	"vectorwise/internal/pdt"
	"vectorwise/internal/plan"
	"vectorwise/internal/rewriter"
	"vectorwise/internal/rowengine"
	"vectorwise/internal/sql"
	"vectorwise/internal/txn"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
	"vectorwise/internal/xcompile"
)

// compiled carries a query through the Figure-1 pipeline stages.
type compiled struct {
	logical   plan.Node
	optimized plan.Node
	alg       algebra.Node
	rw        *rewriter.Result
}

// compileSelect runs parser output through binder → optimizer → cross
// compiler → rewriter.
func (db *DB) compileSelect(s *sql.SelectStmt) (*compiled, error) {
	b := db.binder()
	logical, err := b.BindSelect(s)
	if err != nil {
		return nil, err
	}
	opt := optimizer.New(db)
	optimized := opt.Optimize(logical)
	alg, err := xcompileNode(optimized)
	if err != nil {
		return nil, err
	}
	par := db.Parallel
	if s.Parallel > 0 {
		par = s.Parallel
	}
	rw, err := rewriter.Rewrite(alg, rewriter.Options{
		Parallel: par,
		PartsHint: func(table string) int {
			return db.partsAvailable(table)
		},
	})
	if err != nil {
		return nil, err
	}
	return &compiled{logical: logical, optimized: optimized, alg: alg, rw: rw}, nil
}

// partsAvailable reports how many row-group partitions a table offers for
// parallel scans; 1 when deltas force the serial (PDT-merging) path.
func (db *DB) partsAvailable(table string) int {
	e, err := db.entry(table)
	if err != nil || e.store == nil {
		return 1
	}
	if e.store.PendingOps() > 0 {
		return 1
	}
	blocks := e.store.Stable().NumBlocks()
	if blocks < 1 {
		return 1
	}
	return blocks
}

func (db *DB) execSelect(ctx context.Context, s *sql.SelectStmt, text string) (*Result, error) {
	c, err := db.compileSelect(s)
	if err != nil {
		return nil, err
	}
	qi, qctx := db.Monitor.StartQuery(ctx, text)
	res, err := db.runCompiled(qctx, c, s)
	var rows int64
	if res != nil {
		rows = int64(len(res.Rows))
	}
	db.Monitor.FinishQuery(qi, rows, err)
	return res, err
}

func (db *DB) runCompiled(ctx context.Context, c *compiled, s *sql.SelectStmt) (*Result, error) {
	// Snapshot transactions per vectorwise table (consistent reads).
	session := newQuerySession(db)
	defer session.close()
	root, err := session.build(c.rw.Node)
	if err != nil {
		return nil, err
	}
	ectx := exec.NewCtx(ctx)
	ectx.Mode = expr.Mode{Checked: true}
	if db.VectorSize > 0 {
		ectx.VecSize = db.VectorSize
	}
	if s != nil && s.VectorSize > 0 {
		ectx.VecSize = s.VectorSize
	}
	physRows, err := exec.Collect(ectx, root)
	if err != nil {
		return nil, err
	}
	logical := c.rw.Logical
	res := &Result{Cols: logical.Names()}
	for _, pr := range physRows {
		res.Rows = append(res.Rows, physicalToLogicalRow(logical, c.rw.ColMap, pr))
	}
	return res, nil
}

func (db *DB) execExplain(ctx context.Context, s *sql.ExplainStmt) (*Result, error) {
	sel, ok := s.Query.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: EXPLAIN supports SELECT only")
	}
	c, err := db.compileSelect(sel)
	if err != nil {
		return nil, err
	}
	text := "== logical plan ==\n" + plan.Format(c.logical) +
		"== optimized plan ==\n" + plan.Format(c.optimized) +
		"== X100 algebra (after rewriter) ==\n" + algebra.Format(c.rw.Node)
	if s.Profile {
		res, err := db.runCompiled(ctx, c, sel)
		if err != nil {
			return nil, err
		}
		text += fmt.Sprintf("== execution ==\n%d rows\n", len(res.Rows))
	}
	return &Result{Text: text}, nil
}

// xcompileNode invokes the cross compiler (Figure 1's new component).
func xcompileNode(n plan.Node) (algebra.Node, error) { return xcompile.Compile(n) }

// newBatchFor allocates a batch matching a positional source.
func newBatchFor(src pdt.BatchSource) *vec.Batch {
	return vec.NewBatch(src.Kinds(), vec.DefaultSize)
}

// querySession owns per-query snapshots of every vectorwise table touched.
type querySession struct {
	db  *DB
	txs map[string]*txn.Txn
}

func newQuerySession(db *DB) *querySession {
	return &querySession{db: db, txs: map[string]*txn.Txn{}}
}

func (qs *querySession) close() {
	for _, tx := range qs.txs {
		tx.Abort()
	}
}

func (qs *querySession) txFor(table string) (*txn.Txn, error) {
	if tx, ok := qs.txs[table]; ok {
		return tx, nil
	}
	e, err := qs.db.entry(table)
	if err != nil {
		return nil, err
	}
	if e.store == nil {
		return nil, fmt.Errorf("engine: %q is not a vectorwise table", table)
	}
	tx := e.store.Begin()
	qs.txs[table] = tx
	return tx, nil
}

// build instantiates kernel operators from physical algebra.
func (qs *querySession) build(n algebra.Node) (exec.Operator, error) {
	switch t := n.(type) {
	case *algebra.Scan:
		return qs.buildScan(t)
	case *algebra.Values:
		return exec.NewValues(t.Out, t.Rows), nil
	case *algebra.Select:
		child, err := qs.build(t.Child)
		if err != nil {
			return nil, err
		}
		return exec.NewSelect(child, t.Pred), nil
	case *algebra.Project:
		child, err := qs.build(t.Child)
		if err != nil {
			return nil, err
		}
		return exec.NewProject(child, t.Exprs), nil
	case *algebra.Aggr:
		child, err := qs.build(t.Child)
		if err != nil {
			return nil, err
		}
		aggs := make([]exec.AggSpec, len(t.Aggs))
		for i, a := range t.Aggs {
			fn, err := aggFn(a.Fn)
			if err != nil {
				return nil, err
			}
			aggs[i] = exec.AggSpec{Fn: fn, Col: a.Col}
		}
		return exec.NewHashAgg(child, t.GroupCols, aggs)
	case *algebra.HashJoin:
		left, err := qs.build(t.Left)
		if err != nil {
			return nil, err
		}
		right, err := qs.build(t.Right)
		if err != nil {
			return nil, err
		}
		var jt exec.JoinType
		switch t.Kind {
		case algebra.Inner:
			jt = exec.Inner
		case algebra.LeftOuter:
			jt = exec.LeftOuter
		case algebra.Semi:
			jt = exec.Semi
		case algebra.Anti:
			jt = exec.Anti
		case algebra.AntiNullAware:
			jt = exec.AntiNullAware
		}
		hj := exec.NewHashJoin(left, right, t.LeftKeys, t.RightKeys, jt)
		hj.LeftKeyNull = t.LeftKeyNull
		hj.RightKeyNull = t.RightKeyNull
		return hj, nil
	case *algebra.Sort:
		child, err := qs.build(t.Child)
		if err != nil {
			return nil, err
		}
		keys := make([]exec.SortKey, len(t.Keys))
		for i, k := range t.Keys {
			keys[i] = exec.SortKey{Col: k.Col, Desc: k.Desc}
		}
		return exec.NewSort(child, keys), nil
	case *algebra.TopN:
		child, err := qs.build(t.Child)
		if err != nil {
			return nil, err
		}
		keys := make([]exec.SortKey, len(t.Keys))
		for i, k := range t.Keys {
			keys[i] = exec.SortKey{Col: k.Col, Desc: k.Desc}
		}
		return exec.NewTopN(child, keys, int(t.N)), nil
	case *algebra.Limit:
		child, err := qs.build(t.Child)
		if err != nil {
			return nil, err
		}
		return exec.NewLimit(child, t.Offset, t.N), nil
	case *algebra.UnionAll:
		kids := make([]exec.Operator, len(t.Kids))
		for i, k := range t.Kids {
			c, err := qs.build(k)
			if err != nil {
				return nil, err
			}
			kids[i] = c
		}
		return exec.NewUnion(kids...)
	case *algebra.XchgUnion:
		kids := make([]exec.Operator, len(t.Kids))
		for i, k := range t.Kids {
			c, err := qs.build(k)
			if err != nil {
				return nil, err
			}
			kids[i] = c
		}
		return exec.NewXchgUnion(kids...), nil
	}
	return nil, fmt.Errorf("engine: cannot build %T", n)
}

func aggFn(fn string) (exec.AggFn, error) {
	switch fn {
	case "count":
		return exec.AggCount, nil
	case "sum":
		return exec.AggSum, nil
	case "min":
		return exec.AggMin, nil
	case "max":
		return exec.AggMax, nil
	case "avg":
		return exec.AggAvg, nil
	}
	return 0, fmt.Errorf("engine: aggregate %q", fn)
}

// buildScan produces the positional source for a table scan.
func (qs *querySession) buildScan(t *algebra.Scan) (exec.Operator, error) {
	e, err := qs.db.entry(t.Table)
	if err != nil {
		return nil, err
	}
	kinds := make([]types.Kind, len(t.Cols))
	if e.heap != nil {
		// Classic table scanned into the vectorized pipeline.
		phys := rewriter.PhysicalSchema(e.meta.Schema)
		idxs := make([]int, len(t.Cols))
		for i, name := range t.Cols {
			idx := phys.Find(name)
			if idx < 0 {
				return nil, fmt.Errorf("engine: heap table %s has no column %q", t.Table, name)
			}
			idxs[i] = idx
			kinds[i] = phys.Cols[idx].Type.Kind
		}
		return newHeapScan(e.heap, e.meta.Schema, idxs, kinds), nil
	}
	physSchema := e.store.Schema()
	idxs := make([]int, len(t.Cols))
	for i, name := range t.Cols {
		idx := physSchema.Find(name)
		if idx < 0 {
			return nil, fmt.Errorf("engine: table %s has no column %q", t.Table, name)
		}
		idxs[i] = idx
		kinds[i] = physSchema.Cols[idx].Type.Kind
	}
	table := t.Table
	part, parts := t.Part, t.Parts
	return exec.NewColScan(kinds, func(vecSize int) (pdt.BatchSource, error) {
		tx, err := qs.txFor(table)
		if err != nil {
			return nil, err
		}
		if parts > 1 {
			if !tx.DeltaFree() {
				return nil, fmt.Errorf("engine: partitioned scan of %s with pending deltas", table)
			}
			return tx.StableSnapshot().NewScannerPart(idxs, vecSize, part, parts)
		}
		return tx.Scan(idxs, vecSize)
	}), nil
}

// heapScanOp adapts a heap table into batches of physical (decomposed)
// columns so classic tables participate in vectorized plans.
type heapScanOp struct {
	heap    *rowengine.HeapTable
	logical *types.Schema
	idxs    []int // physical column indexes to produce
	kinds   []types.Kind
	cm      rewriter.ColMap

	ctx  *exec.Ctx
	rows [][]types.Value // logical row snapshot
	at   int
	buf  *vec.Batch
}

func newHeapScan(h *rowengine.HeapTable, logical *types.Schema, idxs []int, kinds []types.Kind) exec.Operator {
	return &heapScanOp{heap: h, logical: logical, idxs: idxs, kinds: kinds,
		cm: rewriter.PhysicalColMap(logical)}
}

// Kinds implements exec.Operator.
func (h *heapScanOp) Kinds() []types.Kind { return h.kinds }

// Open implements exec.Operator: snapshots the heap (classic engines
// typically latch pages; a snapshot keeps the adapter simple).
func (h *heapScanOp) Open(ctx *exec.Ctx) error {
	h.ctx = ctx
	h.at = 0
	h.rows = h.rows[:0]
	h.buf = vec.NewBatch(h.kinds, ctx.VecSize)
	if h.buf.Vecs[0].Cap() == 0 {
		h.buf = vec.NewBatch(h.kinds, vec.DefaultSize)
	}
	return h.heap.ScanFunc(func(_ rowengine.RowID, row []types.Value) bool {
		h.rows = append(h.rows, row)
		return true
	})
}

// Next implements exec.Operator.
func (h *heapScanOp) Next() (*vec.Batch, error) {
	if err := h.ctx.Ctx.Err(); err != nil {
		return nil, err
	}
	if h.at >= len(h.rows) {
		return nil, nil
	}
	n := h.buf.Vecs[0].Cap()
	if rem := len(h.rows) - h.at; n > rem {
		n = rem
	}
	h.buf.Reset()
	h.buf.SetLen(n)
	for i := 0; i < n; i++ {
		row := h.rows[h.at+i]
		phys := logicalToPhysicalRow(h.logical, row)
		for c, pi := range h.idxs {
			h.buf.Vecs[c].Set(i, phys[pi])
		}
	}
	h.at += n
	return h.buf, nil
}

// Close implements exec.Operator.
func (h *heapScanOp) Close() {}
