package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vectorwise/internal/algebra"
	"vectorwise/internal/colstore"
	"vectorwise/internal/exec"
	"vectorwise/internal/expr"
	"vectorwise/internal/monitor"
	"vectorwise/internal/optimizer"
	"vectorwise/internal/pdt"
	"vectorwise/internal/physical"
	"vectorwise/internal/plan"
	"vectorwise/internal/rewriter"
	"vectorwise/internal/rowengine"
	"vectorwise/internal/sql"
	"vectorwise/internal/txn"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
	"vectorwise/internal/xcompile"
)

// compiled carries a query through the Figure-1 pipeline stages (the
// pre-rewrite algebra lives on through rw.Node's provenance; only the
// stages EXPLAIN renders are retained).
type compiled struct {
	logical   plan.Node
	optimized plan.Node
	rw        *rewriter.Result
	phys      physical.Node
	// spans times the compile-side pipeline phases (bind → optimize →
	// xcompile → rewrite → build); parse and execute are added by callers.
	spans []monitor.Span
}

// phase appends a lifecycle span measured from start to now.
func (c *compiled) phase(name string, start time.Time) {
	c.spans = append(c.spans, monitor.Span{Phase: name, Start: start, Dur: time.Since(start)})
}

// compileSelect runs parser output through binder → optimizer → cross
// compiler → rewriter → physical-plan builder, timing each phase.
func (db *DB) compileSelect(s *sql.SelectStmt) (*compiled, error) {
	c := &compiled{}
	b := db.binder()
	t := time.Now()
	logical, err := b.BindSelect(s)
	if err != nil {
		return nil, err
	}
	c.phase("bind", t)
	opt := optimizer.New(db)
	t = time.Now()
	optimized := opt.Optimize(logical)
	c.phase("optimize", t)
	t = time.Now()
	alg, err := xcompileNode(optimized)
	if err != nil {
		return nil, err
	}
	c.phase("xcompile", t)
	par := db.Parallel
	if s.Parallel > 0 {
		par = s.Parallel
	}
	t = time.Now()
	rw, err := rewriter.Rewrite(alg, rewriter.Options{
		Parallel: par,
		GroupsHint: func(table string, cols []string, ranges []algebra.ScanRange) int {
			return db.groupsAvailable(table, cols, ranges)
		},
	})
	if err != nil {
		return nil, err
	}
	c.phase("rewrite", t)
	t = time.Now()
	phys, err := physical.Build(rw.Node, db)
	if err != nil {
		return nil, err
	}
	c.phase("build", t)
	c.logical, c.optimized, c.rw, c.phys = logical, optimized, rw, phys
	return c, nil
}

// groupsAvailable reports how many row-group morsels a table's stable
// storage offers the given scan, capping the parallel degree. Range bounds
// on clustered columns shrink the estimate to the contiguous group window
// the scan will actually touch — no point spinning up more workers than
// surviving groups. Deliberately NOT sensitive to pending deltas: whether a
// scan can really run morsel-parallel is decided at Open time inside the
// query's snapshot (MorselSource), so a write racing between compile and
// run changes the run-time stream, never the plan shape — the
// compile-vs-run delta race the old partition hint suffered from is gone.
func (db *DB) groupsAvailable(table string, cols []string, ranges []algebra.ScanRange) int {
	e, err := db.entry(table)
	if err != nil || e.store == nil {
		return 1
	}
	stable := e.store.Stable()
	blocks := stable.NumBlocks()
	if blocks < 1 {
		return 1
	}
	if filters := storageFilters(stable.Schema(), cols, ranges); len(filters) > 0 {
		lo, hi := stable.ClusteredWindow(filters)
		if w := hi - lo; w < blocks {
			blocks = w
		}
		if blocks < 1 {
			return 1
		}
	}
	return blocks
}

// storageFilters resolves scan-output ranges (by physical column name) to
// storage-indexed range filters; unknown names are skipped.
func storageFilters(schema *types.Schema, cols []string, ranges []algebra.ScanRange) []colstore.RangeFilter {
	var out []colstore.RangeFilter
	for _, r := range ranges {
		if r.Col < 0 || r.Col >= len(cols) {
			continue
		}
		idx := schema.Find(cols[r.Col])
		if idx < 0 {
			continue
		}
		out = append(out, colstore.RangeFilter{Col: idx, Lo: r.Lo, Hi: r.Hi})
	}
	return out
}

// PhysicalTable implements physical.Catalog.
func (db *DB) PhysicalTable(name string) (*physical.TableInfo, error) {
	if meta := sysTableMeta(name); meta != nil {
		return &physical.TableInfo{
			Structure: meta.Structure,
			Logical:   meta.Schema,
			Physical:  rewriter.PhysicalSchema(meta.Schema),
		}, nil
	}
	e, err := db.entry(name)
	if err != nil {
		return nil, err
	}
	info := &physical.TableInfo{Structure: e.meta.Structure, Logical: e.meta.Schema}
	if e.store != nil {
		info.Physical = e.store.Schema()
	} else {
		info.Physical = rewriter.PhysicalSchema(e.meta.Schema)
	}
	return info, nil
}

func (db *DB) execSelect(ctx context.Context, s *sql.SelectStmt, text string) (*Result, error) {
	c, err := db.compileSelect(s)
	if err != nil {
		return nil, err
	}
	qi, qctx := db.Monitor.StartQuery(ctx, text)
	db.Monitor.AttachPlan(qi, physical.Format(c.phys))
	if ps, ok := parseSpanFrom(ctx); ok {
		db.Monitor.AttachSpans(qi, ps)
	}
	db.Monitor.AttachSpans(qi, c.spans...)
	t := time.Now()
	res, _, err := db.runCompiled(qctx, c, s, false)
	db.Monitor.AttachSpans(qi, monitor.Span{Phase: "execute", Start: t, Dur: time.Since(t)})
	var rows int64
	if res != nil {
		rows = int64(len(res.Rows))
	}
	db.Monitor.FinishQuery(qi, rows, err)
	return res, err
}

// runCompiled instantiates the physical plan and drains it; the returned
// instance carries per-operator counters when profile is set.
func (db *DB) runCompiled(ctx context.Context, c *compiled, s *sql.SelectStmt, profile bool) (*Result, *physical.Instance, error) {
	// Snapshot transactions per vectorwise table (consistent reads).
	session := newQuerySession(db, ctx)
	defer session.close()
	inst, err := physical.Instantiate(c.phys, session)
	if err != nil {
		return nil, nil, err
	}
	ectx := exec.NewCtx(ctx)
	ectx.Mode = expr.Mode{Checked: true}
	ectx.Profile = profile
	if budget := queryBudgetFrom(ctx); budget > 0 {
		ectx.Budget = exec.NewMemBudget(budget)
	}
	if db.VectorSize > 0 {
		ectx.VecSize = db.VectorSize
	}
	if s != nil && s.VectorSize > 0 {
		ectx.VecSize = s.VectorSize
	}
	physRows, err := exec.Collect(ectx, inst.Root)
	if err != nil {
		return nil, nil, err
	}
	logical := c.rw.Logical
	res := &Result{Cols: logical.Names()}
	for _, pr := range physRows {
		res.Rows = append(res.Rows, physicalToLogicalRow(logical, c.rw.ColMap, pr))
	}
	return res, inst, nil
}

func (db *DB) execExplain(ctx context.Context, s *sql.ExplainStmt) (*Result, error) {
	sel, ok := s.Query.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: EXPLAIN supports SELECT only")
	}
	c, err := db.compileSelect(sel)
	if err != nil {
		return nil, err
	}
	var text string
	if s.Physical {
		text = "== physical plan ==\n" + physical.Format(c.phys)
	} else {
		text = "== logical plan ==\n" + plan.Format(c.logical) +
			"== optimized plan ==\n" + plan.Format(c.optimized) +
			"== X100 algebra (after rewriter) ==\n" + algebra.Format(c.rw.Node) +
			"== physical plan ==\n" + physical.Format(c.phys)
	}
	if s.Profile {
		t := time.Now()
		res, inst, err := db.runCompiled(ctx, c, sel, true)
		if err != nil {
			return nil, err
		}
		spans := c.spans
		if ps, ok := parseSpanFrom(ctx); ok {
			spans = append([]monitor.Span{ps}, spans...)
		}
		spans = append(spans, monitor.Span{Phase: "execute", Start: t, Dur: time.Since(t)})
		text += fmt.Sprintf("== execution ==\n%d rows\n", len(res.Rows))
		text += "== phase trace ==\n" + monitor.FormatSpans(spans)
		text += "== operator profile ==\n" + inst.RenderProfile()
	}
	return &Result{Text: text}, nil
}

// xcompileNode invokes the cross compiler (Figure 1's new component).
func xcompileNode(n plan.Node) (algebra.Node, error) { return xcompile.Compile(n) }

// newBatchFor allocates a batch matching a positional source.
func newBatchFor(src pdt.BatchSource) *vec.Batch {
	return vec.NewBatch(src.Kinds(), vec.DefaultSize)
}

// querySession owns per-query snapshots of every vectorwise table touched.
// It implements physical.Env, supplying operator factories with storage
// handles bound to those snapshots. Parallel plans open their scan
// fragments from exchange goroutines, so the snapshot map is locked.
type querySession struct {
	db  *DB
	ctx context.Context
	mu  sync.Mutex
	txs map[string]*txn.Txn
	// releases un-registers this query's scans from per-table buffer-manager
	// shares when the query finishes.
	releases []func()
}

func newQuerySession(db *DB, ctx context.Context) *querySession {
	if ctx == nil {
		ctx = context.Background()
	}
	return &querySession{db: db, ctx: ctx, txs: map[string]*txn.Txn{}}
}

func (qs *querySession) close() {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	for _, tx := range qs.txs {
		tx.Abort()
	}
	for _, rel := range qs.releases {
		rel()
	}
	qs.releases = nil
}

func (qs *querySession) addRelease(rel func()) {
	qs.mu.Lock()
	qs.releases = append(qs.releases, rel)
	qs.mu.Unlock()
}

func (qs *querySession) txFor(table string) (*txn.Txn, error) {
	qs.mu.Lock()
	defer qs.mu.Unlock()
	if tx, ok := qs.txs[table]; ok {
		return tx, nil
	}
	e, err := qs.db.entry(table)
	if err != nil {
		return nil, err
	}
	if e.store == nil {
		return nil, fmt.Errorf("engine: %q is not a vectorwise table", table)
	}
	tx := e.store.Begin()
	qs.txs[table] = tx
	return tx, nil
}

// Heap implements physical.Env. Virtual sys.* tables materialize a fresh
// snapshot heap per query; real heap tables come from the catalog.
func (qs *querySession) Heap(table string) (*rowengine.HeapTable, error) {
	if sysTableMeta(table) != nil {
		return qs.db.sysHeap(table)
	}
	e, err := qs.db.entry(table)
	if err != nil {
		return nil, err
	}
	if e.heap == nil {
		return nil, fmt.Errorf("engine: %q is not a heap table", table)
	}
	return e.heap, nil
}

// ScanSource implements physical.Env. Range filters ride along to the
// scanner on delta-free paths; txn.Scan drops them itself when the
// snapshot carries deltas (PDT merging is positional — every stable row
// must flow). The residual Select in the plan keeps results exact.
func (qs *querySession) ScanSource(table string, cols []int, vecSize int, filters []colstore.RangeFilter) (pdt.BatchSource, error) {
	tx, err := qs.txFor(table)
	if err != nil {
		return nil, err
	}
	src, err := tx.Scan(cols, vecSize, filters...)
	if err != nil {
		return nil, err
	}
	// Delta-free serial scans route group reads through the shared LRU pool
	// (row order preserved — only where bytes come from changes). Delta
	// paths merge positionally over the raw table and bypass the seam.
	if cs, isCol := src.(*colstore.Scanner); isCol && tx.DeltaFree() {
		if sh := qs.db.shareFor(table, tx.StableSnapshot()); sh != nil {
			_, release := sh.beginScan()
			qs.addRelease(release)
			cs.SetBlockSource(qs.ctx, lruBlockSource{sh.lru})
		}
	}
	return src, nil
}

// MorselSource implements physical.Env: the run-time view of a parallel
// scan, decided inside the query's snapshot (after every compile-time
// decision). A delta-free snapshot offers its row groups as morsels with an
// independent repositionable scanner per worker; a snapshot carrying deltas
// degrades to one serial PDT-merged stream that a single worker claims —
// the plan keeps its parallel shape either way, so a write committing
// between compile and run can no longer strand a partitioned plan.
func (qs *querySession) MorselSource(table string, cols []int, vecSize int, filters []colstore.RangeFilter) (exec.MorselSource, error) {
	tx, err := qs.txFor(table)
	if err != nil {
		return nil, err
	}
	if !tx.DeltaFree() {
		src, err := tx.Scan(cols, vecSize) // filters off: every stable row must flow
		if err != nil {
			return nil, err
		}
		return exec.SerialMorselSource(src), nil
	}
	snap := tx.StableSnapshot()
	base := newStableMorselSource(snap, cols, vecSize, filters)
	sh := qs.db.shareFor(table, snap)
	if sh == nil {
		return base, nil
	}
	concurrent, release := sh.beginScan()
	qs.addRelease(release)
	cms := &coopMorselSource{stableMorselSource: base, ctx: qs.ctx, lru: sh.lru}
	// Cooperate when the table has company and this is a full scan: the ABM
	// delivers every group exactly once across the workers, in whatever
	// order lets one physical read feed every attached query. Filtered
	// scans skip groups, so they stay on the LRU path.
	if qs.db.CoopScans && concurrent && len(filters) == 0 {
		cms.stream = &coopStream{scan: sh.abm.Attach()}
	}
	return cms, nil
}

// stableMorselSource serves a delta-free stable snapshot as row-group
// morsels. Each worker gets its own scanner (independent decode buffers);
// they coordinate purely through the morsel queue. Range filters on
// clustered columns narrow the offered groups to the window [winLo, winHi)
// once, here — workers never even see the pruned groups.
type stableMorselSource struct {
	snap         *colstore.Table
	cols         []int
	vecSize      int
	filters      []colstore.RangeFilter
	winLo, winHi int
}

// newStableMorselSource derives the clustered group window inside the
// query's snapshot and accounts the pruned groups once for the whole scan.
// An empty window is NOT accounted here: NumMorsels()==0 makes the executor
// fall back to Serial(), whose scanner narrows and accounts for itself.
func newStableMorselSource(snap *colstore.Table, cols []int, vecSize int, filters []colstore.RangeFilter) *stableMorselSource {
	lo, hi := snap.ClusteredWindow(filters)
	s := &stableMorselSource{snap: snap, cols: cols, vecSize: vecSize,
		filters: filters, winLo: lo, winHi: hi}
	if hi > lo && (lo > 0 || hi < snap.NumBlocks()) {
		snap.AccountWindowPrune(cols, lo, hi)
	}
	return s
}

// NumMorsels implements exec.MorselSource.
func (s *stableMorselSource) NumMorsels() int { return s.winHi - s.winLo }

// Worker implements exec.MorselSource. Queue indices are window-relative;
// the seek base rebases them onto absolute group ids.
func (s *stableMorselSource) Worker() (exec.MorselScanner, error) {
	sc, err := s.snap.NewMorselScanner(s.cols, s.vecSize, s.filters...)
	if err != nil {
		return nil, err
	}
	sc.SetSeekBase(s.winLo)
	return sc, nil
}

// Serial implements exec.MorselSource (only used when the snapshot has no
// row groups at all).
func (s *stableMorselSource) Serial() (pdt.BatchSource, error) {
	return s.snap.NewScanner(s.cols, s.vecSize, s.filters...)
}
