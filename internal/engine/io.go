package engine

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"

	"vectorwise/internal/colstore"
	"vectorwise/internal/monitor"
	"vectorwise/internal/optimizer"
	"vectorwise/internal/rewriter"
	"vectorwise/internal/rowengine"
	"vectorwise/internal/sql"
	"vectorwise/internal/types"
)

// execCopy bulk-loads a CSV file (no header; empty fields are NULL). Loads
// into an empty vectorwise table go straight to stable storage through the
// block appender (the fast path); otherwise rows flow through a
// transaction like any insert.
func (db *DB) execCopy(ctx context.Context, s *sql.CopyStmt) (*Result, error) {
	e, err := db.entry(s.Table)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(s.Path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.ReuseRecord = true
	logical := e.meta.Schema

	parseRow := func(rec []string) ([]types.Value, error) {
		if len(rec) != logical.Len() {
			return nil, fmt.Errorf("engine: CSV row has %d fields, want %d", len(rec), logical.Len())
		}
		row := make([]types.Value, len(rec))
		for i, field := range rec {
			col := logical.Cols[i]
			if field == "" {
				if !col.Type.Nullable {
					return nil, fmt.Errorf("engine: empty field for NOT NULL column %q", col.Name)
				}
				row[i] = types.NewNull(col.Type.Kind)
				continue
			}
			v, err := types.ParseValue(col.Type.Kind, field)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return row, nil
	}

	if len(s.OrderBy) > 0 {
		return db.execCopyClustered(ctx, s, e, r, parseRow)
	}

	var loaded int64
	switch {
	case e.heap != nil:
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			row, err := parseRow(rec)
			if err != nil {
				return nil, err
			}
			if _, err := e.heap.Insert(row); err != nil {
				return nil, err
			}
			loaded++
		}
	case e.store.Rows() == 0 && e.store.PendingOps() == 0:
		ap := e.store.Stable().NewAppender()
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			row, err := parseRow(rec)
			if err != nil {
				return nil, err
			}
			if err := ap.AppendRow(logicalToPhysicalRow(logical, row)); err != nil {
				return nil, err
			}
			loaded++
		}
		if err := ap.Close(); err != nil {
			return nil, err
		}
		// The appender bypassed the WAL; make the loaded stable durable
		// right away so a crash after COPY returns keeps the rows.
		if db.durable() {
			if err := db.persistTable(s.Table, e.store.Stable(), e.store.LastWalSeq()); err != nil {
				return nil, err
			}
		}
	default:
		tx := e.store.Begin()
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				tx.Abort()
				return nil, err
			}
			row, err := parseRow(rec)
			if err != nil {
				tx.Abort()
				return nil, err
			}
			if err := tx.InsertRow(logicalToPhysicalRow(logical, row)); err != nil {
				tx.Abort()
				return nil, err
			}
			loaded++
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	db.Monitor.Log(monitor.EvLoad, "copy %d rows into %s", loaded, s.Table)
	return &Result{Affected: loaded}, nil
}

// execCopyClustered streams COPY ... ORDER BY rows through the external
// sort-merge bulk loader, so groups land sorted with tight, disjoint
// min/max summaries and the sort columns keep their clustered markers.
func (db *DB) execCopyClustered(ctx context.Context, s *sql.CopyStmt, e *tableEntry,
	r *csv.Reader, parseRow func([]string) ([]types.Value, error)) (*Result, error) {
	if e.heap != nil {
		return nil, fmt.Errorf("engine: COPY ... ORDER BY needs a vectorwise table (%s is heap)", s.Table)
	}
	if e.store.Rows() != 0 || e.store.PendingOps() != 0 {
		return nil, fmt.Errorf("engine: COPY ... ORDER BY needs an empty table (%s has rows or pending deltas)", s.Table)
	}
	logical := e.meta.Schema
	keys := make([]colstore.SortKey, len(s.OrderBy))
	for i, o := range s.OrderBy {
		idx := -1
		for j, col := range logical.Cols {
			if col.Name == o.Col {
				idx = j
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("engine: unknown ORDER BY column %q in COPY into %s", o.Col, s.Table)
		}
		// Physical value columns share the logical positions; NULL
		// indicators live past them, so the index carries over.
		keys[i] = colstore.SortKey{Col: idx, Desc: o.Desc}
	}
	loader, err := e.store.Stable().NewBulkLoader(keys, 0)
	if err != nil {
		return nil, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		row, err := parseRow(rec)
		if err != nil {
			return nil, err
		}
		if err := loader.Append(logicalToPhysicalRow(logical, row)); err != nil {
			return nil, err
		}
	}
	if err := loader.Close(); err != nil {
		return nil, err
	}
	if db.durable() {
		if err := db.persistTable(s.Table, e.store.Stable(), e.store.LastWalSeq()); err != nil {
			return nil, err
		}
	}
	loaded := loader.Rows()
	db.Monitor.Log(monitor.EvLoad, "copy %d rows into %s clustered on %s", loaded, s.Table, s.OrderBy[0].Col)
	return &Result{Affected: loaded}, nil
}

// LoadBatchFunc bulk-loads generated rows via a callback (data generators,
// benches); the fast stable-append path when the table is empty.
func (db *DB) LoadBatchFunc(table string, gen func(emit func(row []types.Value) error) error) error {
	e, err := db.entry(table)
	if err != nil {
		return err
	}
	logical := e.meta.Schema
	if e.heap != nil {
		return gen(func(row []types.Value) error {
			_, err := e.heap.Insert(row)
			return err
		})
	}
	if e.store.Rows() == 0 && e.store.PendingOps() == 0 {
		ap := e.store.Stable().NewAppender()
		if err := gen(func(row []types.Value) error {
			return ap.AppendRow(logicalToPhysicalRow(logical, row))
		}); err != nil {
			return err
		}
		if err := ap.Close(); err != nil {
			return err
		}
		if db.durable() {
			return db.persistTable(table, e.store.Stable(), e.store.LastWalSeq())
		}
		return nil
	}
	tx := e.store.Begin()
	if err := gen(func(row []types.Value) error {
		return tx.InsertRow(logicalToPhysicalRow(logical, row))
	}); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// execAnalyze builds equi-depth histograms for every column of a table —
// the statistics the (Ingres-role) optimizer estimates with.
func (db *DB) execAnalyze(ctx context.Context, s *sql.AnalyzeStmt) (*Result, error) {
	e, err := db.entry(s.Table)
	if err != nil {
		return nil, err
	}
	logical := e.meta.Schema
	// Collect logical column values.
	vals := make([][]types.Value, logical.Len())
	nulls := make([]int64, logical.Len())
	collect := func(row []types.Value) {
		for i, v := range row {
			if v.Null {
				nulls[i]++
			} else {
				vals[i] = append(vals[i], v)
			}
		}
	}
	if e.heap != nil {
		e.heap.ScanFunc(func(_ rowengine.RowID, row []types.Value) bool { collect(row); return true })
	} else {
		tx := e.store.Begin()
		defer tx.Abort()
		cm := rewriter.PhysicalColMap(logical)
		cols := make([]int, e.store.Schema().Len())
		for i := range cols {
			cols[i] = i
		}
		src, err := tx.Scan(cols, 0)
		if err != nil {
			return nil, err
		}
		b := newBatchFor(src)
		for {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			_, n, done, err := src.Next(b)
			if err != nil {
				return nil, err
			}
			if done {
				break
			}
			for i := 0; i < n; i++ {
				collect(physicalToLogicalRow(logical, cm, b.GetRow(i)))
			}
		}
	}
	stats := map[string]*optimizer.ColStats{}
	for i, col := range logical.Cols {
		sort.Slice(vals[i], func(a, b int) bool { return types.Compare(vals[i][a], vals[i][b]) < 0 })
		stats[col.Name] = optimizer.BuildColStats(vals[i], 64, nulls[i])
	}
	db.mu.Lock()
	db.stats[s.Table] = stats
	db.mu.Unlock()
	db.Monitor.Log(monitor.EvDDL, "analyze %s", s.Table)
	return &Result{Text: "ANALYZE"}, nil
}
