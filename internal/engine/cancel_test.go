package engine

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"vectorwise/internal/monitor"
	"vectorwise/internal/types"
)

// bigDB builds a table large enough that queries take a while.
func bigDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE big (a BIGINT NOT NULL, b BIGINT NOT NULL)`)
	if err := db.LoadBatchFunc("big", func(emit func([]types.Value) error) error {
		for i := 0; i < 2_000_000; i++ {
			if err := emit([]types.Value{
				types.NewInt64(int64(i)), types.NewInt64(int64(i % 1000)),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

// The paper's "query cancellation" requirement end-to-end: a running SQL
// query (parallel, even) is killed via the monitor and the session gets a
// clean error quickly.
func TestSQLQueryCancellation(t *testing.T) {
	db := bigDB(t)
	var wg sync.WaitGroup
	wg.Add(1)
	errCh := make(chan error, 1)
	go func() {
		defer wg.Done()
		_, err := db.Exec(context.Background(),
			`SELECT b, COUNT(*), SUM(a) FROM big GROUP BY b WITH (PARALLEL=4)`)
		errCh <- err
	}()
	// Wait until the query registers, then cancel it.
	var id int64
	deadline := time.Now().Add(5 * time.Second)
	for {
		if act := db.Monitor.Active(); len(act) > 0 {
			id = act[0].ID
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("query never became active")
		}
		time.Sleep(time.Millisecond)
	}
	if !db.CancelQuery(id) {
		t.Fatal("cancel refused")
	}
	wg.Wait()
	err := <-errCh
	if err == nil {
		t.Fatal("cancelled query succeeded")
	}
	if !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("unexpected error: %v", err)
	}
	// Monitor recorded the cancellation.
	hist := db.Monitor.History()
	last := hist[len(hist)-1]
	if last.Status != monitor.StatusCancelled {
		t.Fatalf("status: %v", last.Status)
	}
}

func TestContextTimeoutCancelsQuery(t *testing.T) {
	db := bigDB(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := db.Exec(ctx, `SELECT a, COUNT(*) FROM big GROUP BY a`)
	if err == nil {
		t.Fatal("timed-out query succeeded")
	}
}

func TestVectorSizeOptionEndToEnd(t *testing.T) {
	db := itemsDB(t)
	a := mustExec(t, db, `SELECT grp, COUNT(*) FROM items GROUP BY grp ORDER BY grp`)
	b := mustExec(t, db, `SELECT grp, COUNT(*) FROM items GROUP BY grp ORDER BY grp WITH (VECTORSIZE=7)`)
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range a.Rows {
		if a.Rows[i][1].Int64() != b.Rows[i][1].Int64() {
			t.Fatalf("row %d differs", i)
		}
	}
}
