package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"
	"sort"

	"vectorwise/internal/colstore"
	"vectorwise/internal/fsim"
	"vectorwise/internal/metrics"
	"vectorwise/internal/monitor"
	"vectorwise/internal/plan"
	"vectorwise/internal/rewriter"
	"vectorwise/internal/rowengine"
	"vectorwise/internal/txn"
	"vectorwise/internal/types"
	"vectorwise/internal/wal"
)

// Durability on disk is three kinds of file in one directory:
//
//	MANIFEST      the catalog: every table's schema, structure, current
//	              stable-file generation, and the WAL sequence its stable
//	              file already covers (the replay horizon)
//	<t>.<gen>.vwt one checksummed stable table per generation (VWT3);
//	              checkpoints write generation N+1, flip the manifest,
//	              then delete generation N
//	wal.log       the write-ahead log of committed DML since checkpoints
//
// Every mutation of MANIFEST and the .vwt files goes through temp file +
// fsync + rename, so each is atomically either its old or new version;
// the WAL tolerates torn tails by construction. Heap tables keep their
// catalog entry in the manifest but their rows are NOT durable (they are
// the OLTP scratch structure; the paper's persistence story is columnar).

var mRecoveryReplayed = metrics.Default.Counter("recovery_records_replayed_total")

const (
	manifestName = "MANIFEST"
	walName      = "wal.log"
)

var manifestMagic = []byte("VWM1")

// manifestEntry is one table's durable catalog state.
type manifestEntry struct {
	Name      string
	Structure string // "vectorwise" | "heap"
	File      string // current stable file ("" until the first persist)
	Gen       uint64
	CkptSeq   uint64 // WAL records with seq <= this are already in File
	Key       int    // primary-key ordinal, -1 if none
	Schema    *types.Schema
}

type manifest struct {
	Tables []*manifestEntry
}

func (m *manifest) find(name string) *manifestEntry {
	for _, e := range m.Tables {
		if e.Name == name {
			return e
		}
	}
	return nil
}

func (m *manifest) remove(name string) {
	for i, e := range m.Tables {
		if e.Name == name {
			m.Tables = append(m.Tables[:i], m.Tables[i+1:]...)
			return
		}
	}
}

// --- manifest encoding: magic | u32 len | u32 crc32c | payload ---

func encodeManifest(m *manifest) []byte {
	ents := append([]*manifestEntry(nil), m.Tables...)
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name < ents[j].Name })
	var p []byte
	p = binary.AppendUvarint(p, uint64(len(ents)))
	str := func(s string) {
		p = binary.AppendUvarint(p, uint64(len(s)))
		p = append(p, s...)
	}
	for _, e := range ents {
		str(e.Name)
		str(e.Structure)
		str(e.File)
		p = binary.AppendUvarint(p, e.Gen)
		p = binary.AppendUvarint(p, e.CkptSeq)
		p = binary.AppendVarint(p, int64(e.Key))
		p = binary.AppendUvarint(p, uint64(e.Schema.Len()))
		for _, c := range e.Schema.Cols {
			str(c.Name)
			p = append(p, byte(c.Type.Kind))
			if c.Type.Nullable {
				p = append(p, 1)
			} else {
				p = append(p, 0)
			}
		}
	}
	out := make([]byte, 0, len(manifestMagic)+8+len(p))
	out = append(out, manifestMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(p)))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(p, crc32.MakeTable(crc32.Castagnoli)))
	return append(out, p...)
}

func decodeManifest(data []byte) (*manifest, error) {
	if len(data) < len(manifestMagic)+8 || !bytes.Equal(data[:4], manifestMagic) {
		return nil, fmt.Errorf("engine: manifest: bad header")
	}
	n := binary.LittleEndian.Uint32(data[4:])
	sum := binary.LittleEndian.Uint32(data[8:])
	if uint64(len(data)) != uint64(12)+uint64(n) {
		return nil, fmt.Errorf("engine: manifest: length %d does not match frame %d", len(data)-12, n)
	}
	p := data[12:]
	if crc32.Checksum(p, crc32.MakeTable(crc32.Castagnoli)) != sum {
		return nil, fmt.Errorf("engine: manifest: checksum mismatch")
	}
	off := 0
	uv := func(what string) (uint64, error) {
		v, l := binary.Uvarint(p[off:])
		if l <= 0 {
			return 0, fmt.Errorf("engine: manifest: truncated %s", what)
		}
		off += l
		return v, nil
	}
	str := func(what string) (string, error) {
		l, err := uv(what + " length")
		if err != nil {
			return "", err
		}
		if uint64(len(p)-off) < l {
			return "", fmt.Errorf("engine: manifest: truncated %s", what)
		}
		s := string(p[off : off+int(l)])
		off += int(l)
		return s, nil
	}
	nt, err := uv("table count")
	if err != nil {
		return nil, err
	}
	m := &manifest{}
	for i := uint64(0); i < nt; i++ {
		e := &manifestEntry{Schema: &types.Schema{}}
		if e.Name, err = str("table name"); err != nil {
			return nil, err
		}
		if e.Structure, err = str("structure"); err != nil {
			return nil, err
		}
		if e.File, err = str("file"); err != nil {
			return nil, err
		}
		if e.Gen, err = uv("generation"); err != nil {
			return nil, err
		}
		if e.CkptSeq, err = uv("checkpoint seq"); err != nil {
			return nil, err
		}
		k, l := binary.Varint(p[off:])
		if l <= 0 {
			return nil, fmt.Errorf("engine: manifest: truncated key")
		}
		off += l
		e.Key = int(k)
		nc, err := uv("column count")
		if err != nil {
			return nil, err
		}
		for c := uint64(0); c < nc; c++ {
			name, err := str("column name")
			if err != nil {
				return nil, err
			}
			if len(p)-off < 2 {
				return nil, fmt.Errorf("engine: manifest: truncated column type")
			}
			kind := types.Kind(p[off])
			nullable := p[off+1] != 0
			off += 2
			if !kind.Valid() {
				return nil, fmt.Errorf("engine: manifest: invalid kind %d for column %q", kind, name)
			}
			e.Schema.Cols = append(e.Schema.Cols, types.Col(name, types.T{Kind: kind, Nullable: nullable}))
		}
		m.Tables = append(m.Tables, e)
	}
	if off != len(p) {
		return nil, fmt.Errorf("engine: manifest: %d trailing bytes", len(p)-off)
	}
	return m, nil
}

// saveManifestLocked writes the manifest durably (temp + fsync + rename).
// Callers hold db.manifestMu.
func (db *DB) saveManifestLocked() error {
	data := encodeManifest(db.man)
	path := filepath.Join(db.dir, manifestName)
	tmp := path + ".tmp"
	f, err := db.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return db.fs.Rename(tmp, path)
}

func loadManifest(fs fsim.FS, path string) (*manifest, error) {
	if !fs.Exists(path) {
		return &manifest{}, nil
	}
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeManifest(data)
}

// --- open with recovery ---

// RecoveryInfo summarizes what opening a durable database found.
type RecoveryInfo struct {
	RecordsReplayed int      // WAL records replayed into read-PDTs
	RecordsSkipped  int      // records below a checkpoint horizon or for dropped tables
	TornTailBytes   int64    // bytes of torn WAL tail truncated
	Quarantined     []string // tables whose stable file failed its checksum
}

// Summary renders the recovery outcome as one human line.
func (ri *RecoveryInfo) Summary() string {
	s := fmt.Sprintf("recovery: %d wal records replayed, %d skipped, %d torn bytes truncated",
		ri.RecordsReplayed, ri.RecordsSkipped, ri.TornTailBytes)
	if len(ri.Quarantined) > 0 {
		s += fmt.Sprintf(", %d tables quarantined (%v)", len(ri.Quarantined), ri.Quarantined)
	}
	return s
}

// OpenDir opens (creating if needed) a durable database rooted at dir on
// the real file system: catalog from MANIFEST, stable tables from their
// checksummed .vwt files, recent commits replayed from the WAL.
func OpenDir(dir string) (*DB, *RecoveryInfo, error) {
	return OpenDirFS(fsim.OS, dir)
}

// OpenDirFS is OpenDir over an explicit file-system seam (fault-injection
// tests pass a MemFS).
//
// Recovery sequence: load the manifest; open each table's current stable
// generation, verifying per-row-group checksums (a failing table is
// quarantined — reads and writes error until it is dropped or the file
// restored — but the rest of the database opens); open the WAL, truncating
// any torn tail; replay every record above its table's checkpoint horizon
// through the exact commit application path. The resulting image is
// precisely the acknowledged-commit prefix at the moment of the crash.
func OpenDirFS(fs fsim.FS, dir string) (*DB, *RecoveryInfo, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, nil, err
	}
	man, err := loadManifest(fs, filepath.Join(dir, manifestName))
	if err != nil {
		return nil, nil, err
	}
	log, scan, err := wal.Open(fs, filepath.Join(dir, walName))
	if err != nil {
		return nil, nil, err
	}
	db := Open()
	db.fs, db.dir, db.log, db.man = fs, dir, log, man
	info := &RecoveryInfo{TornTailBytes: scan.TornBytes}

	for _, ent := range man.Tables {
		meta := &plan.TableMeta{Name: ent.Name, Schema: ent.Schema, Structure: ent.Structure, Key: ent.Key}
		e := &tableEntry{meta: meta}
		switch ent.Structure {
		case "heap":
			heapKey := -1
			if ent.Key >= 0 && ent.Schema.Cols[ent.Key].Type.Kind.Integral() {
				heapKey = ent.Key
			}
			e.heap = rowengine.NewHeapTable(ent.Schema, heapKey)
		default:
			var tab *colstore.Table
			if ent.File != "" {
				tab, err = colstore.LoadFS(fs, filepath.Join(dir, ent.File))
				if errors.Is(err, colstore.ErrCorrupt) {
					db.quarantined[ent.Name] = err
					info.Quarantined = append(info.Quarantined, ent.Name)
					db.Monitor.Log(monitor.EvDDL, "quarantined %s: %v", ent.Name, err)
					continue
				}
				if err != nil {
					return nil, nil, fmt.Errorf("engine: opening table %q: %w", ent.Name, err)
				}
			} else {
				tab = colstore.NewTable(rewriter.PhysicalSchema(ent.Schema))
			}
			e.store = txn.NewStore(tab)
		}
		db.tables[ent.Name] = e
	}

	// Replay the WAL tail in sequence order through the live commit
	// application path.
	for _, rec := range scan.Records {
		e, ok := db.tables[rec.Table]
		ent := man.find(rec.Table)
		if !ok || e.store == nil || ent == nil || rec.Seq <= ent.CkptSeq {
			info.RecordsSkipped++
			continue
		}
		if err := e.store.ApplyRecovered(rec); err != nil {
			return nil, nil, fmt.Errorf("engine: replaying wal for %q: %w", rec.Table, err)
		}
		info.RecordsReplayed++
		mRecoveryReplayed.Inc()
	}

	// Arm the durable hooks only after replay, so recovery itself never
	// re-logs.
	for name, e := range db.tables {
		if e.store != nil {
			e.store.SetDurable(log, name, db.persistFor(name))
		}
	}
	if info.RecordsReplayed > 0 || info.TornTailBytes > 0 || len(info.Quarantined) > 0 {
		db.Monitor.Log(monitor.EvDDL, "%s", info.Summary())
	}
	return db, info, nil
}

// Close flushes and closes the write-ahead log (no-op for in-memory
// databases). Commits after Close fail.
func (db *DB) Close() error {
	if db.log != nil {
		return db.log.Close()
	}
	return nil
}

// durable reports whether this DB persists to a directory.
func (db *DB) durable() bool { return db.log != nil }

// persistFor builds the checkpoint-persist hook for one table.
func (db *DB) persistFor(name string) func(*colstore.Table, uint64) error {
	return func(fresh *colstore.Table, through uint64) error {
		return db.persistTable(name, fresh, through)
	}
}

// persistTable writes a table's stable file as a new generation and flips
// the manifest to it, advancing the table's WAL replay horizon to through.
// Crash-ordering: the new generation is durable before the manifest names
// it, the manifest is durable before the old generation is deleted, and
// the WAL is truncated only up to the minimum horizon across all tables.
func (db *DB) persistTable(name string, tab *colstore.Table, through uint64) error {
	db.manifestMu.Lock()
	defer db.manifestMu.Unlock()
	ent := db.man.find(name)
	if ent == nil {
		return fmt.Errorf("engine: persist: no manifest entry for %q", name)
	}
	oldFile, oldGen, oldSeq := ent.File, ent.Gen, ent.CkptSeq
	newGen := ent.Gen + 1
	file := fmt.Sprintf("%s.%d.vwt", name, newGen)
	if err := tab.SaveFS(db.fs, filepath.Join(db.dir, file)); err != nil {
		return fmt.Errorf("engine: persist %q: %w", name, err)
	}
	ent.File, ent.Gen = file, newGen
	if through > ent.CkptSeq {
		ent.CkptSeq = through
	}
	if err := db.saveManifestLocked(); err != nil {
		ent.File, ent.Gen, ent.CkptSeq = oldFile, oldGen, oldSeq
		db.fs.Remove(filepath.Join(db.dir, file))
		return fmt.Errorf("engine: persist %q manifest: %w", name, err)
	}
	if oldFile != "" && oldFile != file {
		db.fs.Remove(filepath.Join(db.dir, oldFile)) // best-effort GC
	}
	db.truncateWALLocked()
	return nil
}

// truncateWALLocked drops WAL records every table has absorbed into its
// stable file. Best-effort: a failure leaves extra (harmless) records.
func (db *DB) truncateWALLocked() {
	min := uint64(math.MaxUint64)
	any := false
	for _, ent := range db.man.Tables {
		if ent.Structure == "heap" {
			continue
		}
		any = true
		if ent.CkptSeq < min {
			min = ent.CkptSeq
		}
	}
	if any && min > 0 {
		db.log.TruncateThrough(min)
	}
}

// createDurable registers a new table in the manifest. The checkpoint
// horizon starts at the WAL's current last sequence so that records logged
// for an earlier table of the same name are never replayed into this one.
func (db *DB) createDurable(meta *plan.TableMeta) error {
	db.manifestMu.Lock()
	defer db.manifestMu.Unlock()
	db.man.Tables = append(db.man.Tables, &manifestEntry{
		Name:      meta.Name,
		Structure: meta.Structure,
		CkptSeq:   db.log.LastSeq(),
		Key:       meta.Key,
		Schema:    meta.Schema,
	})
	if err := db.saveManifestLocked(); err != nil {
		db.man.remove(meta.Name)
		return fmt.Errorf("engine: create %q: %w", meta.Name, err)
	}
	return nil
}

// dropDurable removes a table from the manifest, then its files.
func (db *DB) dropDurable(name string) error {
	db.manifestMu.Lock()
	defer db.manifestMu.Unlock()
	ent := db.man.find(name)
	if ent == nil {
		return nil
	}
	file := ent.File
	db.man.remove(name)
	if err := db.saveManifestLocked(); err != nil {
		db.man.Tables = append(db.man.Tables, ent)
		return fmt.Errorf("engine: drop %q: %w", name, err)
	}
	if file != "" {
		db.fs.Remove(filepath.Join(db.dir, file))
	}
	return nil
}
