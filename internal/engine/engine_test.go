package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"vectorwise/internal/types"
)

func mustExec(t *testing.T, db *DB, q string) *Result {
	t.Helper()
	res, err := db.Exec(context.Background(), q)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}

func execErr(t *testing.T, db *DB, q string) error {
	t.Helper()
	_, err := db.Exec(context.Background(), q)
	if err == nil {
		t.Fatalf("exec %q: expected error", q)
	}
	return err
}

// itemsDB builds a small two-table database used across tests.
func itemsDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	mustExec(t, db, `CREATE TABLE items (
		id BIGINT NOT NULL PRIMARY KEY,
		grp BIGINT NOT NULL,
		price DOUBLE,
		name VARCHAR NOT NULL,
		d DATE NOT NULL)`)
	mustExec(t, db, `CREATE TABLE groups (gid BIGINT NOT NULL PRIMARY KEY, label VARCHAR NOT NULL)`)
	for g := 0; g < 4; g++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO groups VALUES (%d, 'G%d')`, g, g))
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO items VALUES ")
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		price := fmt.Sprintf("%d.5", i)
		if i%10 == 3 {
			price = "NULL" // every 10th-ish row has NULL price
		}
		fmt.Fprintf(&sb, "(%d, %d, %s, 'item%d', DATE '2020-01-01')", i, i%5, price, i%7)
	}
	mustExec(t, db, sb.String())
	return db
}

func TestEndToEndSelect(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `SELECT id, name FROM items WHERE id < 3 ORDER BY id`)
	if len(res.Rows) != 3 || res.Rows[2][0].Int64() != 2 || res.Rows[0][1].Str != "item0" {
		t.Fatalf("rows: %v", res.Rows)
	}
	if res.Cols[0] != "id" || res.Cols[1] != "name" {
		t.Fatalf("cols: %v", res.Cols)
	}
}

func TestEndToEndNulls(t *testing.T) {
	db := itemsDB(t)
	// NULL prices surface as NULL.
	res := mustExec(t, db, `SELECT price FROM items WHERE id = 3`)
	if len(res.Rows) != 1 || !res.Rows[0][0].Null {
		t.Fatalf("null price: %v", res.Rows)
	}
	// IS NULL filter.
	res = mustExec(t, db, `SELECT COUNT(*) FROM items WHERE price IS NULL`)
	if res.Rows[0][0].Int64() != 10 {
		t.Fatalf("null count: %v", res.Rows)
	}
	// NULL-safe arithmetic: NULL price + 1 stays NULL, filtered by >.
	res = mustExec(t, db, `SELECT COUNT(*) FROM items WHERE price + 1 > 0`)
	if res.Rows[0][0].Int64() != 90 {
		t.Fatalf("null arith: %v", res.Rows)
	}
	// COALESCE recovers.
	res = mustExec(t, db, `SELECT COUNT(*) FROM items WHERE COALESCE(price, -1.0) < 0`)
	if res.Rows[0][0].Int64() != 10 {
		t.Fatalf("coalesce: %v", res.Rows)
	}
}

func TestEndToEndAggregation(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `SELECT grp, COUNT(*), COUNT(price), SUM(price), MIN(price), MAX(price), AVG(price)
		FROM items GROUP BY grp ORDER BY grp`)
	if len(res.Rows) != 5 {
		t.Fatalf("groups: %v", len(res.Rows))
	}
	// Group 3 contains ids 3,8,13,…,98; ids ≡3 (mod 10) have NULL price.
	r3 := res.Rows[3]
	if r3[1].Int64() != 20 {
		t.Fatalf("count(*): %v", r3)
	}
	if r3[2].Int64() != 10 { // half the group's prices are NULL (ids 3,13,…,93)
		t.Fatalf("count(price): %v", r3)
	}
	// sum of prices for ids 8,18,…,98 = sum(i+0.5 for those ids).
	wantSum := 0.0
	cnt := 0
	for i := 8; i < 100; i += 10 {
		wantSum += float64(i) + 0.5
		cnt++
	}
	if r3[3].Float64() != wantSum {
		t.Fatalf("sum: %v want %v", r3[3], wantSum)
	}
	if r3[4].Float64() != 8.5 || r3[5].Float64() != 98.5 {
		t.Fatalf("min/max: %v", r3)
	}
	if r3[6].Float64() != wantSum/float64(cnt) {
		t.Fatalf("avg: %v", r3)
	}
}

func TestAggregateAllNullGroup(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE t (g BIGINT NOT NULL, v DOUBLE)`)
	mustExec(t, db, `INSERT INTO t VALUES (1, NULL), (1, NULL), (2, 5.0)`)
	res := mustExec(t, db, `SELECT g, SUM(v), MIN(v), AVG(v), COUNT(v) FROM t GROUP BY g ORDER BY g`)
	r1 := res.Rows[0]
	if !r1[1].Null || !r1[2].Null || !r1[3].Null || r1[4].Int64() != 0 {
		t.Fatalf("all-null group: %v", r1)
	}
	r2 := res.Rows[1]
	if r2[1].Null || r2[1].Float64() != 5 {
		t.Fatalf("non-null group: %v", r2)
	}
}

func TestEndToEndJoin(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `SELECT i.id, g.label FROM items i JOIN groups g ON i.grp = g.gid WHERE i.id < 10 ORDER BY i.id`)
	// grp = id%5; groups 0..3 exist (grp 4 unmatched).
	if len(res.Rows) != 8 {
		t.Fatalf("join rows: %v", len(res.Rows))
	}
	if res.Rows[0][1].Str != "G0" || res.Rows[1][1].Str != "G1" {
		t.Fatalf("labels: %v", res.Rows)
	}
	// Left outer keeps unmatched with NULL label.
	res = mustExec(t, db, `SELECT i.id, g.label FROM items i LEFT JOIN groups g ON i.grp = g.gid WHERE i.id < 10 ORDER BY i.id`)
	if len(res.Rows) != 10 {
		t.Fatalf("left join rows: %v", len(res.Rows))
	}
	if !res.Rows[4][1].Null || !res.Rows[9][1].Null { // ids 4 and 9 have grp 4
		t.Fatalf("left join nulls: %v", res.Rows)
	}
}

func TestEndToEndSubqueries(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `SELECT COUNT(*) FROM items WHERE grp IN (SELECT gid FROM groups)`)
	if res.Rows[0][0].Int64() != 80 {
		t.Fatalf("IN subquery: %v", res.Rows)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM items WHERE grp NOT IN (SELECT gid FROM groups)`)
	if res.Rows[0][0].Int64() != 20 {
		t.Fatalf("NOT IN: %v", res.Rows)
	}
	// Scalar subquery.
	res = mustExec(t, db, `SELECT COUNT(*) FROM items WHERE price > (SELECT AVG(price) FROM items)`)
	if res.Rows[0][0].Int64() == 0 || res.Rows[0][0].Int64() >= 90 {
		t.Fatalf("scalar subquery: %v", res.Rows)
	}
}

// The paper's NOT IN NULL intricacy (claim C10): a NULL in the subquery
// empties NOT IN entirely.
func TestNotInWithNulls(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE a (x BIGINT NOT NULL)`)
	mustExec(t, db, `CREATE TABLE b (y BIGINT)`)
	mustExec(t, db, `INSERT INTO a VALUES (1), (2), (3)`)
	mustExec(t, db, `INSERT INTO b VALUES (1), (NULL)`)
	res := mustExec(t, db, `SELECT COUNT(*) FROM a WHERE x NOT IN (SELECT y FROM b)`)
	if res.Rows[0][0].Int64() != 0 {
		t.Fatalf("NOT IN with NULL must be empty: %v", res.Rows)
	}
	// Without the NULL, the anti join behaves plainly.
	mustExec(t, db, `DELETE FROM b WHERE y IS NULL`)
	res = mustExec(t, db, `SELECT COUNT(*) FROM a WHERE x NOT IN (SELECT y FROM b)`)
	if res.Rows[0][0].Int64() != 2 {
		t.Fatalf("NOT IN without NULL: %v", res.Rows)
	}
	// IN treats NULL rows as non-matching but keeps other matches.
	mustExec(t, db, `INSERT INTO b VALUES (NULL)`)
	res = mustExec(t, db, `SELECT COUNT(*) FROM a WHERE x IN (SELECT y FROM b)`)
	if res.Rows[0][0].Int64() != 1 {
		t.Fatalf("IN with NULL: %v", res.Rows)
	}
}

func TestEndToEndUpdateDelete(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `UPDATE items SET price = 0.0 WHERE price IS NULL`)
	if res.Affected != 10 {
		t.Fatalf("update affected: %d", res.Affected)
	}
	res = mustExec(t, db, `SELECT COUNT(*) FROM items WHERE price IS NULL`)
	if res.Rows[0][0].Int64() != 0 {
		t.Fatalf("nulls remain: %v", res.Rows)
	}
	res = mustExec(t, db, `DELETE FROM items WHERE id >= 90`)
	if res.Affected != 10 {
		t.Fatalf("delete affected: %d", res.Affected)
	}
	res = mustExec(t, db, `SELECT COUNT(*), MAX(id) FROM items`)
	if res.Rows[0][0].Int64() != 90 || res.Rows[0][1].Int64() != 89 {
		t.Fatalf("after delete: %v", res.Rows)
	}
	// Set a column to NULL.
	mustExec(t, db, `UPDATE items SET price = NULL WHERE id = 0`)
	res = mustExec(t, db, `SELECT price FROM items WHERE id = 0`)
	if !res.Rows[0][0].Null {
		t.Fatalf("set null: %v", res.Rows)
	}
}

func TestCheckpointKeepsData(t *testing.T) {
	db := itemsDB(t)
	mustExec(t, db, `DELETE FROM items WHERE id < 5`)
	mustExec(t, db, `INSERT INTO items VALUES (1000, 0, 1.0, 'late', DATE '2021-01-01')`)
	before := mustExec(t, db, `SELECT COUNT(*), SUM(id) FROM items`)
	mustExec(t, db, `CHECKPOINT items`)
	after := mustExec(t, db, `SELECT COUNT(*), SUM(id) FROM items`)
	if before.Rows[0][0].Int64() != after.Rows[0][0].Int64() ||
		before.Rows[0][1].Int64() != after.Rows[0][1].Int64() {
		t.Fatalf("checkpoint changed data: %v vs %v", before.Rows, after.Rows)
	}
	store, _ := db.Store("items")
	if store.PendingOps() != 0 {
		t.Fatal("pending ops after checkpoint")
	}
}

func TestHeapTableEndToEnd(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE kv (k BIGINT NOT NULL PRIMARY KEY, v VARCHAR) WITH STRUCTURE=HEAP`)
	mustExec(t, db, `INSERT INTO kv VALUES (1, 'one'), (2, NULL), (3, 'three')`)
	res := mustExec(t, db, `SELECT k, v FROM kv WHERE v IS NOT NULL ORDER BY k DESC`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int64() != 3 {
		t.Fatalf("heap query: %v", res.Rows)
	}
	mustExec(t, db, `UPDATE kv SET v = 'two' WHERE k = 2`)
	res = mustExec(t, db, `SELECT COUNT(*) FROM kv WHERE v IS NULL`)
	if res.Rows[0][0].Int64() != 0 {
		t.Fatalf("heap update: %v", res.Rows)
	}
	mustExec(t, db, `DELETE FROM kv WHERE k = 1`)
	res = mustExec(t, db, `SELECT COUNT(*) FROM kv`)
	if res.Rows[0][0].Int64() != 2 {
		t.Fatalf("heap delete: %v", res.Rows)
	}
	// Heap and vectorwise tables join in one query.
	mustExec(t, db, `CREATE TABLE dim (k BIGINT NOT NULL, label VARCHAR NOT NULL)`)
	mustExec(t, db, `INSERT INTO dim VALUES (2, 'dim2'), (3, 'dim3')`)
	res = mustExec(t, db, `SELECT kv.v, dim.label FROM kv JOIN dim ON kv.k = dim.k ORDER BY kv.k`)
	if len(res.Rows) != 2 || res.Rows[0][1].Str != "dim2" {
		t.Fatalf("cross-engine join: %v", res.Rows)
	}
}

func TestExplainShowsPipeline(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `EXPLAIN SELECT grp, COUNT(*) FROM items WHERE id > 10 GROUP BY grp`)
	for _, want := range []string{"logical plan", "optimized plan", "X100 algebra", "Scan('items'", "Aggr", "physical plan", "HashAgg"} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("explain missing %q:\n%s", want, res.Text)
		}
	}
}

func TestExplainPhysical(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `EXPLAIN PHYSICAL SELECT grp, COUNT(*) FROM items WHERE id > 10 GROUP BY grp`)
	for _, want := range []string{"== physical plan ==", "Scan('items'", "HashAgg", "Select(", ":: ["} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("explain physical missing %q:\n%s", want, res.Text)
		}
	}
	if strings.Contains(res.Text, "logical plan") {
		t.Fatalf("EXPLAIN PHYSICAL should render only the physical DAG:\n%s", res.Text)
	}
	// The heap structure lowers to a HeapScan node.
	mustExec(t, db, `CREATE TABLE hp (k BIGINT NOT NULL) WITH STRUCTURE=HEAP`)
	res = mustExec(t, db, `EXPLAIN PHYSICAL SELECT k FROM hp`)
	if !strings.Contains(res.Text, "HeapScan('hp'") {
		t.Fatalf("heap table should plan a HeapScan:\n%s", res.Text)
	}
}

func TestProfileRendersOperatorStats(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `PROFILE SELECT grp, COUNT(*) FROM items GROUP BY grp`)
	for _, want := range []string{"== execution ==", "== operator profile ==", "rows=", "batches="} {
		if !strings.Contains(res.Text, want) {
			t.Fatalf("profile missing %q:\n%s", want, res.Text)
		}
	}
}

func TestMonitorRecordsPhysicalPlan(t *testing.T) {
	db := itemsDB(t)
	mustExec(t, db, `SELECT COUNT(*) FROM items`)
	hist := db.Monitor.History()
	last := hist[len(hist)-1]
	if !strings.Contains(last.Plan, "HashAgg") || !strings.Contains(last.Plan, "Scan('items'") {
		t.Fatalf("monitor plan not attached: %q", last.Plan)
	}
}

func TestShowTablesAndQueries(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `SHOW TABLES`)
	if len(res.Rows) != 2 {
		t.Fatalf("tables: %v", res.Rows)
	}
	if got := mustExec(t, db, `SHOW QUERIES`); len(got.Rows) != 0 {
		t.Fatalf("no queries should be active: %v", got.Rows)
	}
	mustExec(t, db, `SELECT COUNT(*) FROM items`)
	// History and events recorded (claim C12 monitoring).
	if len(db.Monitor.History()) == 0 || len(db.Monitor.Events()) == 0 {
		t.Fatal("monitor recorded nothing")
	}
}

func TestParallelQueryMatchesSerial(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE big (a BIGINT NOT NULL, b BIGINT NOT NULL, c DOUBLE NOT NULL)`)
	err := db.LoadBatchFunc("big", func(emit func([]types.Value) error) error {
		for i := 0; i < 100000; i++ {
			if err := emit([]types.Value{
				types.NewInt64(int64(i)),
				types.NewInt64(int64(i % 13)),
				types.NewFloat64(float64(i) * 0.25),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	serial := mustExec(t, db, `SELECT b, COUNT(*), SUM(a), MIN(c), MAX(c), AVG(c) FROM big GROUP BY b ORDER BY b`)
	parallel := mustExec(t, db, `SELECT b, COUNT(*), SUM(a), MIN(c), MAX(c), AVG(c) FROM big GROUP BY b ORDER BY b WITH (PARALLEL=4)`)
	if len(serial.Rows) != len(parallel.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(serial.Rows), len(parallel.Rows))
	}
	for i := range serial.Rows {
		for c := range serial.Rows[i] {
			a, b := serial.Rows[i][c], parallel.Rows[i][c]
			if a.String() != b.String() {
				t.Fatalf("row %d col %d: serial %v parallel %v", i, c, a, b)
			}
		}
	}
}

func TestErrorHandlingSurfacesInQueries(t *testing.T) {
	db := Open()
	mustExec(t, db, `CREATE TABLE n (x BIGINT NOT NULL, y BIGINT NOT NULL)`)
	mustExec(t, db, `INSERT INTO n VALUES (1, 0), (4, 2)`)
	// Division by zero detected (claim C8): x/y hits y=0.
	if err := execErr(t, db, `SELECT x / y FROM n`); !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("div0: %v", err)
	}
	// Overflow detected.
	mustExec(t, db, `CREATE TABLE o (x BIGINT NOT NULL)`)
	mustExec(t, db, `INSERT INTO o VALUES (9223372036854775807)`)
	if err := execErr(t, db, `SELECT x + 1 FROM o`); !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("overflow: %v", err)
	}
}

func TestFunctionsEndToEnd(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `SELECT UPPER(name), LENGTH(name), SUBSTRING(name, 1, 4),
		name || '!', YEAR(d), MONTH(d), ROUND(price, 0), ABS(0 - id)
		FROM items WHERE id = 1`)
	r := res.Rows[0]
	if r[0].Str != "ITEM1" || r[1].Int64() != 5 || r[2].Str != "item" || r[3].Str != "item1!" {
		t.Fatalf("string funcs: %v", r)
	}
	if r[4].Int32() != 2020 || r[5].Int32() != 1 {
		t.Fatalf("date funcs: %v", r)
	}
	if r[6].Float64() != 2.0 || r[7].Int64() != 1 {
		t.Fatalf("math funcs: %v", r)
	}
	// LIKE filters.
	res = mustExec(t, db, `SELECT COUNT(*) FROM items WHERE name LIKE 'item1%'`)
	if res.Rows[0][0].Int64() == 0 {
		t.Fatalf("like: %v", res.Rows)
	}
	// CASE.
	res = mustExec(t, db, `SELECT CASE WHEN grp < 2 THEN 'low' ELSE 'high' END, COUNT(*)
		FROM items GROUP BY CASE WHEN grp < 2 THEN 'low' ELSE 'high' END ORDER BY 1 DESC`)
	_ = res
}

func TestAnalyzeFeedsOptimizer(t *testing.T) {
	db := itemsDB(t)
	mustExec(t, db, `ANALYZE items`)
	if db.Column("items", "id") == nil {
		t.Fatal("no stats after analyze")
	}
	if db.Column("items", "price").NullFrac == 0 {
		t.Fatal("null fraction not recorded")
	}
	// Query still correct with stats present.
	res := mustExec(t, db, `SELECT COUNT(*) FROM items WHERE id < 50`)
	if res.Rows[0][0].Int64() != 50 {
		t.Fatalf("post-analyze query: %v", res.Rows)
	}
}

func TestInsertSelectAndDerivedTables(t *testing.T) {
	db := itemsDB(t)
	mustExec(t, db, `CREATE TABLE summary (grp BIGINT NOT NULL, total DOUBLE)`)
	res := mustExec(t, db, `INSERT INTO summary SELECT grp, SUM(price) FROM items GROUP BY grp`)
	if res.Affected != 5 {
		t.Fatalf("insert select: %d", res.Affected)
	}
	res = mustExec(t, db, `SELECT s.grp FROM (SELECT grp, total FROM summary) s WHERE s.total > 900.0 ORDER BY s.grp`)
	if len(res.Rows) == 0 {
		t.Fatalf("derived table: %v", res.Rows)
	}
}

func TestDistinctAndSortNulls(t *testing.T) {
	db := itemsDB(t)
	res := mustExec(t, db, `SELECT DISTINCT grp FROM items`)
	if len(res.Rows) != 5 {
		t.Fatalf("distinct: %v", res.Rows)
	}
	// ORDER BY a nullable column: NULLs group together at the end.
	res = mustExec(t, db, `SELECT price FROM items ORDER BY price LIMIT 100`)
	sawNull := false
	for _, r := range res.Rows {
		if r[0].Null {
			sawNull = true
		} else if sawNull {
			t.Fatal("non-NULL after NULL in sorted output")
		}
	}
	if !sawNull {
		t.Fatal("expected NULLs in output")
	}
}
