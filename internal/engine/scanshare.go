package engine

import (
	"context"
	"sync"
	"time"

	"vectorwise/internal/bufmgr"
	"vectorwise/internal/colstore"
	"vectorwise/internal/exec"
)

// DefaultBufferGroups is the per-table buffer-manager capacity (in row
// groups) when DB.BufferGroups is unset. At 16K rows per group this holds a
// few million rows of hot scan data.
const DefaultBufferGroups = 256

// tableChunkSource adapts a stable snapshot to bufmgr.Source: one chunk is
// one framed row group. An optional per-read delay simulates disk latency so
// buffer-policy differences are observable on in-memory tables (benchmarks).
type tableChunkSource struct {
	t     *colstore.Table
	delay time.Duration
}

func (s *tableChunkSource) NumChunks() int { return s.t.NumBlocks() }

func (s *tableChunkSource) ReadChunk(ctx context.Context, id int) ([]byte, error) {
	if s.delay > 0 {
		select {
		case <-time.After(s.delay):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s.t.EncodeGroup(id)
}

// scanShare is one table's shared buffer-manager state: an LRU pool for
// lone scans and a cooperative ABM that concurrent scans attach to, both
// over the same chunk source. It is pinned to one stable snapshot; a
// checkpoint swaps the snapshot and the share is rebuilt once idle.
type scanShare struct {
	stable *colstore.Table
	lru    *bufmgr.LRUPool
	abm    *bufmgr.ABM

	mu     sync.Mutex
	active int // scans currently registered on this share
}

// beginScan registers a scan and reports whether it has company — the
// condition for joining the cooperative ABM instead of scanning through the
// LRU pool alone. The returned release is idempotent.
func (sh *scanShare) beginScan() (concurrent bool, release func()) {
	sh.mu.Lock()
	sh.active++
	concurrent = sh.active >= 2
	sh.mu.Unlock()
	var once sync.Once
	return concurrent, func() {
		once.Do(func() {
			sh.mu.Lock()
			sh.active--
			sh.mu.Unlock()
		})
	}
}

// shareFor returns the buffer-manager share for a table's stable snapshot,
// building it on first use. A nil return means "scan the snapshot directly"
// — the snapshot is empty, or a checkpoint replaced it while older scans
// still hold the previous share.
func (db *DB) shareFor(table string, snap *colstore.Table) *scanShare {
	if snap.NumBlocks() == 0 {
		return nil
	}
	db.shareMu.Lock()
	defer db.shareMu.Unlock()
	if sh, ok := db.shares[table]; ok {
		if sh.stable == snap {
			return sh
		}
		sh.mu.Lock()
		busy := sh.active > 0
		sh.mu.Unlock()
		if busy {
			return nil
		}
	}
	capGroups := db.BufferGroups
	if capGroups <= 0 {
		capGroups = DefaultBufferGroups
	}
	src := &tableChunkSource{t: snap, delay: db.ScanIODelay}
	sh := &scanShare{
		stable: snap,
		lru:    bufmgr.NewLRUPool(src, capGroups),
		abm:    bufmgr.NewABM(src, capGroups),
	}
	db.shares[table] = sh
	return sh
}

// ShareStats reports a table's buffer-manager counters (benchmarks, tests):
// LRU pool stats and ABM stats side by side.
func (db *DB) ShareStats(table string) (lru, coop bufmgr.Stats, ok bool) {
	db.shareMu.Lock()
	sh := db.shares[table]
	db.shareMu.Unlock()
	if sh == nil {
		return bufmgr.Stats{}, bufmgr.Stats{}, false
	}
	return sh.lru.Stats(), sh.abm.Stats(), true
}

// lruBlockSource feeds a scanner through the shared LRU pool.
type lruBlockSource struct{ pool *bufmgr.LRUPool }

func (s lruBlockSource) FetchGroup(ctx context.Context, g int) ([]byte, error) {
	return s.pool.Get(ctx, g)
}

// coopStream adapts an attached bufmgr.CoopScan to exec.CoopStream. Close
// detaches exactly once (the worker fragments all call it).
type coopStream struct {
	scan *bufmgr.CoopScan
	once sync.Once
}

func (c *coopStream) Next(ctx context.Context) (int, []byte, bool, error) {
	return c.scan.Next(ctx)
}

func (c *coopStream) Close() { c.once.Do(c.scan.Detach) }

// coopMorselSource decorates a stable morsel source with buffer-managed
// reads: workers either share one cooperative stream (concurrent full
// scans) or pull groups through the LRU pool.
type coopMorselSource struct {
	*stableMorselSource
	ctx    context.Context
	stream exec.CoopStream // nil: not cooperating this time
	lru    *bufmgr.LRUPool // nil: read the snapshot directly
}

// Coop implements exec.CoopMorselSource.
func (s *coopMorselSource) Coop() exec.CoopStream { return s.stream }

// Worker hands out scanners wired to the buffer manager: cooperative
// workers get payloads pushed via SeekGroupData (no source needed); queue
// workers fetch through the shared LRU pool.
func (s *coopMorselSource) Worker() (exec.MorselScanner, error) {
	sc, err := s.stableMorselSource.Worker()
	if err != nil {
		return nil, err
	}
	if s.stream == nil && s.lru != nil {
		if cs, isCol := sc.(*colstore.Scanner); isCol {
			cs.SetBlockSource(s.ctx, lruBlockSource{s.lru})
		}
	}
	return sc, nil
}
