package engine

import (
	"strconv"
	"strings"
	"testing"

	"vectorwise/internal/colstore"
	"vectorwise/internal/types"
)

// addDim loads a second multi-block table join-compatible with pts.
func addDim(t *testing.T, db *DB, blocks int) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE dim (d BIGINT NOT NULL, w DOUBLE NOT NULL)`)
	rows := blocks * colstore.BlockRows
	err := db.LoadBatchFunc("dim", func(emit func([]types.Value) error) error {
		for i := 0; i < rows; i++ {
			if err := emit([]types.Value{
				types.NewInt64(int64(i)),
				types.NewFloat64(float64(i) * 2),
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func explainPhysical(t *testing.T, db *DB, q string) string {
	t.Helper()
	return mustExec(t, db, `EXPLAIN PHYSICAL `+q).Text
}

func TestParallelSortMatchesSerial(t *testing.T) {
	db := rangeDB(t, 5)
	q := `SELECT k, v FROM pts WHERE k < ` + strconv.Itoa(2*colstore.BlockRows) +
		` ORDER BY v DESC, k`
	serial := mustExec(t, db, q)
	parallel := mustExec(t, db, q+` WITH (PARALLEL=4)`)
	if len(serial.Rows) != 2*colstore.BlockRows {
		t.Fatalf("serial rows = %d", len(serial.Rows))
	}
	sameRows(t, serial, parallel)
	exp := explainPhysical(t, db, q+` WITH (PARALLEL=4)`)
	if !strings.Contains(exp, "XchgMerge") || !strings.Contains(exp, "ParallelScan") {
		t.Fatalf("sort not parallelized through XchgMerge:\n%s", exp)
	}
}

func TestParallelTopNMatchesSerial(t *testing.T) {
	db := rangeDB(t, 5)
	q := `SELECT k, v FROM pts ORDER BY v DESC, k LIMIT 9`
	serial := mustExec(t, db, q)
	parallel := mustExec(t, db, q+` WITH (PARALLEL=4)`)
	if len(serial.Rows) != 9 {
		t.Fatalf("serial rows = %d", len(serial.Rows))
	}
	sameRows(t, serial, parallel)
	exp := explainPhysical(t, db, q+` WITH (PARALLEL=4)`)
	if !strings.Contains(exp, "XchgMerge") {
		t.Fatalf("TopN not parallelized through XchgMerge:\n%s", exp)
	}
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	db := rangeDB(t, 5)
	addDim(t, db, 2)
	q := `SELECT COUNT(*), SUM(v), MAX(w) FROM pts JOIN dim ON pts.k = dim.d`
	serial := mustExec(t, db, q)
	parallel := mustExec(t, db, q+` WITH (PARALLEL=4)`)
	sameRows(t, serial, parallel)
	if got := serial.Rows[0][0].I64; got != int64(2*colstore.BlockRows) {
		t.Fatalf("join count = %d, want %d", got, 2*colstore.BlockRows)
	}
	exp := explainPhysical(t, db, q+` WITH (PARALLEL=4)`)
	if !strings.Contains(exp, "ParallelHashJoin") {
		t.Fatalf("join not parallelized:\n%s", exp)
	}
}

// PROFILE reports per-worker morsel counts on ParallelScan operators, and
// the engine-wide morsel counter is visible through sys.metrics.
func TestProfileAndMetricsReportMorsels(t *testing.T) {
	db := rangeDB(t, 4)
	res := mustExec(t, db, `PROFILE SELECT COUNT(*) FROM pts WITH (PARALLEL=4)`)
	if !strings.Contains(res.Text, "morsels=") {
		t.Fatalf("profile carries no morsel counters:\n%s", res.Text)
	}
	m := mustExec(t, db,
		`SELECT name, value FROM sys.metrics WHERE name LIKE 'exec_morsels_total%'`)
	if len(m.Rows) == 0 {
		t.Fatal("exec_morsels_total missing from sys.metrics")
	}
	var total float64
	for _, r := range m.Rows {
		total += r[1].F64
	}
	if total < 4 {
		t.Fatalf("exec_morsels_total = %v, want >= 4", total)
	}
}
