package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"vectorwise/internal/fsim"
	"vectorwise/internal/types"
)

const testDir = "db"

func openMem(t *testing.T, fs *fsim.MemFS) (*DB, *RecoveryInfo) {
	t.Helper()
	db, info, err := OpenDirFS(fs, testDir)
	if err != nil {
		t.Fatal(err)
	}
	return db, info
}

// allRows renders a query result as one comparable string.
func allRows(t *testing.T, db *DB, q string) string {
	t.Helper()
	res := mustExec(t, db, q)
	var sb strings.Builder
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// The end-to-end durability contract: every acknowledged DML statement
// survives a crash (power cut = drop the volatile image), including
// updates, deletes, DDL, and a checkpoint in the middle.
func TestDurableLifecycle(t *testing.T) {
	fs := fsim.NewMemFS()
	db, _ := openMem(t, fs)
	mustExec(t, db, `CREATE TABLE t (id BIGINT NOT NULL PRIMARY KEY, name VARCHAR NOT NULL, price DOUBLE)`)
	for i := 0; i < 10; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'row%d', %d.5)`, i, i, i))
	}
	mustExec(t, db, `UPDATE t SET name = 'edited', price = NULL WHERE id = 3`)
	mustExec(t, db, `DELETE FROM t WHERE id >= 8`)
	mustExec(t, db, `CHECKPOINT t`)
	mustExec(t, db, `INSERT INTO t VALUES (100, 'post-ckpt', 1.0)`)
	mustExec(t, db, `UPDATE t SET price = 9.25 WHERE id = 100`)
	want := allRows(t, db, `SELECT id, name, price FROM t ORDER BY id`)

	fs.Crash()
	db2, info := openMem(t, fs)
	if len(info.Quarantined) != 0 {
		t.Fatalf("unexpected quarantine: %v", info.Quarantined)
	}
	got := allRows(t, db2, `SELECT id, name, price FROM t ORDER BY id`)
	if got != want {
		t.Fatalf("image after crash differs:\n got %q\nwant %q", got, want)
	}

	// DDL durability: drop survives a crash too.
	mustExec(t, db2, `DROP TABLE t`)
	fs.Crash()
	db3, _ := openMem(t, fs)
	execErr(t, db3, `SELECT * FROM t`)
}

// The crash matrix: cut the durable WAL at EVERY byte offset and reopen.
// Recovery must yield exactly the rows of the longest committed prefix —
// never a partial statement, never a lost acknowledged one.
func TestCrashMatrixEveryWALByte(t *testing.T) {
	fs := fsim.NewMemFS()
	db, _ := openMem(t, fs)
	mustExec(t, db, `CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR NOT NULL)`)
	walPath := testDir + "/" + walName

	const commits = 6
	var marks []int64 // durable WAL length after each commit
	for i := 0; i < commits; i++ {
		// Two rows per statement: one commit record with two ops, so cuts
		// inside a frame would tear a multi-row transaction if mishandled.
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d, 'a%d'), (%d, 'b%d')`, i, i, i+1000, i))
		marks = append(marks, fs.DurableLen(walPath))
	}
	base := fs.CloneDurable()
	full, err := fs.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		cfs := base.CloneDurable()
		cfs.SetDurable(walPath, full[:cut])
		db2, info, err := OpenDirFS(cfs, testDir)
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		wantCommits := 0
		for _, m := range marks {
			if int64(cut) >= m {
				wantCommits++
			}
		}
		res := mustExec(t, db2, `SELECT COUNT(*) FROM t`)
		if n := res.Rows[0][0].Int64(); n != int64(2*wantCommits) {
			t.Fatalf("cut %d: %d rows recovered, want %d (replayed %d, torn %d)",
				cut, n, 2*wantCommits, info.RecordsReplayed, info.TornTailBytes)
		}
		if info.RecordsReplayed != wantCommits {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, info.RecordsReplayed, wantCommits)
		}
		db2.Close()
	}
}

// A crash between commits over a reopened database: rows acknowledged
// before the kill are all present, the in-flight statement is invisible.
func TestKillDuringLoadKeepsCommittedPrefix(t *testing.T) {
	fs := fsim.NewMemFS()
	db, _ := openMem(t, fs)
	mustExec(t, db, `CREATE TABLE t (id BIGINT NOT NULL)`)
	mustExec(t, db, `INSERT INTO t VALUES (1)`)
	mustExec(t, db, `INSERT INTO t VALUES (2)`)
	// Simulate the kill arriving mid-write of the next commit: only 4 more
	// bytes reach the file — a torn frame header.
	fs.FailWritesAfter(4)
	if _, err := db.Exec(context.Background(), `INSERT INTO t VALUES (3)`); err == nil {
		t.Fatal("write with exhausted budget succeeded")
	}
	fs.Crash()
	db2, _ := openMem(t, fs)
	if got := allRows(t, db2, `SELECT id FROM t ORDER BY id`); got != "1\n2\n" {
		t.Fatalf("recovered %q", got)
	}
}

// A flipped bit in a checkpointed table file quarantines that table at
// open: reads name the corruption, other tables stay usable, and DROP
// reclaims the name.
func TestBitFlipQuarantinesTable(t *testing.T) {
	fs := fsim.NewMemFS()
	db, _ := openMem(t, fs)
	mustExec(t, db, `CREATE TABLE bad (id BIGINT NOT NULL, name VARCHAR NOT NULL)`)
	mustExec(t, db, `CREATE TABLE good (id BIGINT NOT NULL)`)
	for i := 0; i < 50; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO bad VALUES (%d, 'name%d')`, i, i))
	}
	mustExec(t, db, `INSERT INTO good VALUES (7)`)
	mustExec(t, db, `CHECKPOINT bad`)
	mustExec(t, db, `CHECKPOINT good`)
	db.Close()

	vwt := testDir + "/bad.1.vwt"
	if !fs.Exists(vwt) {
		t.Fatalf("expected %s to exist", vwt)
	}
	if err := fs.FlipBit(vwt, fs.DurableLen(vwt)*3/5); err != nil {
		t.Fatal(err)
	}
	db2, info := openMem(t, fs)
	if len(info.Quarantined) != 1 || info.Quarantined[0] != "bad" {
		t.Fatalf("quarantined %v", info.Quarantined)
	}
	err := execErr(t, db2, `SELECT COUNT(*) FROM bad`)
	if !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("quarantine not surfaced: %v", err)
	}
	if got := allRows(t, db2, `SELECT id FROM good`); got != "7\n" {
		t.Fatalf("good table damaged: %q", got)
	}
	execErr(t, db2, `INSERT INTO bad VALUES (1, 'x')`)
	execErr(t, db2, `CREATE TABLE bad (id BIGINT NOT NULL)`)
	mustExec(t, db2, `DROP TABLE bad`)
	mustExec(t, db2, `CREATE TABLE bad (id BIGINT NOT NULL)`)
	mustExec(t, db2, `INSERT INTO bad VALUES (42)`)
	fs.Crash()
	db3, info3 := openMem(t, fs)
	if len(info3.Quarantined) != 0 {
		t.Fatalf("still quarantined after drop: %v", info3.Quarantined)
	}
	if got := allRows(t, db3, `SELECT id FROM bad`); got != "42\n" {
		t.Fatalf("recreated table: %q", got)
	}
}

// Checkpointing every table lets the engine truncate the WAL; recovery
// afterwards replays nothing and still sees every row.
func TestCheckpointTruncatesWAL(t *testing.T) {
	fs := fsim.NewMemFS()
	db, _ := openMem(t, fs)
	mustExec(t, db, `CREATE TABLE t (id BIGINT NOT NULL)`)
	for i := 0; i < 5; i++ {
		mustExec(t, db, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}
	walPath := testDir + "/" + walName
	if fs.DurableLen(walPath) == 0 {
		t.Fatal("no WAL written")
	}
	mustExec(t, db, `CHECKPOINT t`)
	if n := fs.DurableLen(walPath); n != 0 {
		t.Fatalf("WAL not truncated after full checkpoint: %d bytes", n)
	}
	fs.Crash()
	db2, info := openMem(t, fs)
	if info.RecordsReplayed != 0 {
		t.Fatalf("replayed %d records from a truncated WAL", info.RecordsReplayed)
	}
	if res := mustExec(t, db2, `SELECT COUNT(*) FROM t`); res.Rows[0][0].Int64() != 5 {
		t.Fatalf("rows lost across checkpoint: %v", res.Rows)
	}
}

// The bulk-load fast path bypasses the WAL; it must persist the stable
// table immediately so an acknowledged load survives a crash.
func TestBulkLoadFastPathDurable(t *testing.T) {
	fs := fsim.NewMemFS()
	db, _ := openMem(t, fs)
	mustExec(t, db, `CREATE TABLE t (id BIGINT NOT NULL)`)
	err := db.LoadBatchFunc("t", func(emit func(row []types.Value) error) error {
		for i := 0; i < 1000; i++ {
			if err := emit([]types.Value{types.NewInt64(int64(i))}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	db2, _ := openMem(t, fs)
	if res := mustExec(t, db2, `SELECT COUNT(*) FROM t`); res.Rows[0][0].Int64() != 1000 {
		t.Fatalf("bulk load lost: %v", res.Rows)
	}
	// And transactional DML on top of the loaded stable still recovers.
	mustExec(t, db2, `DELETE FROM t WHERE id < 10`)
	fs.Crash()
	db3, _ := openMem(t, fs)
	if res := mustExec(t, db3, `SELECT COUNT(*) FROM t`); res.Rows[0][0].Int64() != 990 {
		t.Fatalf("post-load delete lost: %v", res.Rows)
	}
}

// Heap tables keep their catalog entry but not their rows (documented
// non-durability) — reopening yields the table, empty.
func TestHeapTableCatalogOnlyDurability(t *testing.T) {
	fs := fsim.NewMemFS()
	db, _ := openMem(t, fs)
	mustExec(t, db, `CREATE TABLE h (id BIGINT NOT NULL PRIMARY KEY, v VARCHAR NOT NULL) WITH STRUCTURE=HEAP`)
	mustExec(t, db, `INSERT INTO h VALUES (1, 'x')`)
	fs.Crash()
	db2, _ := openMem(t, fs)
	if res := mustExec(t, db2, `SELECT COUNT(*) FROM h`); res.Rows[0][0].Int64() != 0 {
		t.Fatalf("heap rows unexpectedly durable: %v", res.Rows)
	}
	mustExec(t, db2, `INSERT INTO h VALUES (2, 'y')`)
}
