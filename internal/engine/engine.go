// Package engine is the product: it wires the full Figure-1 pipeline —
// SQL parser → binder → optimizer → cross compiler → Vectorwise rewriter →
// vectorized kernel — around a catalog offering both table structures the
// paper describes: VECTORWISE (compressed column store + PDT transactions,
// for OLAP) and HEAP (classic slotted-page row store, for OLTP-style
// access).
package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"vectorwise/internal/colstore"
	"vectorwise/internal/expr"
	"vectorwise/internal/fsim"
	"vectorwise/internal/metrics"
	"vectorwise/internal/monitor"
	"vectorwise/internal/optimizer"
	"vectorwise/internal/plan"
	"vectorwise/internal/rewriter"
	"vectorwise/internal/rowengine"
	"vectorwise/internal/sql"
	"vectorwise/internal/txn"
	"vectorwise/internal/types"
	"vectorwise/internal/wal"
)

// DB is a database instance: the shared storage/compile core that sessions
// (internal/session), the shell, and the server are all clients of.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*tableEntry
	stats   map[string]map[string]*optimizer.ColStats
	Monitor *monitor.Monitor
	// Parallel is the default degree of parallelism for queries (can be
	// overridden per query via WITH (PARALLEL=n)).
	Parallel int
	// VectorSize overrides the default vector length (0 = vec.DefaultSize);
	// experiment E2's knob.
	VectorSize int
	// BufferGroups is the per-table buffer-manager capacity in row groups
	// (0 = DefaultBufferGroups). Small values make policy differences
	// visible; production leaves the default.
	BufferGroups int
	// CoopScans lets concurrent parallel scans of one table attach to a
	// shared cooperative ABM instead of each reading through the LRU pool.
	// On by default; benchmarks toggle it to measure the difference.
	CoopScans bool
	// ScanIODelay adds a simulated per-group read latency to buffer-managed
	// scans (benchmarks only; 0 in production).
	ScanIODelay time.Duration
	// SessionSource, when set by the session layer, supplies sys.sessions
	// rows.
	SessionSource func() []SessionInfo

	shareMu sync.Mutex
	shares  map[string]*scanShare

	// Durability (nil/zero for in-memory databases; see durable.go).
	fs          fsim.FS
	dir         string
	log         *wal.WAL
	manifestMu  sync.Mutex // guards man and its file; a leaf lock, taken after db.mu / store locks
	man         *manifest
	quarantined map[string]error // table -> open failure (checksum)
}

// SessionInfo is one row of sys.sessions, reported by the session layer.
type SessionInfo struct {
	ID       int64
	State    string // "idle" | "active" | "queued"
	Queries  int64  // statements executed so far
	Active   int64  // statements currently running
	Reserved int64  // bytes of admission budget currently reserved
	AgeMS    float64
}

type tableEntry struct {
	meta *plan.TableMeta
	// Exactly one of the following is set, per meta.Structure.
	store *txn.Store           // "vectorwise"
	heap  *rowengine.HeapTable // "heap"
}

// Open creates an empty in-memory database.
func Open() *DB {
	return &DB{
		tables:      map[string]*tableEntry{},
		stats:       map[string]map[string]*optimizer.ColStats{},
		shares:      map[string]*scanShare{},
		quarantined: map[string]error{},
		Monitor:     monitor.New(2048),
		CoopScans:   true,
	}
}

// Result is a statement outcome.
type Result struct {
	Cols     []string
	Rows     [][]types.Value
	Affected int64
	Text     string // EXPLAIN / SHOW output
}

// ctxKey keys engine-internal context values.
type ctxKey int

// parseSpanKey carries the parse-phase span from Exec (which owns parsing)
// to execSelect (which owns the monitor record) without widening the public
// ExecStmt signature. queryBudgetKey carries the session layer's per-query
// memory budget the same way.
const (
	parseSpanKey ctxKey = iota
	queryBudgetKey
)

func parseSpanFrom(ctx context.Context) (monitor.Span, bool) {
	sp, ok := ctx.Value(parseSpanKey).(monitor.Span)
	return sp, ok
}

// WithQueryBudget caps the bytes the query run under ctx may materialize in
// sorts, join builds, and aggregation tables (0 = unlimited).
func WithQueryBudget(ctx context.Context, bytes int64) context.Context {
	if bytes <= 0 {
		return ctx
	}
	return context.WithValue(ctx, queryBudgetKey, bytes)
}

func queryBudgetFrom(ctx context.Context) int64 {
	n, _ := ctx.Value(queryBudgetKey).(int64)
	return n
}

// Exec parses and executes one statement.
func (db *DB) Exec(ctx context.Context, query string) (*Result, error) {
	t := time.Now()
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	ctx = context.WithValue(ctx, parseSpanKey,
		monitor.Span{Phase: "parse", Start: t, Dur: time.Since(t)})
	return db.ExecStmt(ctx, stmt, query)
}

// ExecScript executes a semicolon-separated script, returning the last
// statement's result.
func (db *DB) ExecScript(ctx context.Context, script string) (*Result, error) {
	stmts, err := sql.ParseAll(script)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, s := range stmts {
		last, err = db.ExecStmt(ctx, s, "")
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecStmt executes a parsed statement.
func (db *DB) ExecStmt(ctx context.Context, stmt sql.Stmt, text string) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		return db.execSelect(ctx, s, text)
	case *sql.CreateTableStmt:
		return db.execCreate(s)
	case *sql.DropTableStmt:
		return db.execDrop(s)
	case *sql.InsertStmt:
		return db.execInsert(ctx, s)
	case *sql.UpdateStmt:
		return db.execUpdate(ctx, s)
	case *sql.DeleteStmt:
		return db.execDelete(ctx, s)
	case *sql.CopyStmt:
		return db.execCopy(ctx, s)
	case *sql.AnalyzeStmt:
		return db.execAnalyze(ctx, s)
	case *sql.CheckpointStmt:
		return db.execCheckpoint(s)
	case *sql.ExplainStmt:
		return db.execExplain(ctx, s)
	case *sql.ShowStmt:
		return db.execShow(s)
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// --- catalog ---

// ResolveTable implements plan.Catalog.
func (db *DB) ResolveTable(name string) (*plan.TableMeta, error) {
	if meta := sysTableMeta(name); meta != nil {
		return meta, nil
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.tables[name]
	if !ok {
		if qerr, qok := db.quarantined[name]; qok {
			return nil, fmt.Errorf("engine: table %q is quarantined: %v", name, qerr)
		}
		return nil, fmt.Errorf("engine: no table %q", name)
	}
	return e.meta, nil
}

// TableRows implements optimizer.Stats.
func (db *DB) TableRows(table string) int64 {
	db.mu.RLock()
	e, ok := db.tables[table]
	db.mu.RUnlock()
	if !ok {
		return -1
	}
	if e.store != nil {
		return e.store.Rows()
	}
	return e.heap.Rows()
}

// Column implements optimizer.Stats.
func (db *DB) Column(table, col string) *optimizer.ColStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if m, ok := db.stats[table]; ok {
		return m[col]
	}
	return nil
}

// ColumnBounds implements optimizer.SummaryStats: global min/max folded
// from the column store's block summaries, the estimation fallback when
// ANALYZE has not run. NULL positions hold in-band safe values, which can
// only widen the bounds — fine for selectivity estimates.
func (db *DB) ColumnBounds(table, col string) (types.Value, types.Value, bool) {
	e, err := db.entry(table)
	if err != nil || e.store == nil {
		return types.Value{}, types.Value{}, false
	}
	stable := e.store.Stable()
	idx := stable.Schema().Find(col)
	if idx < 0 {
		return types.Value{}, types.Value{}, false
	}
	return stable.ColumnSummary(idx)
}

// ClusteredWindow implements optimizer.ClusterStats: when col is clustered
// (groups sorted and disjoint — a clustered bulk load guarantees this), a
// binary search over the ordered zone maps yields the contiguous group
// interval [lo, hi) that can contain values in [loV, hiV].
func (db *DB) ClusteredWindow(table, col string, loV, hiV *types.Value) (lo, hi, total int, ok bool) {
	e, err := db.entry(table)
	if err != nil || e.store == nil {
		return 0, 0, 0, false
	}
	stable := e.store.Stable()
	idx := stable.Schema().Find(col)
	if idx < 0 || !stable.Clustered(idx) {
		return 0, 0, 0, false
	}
	total = stable.NumBlocks()
	if total == 0 {
		return 0, 0, 0, false
	}
	lo, hi = stable.ClusteredWindow([]colstore.RangeFilter{{Col: idx, Lo: loV, Hi: hiV}})
	return lo, hi, total, true
}

// Store returns a vectorwise table's transactional store (tests, benches).
func (db *DB) Store(name string) (*txn.Store, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.tables[name]
	if !ok || e.store == nil {
		if qerr, qok := db.quarantined[name]; qok {
			return nil, fmt.Errorf("engine: table %q is quarantined: %v", name, qerr)
		}
		return nil, fmt.Errorf("engine: no vectorwise table %q", name)
	}
	return e.store, nil
}

// Heap returns a heap table's storage (tests, benches).
func (db *DB) Heap(name string) (*rowengine.HeapTable, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.tables[name]
	if !ok || e.heap == nil {
		return nil, fmt.Errorf("engine: no heap table %q", name)
	}
	return e.heap, nil
}

// --- DDL ---

func (db *DB) execCreate(s *sql.CreateTableStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[s.Name]; exists {
		return nil, fmt.Errorf("engine: table %q already exists", s.Name)
	}
	if qerr, ok := db.quarantined[s.Name]; ok {
		return nil, fmt.Errorf("engine: table %q exists but is quarantined (drop it first): %v", s.Name, qerr)
	}
	logical := &types.Schema{}
	key := -1
	for i, c := range s.Cols {
		if logical.Find(c.Name) >= 0 {
			return nil, fmt.Errorf("engine: duplicate column %q", c.Name)
		}
		logical.Cols = append(logical.Cols, types.Col(c.Name, c.Type))
		if c.PrimaryKey {
			if key >= 0 {
				return nil, fmt.Errorf("engine: multiple primary keys")
			}
			key = i
		}
	}
	meta := &plan.TableMeta{Name: s.Name, Schema: logical, Structure: s.Structure, Key: key}
	e := &tableEntry{meta: meta}
	switch s.Structure {
	case "vectorwise":
		phys := rewriter.PhysicalSchema(logical)
		e.store = txn.NewStore(colstore.NewTable(phys))
	case "heap":
		heapKey := -1
		if key >= 0 && logical.Cols[key].Type.Kind.Integral() {
			heapKey = key
		}
		e.heap = rowengine.NewHeapTable(logical, heapKey)
	default:
		return nil, fmt.Errorf("engine: unknown structure %q", s.Structure)
	}
	if db.durable() {
		if err := db.createDurable(meta); err != nil {
			return nil, err
		}
		if e.store != nil {
			e.store.SetDurable(db.log, s.Name, db.persistFor(s.Name))
		}
	}
	db.tables[s.Name] = e
	db.Monitor.Log(monitor.EvDDL, "create table %s (%s)", s.Name, s.Structure)
	return &Result{Text: "CREATE TABLE"}, nil
}

func (db *DB) execDrop(s *sql.DropTableStmt) (*Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	_, known := db.tables[s.Name]
	_, isQuarantined := db.quarantined[s.Name]
	if !known && !isQuarantined {
		return nil, fmt.Errorf("engine: no table %q", s.Name)
	}
	// Dropping a quarantined table is the operator's way to discard a
	// corrupt stable file and reclaim the name.
	if db.durable() {
		if err := db.dropDurable(s.Name); err != nil {
			return nil, err
		}
	}
	delete(db.tables, s.Name)
	delete(db.stats, s.Name)
	delete(db.quarantined, s.Name)
	db.Monitor.Log(monitor.EvDDL, "drop table %s", s.Name)
	return &Result{Text: "DROP TABLE"}, nil
}

func (db *DB) execCheckpoint(s *sql.CheckpointStmt) (*Result, error) {
	store, err := db.Store(s.Table)
	if err != nil {
		return nil, err
	}
	if err := store.Checkpoint(); err != nil {
		return nil, err
	}
	db.Monitor.Log(monitor.EvCheckpoint, "checkpoint %s", s.Table)
	return &Result{Text: "CHECKPOINT"}, nil
}

func (db *DB) execShow(s *sql.ShowStmt) (*Result, error) {
	switch s.What {
	case "tables":
		db.mu.RLock()
		var names []string
		for n := range db.tables {
			names = append(names, n)
		}
		db.mu.RUnlock()
		sort.Strings(names)
		res := &Result{Cols: []string{"table", "structure", "rows"}}
		for _, n := range names {
			e := db.tables[n]
			res.Rows = append(res.Rows, []types.Value{
				types.NewString(n),
				types.NewString(e.meta.Structure),
				types.NewInt64(db.TableRows(n)),
			})
		}
		return res, nil
	case "queries":
		res := &Result{Cols: []string{"id", "status", "duration", "sql"}}
		for _, qi := range db.Monitor.Active() {
			res.Rows = append(res.Rows, []types.Value{
				types.NewInt64(qi.ID),
				types.NewString(string(qi.Status)),
				types.NewString(qi.Duration.String()),
				types.NewString(qi.SQL),
			})
		}
		return res, nil
	case "metrics":
		res := &Result{Cols: []string{"name", "kind", "value"}}
		for _, sm := range metrics.Default.Snapshot() {
			res.Rows = append(res.Rows, []types.Value{
				types.NewString(sm.Name),
				types.NewString(sm.Kind),
				types.NewFloat64(sm.Value),
			})
		}
		return res, nil
	case "events":
		res := &Result{Cols: []string{"time", "kind", "msg"}}
		for _, ev := range db.Monitor.Events() {
			res.Rows = append(res.Rows, []types.Value{
				types.NewString(ev.Time.Format("2006-01-02 15:04:05.000")),
				types.NewString(string(ev.Kind)),
				types.NewString(ev.Msg),
			})
		}
		return res, nil
	}
	return nil, fmt.Errorf("engine: SHOW %q", s.What)
}

// CancelQuery aborts a running query by monitor ID.
func (db *DB) CancelQuery(id int64) bool { return db.Monitor.Cancel(id) }

// --- DML helpers ---

// bindRowExprs evaluates a VALUES row into typed column values.
func bindRowExprs(b *plan.Binder, meta *plan.TableMeta, row []sql.ExprNode) ([]types.Value, error) {
	if len(row) != meta.Schema.Len() {
		return nil, fmt.Errorf("engine: INSERT arity %d, want %d", len(row), meta.Schema.Len())
	}
	out := make([]types.Value, len(row))
	for i, en := range row {
		col := meta.Schema.Cols[i]
		bound, err := b.BindExprNoCols(en)
		if err != nil {
			return nil, err
		}
		v, err := expr.EvalRow(bound, nil)
		if err != nil {
			return nil, err
		}
		cv, err := coerceValue(v, col.Type)
		if err != nil {
			return nil, fmt.Errorf("engine: column %q: %w", col.Name, err)
		}
		out[i] = cv
	}
	return out, nil
}

// coerceValue converts a literal to a column type.
func coerceValue(v types.Value, t types.T) (types.Value, error) {
	if v.Null {
		if !t.Nullable {
			return types.Value{}, fmt.Errorf("NULL into NOT NULL column")
		}
		return types.NewNull(t.Kind), nil
	}
	if v.Kind == t.Kind {
		return v, nil
	}
	switch {
	case t.Kind == types.KindFloat64 && v.Kind.Numeric():
		return types.NewFloat64(v.AsFloat()), nil
	case t.Kind == types.KindInt64 && v.Kind.Integral():
		return types.NewInt64(v.AsInt()), nil
	case t.Kind == types.KindInt32 && v.Kind.Integral():
		i := v.AsInt()
		if i != int64(int32(i)) {
			return types.Value{}, fmt.Errorf("value %d overflows INTEGER", i)
		}
		return types.NewInt32(int32(i)), nil
	case t.Kind == types.KindDate && v.Kind == types.KindString:
		d, err := types.ParseDate(v.Str)
		if err != nil {
			return types.Value{}, err
		}
		return types.NewDate(d), nil
	}
	return types.Value{}, fmt.Errorf("cannot store %v into %v", v.Kind, t.Kind)
}

// logicalToPhysicalRow decomposes a logical row per the storage convention
// (values then indicators).
func logicalToPhysicalRow(logical *types.Schema, row []types.Value) []types.Value {
	return rewriter.DecomposeRow(logical, row)
}

// physicalToLogicalRow reassembles NULLs from a physical row.
func physicalToLogicalRow(logical *types.Schema, cm rewriter.ColMap, phys []types.Value) []types.Value {
	out := make([]types.Value, logical.Len())
	for i := range out {
		if cm.Ind[i] >= 0 && phys[cm.Ind[i]].Bool() {
			out[i] = types.NewNull(logical.Cols[i].Type.Kind)
		} else {
			v := phys[cm.Val[i]]
			if logical.Cols[i].Type.Kind == types.KindDate && v.Kind != types.KindDate {
				v = types.NewDate(int32(v.I64))
			}
			out[i] = v
		}
	}
	return out
}

func (db *DB) entry(name string) (*tableEntry, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	e, ok := db.tables[name]
	if !ok {
		if qerr, qok := db.quarantined[name]; qok {
			return nil, fmt.Errorf("engine: table %q is quarantined: %v", name, qerr)
		}
		return nil, fmt.Errorf("engine: no table %q", name)
	}
	return e, nil
}

func (db *DB) execInsert(ctx context.Context, s *sql.InsertStmt) (*Result, error) {
	e, err := db.entry(s.Table)
	if err != nil {
		return nil, err
	}
	var rows [][]types.Value
	if s.Query != nil {
		res, err := db.execSelect(ctx, s.Query, "")
		if err != nil {
			return nil, err
		}
		if len(res.Cols) != e.meta.Schema.Len() {
			return nil, fmt.Errorf("engine: INSERT SELECT arity %d, want %d", len(res.Cols), e.meta.Schema.Len())
		}
		for _, r := range res.Rows {
			cr := make([]types.Value, len(r))
			for i, v := range r {
				cv, err := coerceValue(v, e.meta.Schema.Cols[i].Type)
				if err != nil {
					return nil, err
				}
				cr[i] = cv
			}
			rows = append(rows, cr)
		}
	} else {
		b := db.binder()
		for _, rexprs := range s.Rows {
			row, err := bindRowExprs(b, e.meta, rexprs)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	switch {
	case e.heap != nil:
		for _, r := range rows {
			if _, err := e.heap.Insert(r); err != nil {
				return nil, err
			}
		}
	default:
		tx := e.store.Begin()
		for _, r := range rows {
			if err := tx.InsertRow(logicalToPhysicalRow(e.meta.Schema, r)); err != nil {
				tx.Abort()
				return nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: int64(len(rows))}, nil
}

func (db *DB) execUpdate(ctx context.Context, s *sql.UpdateStmt) (*Result, error) {
	e, err := db.entry(s.Table)
	if err != nil {
		return nil, err
	}
	pred, sets, err := db.bindDML(e.meta, s.Where, s.Set)
	if err != nil {
		return nil, err
	}
	if e.heap != nil {
		var rids []rowengine.RowID
		var newRows [][]types.Value
		err := e.heap.ScanFunc(func(rid rowengine.RowID, row []types.Value) bool {
			if matchRow(pred, row) {
				nr, err2 := applySets(e.meta, sets, row)
				if err2 != nil {
					err = err2
					return false
				}
				rids = append(rids, rid)
				newRows = append(newRows, nr)
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		for i, rid := range rids {
			if _, err := e.heap.Update(rid, newRows[i]); err != nil {
				return nil, err
			}
		}
		return &Result{Affected: int64(len(rids))}, nil
	}
	// Vectorwise path: one transaction scanning the image positionally.
	tx := e.store.Begin()
	rids, rows, err := db.matchingRIDs(ctx, tx, e.meta, pred)
	if err != nil {
		tx.Abort()
		return nil, err
	}
	cm := rewriter.PhysicalColMap(e.meta.Schema)
	for i, rid := range rids {
		nr, err := applySets(e.meta, sets, rows[i])
		if err != nil {
			tx.Abort()
			return nil, err
		}
		for col := range e.meta.Schema.Cols {
			if types.Equal(nr[col], rows[i][col]) && nr[col].Null == rows[i][col].Null {
				continue
			}
			colT := e.meta.Schema.Cols[col].Type
			if nr[col].Null {
				if err := tx.UpdateAt(rid, cm.Ind[col], types.NewBool(true)); err != nil {
					tx.Abort()
					return nil, err
				}
				continue
			}
			if err := tx.UpdateAt(rid, cm.Val[col], nr[col]); err != nil {
				tx.Abort()
				return nil, err
			}
			if colT.Nullable {
				if err := tx.UpdateAt(rid, cm.Ind[col], types.NewBool(false)); err != nil {
					tx.Abort()
					return nil, err
				}
			}
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return &Result{Affected: int64(len(rids))}, nil
}

func (db *DB) execDelete(ctx context.Context, s *sql.DeleteStmt) (*Result, error) {
	e, err := db.entry(s.Table)
	if err != nil {
		return nil, err
	}
	pred, _, err := db.bindDML(e.meta, s.Where, nil)
	if err != nil {
		return nil, err
	}
	if e.heap != nil {
		var rids []rowengine.RowID
		e.heap.ScanFunc(func(rid rowengine.RowID, row []types.Value) bool {
			if matchRow(pred, row) {
				rids = append(rids, rid)
			}
			return true
		})
		for _, rid := range rids {
			if err := e.heap.Delete(rid); err != nil {
				return nil, err
			}
		}
		return &Result{Affected: int64(len(rids))}, nil
	}
	tx := e.store.Begin()
	rids, _, err := db.matchingRIDs(ctx, tx, e.meta, pred)
	if err != nil {
		tx.Abort()
		return nil, err
	}
	// Delete from the highest position down so earlier positions stay
	// valid.
	for i := len(rids) - 1; i >= 0; i-- {
		if err := tx.DeleteAt(rids[i]); err != nil {
			tx.Abort()
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return &Result{Affected: int64(len(rids))}, nil
}

// bindDML binds a WHERE predicate and SET clauses over a table's logical
// schema.
func (db *DB) bindDML(meta *plan.TableMeta, where sql.ExprNode, set []sql.SetClause) (expr.Expr, map[int]expr.Expr, error) {
	b := db.binder()
	var pred expr.Expr
	if where != nil {
		p, err := b.BindExprOver(meta.Schema, where)
		if err != nil {
			return nil, nil, err
		}
		if p.Type().Kind != types.KindBool {
			return nil, nil, fmt.Errorf("engine: WHERE must be boolean")
		}
		pred = p
	}
	sets := map[int]expr.Expr{}
	for _, sc := range set {
		idx := meta.Schema.Find(sc.Col)
		if idx < 0 {
			return nil, nil, fmt.Errorf("engine: no column %q", sc.Col)
		}
		e, err := b.BindExprOver(meta.Schema, sc.Expr)
		if err != nil {
			return nil, nil, err
		}
		sets[idx] = e
	}
	return pred, sets, nil
}

func matchRow(pred expr.Expr, row []types.Value) bool {
	if pred == nil {
		return true
	}
	v, err := expr.EvalRow(pred, row)
	return err == nil && !v.Null && v.Bool()
}

func applySets(meta *plan.TableMeta, sets map[int]expr.Expr, row []types.Value) ([]types.Value, error) {
	out := make([]types.Value, len(row))
	copy(out, row)
	for col, e := range sets {
		v, err := expr.EvalRow(e, row)
		if err != nil {
			return nil, err
		}
		cv, err := coerceValue(v, meta.Schema.Cols[col].Type)
		if err != nil {
			return nil, err
		}
		out[col] = cv
	}
	return out, nil
}

// matchingRIDs scans a transaction's image, returning positions and logical
// rows matching the predicate.
func (db *DB) matchingRIDs(ctx context.Context, tx *txn.Txn, meta *plan.TableMeta, pred expr.Expr) ([]int64, [][]types.Value, error) {
	phys := rewriter.PhysicalSchema(meta.Schema)
	cm := rewriter.PhysicalColMap(meta.Schema)
	cols := make([]int, phys.Len())
	for i := range cols {
		cols[i] = i
	}
	src, err := tx.Scan(cols, 0)
	if err != nil {
		return nil, nil, err
	}
	var rids []int64
	var rows [][]types.Value
	b := newBatchFor(src)
	for {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		start, n, done, err := src.Next(b)
		if err != nil {
			return nil, nil, err
		}
		if done {
			return rids, rows, nil
		}
		for i := 0; i < n; i++ {
			physRow := b.GetRow(i)
			logical := physicalToLogicalRow(meta.Schema, cm, physRow)
			if matchRow(pred, logical) {
				rids = append(rids, start+int64(i))
				rows = append(rows, logical)
			}
		}
	}
}

func (db *DB) binder() *plan.Binder {
	return &plan.Binder{Cat: db, EvalScalarSub: func(sub *sql.SelectStmt) (types.Value, error) {
		res, err := db.execSelect(context.Background(), sub, "")
		if err != nil {
			return types.Value{}, err
		}
		if len(res.Cols) != 1 {
			return types.Value{}, fmt.Errorf("engine: scalar subquery must return one column")
		}
		switch len(res.Rows) {
		case 0:
			return types.NewNull(types.KindInvalid), fmt.Errorf("engine: scalar subquery returned no rows")
		case 1:
			return res.Rows[0][0], nil
		default:
			return types.Value{}, fmt.Errorf("engine: scalar subquery returned %d rows", len(res.Rows))
		}
	}}
}

// FormatResult renders a result as an aligned text table (the shell uses
// it).
func FormatResult(r *Result) string {
	if r.Text != "" {
		return r.Text
	}
	if len(r.Cols) == 0 {
		return fmt.Sprintf("OK, %d rows affected\n", r.Affected)
	}
	var b strings.Builder
	widths := make([]int, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range r.Cols {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%-*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i := range r.Cols {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", widths[i]))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, s := range row {
			if i > 0 {
				b.WriteString(" | ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], s)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}
