package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"vectorwise/internal/exec"
	"vectorwise/internal/types"
)

// coopDB builds a DB whose table t spans several row groups, with a buffer
// pool deliberately smaller than the table so policy differences show.
func coopDB(t *testing.T, rows, bufferGroups int, coop bool) *DB {
	t.Helper()
	db := Open()
	db.BufferGroups = bufferGroups
	db.CoopScans = coop
	ctx := context.Background()
	if _, err := db.Exec(ctx, `CREATE TABLE t (k BIGINT, v DOUBLE)`); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadBatchFunc("t", func(emit func([]types.Value) error) error {
		for i := 0; i < rows; i++ {
			if err := emit([]types.Value{
				types.NewInt64(int64(i)),
				types.NewFloat64(float64(i) * 0.5),
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

const coopScanSQL = `SELECT COUNT(*), SUM(k), SUM(v) FROM t WITH (PARALLEL=2)`

// Concurrent full scans sharing the cooperative ABM must (a) return exactly
// the serial answer and (b) physically load far fewer groups than C
// independent scans would.
func TestConcurrentCoopScansShareLoadsAndStayExact(t *testing.T) {
	const rows, clients = 100000, 8 // 7 row groups
	db := coopDB(t, rows, 2, true)
	ctx := context.Background()
	serial, err := db.Exec(ctx, `SELECT COUNT(*), SUM(k), SUM(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	groups := db.groupsAvailable("t", nil, nil)
	if groups < 4 {
		t.Fatalf("table spans %d groups, want >= 4", groups)
	}

	var wg sync.WaitGroup
	results := make([]*Result, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = db.Exec(ctx, coopScanSQL)
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(results[i].Rows, serial.Rows) {
			t.Fatalf("client %d rows %v != serial %v", i, results[i].Rows, serial.Rows)
		}
	}
	_, coop, ok := db.ShareStats("t")
	if !ok {
		t.Fatal("no share built for t")
	}
	// The first client may scan alone through the LRU; everyone else should
	// have attached to the ABM and shared reads.
	if coop.Loads == 0 {
		t.Fatal("no cooperative loads at all — scans never attached")
	}
	naive := int64(clients * groups)
	if coop.Loads+coop.Hits == 0 || coop.Loads >= naive {
		t.Fatalf("coop loads=%d, not sublinear vs naive %d", coop.Loads, naive)
	}
	if coop.SharedLoads == 0 && coop.Hits == 0 {
		t.Fatalf("no sharing observed: %+v", coop)
	}
}

// With CoopScans off, the same workload runs through the LRU pool only, and
// results stay exact (the control cell for the benchmark).
func TestConcurrentScansLRUOnlyStayExact(t *testing.T) {
	const rows, clients = 50000, 4
	db := coopDB(t, rows, 2, false)
	ctx := context.Background()
	serial, err := db.Exec(ctx, `SELECT COUNT(*), SUM(k), SUM(v) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := db.Exec(ctx, coopScanSQL)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(res.Rows, serial.Rows) {
				t.Errorf("rows %v != serial %v", res.Rows, serial.Rows)
			}
		}()
	}
	wg.Wait()
	lru, coop, ok := db.ShareStats("t")
	if !ok {
		t.Fatal("no share built")
	}
	if coop.Loads != 0 {
		t.Fatalf("ABM used despite CoopScans=false: %+v", coop)
	}
	if lru.Loads == 0 {
		t.Fatal("LRU pool never loaded — scans bypassed the seam")
	}
}

// Serial scans (no PARALLEL) flow through the LRU pool too, preserving row
// order exactly.
func TestSerialScanThroughSharePreservesOrder(t *testing.T) {
	const rows = 40000
	db := coopDB(t, rows, 4, true)
	ctx := context.Background()
	res, err := db.Exec(ctx, `SELECT k FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != rows {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, r := range res.Rows {
		if r[0].Int64() != int64(i) {
			t.Fatalf("row %d = %d (order broken)", i, r[0].Int64())
		}
	}
	lru, _, ok := db.ShareStats("t")
	if !ok || lru.Loads == 0 {
		t.Fatalf("serial scan bypassed the LRU pool (stats %v ok=%v)", lru, ok)
	}
}

// A checkpoint replaces the stable snapshot; the share must be rebuilt for
// the new snapshot and queries must keep answering exactly.
func TestShareRebuiltAfterCheckpoint(t *testing.T) {
	db := coopDB(t, 40000, 4, true)
	ctx := context.Background()
	if _, err := db.Exec(ctx, `SELECT COUNT(*) FROM t`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ctx, `INSERT INTO t VALUES (1000000, 1.5)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(ctx, `CHECKPOINT t`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(ctx, `SELECT COUNT(*) FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int64() != 40001 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	db.shareMu.Lock()
	sh := db.shares["t"]
	db.shareMu.Unlock()
	store, _ := db.Store("t")
	if sh == nil || sh.stable != store.Stable() {
		t.Fatal("share not rebuilt onto the post-checkpoint snapshot")
	}
}

// The session layer's per-query budget must reach the executor through
// WithQueryBudget and stop oversized materializations.
func TestWithQueryBudgetStopsBigSort(t *testing.T) {
	db := coopDB(t, 50000, 4, true)
	ctx := WithQueryBudget(context.Background(), 1024)
	_, err := db.Exec(ctx, `SELECT k FROM t ORDER BY v DESC`)
	if !errors.Is(err, exec.ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// Same query unbudgeted succeeds.
	if _, err := db.Exec(context.Background(), `SELECT k FROM t ORDER BY v DESC LIMIT 5`); err != nil {
		t.Fatal(err)
	}
}

// sys.sessions surfaces whatever the session layer reports.
func TestSysSessionsTable(t *testing.T) {
	db := Open()
	res, err := db.Exec(context.Background(), `SELECT COUNT(*) FROM sys.sessions`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int64() != 0 {
		t.Fatal("sessions reported without a session layer")
	}
	db.SessionSource = func() []SessionInfo {
		return []SessionInfo{
			{ID: 1, State: "active", Queries: 3, Active: 1, Reserved: 1 << 20, AgeMS: 12.5},
			{ID: 2, State: "idle", Queries: 7},
		}
	}
	res, err = db.Exec(context.Background(),
		`SELECT id, state, active FROM sys.sessions ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if got := fmt.Sprintf("%v %v %v", res.Rows[0][0], res.Rows[0][1], res.Rows[0][2]); got != "1 active 1" {
		t.Fatalf("row 0 = %q", got)
	}
}
