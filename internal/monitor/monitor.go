// Package monitor provides the system-monitoring facilities the paper lists
// under "mundane things": event logging, an active-query registry with
// cancellation handles, per-query statistics, per-phase lifecycle tracing
// and resource (memory) reporting.
package monitor

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vectorwise/internal/metrics"
)

// Query-lifecycle instruments (engine-wide; the registry backs sys.metrics
// and the Prometheus endpoint).
var (
	mQueries       = metrics.Default.Counter("monitor_queries_total")
	mQueriesFailed = metrics.Default.Counter("monitor_queries_failed_total")
	mQueriesCancel = metrics.Default.Counter("monitor_queries_cancelled_total")
	mQueriesSlow   = metrics.Default.Counter("monitor_slow_queries_total")
	mActive        = metrics.Default.Gauge("monitor_active_queries")
	mQuerySeconds  = metrics.Default.Histogram("monitor_query_seconds", nil)
	mRowsReturned  = metrics.Default.Counter("monitor_rows_returned_total")
)

// EventKind classifies log events.
type EventKind string

// Common event kinds.
const (
	EvQueryStart  EventKind = "query.start"
	EvQueryEnd    EventKind = "query.end"
	EvQueryError  EventKind = "query.error"
	EvQueryCancel EventKind = "query.cancel"
	EvQuerySlow   EventKind = "query.slow"
	EvDDL         EventKind = "ddl"
	EvCheckpoint  EventKind = "checkpoint"
	EvLoad        EventKind = "load"
)

// Event is one log record.
type Event struct {
	Time time.Time
	Kind EventKind
	Msg  string
}

// QueryStatus is the lifecycle state of a registered query.
type QueryStatus string

// Query states.
const (
	StatusRunning   QueryStatus = "running"
	StatusDone      QueryStatus = "done"
	StatusFailed    QueryStatus = "failed"
	StatusCancelled QueryStatus = "cancelled"
)

// Span is one timed phase of a query's lifecycle (parse → bind → optimize
// → xcompile → rewrite → build → execute).
type Span struct {
	Phase string
	Start time.Time
	Dur   time.Duration
}

// FormatSpans renders a span list as an aligned per-phase trace with each
// phase's share of the total.
func FormatSpans(spans []Span) string {
	if len(spans) == 0 {
		return "(no trace recorded)\n"
	}
	var total time.Duration
	for _, s := range spans {
		total += s.Dur
	}
	var b strings.Builder
	for _, s := range spans {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(s.Dur) / float64(total)
		}
		fmt.Fprintf(&b, "%-10s %12v  %5.1f%%\n", s.Phase, s.Dur.Round(time.Microsecond), pct)
	}
	fmt.Fprintf(&b, "%-10s %12v\n", "total", total.Round(time.Microsecond))
	return b.String()
}

// QueryInfo describes one query execution. The monitor hands out *copies*;
// the canonical record is only ever mutated under the monitor's lock.
type QueryInfo struct {
	ID       int64
	SQL      string
	Start    time.Time
	Duration time.Duration
	Status   QueryStatus
	Rows     int64
	Err      string
	// Plan is the rendered physical plan the engine attaches before
	// execution (empty for statements that bypass the vectorized kernel).
	Plan string
	// Spans is the per-phase lifecycle trace.
	Spans []Span

	cancel context.CancelFunc
}

// snapshot returns a deep copy safe to hand out: slices are cloned and the
// cancellation handle is dropped so callers can neither mutate the record
// nor retain the query's context alive.
func (qi *QueryInfo) snapshot() QueryInfo {
	cp := *qi
	cp.cancel = nil
	if len(qi.Spans) > 0 {
		cp.Spans = make([]Span, len(qi.Spans))
		copy(cp.Spans, qi.Spans)
	}
	return cp
}

// Monitor is the engine-wide event log and query registry. The event log is
// a bounded ring; queries are retained until evicted by newer ones.
type Monitor struct {
	mu       sync.Mutex
	events   []Event
	eventCap int
	nextID   int64
	active   map[int64]*QueryInfo
	history  []*QueryInfo
	histCap  int
	// slowNanos is the slow-query log threshold (0 = disabled).
	slowNanos atomic.Int64
}

// New builds a monitor with the given event-ring capacity.
func New(eventCap int) *Monitor {
	if eventCap <= 0 {
		eventCap = 1024
	}
	return &Monitor{eventCap: eventCap, histCap: 256, active: map[int64]*QueryInfo{}}
}

// SetSlowThreshold configures the slow-query log: queries running at least
// d are logged as query.slow events (d <= 0 disables the log).
func (m *Monitor) SetSlowThreshold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.slowNanos.Store(int64(d))
}

// SlowThreshold returns the current slow-query threshold (0 = disabled).
func (m *Monitor) SlowThreshold() time.Duration {
	return time.Duration(m.slowNanos.Load())
}

// Log appends an event.
func (m *Monitor) Log(kind EventKind, format string, args ...any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.logLocked(kind, format, args...)
}

func (m *Monitor) logLocked(kind EventKind, format string, args ...any) {
	m.events = append(m.events, Event{Time: time.Now(), Kind: kind, Msg: fmt.Sprintf(format, args...)})
	if len(m.events) > m.eventCap {
		m.events = m.events[len(m.events)-m.eventCap:]
	}
}

// Events returns a snapshot of the event log, oldest first.
func (m *Monitor) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// StartQuery registers a query and returns its info handle plus a derived
// context the executor must use (cancellation flows through it).
func (m *Monitor) StartQuery(ctx context.Context, sql string) (*QueryInfo, context.Context) {
	cctx, cancel := context.WithCancel(ctx)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	qi := &QueryInfo{ID: m.nextID, SQL: sql, Start: time.Now(), Status: StatusRunning, cancel: cancel}
	m.active[qi.ID] = qi
	mQueries.Inc()
	mActive.Add(1)
	m.logLocked(EvQueryStart, "q%d: %s", qi.ID, truncate(sql, 80))
	return qi, cctx
}

// AttachPlan records the query's rendered physical plan so SHOW/shell
// inspection can display what actually ran.
func (m *Monitor) AttachPlan(qi *QueryInfo, plan string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	qi.Plan = plan
}

// AttachSpans appends lifecycle spans to the query's trace.
func (m *Monitor) AttachSpans(qi *QueryInfo, spans ...Span) {
	m.mu.Lock()
	defer m.mu.Unlock()
	qi.Spans = append(qi.Spans, spans...)
}

// FinishQuery records the outcome, drops the retained cancellation handle,
// and feeds the latency instruments and the slow-query log.
func (m *Monitor) FinishQuery(qi *QueryInfo, rows int64, err error) {
	m.mu.Lock()
	qi.Duration = time.Since(qi.Start)
	qi.Rows = rows
	switch {
	case err == nil:
		qi.Status = StatusDone
		mRowsReturned.Add(rows)
		m.logLocked(EvQueryEnd, "q%d: %d rows in %v", qi.ID, rows, qi.Duration)
	case qi.Status == StatusCancelled:
		qi.Err = err.Error()
		mQueriesCancel.Inc()
		m.logLocked(EvQueryCancel, "q%d cancelled after %v", qi.ID, qi.Duration)
	default:
		qi.Status = StatusFailed
		qi.Err = err.Error()
		mQueriesFailed.Inc()
		m.logLocked(EvQueryError, "q%d: %v", qi.ID, err)
	}
	if slow := m.slowNanos.Load(); slow > 0 && qi.Duration >= time.Duration(slow) {
		mQueriesSlow.Inc()
		m.logLocked(EvQuerySlow, "q%d: %v (threshold %v): %s",
			qi.ID, qi.Duration, time.Duration(slow), truncate(qi.SQL, 120))
	}
	delete(m.active, qi.ID)
	m.history = append(m.history, qi)
	if len(m.history) > m.histCap {
		m.history = m.history[len(m.history)-m.histCap:]
	}
	cancel := qi.cancel
	qi.cancel = nil // drop the handle: finished queries must not pin contexts
	m.mu.Unlock()
	mActive.Add(-1)
	mQuerySeconds.Observe(qi.Duration.Seconds())
	if cancel != nil {
		cancel()
	}
}

// Cancel aborts a running query by ID ("proper query cancellation" — the
// paper's unexpectedly hard feature request).
func (m *Monitor) Cancel(id int64) bool {
	m.mu.Lock()
	qi, ok := m.active[id]
	var cancel context.CancelFunc
	if ok {
		qi.Status = StatusCancelled
		cancel = qi.cancel
	}
	m.mu.Unlock()
	if !ok {
		return false
	}
	if cancel != nil {
		cancel()
	}
	return true
}

// Active lists running queries, oldest first, as safe copies.
func (m *Monitor) Active() []QueryInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]QueryInfo, 0, len(m.active))
	for _, qi := range m.active {
		cp := qi.snapshot()
		cp.Duration = time.Since(qi.Start)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// History lists finished queries, oldest first, as safe copies.
func (m *Monitor) History() []QueryInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]QueryInfo, len(m.history))
	for i, qi := range m.history {
		out[i] = qi.snapshot()
	}
	return out
}

// Find returns a copy of the query with the given ID, searching active
// queries then history (ok=false when unknown or evicted).
func (m *Monitor) Find(id int64) (QueryInfo, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if qi, ok := m.active[id]; ok {
		cp := qi.snapshot()
		cp.Duration = time.Since(qi.Start)
		return cp, true
	}
	for i := len(m.history) - 1; i >= 0; i-- {
		if m.history[i].ID == id {
			return m.history[i].snapshot(), true
		}
	}
	return QueryInfo{}, false
}

// MemStats reports process memory usage (resource monitoring).
func MemStats() (heapBytes, totalAlloc uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc, ms.TotalAlloc
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
