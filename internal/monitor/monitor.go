// Package monitor provides the system-monitoring facilities the paper lists
// under "mundane things": event logging, an active-query registry with
// cancellation handles, per-query statistics and resource (memory)
// reporting.
package monitor

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"
)

// EventKind classifies log events.
type EventKind string

// Common event kinds.
const (
	EvQueryStart  EventKind = "query.start"
	EvQueryEnd    EventKind = "query.end"
	EvQueryError  EventKind = "query.error"
	EvQueryCancel EventKind = "query.cancel"
	EvDDL         EventKind = "ddl"
	EvCheckpoint  EventKind = "checkpoint"
	EvLoad        EventKind = "load"
)

// Event is one log record.
type Event struct {
	Time time.Time
	Kind EventKind
	Msg  string
}

// QueryStatus is the lifecycle state of a registered query.
type QueryStatus string

// Query states.
const (
	StatusRunning   QueryStatus = "running"
	StatusDone      QueryStatus = "done"
	StatusFailed    QueryStatus = "failed"
	StatusCancelled QueryStatus = "cancelled"
)

// QueryInfo describes one query execution.
type QueryInfo struct {
	ID       int64
	SQL      string
	Start    time.Time
	Duration time.Duration
	Status   QueryStatus
	Rows     int64
	Err      string
	// Plan is the rendered physical plan the engine attaches before
	// execution (empty for statements that bypass the vectorized kernel).
	Plan string

	cancel context.CancelFunc
}

// Monitor is the engine-wide event log and query registry. The event log is
// a bounded ring; queries are retained until evicted by newer ones.
type Monitor struct {
	mu       sync.Mutex
	events   []Event
	eventCap int
	nextID   int64
	active   map[int64]*QueryInfo
	history  []*QueryInfo
	histCap  int
}

// New builds a monitor with the given event-ring capacity.
func New(eventCap int) *Monitor {
	if eventCap <= 0 {
		eventCap = 1024
	}
	return &Monitor{eventCap: eventCap, histCap: 256, active: map[int64]*QueryInfo{}}
}

// Log appends an event.
func (m *Monitor) Log(kind EventKind, format string, args ...any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.logLocked(kind, format, args...)
}

func (m *Monitor) logLocked(kind EventKind, format string, args ...any) {
	m.events = append(m.events, Event{Time: time.Now(), Kind: kind, Msg: fmt.Sprintf(format, args...)})
	if len(m.events) > m.eventCap {
		m.events = m.events[len(m.events)-m.eventCap:]
	}
}

// Events returns a snapshot of the event log, oldest first.
func (m *Monitor) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// StartQuery registers a query and returns its info handle plus a derived
// context the executor must use (cancellation flows through it).
func (m *Monitor) StartQuery(ctx context.Context, sql string) (*QueryInfo, context.Context) {
	cctx, cancel := context.WithCancel(ctx)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	qi := &QueryInfo{ID: m.nextID, SQL: sql, Start: time.Now(), Status: StatusRunning, cancel: cancel}
	m.active[qi.ID] = qi
	m.logLocked(EvQueryStart, "q%d: %s", qi.ID, truncate(sql, 80))
	return qi, cctx
}

// AttachPlan records the query's rendered physical plan so SHOW/shell
// inspection can display what actually ran.
func (m *Monitor) AttachPlan(qi *QueryInfo, plan string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	qi.Plan = plan
}

// FinishQuery records the outcome.
func (m *Monitor) FinishQuery(qi *QueryInfo, rows int64, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	qi.Duration = time.Since(qi.Start)
	qi.Rows = rows
	switch {
	case err == nil:
		qi.Status = StatusDone
		m.logLocked(EvQueryEnd, "q%d: %d rows in %v", qi.ID, rows, qi.Duration)
	case qi.Status == StatusCancelled:
		qi.Err = err.Error()
		m.logLocked(EvQueryCancel, "q%d cancelled after %v", qi.ID, qi.Duration)
	default:
		qi.Status = StatusFailed
		qi.Err = err.Error()
		m.logLocked(EvQueryError, "q%d: %v", qi.ID, err)
	}
	delete(m.active, qi.ID)
	m.history = append(m.history, qi)
	if len(m.history) > m.histCap {
		m.history = m.history[len(m.history)-m.histCap:]
	}
	qi.cancel()
}

// Cancel aborts a running query by ID ("proper query cancellation" — the
// paper's unexpectedly hard feature request).
func (m *Monitor) Cancel(id int64) bool {
	m.mu.Lock()
	qi, ok := m.active[id]
	if ok {
		qi.Status = StatusCancelled
	}
	m.mu.Unlock()
	if !ok {
		return false
	}
	qi.cancel()
	return true
}

// Active lists running queries, oldest first.
func (m *Monitor) Active() []QueryInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]QueryInfo, 0, len(m.active))
	for _, qi := range m.active {
		cp := *qi
		cp.Duration = time.Since(qi.Start)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// History lists finished queries, oldest first.
func (m *Monitor) History() []QueryInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]QueryInfo, len(m.history))
	for i, qi := range m.history {
		out[i] = *qi
	}
	return out
}

// MemStats reports process memory usage (resource monitoring).
func MemStats() (heapBytes, totalAlloc uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc, ms.TotalAlloc
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
