package monitor

import (
	"context"
	"errors"
	"testing"
)

func TestQueryLifecycle(t *testing.T) {
	m := New(16)
	qi, ctx := m.StartQuery(context.Background(), "SELECT 1")
	if len(m.Active()) != 1 {
		t.Fatal("query not active")
	}
	if ctx.Err() != nil {
		t.Fatal("context cancelled prematurely")
	}
	m.FinishQuery(qi, 42, nil)
	if len(m.Active()) != 0 {
		t.Fatal("query still active")
	}
	h := m.History()
	if len(h) != 1 || h[0].Rows != 42 || h[0].Status != StatusDone {
		t.Fatalf("history: %+v", h)
	}
	if ctx.Err() == nil {
		t.Fatal("context should be released after finish")
	}
}

func TestAttachPlan(t *testing.T) {
	m := New(16)
	qi, _ := m.StartQuery(context.Background(), "SELECT 1")
	m.AttachPlan(qi, "Scan('t')\n")
	if act := m.Active(); len(act) != 1 || act[0].Plan != "Scan('t')\n" {
		t.Fatalf("active plan: %+v", act)
	}
	m.FinishQuery(qi, 1, nil)
	if h := m.History(); len(h) != 1 || h[0].Plan != "Scan('t')\n" {
		t.Fatalf("history plan: %+v", h)
	}
}

func TestCancel(t *testing.T) {
	m := New(16)
	qi, ctx := m.StartQuery(context.Background(), "SELECT long")
	if !m.Cancel(qi.ID) {
		t.Fatal("cancel failed")
	}
	if ctx.Err() == nil {
		t.Fatal("context not cancelled")
	}
	m.FinishQuery(qi, 0, errors.New("cancelled"))
	h := m.History()
	if h[0].Status != StatusCancelled {
		t.Fatalf("status: %v", h[0].Status)
	}
	if m.Cancel(9999) {
		t.Fatal("cancel of unknown id succeeded")
	}
}

func TestFailedQuery(t *testing.T) {
	m := New(16)
	qi, _ := m.StartQuery(context.Background(), "SELECT boom")
	m.FinishQuery(qi, 0, errors.New("division by zero"))
	h := m.History()
	if h[0].Status != StatusFailed || h[0].Err == "" {
		t.Fatalf("failed query record: %+v", h[0])
	}
}

func TestEventRingBounded(t *testing.T) {
	m := New(4)
	for i := 0; i < 20; i++ {
		m.Log(EvDDL, "event %d", i)
	}
	ev := m.Events()
	if len(ev) != 4 {
		t.Fatalf("ring size: %d", len(ev))
	}
	if ev[3].Msg != "event 19" {
		t.Fatalf("newest event: %v", ev[3].Msg)
	}
}

func TestMemStats(t *testing.T) {
	heap, total := MemStats()
	if heap == 0 || total == 0 {
		t.Fatal("memstats zero")
	}
}
