package monitor

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestQueryLifecycle(t *testing.T) {
	m := New(16)
	qi, ctx := m.StartQuery(context.Background(), "SELECT 1")
	if len(m.Active()) != 1 {
		t.Fatal("query not active")
	}
	if ctx.Err() != nil {
		t.Fatal("context cancelled prematurely")
	}
	m.FinishQuery(qi, 42, nil)
	if len(m.Active()) != 0 {
		t.Fatal("query still active")
	}
	h := m.History()
	if len(h) != 1 || h[0].Rows != 42 || h[0].Status != StatusDone {
		t.Fatalf("history: %+v", h)
	}
	if ctx.Err() == nil {
		t.Fatal("context should be released after finish")
	}
}

func TestAttachPlan(t *testing.T) {
	m := New(16)
	qi, _ := m.StartQuery(context.Background(), "SELECT 1")
	m.AttachPlan(qi, "Scan('t')\n")
	if act := m.Active(); len(act) != 1 || act[0].Plan != "Scan('t')\n" {
		t.Fatalf("active plan: %+v", act)
	}
	m.FinishQuery(qi, 1, nil)
	if h := m.History(); len(h) != 1 || h[0].Plan != "Scan('t')\n" {
		t.Fatalf("history plan: %+v", h)
	}
}

func TestCancel(t *testing.T) {
	m := New(16)
	qi, ctx := m.StartQuery(context.Background(), "SELECT long")
	if !m.Cancel(qi.ID) {
		t.Fatal("cancel failed")
	}
	if ctx.Err() == nil {
		t.Fatal("context not cancelled")
	}
	m.FinishQuery(qi, 0, errors.New("cancelled"))
	h := m.History()
	if h[0].Status != StatusCancelled {
		t.Fatalf("status: %v", h[0].Status)
	}
	if m.Cancel(9999) {
		t.Fatal("cancel of unknown id succeeded")
	}
}

func TestFailedQuery(t *testing.T) {
	m := New(16)
	qi, _ := m.StartQuery(context.Background(), "SELECT boom")
	m.FinishQuery(qi, 0, errors.New("division by zero"))
	h := m.History()
	if h[0].Status != StatusFailed || h[0].Err == "" {
		t.Fatalf("failed query record: %+v", h[0])
	}
}

func TestEventRingBounded(t *testing.T) {
	m := New(4)
	for i := 0; i < 20; i++ {
		m.Log(EvDDL, "event %d", i)
	}
	ev := m.Events()
	if len(ev) != 4 {
		t.Fatalf("ring size: %d", len(ev))
	}
	if ev[3].Msg != "event 19" {
		t.Fatalf("newest event: %v", ev[3].Msg)
	}
}

func TestSpans(t *testing.T) {
	m := New(16)
	qi, _ := m.StartQuery(context.Background(), "SELECT 1")
	m.AttachSpans(qi,
		Span{Phase: "parse", Dur: time.Millisecond},
		Span{Phase: "bind", Dur: 2 * time.Millisecond})
	m.AttachSpans(qi, Span{Phase: "execute", Dur: 7 * time.Millisecond})
	m.FinishQuery(qi, 0, nil)
	h := m.History()
	if len(h) != 1 || len(h[0].Spans) != 3 {
		t.Fatalf("spans: %+v", h)
	}
	if h[0].Spans[2].Phase != "execute" {
		t.Fatalf("span order: %+v", h[0].Spans)
	}
	out := FormatSpans(h[0].Spans)
	for _, want := range []string{"parse", "bind", "execute", "total", "70.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatSpans missing %q:\n%s", want, out)
		}
	}
	if FormatSpans(nil) == "" {
		t.Fatal("FormatSpans(nil) empty")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m := New(16)
	qi, _ := m.StartQuery(context.Background(), "SELECT 1")
	m.AttachSpans(qi, Span{Phase: "parse", Dur: time.Millisecond})
	act := m.Active()
	if len(act) != 1 {
		t.Fatal("no active query")
	}
	// Mutating the returned copy must not leak into the monitor's record.
	act[0].SQL = "tampered"
	act[0].Spans[0].Phase = "tampered"
	m.FinishQuery(qi, 0, nil)
	h := m.History()
	if h[0].SQL != "SELECT 1" || h[0].Spans[0].Phase != "parse" {
		t.Fatalf("snapshot leaked mutation: %+v", h[0])
	}
	h[0].Spans[0].Phase = "tampered"
	if m.History()[0].Spans[0].Phase != "parse" {
		t.Fatal("history snapshot shares span storage")
	}
}

func TestSlowQueryLog(t *testing.T) {
	m := New(16)
	m.SetSlowThreshold(time.Nanosecond)
	if m.SlowThreshold() != time.Nanosecond {
		t.Fatal("threshold not set")
	}
	qi, _ := m.StartQuery(context.Background(), "SELECT slow")
	time.Sleep(time.Millisecond)
	m.FinishQuery(qi, 0, nil)
	var slow int
	for _, ev := range m.Events() {
		if ev.Kind == EvQuerySlow {
			slow++
		}
	}
	if slow != 1 {
		t.Fatalf("slow events: %d", slow)
	}
	// Disabled threshold logs nothing.
	m.SetSlowThreshold(0)
	qi2, _ := m.StartQuery(context.Background(), "SELECT fast")
	m.FinishQuery(qi2, 0, nil)
	for _, ev := range m.Events() {
		if ev.Kind == EvQuerySlow && strings.Contains(ev.Msg, "fast") {
			t.Fatal("slow log fired while disabled")
		}
	}
}

func TestFind(t *testing.T) {
	m := New(16)
	qi, _ := m.StartQuery(context.Background(), "SELECT 1")
	if got, ok := m.Find(qi.ID); !ok || got.Status != StatusRunning {
		t.Fatalf("find active: %+v %v", got, ok)
	}
	m.FinishQuery(qi, 3, nil)
	got, ok := m.Find(qi.ID)
	if !ok || got.Rows != 3 || got.Status != StatusDone {
		t.Fatalf("find history: %+v %v", got, ok)
	}
	if _, ok := m.Find(9999); ok {
		t.Fatal("found unknown id")
	}
}

func TestMemStats(t *testing.T) {
	heap, total := MemStats()
	if heap == 0 || total == 0 {
		t.Fatal("memstats zero")
	}
}
