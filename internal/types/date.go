package types

import "fmt"

// Dates are stored as int32 day numbers relative to the Unix epoch
// (1970-01-01 = day 0). The civil-date conversions below use the classic
// days-from-civil algorithm (Howard Hinnant's formulation), which is exact
// over the proleptic Gregorian calendar and branch-light — important because
// date extraction runs inside vectorized primitives.

// DateFromYMD converts a civil date to a day number.
func DateFromYMD(y, m, d int) int32 {
	yy := int64(y)
	if m <= 2 {
		yy--
	}
	var era int64
	if yy >= 0 {
		era = yy / 400
	} else {
		era = (yy - 399) / 400
	}
	yoe := yy - era*400 // [0, 399]
	var mp int64
	if m > 2 {
		mp = int64(m) - 3
	} else {
		mp = int64(m) + 9
	}
	doy := (153*mp+2)/5 + int64(d) - 1      // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy  // [0, 146096]
	return int32(era*146097 + doe - 719468) // shift so 1970-01-01 = 0
}

// YMDFromDate converts a day number back to a civil date.
func YMDFromDate(days int32) (y, m, d int) {
	z := int64(days) + 719468
	var era int64
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097                                  // [0, 146096]
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365 // [0, 399]
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100) // [0, 365]
	mp := (5*doy + 2) / 153                  // [0, 11]
	d = int(doy - (153*mp+2)/5 + 1)
	if mp < 10 {
		m = int(mp + 3)
	} else {
		m = int(mp - 9)
	}
	if m <= 2 {
		yy++
	}
	return int(yy), m, d
}

// DateYear extracts the year of a day number.
func DateYear(days int32) int32 { y, _, _ := YMDFromDate(days); return int32(y) }

// DateMonth extracts the month (1..12).
func DateMonth(days int32) int32 { _, m, _ := YMDFromDate(days); return int32(m) }

// DateDay extracts the day of month (1..31).
func DateDay(days int32) int32 { _, _, d := YMDFromDate(days); return int32(d) }

// DateQuarter extracts the quarter (1..4).
func DateQuarter(days int32) int32 { return (DateMonth(days)-1)/3 + 1 }

// DateDayOfWeek returns ISO day of week, Monday=1 .. Sunday=7.
// Day 0 (1970-01-01) was a Thursday (=4).
func DateDayOfWeek(days int32) int32 {
	dow := (int64(days) + 3) % 7 // 0=Monday
	if dow < 0 {
		dow += 7
	}
	return int32(dow) + 1
}

// DateAddMonths shifts a date by n months, clamping the day to the target
// month's length (SQL ADD_MONTHS semantics).
func DateAddMonths(days int32, n int32) int32 {
	y, m, d := YMDFromDate(days)
	tot := int64(y)*12 + int64(m) - 1 + int64(n)
	ny := int(tot / 12)
	nm := int(tot%12) + 1
	if nm <= 0 {
		nm += 12
		ny--
	}
	if ml := monthLen(ny, nm); d > ml {
		d = ml
	}
	return DateFromYMD(ny, nm, d)
}

func monthLen(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	default:
		if isLeap(y) {
			return 29
		}
		return 28
	}
}

func isLeap(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }

// ParseDate parses 'YYYY-MM-DD' into a day number.
func ParseDate(s string) (int32, error) {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return 0, fmt.Errorf("types: invalid DATE literal %q (want YYYY-MM-DD)", s)
	}
	num := func(sub string) (int, bool) {
		n := 0
		for i := 0; i < len(sub); i++ {
			c := sub[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int(c-'0')
		}
		return n, true
	}
	y, ok1 := num(s[0:4])
	m, ok2 := num(s[5:7])
	d, ok3 := num(s[8:10])
	if !ok1 || !ok2 || !ok3 || m < 1 || m > 12 || d < 1 || d > monthLen(y, m) {
		return 0, fmt.Errorf("types: invalid DATE literal %q", s)
	}
	return DateFromYMD(y, m, d), nil
}

// FormatDate renders a day number as 'YYYY-MM-DD'.
func FormatDate(days int32) string {
	y, m, d := YMDFromDate(days)
	return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
}
