package types

import (
	"fmt"
	"strconv"
)

// Value is a boxed scalar used by the layers that are *not* vectorized: the
// SQL literal representation, the classic tuple-at-a-time row engine, query
// results handed to clients, and tests. The vectorized kernel never touches
// Value on hot paths — that contrast is exactly experiment E1.
type Value struct {
	Kind Kind
	Null bool
	// Exactly one of the following is meaningful, per Kind. Bool is stored
	// in I64 (0/1) and Date in I64 (days) to keep the struct small.
	I64 int64
	F64 float64
	Str string
}

// Typed constructors.

// NewNull returns a NULL value of the given kind.
func NewNull(k Kind) Value { return Value{Kind: k, Null: true} }

// NewBool boxes a boolean.
func NewBool(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.I64 = 1
	}
	return v
}

// NewInt32 boxes a 32-bit integer.
func NewInt32(i int32) Value { return Value{Kind: KindInt32, I64: int64(i)} }

// NewInt64 boxes a 64-bit integer.
func NewInt64(i int64) Value { return Value{Kind: KindInt64, I64: i} }

// NewFloat64 boxes a float.
func NewFloat64(f float64) Value { return Value{Kind: KindFloat64, F64: f} }

// NewString boxes a string.
func NewString(s string) Value { return Value{Kind: KindString, Str: s} }

// NewDate boxes a date given as days since the Unix epoch.
func NewDate(days int32) Value { return Value{Kind: KindDate, I64: int64(days)} }

// Bool unboxes a boolean; callers must know the kind.
func (v Value) Bool() bool { return v.I64 != 0 }

// Int32 unboxes an int32.
func (v Value) Int32() int32 { return int32(v.I64) }

// Int64 unboxes an int64.
func (v Value) Int64() int64 { return v.I64 }

// Float64 unboxes a float64.
func (v Value) Float64() float64 { return v.F64 }

// String renders the value in SQL result style. NULLs render as "NULL".
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case KindBool:
		if v.I64 != 0 {
			return "true"
		}
		return "false"
	case KindInt32, KindInt64:
		return strconv.FormatInt(v.I64, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.F64, 'g', -1, 64)
	case KindString:
		return v.Str
	case KindDate:
		return FormatDate(int32(v.I64))
	default:
		return "<invalid>"
	}
}

// AsFloat converts any numeric value to float64 for mixed-type arithmetic in
// the row engine.
func (v Value) AsFloat() float64 {
	if v.Kind == KindFloat64 {
		return v.F64
	}
	return float64(v.I64)
}

// AsInt converts any integral (or bool/date) value to int64.
func (v Value) AsInt() int64 {
	if v.Kind == KindFloat64 {
		return int64(v.F64)
	}
	return v.I64
}

// Compare orders two non-NULL values of comparable kinds: -1, 0, +1.
// NULL ordering is the caller's concern (SQL gives several choices).
func Compare(a, b Value) int {
	if a.Kind.Numeric() || b.Kind.Numeric() {
		if a.Kind == KindFloat64 || b.Kind == KindFloat64 {
			af, bf := a.AsFloat(), b.AsFloat()
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	switch a.Kind {
	case KindString:
		switch {
		case a.Str < b.Str:
			return -1
		case a.Str > b.Str:
			return 1
		default:
			return 0
		}
	default: // bool, ints, date all live in I64
		switch {
		case a.I64 < b.I64:
			return -1
		case a.I64 > b.I64:
			return 1
		default:
			return 0
		}
	}
}

// Equal reports SQL equality of two values; NULL is not equal to anything
// (including NULL) — three-valued logic is handled above this helper.
func Equal(a, b Value) bool {
	if a.Null || b.Null {
		return false
	}
	if !Comparable(a.Kind, b.Kind) {
		return false
	}
	return Compare(a, b) == 0
}

// ParseValue parses the string s as a value of kind k, as used by COPY and
// the CSV loader.
func ParseValue(k Kind, s string) (Value, error) {
	switch k {
	case KindBool:
		switch s {
		case "true", "TRUE", "t", "1":
			return NewBool(true), nil
		case "false", "FALSE", "f", "0":
			return NewBool(false), nil
		}
		return Value{}, fmt.Errorf("types: invalid BOOLEAN literal %q", s)
	case KindInt32:
		i, err := strconv.ParseInt(s, 10, 32)
		if err != nil {
			return Value{}, fmt.Errorf("types: invalid INTEGER literal %q", s)
		}
		return NewInt32(int32(i)), nil
	case KindInt64:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("types: invalid BIGINT literal %q", s)
		}
		return NewInt64(i), nil
	case KindFloat64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("types: invalid DOUBLE literal %q", s)
		}
		return NewFloat64(f), nil
	case KindString:
		return NewString(s), nil
	case KindDate:
		d, err := ParseDate(s)
		if err != nil {
			return Value{}, err
		}
		return NewDate(d), nil
	default:
		return Value{}, fmt.Errorf("types: cannot parse into kind %v", k)
	}
}

// SafeValue returns the "safe" in-band value used for NULL slots when a
// NULLable column is decomposed into (value, indicator) pairs. Any value
// works semantically (the indicator column governs); zero values keep
// arithmetic from faulting.
func SafeValue(k Kind) Value {
	switch k {
	case KindString:
		return NewString("")
	default:
		return Value{Kind: k}
	}
}

// FormatRange renders an inclusive [lo, hi] column restriction for plan
// display (nil = open side). Shared by the logical, algebra and physical
// plan printers so range annotations read the same at every stage.
func FormatRange(prefix string, col int, lo, hi *Value) string {
	l, h := "-inf", "+inf"
	if lo != nil {
		l = lo.String()
	}
	if hi != nil {
		h = hi.String()
	}
	return fmt.Sprintf("%s%d in [%s,%s]", prefix, col, l, h)
}
