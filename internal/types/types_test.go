package types

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindBool: "BOOLEAN", KindInt32: "INTEGER", KindInt64: "BIGINT",
		KindFloat64: "DOUBLE", KindString: "VARCHAR", KindDate: "DATE",
		KindInvalid: "INVALID",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindInt32.Numeric() || !KindInt64.Numeric() || !KindFloat64.Numeric() {
		t.Error("numeric kinds not reported numeric")
	}
	if KindString.Numeric() || KindBool.Numeric() || KindDate.Numeric() {
		t.Error("non-numeric kind reported numeric")
	}
	if !KindInt32.Integral() || !KindInt64.Integral() || KindFloat64.Integral() {
		t.Error("integral predicate wrong")
	}
	if KindInvalid.Valid() || !KindDate.Valid() {
		t.Error("valid predicate wrong")
	}
}

func TestCommonNumeric(t *testing.T) {
	if got := CommonNumeric(KindInt32, KindInt64); got != KindInt64 {
		t.Errorf("i32+i64 = %v", got)
	}
	if got := CommonNumeric(KindInt64, KindFloat64); got != KindFloat64 {
		t.Errorf("i64+f64 = %v", got)
	}
	if got := CommonNumeric(KindInt32, KindInt32); got != KindInt32 {
		t.Errorf("i32+i32 = %v", got)
	}
	if got := CommonNumeric(KindString, KindInt32); got != KindInvalid {
		t.Errorf("str+i32 = %v", got)
	}
}

func TestSchemaFind(t *testing.T) {
	s := NewSchema(Col("a", Int64), Col("b", String.Null()))
	if s.Find("b") != 1 || s.Find("a") != 0 || s.Find("zz") != -1 {
		t.Error("Find broken")
	}
	if s.Len() != 2 {
		t.Error("Len broken")
	}
	if got := s.String(); got != "(a BIGINT, b VARCHAR NULL)" {
		t.Errorf("String() = %q", got)
	}
	c := s.Clone()
	c.Cols[0].Name = "x"
	if s.Cols[0].Name != "a" {
		t.Error("Clone aliases original")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustFind should panic on missing column")
		}
	}()
	s.MustFind("nope")
}

func TestValueRoundTrip(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NewInt32(-7), "-7"},
		{NewInt64(1 << 40), "1099511627776"},
		{NewFloat64(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewNull(KindInt64), "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if Compare(NewInt64(1), NewInt64(2)) != -1 {
		t.Error("1 < 2 failed")
	}
	if Compare(NewInt64(2), NewFloat64(1.5)) != 1 {
		t.Error("mixed numeric compare failed")
	}
	if Compare(NewString("a"), NewString("b")) != -1 {
		t.Error("string compare failed")
	}
	if Compare(NewInt32(5), NewInt32(5)) != 0 {
		t.Error("equal compare failed")
	}
	if Equal(NewNull(KindInt64), NewNull(KindInt64)) {
		t.Error("NULL must not equal NULL")
	}
	if !Equal(NewInt32(3), NewInt64(3)) {
		t.Error("cross-width equality failed")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(KindInt64, "42")
	if err != nil || v.Int64() != 42 {
		t.Fatalf("ParseValue int64: %v %v", v, err)
	}
	v, err = ParseValue(KindBool, "true")
	if err != nil || !v.Bool() {
		t.Fatalf("ParseValue bool: %v %v", v, err)
	}
	if _, err = ParseValue(KindInt32, "abc"); err == nil {
		t.Fatal("expected parse error")
	}
	v, err = ParseValue(KindDate, "1999-12-31")
	if err != nil || FormatDate(v.Int32()) != "1999-12-31" {
		t.Fatalf("ParseValue date: %v %v", v, err)
	}
	if _, err = ParseValue(KindDate, "1999-13-01"); err == nil {
		t.Fatal("expected invalid month error")
	}
}

func TestDateKnownValues(t *testing.T) {
	if d := DateFromYMD(1970, 1, 1); d != 0 {
		t.Errorf("epoch = %d", d)
	}
	if d := DateFromYMD(2000, 3, 1); FormatDate(d) != "2000-03-01" {
		t.Errorf("leap-century roundtrip failed: %s", FormatDate(d))
	}
	if DateDayOfWeek(0) != 4 { // 1970-01-01 was a Thursday
		t.Errorf("epoch dow = %d", DateDayOfWeek(0))
	}
	if DateQuarter(DateFromYMD(2024, 11, 5)) != 4 {
		t.Error("quarter extraction failed")
	}
}

// Property: our civil-date conversion agrees with the Go standard library
// over a wide range of day numbers.
func TestDateAgainstStdlib(t *testing.T) {
	f := func(dRaw int32) bool {
		d := dRaw % 200000 // roughly years 1422..2517
		tm := time.Unix(0, 0).UTC().AddDate(0, 0, int(d))
		y, m, dd := YMDFromDate(d)
		if y != tm.Year() || m != int(tm.Month()) || dd != tm.Day() {
			return false
		}
		return DateFromYMD(y, m, dd) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDateAddMonths(t *testing.T) {
	d := DateFromYMD(2020, 1, 31)
	if got := FormatDate(DateAddMonths(d, 1)); got != "2020-02-29" {
		t.Errorf("2020-01-31 + 1 month = %s", got)
	}
	if got := FormatDate(DateAddMonths(d, -2)); got != "2019-11-30" {
		t.Errorf("2020-01-31 - 2 months = %s", got)
	}
	if got := FormatDate(DateAddMonths(d, 12)); got != "2021-01-31" {
		t.Errorf("2020-01-31 + 12 months = %s", got)
	}
}

func TestSafeValue(t *testing.T) {
	for _, k := range []Kind{KindBool, KindInt32, KindInt64, KindFloat64, KindString, KindDate} {
		v := SafeValue(k)
		if v.Kind != k || v.Null {
			t.Errorf("SafeValue(%v) = %#v", k, v)
		}
	}
}
