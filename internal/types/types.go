// Package types defines the minimal analytical type system shared by every
// layer of the engine: the SQL front-end, the optimizer, the X100 algebra,
// the vectorized kernel and the classic row engine.
//
// Vectorwise (and X100 before it) deliberately supported a small set of
// physical types and mapped the richer SQL surface onto them; we follow the
// same approach: BOOL, INT32, INT64, FLOAT64, STRING and DATE (a day number
// stored as INT32-width data but kept as a distinct kind for function
// dispatch).
package types

import "fmt"

// Kind enumerates the physical value kinds the kernel can process.
type Kind uint8

// The supported physical kinds.
const (
	// KindInvalid is the zero Kind and marks unresolved or erroneous types.
	KindInvalid Kind = iota
	// KindBool is a boolean.
	KindBool
	// KindInt32 is a 32-bit signed integer.
	KindInt32
	// KindInt64 is a 64-bit signed integer.
	KindInt64
	// KindFloat64 is a 64-bit IEEE float.
	KindFloat64
	// KindString is a variable-length UTF-8 string.
	KindString
	// KindDate is a calendar date stored as days since 1970-01-01.
	KindDate
)

// NumKinds is the number of valid kinds plus one for KindInvalid; useful for
// dispatch tables indexed by Kind.
const NumKinds = 7

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "BOOLEAN"
	case KindInt32:
		return "INTEGER"
	case KindInt64:
		return "BIGINT"
	case KindFloat64:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return "INVALID"
	}
}

// Valid reports whether k is one of the defined value kinds.
func (k Kind) Valid() bool { return k > KindInvalid && k < NumKinds }

// Numeric reports whether the kind supports arithmetic.
func (k Kind) Numeric() bool {
	return k == KindInt32 || k == KindInt64 || k == KindFloat64
}

// Integral reports whether the kind is a (signed) integer kind.
func (k Kind) Integral() bool { return k == KindInt32 || k == KindInt64 }

// Width returns the in-memory width in bytes of fixed-size kinds, and the
// average estimation width for strings (used by the optimizer's cost model).
func (k Kind) Width() int {
	switch k {
	case KindBool:
		return 1
	case KindInt32, KindDate:
		return 4
	case KindInt64, KindFloat64:
		return 8
	case KindString:
		return 16 // estimate for costing; actual strings are variable-size
	default:
		return 0
	}
}

// T is a logical SQL type: a physical kind plus nullability. The kernel
// itself is NULL-oblivious (claim C6 of the paper): NULLable columns are
// decomposed by the rewriter into a value column with a "safe" value and a
// BOOL indicator column. T carries nullability only through the logical
// layers (binder, optimizer, cross compiler).
type T struct {
	Kind     Kind
	Nullable bool
}

// Convenience constructors for the common non-nullable types.
var (
	Bool    = T{Kind: KindBool}
	Int32   = T{Kind: KindInt32}
	Int64   = T{Kind: KindInt64}
	Float64 = T{Kind: KindFloat64}
	String  = T{Kind: KindString}
	Date    = T{Kind: KindDate}
)

// Null returns the same type with the nullable flag set.
func (t T) Null() T { return T{Kind: t.Kind, Nullable: true} }

// NotNull returns the same type with the nullable flag cleared.
func (t T) NotNull() T { return T{Kind: t.Kind} }

// String renders the type, marking nullability explicitly.
func (t T) String() string {
	if t.Nullable {
		return t.Kind.String() + " NULL"
	}
	return t.Kind.String()
}

// Column is a named, typed column in a schema.
type Column struct {
	Name string
	Type T
}

// Schema is an ordered list of columns; it is the shape descriptor used by
// tables, plans and operator outputs.
type Schema struct {
	Cols []Column
}

// NewSchema builds a schema from (name, type) pairs.
func NewSchema(cols ...Column) *Schema { return &Schema{Cols: cols} }

// Col is shorthand for constructing a Column.
func Col(name string, t T) Column { return Column{Name: name, Type: t} }

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.Cols) }

// Find returns the index of the column with the given name, or -1.
func (s *Schema) Find(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustFind is Find that panics on a missing column; for internal invariants.
func (s *Schema) MustFind(name string) int {
	i := s.Find(name)
	if i < 0 {
		panic(fmt.Sprintf("types: column %q not in schema", name))
	}
	return i
}

// Names returns the column names in order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	cols := make([]Column, len(s.Cols))
	copy(cols, s.Cols)
	return &Schema{Cols: cols}
}

// String renders the schema as "(a BIGINT, b VARCHAR NULL)".
func (s *Schema) String() string {
	out := "("
	for i, c := range s.Cols {
		if i > 0 {
			out += ", "
		}
		out += c.Name + " " + c.Type.String()
	}
	return out + ")"
}

// CommonNumeric returns the widest numeric kind of a and b following SQL
// promotion rules (INT32 < INT64 < FLOAT64), or KindInvalid when either is
// non-numeric.
func CommonNumeric(a, b Kind) Kind {
	if !a.Numeric() || !b.Numeric() {
		return KindInvalid
	}
	if a == KindFloat64 || b == KindFloat64 {
		return KindFloat64
	}
	if a == KindInt64 || b == KindInt64 {
		return KindInt64
	}
	return KindInt32
}

// Comparable reports whether values of kinds a and b may be compared,
// possibly after numeric promotion.
func Comparable(a, b Kind) bool {
	if a == b {
		return true
	}
	return a.Numeric() && b.Numeric()
}
