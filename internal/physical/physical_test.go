package physical

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"vectorwise/internal/algebra"
	"vectorwise/internal/colstore"
	"vectorwise/internal/exec"
	"vectorwise/internal/expr"
	"vectorwise/internal/pdt"
	"vectorwise/internal/rowengine"
	"vectorwise/internal/types"
)

// fixtureCatalog serves one table description.
type fixtureCatalog struct {
	name string
	info *TableInfo
}

func (c *fixtureCatalog) PhysicalTable(name string) (*TableInfo, error) {
	if name != c.name {
		return nil, fmt.Errorf("no table %q", name)
	}
	return c.info, nil
}

// fixtureEnv serves one heap table; vectorwise scans are not wired.
type fixtureEnv struct {
	heap *rowengine.HeapTable
}

func (e *fixtureEnv) Heap(string) (*rowengine.HeapTable, error) {
	if e.heap == nil {
		return nil, fmt.Errorf("no heap table")
	}
	return e.heap, nil
}

func (e *fixtureEnv) ScanSource(string, []int, int, []colstore.RangeFilter) (pdt.BatchSource, error) {
	return nil, fmt.Errorf("no column store in fixture")
}

func (e *fixtureEnv) MorselSource(string, []int, int, []colstore.RangeFilter) (exec.MorselSource, error) {
	return nil, fmt.Errorf("no column store in fixture")
}

func intSchema(names ...string) *types.Schema {
	s := &types.Schema{}
	for _, n := range names {
		s.Cols = append(s.Cols, types.Col(n, types.Int64))
	}
	return s
}

func valuesNode(rows ...int64) *algebra.Values {
	out := make([][]types.Value, len(rows))
	for i, v := range rows {
		out[i] = []types.Value{types.NewInt64(v)}
	}
	return &algebra.Values{Rows: out, Out: intSchema("x")}
}

func collect(t *testing.T, inst *Instance, profile bool) [][]types.Value {
	t.Helper()
	ctx := exec.NewCtx(context.Background())
	ctx.Profile = profile
	rows, err := exec.Collect(ctx, inst.Root)
	if err != nil {
		t.Fatalf("collect: %v", err)
	}
	return rows
}

// Build lowers a Values→Select→Project→Aggr chain into a fully typed DAG
// that instantiates and runs through the registry.
func TestBuildInstantiateAndRunPipeline(t *testing.T) {
	col := expr.Col(0, "x", types.Int64)
	alg := &algebra.Aggr{
		Child: &algebra.Project{
			Child: &algebra.Select{
				Child: valuesNode(1, 2, 3, 4, 5),
				Pred:  expr.NewCall(">", col, expr.CInt(1)),
			},
			Exprs: []expr.Expr{expr.NewCall("*", col, expr.CInt(2))},
			Names: []string{"y"},
		},
		GroupCols: nil,
		Aggs:      []algebra.AggItem{{Fn: "sum", Col: 0}, {Fn: "count", Col: -1}},
		Names:     []string{"s", "c"},
	}
	n, err := Build(alg, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	agg, ok := n.(*HashAgg)
	if !ok {
		t.Fatalf("root is %T, want *HashAgg", n)
	}
	if got := agg.Kinds(); len(got) != 2 || got[0] != types.KindInt64 || got[1] != types.KindInt64 {
		t.Fatalf("agg kinds = %v", got)
	}
	inst, err := Instantiate(n, &fixtureEnv{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	rows := collect(t, inst, false)
	// 2+3+4+5 doubled = 28, over 4 qualifying rows.
	if len(rows) != 1 || rows[0][0].Int64() != 28 || rows[0][1].Int64() != 4 {
		t.Fatalf("rows = %v", rows)
	}
}

// Scans resolve column names to storage positions at build time.
func TestBuildResolvesScanColumns(t *testing.T) {
	phys := intSchema("a", "b", "c")
	cat := &fixtureCatalog{name: "t", info: &TableInfo{
		Structure: "vectorwise", Logical: phys, Physical: phys}}
	alg := &algebra.Scan{Table: "t", Structure: "vectorwise",
		Cols: []string{"c", "a"}, Out: intSchema("c", "a")}
	n, err := Build(alg, cat)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	s, ok := n.(*Scan)
	if !ok {
		t.Fatalf("node is %T, want *Scan", n)
	}
	if s.ColIdxs[0] != 2 || s.ColIdxs[1] != 0 {
		t.Fatalf("resolved idxs = %v", s.ColIdxs)
	}
	// Morsel-stamped scans lower to ParallelScan workers sharing one queue.
	mk := func(w int) *algebra.Scan {
		return &algebra.Scan{Table: "t", Structure: "vectorwise",
			Cols: []string{"a"}, Out: intSchema("a"),
			Morsels: 2, MorselID: 7, Worker: w}
	}
	par, err := Build(&algebra.XchgUnion{Kids: []algebra.Node{mk(0), mk(1)}}, cat)
	if err != nil {
		t.Fatalf("build parallel: %v", err)
	}
	kids := par.Children()
	w0, ok0 := kids[0].(*ParallelScan)
	w1, ok1 := kids[1].(*ParallelScan)
	if !ok0 || !ok1 {
		t.Fatalf("workers are %T/%T, want *ParallelScan", kids[0], kids[1])
	}
	if w0.Queue == nil || w0.Queue != w1.Queue || w0.Queue.Workers != 2 {
		t.Fatalf("workers do not share one queue spec: %+v vs %+v", w0.Queue, w1.Queue)
	}
	if w0.Worker != 0 || w1.Worker != 1 {
		t.Fatalf("worker slots = %d/%d", w0.Worker, w1.Worker)
	}
	if _, err := Build(&algebra.Scan{Table: "t", Cols: []string{"zap"},
		Out: intSchema("zap")}, cat); err == nil {
		t.Fatal("unknown column should fail at build time")
	}
	if _, err := Build(&algebra.Scan{Table: "nope", Cols: []string{"a"},
		Out: intSchema("a")}, cat); err == nil {
		t.Fatal("unknown table should fail at build time")
	}
}

// Heap tables lower to HeapScan and run through the registry's adapter.
func TestHeapScanThroughRegistry(t *testing.T) {
	schema := intSchema("k", "v")
	heap := rowengine.NewHeapTable(schema, 0)
	for i := int64(1); i <= 3; i++ {
		if _, err := heap.Insert([]types.Value{types.NewInt64(i), types.NewInt64(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	cat := &fixtureCatalog{name: "h", info: &TableInfo{
		Structure: "heap", Logical: schema, Physical: schema}}
	alg := &algebra.Scan{Table: "h", Structure: "heap",
		Cols: []string{"v"}, Out: intSchema("v")}
	n, err := Build(alg, cat)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if _, ok := n.(*HeapScan); !ok {
		t.Fatalf("node is %T, want *HeapScan", n)
	}
	inst, err := Instantiate(n, &fixtureEnv{heap: heap})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	rows := collect(t, inst, false)
	if len(rows) != 3 || rows[0][0].Int64() != 10 || rows[2][0].Int64() != 30 {
		t.Fatalf("heap rows = %v", rows)
	}
}

// Exchange nodes record the parallelism degree and Format renders it.
func TestXchgParallelismAndFormat(t *testing.T) {
	alg := &algebra.XchgUnion{Kids: []algebra.Node{valuesNode(1), valuesNode(2)}}
	n, err := Build(alg, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if got := MaxParallelism(n); got != 2 {
		t.Fatalf("MaxParallelism = %d, want 2", got)
	}
	text := Format(n)
	for _, want := range []string{"Xchg(degree=2)", "Values(1 rows)", ":: [BIGINT]"} {
		if !strings.Contains(text, want) {
			t.Fatalf("format missing %q:\n%s", want, text)
		}
	}
	inst, err := Instantiate(n, &fixtureEnv{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if rows := collect(t, inst, false); len(rows) != 2 {
		t.Fatalf("xchg rows = %v", rows)
	}
}

// Every node kind the builder can emit has a registered factory, and
// profiling shells record per-operator counters uniformly.
func TestRegistryAndProfile(t *testing.T) {
	ops := RegisteredOps()
	want := []string{"HashAgg", "HashJoin", "HeapScan", "Limit", "ParallelHashJoin",
		"ParallelScan", "Project", "Scan", "Select", "Sort", "TopN", "Union",
		"Values", "Xchg", "XchgMerge"}
	if len(ops) != len(want) {
		t.Fatalf("registered ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("registered ops = %v, want %v", ops, want)
		}
	}

	n, err := Build(&algebra.Select{Child: valuesNode(1, 2, 3),
		Pred: expr.NewCall(">", expr.Col(0, "x", types.Int64), expr.CInt(0))}, nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	inst, err := Instantiate(n, &fixtureEnv{})
	if err != nil {
		t.Fatalf("instantiate: %v", err)
	}
	if rows := collect(t, inst, true); len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if st := inst.Stats(n); st.Rows != 3 || st.Batches < 1 {
		t.Fatalf("root stats = %+v", st)
	}
	prof := inst.RenderProfile()
	if !strings.Contains(prof, "rows=3") || !strings.Contains(prof, "Select(") {
		t.Fatalf("profile rendering:\n%s", prof)
	}
}
