package physical

import (
	"fmt"

	"vectorwise/internal/algebra"
	"vectorwise/internal/colstore"
	"vectorwise/internal/exec"
	"vectorwise/internal/types"
)

// TableInfo is what Build needs to know about a table: its access
// structure and the physical (decomposed) column layout scans read.
type TableInfo struct {
	// Structure is the table's access structure: "vectorwise" or "heap".
	Structure string
	// Logical is the table's declared schema (heap rows are stored in it).
	Logical *types.Schema
	// Physical is the decomposed storage layout (values then indicators).
	Physical *types.Schema
}

// Catalog resolves tables at plan-build time. The engine's DB implements
// it; tests can supply fixtures.
type Catalog interface {
	PhysicalTable(name string) (*TableInfo, error)
}

// Build lowers rewritten (post-decomposition) algebra into the typed
// physical DAG, resolving every column name to a storage position against
// the catalog. After Build, instantiation needs no name lookups and no
// schema reasoning — only the registry's factories.
func Build(n algebra.Node, cat Catalog) (Node, error) {
	b := &builder{cat: cat, queues: map[int]*ScanQueue{}}
	return b.build(n)
}

// builder carries per-plan lowering state: the catalog plus the morsel
// queues already materialized, keyed by the algebra MorselID, so sibling
// worker scans of one queue share a single *ScanQueue spec.
type builder struct {
	cat    Catalog
	queues map[int]*ScanQueue
}

func (b *builder) build(n algebra.Node) (Node, error) {
	switch t := n.(type) {
	case *algebra.Scan:
		return b.buildScan(t)
	case *algebra.Values:
		return &Values{Schema: t.Out, Rows: t.Rows}, nil
	case *algebra.Select:
		child, err := b.build(t.Child)
		if err != nil {
			return nil, err
		}
		return &Select{Child: child, Pred: t.Pred}, nil
	case *algebra.Project:
		child, err := b.build(t.Child)
		if err != nil {
			return nil, err
		}
		return &Project{Child: child, Exprs: t.Exprs, Names: t.Names}, nil
	case *algebra.Aggr:
		child, err := b.build(t.Child)
		if err != nil {
			return nil, err
		}
		aggs := make([]exec.AggSpec, len(t.Aggs))
		for i, a := range t.Aggs {
			fn, err := aggFn(a.Fn)
			if err != nil {
				return nil, err
			}
			aggs[i] = exec.AggSpec{Fn: fn, Col: a.Col}
		}
		out, err := aggKinds(child.Kinds(), t.GroupCols, aggs)
		if err != nil {
			return nil, err
		}
		return &HashAgg{Child: child, GroupCols: t.GroupCols, Aggs: aggs, OutKinds: out}, nil
	case *algebra.HashJoin:
		left, err := b.build(t.Left)
		if err != nil {
			return nil, err
		}
		right, err := b.build(t.Right)
		if err != nil {
			return nil, err
		}
		jt, err := joinType(t.Kind)
		if err != nil {
			return nil, err
		}
		return &HashJoin{Left: left, Right: right, Type: jt,
			LeftKeys: t.LeftKeys, RightKeys: t.RightKeys,
			LeftKeyNull: t.LeftKeyNull, RightKeyNull: t.RightKeyNull,
			OutKinds: joinKinds(left.Kinds(), right.Kinds(), jt)}, nil
	case *algebra.ParallelHashJoin:
		build, err := b.build(t.Build)
		if err != nil {
			return nil, err
		}
		probes, err := b.buildKids(t.Probes)
		if err != nil {
			return nil, err
		}
		jt, err := joinType(t.Kind)
		if err != nil {
			return nil, err
		}
		return &ParallelHashJoin{Build: build, Probes: probes, Type: jt,
			LeftKeys: t.LeftKeys, RightKeys: t.RightKeys,
			LeftKeyNull: t.LeftKeyNull, RightKeyNull: t.RightKeyNull,
			OutKinds: joinKinds(probes[0].Kinds(), build.Kinds(), jt)}, nil
	case *algebra.Sort:
		child, err := b.build(t.Child)
		if err != nil {
			return nil, err
		}
		return &Sort{Child: child, Keys: sortKeys(t.Keys)}, nil
	case *algebra.TopN:
		child, err := b.build(t.Child)
		if err != nil {
			return nil, err
		}
		return &TopN{Child: child, Keys: sortKeys(t.Keys), N: int(t.N)}, nil
	case *algebra.Limit:
		child, err := b.build(t.Child)
		if err != nil {
			return nil, err
		}
		return &Limit{Child: child, Offset: t.Offset, N: t.N}, nil
	case *algebra.UnionAll:
		kids, err := b.buildKids(t.Kids)
		if err != nil {
			return nil, err
		}
		return &Union{Kids: kids}, nil
	case *algebra.XchgUnion:
		kids, err := b.buildKids(t.Kids)
		if err != nil {
			return nil, err
		}
		return &Xchg{Kids: kids, Degree: len(kids)}, nil
	case *algebra.XchgMerge:
		kids, err := b.buildKids(t.Kids)
		if err != nil {
			return nil, err
		}
		return &XchgMerge{Kids: kids, Keys: sortKeys(t.Keys)}, nil
	}
	return nil, fmt.Errorf("physical: cannot build %T", n)
}

func (b *builder) buildKids(alg []algebra.Node) ([]Node, error) {
	kids := make([]Node, len(alg))
	for i, k := range alg {
		c, err := b.build(k)
		if err != nil {
			return nil, err
		}
		kids[i] = c
	}
	return kids, nil
}

// buildScan resolves a scan's column names against the table's physical
// layout, emitting a HeapScan for classic tables and a ParallelScan worker
// for morsel-stamped scans (sibling workers share one *ScanQueue spec,
// resolved through the builder's queue map).
func (b *builder) buildScan(t *algebra.Scan) (Node, error) {
	info, err := b.cat.PhysicalTable(t.Table)
	if err != nil {
		return nil, err
	}
	idxs := make([]int, len(t.Cols))
	kinds := make([]types.Kind, len(t.Cols))
	for i, name := range t.Cols {
		idx := info.Physical.Find(name)
		if idx < 0 {
			return nil, fmt.Errorf("physical: table %s has no column %q", t.Table, name)
		}
		idxs[i] = idx
		kinds[i] = info.Physical.Cols[idx].Type.Kind
	}
	if info.Structure == "heap" {
		return &HeapScan{Table: t.Table, Logical: info.Logical, ColIdxs: idxs, ColKinds: kinds}, nil
	}
	// Resolve range annotations (scan-output positions) to storage-column
	// filters for the block skipper.
	var filters []colstore.RangeFilter
	for _, r := range t.Ranges {
		if r.Col < 0 || r.Col >= len(idxs) || (r.Lo == nil && r.Hi == nil) {
			continue
		}
		filters = append(filters, colstore.RangeFilter{Col: idxs[r.Col], Lo: r.Lo, Hi: r.Hi})
	}
	var win *GroupWindow
	if t.Window != nil {
		win = &GroupWindow{Lo: t.Window.Lo, Hi: t.Window.Hi, Total: t.Window.Total}
	}
	if t.Morsels > 0 {
		q := b.queues[t.MorselID]
		if q == nil {
			q = &ScanQueue{ID: t.MorselID, Workers: t.Morsels}
			b.queues[t.MorselID] = q
		}
		return &ParallelScan{Table: t.Table, Cols: t.Cols, ColIdxs: idxs,
			ColKinds: kinds, Filters: filters, Queue: q, Worker: t.Worker, Window: win}, nil
	}
	return &Scan{Table: t.Table, Cols: t.Cols, ColIdxs: idxs, ColKinds: kinds,
		Filters: filters, Window: win}, nil
}

func aggFn(fn string) (exec.AggFn, error) {
	switch fn {
	case "count":
		return exec.AggCount, nil
	case "sum":
		return exec.AggSum, nil
	case "min":
		return exec.AggMin, nil
	case "max":
		return exec.AggMax, nil
	case "avg":
		return exec.AggAvg, nil
	}
	return 0, fmt.Errorf("physical: aggregate %q", fn)
}

func aggKinds(in []types.Kind, groupCols []int, aggs []exec.AggSpec) ([]types.Kind, error) {
	out := make([]types.Kind, 0, len(groupCols)+len(aggs))
	for _, g := range groupCols {
		out = append(out, in[g])
	}
	for _, a := range aggs {
		k, err := a.ResultKind(in)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func joinType(k algebra.JoinKind) (exec.JoinType, error) {
	switch k {
	case algebra.Inner:
		return exec.Inner, nil
	case algebra.LeftOuter:
		return exec.LeftOuter, nil
	case algebra.Semi:
		return exec.Semi, nil
	case algebra.Anti:
		return exec.Anti, nil
	case algebra.AntiNullAware:
		return exec.AntiNullAware, nil
	}
	return 0, fmt.Errorf("physical: join kind %v", k)
}

// joinKinds mirrors the kernel's output layout per join type.
func joinKinds(left, right []types.Kind, jt exec.JoinType) []types.Kind {
	switch jt {
	case exec.Inner:
		return append(append([]types.Kind{}, left...), right...)
	case exec.LeftOuter:
		out := append(append([]types.Kind{}, left...), right...)
		return append(out, types.KindBool)
	default:
		return append([]types.Kind{}, left...)
	}
}

func sortKeys(keys []algebra.SortKey) []exec.SortKey {
	out := make([]exec.SortKey, len(keys))
	for i, k := range keys {
		out[i] = exec.SortKey{Col: k.Col, Desc: k.Desc}
	}
	return out
}
