package physical

import (
	"vectorwise/internal/exec"
	"vectorwise/internal/rewriter"
	"vectorwise/internal/rowengine"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// heapScanOp adapts a heap table into batches of physical (decomposed)
// columns so classic tables participate in vectorized plans.
type heapScanOp struct {
	heap    *rowengine.HeapTable
	logical *types.Schema
	idxs    []int // physical column indexes to produce
	kinds   []types.Kind

	ctx  *exec.Ctx
	rows [][]types.Value // logical row snapshot
	at   int
	buf  *vec.Batch
}

func newHeapScan(h *rowengine.HeapTable, logical *types.Schema, idxs []int, kinds []types.Kind) exec.Operator {
	return &heapScanOp{heap: h, logical: logical, idxs: idxs, kinds: kinds}
}

// Kinds implements exec.Operator.
func (h *heapScanOp) Kinds() []types.Kind { return h.kinds }

// Open implements exec.Operator: snapshots the heap (classic engines
// typically latch pages; a snapshot keeps the adapter simple).
func (h *heapScanOp) Open(ctx *exec.Ctx) error {
	h.ctx = ctx
	h.at = 0
	h.rows = h.rows[:0]
	h.buf = vec.NewBatch(h.kinds, ctx.VecSize)
	if h.buf.Vecs[0].Cap() == 0 {
		h.buf = vec.NewBatch(h.kinds, vec.DefaultSize)
	}
	return h.heap.ScanFunc(func(_ rowengine.RowID, row []types.Value) bool {
		h.rows = append(h.rows, row)
		return true
	})
}

// Next implements exec.Operator.
func (h *heapScanOp) Next() (*vec.Batch, error) {
	if err := h.ctx.Ctx.Err(); err != nil {
		return nil, err
	}
	if h.at >= len(h.rows) {
		return nil, nil
	}
	n := h.buf.Vecs[0].Cap()
	if rem := len(h.rows) - h.at; n > rem {
		n = rem
	}
	h.buf.Reset()
	h.buf.SetLen(n)
	for i := 0; i < n; i++ {
		row := h.rows[h.at+i]
		phys := rewriter.DecomposeRow(h.logical, row)
		for c, pi := range h.idxs {
			h.buf.Vecs[c].Set(i, phys[pi])
		}
	}
	h.at += n
	return h.buf, nil
}

// Close implements exec.Operator.
func (h *heapScanOp) Close() {}
