// Package physical is the plan-instantiation layer between the rewritten
// X100 algebra and the execution kernel — the rewriter/builder stage the
// paper files under "things most researchers do not think about": picking
// physical operators, placing parallelism, and accounting for the
// resources a plan will use before a single vector flows.
//
// It exposes three things:
//
//   - a typed physical-plan DAG (Node and its variants) in which every
//     node carries resolved column indexes, output vector kinds, compiled
//     expressions, and its degree of parallelism;
//   - Build, which lowers rewritten algebra into that DAG against a
//     Catalog (resolving column names to storage positions once, at plan
//     time, instead of during instantiation);
//   - a registry of operator factories plus Instantiate, which turns the
//     DAG into a kernel operator tree, wrapping every operator in a
//     profiling shell so per-operator statistics (exec.OpStats) are
//     uniformly available to EXPLAIN/PROFILE and the monitor.
package physical

import (
	"fmt"
	"strings"

	"vectorwise/internal/colstore"
	"vectorwise/internal/exec"
	"vectorwise/internal/expr"
	"vectorwise/internal/types"
)

// Node is one operator of the physical plan. Unlike algebra nodes, a
// physical node is fully resolved: column references are storage indexes,
// output kinds are known, and parallel placement is explicit.
type Node interface {
	// Op names the node kind; it is the operator-registry key.
	Op() string
	// Kinds lists the output vector kinds.
	Kinds() []types.Kind
	// Children returns the inputs.
	Children() []Node
	// Line renders this node (one line, children excluded).
	Line() string
	// Parallelism is the degree of parallelism this node introduces
	// (1 = serial; an exchange reports its fan-in).
	Parallelism() int
}

// Scan reads resolved column positions from a vectorwise (column-store)
// table, serially. Filters are sargable bounds (storage column positions)
// forwarded to the scanner for min/max block skipping on the delta-free
// path; the residual Select above the scan keeps results exact. Parallel
// scans lower to ParallelScan instead.
type Scan struct {
	Table    string
	Cols     []string // resolved physical column names (for display)
	ColIdxs  []int    // storage positions to read
	ColKinds []types.Kind
	Filters  []colstore.RangeFilter
	// Window is the compile-time clustered group interval hint (display
	// only — the scanner re-derives it in its own snapshot).
	Window *GroupWindow
}

// GroupWindow mirrors the algebra window annotation for EXPLAIN PHYSICAL.
type GroupWindow struct {
	Lo, Hi, Total int
}

func (w *GroupWindow) suffix() string {
	if w == nil {
		return ""
	}
	return fmt.Sprintf(", groups=[%d,%d)/%d", w.Lo, w.Hi, w.Total)
}

// Op implements Node.
func (s *Scan) Op() string { return "Scan" }

// Kinds implements Node.
func (s *Scan) Kinds() []types.Kind { return s.ColKinds }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Parallelism implements Node.
func (s *Scan) Parallelism() int { return 1 }

// Line implements Node.
func (s *Scan) Line() string {
	return fmt.Sprintf("Scan('%s', %v @ %v%s%s)", s.Table, s.Cols, s.ColIdxs,
		filtersString(s.Filters), s.Window.suffix())
}

func filtersString(filters []colstore.RangeFilter) string {
	if len(filters) == 0 {
		return ""
	}
	parts := make([]string, len(filters))
	for i, f := range filters {
		parts[i] = types.FormatRange("col", f.Col, f.Lo, f.Hi)
	}
	return ", filters=[" + strings.Join(parts, ", ") + "]"
}

// ScanQueue identifies one run-time morsel queue. The P ParallelScan
// workers of a parallel fragment hold the same *ScanQueue, and the pointer
// itself is the shared-state key at execution: workers resolving it land on
// the same queue, distinct queues (self-joins, multiple parallel chains in
// one plan) stay distinct.
type ScanQueue struct {
	ID      int
	Workers int
}

// ParallelScan is one worker of a morsel-driven parallel scan: P siblings
// share the Queue and pull row-group morsels from it at run time. Which
// rows a worker reads is decided at Open, never at plan time — skew
// self-balances by stealing, and a snapshot with deltas degrades to one
// worker claiming the whole merged stream while the plan keeps its shape.
type ParallelScan struct {
	Table    string
	Cols     []string
	ColIdxs  []int
	ColKinds []types.Kind
	Filters  []colstore.RangeFilter
	Queue    *ScanQueue
	Worker   int
	// Window is the compile-time clustered group interval hint (display
	// only — the morsel source re-derives it in its own snapshot).
	Window *GroupWindow
}

// Op implements Node.
func (s *ParallelScan) Op() string { return "ParallelScan" }

// Kinds implements Node.
func (s *ParallelScan) Kinds() []types.Kind { return s.ColKinds }

// Children implements Node.
func (s *ParallelScan) Children() []Node { return nil }

// Parallelism implements Node: each worker is one stream; the exchange
// above reports the fan-in.
func (s *ParallelScan) Parallelism() int { return 1 }

// Line implements Node.
func (s *ParallelScan) Line() string {
	return fmt.Sprintf("ParallelScan('%s', %v @ %v, worker %d/%d, queue=%d%s%s)",
		s.Table, s.Cols, s.ColIdxs, s.Worker, s.Queue.Workers, s.Queue.ID,
		filtersString(s.Filters), s.Window.suffix())
}

// HeapScan adapts a classic (slotted-page) heap table into the vectorized
// pipeline, decomposing rows into value+indicator columns on the fly.
type HeapScan struct {
	Table    string
	Logical  *types.Schema // heap row schema (pre-decomposition)
	ColIdxs  []int         // physical column positions to produce
	ColKinds []types.Kind
}

// Op implements Node.
func (s *HeapScan) Op() string { return "HeapScan" }

// Kinds implements Node.
func (s *HeapScan) Kinds() []types.Kind { return s.ColKinds }

// Children implements Node.
func (s *HeapScan) Children() []Node { return nil }

// Parallelism implements Node.
func (s *HeapScan) Parallelism() int { return 1 }

// Line implements Node.
func (s *HeapScan) Line() string {
	return fmt.Sprintf("HeapScan('%s', cols=%v)", s.Table, s.ColIdxs)
}

// Values is a literal relation.
type Values struct {
	Schema *types.Schema
	Rows   [][]types.Value
}

// Op implements Node.
func (v *Values) Op() string { return "Values" }

// Kinds implements Node.
func (v *Values) Kinds() []types.Kind {
	out := make([]types.Kind, v.Schema.Len())
	for i, c := range v.Schema.Cols {
		out[i] = c.Type.Kind
	}
	return out
}

// Children implements Node.
func (v *Values) Children() []Node { return nil }

// Parallelism implements Node.
func (v *Values) Parallelism() int { return 1 }

// Line implements Node.
func (v *Values) Line() string { return fmt.Sprintf("Values(%d rows)", len(v.Rows)) }

// Select filters by a compiled boolean expression.
type Select struct {
	Child Node
	Pred  expr.Expr
}

// Op implements Node.
func (s *Select) Op() string { return "Select" }

// Kinds implements Node.
func (s *Select) Kinds() []types.Kind { return s.Child.Kinds() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Child} }

// Parallelism implements Node.
func (s *Select) Parallelism() int { return 1 }

// Line implements Node.
func (s *Select) Line() string { return "Select(" + s.Pred.String() + ")" }

// Project computes compiled expressions.
type Project struct {
	Child Node
	Exprs []expr.Expr
	Names []string
}

// Op implements Node.
func (p *Project) Op() string { return "Project" }

// Kinds implements Node.
func (p *Project) Kinds() []types.Kind {
	out := make([]types.Kind, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = e.Type().Kind
	}
	return out
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// Parallelism implements Node.
func (p *Project) Parallelism() int { return 1 }

// Line implements Node.
func (p *Project) Line() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = p.Names[i] + "=" + e.String()
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// HashAgg groups and aggregates; output kinds are resolved at build time.
type HashAgg struct {
	Child     Node
	GroupCols []int
	Aggs      []exec.AggSpec
	OutKinds  []types.Kind
}

// Op implements Node.
func (a *HashAgg) Op() string { return "HashAgg" }

// Kinds implements Node.
func (a *HashAgg) Kinds() []types.Kind { return a.OutKinds }

// Children implements Node.
func (a *HashAgg) Children() []Node { return []Node{a.Child} }

// Parallelism implements Node.
func (a *HashAgg) Parallelism() int { return 1 }

// Line implements Node.
func (a *HashAgg) Line() string {
	aggs := make([]string, len(a.Aggs))
	for i, sp := range a.Aggs {
		if sp.Col < 0 {
			aggs[i] = sp.Fn.String() + "(*)"
		} else {
			aggs[i] = fmt.Sprintf("%s($%d)", sp.Fn, sp.Col)
		}
	}
	return fmt.Sprintf("HashAgg(groups=%v, [%s])", a.GroupCols, strings.Join(aggs, ", "))
}

// HashJoin joins on key equality; LeftKeyNull/RightKeyNull carry the
// indicator columns the null-aware anti join consults (-1 otherwise).
type HashJoin struct {
	Left, Right  Node
	Type         exec.JoinType
	LeftKeys     []int
	RightKeys    []int
	LeftKeyNull  int
	RightKeyNull int
	OutKinds     []types.Kind
}

// Op implements Node.
func (j *HashJoin) Op() string { return "HashJoin" }

// Kinds implements Node.
func (j *HashJoin) Kinds() []types.Kind { return j.OutKinds }

// Children implements Node.
func (j *HashJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Parallelism implements Node.
func (j *HashJoin) Parallelism() int { return 1 }

// Line implements Node.
func (j *HashJoin) Line() string {
	return fmt.Sprintf("HashJoin[%s](lk=%v, rk=%v)", j.Type, j.LeftKeys, j.RightKeys)
}

// Sort orders rows.
type Sort struct {
	Child Node
	Keys  []exec.SortKey
}

// Op implements Node.
func (s *Sort) Op() string { return "Sort" }

// Kinds implements Node.
func (s *Sort) Kinds() []types.Kind { return s.Child.Kinds() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// Parallelism implements Node.
func (s *Sort) Parallelism() int { return 1 }

// Line implements Node.
func (s *Sort) Line() string { return fmt.Sprintf("Sort(%s)", keysString(s.Keys)) }

// TopN is Sort fused with a row limit.
type TopN struct {
	Child Node
	Keys  []exec.SortKey
	N     int
}

// Op implements Node.
func (t *TopN) Op() string { return "TopN" }

// Kinds implements Node.
func (t *TopN) Kinds() []types.Kind { return t.Child.Kinds() }

// Children implements Node.
func (t *TopN) Children() []Node { return []Node{t.Child} }

// Parallelism implements Node.
func (t *TopN) Parallelism() int { return 1 }

// Line implements Node.
func (t *TopN) Line() string { return fmt.Sprintf("TopN(%s, %d)", keysString(t.Keys), t.N) }

// Limit caps output.
type Limit struct {
	Child  Node
	Offset int64
	N      int64
}

// Op implements Node.
func (l *Limit) Op() string { return "Limit" }

// Kinds implements Node.
func (l *Limit) Kinds() []types.Kind { return l.Child.Kinds() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// Parallelism implements Node.
func (l *Limit) Parallelism() int { return 1 }

// Line implements Node.
func (l *Limit) Line() string { return fmt.Sprintf("Limit(%d, %d)", l.Offset, l.N) }

// Union concatenates children serially.
type Union struct{ Kids []Node }

// Op implements Node.
func (u *Union) Op() string { return "Union" }

// Kinds implements Node.
func (u *Union) Kinds() []types.Kind { return u.Kids[0].Kinds() }

// Children implements Node.
func (u *Union) Children() []Node { return u.Kids }

// Parallelism implements Node.
func (u *Union) Parallelism() int { return 1 }

// Line implements Node.
func (u *Union) Line() string { return fmt.Sprintf("Union(%d)", len(u.Kids)) }

// Xchg is the Volcano-style exchange: each child fragment runs in its own
// goroutine and the streams merge here. Its Parallelism is the plan's
// explicit record of where (and how wide) parallelism was placed.
type Xchg struct {
	Kids   []Node
	Degree int
}

// Op implements Node.
func (x *Xchg) Op() string { return "Xchg" }

// Kinds implements Node.
func (x *Xchg) Kinds() []types.Kind { return x.Kids[0].Kinds() }

// Children implements Node.
func (x *Xchg) Children() []Node { return x.Kids }

// Parallelism implements Node.
func (x *Xchg) Parallelism() int { return x.Degree }

// Line implements Node.
func (x *Xchg) Line() string { return fmt.Sprintf("Xchg(degree=%d)", x.Degree) }

// XchgMerge is the order-preserving exchange: children are pre-sorted
// parallel fragments and the merge keeps their union globally sorted.
type XchgMerge struct {
	Kids []Node
	Keys []exec.SortKey
}

// Op implements Node.
func (x *XchgMerge) Op() string { return "XchgMerge" }

// Kinds implements Node.
func (x *XchgMerge) Kinds() []types.Kind { return x.Kids[0].Kinds() }

// Children implements Node.
func (x *XchgMerge) Children() []Node { return x.Kids }

// Parallelism implements Node.
func (x *XchgMerge) Parallelism() int { return len(x.Kids) }

// Line implements Node.
func (x *XchgMerge) Line() string {
	return fmt.Sprintf("XchgMerge(degree=%d, keys=%s)", len(x.Kids), keysString(x.Keys))
}

// ParallelHashJoin is a hash join with one shared build (run once, by the
// first prober to need it) and P concurrent probe fragments merged by an
// exchange union. Children are [Build, Probes...].
type ParallelHashJoin struct {
	Build        Node
	Probes       []Node
	Type         exec.JoinType
	LeftKeys     []int
	RightKeys    []int
	LeftKeyNull  int
	RightKeyNull int
	OutKinds     []types.Kind
}

// Op implements Node.
func (j *ParallelHashJoin) Op() string { return "ParallelHashJoin" }

// Kinds implements Node.
func (j *ParallelHashJoin) Kinds() []types.Kind { return j.OutKinds }

// Children implements Node.
func (j *ParallelHashJoin) Children() []Node {
	return append([]Node{j.Build}, j.Probes...)
}

// Parallelism implements Node.
func (j *ParallelHashJoin) Parallelism() int { return len(j.Probes) }

// Line implements Node.
func (j *ParallelHashJoin) Line() string {
	return fmt.Sprintf("ParallelHashJoin[%s](lk=%v, rk=%v, degree=%d)",
		j.Type, j.LeftKeys, j.RightKeys, len(j.Probes))
}

func keysString(keys []exec.SortKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		dir := "asc"
		if k.Desc {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("$%d %s", k.Col, dir)
	}
	return strings.Join(parts, ", ")
}

// Format renders the physical DAG in indented form with output kinds —
// the body of EXPLAIN PHYSICAL.
func Format(n Node) string {
	return render(n, func(m Node) string { return " :: " + kindsString(m.Kinds()) })
}

// render walks the DAG producing one indented line per node: Line() plus
// a caller-supplied annotation (kinds for Format, counters for profiles).
func render(n Node, annotate func(Node) string) string {
	var b strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Line())
		b.WriteString(annotate(n))
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}

func kindsString(kinds []types.Kind) string {
	parts := make([]string, len(kinds))
	for i, k := range kinds {
		parts[i] = k.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Walk visits the DAG prefix-order.
func Walk(n Node, f func(Node) bool) {
	if !f(n) {
		return
	}
	for _, c := range n.Children() {
		Walk(c, f)
	}
}

// MaxParallelism reports the widest parallel region of a plan (1 = fully
// serial) — the resource-accounting figure the parallelizer exposes.
func MaxParallelism(n Node) int {
	max := 1
	Walk(n, func(m Node) bool {
		if p := m.Parallelism(); p > max {
			max = p
		}
		return true
	})
	return max
}
