package physical

import (
	"fmt"
	"sort"
	"time"

	"vectorwise/internal/colstore"
	"vectorwise/internal/exec"
	"vectorwise/internal/pdt"
	"vectorwise/internal/rowengine"
)

// Env supplies the runtime resources operator factories need: storage
// handles and transactional snapshots. The engine's per-query session
// implements it; tests can stub it.
type Env interface {
	// Heap returns a heap table's storage.
	Heap(table string) (*rowengine.HeapTable, error)
	// ScanSource returns a positional batch source over the whole of a
	// vectorwise table's snapshot. Called at operator Open time, once the
	// vector size is known. filters carry sargable bounds for min/max block
	// skipping; the provider must apply them only on delta-free scans (PDT
	// merging is positional, so every stable row must flow) — results stay
	// exact either way because the plan keeps the residual Select.
	ScanSource(table string, cols []int, vecSize int, filters []colstore.RangeFilter) (pdt.BatchSource, error)
	// MorselSource returns the run-time view of a parallel scan over the
	// same snapshot: row-group morsels plus per-worker scanners when the
	// snapshot is delta-free, or a serial fallback stream otherwise (the
	// run-time decision that replaced compile-time partitioning).
	MorselSource(table string, cols []int, vecSize int, filters []colstore.RangeFilter) (exec.MorselSource, error)
}

// Factory instantiates the kernel operator for one physical node; kids are
// the already-instantiated children, in Children() order.
type Factory func(n Node, env Env, kids []exec.Operator) (exec.Operator, error)

var registry = map[string]Factory{}

// Register binds an op name to its factory. New operators added in future
// PRs plug in here; duplicate registration panics (a wiring bug).
func Register(op string, f Factory) {
	if _, dup := registry[op]; dup {
		panic("physical: duplicate operator registration: " + op)
	}
	registry[op] = f
}

func init() {
	Register("Scan", func(n Node, env Env, _ []exec.Operator) (exec.Operator, error) {
		s := n.(*Scan)
		table, idxs, filters := s.Table, s.ColIdxs, s.Filters
		return exec.NewColScan(s.ColKinds, func(vecSize int) (pdt.BatchSource, error) {
			return env.ScanSource(table, idxs, vecSize, filters)
		}), nil
	})
	Register("ParallelScan", func(n Node, env Env, _ []exec.Operator) (exec.Operator, error) {
		s := n.(*ParallelScan)
		table, idxs, filters := s.Table, s.ColIdxs, s.Filters
		// The Queue pointer doubles as the shared-state key: sibling workers
		// built from the same physical spec join the same morsel queue.
		return exec.NewMorselScan(s.ColKinds, s.Queue, s.Worker, s.Queue.Workers,
			"ParallelScan", func(vecSize int) (exec.MorselSource, error) {
				return env.MorselSource(table, idxs, vecSize, filters)
			}), nil
	})
	Register("HeapScan", func(n Node, env Env, _ []exec.Operator) (exec.Operator, error) {
		s := n.(*HeapScan)
		h, err := env.Heap(s.Table)
		if err != nil {
			return nil, err
		}
		return newHeapScan(h, s.Logical, s.ColIdxs, s.ColKinds), nil
	})
	Register("Values", func(n Node, _ Env, _ []exec.Operator) (exec.Operator, error) {
		v := n.(*Values)
		return exec.NewValues(v.Schema, v.Rows), nil
	})
	Register("Select", func(n Node, _ Env, kids []exec.Operator) (exec.Operator, error) {
		return exec.NewSelect(kids[0], n.(*Select).Pred), nil
	})
	Register("Project", func(n Node, _ Env, kids []exec.Operator) (exec.Operator, error) {
		return exec.NewProject(kids[0], n.(*Project).Exprs), nil
	})
	Register("HashAgg", func(n Node, _ Env, kids []exec.Operator) (exec.Operator, error) {
		a := n.(*HashAgg)
		return exec.NewHashAgg(kids[0], a.GroupCols, a.Aggs)
	})
	Register("HashJoin", func(n Node, _ Env, kids []exec.Operator) (exec.Operator, error) {
		j := n.(*HashJoin)
		hj := exec.NewHashJoin(kids[0], kids[1], j.LeftKeys, j.RightKeys, j.Type)
		hj.LeftKeyNull = j.LeftKeyNull
		hj.RightKeyNull = j.RightKeyNull
		return hj, nil
	})
	Register("Sort", func(n Node, _ Env, kids []exec.Operator) (exec.Operator, error) {
		return exec.NewSort(kids[0], n.(*Sort).Keys), nil
	})
	Register("TopN", func(n Node, _ Env, kids []exec.Operator) (exec.Operator, error) {
		t := n.(*TopN)
		return exec.NewTopN(kids[0], t.Keys, t.N), nil
	})
	Register("Limit", func(n Node, _ Env, kids []exec.Operator) (exec.Operator, error) {
		l := n.(*Limit)
		return exec.NewLimit(kids[0], l.Offset, l.N), nil
	})
	Register("Union", func(_ Node, _ Env, kids []exec.Operator) (exec.Operator, error) {
		return exec.NewUnion(kids...)
	})
	Register("Xchg", func(_ Node, _ Env, kids []exec.Operator) (exec.Operator, error) {
		return exec.NewXchgUnion(kids...), nil
	})
	Register("XchgMerge", func(n Node, _ Env, kids []exec.Operator) (exec.Operator, error) {
		return exec.NewXchgMerge(n.(*XchgMerge).Keys, kids...), nil
	})
	Register("ParallelHashJoin", func(n Node, _ Env, kids []exec.Operator) (exec.Operator, error) {
		j := n.(*ParallelHashJoin)
		return exec.NewParallelHashJoin(kids[0], kids[1:], j.LeftKeys, j.RightKeys,
			j.Type, j.LeftKeyNull, j.RightKeyNull), nil
	})
}

// Instance is an instantiated plan: the kernel operator tree plus the
// profiling shells aligned with the physical nodes that produced them.
type Instance struct {
	// Root is the operator to execute.
	Root exec.Operator
	// Plan is the physical DAG the instance was built from.
	Plan Node

	prof map[Node]*exec.Profiled
}

// Instantiate turns a physical DAG into kernel operators via the registry,
// wrapping every operator in a profiling shell (counters stay off unless
// the execution context enables them).
func Instantiate(n Node, env Env) (*Instance, error) {
	inst := &Instance{Plan: n, prof: map[Node]*exec.Profiled{}}
	root, err := inst.build(n, env)
	if err != nil {
		return nil, err
	}
	inst.Root = root
	return inst, nil
}

func (inst *Instance) build(n Node, env Env) (exec.Operator, error) {
	children := n.Children()
	kids := make([]exec.Operator, len(children))
	for i, c := range children {
		op, err := inst.build(c, env)
		if err != nil {
			return nil, err
		}
		kids[i] = op
	}
	f, ok := registry[n.Op()]
	if !ok {
		return nil, fmt.Errorf("physical: no factory registered for %s", n.Op())
	}
	op, err := f(n, env, kids)
	if err != nil {
		return nil, err
	}
	p := exec.NewProfiled(n.Op(), op)
	inst.prof[n] = p
	return p, nil
}

// Stats returns the profile counters recorded for a plan node (zero-valued
// unless the query ran with profiling enabled).
func (inst *Instance) Stats(n Node) exec.OpStats {
	if p, ok := inst.prof[n]; ok {
		return p.Stats()
	}
	return exec.OpStats{}
}

// RenderProfile renders the physical DAG annotated with each operator's
// counters — the per-operator breakdown PROFILE prints. Scans that saw
// block skipping additionally report skipped=N/M groups; morsel-scan
// workers report how many morsels they claimed and how many were stolen
// from siblings.
func (inst *Instance) RenderProfile() string {
	return render(inst.Plan, func(n Node) string {
		st := inst.Stats(n)
		skip := ""
		if st.TotalGroups > 0 {
			skip = fmt.Sprintf(" skipped=%d/%d groups", st.SkippedGroups, st.TotalGroups)
			if st.SkippedBytes > 0 {
				skip += fmt.Sprintf(" (%d bytes)", st.SkippedBytes)
			}
		}
		morsels := ""
		if st.Morsels > 0 {
			morsels = fmt.Sprintf(" morsels=%d", st.Morsels)
			if st.MorselSteals > 0 {
				morsels += fmt.Sprintf(" (stolen=%d)", st.MorselSteals)
			}
		}
		return fmt.Sprintf("  [rows=%d batches=%d time=%v%s%s]",
			st.Rows, st.Batches, time.Duration(st.Nanos).Round(time.Microsecond), skip, morsels)
	})
}

// RegisteredOps lists the registry's operator names, sorted (diagnostics,
// tests).
func RegisteredOps() []string {
	out := make([]string, 0, len(registry))
	for op := range registry {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}
