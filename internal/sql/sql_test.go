package sql

import (
	"testing"

	"vectorwise/internal/types"
)

func mustParse(t *testing.T, src string) Stmt {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return s
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustParse(t, "SELECT a, b AS bee FROM t WHERE a > 5 ORDER BY b DESC LIMIT 10 OFFSET 2").(*SelectStmt)
	if len(s.Items) != 2 || s.Items[1].Alias != "bee" {
		t.Fatalf("items: %+v", s.Items)
	}
	if s.Limit != 10 || s.Offset != 2 {
		t.Fatal("limit/offset")
	}
	if len(s.OrderBy) != 1 || !s.OrderBy[0].Desc {
		t.Fatal("order by")
	}
	bo, ok := s.Where.(*BinOp)
	if !ok || bo.Op != ">" {
		t.Fatalf("where: %#v", s.Where)
	}
}

func TestParseStarAndDistinct(t *testing.T) {
	s := mustParse(t, "SELECT DISTINCT * FROM t").(*SelectStmt)
	if !s.Distinct || !s.Items[0].Star {
		t.Fatal("distinct star")
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustParse(t, "SELECT 1 + 2 * 3").(*SelectStmt)
	add := s.Items[0].Expr.(*BinOp)
	if add.Op != "+" {
		t.Fatalf("top op: %v", add.Op)
	}
	if mul := add.R.(*BinOp); mul.Op != "*" {
		t.Fatal("mul should bind tighter")
	}
	// AND/OR precedence.
	s2 := mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").(*SelectStmt)
	or := s2.Where.(*BinOp)
	if or.Op != "or" {
		t.Fatal("or should be top")
	}
	if and := or.R.(*BinOp); and.Op != "and" {
		t.Fatal("and should bind tighter")
	}
}

func TestParseJoins(t *testing.T) {
	s := mustParse(t, `SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y`).(*SelectStmt)
	j := s.From[0].(*JoinRef)
	if j.Kind != "left" {
		t.Fatalf("outer join kind: %s", j.Kind)
	}
	inner := j.Left.(*JoinRef)
	if inner.Kind != "inner" {
		t.Fatal("inner join kind")
	}
	if inner.Left.(*BaseTable).Name != "a" || j.Right.(*BaseTable).Name != "c" {
		t.Fatal("join shape")
	}
	s2 := mustParse(t, "SELECT * FROM a, b WHERE a.x = b.x").(*SelectStmt)
	if len(s2.From) != 2 {
		t.Fatal("comma join")
	}
	s3 := mustParse(t, "SELECT * FROM a CROSS JOIN b").(*SelectStmt)
	if s3.From[0].(*JoinRef).Kind != "cross" {
		t.Fatal("cross join")
	}
}

func TestParseGroupHaving(t *testing.T) {
	s := mustParse(t, `SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g HAVING COUNT(*) > 2`).(*SelectStmt)
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Fatal("group/having")
	}
	cnt := s.Items[1].Expr.(*FuncCall)
	if cnt.Name != "count" || !cnt.Star {
		t.Fatal("count(*)")
	}
	sum := s.Items[2].Expr.(*FuncCall)
	if sum.Name != "sum" || len(sum.Args) != 1 {
		t.Fatal("sum(v)")
	}
}

func TestParsePredicates(t *testing.T) {
	s := mustParse(t, `SELECT * FROM t WHERE a BETWEEN 1 AND 10 AND b LIKE 'x%' AND c IS NOT NULL AND d IN (1,2,3) AND e NOT IN (SELECT k FROM u) AND NOT EXISTS (SELECT 1 FROM v)`).(*SelectStmt)
	// Just verify it parsed into a tree with the right leaves.
	var nIn, nBetween, nLike, nIsNull, nExists int
	var walk func(e ExprNode)
	walk = func(e ExprNode) {
		switch n := e.(type) {
		case *BinOp:
			if n.Op == "like" {
				nLike++
			}
			walk(n.L)
			walk(n.R)
		case *UnOp:
			walk(n.E)
		case *BetweenExpr:
			nBetween++
		case *IsNullExpr:
			nIsNull++
			if !n.Not {
				t.Fatal("IS NOT NULL parsed as IS NULL")
			}
		case *InExpr:
			nIn++
			if n.Sub != nil && !n.Not {
				t.Fatal("NOT IN lost its NOT")
			}
		case *ExistsExpr:
			nExists++
			if !n.Not {
				// NOT EXISTS comes via UnOp(not, Exists) — both accepted.
				_ = n
			}
		}
	}
	walk(s.Where)
	if nIn != 2 || nBetween != 1 || nLike != 1 || nIsNull != 1 || nExists != 1 {
		t.Fatalf("leaves: in=%d between=%d like=%d isnull=%d exists=%d", nIn, nBetween, nLike, nIsNull, nExists)
	}
}

func TestParseCaseCastExtract(t *testing.T) {
	s := mustParse(t, `SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END, CAST(a AS DOUBLE), EXTRACT(YEAR FROM d), year(d) FROM t`).(*SelectStmt)
	if _, ok := s.Items[0].Expr.(*CaseExpr); !ok {
		t.Fatal("case")
	}
	c := s.Items[1].Expr.(*CastExpr)
	if c.To.Kind != types.KindFloat64 {
		t.Fatal("cast type")
	}
	e := s.Items[2].Expr.(*FuncCall)
	if e.Name != "year" {
		t.Fatal("extract")
	}
	f := s.Items[3].Expr.(*FuncCall)
	if f.Name != "year" {
		t.Fatal("year()")
	}
}

func TestParseLiterals(t *testing.T) {
	s := mustParse(t, `SELECT 1, 3000000000, 1.5, 'it''s', TRUE, NULL, DATE '2020-02-29'`).(*SelectStmt)
	if s.Items[0].Expr.(*Lit).Val.Kind != types.KindInt32 {
		t.Fatal("small int → INTEGER")
	}
	if s.Items[1].Expr.(*Lit).Val.Kind != types.KindInt64 {
		t.Fatal("big int → BIGINT")
	}
	if s.Items[3].Expr.(*Lit).Val.Str != "it's" {
		t.Fatal("escaped quote")
	}
	if !s.Items[5].Expr.(*Lit).Val.Null {
		t.Fatal("null literal")
	}
	d := s.Items[6].Expr.(*Lit).Val
	if d.Kind != types.KindDate || types.FormatDate(d.Int32()) != "2020-02-29" {
		t.Fatal("date literal")
	}
}

func TestParseCreateTable(t *testing.T) {
	s := mustParse(t, `CREATE TABLE t (id BIGINT PRIMARY KEY, name VARCHAR(20) NOT NULL, v DOUBLE, d DATE) WITH STRUCTURE=HEAP`).(*CreateTableStmt)
	if s.Name != "t" || s.Structure != "heap" || len(s.Cols) != 4 {
		t.Fatalf("create: %+v", s)
	}
	if !s.Cols[0].PrimaryKey || s.Cols[0].Type.Nullable {
		t.Fatal("pk col")
	}
	if s.Cols[1].Type.Nullable || !s.Cols[2].Type.Nullable {
		t.Fatal("nullability")
	}
	s2 := mustParse(t, `CREATE TABLE v (x INT)`).(*CreateTableStmt)
	if s2.Structure != "vectorwise" {
		t.Fatal("default structure")
	}
}

func TestParseDML(t *testing.T) {
	ins := mustParse(t, `INSERT INTO t VALUES (1, 'a'), (2, 'b')`).(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Rows[1]) != 2 {
		t.Fatal("insert values")
	}
	ins2 := mustParse(t, `INSERT INTO t SELECT * FROM u`).(*InsertStmt)
	if ins2.Query == nil {
		t.Fatal("insert select")
	}
	up := mustParse(t, `UPDATE t SET a = a + 1, b = 'x' WHERE id = 5`).(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Fatal("update")
	}
	del := mustParse(t, `DELETE FROM t WHERE a < 0`).(*DeleteStmt)
	if del.Where == nil {
		t.Fatal("delete")
	}
	cp := mustParse(t, `COPY t FROM '/tmp/x.csv'`).(*CopyStmt)
	if cp.Path != "/tmp/x.csv" {
		t.Fatal("copy")
	}
}

func TestParseMisc(t *testing.T) {
	if _, ok := mustParse(t, `ANALYZE t`).(*AnalyzeStmt); !ok {
		t.Fatal("analyze")
	}
	if _, ok := mustParse(t, `CHECKPOINT t`).(*CheckpointStmt); !ok {
		t.Fatal("checkpoint")
	}
	ex := mustParse(t, `EXPLAIN SELECT 1`).(*ExplainStmt)
	if _, ok := ex.Query.(*SelectStmt); !ok {
		t.Fatal("explain")
	}
	if ex.Physical || ex.Profile {
		t.Fatal("plain EXPLAIN should not set variants")
	}
	exp := mustParse(t, `EXPLAIN PHYSICAL SELECT 1`).(*ExplainStmt)
	if !exp.Physical {
		t.Fatal("explain physical")
	}
	if _, ok := exp.Query.(*SelectStmt); !ok {
		t.Fatal("explain physical query")
	}
	if mustParse(t, `SHOW TABLES`).(*ShowStmt).What != "tables" {
		t.Fatal("show tables")
	}
	if _, ok := mustParse(t, `DROP TABLE t`).(*DropTableStmt); !ok {
		t.Fatal("drop")
	}
	s := mustParse(t, `SELECT * FROM t WITH (PARALLEL=4, VECTORSIZE=2048)`).(*SelectStmt)
	if s.Parallel != 4 || s.VectorSize != 2048 {
		t.Fatal("query options")
	}
}

func TestParseSubqueries(t *testing.T) {
	s := mustParse(t, `SELECT (SELECT MAX(v) FROM u), a FROM (SELECT a FROM t) sub`).(*SelectStmt)
	if _, ok := s.Items[0].Expr.(*SubqueryExpr); !ok {
		t.Fatal("scalar subquery")
	}
	if s.From[0].(*SubqueryTable).Alias != "sub" {
		t.Fatal("derived table")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"CREATE TABLE t",
		"INSERT INTO t",
		"SELECT * FROM t LIMIT 'x'",
		"SELECT 'unterminated",
		"SELECT a FROM t GROUP",
		"SELECT * FROM (SELECT 1)", // missing alias
		"UPDATE t SET",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted bad SQL: %q", src)
		}
	}
}

func TestParseAll(t *testing.T) {
	stmts, err := ParseAll(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts: %d", len(stmts))
	}
}

func TestLexerComments(t *testing.T) {
	s := mustParse(t, "SELECT 1 -- a comment\n + 2").(*SelectStmt)
	if s.Items[0].Expr.(*BinOp).Op != "+" {
		t.Fatal("comment handling")
	}
}
