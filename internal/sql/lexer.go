// Package sql is the SQL front door: a hand-written lexer and recursive-
// descent parser producing the AST consumed by the binder (internal/plan).
// It plays the role of Ingres' SQL parser in Figure 1 of the paper.
package sql

import (
	"fmt"
	"strings"
)

// TokKind classifies tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokOp // operators and punctuation
)

// Token is one lexical token with its source offset (for error messages).
type Token struct {
	Kind TokKind
	Text string // keywords upper-cased; identifiers lower-cased
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "EXISTS": true,
	"BETWEEN": true, "LIKE": true, "IS": true, "NULL": true, "TRUE": true,
	"FALSE": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "CAST": true, "JOIN": true, "INNER": true, "LEFT": true,
	"OUTER": true, "ON": true, "CREATE": true, "TABLE": true, "PRIMARY": true,
	"KEY": true, "WITH": true, "STRUCTURE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true, "COPY": true,
	"ANALYZE": true, "EXPLAIN": true, "DROP": true, "SHOW": true, "TABLES": true,
	"QUERIES": true, "CHECKPOINT": true, "DISTINCT": true, "ASC": true,
	"DESC": true, "INTEGER": true, "INT": true, "BIGINT": true, "DOUBLE": true,
	"FLOAT": true, "VARCHAR": true, "TEXT": true, "CHAR": true, "DATE": true,
	"BOOLEAN": true, "BOOL": true, "PROFILE": true, "BEGIN": true,
	"COMMIT": true, "ABORT": true, "ROLLBACK": true, "UNION": true, "ALL": true,
	"CROSS": true, "SEMI": true, "ANTI": true, "COUNT": true, "SUM": true,
	"MIN": true, "MAX": true, "AVG": true, "EXTRACT": true, "YEAR": true,
	"MONTH": true, "DAY": true, "QUARTER": true, "VECTORWISE": true,
	"HEAP": true, "PARALLEL": true, "VECTORSIZE": true, "PHYSICAL": true,
}

// Lexer tokenizes SQL text.
type Lexer struct {
	src string
	at  int
}

// NewLexer builds a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	if l.at >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.at}, nil
	}
	pos := l.at
	c := l.src[l.at]
	switch {
	case isAlpha(c) || c == '_':
		start := l.at
		for l.at < len(l.src) && (isAlnum(l.src[l.at]) || l.src[l.at] == '_' || l.src[l.at] == '$') {
			l.at++
		}
		word := l.src[start:l.at]
		up := strings.ToUpper(word)
		if keywords[up] {
			return Token{Kind: TokKeyword, Text: up, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: strings.ToLower(word), Pos: pos}, nil
	case isDigit(c):
		start := l.at
		isFloat := false
		for l.at < len(l.src) && isDigit(l.src[l.at]) {
			l.at++
		}
		if l.at < len(l.src) && l.src[l.at] == '.' && l.at+1 < len(l.src) && isDigit(l.src[l.at+1]) {
			isFloat = true
			l.at++
			for l.at < len(l.src) && isDigit(l.src[l.at]) {
				l.at++
			}
		}
		if l.at < len(l.src) && (l.src[l.at] == 'e' || l.src[l.at] == 'E') {
			save := l.at
			l.at++
			if l.at < len(l.src) && (l.src[l.at] == '+' || l.src[l.at] == '-') {
				l.at++
			}
			if l.at < len(l.src) && isDigit(l.src[l.at]) {
				isFloat = true
				for l.at < len(l.src) && isDigit(l.src[l.at]) {
					l.at++
				}
			} else {
				l.at = save
			}
		}
		kind := TokInt
		if isFloat {
			kind = TokFloat
		}
		return Token{Kind: kind, Text: l.src[start:l.at], Pos: pos}, nil
	case c == '\'':
		l.at++
		var b strings.Builder
		for l.at < len(l.src) {
			if l.src[l.at] == '\'' {
				if l.at+1 < len(l.src) && l.src[l.at+1] == '\'' {
					b.WriteByte('\'')
					l.at += 2
					continue
				}
				l.at++
				return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
			}
			b.WriteByte(l.src[l.at])
			l.at++
		}
		return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", pos)
	case c == '"':
		// Quoted identifier.
		l.at++
		start := l.at
		for l.at < len(l.src) && l.src[l.at] != '"' {
			l.at++
		}
		if l.at >= len(l.src) {
			return Token{}, fmt.Errorf("sql: unterminated quoted identifier at offset %d", pos)
		}
		word := l.src[start:l.at]
		l.at++
		return Token{Kind: TokIdent, Text: strings.ToLower(word), Pos: pos}, nil
	default:
		for _, op := range []string{"<=", ">=", "<>", "!=", "||"} {
			if strings.HasPrefix(l.src[l.at:], op) {
				l.at += 2
				text := op
				if op == "!=" {
					text = "<>"
				}
				return Token{Kind: TokOp, Text: text, Pos: pos}, nil
			}
		}
		switch c {
		case '+', '-', '*', '/', '%', '(', ')', ',', '.', '=', '<', '>', ';':
			l.at++
			return Token{Kind: TokOp, Text: string(c), Pos: pos}, nil
		}
		return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, pos)
	}
}

func (l *Lexer) skipSpace() {
	for l.at < len(l.src) {
		c := l.src[l.at]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.at++
		case c == '-' && l.at+1 < len(l.src) && l.src[l.at+1] == '-':
			for l.at < len(l.src) && l.src[l.at] != '\n' {
				l.at++
			}
		default:
			return
		}
	}
}

func isAlpha(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }

// Tokenize runs the lexer to completion.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
