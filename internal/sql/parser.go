package sql

import (
	"fmt"
	"strconv"
	"strings"

	"vectorwise/internal/types"
)

// Parser is a recursive-descent SQL parser.
type Parser struct {
	toks []Token
	at   int
}

// Parse parses one statement (an optional trailing semicolon is consumed).
func Parse(src string) (Stmt, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errf("trailing input after statement")
	}
	return stmt, nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(src string) ([]Stmt, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var out []Stmt
	for !p.atEOF() {
		if p.accept(";") {
			continue
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.accept(";") && !p.atEOF() {
			return nil, p.errf("expected ';' between statements")
		}
	}
	return out, nil
}

func (p *Parser) cur() Token  { return p.toks[p.at] }
func (p *Parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d, token %q)",
		fmt.Sprintf(format, args...), p.cur().Pos, p.cur().Text)
}

// accept consumes the token if it matches a keyword or operator text.
func (p *Parser) accept(text string) bool {
	t := p.cur()
	if (t.Kind == TokKeyword || t.Kind == TokOp) && t.Text == text {
		p.at++
		return true
	}
	return false
}

func (p *Parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q", text)
	}
	return nil
}

func (p *Parser) acceptIdent() (string, bool) {
	if p.cur().Kind == TokIdent {
		s := p.cur().Text
		p.at++
		return s, true
	}
	return "", false
}

func (p *Parser) expectIdent() (string, error) {
	s, ok := p.acceptIdent()
	if !ok {
		return "", p.errf("expected identifier")
	}
	return s, nil
}

// acceptName consumes an identifier with the given (lower-case) spelling.
// Used for context-sensitive words (SHOW METRICS) that must not become
// reserved keywords.
func (p *Parser) acceptName(name string) bool {
	if p.cur().Kind == TokIdent && p.cur().Text == name {
		p.at++
		return true
	}
	return false
}

// softKeywords may double as identifiers in alias positions (AS year, …).
var softKeywords = map[string]bool{
	"YEAR": true, "MONTH": true, "DAY": true, "QUARTER": true, "COUNT": true,
	"SUM": true, "MIN": true, "MAX": true, "AVG": true, "KEY": true,
	"TABLES": true, "QUERIES": true, "STRUCTURE": true, "PARALLEL": true,
	"PHYSICAL": true,
}

// expectAliasIdent is expectIdent that also tolerates soft keywords.
func (p *Parser) expectAliasIdent() (string, error) {
	if p.cur().Kind == TokKeyword && softKeywords[p.cur().Text] {
		s := strings.ToLower(p.cur().Text)
		p.at++
		return s, nil
	}
	return p.expectIdent()
}

func (p *Parser) parseStmt() (Stmt, error) {
	switch p.cur().Text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "COPY":
		return p.parseCopy()
	case "ANALYZE":
		p.at++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &AnalyzeStmt{Table: name}, nil
	case "CHECKPOINT":
		p.at++
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &CheckpointStmt{Table: name}, nil
	case "EXPLAIN", "PROFILE":
		prof := p.cur().Text == "PROFILE"
		p.at++
		phys := p.accept("PHYSICAL")
		inner, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: inner, Profile: prof, Physical: phys}, nil
	case "SHOW":
		p.at++
		switch {
		case p.accept("TABLES"):
			return &ShowStmt{What: "tables"}, nil
		case p.accept("QUERIES"):
			return &ShowStmt{What: "queries"}, nil
		case p.acceptName("metrics"):
			return &ShowStmt{What: "metrics"}, nil
		case p.acceptName("events"):
			return &ShowStmt{What: "events"}, nil
		}
		return nil, p.errf("expected TABLES, QUERIES, METRICS or EVENTS after SHOW")
	}
	return nil, p.errf("expected a statement")
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expect("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.accept("DISTINCT")
	// Select list.
	for {
		if p.accept("*") {
			s.Items = append(s.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept("AS") {
				a, err := p.expectAliasIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.cur().Kind == TokIdent {
				item.Alias, _ = p.acceptIdent()
			}
			s.Items = append(s.Items, item)
		}
		if !p.accept(",") {
			break
		}
	}
	if p.accept("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, tr)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept("GROUP") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept("DESC") {
				item.Desc = true
			} else {
				p.accept("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.accept("LIMIT") {
		n, err := p.parseIntLit()
		if err != nil {
			return nil, err
		}
		s.Limit = n
	}
	if p.accept("OFFSET") {
		n, err := p.parseIntLit()
		if err != nil {
			return nil, err
		}
		s.Offset = n
	}
	if p.accept("WITH") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		for {
			switch {
			case p.accept("PARALLEL"):
				if err := p.expect("="); err != nil {
					return nil, err
				}
				n, err := p.parseIntLit()
				if err != nil {
					return nil, err
				}
				s.Parallel = int(n)
			case p.accept("VECTORSIZE"):
				if err := p.expect("="); err != nil {
					return nil, err
				}
				n, err := p.parseIntLit()
				if err != nil {
					return nil, err
				}
				s.VectorSize = int(n)
			default:
				return nil, p.errf("unknown query option")
			}
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *Parser) parseIntLit() (int64, error) {
	t := p.cur()
	if t.Kind != TokInt {
		return 0, p.errf("expected integer literal")
	}
	p.at++
	return strconv.ParseInt(t.Text, 10, 64)
}

// parseTableRef parses a base table, derived table or JOIN chain.
func (p *Parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		kind := ""
		switch {
		case p.accept("JOIN"):
			kind = "inner"
		case p.accept("INNER"):
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = "inner"
		case p.accept("LEFT"):
			p.accept("OUTER")
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = "left"
		case p.accept("CROSS"):
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = "cross"
		case p.accept("SEMI"):
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = "semi"
		case p.accept("ANTI"):
			if err := p.expect("JOIN"); err != nil {
				return nil, err
			}
			kind = "anti"
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		j := &JoinRef{Kind: kind, Left: left, Right: right}
		if kind != "cross" {
			if err := p.expect("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		left = j
	}
}

func (p *Parser) parseTablePrimary() (TableRef, error) {
	if p.accept("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		alias := ""
		p.accept("AS")
		if a, ok := p.acceptIdent(); ok {
			alias = a
		}
		if alias == "" {
			return nil, p.errf("derived table needs an alias")
		}
		return &SubqueryTable{Query: sub, Alias: alias}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	// Qualified name (sys.metrics and friends): the catalog treats the
	// dotted form as the table's full name. Soft keywords are allowed after
	// the dot (sys.queries, sys.tables).
	if p.accept(".") {
		part, err := p.expectAliasIdent()
		if err != nil {
			return nil, err
		}
		name = name + "." + part
	}
	bt := &BaseTable{Name: name}
	if p.accept("AS") {
		a, err := p.expectAliasIdent()
		if err != nil {
			return nil, err
		}
		bt.Alias = a
	} else if p.cur().Kind == TokIdent {
		bt.Alias, _ = p.acceptIdent()
	}
	return bt, nil
}

// --- expressions (precedence climbing) ---

func (p *Parser) parseExpr() (ExprNode, error) { return p.parseOr() }

func (p *Parser) parseOr() (ExprNode, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (ExprNode, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (ExprNode, error) {
	if p.accept("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "not", E: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (ExprNode, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Postfix predicates.
	for {
		if op, ok := p.acceptCmpOp(); ok {
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: op, L: l, R: r}
			continue
		}
		switch {
		case p.accept("IS"):
			not := p.accept("NOT")
			if err := p.expect("NULL"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{E: l, Not: not}
			continue
		case p.accept("LIKE"):
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BinOp{Op: "like", L: l, R: r}
			continue
		case p.accept("BETWEEN"):
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expect("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BetweenExpr{E: l, Lo: lo, Hi: hi}
			continue
		case p.accept("IN"):
			in, err := p.parseInTail(l, false)
			if err != nil {
				return nil, err
			}
			l = in
			continue
		case p.accept("NOT"):
			switch {
			case p.accept("IN"):
				in, err := p.parseInTail(l, true)
				if err != nil {
					return nil, err
				}
				l = in
				continue
			case p.accept("LIKE"):
				r, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &UnOp{Op: "not", E: &BinOp{Op: "like", L: l, R: r}}
				continue
			case p.accept("BETWEEN"):
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if err := p.expect("AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &BetweenExpr{E: l, Lo: lo, Hi: hi, Not: true}
				continue
			default:
				return nil, p.errf("expected IN, LIKE or BETWEEN after NOT")
			}
		}
		return l, nil
	}
}

// acceptCmpOp consumes a comparison operator if present.
func (p *Parser) acceptCmpOp() (string, bool) {
	if p.cur().Kind != TokOp {
		return "", false
	}
	switch p.cur().Text {
	case "=", "<>", "<", "<=", ">", ">=":
		op := p.cur().Text
		p.at++
		return op, true
	}
	return "", false
}

func (p *Parser) parseInTail(l ExprNode, not bool) (ExprNode, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if p.cur().Text == "SELECT" {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, Sub: sub, Not: not}, nil
	}
	var list []ExprNode
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &InExpr{E: l, List: list, Not: not}, nil
}

func (p *Parser) parseAdditive() (ExprNode, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("+"):
			op = "+"
		case p.accept("-"):
			op = "-"
		case p.accept("||"):
			op = "||"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMultiplicative() (ExprNode, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept("*"):
			op = "*"
		case p.accept("/"):
			op = "/"
		case p.accept("%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (ExprNode, error) {
	if p.accept("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnOp{Op: "-", E: e}, nil
	}
	if p.accept("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (ExprNode, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.at++
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal")
		}
		if i >= -(1<<31) && i < 1<<31 {
			return &Lit{Val: types.NewInt32(int32(i))}, nil
		}
		return &Lit{Val: types.NewInt64(i)}, nil
	case TokFloat:
		p.at++
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad float literal")
		}
		return &Lit{Val: types.NewFloat64(f)}, nil
	case TokString:
		p.at++
		return &Lit{Val: types.NewString(t.Text)}, nil
	}
	switch {
	case p.accept("NULL"):
		return &Lit{Val: types.NewNull(types.KindInvalid)}, nil
	case p.accept("TRUE"):
		return &Lit{Val: types.NewBool(true)}, nil
	case p.accept("FALSE"):
		return &Lit{Val: types.NewBool(false)}, nil
	case p.accept("DATE"):
		lt := p.cur()
		if lt.Kind != TokString {
			return nil, p.errf("expected string after DATE")
		}
		p.at++
		d, err := types.ParseDate(lt.Text)
		if err != nil {
			return nil, err
		}
		return &Lit{Val: types.NewDate(d)}, nil
	case p.accept("("):
		if p.cur().Text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Sub: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.accept("CASE"):
		return p.parseCase()
	case p.accept("CAST"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("AS"); err != nil {
			return nil, err
		}
		tt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &CastExpr{E: e, To: tt}, nil
	case p.accept("EXISTS"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sub}, nil
	case p.accept("EXTRACT"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		part := p.cur().Text
		switch part {
		case "YEAR", "MONTH", "DAY", "QUARTER":
			p.at++
		default:
			return nil, p.errf("unsupported EXTRACT field")
		}
		if err := p.expect("FROM"); err != nil {
			// FROM is a keyword; expect() matches keyword text.
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &FuncCall{Name: strings.ToLower(part), Args: []ExprNode{e}}, nil
	}
	// Aggregates and generic functions share call syntax.
	if t.Kind == TokKeyword {
		switch t.Text {
		case "COUNT", "SUM", "MIN", "MAX", "AVG":
			p.at++
			if err := p.expect("("); err != nil {
				return nil, err
			}
			fc := &FuncCall{Name: strings.ToLower(t.Text)}
			if p.accept("*") {
				fc.Star = true
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = []ExprNode{e}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return fc, nil
		case "YEAR", "MONTH", "DAY", "QUARTER":
			// Function-call form YEAR(d); bare soft keyword is a column
			// reference (e.g. an output alias named "year").
			p.at++
			if !p.accept("(") {
				return &ColName{Name: strings.ToLower(t.Text)}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &FuncCall{Name: strings.ToLower(t.Text), Args: []ExprNode{e}}, nil
		}
	}
	if t.Kind == TokIdent {
		name := t.Text
		p.at++
		// Function call?
		if p.accept("(") {
			fc := &FuncCall{Name: name}
			if !p.accept(")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, e)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// Qualified column?
		if p.accept(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColName{Table: name, Name: col}, nil
		}
		return &ColName{Name: name}, nil
	}
	return nil, p.errf("expected an expression")
}

func (p *Parser) parseCase() (ExprNode, error) {
	c := &CaseExpr{}
	for p.accept("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE needs at least one WHEN")
	}
	if p.accept("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expect("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseType() (types.T, error) {
	t := p.cur()
	if t.Kind != TokKeyword {
		return types.T{}, p.errf("expected a type name")
	}
	p.at++
	var out types.T
	switch t.Text {
	case "INTEGER", "INT":
		out = types.Int32
	case "BIGINT":
		out = types.Int64
	case "DOUBLE", "FLOAT":
		out = types.Float64
	case "VARCHAR", "TEXT", "CHAR":
		out = types.String
		// Optional length, ignored.
		if p.accept("(") {
			if _, err := p.parseIntLit(); err != nil {
				return types.T{}, err
			}
			if err := p.expect(")"); err != nil {
				return types.T{}, err
			}
		}
	case "DATE":
		out = types.Date
	case "BOOLEAN", "BOOL":
		out = types.Bool
	default:
		return types.T{}, p.errf("unknown type %s", t.Text)
	}
	return out, nil
}

// --- DDL / DML ---

func (p *Parser) parseCreate() (Stmt, error) {
	if err := p.expect("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Name: name, Structure: "vectorwise"}
	for {
		cname, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ct, err := p.parseType()
		if err != nil {
			return nil, err
		}
		cd := ColDef{Name: cname, Type: ct.Null()} // nullable unless told otherwise
		for {
			switch {
			case p.accept("NOT"):
				if err := p.expect("NULL"); err != nil {
					return nil, err
				}
				cd.Type = cd.Type.NotNull()
			case p.accept("PRIMARY"):
				if err := p.expect("KEY"); err != nil {
					return nil, err
				}
				cd.PrimaryKey = true
				cd.Type = cd.Type.NotNull()
			case p.accept("NULL"):
				cd.Type = cd.Type.Null()
			default:
				goto colDone
			}
		}
	colDone:
		st.Cols = append(st.Cols, cd)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if p.accept("WITH") {
		if err := p.expect("STRUCTURE"); err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		switch {
		case p.accept("VECTORWISE"):
			st.Structure = "vectorwise"
		case p.accept("HEAP"):
			st.Structure = "heap"
		default:
			return nil, p.errf("expected VECTORWISE or HEAP")
		}
	}
	return st, nil
}

func (p *Parser) parseDrop() (Stmt, error) {
	if err := p.expect("DROP"); err != nil {
		return nil, err
	}
	if err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Name: name}, nil
}

func (p *Parser) parseInsert() (Stmt, error) {
	if err := p.expect("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expect("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.accept("VALUES") {
		for {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var row []ExprNode
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if !p.accept(",") {
				break
			}
		}
		return st, nil
	}
	if p.cur().Text == "SELECT" {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		st.Query = q
		return st, nil
	}
	return nil, p.errf("expected VALUES or SELECT")
}

func (p *Parser) parseUpdate() (Stmt, error) {
	if err := p.expect("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Col: col, Expr: e})
		if !p.accept(",") {
			break
		}
	}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseDelete() (Stmt, error) {
	if err := p.expect("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.accept("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *Parser) parseCopy() (Stmt, error) {
	if err := p.expect("COPY"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect("FROM"); err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind != TokString {
		return nil, p.errf("expected file path string")
	}
	p.at++
	st := &CopyStmt{Table: name, Path: t.Text}
	if p.accept("ORDER") {
		if err := p.expect("BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			key := CopyOrder{Col: col}
			if p.accept("DESC") {
				key.Desc = true
			} else {
				p.accept("ASC")
			}
			st.OrderBy = append(st.OrderBy, key)
			if !p.accept(",") {
				break
			}
		}
	}
	return st, nil
}
