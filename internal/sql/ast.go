package sql

import "vectorwise/internal/types"

// The SQL AST. Nodes carry no type information — typing is the binder's
// job (internal/plan).

// Stmt is any statement.
type Stmt interface{ stmt() }

// SelectStmt is a query.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // cross-join list; JOIN clauses nest inside
	Where    ExprNode
	GroupBy  []ExprNode
	Having   ExprNode
	OrderBy  []OrderItem
	Limit    int64 // -1 = none
	Offset   int64
	// Options set via WITH (...) suffix: parallelism degree, vector size.
	Parallel   int
	VectorSize int
}

func (*SelectStmt) stmt() {}

// SelectItem is one output column (Star means "*").
type SelectItem struct {
	Expr  ExprNode
	Alias string
	Star  bool
}

// TableRef is a table or join in FROM.
type TableRef interface{ tableRef() }

// BaseTable names a catalog table.
type BaseTable struct {
	Name  string
	Alias string
}

func (*BaseTable) tableRef() {}

// JoinRef is an explicit JOIN.
type JoinRef struct {
	Kind  string // "inner", "left", "cross", "semi", "anti"
	Left  TableRef
	Right TableRef
	On    ExprNode
}

func (*JoinRef) tableRef() {}

// SubqueryTable is a derived table in FROM.
type SubqueryTable struct {
	Query *SelectStmt
	Alias string
}

func (*SubqueryTable) tableRef() {}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr ExprNode
	Desc bool
}

// CreateTableStmt is DDL.
type CreateTableStmt struct {
	Name      string
	Cols      []ColDef
	Structure string // "vectorwise" (default) or "heap"
}

func (*CreateTableStmt) stmt() {}

// ColDef is one column definition.
type ColDef struct {
	Name       string
	Type       types.T
	PrimaryKey bool
}

// DropTableStmt drops a table.
type DropTableStmt struct{ Name string }

func (*DropTableStmt) stmt() {}

// InsertStmt inserts literal rows or a query result.
type InsertStmt struct {
	Table string
	Rows  [][]ExprNode // VALUES lists
	Query *SelectStmt  // INSERT ... SELECT
}

func (*InsertStmt) stmt() {}

// UpdateStmt updates rows.
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where ExprNode
}

func (*UpdateStmt) stmt() {}

// SetClause is one SET col = expr.
type SetClause struct {
	Col  string
	Expr ExprNode
}

// DeleteStmt deletes rows.
type DeleteStmt struct {
	Table string
	Where ExprNode
}

func (*DeleteStmt) stmt() {}

// CopyStmt bulk-loads a CSV file. A non-empty OrderBy requests a clustered
// load: rows are sorted by the named columns on the way into storage.
type CopyStmt struct {
	Table   string
	Path    string
	OrderBy []CopyOrder
}

// CopyOrder is one sort key of a clustered COPY.
type CopyOrder struct {
	Col  string
	Desc bool
}

func (*CopyStmt) stmt() {}

// AnalyzeStmt builds optimizer statistics.
type AnalyzeStmt struct{ Table string }

func (*AnalyzeStmt) stmt() {}

// CheckpointStmt propagates PDT deltas into stable storage.
type CheckpointStmt struct{ Table string }

func (*CheckpointStmt) stmt() {}

// ExplainStmt shows the plan (and X100 algebra) of a query. Physical
// restricts the output to the instantiated physical-plan DAG.
type ExplainStmt struct {
	Query    Stmt
	Profile  bool
	Physical bool
}

func (*ExplainStmt) stmt() {}

// ShowStmt is SHOW TABLES / SHOW QUERIES.
type ShowStmt struct{ What string }

func (*ShowStmt) stmt() {}

// ExprNode is any scalar expression in the AST.
type ExprNode interface{ exprNode() }

// Lit is a literal (types.Value, Null for NULL).
type Lit struct{ Val types.Value }

func (*Lit) exprNode() {}

// ColName references a (possibly qualified) column.
type ColName struct {
	Table string // empty = unqualified
	Name  string
}

func (*ColName) exprNode() {}

// BinOp is a binary operation ("+", "=", "and", "like", …).
type BinOp struct {
	Op   string
	L, R ExprNode
}

func (*BinOp) exprNode() {}

// UnOp is unary ("-", "not").
type UnOp struct {
	Op string
	E  ExprNode
}

func (*UnOp) exprNode() {}

// FuncCall is a named function application; Star marks COUNT(*).
type FuncCall struct {
	Name string
	Args []ExprNode
	Star bool
}

func (*FuncCall) exprNode() {}

// CaseExpr is CASE WHEN … THEN … [ELSE …] END.
type CaseExpr struct {
	Whens []WhenClause
	Else  ExprNode
}

func (*CaseExpr) exprNode() {}

// WhenClause is one WHEN/THEN pair.
type WhenClause struct {
	Cond ExprNode
	Then ExprNode
}

// CastExpr is CAST(e AS T).
type CastExpr struct {
	E  ExprNode
	To types.T
}

func (*CastExpr) exprNode() {}

// IsNullExpr is e IS [NOT] NULL.
type IsNullExpr struct {
	E   ExprNode
	Not bool
}

func (*IsNullExpr) exprNode() {}

// BetweenExpr is e [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	E, Lo, Hi ExprNode
	Not       bool
}

func (*BetweenExpr) exprNode() {}

// InExpr is e [NOT] IN (list) or e [NOT] IN (subquery).
type InExpr struct {
	E    ExprNode
	List []ExprNode
	Sub  *SelectStmt
	Not  bool
}

func (*InExpr) exprNode() {}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Sub *SelectStmt
	Not bool
}

func (*ExistsExpr) exprNode() {}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct{ Sub *SelectStmt }

func (*SubqueryExpr) exprNode() {}
