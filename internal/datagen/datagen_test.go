package datagen

import (
	"testing"

	"vectorwise/internal/types"
)

func TestLineitemsDeterministicAndValid(t *testing.T) {
	collect := func() [][]types.Value {
		var out [][]types.Value
		err := Lineitems(0.0005, 7, func(row []types.Value) error {
			cp := make([]types.Value, len(row))
			copy(cp, row)
			out = append(out, cp)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := collect()
	b := collect()
	if len(a) != int(0.0005*RowsPerSF) || len(a) == 0 {
		t.Fatalf("rows: %d", len(a))
	}
	for i := range a {
		for c := range a[i] {
			if a[i][c].String() != b[i][c].String() {
				t.Fatal("not deterministic")
			}
		}
	}
	schema := LineitemSchema()
	modes := map[string]bool{}
	for _, m := range ShipModes {
		modes[m] = true
	}
	nulls := 0
	for _, row := range a {
		if len(row) != schema.Len() {
			t.Fatal("arity")
		}
		if q := row[2].Int32(); q < 1 || q > 50 {
			t.Fatalf("quantity: %d", q)
		}
		if d := row[4].Float64(); d < 0 || d > 0.10 {
			t.Fatalf("discount: %v", d)
		}
		if !modes[row[9].Str] {
			t.Fatalf("shipmode: %q", row[9].Str)
		}
		if row[10].Null {
			nulls++
		}
	}
	if nulls == 0 {
		t.Fatal("expected some NULL comments")
	}
}

func TestOrdersAndCustomers(t *testing.T) {
	var orders, custs int
	seenKey := map[int64]bool{}
	err := Orders(0.001, 7, func(row []types.Value) error {
		orders++
		k := row[0].Int64()
		if seenKey[k] {
			t.Fatal("duplicate orderkey")
		}
		seenKey[k] = true
		return nil
	})
	if err != nil || orders == 0 {
		t.Fatalf("orders: %d %v", orders, err)
	}
	err = Customers(0.001, 7, func(row []types.Value) error {
		custs++
		if row[1].Str == "" {
			t.Fatal("empty name")
		}
		return nil
	})
	if err != nil || custs == 0 {
		t.Fatalf("customers: %d %v", custs, err)
	}
}
