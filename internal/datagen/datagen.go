// Package datagen generates deterministic TPC-H-like data: the lineitem /
// orders / customer triple the paper's workloads revolve around, with the
// same column kinds, skew and cardinality knobs (documented substitution
// for TPC-H dbgen; see DESIGN.md).
package datagen

import (
	"fmt"
	"math/rand"

	"vectorwise/internal/types"
)

// RowsPerSF is the lineitem row count at scale factor 1 (TPC-H uses ~6M;
// the simulator keeps the same proportionality).
const RowsPerSF = 6_000_000

// ShipModes are the seven TPC-H ship modes (a classic PDICT column).
var ShipModes = []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}

// ReturnFlags and LineStatuses drive the Q1-style grouping (≤6 groups).
var (
	ReturnFlags  = []string{"A", "N", "R"}
	LineStatuses = []string{"F", "O"}
)

// LineitemSchema returns the lineitem logical schema. l_comment is NULLable
// to exercise the NULL-decomposition machinery on wide scans.
func LineitemSchema() *types.Schema {
	return types.NewSchema(
		types.Col("l_orderkey", types.Int64),
		types.Col("l_partkey", types.Int64),
		types.Col("l_quantity", types.Int32),
		types.Col("l_extendedprice", types.Float64),
		types.Col("l_discount", types.Float64),
		types.Col("l_tax", types.Float64),
		types.Col("l_returnflag", types.String),
		types.Col("l_linestatus", types.String),
		types.Col("l_shipdate", types.Date),
		types.Col("l_shipmode", types.String),
		types.Col("l_comment", types.String.Null()),
	)
}

// LineitemDDL is the CREATE TABLE for lineitem.
const LineitemDDL = `CREATE TABLE lineitem (
	l_orderkey BIGINT NOT NULL,
	l_partkey BIGINT NOT NULL,
	l_quantity INTEGER NOT NULL,
	l_extendedprice DOUBLE NOT NULL,
	l_discount DOUBLE NOT NULL,
	l_tax DOUBLE NOT NULL,
	l_returnflag VARCHAR NOT NULL,
	l_linestatus VARCHAR NOT NULL,
	l_shipdate DATE NOT NULL,
	l_shipmode VARCHAR NOT NULL,
	l_comment VARCHAR)`

// OrdersDDL is the CREATE TABLE for orders.
const OrdersDDL = `CREATE TABLE orders (
	o_orderkey BIGINT NOT NULL PRIMARY KEY,
	o_custkey BIGINT NOT NULL,
	o_totalprice DOUBLE NOT NULL,
	o_orderdate DATE NOT NULL,
	o_orderpriority VARCHAR NOT NULL)`

// CustomerDDL is the CREATE TABLE for customer.
const CustomerDDL = `CREATE TABLE customer (
	c_custkey BIGINT NOT NULL PRIMARY KEY,
	c_name VARCHAR NOT NULL,
	c_mktsegment VARCHAR NOT NULL,
	c_acctbal DOUBLE NOT NULL)`

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

// epoch1992 is 1992-01-01 (TPC-H date range start).
var epoch1992 = types.DateFromYMD(1992, 1, 1)

// Lineitems streams rows for the given scale factor to emit. Deterministic
// for a (sf, seed) pair.
func Lineitems(sf float64, seed int64, emit func(row []types.Value) error) error {
	n := int(sf * RowsPerSF)
	rng := rand.New(rand.NewSource(seed))
	orders := n/4 + 1
	row := make([]types.Value, 11)
	for i := 0; i < n; i++ {
		qty := rng.Intn(50) + 1
		price := float64(rng.Intn(90000)+10000) / 100 * float64(qty)
		row[0] = types.NewInt64(int64(rng.Intn(orders)) + 1)
		row[1] = types.NewInt64(int64(rng.Intn(200000)) + 1)
		row[2] = types.NewInt32(int32(qty))
		row[3] = types.NewFloat64(price)
		row[4] = types.NewFloat64(float64(rng.Intn(11)) / 100)
		row[5] = types.NewFloat64(float64(rng.Intn(9)) / 100)
		row[6] = types.NewString(ReturnFlags[rng.Intn(len(ReturnFlags))])
		row[7] = types.NewString(LineStatuses[rng.Intn(len(LineStatuses))])
		row[8] = types.NewDate(epoch1992 + int32(rng.Intn(2557))) // ~7 years
		row[9] = types.NewString(ShipModes[rng.Intn(len(ShipModes))])
		if rng.Intn(10) == 0 {
			row[10] = types.NewNull(types.KindString)
		} else {
			row[10] = types.NewString(fmt.Sprintf("comment line %d", rng.Intn(1000)))
		}
		if err := emit(row); err != nil {
			return err
		}
	}
	return nil
}

// Orders streams order rows (¼ of lineitem count, matching orderkeys).
func Orders(sf float64, seed int64, emit func(row []types.Value) error) error {
	n := int(sf*RowsPerSF)/4 + 1
	rng := rand.New(rand.NewSource(seed + 1))
	customers := n/10 + 1
	row := make([]types.Value, 5)
	for i := 0; i < n; i++ {
		row[0] = types.NewInt64(int64(i) + 1)
		row[1] = types.NewInt64(int64(rng.Intn(customers)) + 1)
		row[2] = types.NewFloat64(float64(rng.Intn(500000)) / 100)
		row[3] = types.NewDate(epoch1992 + int32(rng.Intn(2557)))
		row[4] = types.NewString(priorities[rng.Intn(len(priorities))])
		if err := emit(row); err != nil {
			return err
		}
	}
	return nil
}

// Customers streams customer rows.
func Customers(sf float64, seed int64, emit func(row []types.Value) error) error {
	n := (int(sf*RowsPerSF)/4+1)/10 + 1
	rng := rand.New(rand.NewSource(seed + 2))
	row := make([]types.Value, 4)
	for i := 0; i < n; i++ {
		row[0] = types.NewInt64(int64(i) + 1)
		row[1] = types.NewString(fmt.Sprintf("Customer#%09d", i+1))
		row[2] = types.NewString(segments[rng.Intn(len(segments))])
		row[3] = types.NewFloat64(float64(rng.Intn(1100000))/100 - 1000)
		if err := emit(row); err != nil {
			return err
		}
	}
	return nil
}
