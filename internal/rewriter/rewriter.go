// Package rewriter is the Vectorwise rewriter of Figure 1: a rule-based
// transformation layer over the X100 algebra, sitting between the cross
// compiler and the execution kernel. The paper credits it with most of the
// "filling functionality holes at a higher level" work; this implementation
// covers the passes the paper names:
//
//   - constant folding and expression simplification,
//   - function lowering — implementing SQL functions as combinations of
//     existing kernel primitives instead of new kernel code (claim C7,
//     experiment E9),
//   - NULL decomposition — rewriting every NULLable column into a value
//     column plus a BOOL indicator column so the kernel stays NULL-
//     oblivious (claim C6, experiment E7), including the anti-join NULL
//     intricacies of claim C10,
//   - the Volcano-style parallelizer — splitting pipelines across cores
//     with exchange operators (claim C9, experiment E6). Parallel scans are
//     morsel-driven: the rewriter clones a scan chain into P workers that
//     all reference one run-time work queue of row-group morsels
//     (identified by Scan.MorselID), so work distribution happens at Open,
//     not at compile — skew self-balances by work stealing, and deltas
//     arriving between compile and run only change what the queue serves.
//     Placement rules: Aggr over a scan chain becomes partial aggregates
//     exchanged (XchgUnion) into a final aggregate; Sort and TopN become
//     per-worker local sorts merged order-preservingly by XchgMerge (TopN
//     additionally re-limited); a HashJoin whose probe side is a scan chain
//     becomes a ParallelHashJoin — one shared build, P concurrent probe
//     fragments. The degree is Options.Parallel capped by GroupsHint (no
//     point running more workers than the table has row groups).
//
// (The original used the Tom pattern-matching tool [5]; hand-written
// visitors replace it here, as documented in DESIGN.md.)
package rewriter

import (
	"fmt"

	"vectorwise/internal/algebra"
	"vectorwise/internal/expr"
	"vectorwise/internal/types"
)

// Options configure the rewrite pipeline.
type Options struct {
	// Parallel is the desired degree of parallelism (≤1 = serial).
	Parallel int
	// GroupsHint tells the parallelizer how many row-group morsels the
	// scanned table's stable storage offers the given scan, so the degree
	// can be capped at the morsel count (engine supplies it; nil disables
	// the cap). Cols/ranges let the engine shrink the estimate to the
	// clustered group window a range scan will actually touch. Unlike the
	// old partition hint it must NOT reflect transient delta state —
	// run-time morsel sources handle deltas.
	GroupsHint func(table string, cols []string, ranges []algebra.ScanRange) int
	// LowerFuncs replaces kernel-native functions with equivalent
	// combinations (experiment E9's rewriter-lowered variant).
	LowerFuncs bool
	// SkipDecompose is for tests that feed pre-physical plans.
	SkipDecompose bool
}

// Result is the rewritten physical algebra plus the mapping from the
// query's logical output columns to physical (value, indicator) pairs.
type Result struct {
	Node   algebra.Node
	ColMap ColMap
	// Logical is the pre-decomposition output schema (for result headers).
	Logical *types.Schema
}

// Rewrite runs the full pipeline.
func Rewrite(n algebra.Node, opts Options) (*Result, error) {
	logical := n.Schema().Clone()
	n = foldNode(n)
	if opts.LowerFuncs {
		n = lowerFuncs(n)
	}
	var cm ColMap
	if opts.SkipDecompose {
		cm = identityMap(n.Schema())
	} else {
		var err error
		n, cm, err = decompose(n)
		if err != nil {
			return nil, err
		}
	}
	if opts.Parallel > 1 {
		pc := &parCtx{opts: opts}
		n = pc.parallelize(n)
	}
	return &Result{Node: n, ColMap: cm, Logical: logical}, nil
}

// ColMap maps logical columns to physical value/indicator columns (ind -1
// when the column can never be NULL).
type ColMap struct {
	Val []int
	Ind []int
}

func identityMap(s *types.Schema) ColMap {
	cm := ColMap{Val: make([]int, s.Len()), Ind: make([]int, s.Len())}
	for i := range s.Cols {
		cm.Val[i] = i
		cm.Ind[i] = -1
	}
	return cm
}

// --- constant folding ---

func foldNode(n algebra.Node) algebra.Node {
	ch := n.Children()
	newCh := make([]algebra.Node, len(ch))
	for i, c := range ch {
		newCh[i] = foldNode(c)
	}
	n = n.WithChildren(newCh)
	switch t := n.(type) {
	case *algebra.Select:
		return &algebra.Select{Child: t.Child, Pred: expr.FoldConstants(t.Pred)}
	case *algebra.Project:
		exprs := make([]expr.Expr, len(t.Exprs))
		for i, e := range t.Exprs {
			exprs[i] = expr.FoldConstants(e)
		}
		return &algebra.Project{Child: t.Child, Exprs: exprs, Names: t.Names}
	}
	return n
}

// --- function lowering (experiment E9) ---

// lowerFuncs rewrites selected kernel-native calls into combinations of
// other primitives: the "implement it in the rewriter" route the paper
// describes for quickly filling function gaps.
func lowerFuncs(n algebra.Node) algebra.Node {
	lower := func(e expr.Expr) expr.Expr {
		return expr.Rewrite(e, func(x expr.Expr) expr.Expr {
			c, ok := x.(*expr.Call)
			if !ok {
				return x
			}
			switch c.Fn {
			case "trim":
				// trim(s) → ltrim(rtrim(s))
				return expr.NewCall("ltrim", expr.NewCall("rtrim", c.Args[0]))
			case "between":
				// between(x, lo, hi) → x >= lo AND x <= hi
				return expr.NewCall("and",
					expr.NewCall(">=", c.Args[0], c.Args[1]),
					expr.NewCall("<=", c.Args[0], c.Args[2]))
			case "abs":
				// abs(x) → max2(x, -x)
				return expr.NewCall("max2", c.Args[0], expr.NewCall("neg", c.Args[0]))
			case "sign":
				// sign(x) → if(x > 0, 1, if(x < 0, -1, 0)), typed per input
				k := c.Args[0].Type().Kind
				one, minus, zero := litOf(k, 1), litOf(k, -1), litOf(k, 0)
				return expr.NewCall("if",
					gtZero(c.Args[0], k), one,
					expr.NewCall("if", ltZero(c.Args[0], k), minus, zero))
			}
			return x
		})
	}
	ch := n.Children()
	newCh := make([]algebra.Node, len(ch))
	for i, c := range ch {
		newCh[i] = lowerFuncs(c)
	}
	n = n.WithChildren(newCh)
	switch t := n.(type) {
	case *algebra.Select:
		return &algebra.Select{Child: t.Child, Pred: lower(t.Pred)}
	case *algebra.Project:
		exprs := make([]expr.Expr, len(t.Exprs))
		for i, e := range t.Exprs {
			exprs[i] = lower(e)
		}
		return &algebra.Project{Child: t.Child, Exprs: exprs, Names: t.Names}
	}
	return n
}

func litOf(k types.Kind, v int64) expr.Expr {
	switch k {
	case types.KindInt32:
		return expr.CInt32(int32(v))
	case types.KindFloat64:
		return expr.CFloat(float64(v))
	default:
		return expr.CInt(v)
	}
}

func gtZero(e expr.Expr, k types.Kind) expr.Expr {
	return expr.NewCall(">", e, litOf(k, 0))
}

func ltZero(e expr.Expr, k types.Kind) expr.Expr {
	return expr.NewCall("<", e, litOf(k, 0))
}

// --- parallelizer (claim C9) ---

// parCtx carries parallelizer state: the options plus a counter handing out
// morsel-queue IDs, one per parallelized scan chain (the P worker clones of
// one chain share an ID; distinct chains get distinct queues).
type parCtx struct {
	opts   Options
	nextID int
}

// degree picks the worker count for a scan: Options.Parallel capped by the
// row-group morsel count the scan can actually touch.
func (pc *parCtx) degree(scan *algebra.Scan) int {
	p := pc.opts.Parallel
	if pc.opts.GroupsHint != nil {
		if g := pc.opts.GroupsHint(scan.Table, scan.Cols, scan.Ranges); g >= 0 && g < p {
			p = g
		}
	}
	return p
}

// morselChains clones a scan chain into p morsel workers sharing one queue.
func (pc *parCtx) morselChains(chain algebra.Node, p int) []algebra.Node {
	id := pc.nextID
	pc.nextID++
	out := make([]algebra.Node, p)
	for w := 0; w < p; w++ {
		out[w] = cloneChainMorsel(chain, w, p, id)
	}
	return out
}

// chainDegree returns the scan chain's parallel degree, or 0 when the chain
// must stay serial (no scan, already morselized, degree cap ≤ 1).
func (pc *parCtx) chainDegree(chain algebra.Node) int {
	scan := scanOfChain(chain)
	if scan == nil || scan.Morsels > 0 {
		return 0
	}
	if p := pc.degree(scan); p > 1 {
		return p
	}
	return 0
}

// parallelize applies the Xchg placement rules bottom-up:
//
//	Aggr(chain(Scan))  ⇒  FinalAggr(XchgUnion(PartialAggr(chain(Scan_w))…))
//	Sort(chain(Scan))  ⇒  XchgMerge(Sort(chain(Scan_w))…)
//	TopN(chain(Scan))  ⇒  Limit(N, XchgMerge(TopN(chain(Scan_w))…))
//	HashJoin(chain(Scan), build) ⇒ ParallelHashJoin(build; chain(Scan_w)…)
//
// where the Scan_w are morsel-worker clones sharing one run-time queue.
func (pc *parCtx) parallelize(n algebra.Node) algebra.Node {
	ch := n.Children()
	newCh := make([]algebra.Node, len(ch))
	for i, c := range ch {
		newCh[i] = pc.parallelize(c)
	}
	n = n.WithChildren(newCh)
	switch t := n.(type) {
	case *algebra.Aggr:
		return pc.parallelizeAggr(t)
	case *algebra.Sort:
		p := pc.chainDegree(t.Child)
		if p == 0 {
			return n
		}
		kids := make([]algebra.Node, p)
		for w, c := range pc.morselChains(t.Child, p) {
			kids[w] = &algebra.Sort{Child: c, Keys: t.Keys}
		}
		return &algebra.XchgMerge{Kids: kids, Keys: t.Keys}
	case *algebra.TopN:
		p := pc.chainDegree(t.Child)
		if p == 0 {
			return n
		}
		kids := make([]algebra.Node, p)
		for w, c := range pc.morselChains(t.Child, p) {
			kids[w] = &algebra.TopN{Child: c, Keys: t.Keys, N: t.N}
		}
		// Each worker keeps its local top N; the merge is globally sorted,
		// so a final Limit restores the exact top N.
		return &algebra.Limit{Child: &algebra.XchgMerge{Kids: kids, Keys: t.Keys}, N: t.N}
	case *algebra.HashJoin:
		p := pc.chainDegree(t.Left)
		if p == 0 {
			return n
		}
		return &algebra.ParallelHashJoin{
			Build:        t.Right,
			Probes:       pc.morselChains(t.Left, p),
			Kind:         t.Kind,
			LeftKeys:     t.LeftKeys,
			RightKeys:    t.RightKeys,
			LeftKeyNull:  t.LeftKeyNull,
			RightKeyNull: t.RightKeyNull,
			WithMatch:    t.WithMatch,
		}
	}
	return n
}

// parallelizeAggr splits Aggr-over-scan-chain pipelines into P partial
// pipelines over morsel workers, exchanged into a final aggregate.
func (pc *parCtx) parallelizeAggr(agg *algebra.Aggr) algebra.Node {
	var n algebra.Node = agg
	p := pc.chainDegree(agg.Child)
	if p == 0 {
		return n
	}
	// Partial aggregates per worker. AVG splits into SUM+COUNT.
	type finalSpec struct {
		fn  string
		col int // partial output column
	}
	var partialAggs []algebra.AggItem
	var finals []finalSpec
	avgSum := map[int]int{} // agg idx → partial col of its sum
	avgCnt := map[int]int{} // agg idx → partial col of its count
	base := len(agg.GroupCols)
	for i, a := range agg.Aggs {
		switch a.Fn {
		case "count":
			finals = append(finals, finalSpec{fn: "sum", col: base + len(partialAggs)})
			partialAggs = append(partialAggs, a)
		case "sum", "min", "max":
			finals = append(finals, finalSpec{fn: a.Fn, col: base + len(partialAggs)})
			partialAggs = append(partialAggs, a)
		case "avg":
			avgSum[i] = base + len(partialAggs)
			partialAggs = append(partialAggs, algebra.AggItem{Fn: "sum", Col: a.Col})
			avgCnt[i] = base + len(partialAggs)
			partialAggs = append(partialAggs, algebra.AggItem{Fn: "count", Col: -1})
			finals = append(finals, finalSpec{fn: "avg", col: -1}) // placeholder
		default:
			return n // unknown aggregate: stay serial
		}
	}
	// An ungrouped aggregate emits one row even over an empty input (SQL
	// semantics), so a partition whose rows are all filtered away yields a
	// zero-valued partial whose MIN/MAX would poison the final combination.
	// Add a count(*) sentinel and drop empty partials before combining.
	// (Grouped partials simply emit no row for an empty partition.)
	sentinel := -1
	if base == 0 {
		for i, a := range partialAggs {
			if a.Fn == "count" && a.Col == -1 {
				sentinel = base + i // reuse an existing count(*) partial
				break
			}
		}
		if sentinel < 0 {
			sentinel = base + len(partialAggs)
			partialAggs = append(partialAggs, algebra.AggItem{Fn: "count", Col: -1})
		}
	}
	names := make([]string, base+len(partialAggs))
	for i := range names {
		names[i] = fmt.Sprintf("$p%d", i)
	}
	kids := make([]algebra.Node, p)
	for w, chain := range pc.morselChains(agg.Child, p) {
		kids[w] = &algebra.Aggr{Child: chain, GroupCols: agg.GroupCols,
			Aggs: partialAggs, Names: names}
	}
	var merged algebra.Node = &algebra.XchgUnion{Kids: kids}
	if sentinel >= 0 {
		merged = &algebra.Select{Child: merged,
			Pred: expr.NewCall(">", expr.Col(sentinel, "", types.Int64), expr.CInt(0))}
	}
	// Final aggregate regroups by the partial group outputs.
	finalGroups := make([]int, base)
	for i := range finalGroups {
		finalGroups[i] = i
	}
	var finalAggs []algebra.AggItem
	finalOutOfAgg := make([]int, len(agg.Aggs)) // agg idx → final agg output idx
	for i, a := range agg.Aggs {
		if a.Fn == "avg" {
			finalAggs = append(finalAggs, algebra.AggItem{Fn: "sum", Col: avgSum[i]})
			finalOutOfAgg[i] = len(finalAggs) - 1
			finalAggs = append(finalAggs, algebra.AggItem{Fn: "sum", Col: avgCnt[i]})
			continue
		}
		fs := finals[i] // finals is parallel to agg.Aggs
		finalAggs = append(finalAggs, algebra.AggItem{Fn: fs.fn, Col: fs.col})
		finalOutOfAgg[i] = len(finalAggs) - 1
	}
	fnames := make([]string, base+len(finalAggs))
	for i := range fnames {
		fnames[i] = fmt.Sprintf("$f%d", i)
	}
	final := &algebra.Aggr{Child: merged, GroupCols: finalGroups, Aggs: finalAggs, Names: fnames}
	// Post-projection: restore output order and compute AVG = sum/cnt.
	fs := final.Schema()
	var exprs []expr.Expr
	var onames []string
	for i := range agg.GroupCols {
		exprs = append(exprs, expr.Col(i, fs.Cols[i].Name, fs.Cols[i].Type))
		onames = append(onames, agg.Names[i])
	}
	for i, a := range agg.Aggs {
		if a.Fn == "avg" {
			sumIdx := base + finalOutOfAgg[i]
			cntIdx := sumIdx + 1
			sumE := expr.Promote(expr.Col(sumIdx, "", fs.Cols[sumIdx].Type.NotNull()), types.KindFloat64)
			cntE := expr.Promote(expr.Col(cntIdx, "", fs.Cols[cntIdx].Type.NotNull()), types.KindFloat64)
			div := expr.NewCall("if",
				expr.NewCall(">", cntE, expr.CFloat(0)),
				expr.NewCall("/", sumE, expr.NewCall("max2", cntE, expr.CFloat(1))),
				expr.CFloat(0))
			exprs = append(exprs, div)
		} else {
			idx := base + finalOutOfAgg[i]
			// COUNT partials sum to BIGINT; keep kinds aligned with the
			// serial plan (count stays BIGINT, min/max/sum keep kind).
			exprs = append(exprs, expr.Col(idx, "", fs.Cols[idx].Type))
		}
		onames = append(onames, agg.Names[base+i])
	}
	return &algebra.Project{Child: final, Exprs: exprs, Names: onames}
}

// scanOfChain returns the single Scan at the bottom of a Select/Project
// chain, or nil.
func scanOfChain(n algebra.Node) *algebra.Scan {
	switch t := n.(type) {
	case *algebra.Scan:
		if t.Structure != "vectorwise" {
			return nil
		}
		return t
	case *algebra.Select:
		return scanOfChain(t.Child)
	case *algebra.Project:
		return scanOfChain(t.Child)
	}
	return nil
}

// cloneChainMorsel copies a chain, stamping the scan as morsel worker w of
// a P-worker group sharing queue id.
func cloneChainMorsel(n algebra.Node, w, p, id int) algebra.Node {
	switch t := n.(type) {
	case *algebra.Scan:
		cp := *t
		cp.Worker = w
		cp.Morsels = p
		cp.MorselID = id
		return &cp
	case *algebra.Select:
		return &algebra.Select{Child: cloneChainMorsel(t.Child, w, p, id), Pred: t.Pred}
	case *algebra.Project:
		return &algebra.Project{Child: cloneChainMorsel(t.Child, w, p, id),
			Exprs: t.Exprs, Names: t.Names}
	}
	return n
}
