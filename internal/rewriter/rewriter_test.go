package rewriter

import (
	"strings"
	"testing"

	"vectorwise/internal/algebra"
	"vectorwise/internal/expr"
	"vectorwise/internal/types"
)

func scanNode(cols ...types.Column) *algebra.Scan {
	s := types.NewSchema(cols...)
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	return &algebra.Scan{Table: "t", Structure: "vectorwise", Cols: names, Out: s}
}

func TestPhysicalSchemaConvention(t *testing.T) {
	logical := types.NewSchema(
		types.Col("a", types.Int64),
		types.Col("b", types.Float64.Null()),
		types.Col("c", types.String.Null()),
	)
	phys := PhysicalSchema(logical)
	if phys.Len() != 5 {
		t.Fatalf("phys: %s", phys)
	}
	if phys.Cols[3].Name != "b$null" || phys.Cols[4].Name != "c$null" {
		t.Fatalf("indicator names: %s", phys)
	}
	for _, c := range phys.Cols {
		if c.Type.Nullable {
			t.Fatal("physical schema must be NULL-free")
		}
	}
	cm := PhysicalColMap(logical)
	if cm.Ind[0] != -1 || cm.Ind[1] != 3 || cm.Ind[2] != 4 {
		t.Fatalf("colmap: %+v", cm)
	}
}

func TestDecomposeSelectIsNull(t *testing.T) {
	scan := scanNode(types.Col("x", types.Int64.Null()))
	sel := &algebra.Select{Child: scan, Pred: expr.NewCall("isnull",
		expr.Col(0, "x", types.Int64.Null()))}
	res, err := Rewrite(sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The physical predicate must reference only the indicator column.
	f := algebra.Format(res.Node)
	if !strings.Contains(f, "x$null") {
		t.Fatalf("no indicator in plan:\n%s", f)
	}
	// Output schema NULL-free.
	for _, c := range res.Node.Schema().Cols {
		if c.Type.Nullable {
			t.Fatal("nullable output after decomposition")
		}
	}
}

func TestDecomposeProjectIndicators(t *testing.T) {
	scan := scanNode(types.Col("a", types.Int64.Null()), types.Col("b", types.Int64))
	proj := &algebra.Project{
		Child: scan,
		Exprs: []expr.Expr{
			expr.NewCall("+", expr.Col(0, "a", types.Int64.Null()), expr.Col(1, "b", types.Int64)),
			expr.Col(1, "b", types.Int64),
		},
		Names: []string{"s", "b"},
	}
	res, err := Rewrite(proj, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cm := res.ColMap
	if cm.Ind[0] < 0 {
		t.Fatal("nullable + nullable output lost its indicator")
	}
	if cm.Ind[1] != -1 {
		t.Fatal("non-nullable column gained an indicator")
	}
}

func TestThreeValuedLogicDecomposition(t *testing.T) {
	// NULL OR TRUE must be TRUE: decompose or(a, b) and check the
	// indicator expression is not a plain OR of indicators.
	scan := scanNode(types.Col("p", types.Bool.Null()), types.Col("q", types.Bool))
	sel := &algebra.Select{Child: scan, Pred: expr.NewCall("or",
		expr.Col(0, "p", types.Bool.Null()), expr.Col(1, "q", types.Bool))}
	res, err := Rewrite(sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The plan must keep rows where q is true even when p is NULL: the
	// predicate contains q as a known-true escape.
	f := algebra.Format(res.Node)
	if !strings.Contains(f, "q") {
		t.Fatalf("decomposed OR lost operand:\n%s", f)
	}
}

func TestDecomposeAggrNullable(t *testing.T) {
	scan := scanNode(types.Col("g", types.Int64), types.Col("v", types.Float64.Null()))
	agg := &algebra.Aggr{
		Child:     scan,
		GroupCols: []int{0},
		Aggs: []algebra.AggItem{
			{Fn: "count", Col: -1},
			{Fn: "count", Col: 1},
			{Fn: "sum", Col: 1},
			{Fn: "avg", Col: 1},
			{Fn: "min", Col: 1},
		},
		Names: []string{"g", "cnt", "cntv", "sumv", "avgv", "minv"},
	}
	res, err := Rewrite(agg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cm := res.ColMap
	if cm.Ind[0] != -1 || cm.Ind[1] != -1 || cm.Ind[2] != -1 {
		t.Fatalf("count outputs must not be nullable: %+v", cm)
	}
	for _, i := range []int{3, 4, 5} {
		if cm.Ind[i] < 0 {
			t.Fatalf("nullable agg %d lost indicator: %+v", i, cm)
		}
	}
}

func TestDecomposeMinNullableStringRejected(t *testing.T) {
	scan := scanNode(types.Col("s", types.String.Null()))
	agg := &algebra.Aggr{Child: scan, GroupCols: nil,
		Aggs: []algebra.AggItem{{Fn: "min", Col: 0}}, Names: []string{"m"}}
	if _, err := Rewrite(agg, Options{}); err == nil {
		t.Fatal("min over nullable string should be rejected")
	}
}

func TestDecomposeAntiNullJoin(t *testing.T) {
	left := scanNode(types.Col("x", types.Int64))
	right := scanNode(types.Col("y", types.Int64.Null()))
	j := &algebra.HashJoin{Left: left, Right: right, Kind: algebra.AntiNullAware,
		LeftKeys: []int{0}, RightKeys: []int{0}, LeftKeyNull: -1, RightKeyNull: -1}
	res, err := Rewrite(j, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hj, ok := res.Node.(*algebra.HashJoin)
	if !ok {
		t.Fatalf("top: %T", res.Node)
	}
	if hj.RightKeyNull < 0 {
		t.Fatal("null-aware anti join lost its indicator column")
	}
}

func TestLowerFuncs(t *testing.T) {
	scan := scanNode(types.Col("s", types.String), types.Col("x", types.Int64))
	proj := &algebra.Project{
		Child: scan,
		Exprs: []expr.Expr{
			expr.NewCall("trim", expr.Col(0, "s", types.String)),
			expr.NewCall("abs", expr.Col(1, "x", types.Int64)),
		},
		Names: []string{"t", "a"},
	}
	res, err := Rewrite(proj, Options{LowerFuncs: true})
	if err != nil {
		t.Fatal(err)
	}
	f := algebra.Format(res.Node)
	if !strings.Contains(f, "ltrim(rtrim(") {
		t.Fatalf("trim not lowered:\n%s", f)
	}
	if !strings.Contains(f, "max2(") {
		t.Fatalf("abs not lowered:\n%s", f)
	}
}

func TestParallelizeAggr(t *testing.T) {
	scan := scanNode(types.Col("g", types.Int64), types.Col("v", types.Float64))
	agg := &algebra.Aggr{Child: scan, GroupCols: []int{0},
		Aggs:  []algebra.AggItem{{Fn: "count", Col: -1}, {Fn: "sum", Col: 1}, {Fn: "avg", Col: 1}},
		Names: []string{"g", "c", "s", "a"}}
	res, err := Rewrite(agg, Options{Parallel: 4, GroupsHint: func(string, []string, []algebra.ScanRange) int { return 8 }})
	if err != nil {
		t.Fatal(err)
	}
	f := algebra.Format(res.Node)
	if !strings.Contains(f, "XchgUnion(4)") {
		t.Fatalf("no exchange:\n%s", f)
	}
	if !strings.Contains(f, "morsel worker 0/4") || !strings.Contains(f, "morsel worker 3/4") {
		t.Fatalf("scan not morsel-cloned:\n%s", f)
	}
	// Output schema arity preserved.
	if res.Node.Schema().Len() != agg.Schema().Len() {
		t.Fatalf("parallel plan changed schema: %s vs %s", res.Node.Schema(), agg.Schema())
	}
}

func TestParallelizeRespectsGroupsHint(t *testing.T) {
	scan := scanNode(types.Col("v", types.Int64))
	agg := &algebra.Aggr{Child: scan, Aggs: []algebra.AggItem{{Fn: "sum", Col: 0}}, Names: []string{"s"}}
	res, err := Rewrite(agg, Options{Parallel: 8, GroupsHint: func(string, []string, []algebra.ScanRange) int { return 1 }})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(algebra.Format(res.Node), "Xchg") {
		t.Fatal("parallelized despite a groups hint of 1")
	}
}

func TestParallelizeSortAndTopN(t *testing.T) {
	mk := func() *algebra.Sort {
		scan := scanNode(types.Col("v", types.Int64))
		return &algebra.Sort{Child: scan, Keys: []algebra.SortKey{{Col: 0}}}
	}
	res, err := Rewrite(mk(), Options{Parallel: 3, GroupsHint: func(string, []string, []algebra.ScanRange) int { return 8 }})
	if err != nil {
		t.Fatal(err)
	}
	f := algebra.Format(res.Node)
	if !strings.Contains(f, "XchgMerge(3") {
		t.Fatalf("sort not exchanged into a merge:\n%s", f)
	}
	if strings.Count(f, "Sort(") != 3 {
		t.Fatalf("want 3 local sorts:\n%s", f)
	}

	scan := scanNode(types.Col("v", types.Int64))
	topn := &algebra.TopN{Child: scan, Keys: []algebra.SortKey{{Col: 0, Desc: true}}, N: 5}
	res, err = Rewrite(topn, Options{Parallel: 2, GroupsHint: func(string, []string, []algebra.ScanRange) int { return 8 }})
	if err != nil {
		t.Fatal(err)
	}
	f = algebra.Format(res.Node)
	if !strings.Contains(f, "Limit(0, 5)") || !strings.Contains(f, "XchgMerge(2") ||
		strings.Count(f, "TopN(") != 2 {
		t.Fatalf("TopN not parallelized as Limit(XchgMerge(TopN…)):\n%s", f)
	}
}

func TestParallelizeHashJoinProbe(t *testing.T) {
	probe := scanNode(types.Col("x", types.Int64))
	build := scanNode(types.Col("y", types.Int64))
	j := &algebra.HashJoin{Left: probe, Right: build, Kind: algebra.Inner,
		LeftKeys: []int{0}, RightKeys: []int{0}, LeftKeyNull: -1, RightKeyNull: -1}
	res, err := Rewrite(j, Options{Parallel: 4, GroupsHint: func(string, []string, []algebra.ScanRange) int { return 8 }})
	if err != nil {
		t.Fatal(err)
	}
	f := algebra.Format(res.Node)
	if !strings.Contains(f, "ParallelHashJoin") || !strings.Contains(f, "probes=4") {
		t.Fatalf("probe side not parallelized:\n%s", f)
	}
	if !strings.Contains(f, "morsel worker 3/4") {
		t.Fatalf("probe scans not morsel-cloned:\n%s", f)
	}
	// Build side stays a single serial scan; schema matches the serial join.
	if res.Node.Schema().Len() != j.Schema().Len() {
		t.Fatalf("parallel join changed schema: %s vs %s", res.Node.Schema(), j.Schema())
	}
}

func TestConstantFoldingPass(t *testing.T) {
	scan := scanNode(types.Col("x", types.Int64))
	sel := &algebra.Select{Child: scan, Pred: expr.NewCall(">",
		expr.Col(0, "x", types.Int64),
		expr.NewCall("+", expr.CInt(20), expr.CInt(22)))}
	res, err := Rewrite(sel, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(algebra.Format(res.Node), "42") {
		t.Fatalf("constant not folded:\n%s", algebra.Format(res.Node))
	}
}
