package rewriter

import (
	"fmt"
	"math"

	"vectorwise/internal/algebra"
	"vectorwise/internal/expr"
	"vectorwise/internal/types"
)

// NULL decomposition. Every node of the logical algebra is rewritten into a
// physical node whose columns are all non-nullable; each logical column is
// represented by a value column (holding an in-band "safe" value at NULL
// positions) and, when nullable, a BOOL indicator column. Convention: a
// node's physical layout is [values in logical order] ++ [indicators of
// nullable columns in logical order] — the same convention the engine uses
// for table storage, so scans are trivial.

// PhysicalSchema derives the storage layout for a logical table schema.
func PhysicalSchema(logical *types.Schema) *types.Schema {
	out := &types.Schema{}
	for _, c := range logical.Cols {
		out.Cols = append(out.Cols, types.Col(c.Name, c.Type.NotNull()))
	}
	for _, c := range logical.Cols {
		if c.Type.Nullable {
			out.Cols = append(out.Cols, types.Col(c.Name+"$null", types.Bool))
		}
	}
	return out
}

// PhysicalColMap maps a logical schema onto PhysicalSchema's layout.
func PhysicalColMap(logical *types.Schema) ColMap {
	cm := ColMap{Val: make([]int, logical.Len()), Ind: make([]int, logical.Len())}
	ind := logical.Len()
	for i, c := range logical.Cols {
		cm.Val[i] = i
		if c.Type.Nullable {
			cm.Ind[i] = ind
			ind++
		} else {
			cm.Ind[i] = -1
		}
	}
	return cm
}

// DecomposeRow lays a logical row out in the physical storage convention:
// values (with in-band safe values at NULL positions) followed by the
// indicators of nullable columns.
func DecomposeRow(logical *types.Schema, row []types.Value) []types.Value {
	out := make([]types.Value, 0, len(row)+4)
	for i, v := range row {
		if v.Null {
			out = append(out, types.SafeValue(logical.Cols[i].Type.Kind))
		} else {
			out = append(out, v)
		}
	}
	for i, c := range logical.Cols {
		if c.Type.Nullable {
			out = append(out, types.NewBool(row[i].Null))
		}
	}
	return out
}

// decompose rewrites n into NULL-free physical algebra.
func decompose(n algebra.Node) (algebra.Node, ColMap, error) {
	switch t := n.(type) {
	case *algebra.Scan:
		logical := t.Out
		phys := PhysicalSchema(logical)
		cols := make([]string, phys.Len())
		for i, c := range phys.Cols {
			cols[i] = c.Name
		}
		// Value columns occupy the same positions in the physical layout
		// (values first, indicators after), so scan ranges carry over
		// unchanged. NULL positions hold in-band safe values, which only
		// widen block summaries — skipping stays conservative.
		return &algebra.Scan{Table: t.Table, Structure: t.Structure, Cols: cols,
			Out: phys, Morsels: t.Morsels, MorselID: t.MorselID, Worker: t.Worker,
			Ranges: t.Ranges, Window: t.Window}, PhysicalColMap(logical), nil

	case *algebra.Values:
		logical := t.Out
		phys := PhysicalSchema(logical)
		cm := PhysicalColMap(logical)
		rows := make([][]types.Value, len(t.Rows))
		for r, row := range t.Rows {
			nr := make([]types.Value, phys.Len())
			for i, v := range row {
				if v.Null {
					nr[cm.Val[i]] = types.SafeValue(logical.Cols[i].Type.Kind)
					if cm.Ind[i] < 0 {
						return nil, ColMap{}, fmt.Errorf("rewriter: NULL in non-nullable VALUES column %d", i)
					}
				} else {
					nr[cm.Val[i]] = v
				}
				if cm.Ind[i] >= 0 {
					nr[cm.Ind[i]] = types.NewBool(v.Null)
				}
			}
			rows[r] = nr
		}
		return &algebra.Values{Rows: rows, Out: phys}, cm, nil

	case *algebra.Select:
		child, cm, err := decompose(t.Child)
		if err != nil {
			return nil, ColMap{}, err
		}
		d := &exprDecomposer{cm: cm, logical: t.Child.Schema()}
		val, ind, err := d.decomp(t.Pred)
		if err != nil {
			return nil, ColMap{}, err
		}
		// SQL filters keep rows where the predicate is TRUE (not NULL).
		pred := andE(val, notE(ind))
		return &algebra.Select{Child: child, Pred: pred}, cm, nil

	case *algebra.Project:
		child, cm, err := decompose(t.Child)
		if err != nil {
			return nil, ColMap{}, err
		}
		d := &exprDecomposer{cm: cm, logical: t.Child.Schema()}
		var exprs []expr.Expr
		var names []string
		outMap := ColMap{}
		var indExprs []expr.Expr
		var indNames []string
		for i, e := range t.Exprs {
			val, ind, err := d.decomp(e)
			if err != nil {
				return nil, ColMap{}, err
			}
			outMap.Val = append(outMap.Val, len(exprs))
			exprs = append(exprs, val)
			names = append(names, t.Names[i])
			if isFalseConst(ind) {
				outMap.Ind = append(outMap.Ind, -1)
			} else {
				outMap.Ind = append(outMap.Ind, -2-len(indExprs)) // patched below
				indExprs = append(indExprs, ind)
				indNames = append(indNames, t.Names[i]+"$null")
			}
		}
		base := len(exprs)
		for i := range outMap.Ind {
			if outMap.Ind[i] < -1 {
				outMap.Ind[i] = base + (-outMap.Ind[i] - 2)
			}
		}
		exprs = append(exprs, indExprs...)
		names = append(names, indNames...)
		return &algebra.Project{Child: child, Exprs: exprs, Names: names}, outMap, nil

	case *algebra.Aggr:
		return decomposeAggr(t)

	case *algebra.HashJoin:
		return decomposeJoin(t)

	case *algebra.Sort:
		child, cm, err := decompose(t.Child)
		if err != nil {
			return nil, ColMap{}, err
		}
		var keys []algebra.SortKey
		for _, k := range t.Keys {
			if cm.Ind[k.Col] >= 0 {
				// NULLs sort together (last): indicator is the major key.
				keys = append(keys, algebra.SortKey{Col: cm.Ind[k.Col]})
			}
			keys = append(keys, algebra.SortKey{Col: cm.Val[k.Col], Desc: k.Desc})
		}
		return &algebra.Sort{Child: child, Keys: keys}, cm, nil

	case *algebra.TopN:
		child, cm, err := decompose(t.Child)
		if err != nil {
			return nil, ColMap{}, err
		}
		var keys []algebra.SortKey
		for _, k := range t.Keys {
			if cm.Ind[k.Col] >= 0 {
				keys = append(keys, algebra.SortKey{Col: cm.Ind[k.Col]})
			}
			keys = append(keys, algebra.SortKey{Col: cm.Val[k.Col], Desc: k.Desc})
		}
		return &algebra.TopN{Child: child, Keys: keys, N: t.N}, cm, nil

	case *algebra.Limit:
		child, cm, err := decompose(t.Child)
		if err != nil {
			return nil, ColMap{}, err
		}
		return &algebra.Limit{Child: child, Offset: t.Offset, N: t.N}, cm, nil

	case *algebra.UnionAll:
		kids := make([]algebra.Node, len(t.Kids))
		var cm ColMap
		for i, k := range t.Kids {
			dk, kcm, err := decompose(k)
			if err != nil {
				return nil, ColMap{}, err
			}
			kids[i] = dk
			if i == 0 {
				cm = kcm
			}
		}
		return &algebra.UnionAll{Kids: kids}, cm, nil

	case *algebra.XchgUnion:
		kids := make([]algebra.Node, len(t.Kids))
		var cm ColMap
		for i, k := range t.Kids {
			dk, kcm, err := decompose(k)
			if err != nil {
				return nil, ColMap{}, err
			}
			kids[i] = dk
			if i == 0 {
				cm = kcm
			}
		}
		return &algebra.XchgUnion{Kids: kids}, cm, nil
	}
	return nil, ColMap{}, fmt.Errorf("rewriter: cannot decompose %T", n)
}

// --- aggregates ---

func decomposeAggr(t *algebra.Aggr) (algebra.Node, ColMap, error) {
	child, cm, err := decompose(t.Child)
	if err != nil {
		return nil, ColMap{}, err
	}
	logical := t.Child.Schema()
	childPhys := child.Schema()
	colE := func(idx int) expr.Expr {
		c := childPhys.Cols[idx]
		return expr.Col(idx, c.Name, c.Type)
	}
	// Pre-projection feeding the physical aggregate.
	var pre []expr.Expr
	var preNames []string
	add := func(e expr.Expr, name string) int {
		pre = append(pre, e)
		preNames = append(preNames, name)
		return len(pre) - 1
	}
	// Group columns: value plus indicator (NULL group keys form their own
	// group because the safe value + indicator pair is uniform).
	var groupCols []int
	outMap := ColMap{}
	groupIndPos := map[int]int{} // logical group idx → position among group outputs
	for gi, g := range t.GroupCols {
		vi := add(colE(cm.Val[g]), fmt.Sprintf("$gv%d", gi))
		groupCols = append(groupCols, vi)
		groupIndPos[gi] = len(groupCols) - 1
		outMap.Val = append(outMap.Val, len(groupCols)-1)
		if cm.Ind[g] >= 0 {
			ii := add(colE(cm.Ind[g]), fmt.Sprintf("$gi%d", gi))
			groupCols = append(groupCols, ii)
			outMap.Ind = append(outMap.Ind, len(groupCols)-1)
		} else {
			outMap.Ind = append(outMap.Ind, -1)
		}
	}
	// Aggregates.
	type aggPlan struct {
		item    algebra.AggItem
		outPos  int // position in physical agg output (set later)
		indFrom int // index of the companion non-null-count agg, or -1
		isAvg   bool
		avgSum  int
		avgCnt  int
	}
	var physAggs []algebra.AggItem
	plans := make([]aggPlan, len(t.Aggs))
	// cache of non-null-count aggs per logical column.
	nnCount := map[int]int{}
	addAgg := func(it algebra.AggItem) int {
		physAggs = append(physAggs, it)
		return len(physAggs) - 1
	}
	nonNullCountAgg := func(col int) int {
		if idx, ok := nnCount[col]; ok {
			return idx
		}
		nn := add(expr.NewCall("cast_int64", expr.NewCall("not", colE(cm.Ind[col]))), fmt.Sprintf("$nn%d", col))
		idx := addAgg(algebra.AggItem{Fn: "sum", Col: nn})
		nnCount[col] = idx
		return idx
	}
	maskedVal := func(col int, extreme types.Value) (expr.Expr, error) {
		v := colE(cm.Val[col])
		if cm.Ind[col] < 0 {
			return v, nil
		}
		return expr.TryCall("if", colE(cm.Ind[col]), &expr.Const{Val: extreme}, v)
	}
	for ai, a := range t.Aggs {
		p := &plans[ai]
		p.indFrom = -1
		nullable := a.Col >= 0 && cm.Ind[a.Col] >= 0
		kind := types.KindInvalid
		if a.Col >= 0 {
			kind = logical.Cols[a.Col].Type.Kind
		}
		switch a.Fn {
		case "count":
			if a.Col < 0 || !nullable {
				var col = -1
				if a.Col >= 0 {
					col = add(colE(cm.Val[a.Col]), fmt.Sprintf("$c%d", ai))
				}
				_ = col
				p.outPos = addAgg(algebra.AggItem{Fn: "count", Col: -1})
			} else {
				// COUNT(col) over nullable = SUM(NOT ind).
				p.outPos = nonNullCountAgg(a.Col)
			}
		case "sum":
			mv, err := maskedVal(a.Col, types.SafeValue(kind))
			if err != nil {
				return nil, ColMap{}, err
			}
			ci := add(mv, fmt.Sprintf("$s%d", ai))
			p.outPos = addAgg(algebra.AggItem{Fn: "sum", Col: ci})
			if nullable {
				p.indFrom = nonNullCountAgg(a.Col)
			}
		case "min", "max":
			var extreme types.Value
			if nullable {
				switch kind {
				case types.KindInt32:
					extreme = types.NewInt32(extremeI32(a.Fn == "min"))
				case types.KindInt64:
					extreme = types.NewInt64(extremeI64(a.Fn == "min"))
				case types.KindFloat64:
					extreme = types.NewFloat64(extremeF64(a.Fn == "min"))
				case types.KindDate:
					extreme = types.NewDate(extremeI32(a.Fn == "min"))
				default:
					return nil, ColMap{}, fmt.Errorf("rewriter: %s over nullable %v is not supported", a.Fn, kind)
				}
			}
			mv, err := maskedVal(a.Col, extreme)
			if err != nil {
				return nil, ColMap{}, err
			}
			ci := add(mv, fmt.Sprintf("$m%d", ai))
			p.outPos = addAgg(algebra.AggItem{Fn: a.Fn, Col: ci})
			if nullable {
				p.indFrom = nonNullCountAgg(a.Col)
			}
		case "avg":
			if !nullable {
				ci := add(colE(cm.Val[a.Col]), fmt.Sprintf("$a%d", ai))
				p.outPos = addAgg(algebra.AggItem{Fn: "avg", Col: ci})
			} else {
				// AVG over nullable = SUM(masked as float) / COUNT(non-null).
				mv, err := maskedVal(a.Col, types.SafeValue(kind))
				if err != nil {
					return nil, ColMap{}, err
				}
				if kind != types.KindFloat64 {
					mv = expr.Promote(mv, types.KindFloat64)
				}
				ci := add(mv, fmt.Sprintf("$a%d", ai))
				p.isAvg = true
				p.avgSum = addAgg(algebra.AggItem{Fn: "sum", Col: ci})
				p.avgCnt = nonNullCountAgg(a.Col)
				p.indFrom = p.avgCnt
			}
		default:
			return nil, ColMap{}, fmt.Errorf("rewriter: aggregate %q", a.Fn)
		}
	}
	preNode := &algebra.Project{Child: child, Exprs: pre, Names: preNames}
	aggNames := make([]string, len(groupCols)+len(physAggs))
	for i := range aggNames {
		aggNames[i] = fmt.Sprintf("$o%d", i)
	}
	aggNode := &algebra.Aggr{Child: preNode, GroupCols: rangeInts(len(groupCols)),
		Aggs: physAggs, Names: aggNames}
	aggSchema := aggNode.Schema()
	aggColE := func(idx int) expr.Expr {
		c := aggSchema.Cols[idx]
		return expr.Col(idx, c.Name, c.Type.NotNull())
	}
	// Post-projection: group outputs in logical order, then aggregate
	// values, then indicators.
	var post []expr.Expr
	var postNames []string
	finalMap := ColMap{}
	var inds []expr.Expr
	var indNames []string
	pushOut := func(val expr.Expr, ind expr.Expr, name string) {
		finalMap.Val = append(finalMap.Val, len(post))
		post = append(post, val)
		postNames = append(postNames, name)
		if ind == nil {
			finalMap.Ind = append(finalMap.Ind, -1)
		} else {
			finalMap.Ind = append(finalMap.Ind, -2-len(inds))
			inds = append(inds, ind)
			indNames = append(indNames, name+"$null")
		}
	}
	for gi := range t.GroupCols {
		vPos := outMap.Val[gi]
		var ind expr.Expr
		if outMap.Ind[gi] >= 0 {
			ind = aggColE(outMap.Ind[gi])
		}
		pushOut(aggColE(vPos), ind, t.Names[gi])
	}
	nGroupOut := len(groupCols)
	for ai := range t.Aggs {
		p := plans[ai]
		name := t.Names[len(t.GroupCols)+ai]
		var ind expr.Expr
		if p.indFrom >= 0 {
			ind = expr.NewCall("=", aggColE(nGroupOut+p.indFrom), expr.CInt(0))
		}
		if p.isAvg {
			sumE := aggColE(nGroupOut + p.avgSum)
			cntE := expr.Promote(aggColE(nGroupOut+p.avgCnt), types.KindFloat64)
			val := expr.NewCall("if",
				expr.NewCall(">", cntE, expr.CFloat(0)),
				expr.NewCall("/", sumE, expr.NewCall("max2", cntE, expr.CFloat(1))),
				expr.CFloat(0))
			pushOut(val, ind, name)
			continue
		}
		pushOut(aggColE(nGroupOut+p.outPos), ind, name)
	}
	base := len(post)
	for i := range finalMap.Ind {
		if finalMap.Ind[i] < -1 {
			finalMap.Ind[i] = base + (-finalMap.Ind[i] - 2)
		}
	}
	post = append(post, inds...)
	postNames = append(postNames, indNames...)
	return &algebra.Project{Child: aggNode, Exprs: post, Names: postNames}, finalMap, nil
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func extremeI32(isMin bool) int32 {
	if isMin {
		return math.MaxInt32
	}
	return math.MinInt32
}

func extremeI64(isMin bool) int64 {
	if isMin {
		return math.MaxInt64
	}
	return math.MinInt64
}

func extremeF64(isMin bool) float64 {
	if isMin {
		return math.Inf(1)
	}
	return math.Inf(-1)
}

// --- joins (including the C10 anti-join intricacies) ---

func decomposeJoin(t *algebra.HashJoin) (algebra.Node, ColMap, error) {
	left, lcm, err := decompose(t.Left)
	if err != nil {
		return nil, ColMap{}, err
	}
	right, rcm, err := decompose(t.Right)
	if err != nil {
		return nil, ColMap{}, err
	}
	nlLogical := t.Left.Schema().Len()
	// Physical key columns.
	lk := make([]int, len(t.LeftKeys))
	rk := make([]int, len(t.RightKeys))
	lNullable := false

	var lIndCols, rIndCols []int
	for i := range t.LeftKeys {
		lk[i] = lcm.Val[t.LeftKeys[i]]
		rk[i] = rcm.Val[t.RightKeys[i]]
		if li := lcm.Ind[t.LeftKeys[i]]; li >= 0 {
			lNullable = true
			lIndCols = append(lIndCols, li)
		} else {
			lIndCols = append(lIndCols, -1)
		}
		if ri := rcm.Ind[t.RightKeys[i]]; ri >= 0 {

			rIndCols = append(rIndCols, ri)
		} else {
			rIndCols = append(rIndCols, -1)
		}
	}
	switch t.Kind {
	case algebra.Inner, algebra.Semi:
		// NULL keys never match: filter both sides.
		left = filterNotNullKeys(left, lIndCols)
		right = filterNotNullKeys(right, rIndCols)
	case algebra.LeftOuter, algebra.Anti:
		// Probe rows must survive; only the build side is filtered. To keep
		// safe values from falsely matching, nullable probe keys gain the
		// indicator as an extra key column against constant FALSE on the
		// build side.
		right = filterNotNullKeys(right, rIndCols)
		if lNullable {
			var extraRight []int
			right, extraRight = appendFalseCols(right, countNonNeg(lIndCols))
			ei := 0
			for i, li := range lIndCols {
				_ = i
				if li < 0 {
					continue
				}
				lk = append(lk, li)
				rk = append(rk, extraRight[ei])
				ei++
			}
		}
	case algebra.AntiNullAware:
		if len(t.LeftKeys) != 1 {
			return nil, ColMap{}, fmt.Errorf("rewriter: multi-key NOT IN is not supported")
		}
	}
	hj := &algebra.HashJoin{Left: left, Right: right, Kind: t.Kind,
		LeftKeys: lk, RightKeys: rk, LeftKeyNull: -1, RightKeyNull: -1}
	if t.Kind == algebra.AntiNullAware {
		hj.LeftKeyNull = lIndCols[0]  // may be -1 (non-nullable side)
		hj.RightKeyNull = rIndCols[0] // may be -1
	}
	switch t.Kind {
	case algebra.Semi, algebra.Anti, algebra.AntiNullAware:
		return hj, lcm, nil
	case algebra.Inner:
		cm := ColMap{}
		nlPhys := left.Schema().Len()
		cm.Val = append(cm.Val, lcm.Val...)
		cm.Ind = append(cm.Ind, lcm.Ind...)
		for _, v := range rcm.Val {
			cm.Val = append(cm.Val, nlPhys+v)
		}
		for _, v := range rcm.Ind {
			if v < 0 {
				cm.Ind = append(cm.Ind, -1)
			} else {
				cm.Ind = append(cm.Ind, nlPhys+v)
			}
		}
		return hj, cm, nil
	case algebra.LeftOuter:
		hj.WithMatch = true
		js := hj.Schema()
		matchIdx := js.Len() - 1
		jcolE := func(idx int) expr.Expr {
			c := js.Cols[idx]
			return expr.Col(idx, c.Name, c.Type.NotNull())
		}
		notMatch := expr.NewCall("not", jcolE(matchIdx))
		var exprs []expr.Expr
		var names []string
		cm := ColMap{}
		var inds []expr.Expr
		var indNames []string
		nlPhys := left.Schema().Len()
		// Left columns pass through.
		for i := range lcm.Val {
			cm.Val = append(cm.Val, len(exprs))
			exprs = append(exprs, jcolE(lcm.Val[i]))
			names = append(names, fmt.Sprintf("l%d", i))
			if lcm.Ind[i] >= 0 {
				cm.Ind = append(cm.Ind, -2-len(inds))
				inds = append(inds, jcolE(lcm.Ind[i]))
				indNames = append(indNames, fmt.Sprintf("l%d$null", i))
			} else {
				cm.Ind = append(cm.Ind, -1)
			}
		}
		// Right columns: indicator = own indicator OR NOT matched.
		for j := range rcm.Val {
			cm.Val = append(cm.Val, len(exprs))
			exprs = append(exprs, jcolE(nlPhys+rcm.Val[j]))
			names = append(names, fmt.Sprintf("r%d", j))
			var ind expr.Expr = notMatch
			if rcm.Ind[j] >= 0 {
				ind = expr.NewCall("or", jcolE(nlPhys+rcm.Ind[j]), notMatch)
			}
			cm.Ind = append(cm.Ind, -2-len(inds))
			inds = append(inds, ind)
			indNames = append(indNames, fmt.Sprintf("r%d$null", j))
		}
		base := len(exprs)
		for i := range cm.Ind {
			if cm.Ind[i] < -1 {
				cm.Ind[i] = base + (-cm.Ind[i] - 2)
			}
		}
		exprs = append(exprs, inds...)
		names = append(names, indNames...)
		_ = nlLogical
		return &algebra.Project{Child: hj, Exprs: exprs, Names: names}, cm, nil
	}
	return nil, ColMap{}, fmt.Errorf("rewriter: join kind %v", t.Kind)
}

func countNonNeg(xs []int) int {
	n := 0
	for _, x := range xs {
		if x >= 0 {
			n++
		}
	}
	return n
}

// filterNotNullKeys adds Select(NOT ind…) for each nullable key indicator.
func filterNotNullKeys(n algebra.Node, indCols []int) algebra.Node {
	s := n.Schema()
	for _, ic := range indCols {
		if ic < 0 {
			continue
		}
		pred := expr.NewCall("not", expr.Col(ic, s.Cols[ic].Name, types.Bool))
		n = &algebra.Select{Child: n, Pred: pred}
	}
	return n
}

// appendFalseCols projects n extra constant-FALSE columns, returning their
// indexes.
func appendFalseCols(n algebra.Node, count int) (algebra.Node, []int) {
	s := n.Schema()
	var exprs []expr.Expr
	var names []string
	for i, c := range s.Cols {
		exprs = append(exprs, expr.Col(i, c.Name, c.Type))
		names = append(names, c.Name)
	}
	var idxs []int
	for k := 0; k < count; k++ {
		idxs = append(idxs, len(exprs))
		exprs = append(exprs, expr.CBool(false))
		names = append(names, fmt.Sprintf("$false%d", k))
	}
	return &algebra.Project{Child: n, Exprs: exprs, Names: names}, idxs
}

// --- expression decomposition ---

type exprDecomposer struct {
	cm      ColMap
	logical *types.Schema
}

// decomp returns (value, indicator) physical expressions for a logical
// expression. The indicator is the constant false for never-NULL results.
func (d *exprDecomposer) decomp(e expr.Expr) (expr.Expr, expr.Expr, error) {
	switch t := e.(type) {
	case *expr.Const:
		if t.Val.Null {
			return &expr.Const{Val: types.SafeValue(t.Val.Kind)}, expr.CBool(true), nil
		}
		return t, expr.CBool(false), nil
	case *expr.ColRef:
		val := expr.Col(d.cm.Val[t.Idx], t.Name, t.T.NotNull())
		if d.cm.Ind[t.Idx] < 0 {
			return val, expr.CBool(false), nil
		}
		return val, expr.Col(d.cm.Ind[t.Idx], t.Name+"$null", types.Bool), nil
	case *expr.Call:
		return d.decompCall(t)
	}
	return nil, nil, fmt.Errorf("rewriter: cannot decompose expression %T", e)
}

func (d *exprDecomposer) decompCall(c *expr.Call) (expr.Expr, expr.Expr, error) {
	switch c.Fn {
	case "isnull":
		_, ind, err := d.decomp(c.Args[0])
		if err != nil {
			return nil, nil, err
		}
		return ind, expr.CBool(false), nil
	case "isnotnull":
		_, ind, err := d.decomp(c.Args[0])
		if err != nil {
			return nil, nil, err
		}
		return notE(ind), expr.CBool(false), nil
	case "ifnull", "coalesce":
		av, ai, err := d.decomp(c.Args[0])
		if err != nil {
			return nil, nil, err
		}
		bv, bi, err := d.decomp(c.Args[1])
		if err != nil {
			return nil, nil, err
		}
		if isFalseConst(ai) {
			return av, ai, nil
		}
		val, err := expr.TryCall("if", ai, bv, av)
		if err != nil {
			return nil, nil, err
		}
		return val, andE(ai, bi), nil
	case "nullif":
		av, ai, err := d.decomp(c.Args[0])
		if err != nil {
			return nil, nil, err
		}
		bv, bi, err := d.decomp(c.Args[1])
		if err != nil {
			return nil, nil, err
		}
		eq, err := expr.TryCall("=", av, bv)
		if err != nil {
			return nil, nil, err
		}
		eq3 := andE(eq, andE(notE(ai), notE(bi)))
		return av, orE(ai, eq3), nil
	case "and":
		av, ai, err := d.decomp(c.Args[0])
		if err != nil {
			return nil, nil, err
		}
		bv, bi, err := d.decomp(c.Args[1])
		if err != nil {
			return nil, nil, err
		}
		if isFalseConst(ai) && isFalseConst(bi) {
			return andE(av, bv), expr.CBool(false), nil
		}
		// Known-false dominates NULL: result NULL iff some side unknown
		// and no side is known false.
		aKnownFalse := andE(notE(av), notE(ai))
		bKnownFalse := andE(notE(bv), notE(bi))
		val := andE(av, bv)
		ind := andE(orE(ai, bi), notE(orE(aKnownFalse, bKnownFalse)))
		return val, ind, nil
	case "or":
		av, ai, err := d.decomp(c.Args[0])
		if err != nil {
			return nil, nil, err
		}
		bv, bi, err := d.decomp(c.Args[1])
		if err != nil {
			return nil, nil, err
		}
		if isFalseConst(ai) && isFalseConst(bi) {
			return orE(av, bv), expr.CBool(false), nil
		}
		aKnownTrue := andE(av, notE(ai))
		bKnownTrue := andE(bv, notE(bi))
		val := orE(aKnownTrue, bKnownTrue)
		ind := andE(orE(ai, bi), notE(val))
		return val, ind, nil
	case "not":
		av, ai, err := d.decomp(c.Args[0])
		if err != nil {
			return nil, nil, err
		}
		return notE(av), ai, nil
	case "if":
		cv, ci, err := d.decomp(c.Args[0])
		if err != nil {
			return nil, nil, err
		}
		tv, ti, err := d.decomp(c.Args[1])
		if err != nil {
			return nil, nil, err
		}
		ev, ei, err := d.decomp(c.Args[2])
		if err != nil {
			return nil, nil, err
		}
		cond := andE(cv, notE(ci)) // NULL condition selects the else branch
		val, err := expr.TryCall("if", cond, tv, ev)
		if err != nil {
			return nil, nil, err
		}
		var ind expr.Expr
		if isFalseConst(ti) && isFalseConst(ei) {
			ind = expr.CBool(false)
		} else {
			ind, err = expr.TryCall("if", cond, ti, ei)
			if err != nil {
				return nil, nil, err
			}
		}
		return val, ind, nil
	default:
		// Strict functions: apply over values, OR the indicators.
		vals := make([]expr.Expr, len(c.Args))
		var ind expr.Expr = expr.CBool(false)
		for i, a := range c.Args {
			v, ai, err := d.decomp(a)
			if err != nil {
				return nil, nil, err
			}
			vals[i] = v
			ind = orE(ind, ai)
		}
		val, err := expr.TryCall(c.Fn, vals...)
		if err != nil {
			return nil, nil, err
		}
		return val, ind, nil
	}
}

// Boolean expression helpers with constant short-circuiting.

func isFalseConst(e expr.Expr) bool {
	c, ok := e.(*expr.Const)
	return ok && c.Val.Kind == types.KindBool && !c.Val.Null && !c.Val.Bool()
}

func isTrueConst(e expr.Expr) bool {
	c, ok := e.(*expr.Const)
	return ok && c.Val.Kind == types.KindBool && !c.Val.Null && c.Val.Bool()
}

func andE(a, b expr.Expr) expr.Expr {
	switch {
	case isTrueConst(a):
		return b
	case isTrueConst(b):
		return a
	case isFalseConst(a):
		return a
	case isFalseConst(b):
		return b
	}
	return expr.NewCall("and", a, b)
}

func orE(a, b expr.Expr) expr.Expr {
	switch {
	case isFalseConst(a):
		return b
	case isFalseConst(b):
		return a
	case isTrueConst(a):
		return a
	case isTrueConst(b):
		return b
	}
	return expr.NewCall("or", a, b)
}

func notE(a expr.Expr) expr.Expr {
	switch {
	case isFalseConst(a):
		return expr.CBool(true)
	case isTrueConst(a):
		return expr.CBool(false)
	}
	if c, ok := a.(*expr.Call); ok && c.Fn == "not" {
		return c.Args[0]
	}
	return expr.NewCall("not", a)
}
