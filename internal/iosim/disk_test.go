package iosim

import (
	"context"
	"sync"
	"testing"
	"time"
)

// A zero-latency disk still accounts reads and bytes exactly.
func TestStatsAccounting(t *testing.T) {
	d := NewDisk(0, 0)
	ctx := context.Background()
	sizes := []int{100, 4096, 0, 1 << 20}
	var wantBytes int64
	for _, sz := range sizes {
		if err := d.Read(ctx, sz); err != nil {
			t.Fatalf("read %d: %v", sz, err)
		}
		wantBytes += int64(sz)
	}
	reads, bytes, busy := d.Stats()
	if reads != int64(len(sizes)) {
		t.Fatalf("reads = %d, want %d", reads, len(sizes))
	}
	if bytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", bytes, wantBytes)
	}
	if busy != 0 {
		t.Fatalf("infinitely fast disk reported busy = %v", busy)
	}
	d.ResetStats()
	if reads, bytes, busy := d.Stats(); reads != 0 || bytes != 0 || busy != 0 {
		t.Fatalf("reset left counters: %d %d %v", reads, bytes, busy)
	}
}

// Busy time follows the latency model: seek + size/bandwidth per request,
// so read sizing (few large vs many small reads) changes the accounted
// cost the way a real device's would.
func TestLatencyModelAndReadSizing(t *testing.T) {
	const seek = 10 * time.Millisecond
	const bandwidth = 1 << 20 // 1 MiB/s → 1 µs per byte
	d := NewDisk(seek, bandwidth)
	ctx := context.Background()

	// One large read: one seek + transfer of the full payload, using the
	// same truncating per-byte cost the disk derives from the bandwidth.
	bw := float64(bandwidth)
	perByte := time.Duration(float64(time.Second) / bw)
	if err := d.Read(ctx, 1024); err != nil {
		t.Fatal(err)
	}
	_, _, busyLarge := d.Stats()
	wantLarge := seek + 1024*perByte
	if busyLarge != wantLarge {
		t.Fatalf("large-read busy = %v, want %v", busyLarge, wantLarge)
	}

	// The same payload in 4 small reads pays 4 seeks: strictly slower.
	d.ResetStats()
	for i := 0; i < 4; i++ {
		if err := d.Read(ctx, 256); err != nil {
			t.Fatal(err)
		}
	}
	reads, bytes, busySmall := d.Stats()
	if reads != 4 || bytes != 1024 {
		t.Fatalf("small reads accounted %d reads / %d bytes", reads, bytes)
	}
	if want := busyLarge + 3*seek; busySmall != want {
		t.Fatalf("small-read busy = %v, want %v", busySmall, want)
	}
}

// Reads serialize on the single arm: total busy time is the sum of the
// per-request durations even under concurrent callers, and wall time is at
// least the busy time.
func TestSerializedArm(t *testing.T) {
	const seek = 2 * time.Millisecond
	d := NewDisk(seek, 0)
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := d.Read(ctx, 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if _, _, busy := d.Stats(); busy != 5*seek {
		t.Fatalf("busy = %v, want %v", busy, 5*seek)
	}
	if elapsed < 5*seek {
		t.Fatalf("concurrent reads finished in %v, want ≥ %v (arm must serialize)", elapsed, 5*seek)
	}
}

// Cancellation interrupts a simulated transfer promptly and is visible to
// callers as the context error.
func TestReadCancellation(t *testing.T) {
	d := NewDisk(10*time.Second, 0)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- d.Read(ctx, 1) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled read did not return")
	}
	// An already-cancelled context fails fast without touching the arm.
	reads0, _, _ := d.Stats()
	if err := d.Read(ctx, 1); err != context.Canceled {
		t.Fatalf("pre-cancelled read: %v", err)
	}
	if reads, _, _ := d.Stats(); reads != reads0 {
		t.Fatal("pre-cancelled read was accounted")
	}
}
