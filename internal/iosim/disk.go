// Package iosim provides a deterministic simulated disk used underneath the
// buffer manager. The paper's Cooperative Scans result (claim C3) is about
// *scheduling* shared bandwidth, not about absolute device speed, so a
// simulated device with a fixed seek latency and transfer rate reproduces
// the experiment's shape on any machine — this is the documented
// substitution for the authors' RAID testbed (see DESIGN.md).
package iosim

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Disk models a single spinning device: one request at a time, a fixed
// positioning (seek) cost per request and a fixed transfer rate. Zero-value
// latencies make it an infinitely fast disk (useful in unit tests).
type Disk struct {
	mu sync.Mutex // serializes access: one arm

	seek     time.Duration
	perByte  time.Duration
	reads    atomic.Int64
	bytes    atomic.Int64
	busyNano atomic.Int64
}

// NewDisk builds a disk with the given seek latency and bandwidth in
// bytes/second (0 = infinite).
func NewDisk(seek time.Duration, bandwidth float64) *Disk {
	d := &Disk{seek: seek}
	if bandwidth > 0 {
		d.perByte = time.Duration(float64(time.Second) / bandwidth)
	}
	return d
}

// Read simulates reading size bytes, blocking for the simulated duration.
// It honors ctx cancellation while queued or mid-transfer (the "async I/O"
// aspect of query cancellation the paper calls out).
func (d *Disk) Read(ctx context.Context, size int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	dur := d.seek + time.Duration(size)*d.perByte
	d.reads.Add(1)
	d.bytes.Add(int64(size))
	d.busyNano.Add(int64(dur))
	if dur <= 0 {
		return nil
	}
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats reports cumulative counters.
func (d *Disk) Stats() (reads, bytes int64, busy time.Duration) {
	return d.reads.Load(), d.bytes.Load(), time.Duration(d.busyNano.Load())
}

// ResetStats zeroes the counters (between benchmark phases).
func (d *Disk) ResetStats() {
	d.reads.Store(0)
	d.bytes.Store(0)
	d.busyNano.Store(0)
}
