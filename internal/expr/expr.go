// Package expr defines typed expression trees and two evaluation strategies
// over them:
//
//   - a vectorized compiler (compile.go) that turns an expression into a
//     short program of primitive calls over vector registers — the X100
//     execution model, and
//   - a tuple-at-a-time interpreter (eval_row.go) that walks the tree per
//     row with boxed values — the "conventional engine" the paper's >10×
//     claim compares against, used by the classic row engine.
//
// Expression trees arrive here already *physical*: the binder and rewriter
// have resolved names, promoted types (inserting explicit casts) and
// decomposed NULLable columns into value/indicator pairs, so every node is
// NULL-oblivious and operates on plain vectors.
package expr

import (
	"fmt"
	"strings"

	"vectorwise/internal/types"
)

// Expr is a typed expression node.
type Expr interface {
	// Type returns the expression's result type.
	Type() types.T
	// String renders the expression for plans and error messages.
	String() string
}

// ColRef references an input column by position in the operator's input
// batch.
type ColRef struct {
	Idx  int
	Name string // for display only
	T    types.T
}

// Type implements Expr.
func (c *ColRef) Type() types.T { return c.T }

// String implements Expr.
func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal.
type Const struct {
	Val types.Value
}

// Type implements Expr.
func (c *Const) Type() types.T { return types.T{Kind: c.Val.Kind, Nullable: c.Val.Null} }

// String implements Expr.
func (c *Const) String() string {
	if c.Val.Kind == types.KindString && !c.Val.Null {
		return "'" + c.Val.Str + "'"
	}
	return c.Val.String()
}

// Call applies a named function to arguments. Names are the canonical
// kernel-function names ("+", "=", "upper", "year", "if", …); see funcs.go
// for the catalog.
type Call struct {
	Fn   string
	Args []Expr
	T    types.T
}

// Type implements Expr.
func (c *Call) Type() types.T { return c.T }

// String implements Expr.
func (c *Call) String() string {
	if isInfix(c.Fn) && len(c.Args) == 2 {
		return "(" + c.Args[0].String() + " " + c.Fn + " " + c.Args[1].String() + ")"
	}
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Fn + "(" + strings.Join(parts, ", ") + ")"
}

func isInfix(fn string) bool {
	switch fn {
	case "+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "and", "or", "||":
		return true
	}
	return false
}

// Convenience constructors used by the planner, rewriter and tests.

// Col builds a column reference.
func Col(idx int, name string, t types.T) *ColRef { return &ColRef{Idx: idx, Name: name, T: t} }

// CBool builds a boolean literal.
func CBool(b bool) *Const { return &Const{Val: types.NewBool(b)} }

// CInt32 builds an INTEGER literal.
func CInt32(i int32) *Const { return &Const{Val: types.NewInt32(i)} }

// CInt builds a BIGINT literal.
func CInt(i int64) *Const { return &Const{Val: types.NewInt64(i)} }

// CFloat builds a DOUBLE literal.
func CFloat(f float64) *Const { return &Const{Val: types.NewFloat64(f)} }

// CStr builds a VARCHAR literal.
func CStr(s string) *Const { return &Const{Val: types.NewString(s)} }

// CDate builds a DATE literal from a day number.
func CDate(d int32) *Const { return &Const{Val: types.NewDate(d)} }

// NewCall resolves the result type of fn over args and builds the node. It
// panics on signature mismatch — planner code paths validate beforehand via
// ResolveFunc, and tests want loud failures.
func NewCall(fn string, args ...Expr) *Call {
	t, err := ResolveFunc(fn, argTypes(args))
	if err != nil {
		panic(err)
	}
	return &Call{Fn: fn, Args: args, T: t}
}

// TryCall is NewCall returning the resolution error instead of panicking.
func TryCall(fn string, args ...Expr) (*Call, error) {
	t, err := ResolveFunc(fn, argTypes(args))
	if err != nil {
		return nil, err
	}
	return &Call{Fn: fn, Args: args, T: t}, nil
}

func argTypes(args []Expr) []types.T {
	out := make([]types.T, len(args))
	for i, a := range args {
		out[i] = a.Type()
	}
	return out
}

// Walk visits e and every descendant in prefix order; f returning false
// prunes the subtree.
func Walk(e Expr, f func(Expr) bool) {
	if !f(e) {
		return
	}
	if c, ok := e.(*Call); ok {
		for _, a := range c.Args {
			Walk(a, f)
		}
	}
}

// Rewrite rebuilds e bottom-up, replacing each node with f(node). Children
// are rewritten before their parent is offered to f.
func Rewrite(e Expr, f func(Expr) Expr) Expr {
	if c, ok := e.(*Call); ok {
		args := make([]Expr, len(c.Args))
		changed := false
		for i, a := range c.Args {
			args[i] = Rewrite(a, f)
			if args[i] != a {
				changed = true
			}
		}
		if changed {
			e = &Call{Fn: c.Fn, Args: args, T: c.T}
		}
	}
	return f(e)
}

// Cols returns the distinct input column indexes referenced by e, in first-
// use order.
func Cols(e Expr) []int {
	var out []int
	seen := map[int]bool{}
	Walk(e, func(n Expr) bool {
		if c, ok := n.(*ColRef); ok && !seen[c.Idx] {
			seen[c.Idx] = true
			out = append(out, c.Idx)
		}
		return true
	})
	return out
}

// ShiftCols returns a copy of e with every column index shifted by delta;
// used when splicing expressions across operator boundaries (e.g. join
// output numbering).
func ShiftCols(e Expr, delta int) Expr {
	return Rewrite(e, func(n Expr) Expr {
		if c, ok := n.(*ColRef); ok {
			return &ColRef{Idx: c.Idx + delta, Name: c.Name, T: c.T}
		}
		return n
	})
}

// RemapCols returns a copy of e with column indexes mapped through m
// (m[old] = new). Missing entries panic: the planner must provide complete
// mappings.
func RemapCols(e Expr, m map[int]int) Expr {
	return Rewrite(e, func(n Expr) Expr {
		if c, ok := n.(*ColRef); ok {
			idx, ok := m[c.Idx]
			if !ok {
				panic(fmt.Sprintf("expr: RemapCols missing mapping for column %d (%s)", c.Idx, c.Name))
			}
			return &ColRef{Idx: idx, Name: c.Name, T: c.T}
		}
		return n
	})
}

// Equal reports structural equality of two expressions (used by CSE and
// subquery re-use in the rewriter).
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case *ColRef:
		y, ok := b.(*ColRef)
		return ok && x.Idx == y.Idx
	case *Const:
		y, ok := b.(*Const)
		if !ok || x.Val.Kind != y.Val.Kind || x.Val.Null != y.Val.Null {
			return false
		}
		return x.Val.Null || types.Compare(x.Val, y.Val) == 0
	case *Call:
		y, ok := b.(*Call)
		if !ok || x.Fn != y.Fn || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}
