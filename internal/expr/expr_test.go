package expr

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"vectorwise/internal/primitives"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// makeBatch builds a test batch: col0 int64, col1 int64, col2 float64,
// col3 string, col4 date(i32), col5 bool.
func makeBatch(n int) *vec.Batch {
	kinds := []types.Kind{types.KindInt64, types.KindInt64, types.KindFloat64,
		types.KindString, types.KindDate, types.KindBool}
	b := vec.NewBatch(kinds, n)
	b.SetLen(n)
	words := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		b.Vecs[0].I64[i] = int64(i)
		b.Vecs[1].I64[i] = int64(i % 7)
		b.Vecs[2].F64[i] = float64(i) * 0.5
		b.Vecs[3].Str[i] = words[i%len(words)]
		b.Vecs[4].I32[i] = int32(18000 + i)
		b.Vecs[5].Bool[i] = i%2 == 0
	}
	return b
}

var testKinds = []types.Kind{types.KindInt64, types.KindInt64, types.KindFloat64,
	types.KindString, types.KindDate, types.KindBool}

func col(i int) *ColRef {
	t := types.T{Kind: testKinds[i]}
	return Col(i, "", t)
}

func evalBoth(t *testing.T, e Expr, b *vec.Batch) (*vec.Vector, []types.Value) {
	t.Helper()
	ev, err := Compile(e, testKinds, Mode{})
	if err != nil {
		t.Fatalf("compile %s: %v", e, err)
	}
	v, err := ev.Eval(b)
	if err != nil {
		t.Fatalf("eval %s: %v", e, err)
	}
	rows := make([]types.Value, b.Rows())
	for i := 0; i < b.Rows(); i++ {
		rv, err := EvalRow(e, b.GetRow(i))
		if err != nil {
			t.Fatalf("evalrow %s: %v", e, err)
		}
		rows[i] = rv
	}
	return v, rows
}

// assertAgree checks vectorized result equals row-interpreter result on
// every selected position.
func assertAgree(t *testing.T, e Expr, b *vec.Batch) {
	t.Helper()
	v, rows := evalBoth(t, e, b)
	for i := 0; i < b.Rows(); i++ {
		p := b.RowIndex(i)
		got := v.Get(p)
		want := rows[i]
		if got.String() != want.String() {
			t.Fatalf("%s row %d: vectorized %v, row-interp %v", e, i, got, want)
		}
	}
}

func TestArithAgreement(t *testing.T) {
	b := makeBatch(100)
	exprs := []Expr{
		NewCall("+", col(0), col(1)),
		NewCall("-", col(0), col(1)),
		NewCall("*", col(0), CInt(3)),
		NewCall("+", CInt(100), col(1)),
		NewCall("-", CInt(100), col(1)),
		NewCall("*", CInt(2), col(0)),
		NewCall("+", col(2), CFloat(1.5)),
		NewCall("*", col(2), col(2)),
		NewCall("-", col(2), col(2)),
		NewCall("/", col(2), CFloat(2)),
		NewCall("+", NewCall("*", col(0), CInt(2)), col(1)),
		NewCall("neg", col(0)),
		NewCall("abs", NewCall("-", col(1), CInt(3))),
		NewCall("sign", NewCall("-", col(1), CInt(3))),
		NewCall("min2", col(0), col(1)),
		NewCall("max2", col(0), col(1)),
	}
	for _, e := range exprs {
		assertAgree(t, e, b)
	}
}

func TestArithWithSelection(t *testing.T) {
	b := makeBatch(50)
	b.Sel = []int32{0, 7, 13, 49}
	assertAgree(t, NewCall("+", col(0), col(1)), b)
	assertAgree(t, NewCall("*", col(2), CFloat(3)), b)
}

func TestIntDivision(t *testing.T) {
	b := makeBatch(10)
	e := NewCall("/", col(0), CInt(2))
	assertAgree(t, e, b)
	// Division by zero from data: col1 has zeros (i%7==0).
	ev, err := Compile(NewCall("/", col(0), col(1)), testKinds, Mode{Checked: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Eval(b); !errors.Is(err, primitives.ErrDivByZero) {
		t.Fatalf("expected div0, got %v", err)
	}
	// Mod too.
	evm, _ := Compile(NewCall("%", col(0), col(1)), testKinds, Mode{})
	if _, err := evm.Eval(b); !errors.Is(err, primitives.ErrDivByZero) {
		t.Fatalf("expected mod0, got %v", err)
	}
}

func TestCheckedOverflow(t *testing.T) {
	kinds := []types.Kind{types.KindInt64}
	b := vec.NewBatch(kinds, 4)
	b.SetLen(4)
	b.Vecs[0].I64[0] = 1
	b.Vecs[0].I64[1] = math.MaxInt64
	e := NewCall("+", Col(0, "x", types.Int64), CInt(1))
	// Unchecked mode wraps silently.
	evU, _ := Compile(e, kinds, Mode{})
	if _, err := evU.Eval(b); err != nil {
		t.Fatalf("unchecked should not error: %v", err)
	}
	// Checked mode reports.
	evC, _ := Compile(e, kinds, Mode{Checked: true})
	if _, err := evC.Eval(b); !errors.Is(err, primitives.ErrOverflow) {
		t.Fatal("checked mode missed overflow")
	}
	// Naive mode reports identically.
	evN, _ := Compile(e, kinds, Mode{Naive: true})
	if _, err := evN.Eval(b); !errors.Is(err, primitives.ErrOverflow) {
		t.Fatal("naive mode missed overflow")
	}
}

func TestCmpAgreement(t *testing.T) {
	b := makeBatch(64)
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		assertAgree(t, NewCall(op, col(0), col(1)), b)
		assertAgree(t, NewCall(op, col(0), CInt(30)), b)
		assertAgree(t, NewCall(op, CInt(30), col(0)), b)
		assertAgree(t, NewCall(op, col(3), CStr("beta")), b)
		assertAgree(t, NewCall(op, col(2), CFloat(10)), b)
	}
	assertAgree(t, NewCall("=", col(5), CBool(true)), b)
	assertAgree(t, NewCall("<>", col(5), CBool(false)), b)
}

func TestLogicalIfBetween(t *testing.T) {
	b := makeBatch(40)
	gt := NewCall(">", col(0), CInt(10))
	lt := NewCall("<", col(0), CInt(30))
	assertAgree(t, NewCall("and", gt, lt), b)
	assertAgree(t, NewCall("or", gt, lt), b)
	assertAgree(t, NewCall("not", gt), b)
	assertAgree(t, NewCall("if", gt, col(0), col(1)), b)
	assertAgree(t, NewCall("if", gt, CStr("big"), CStr("small")), b)
	assertAgree(t, NewCall("between", col(0), CInt(5), CInt(15)), b)
	assertAgree(t, NewCall("between", col(0), col(1), CInt(15)), b)
}

func TestCasts(t *testing.T) {
	b := makeBatch(20)
	assertAgree(t, NewCall("cast_float64", col(0)), b)
	assertAgree(t, NewCall("cast_int32", col(0)), b)
	assertAgree(t, NewCall("cast_int64", col(2)), b)
	assertAgree(t, NewCall("cast_string", col(0)), b)
	assertAgree(t, NewCall("cast_string", col(4)), b)
	assertAgree(t, NewCall("cast_int64", col(5)), b)
}

func TestStringFuncs(t *testing.T) {
	b := makeBatch(20)
	assertAgree(t, NewCall("upper", col(3)), b)
	assertAgree(t, NewCall("lower", NewCall("upper", col(3))), b)
	assertAgree(t, NewCall("length", col(3)), b)
	assertAgree(t, NewCall("||", col(3), CStr("!")), b)
	assertAgree(t, NewCall("||", CStr(">"), col(3)), b)
	assertAgree(t, NewCall("||", col(3), col(3)), b)
	assertAgree(t, NewCall("substr", col(3), CInt(2), CInt(3)), b)
	assertAgree(t, NewCall("substr", col(3), col(1), CInt(2)), b)
	assertAgree(t, NewCall("replace", col(3), CStr("a"), CStr("A")), b)
	assertAgree(t, NewCall("position", col(3), CStr("et")), b)
	assertAgree(t, NewCall("lpad", col(3), CInt(8), CStr("*")), b)
	assertAgree(t, NewCall("rpad", col(3), CInt(8), CStr("*")), b)
	assertAgree(t, NewCall("like", col(3), CStr("%et%")), b)
	assertAgree(t, NewCall("starts_with", col(3), CStr("al")), b)
	assertAgree(t, NewCall("ends_with", col(3), CStr("ta")), b)
	assertAgree(t, NewCall("contains", col(3), CStr("mm")), b)
	assertAgree(t, NewCall("trim", NewCall("||", CStr("  x "), col(3))), b)
}

func TestDateFuncs(t *testing.T) {
	b := makeBatch(30)
	assertAgree(t, NewCall("year", col(4)), b)
	assertAgree(t, NewCall("month", col(4)), b)
	assertAgree(t, NewCall("day", col(4)), b)
	assertAgree(t, NewCall("quarter", col(4)), b)
	assertAgree(t, NewCall("dayofweek", col(4)), b)
	assertAgree(t, NewCall("date_add", col(4), CInt(30)), b)
	assertAgree(t, NewCall("date_add", col(4), col(1)), b)
	assertAgree(t, NewCall("add_months", col(4), CInt(3)), b)
	assertAgree(t, NewCall("date_diff", col(4), CDate(18000)), b)
	assertAgree(t, NewCall("+", col(4), CInt(5)), b)
	assertAgree(t, NewCall("-", col(4), CInt(5)), b)
	assertAgree(t, NewCall("-", col(4), CDate(18000)), b)
}

func TestMathFuncs(t *testing.T) {
	b := makeBatch(20)
	absF := NewCall("abs", col(2))
	assertAgree(t, NewCall("sqrt", absF), b)
	assertAgree(t, NewCall("floor", col(2)), b)
	assertAgree(t, NewCall("ceil", col(2)), b)
	assertAgree(t, NewCall("round", col(2), CInt(0)), b)
	assertAgree(t, NewCall("power", col(2), CFloat(2)), b)
	assertAgree(t, NewCall("power", col(2), col(2)), b)
	assertAgree(t, NewCall("exp", NewCall("*", col(2), CFloat(0.01))), b)
}

func TestFilterBasics(t *testing.T) {
	b := makeBatch(100)
	f, err := CompileFilter(NewCall(">", col(0), CInt(89)), testKinds, Mode{})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := f.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 10 || sel[0] != 90 {
		t.Fatalf("sel: %v", sel)
	}
}

func TestFilterMatchesInterpreter(t *testing.T) {
	b := makeBatch(200)
	preds := []Expr{
		NewCall("=", col(1), CInt(3)),
		NewCall("and", NewCall(">", col(0), CInt(20)), NewCall("<", col(0), CInt(60))),
		NewCall("or", NewCall("<", col(0), CInt(5)), NewCall(">", col(0), CInt(190))),
		NewCall("not", NewCall("=", col(1), CInt(0))),
		NewCall("between", col(0), CInt(17), CInt(23)),
		NewCall("like", col(3), CStr("%a")),
		NewCall("and",
			NewCall("or", NewCall("=", col(3), CStr("beta")), NewCall("=", col(1), CInt(2))),
			NewCall(">=", col(2), CFloat(10))),
		NewCall("=", col(5), CBool(true)),
		NewCall(">", NewCall("+", col(0), col(1)), CInt(50)),
		NewCall("between", col(0), col(1), CInt(10)),
	}
	for _, p := range preds {
		f, err := CompileFilter(p, testKinds, Mode{})
		if err != nil {
			t.Fatalf("compile filter %s: %v", p, err)
		}
		sel, err := f.Apply(b)
		if err != nil {
			t.Fatalf("apply %s: %v", p, err)
		}
		want := map[int32]bool{}
		for i := 0; i < b.Rows(); i++ {
			v, err := EvalRow(p, b.GetRow(i))
			if err != nil {
				t.Fatal(err)
			}
			if !v.Null && v.Bool() {
				want[int32(b.RowIndex(i))] = true
			}
		}
		if len(sel) != len(want) {
			t.Fatalf("%s: got %d rows want %d", p, len(sel), len(want))
		}
		for _, i := range sel {
			if !want[i] {
				t.Fatalf("%s: unexpected row %d", p, i)
			}
		}
	}
}

func TestFilterUnderSelection(t *testing.T) {
	b := makeBatch(100)
	b.Sel = []int32{0, 10, 20, 30, 40, 50}
	f, _ := CompileFilter(NewCall(">", col(0), CInt(25)), testKinds, Mode{})
	sel, err := f.Apply(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 || sel[0] != 30 || sel[2] != 50 {
		t.Fatalf("sel: %v", sel)
	}
}

func TestFoldConstants(t *testing.T) {
	e := NewCall("+", CInt(2), NewCall("*", CInt(3), CInt(4)))
	folded := FoldConstants(e)
	c, ok := folded.(*Const)
	if !ok || c.Val.Int64() != 14 {
		t.Fatalf("folded: %v", folded)
	}
	// Non-const parts survive.
	e2 := NewCall("+", col(0), NewCall("*", CInt(3), CInt(4)))
	folded2 := FoldConstants(e2).(*Call)
	if _, ok := folded2.Args[1].(*Const); !ok {
		t.Fatalf("partial fold failed: %v", folded2)
	}
	// Runtime errors are not folded.
	e3 := NewCall("/", CInt(1), CInt(0))
	if _, ok := FoldConstants(e3).(*Const); ok {
		t.Fatal("div0 must not fold")
	}
}

func TestExprUtilities(t *testing.T) {
	e := NewCall("+", col(0), NewCall("*", col(2), CFloat(2)))
	cols := Cols(e)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 {
		t.Fatalf("cols: %v", cols)
	}
	shifted := ShiftCols(e, 3)
	if got := Cols(shifted); got[0] != 3 || got[1] != 5 {
		t.Fatalf("shift: %v", got)
	}
	remapped := RemapCols(e, map[int]int{0: 9, 2: 1})
	if got := Cols(remapped); got[0] != 9 || got[1] != 1 {
		t.Fatalf("remap: %v", got)
	}
	if !Equal(e, NewCall("+", col(0), NewCall("*", col(2), CFloat(2)))) {
		t.Fatal("Equal false negative")
	}
	if Equal(e, NewCall("+", col(0), col(2))) {
		t.Fatal("Equal false positive")
	}
	if e.String() != "($0 + ($2 * 2))" {
		t.Fatalf("string: %s", e.String())
	}
}

func TestResolveFuncErrors(t *testing.T) {
	if _, err := ResolveFunc("nosuch", nil); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := ResolveFunc("+", []types.T{types.String, types.Int64}); err == nil {
		t.Fatal("string + int accepted")
	}
	if _, err := ResolveFunc("upper", []types.T{types.Int64}); err == nil {
		t.Fatal("upper(int) accepted")
	}
	// Nullability propagates.
	tt, err := ResolveFunc("+", []types.T{types.Int64.Null(), types.Int64})
	if err != nil || !tt.Nullable {
		t.Fatalf("nullable propagation: %v %v", tt, err)
	}
	tt, err = ResolveFunc("isnull", []types.T{types.Int64.Null()})
	if err != nil || tt.Nullable {
		t.Fatalf("isnull must not be nullable: %v", tt)
	}
}

func TestPromote(t *testing.T) {
	e := Promote(col(0), types.KindFloat64)
	if e.Type().Kind != types.KindFloat64 {
		t.Fatal("promote to float")
	}
	same := Promote(col(0), types.KindInt64)
	if same != col(0) && same.Type().Kind != types.KindInt64 {
		t.Fatal("promote to same kind should be identity")
	}
}

func TestNullLiteralRejectedByKernel(t *testing.T) {
	e := &Call{Fn: "+", Args: []Expr{col(0), &Const{Val: types.NewNull(types.KindInt64)}}, T: types.Int64.Null()}
	if _, err := Compile(e, testKinds, Mode{}); err == nil {
		t.Fatal("kernel must reject NULL literals")
	}
}

func TestNullFuncsRejectedByKernel(t *testing.T) {
	e := &Call{Fn: "isnull", Args: []Expr{col(0)}, T: types.Bool}
	if _, err := Compile(e, testKinds, Mode{}); err == nil {
		t.Fatal("kernel must reject isnull")
	}
}

func TestRowNullPropagation(t *testing.T) {
	nullInt := types.NewNull(types.KindInt64)
	row := []types.Value{nullInt, types.NewInt64(5)}
	a := Col(0, "a", types.Int64.Null())
	b := Col(1, "b", types.Int64)
	v, err := EvalRow(NewCall("+", a, b), row)
	if err != nil || !v.Null {
		t.Fatalf("null + x: %v %v", v, err)
	}
	v, _ = EvalRow(NewCall("isnull", a), row)
	if !v.Bool() {
		t.Fatal("isnull(null) = false")
	}
	v, _ = EvalRow(NewCall("coalesce", a, b), row)
	if v.Null || v.Int64() != 5 {
		t.Fatalf("coalesce: %v", v)
	}
	// Three-valued logic: NULL AND false = false, NULL OR true = true.
	nb := Col(0, "a", types.Bool.Null())
	rowB := []types.Value{types.NewNull(types.KindBool)}
	v, _ = EvalRow(NewCall("and", nb, CBool(false)), rowB)
	if v.Null || v.Bool() {
		t.Fatalf("NULL AND false: %v", v)
	}
	v, _ = EvalRow(NewCall("or", nb, CBool(true)), rowB)
	if v.Null || !v.Bool() {
		t.Fatalf("NULL OR true: %v", v)
	}
	v, _ = EvalRow(NewCall("and", nb, CBool(true)), rowB)
	if !v.Null {
		t.Fatalf("NULL AND true: %v", v)
	}
	v, _ = EvalRow(NewCall("nullif", b, CInt(5)), []types.Value{nullInt, types.NewInt64(5)})
	if !v.Null {
		t.Fatalf("nullif equal: %v", v)
	}
}

// Property: for random int vectors, the compiled (a*2+b) agrees with the
// row interpreter everywhere.
func TestVectorizedRowAgreementProperty(t *testing.T) {
	kinds := []types.Kind{types.KindInt64, types.KindInt64}
	e := NewCall("+", NewCall("*", Col(0, "a", types.Int64), CInt(2)), Col(1, "b", types.Int64))
	ev, err := Compile(e, kinds, Mode{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(av, bv []int32) bool {
		n := min(len(av), len(bv))
		if n == 0 {
			return true
		}
		b := vec.NewBatch(kinds, n)
		b.SetLen(n)
		for i := 0; i < n; i++ {
			b.Vecs[0].I64[i] = int64(av[i])
			b.Vecs[1].I64[i] = int64(bv[i])
		}
		v, err := ev.Eval(b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			want, _ := EvalRow(e, b.GetRow(i))
			if v.I64[i] != want.I64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
