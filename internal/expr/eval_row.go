package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"vectorwise/internal/primitives"
	"vectorwise/internal/types"
)

// EvalRow interprets an expression for a single row of boxed values: the
// tuple-at-a-time model of the "classic" engine. Every call re-dispatches on
// node and value kinds — exactly the interpretation overhead the vectorized
// kernel amortizes, which is what experiment E1 measures.
//
// Unlike the kernel path, the row interpreter is NULL-aware: SQL
// three-valued logic is implemented here directly, since the classic engine
// does not decompose NULLable columns.
func EvalRow(e Expr, row []types.Value) (types.Value, error) {
	switch n := e.(type) {
	case *Const:
		return n.Val, nil
	case *ColRef:
		if n.Idx < 0 || n.Idx >= len(row) {
			return types.Value{}, fmt.Errorf("expr: row column %d out of range", n.Idx)
		}
		return row[n.Idx], nil
	case *Call:
		return evalRowCall(n, row)
	}
	return types.Value{}, fmt.Errorf("expr: cannot interpret node %T", e)
}

func evalRowCall(c *Call, row []types.Value) (types.Value, error) {
	// Special forms with non-strict argument evaluation.
	switch c.Fn {
	case "and":
		return evalAnd(c, row)
	case "or":
		return evalOr(c, row)
	case "if":
		cond, err := EvalRow(c.Args[0], row)
		if err != nil {
			return types.Value{}, err
		}
		if !cond.Null && cond.Bool() {
			return EvalRow(c.Args[1], row)
		}
		return EvalRow(c.Args[2], row)
	case "coalesce", "ifnull":
		a, err := EvalRow(c.Args[0], row)
		if err != nil {
			return types.Value{}, err
		}
		if !a.Null {
			return a, nil
		}
		return EvalRow(c.Args[1], row)
	case "isnull":
		a, err := EvalRow(c.Args[0], row)
		if err != nil {
			return types.Value{}, err
		}
		return types.NewBool(a.Null), nil
	case "isnotnull":
		a, err := EvalRow(c.Args[0], row)
		if err != nil {
			return types.Value{}, err
		}
		return types.NewBool(!a.Null), nil
	}
	// Strict functions: evaluate arguments, propagate NULL.
	args := make([]types.Value, len(c.Args))
	for i, a := range c.Args {
		v, err := EvalRow(a, row)
		if err != nil {
			return types.Value{}, err
		}
		args[i] = v
	}
	for _, a := range args {
		if a.Null {
			return types.NewNull(c.T.Kind), nil
		}
	}
	return applyRowFunc(c.Fn, c.T, args)
}

func evalAnd(c *Call, row []types.Value) (types.Value, error) {
	a, err := EvalRow(c.Args[0], row)
	if err != nil {
		return types.Value{}, err
	}
	if !a.Null && !a.Bool() {
		return types.NewBool(false), nil
	}
	b, err := EvalRow(c.Args[1], row)
	if err != nil {
		return types.Value{}, err
	}
	switch {
	case !b.Null && !b.Bool():
		return types.NewBool(false), nil
	case a.Null || b.Null:
		return types.NewNull(types.KindBool), nil
	default:
		return types.NewBool(true), nil
	}
}

func evalOr(c *Call, row []types.Value) (types.Value, error) {
	a, err := EvalRow(c.Args[0], row)
	if err != nil {
		return types.Value{}, err
	}
	if !a.Null && a.Bool() {
		return types.NewBool(true), nil
	}
	b, err := EvalRow(c.Args[1], row)
	if err != nil {
		return types.Value{}, err
	}
	switch {
	case !b.Null && b.Bool():
		return types.NewBool(true), nil
	case a.Null || b.Null:
		return types.NewNull(types.KindBool), nil
	default:
		return types.NewBool(false), nil
	}
}

func applyRowFunc(fn string, t types.T, args []types.Value) (types.Value, error) {
	switch fn {
	case "+", "-", "*", "/", "%", "mod":
		return rowArith(fn, t.Kind, args[0], args[1])
	case "=", "<>", "<", "<=", ">", ">=":
		return rowCmp(fn, args[0], args[1]), nil
	case "not":
		return types.NewBool(!args[0].Bool()), nil
	case "between":
		x, lo, hi := args[0], args[1], args[2]
		return types.NewBool(types.Compare(x, lo) >= 0 && types.Compare(x, hi) <= 0), nil
	case "neg":
		return rowArith("-", t.Kind, types.Value{Kind: t.Kind}, args[0])
	case "abs":
		v := args[0]
		if v.Kind == types.KindFloat64 {
			return types.NewFloat64(math.Abs(v.F64)), nil
		}
		if v.I64 < 0 {
			v.I64 = -v.I64
		}
		return v, nil
	case "sign":
		v := args[0]
		var s int64
		switch {
		case v.AsFloat() > 0:
			s = 1
		case v.AsFloat() < 0:
			s = -1
		}
		out := types.Value{Kind: t.Kind}
		if t.Kind == types.KindFloat64 {
			out.F64 = float64(s)
		} else {
			out.I64 = s
		}
		return out, nil
	case "cast_int32":
		return types.NewInt32(int32(args[0].AsInt())), nil
	case "cast_int64":
		return types.NewInt64(args[0].AsInt()), nil
	case "cast_float64":
		return types.NewFloat64(args[0].AsFloat()), nil
	case "cast_string":
		return types.NewString(args[0].String()), nil
	case "upper":
		return types.NewString(strings.ToUpper(args[0].Str)), nil
	case "lower":
		return types.NewString(strings.ToLower(args[0].Str)), nil
	case "trim":
		return types.NewString(strings.TrimSpace(args[0].Str)), nil
	case "ltrim":
		return types.NewString(strings.TrimLeft(args[0].Str, " ")), nil
	case "rtrim":
		return types.NewString(strings.TrimRight(args[0].Str, " ")), nil
	case "length":
		return types.NewInt64(int64(len(args[0].Str))), nil
	case "||", "concat":
		return types.NewString(args[0].Str + args[1].Str), nil
	case "substr":
		return types.NewString(rowSubstr(args[0].Str, args[1].AsInt(), args[2].AsInt())), nil
	case "replace":
		return types.NewString(strings.ReplaceAll(args[0].Str, args[1].Str, args[2].Str)), nil
	case "position":
		return types.NewInt64(int64(strings.Index(args[0].Str, args[1].Str)) + 1), nil
	case "lpad", "rpad":
		return types.NewString(rowPad(args[0].Str, int(args[1].AsInt()), args[2].Str, fn == "lpad")), nil
	case "like":
		m := primitives.CompileLike(args[1].Str)
		return types.NewBool(m.Match(args[0].Str)), nil
	case "starts_with":
		return types.NewBool(strings.HasPrefix(args[0].Str, args[1].Str)), nil
	case "ends_with":
		return types.NewBool(strings.HasSuffix(args[0].Str, args[1].Str)), nil
	case "contains":
		return types.NewBool(strings.Contains(args[0].Str, args[1].Str)), nil
	case "year":
		return types.NewInt32(types.DateYear(args[0].Int32())), nil
	case "month":
		return types.NewInt32(types.DateMonth(args[0].Int32())), nil
	case "day":
		return types.NewInt32(types.DateDay(args[0].Int32())), nil
	case "quarter":
		return types.NewInt32(types.DateQuarter(args[0].Int32())), nil
	case "dayofweek":
		return types.NewInt32(types.DateDayOfWeek(args[0].Int32())), nil
	case "date_add":
		return types.NewDate(args[0].Int32() + int32(args[1].AsInt())), nil
	case "add_months":
		return types.NewDate(types.DateAddMonths(args[0].Int32(), int32(args[1].AsInt()))), nil
	case "date_diff":
		return types.NewInt64(int64(args[0].Int32()) - int64(args[1].Int32())), nil
	case "sqrt":
		return types.NewFloat64(math.Sqrt(args[0].F64)), nil
	case "floor":
		return types.NewFloat64(math.Floor(args[0].F64)), nil
	case "ceil":
		return types.NewFloat64(math.Ceil(args[0].F64)), nil
	case "ln":
		return types.NewFloat64(math.Log(args[0].F64)), nil
	case "exp":
		return types.NewFloat64(math.Exp(args[0].F64)), nil
	case "round":
		scale := math.Pow(10, float64(args[1].AsInt()))
		return types.NewFloat64(math.Round(args[0].F64*scale) / scale), nil
	case "power":
		return types.NewFloat64(math.Pow(args[0].F64, args[1].F64)), nil
	case "min2":
		if types.Compare(args[0], args[1]) <= 0 {
			return args[0], nil
		}
		return args[1], nil
	case "max2":
		if types.Compare(args[0], args[1]) >= 0 {
			return args[0], nil
		}
		return args[1], nil
	case "nullif":
		if types.Compare(args[0], args[1]) == 0 {
			return types.NewNull(args[0].Kind), nil
		}
		return args[0], nil
	}
	return types.Value{}, fmt.Errorf("expr: no row implementation of %q", fn)
}

func rowArith(fn string, kind types.Kind, a, b types.Value) (types.Value, error) {
	// DATE arithmetic.
	if a.Kind == types.KindDate {
		switch {
		case fn == "-" && b.Kind == types.KindDate:
			return types.NewInt64(a.I64 - b.I64), nil
		case fn == "+":
			return types.NewDate(int32(a.I64 + b.AsInt())), nil
		case fn == "-":
			return types.NewDate(int32(a.I64 - b.AsInt())), nil
		}
	}
	if kind == types.KindFloat64 {
		x, y := a.AsFloat(), b.AsFloat()
		switch fn {
		case "+":
			return types.NewFloat64(x + y), nil
		case "-":
			return types.NewFloat64(x - y), nil
		case "*":
			return types.NewFloat64(x * y), nil
		case "/":
			if y == 0 {
				return types.Value{}, primitives.ErrDivByZero
			}
			return types.NewFloat64(x / y), nil
		}
		return types.Value{}, fmt.Errorf("expr: float %q", fn)
	}
	x, y := a.AsInt(), b.AsInt()
	var r int64
	switch fn {
	case "+":
		r = x + y
		if (x^r)&(y^r) < 0 {
			return types.Value{}, primitives.ErrOverflow
		}
	case "-":
		r = x - y
		if (x^y)&(x^r) < 0 {
			return types.Value{}, primitives.ErrOverflow
		}
	case "*":
		r = x * y
		if x != 0 && (r/x != y || (x == -1 && y == math.MinInt64)) {
			return types.Value{}, primitives.ErrOverflow
		}
	case "/":
		if y == 0 {
			return types.Value{}, primitives.ErrDivByZero
		}
		r = x / y
	case "%", "mod":
		if y == 0 {
			return types.Value{}, primitives.ErrDivByZero
		}
		r = x % y
	default:
		return types.Value{}, fmt.Errorf("expr: int %q", fn)
	}
	if kind == types.KindInt32 {
		if r != int64(int32(r)) {
			return types.Value{}, primitives.ErrOverflow
		}
		return types.NewInt32(int32(r)), nil
	}
	return types.NewInt64(r), nil
}

func rowCmp(fn string, a, b types.Value) types.Value {
	c := types.Compare(a, b)
	var r bool
	switch fn {
	case "=":
		r = c == 0
	case "<>":
		r = c != 0
	case "<":
		r = c < 0
	case "<=":
		r = c <= 0
	case ">":
		r = c > 0
	case ">=":
		r = c >= 0
	}
	return types.NewBool(r)
}

func rowSubstr(s string, start, length int64) string {
	if length < 0 {
		length = 0
	}
	from := start - 1
	if from < 0 {
		length += from
		from = 0
		if length < 0 {
			length = 0
		}
	}
	if from >= int64(len(s)) {
		return ""
	}
	to := from + length
	if to > int64(len(s)) {
		to = int64(len(s))
	}
	return s[from:to]
}

func rowPad(s string, width int, pad string, left bool) string {
	if width <= len(s) {
		return s[:width]
	}
	if pad == "" {
		return s
	}
	var b strings.Builder
	need := width - len(s)
	for b.Len() < need {
		rem := need - b.Len()
		if rem >= len(pad) {
			b.WriteString(pad)
		} else {
			b.WriteString(pad[:rem])
		}
	}
	if left {
		return b.String() + s
	}
	return s + b.String()
}

// FoldConstants rewrites e bottom-up, replacing calls whose arguments are
// all literals with their value; part of the rewriter's simplification pass
// but shared here because it reuses the row interpreter.
func FoldConstants(e Expr) Expr {
	return Rewrite(e, func(n Expr) Expr {
		c, ok := n.(*Call)
		if !ok {
			return n
		}
		for _, a := range c.Args {
			if _, ok := a.(*Const); !ok {
				return n
			}
		}
		v, err := EvalRow(c, nil)
		if err != nil {
			return n // leave runtime errors (overflow, div0) to execution
		}
		return &Const{Val: v}
	})
}

// ParseNumberAs parses s into kind k; helper shared by loaders. Unlike
// types.ParseValue it tolerates float syntax for integer kinds (truncating),
// matching lenient COPY semantics.
func ParseNumberAs(k types.Kind, s string) (types.Value, error) {
	v, err := types.ParseValue(k, s)
	if err == nil {
		return v, nil
	}
	if k.Integral() {
		f, ferr := strconv.ParseFloat(s, 64)
		if ferr == nil {
			if k == types.KindInt32 {
				return types.NewInt32(int32(f)), nil
			}
			return types.NewInt64(int64(f)), nil
		}
	}
	return types.Value{}, err
}
