package expr

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"vectorwise/internal/primitives"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

func pow(a, b float64) float64 { return math.Pow(a, b) }

// vbuild.go binds a Call node to a concrete instruction: the switch from
// (function, argument kinds, argument shapes) to the right primitive. This
// is the Go analogue of X100's primitive-selection table.

// Slicers fetch the typed payload of a register's vector.
func sBool(v *vec.Vector) []bool   { return v.Bool }
func sI32(v *vec.Vector) []int32   { return v.I32 }
func sI64(v *vec.Vector) []int64   { return v.I64 }
func sF64(v *vec.Vector) []float64 { return v.F64 }
func sStr(v *vec.Vector) []string  { return v.Str }

// Constant converters.
func cI32(v types.Value) int32   { return int32(v.I64) }
func cI64(v types.Value) int64   { return v.I64 }
func cF64(v types.Value) float64 { return v.AsFloat() }
func cStr(v types.Value) string  { return v.Str }

func buildCall(fn string, args []argSlot, dst int, dstKind types.Kind, mode Mode, c *compiler) (instr, error) {
	switch fn {
	case "+", "-", "*", "/", "%", "mod":
		return buildArith(fn, args, dst, dstKind, mode, c)
	case "=", "<>", "<", "<=", ">", ">=":
		return buildCmp(fn, args, dst, c)
	case "and", "or", "not":
		return buildLogical(fn, args, dst, c)
	case "if":
		return buildIf(args, dst, dstKind, c)
	case "between":
		return buildBetween(args, dst, c)
	case "cast_int32", "cast_int64", "cast_float64", "cast_string":
		return buildCast(fn, args, dst, c)
	case "neg", "abs", "sign":
		return buildUnaryNum(fn, args, dst, dstKind)
	case "upper", "lower", "trim", "ltrim", "rtrim", "length",
		"||", "concat", "substr", "replace", "position", "lpad", "rpad",
		"like", "starts_with", "ends_with", "contains":
		return buildString(fn, args, dst, c)
	case "year", "month", "day", "quarter", "dayofweek",
		"date_add", "add_months", "date_diff":
		return buildDate(fn, args, dst, c)
	case "sqrt", "floor", "ceil", "ln", "exp", "round", "power":
		return buildMath(fn, args, dst, c)
	case "min2", "max2":
		return buildMinMax2(fn, args, dst, dstKind, c)
	case "isnull", "isnotnull", "coalesce", "ifnull", "nullif":
		return nil, fmt.Errorf("expr: %s must be lowered by the rewriter before kernel compilation", fn)
	}
	return nil, fmt.Errorf("expr: no vectorized implementation of %q", fn)
}

// --- arithmetic ---

func buildArith(fn string, args []argSlot, dst int, dstKind types.Kind, mode Mode, c *compiler) (instr, error) {
	a, b := args[0], args[1]
	if a.isConst() && b.isConst() {
		// Constant folding is the rewriter's job, but stay safe when an
		// unfolded expression reaches the compiler (tests, ad-hoc plans).
		a = c.materialize(a)
	}
	// DATE arithmetic routes to the date builders.
	if a.kind == types.KindDate {
		switch {
		case fn == "-" && b.kind == types.KindDate:
			return buildDate("date_diff", args, dst, c)
		case fn == "+":
			return buildDate("date_add", args, dst, c)
		case fn == "-":
			nb, err := negSlot(b, c)
			if err != nil {
				return nil, err
			}
			return buildDate("date_add", []argSlot{a, nb}, dst, c)
		}
	}
	switch dstKind {
	case types.KindInt32:
		return intArith(fn, a, b, dst, mode, c, sI32, cI32, primitives.CheckedMulVVI32)
	case types.KindInt64:
		return intArith(fn, a, b, dst, mode, c, sI64, cI64, primitives.CheckedMulVVI64)
	case types.KindFloat64:
		return floatArith(fn, a, b, dst, mode, c)
	}
	return nil, fmt.Errorf("expr: arithmetic on %v", dstKind)
}

// negSlot negates an integral operand (constant folding or a NegV step).
func negSlot(s argSlot, c *compiler) (argSlot, error) {
	if s.isConst() {
		v := s.val
		v.I64 = -v.I64
		return argSlot{reg: -1, val: v, kind: s.kind}, nil
	}
	r := c.allocReg(s.kind)
	src := s.reg
	var ins instr
	switch s.kind {
	case types.KindInt32:
		ins = func(ctx *evalCtx) error {
			d, a := ctx.regs[r].I32, ctx.regs[src].I32
			if ctx.sel == nil {
				primitives.NegV(d[:ctx.n], a, nil)
			} else {
				primitives.NegV(d, a, ctx.sel)
			}
			return nil
		}
	case types.KindInt64:
		ins = func(ctx *evalCtx) error {
			d, a := ctx.regs[r].I64, ctx.regs[src].I64
			if ctx.sel == nil {
				primitives.NegV(d[:ctx.n], a, nil)
			} else {
				primitives.NegV(d, a, ctx.sel)
			}
			return nil
		}
	default:
		return argSlot{}, fmt.Errorf("expr: cannot negate %v", s.kind)
	}
	c.prog = append(c.prog, ins)
	return argSlot{reg: r, kind: s.kind}, nil
}

func intArith[T primitives.Integer](
	fn string, a, b argSlot, dst int, mode Mode, c *compiler,
	sl func(*vec.Vector) []T, cv func(types.Value) T,
	mulChecked func(dst, a, b []T, sel []int32) error,
) (instr, error) {
	// Promote operand kinds: the binder guarantees both sides already match
	// the destination kind via casts, so slots here share T.
	checked := mode.Checked || mode.Naive
	// Division and modulo are *always* checked: unchecked integer division
	// by zero would fault the whole process.
	if fn == "/" || fn == "%" || fn == "mod" {
		av := c.materialize(a)
		bv := c.materialize(b)
		ra, rb := av.reg, bv.reg
		naive := mode.Naive
		isMod := fn != "/"
		return func(ctx *evalCtx) error {
			d, x, y := sl(ctx.regs[dst]), sl(ctx.regs[ra]), sl(ctx.regs[rb])
			sel, n := ctx.sel, ctx.n
			if sel == nil {
				d = d[:n]
			}
			if isMod {
				return primitives.CheckedModVV(d, x, y, sel)
			}
			if naive {
				return primitives.NaiveCheckedDivVV(d, x, y, sel)
			}
			return primitives.CheckedDivVV(d, x, y, sel)
		}, nil
	}
	if checked {
		av := c.materialize(a)
		bv := c.materialize(b)
		ra, rb := av.reg, bv.reg
		naive := mode.Naive
		switch fn {
		case "+":
			return func(ctx *evalCtx) error {
				d, x, y := sl(ctx.regs[dst]), sl(ctx.regs[ra]), sl(ctx.regs[rb])
				sel, n := ctx.sel, ctx.n
				if sel == nil {
					d = d[:n]
				}
				if naive {
					return primitives.NaiveCheckedAddVV(d, x, y, sel, primitives.NaiveAddOverflowCheck[T])
				}
				return primitives.CheckedAddVV(d, x, y, sel)
			}, nil
		case "-":
			return func(ctx *evalCtx) error {
				d, x, y := sl(ctx.regs[dst]), sl(ctx.regs[ra]), sl(ctx.regs[rb])
				sel, n := ctx.sel, ctx.n
				if sel == nil {
					d = d[:n]
				}
				return primitives.CheckedSubVV(d, x, y, sel)
			}, nil
		case "*":
			return func(ctx *evalCtx) error {
				d, x, y := sl(ctx.regs[dst]), sl(ctx.regs[ra]), sl(ctx.regs[rb])
				sel, n := ctx.sel, ctx.n
				if sel == nil {
					d = d[:n]
				}
				return mulChecked(d, x, y, sel)
			}, nil
		}
	}
	// Unchecked fast paths with VC/CV shapes.
	switch {
	case fn == "+" && a.isConst():
		a, b = b, a // commute
		fallthrough
	case fn == "+" && b.isConst():
		ra, k := a.reg, cv(b.val)
		return func(ctx *evalCtx) error {
			d, x := sl(ctx.regs[dst]), sl(ctx.regs[ra])
			if ctx.sel == nil {
				primitives.AddVC(d[:ctx.n], x, k, nil)
			} else {
				primitives.AddVC(d, x, k, ctx.sel)
			}
			return nil
		}, nil
	case fn == "+":
		ra, rb := a.reg, b.reg
		return func(ctx *evalCtx) error {
			d, x, y := sl(ctx.regs[dst]), sl(ctx.regs[ra]), sl(ctx.regs[rb])
			if ctx.sel == nil {
				primitives.AddVV(d[:ctx.n], x, y, nil)
			} else {
				primitives.AddVV(d, x, y, ctx.sel)
			}
			return nil
		}, nil
	case fn == "-" && b.isConst():
		ra, k := a.reg, cv(b.val)
		return func(ctx *evalCtx) error {
			d, x := sl(ctx.regs[dst]), sl(ctx.regs[ra])
			if ctx.sel == nil {
				primitives.SubVC(d[:ctx.n], x, k, nil)
			} else {
				primitives.SubVC(d, x, k, ctx.sel)
			}
			return nil
		}, nil
	case fn == "-" && a.isConst():
		rb, k := b.reg, cv(a.val)
		return func(ctx *evalCtx) error {
			d, y := sl(ctx.regs[dst]), sl(ctx.regs[rb])
			if ctx.sel == nil {
				primitives.SubCV(d[:ctx.n], k, y, nil)
			} else {
				primitives.SubCV(d, k, y, ctx.sel)
			}
			return nil
		}, nil
	case fn == "-":
		ra, rb := a.reg, b.reg
		return func(ctx *evalCtx) error {
			d, x, y := sl(ctx.regs[dst]), sl(ctx.regs[ra]), sl(ctx.regs[rb])
			if ctx.sel == nil {
				primitives.SubVV(d[:ctx.n], x, y, nil)
			} else {
				primitives.SubVV(d, x, y, ctx.sel)
			}
			return nil
		}, nil
	case fn == "*" && a.isConst():
		a, b = b, a
		fallthrough
	case fn == "*" && b.isConst():
		ra, k := a.reg, cv(b.val)
		return func(ctx *evalCtx) error {
			d, x := sl(ctx.regs[dst]), sl(ctx.regs[ra])
			if ctx.sel == nil {
				primitives.MulVC(d[:ctx.n], x, k, nil)
			} else {
				primitives.MulVC(d, x, k, ctx.sel)
			}
			return nil
		}, nil
	case fn == "*":
		ra, rb := a.reg, b.reg
		return func(ctx *evalCtx) error {
			d, x, y := sl(ctx.regs[dst]), sl(ctx.regs[ra]), sl(ctx.regs[rb])
			if ctx.sel == nil {
				primitives.MulVV(d[:ctx.n], x, y, nil)
			} else {
				primitives.MulVV(d, x, y, ctx.sel)
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("expr: unsupported integer arithmetic %q", fn)
}

func floatArith(fn string, a, b argSlot, dst int, mode Mode, c *compiler) (instr, error) {
	sl, cv := sF64, cF64
	switch {
	case fn == "/" && b.isConst():
		ra, k := a.reg, cv(b.val)
		checked := mode.Checked || mode.Naive
		return func(ctx *evalCtx) error {
			d, x := sl(ctx.regs[dst]), sl(ctx.regs[ra])
			sel := ctx.sel
			if sel == nil {
				d = d[:ctx.n]
			}
			if checked {
				return primitives.CheckedDivVCF(d, x, k, sel)
			}
			primitives.DivVCF(d, x, k, sel)
			return nil
		}, nil
	case fn == "/":
		av := c.materialize(a)
		bv := c.materialize(b)
		ra, rb := av.reg, bv.reg
		checked := mode.Checked || mode.Naive
		return func(ctx *evalCtx) error {
			d, x, y := sl(ctx.regs[dst]), sl(ctx.regs[ra]), sl(ctx.regs[rb])
			sel := ctx.sel
			if sel == nil {
				d = d[:ctx.n]
			}
			if checked {
				return primitives.CheckedDivVVF(d, x, y, sel)
			}
			primitives.DivVVF(d, x, y, sel)
			return nil
		}, nil
	case (fn == "+" || fn == "*") && a.isConst():
		a, b = b, a
	}
	switch fn {
	case "+":
		if b.isConst() {
			ra, k := a.reg, cv(b.val)
			return func(ctx *evalCtx) error {
				d, x := sl(ctx.regs[dst]), sl(ctx.regs[ra])
				if ctx.sel == nil {
					primitives.AddVC(d[:ctx.n], x, k, nil)
				} else {
					primitives.AddVC(d, x, k, ctx.sel)
				}
				return nil
			}, nil
		}
		ra, rb := a.reg, b.reg
		return func(ctx *evalCtx) error {
			d, x, y := sl(ctx.regs[dst]), sl(ctx.regs[ra]), sl(ctx.regs[rb])
			if ctx.sel == nil {
				primitives.AddVV(d[:ctx.n], x, y, nil)
			} else {
				primitives.AddVV(d, x, y, ctx.sel)
			}
			return nil
		}, nil
	case "-":
		switch {
		case b.isConst():
			ra, k := a.reg, cv(b.val)
			return func(ctx *evalCtx) error {
				d, x := sl(ctx.regs[dst]), sl(ctx.regs[ra])
				if ctx.sel == nil {
					primitives.SubVC(d[:ctx.n], x, k, nil)
				} else {
					primitives.SubVC(d, x, k, ctx.sel)
				}
				return nil
			}, nil
		case a.isConst():
			rb, k := b.reg, cv(a.val)
			return func(ctx *evalCtx) error {
				d, y := sl(ctx.regs[dst]), sl(ctx.regs[rb])
				if ctx.sel == nil {
					primitives.SubCV(d[:ctx.n], k, y, nil)
				} else {
					primitives.SubCV(d, k, y, ctx.sel)
				}
				return nil
			}, nil
		default:
			ra, rb := a.reg, b.reg
			return func(ctx *evalCtx) error {
				d, x, y := sl(ctx.regs[dst]), sl(ctx.regs[ra]), sl(ctx.regs[rb])
				if ctx.sel == nil {
					primitives.SubVV(d[:ctx.n], x, y, nil)
				} else {
					primitives.SubVV(d, x, y, ctx.sel)
				}
				return nil
			}, nil
		}
	case "*":
		if b.isConst() {
			ra, k := a.reg, cv(b.val)
			return func(ctx *evalCtx) error {
				d, x := sl(ctx.regs[dst]), sl(ctx.regs[ra])
				if ctx.sel == nil {
					primitives.MulVC(d[:ctx.n], x, k, nil)
				} else {
					primitives.MulVC(d, x, k, ctx.sel)
				}
				return nil
			}, nil
		}
		ra, rb := a.reg, b.reg
		return func(ctx *evalCtx) error {
			d, x, y := sl(ctx.regs[dst]), sl(ctx.regs[ra]), sl(ctx.regs[rb])
			if ctx.sel == nil {
				primitives.MulVV(d[:ctx.n], x, y, nil)
			} else {
				primitives.MulVV(d, x, y, ctx.sel)
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("expr: unsupported float arithmetic %q", fn)
}

// --- comparisons ---

func buildCmp(fn string, args []argSlot, dst int, c *compiler) (instr, error) {
	a, b := args[0], args[1]
	if a.isConst() && b.isConst() {
		a = c.materialize(a)
	}
	// Mirror constant-on-left into constant-on-right.
	if a.isConst() && !b.isConst() {
		a, b = b, a
		fn = mirrorCmp(fn)
	}
	switch a.kind {
	case types.KindInt32, types.KindDate:
		return cmpIns(fn, a, b, dst, c, sI32, cI32)
	case types.KindInt64:
		return cmpIns(fn, a, b, dst, c, sI64, cI64)
	case types.KindFloat64:
		return cmpIns(fn, a, b, dst, c, sF64, cF64)
	case types.KindString:
		return cmpIns(fn, a, b, dst, c, sStr, cStr)
	case types.KindBool:
		return cmpBoolIns(fn, a, b, dst, c)
	}
	return nil, fmt.Errorf("expr: comparison on %v", a.kind)
}

func mirrorCmp(fn string) string {
	switch fn {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return fn // = and <> are symmetric
}

func cmpIns[T primitives.Ordered](
	fn string, a, b argSlot, dst int, c *compiler,
	sl func(*vec.Vector) []T, cv func(types.Value) T,
) (instr, error) {
	if b.isConst() {
		ra, k := a.reg, cv(b.val)
		var f func(dst []bool, a []T, c T, sel []int32)
		switch fn {
		case "=":
			f = primitives.CmpEqVC[T]
		case "<>":
			f = primitives.CmpNeVC[T]
		case "<":
			f = primitives.CmpLtVC[T]
		case "<=":
			f = primitives.CmpLeVC[T]
		case ">":
			f = primitives.CmpGtVC[T]
		case ">=":
			f = primitives.CmpGeVC[T]
		default:
			return nil, fmt.Errorf("expr: comparison %q", fn)
		}
		return func(ctx *evalCtx) error {
			d, x := ctx.regs[dst].Bool, sl(ctx.regs[ra])
			if ctx.sel == nil {
				f(d[:ctx.n], x, k, nil)
			} else {
				f(d, x, k, ctx.sel)
			}
			return nil
		}, nil
	}
	av := c.materialize(a)
	ra, rb := av.reg, b.reg
	var f func(dst []bool, a, b []T, sel []int32)
	switch fn {
	case "=":
		f = primitives.CmpEqVV[T]
	case "<>":
		f = primitives.CmpNeVV[T]
	case "<":
		f = primitives.CmpLtVV[T]
	case "<=":
		f = primitives.CmpLeVV[T]
	case ">":
		f = primitives.CmpGtVV[T]
	case ">=":
		f = primitives.CmpGeVV[T]
	default:
		return nil, fmt.Errorf("expr: comparison %q", fn)
	}
	return func(ctx *evalCtx) error {
		d, x, y := ctx.regs[dst].Bool, sl(ctx.regs[ra]), sl(ctx.regs[rb])
		if ctx.sel == nil {
			f(d[:ctx.n], x, y, nil)
		} else {
			f(d, x, y, ctx.sel)
		}
		return nil
	}, nil
}

func cmpBoolIns(fn string, a, b argSlot, dst int, c *compiler) (instr, error) {
	av := c.materialize(a)
	bv := c.materialize(b)
	ra, rb := av.reg, bv.reg
	eq := fn == "="
	if fn != "=" && fn != "<>" {
		return nil, fmt.Errorf("expr: ordering comparison on BOOLEAN")
	}
	return func(ctx *evalCtx) error {
		d, x, y := ctx.regs[dst].Bool, ctx.regs[ra].Bool, ctx.regs[rb].Bool
		if ctx.sel == nil {
			for i := 0; i < ctx.n; i++ {
				d[i] = (x[i] == y[i]) == eq
			}
		} else {
			for _, i := range ctx.sel {
				d[i] = (x[i] == y[i]) == eq
			}
		}
		return nil
	}, nil
}

// --- logical, if, between ---

func buildLogical(fn string, args []argSlot, dst int, c *compiler) (instr, error) {
	if fn == "not" {
		av := c.materialize(args[0])
		ra := av.reg
		return func(ctx *evalCtx) error {
			d, x := ctx.regs[dst].Bool, ctx.regs[ra].Bool
			if ctx.sel == nil {
				primitives.NotBool(d[:ctx.n], x, nil)
			} else {
				primitives.NotBool(d, x, ctx.sel)
			}
			return nil
		}, nil
	}
	av := c.materialize(args[0])
	bv := c.materialize(args[1])
	ra, rb := av.reg, bv.reg
	and := fn == "and"
	return func(ctx *evalCtx) error {
		d, x, y := ctx.regs[dst].Bool, ctx.regs[ra].Bool, ctx.regs[rb].Bool
		sel := ctx.sel
		if sel == nil {
			d = d[:ctx.n]
		}
		if and {
			primitives.AndBool(d, x, y, sel)
		} else {
			primitives.OrBool(d, x, y, sel)
		}
		return nil
	}, nil
}

func buildIf(args []argSlot, dst int, dstKind types.Kind, c *compiler) (instr, error) {
	cond := c.materialize(args[0])
	a := c.materialize(args[1])
	b := c.materialize(args[2])
	rc, ra, rb := cond.reg, a.reg, b.reg
	run := func(ctx *evalCtx, gen func(dst *vec.Vector, cond []bool, a, b *vec.Vector, sel []int32, n int)) error {
		gen(ctx.regs[dst], ctx.regs[rc].Bool, ctx.regs[ra], ctx.regs[rb], ctx.sel, ctx.n)
		return nil
	}
	switch dstKind {
	case types.KindBool:
		return func(ctx *evalCtx) error {
			return run(ctx, func(d *vec.Vector, cond []bool, a, b *vec.Vector, sel []int32, n int) {
				dd := d.Bool
				if sel == nil {
					dd = dd[:n]
				}
				primitives.IfThenElse(dd, cond, a.Bool, b.Bool, sel)
			})
		}, nil
	case types.KindInt32, types.KindDate:
		return func(ctx *evalCtx) error {
			return run(ctx, func(d *vec.Vector, cond []bool, a, b *vec.Vector, sel []int32, n int) {
				dd := d.I32
				if sel == nil {
					dd = dd[:n]
				}
				primitives.IfThenElse(dd, cond, a.I32, b.I32, sel)
			})
		}, nil
	case types.KindInt64:
		return func(ctx *evalCtx) error {
			return run(ctx, func(d *vec.Vector, cond []bool, a, b *vec.Vector, sel []int32, n int) {
				dd := d.I64
				if sel == nil {
					dd = dd[:n]
				}
				primitives.IfThenElse(dd, cond, a.I64, b.I64, sel)
			})
		}, nil
	case types.KindFloat64:
		return func(ctx *evalCtx) error {
			return run(ctx, func(d *vec.Vector, cond []bool, a, b *vec.Vector, sel []int32, n int) {
				dd := d.F64
				if sel == nil {
					dd = dd[:n]
				}
				primitives.IfThenElse(dd, cond, a.F64, b.F64, sel)
			})
		}, nil
	case types.KindString:
		return func(ctx *evalCtx) error {
			return run(ctx, func(d *vec.Vector, cond []bool, a, b *vec.Vector, sel []int32, n int) {
				dd := d.Str
				if sel == nil {
					dd = dd[:n]
				}
				primitives.IfThenElse(dd, cond, a.Str, b.Str, sel)
			})
		}, nil
	}
	return nil, fmt.Errorf("expr: if on %v", dstKind)
}

func buildBetween(args []argSlot, dst int, c *compiler) (instr, error) {
	// Materialized BETWEEN producing a bool vector; the filter compiler has
	// a dedicated fused selection path instead.
	x := args[0]
	lo := args[1]
	hi := args[2]
	if !lo.isConst() || !hi.isConst() {
		// General shape: (x >= lo) AND (x <= hi).
		ge, err := buildCmp(">=", []argSlot{x, lo}, dst, c)
		if err != nil {
			return nil, err
		}
		tmp := c.allocReg(types.KindBool)
		le, err := buildCmp("<=", []argSlot{x, hi}, tmp, c)
		if err != nil {
			return nil, err
		}
		return func(ctx *evalCtx) error {
			if err := ge(ctx); err != nil {
				return err
			}
			if err := le(ctx); err != nil {
				return err
			}
			d, y := ctx.regs[dst].Bool, ctx.regs[tmp].Bool
			if ctx.sel == nil {
				primitives.AndBool(d[:ctx.n], d, y, nil)
			} else {
				primitives.AndBool(d, d, y, ctx.sel)
			}
			return nil
		}, nil
	}
	switch x.kind {
	case types.KindInt32, types.KindDate:
		return betweenIns(x, lo, hi, dst, sI32, cI32)
	case types.KindInt64:
		return betweenIns(x, lo, hi, dst, sI64, cI64)
	case types.KindFloat64:
		return betweenIns(x, lo, hi, dst, sF64, cF64)
	case types.KindString:
		return betweenIns(x, lo, hi, dst, sStr, cStr)
	}
	return nil, fmt.Errorf("expr: between on %v", x.kind)
}

func betweenIns[T primitives.Ordered](
	x, lo, hi argSlot, dst int,
	sl func(*vec.Vector) []T, cv func(types.Value) T,
) (instr, error) {
	rx, klo, khi := x.reg, cv(lo.val), cv(hi.val)
	return func(ctx *evalCtx) error {
		d, a := ctx.regs[dst].Bool, sl(ctx.regs[rx])
		if ctx.sel == nil {
			for i := 0; i < ctx.n; i++ {
				d[i] = a[i] >= klo && a[i] <= khi
			}
		} else {
			for _, i := range ctx.sel {
				d[i] = a[i] >= klo && a[i] <= khi
			}
		}
		return nil
	}, nil
}

// --- casts ---

func buildCast(fn string, args []argSlot, dst int, c *compiler) (instr, error) {
	a := c.materialize(args[0])
	ra := a.reg
	switch fn {
	case "cast_int32":
		switch a.kind {
		case types.KindInt32, types.KindDate:
			return aliasCopyIns(ra, dst, sI32), nil
		case types.KindInt64:
			return castIns(ra, dst, sI64, sI32), nil
		case types.KindFloat64:
			return castIns(ra, dst, sF64, sI32), nil
		}
	case "cast_int64":
		switch a.kind {
		case types.KindInt32, types.KindDate:
			return castIns(ra, dst, sI32, sI64), nil
		case types.KindInt64:
			return aliasCopyIns(ra, dst, sI64), nil
		case types.KindFloat64:
			return castIns(ra, dst, sF64, sI64), nil
		case types.KindBool:
			return func(ctx *evalCtx) error {
				d, x := ctx.regs[dst].I64, ctx.regs[ra].Bool
				set := func(i int) {
					if x[i] {
						d[i] = 1
					} else {
						d[i] = 0
					}
				}
				if ctx.sel == nil {
					for i := 0; i < ctx.n; i++ {
						set(i)
					}
				} else {
					for _, i := range ctx.sel {
						set(int(i))
					}
				}
				return nil
			}, nil
		}
	case "cast_float64":
		switch a.kind {
		case types.KindInt32:
			return castIns(ra, dst, sI32, sF64), nil
		case types.KindInt64:
			return castIns(ra, dst, sI64, sF64), nil
		case types.KindFloat64:
			return aliasCopyIns(ra, dst, sF64), nil
		}
	case "cast_string":
		srcKind := a.kind
		return func(ctx *evalCtx) error {
			d := ctx.regs[dst].Str
			src := ctx.regs[ra]
			conv := func(i int) string {
				switch srcKind {
				case types.KindInt32:
					return strconv.FormatInt(int64(src.I32[i]), 10)
				case types.KindInt64:
					return strconv.FormatInt(src.I64[i], 10)
				case types.KindFloat64:
					return strconv.FormatFloat(src.F64[i], 'g', -1, 64)
				case types.KindBool:
					if src.Bool[i] {
						return "true"
					}
					return "false"
				case types.KindDate:
					return types.FormatDate(src.I32[i])
				default:
					return src.Str[i]
				}
			}
			if ctx.sel == nil {
				for i := 0; i < ctx.n; i++ {
					d[i] = conv(i)
				}
			} else {
				for _, i := range ctx.sel {
					d[i] = conv(int(i))
				}
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("expr: unsupported cast %s from %v", fn, a.kind)
}

func castIns[S, D primitives.Num](ra, dst int, slS func(*vec.Vector) []S, slD func(*vec.Vector) []D) instr {
	return func(ctx *evalCtx) error {
		d, x := slD(ctx.regs[dst]), slS(ctx.regs[ra])
		if ctx.sel == nil {
			primitives.CastNum(d[:ctx.n], x, nil)
		} else {
			primitives.CastNum(d, x, ctx.sel)
		}
		return nil
	}
}

func aliasCopyIns[T any](ra, dst int, sl func(*vec.Vector) []T) instr {
	return func(ctx *evalCtx) error {
		d, x := sl(ctx.regs[dst]), sl(ctx.regs[ra])
		if ctx.sel == nil {
			copy(d[:ctx.n], x[:ctx.n])
		} else {
			for _, i := range ctx.sel {
				d[i] = x[i]
			}
		}
		return nil
	}
}

// --- unary numeric ---

func buildUnaryNum(fn string, args []argSlot, dst int, dstKind types.Kind) (instr, error) {
	a := args[0]
	if a.isConst() {
		return nil, fmt.Errorf("expr: %s of constant should be folded", fn)
	}
	switch dstKind {
	case types.KindInt32:
		return unaryNumIns(fn, a.reg, dst, sI32)
	case types.KindInt64:
		return unaryNumIns(fn, a.reg, dst, sI64)
	case types.KindFloat64:
		return unaryNumIns(fn, a.reg, dst, sF64)
	}
	return nil, fmt.Errorf("expr: %s on %v", fn, dstKind)
}

func unaryNumIns[T primitives.Num](fn string, ra, dst int, sl func(*vec.Vector) []T) (instr, error) {
	var f func(dst, a []T, sel []int32)
	switch fn {
	case "neg":
		f = primitives.NegV[T]
	case "abs":
		f = primitives.AbsV[T]
	case "sign":
		f = primitives.SignV[T]
	default:
		return nil, fmt.Errorf("expr: unary %q", fn)
	}
	return func(ctx *evalCtx) error {
		d, x := sl(ctx.regs[dst]), sl(ctx.regs[ra])
		if ctx.sel == nil {
			f(d[:ctx.n], x, nil)
		} else {
			f(d, x, ctx.sel)
		}
		return nil
	}, nil
}

// --- min2/max2 ---

func buildMinMax2(fn string, args []argSlot, dst int, dstKind types.Kind, c *compiler) (instr, error) {
	a := c.materialize(args[0])
	b := c.materialize(args[1])
	isMin := fn == "min2"
	switch dstKind {
	case types.KindInt32, types.KindDate:
		return minMaxIns(isMin, a.reg, b.reg, dst, sI32), nil
	case types.KindInt64:
		return minMaxIns(isMin, a.reg, b.reg, dst, sI64), nil
	case types.KindFloat64:
		return minMaxIns(isMin, a.reg, b.reg, dst, sF64), nil
	case types.KindString:
		return minMaxIns(isMin, a.reg, b.reg, dst, sStr), nil
	}
	return nil, fmt.Errorf("expr: %s on %v", fn, dstKind)
}

func minMaxIns[T primitives.Ordered](isMin bool, ra, rb, dst int, sl func(*vec.Vector) []T) instr {
	return func(ctx *evalCtx) error {
		d, x, y := sl(ctx.regs[dst]), sl(ctx.regs[ra]), sl(ctx.regs[rb])
		sel := ctx.sel
		if sel == nil {
			d = d[:ctx.n]
		}
		if isMin {
			primitives.MinVV(d, x, y, sel)
		} else {
			primitives.MaxVV(d, x, y, sel)
		}
		return nil
	}
}

// --- strings ---

func buildString(fn string, args []argSlot, dst int, c *compiler) (instr, error) {
	switch fn {
	case "upper", "lower", "trim", "ltrim", "rtrim":
		a := c.materialize(args[0])
		ra := a.reg
		var f func(dst, a []string, sel []int32)
		switch fn {
		case "upper":
			f = primitives.UpperV
		case "lower":
			f = primitives.LowerV
		case "trim":
			f = primitives.TrimV
		case "ltrim":
			f = primitives.LTrimV
		case "rtrim":
			f = primitives.RTrimV
		}
		return func(ctx *evalCtx) error {
			d, x := ctx.regs[dst].Str, ctx.regs[ra].Str
			if ctx.sel == nil {
				f(d[:ctx.n], x, nil)
			} else {
				f(d, x, ctx.sel)
			}
			return nil
		}, nil
	case "length":
		a := c.materialize(args[0])
		ra := a.reg
		return func(ctx *evalCtx) error {
			d, x := ctx.regs[dst].I64, ctx.regs[ra].Str
			if ctx.sel == nil {
				primitives.LengthV(d[:ctx.n], x, nil)
			} else {
				primitives.LengthV(d, x, ctx.sel)
			}
			return nil
		}, nil
	case "||", "concat":
		a, b := args[0], args[1]
		switch {
		case b.isConst() && !a.isConst():
			ra, k := a.reg, b.val.Str
			return func(ctx *evalCtx) error {
				d, x := ctx.regs[dst].Str, ctx.regs[ra].Str
				if ctx.sel == nil {
					primitives.ConcatVC(d[:ctx.n], x, k, nil)
				} else {
					primitives.ConcatVC(d, x, k, ctx.sel)
				}
				return nil
			}, nil
		case a.isConst() && !b.isConst():
			rb, k := b.reg, a.val.Str
			return func(ctx *evalCtx) error {
				d, y := ctx.regs[dst].Str, ctx.regs[rb].Str
				if ctx.sel == nil {
					primitives.ConcatCV(d[:ctx.n], k, y, nil)
				} else {
					primitives.ConcatCV(d, k, y, ctx.sel)
				}
				return nil
			}, nil
		default:
			av := c.materialize(a)
			bv := c.materialize(b)
			ra, rb := av.reg, bv.reg
			return func(ctx *evalCtx) error {
				d, x, y := ctx.regs[dst].Str, ctx.regs[ra].Str, ctx.regs[rb].Str
				if ctx.sel == nil {
					primitives.ConcatVV(d[:ctx.n], x, y, nil)
				} else {
					primitives.ConcatVV(d, x, y, ctx.sel)
				}
				return nil
			}, nil
		}
	case "substr":
		a := c.materialize(args[0])
		ra := a.reg
		if args[1].isConst() && args[2].isConst() {
			start, length := args[1].val.AsInt(), args[2].val.AsInt()
			return func(ctx *evalCtx) error {
				d, x := ctx.regs[dst].Str, ctx.regs[ra].Str
				if ctx.sel == nil {
					primitives.SubstrVCC(d[:ctx.n], x, start, length, nil)
				} else {
					primitives.SubstrVCC(d, x, start, length, ctx.sel)
				}
				return nil
			}, nil
		}
		st, err := toI64(c, args[1])
		if err != nil {
			return nil, err
		}
		ln, err := toI64(c, args[2])
		if err != nil {
			return nil, err
		}
		rs, rl := st.reg, ln.reg
		return func(ctx *evalCtx) error {
			d, x := ctx.regs[dst].Str, ctx.regs[ra].Str
			s, l := ctx.regs[rs].I64, ctx.regs[rl].I64
			if ctx.sel == nil {
				primitives.SubstrVVV(d[:ctx.n], x, s, l, nil)
			} else {
				primitives.SubstrVVV(d, x, s, l, ctx.sel)
			}
			return nil
		}, nil
	case "replace":
		if !args[1].isConst() || !args[2].isConst() {
			return nil, fmt.Errorf("expr: replace patterns must be constant")
		}
		a := c.materialize(args[0])
		ra, old, new := a.reg, args[1].val.Str, args[2].val.Str
		return func(ctx *evalCtx) error {
			d, x := ctx.regs[dst].Str, ctx.regs[ra].Str
			if ctx.sel == nil {
				primitives.ReplaceVCC(d[:ctx.n], x, old, new, nil)
			} else {
				primitives.ReplaceVCC(d, x, old, new, ctx.sel)
			}
			return nil
		}, nil
	case "position":
		if !args[1].isConst() {
			return nil, fmt.Errorf("expr: position needle must be constant")
		}
		a := c.materialize(args[0])
		ra, needle := a.reg, args[1].val.Str
		return func(ctx *evalCtx) error {
			d, x := ctx.regs[dst].I64, ctx.regs[ra].Str
			if ctx.sel == nil {
				primitives.PositionVC(d[:ctx.n], x, needle, nil)
			} else {
				primitives.PositionVC(d, x, needle, ctx.sel)
			}
			return nil
		}, nil
	case "lpad", "rpad":
		if !args[1].isConst() || !args[2].isConst() {
			return nil, fmt.Errorf("expr: pad arguments must be constant")
		}
		a := c.materialize(args[0])
		ra, width, pad := a.reg, args[1].val.AsInt(), args[2].val.Str
		left := fn == "lpad"
		return func(ctx *evalCtx) error {
			d, x := ctx.regs[dst].Str, ctx.regs[ra].Str
			sel := ctx.sel
			if sel == nil {
				d = d[:ctx.n]
			}
			if left {
				primitives.LPadVC(d, x, width, pad, sel)
			} else {
				primitives.RPadVC(d, x, width, pad, sel)
			}
			return nil
		}, nil
	case "like", "starts_with", "ends_with", "contains":
		if !args[1].isConst() {
			return nil, fmt.Errorf("expr: %s pattern must be constant", fn)
		}
		a := c.materialize(args[0])
		ra := a.reg
		pat := args[1].val.Str
		var m *primitives.LikeMatcher
		switch fn {
		case "like":
			m = primitives.CompileLike(pat)
		case "starts_with":
			m = primitives.CompileLike(escapeLike(pat) + "%")
		case "ends_with":
			m = primitives.CompileLike("%" + escapeLike(pat))
		case "contains":
			m = primitives.CompileLike("%" + escapeLike(pat) + "%")
		}
		return func(ctx *evalCtx) error {
			d, x := ctx.regs[dst].Bool, ctx.regs[ra].Str
			if ctx.sel == nil {
				primitives.LikeV(d[:ctx.n], x, m, nil)
			} else {
				primitives.LikeV(d, x, m, ctx.sel)
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("expr: unsupported string function %q", fn)
}

func escapeLike(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `%`, `\%`, `_`, `\_`)
	return r.Replace(s)
}

// toI64 coerces an integral slot into an int64 register.
func toI64(c *compiler, s argSlot) (argSlot, error) {
	if s.isConst() {
		v := types.NewInt64(s.val.AsInt())
		return c.materialize(argSlot{reg: -1, val: v, kind: types.KindInt64}), nil
	}
	if s.kind == types.KindInt64 {
		return s, nil
	}
	if s.kind != types.KindInt32 {
		return argSlot{}, fmt.Errorf("expr: expected integer, got %v", s.kind)
	}
	dst := c.allocReg(types.KindInt64)
	c.prog = append(c.prog, castIns(s.reg, dst, sI32, sI64))
	return argSlot{reg: dst, kind: types.KindInt64}, nil
}

// --- dates ---

func buildDate(fn string, args []argSlot, dst int, c *compiler) (instr, error) {
	a := c.materialize(args[0])
	ra := a.reg
	switch fn {
	case "year", "month", "day", "quarter", "dayofweek":
		var f func(dst, a []int32, sel []int32)
		switch fn {
		case "year":
			f = primitives.DateYearV
		case "month":
			f = primitives.DateMonthV
		case "day":
			f = primitives.DateDayV
		case "quarter":
			f = primitives.DateQuarterV
		case "dayofweek":
			f = primitives.DateDowV
		}
		return func(ctx *evalCtx) error {
			d, x := ctx.regs[dst].I32, ctx.regs[ra].I32
			if ctx.sel == nil {
				f(d[:ctx.n], x, nil)
			} else {
				f(d, x, ctx.sel)
			}
			return nil
		}, nil
	case "date_add", "add_months":
		months := fn == "add_months"
		if args[1].isConst() {
			k := int32(args[1].val.AsInt())
			return func(ctx *evalCtx) error {
				d, x := ctx.regs[dst].I32, ctx.regs[ra].I32
				sel := ctx.sel
				if sel == nil {
					d = d[:ctx.n]
				}
				if months {
					primitives.DateAddMonthsVC(d, x, k, sel)
				} else {
					primitives.DateAddDaysVC(d, x, k, sel)
				}
				return nil
			}, nil
		}
		nSlot, err := toI64(c, args[1])
		if err != nil {
			return nil, err
		}
		rn := nSlot.reg
		return func(ctx *evalCtx) error {
			d, x, nn := ctx.regs[dst].I32, ctx.regs[ra].I32, ctx.regs[rn].I64
			apply := func(i int) {
				if months {
					d[i] = types.DateAddMonths(x[i], int32(nn[i]))
				} else {
					d[i] = x[i] + int32(nn[i])
				}
			}
			if ctx.sel == nil {
				for i := 0; i < ctx.n; i++ {
					apply(i)
				}
			} else {
				for _, i := range ctx.sel {
					apply(int(i))
				}
			}
			return nil
		}, nil
	case "date_diff":
		b := c.materialize(args[1])
		rb := b.reg
		return func(ctx *evalCtx) error {
			d, x, y := ctx.regs[dst].I64, ctx.regs[ra].I32, ctx.regs[rb].I32
			if ctx.sel == nil {
				primitives.DateDiffVV(d[:ctx.n], x, y, nil)
			} else {
				primitives.DateDiffVV(d, x, y, ctx.sel)
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("expr: unsupported date function %q", fn)
}

// --- math ---

func buildMath(fn string, args []argSlot, dst int, c *compiler) (instr, error) {
	a := c.materialize(args[0])
	ra := a.reg
	switch fn {
	case "sqrt", "floor", "ceil", "ln", "exp":
		var f func(dst, a []float64, sel []int32)
		switch fn {
		case "sqrt":
			f = primitives.SqrtV
		case "floor":
			f = primitives.FloorV
		case "ceil":
			f = primitives.CeilV
		case "ln":
			f = primitives.LnV
		case "exp":
			f = primitives.ExpV
		}
		return func(ctx *evalCtx) error {
			d, x := ctx.regs[dst].F64, ctx.regs[ra].F64
			if ctx.sel == nil {
				f(d[:ctx.n], x, nil)
			} else {
				f(d, x, ctx.sel)
			}
			return nil
		}, nil
	case "round":
		if !args[1].isConst() {
			return nil, fmt.Errorf("expr: round digits must be constant")
		}
		digits := args[1].val.AsInt()
		return func(ctx *evalCtx) error {
			d, x := ctx.regs[dst].F64, ctx.regs[ra].F64
			if ctx.sel == nil {
				primitives.RoundV(d[:ctx.n], x, digits, nil)
			} else {
				primitives.RoundV(d, x, digits, ctx.sel)
			}
			return nil
		}, nil
	case "power":
		if args[1].isConst() {
			k := args[1].val.AsFloat()
			return func(ctx *evalCtx) error {
				d, x := ctx.regs[dst].F64, ctx.regs[ra].F64
				if ctx.sel == nil {
					primitives.PowVC(d[:ctx.n], x, k, nil)
				} else {
					primitives.PowVC(d, x, k, ctx.sel)
				}
				return nil
			}, nil
		}
		b := c.materialize(args[1])
		rb := b.reg
		return func(ctx *evalCtx) error {
			d, x, y := ctx.regs[dst].F64, ctx.regs[ra].F64, ctx.regs[rb].F64
			apply := func(i int) { d[i] = pow(x[i], y[i]) }
			if ctx.sel == nil {
				for i := 0; i < ctx.n; i++ {
					apply(i)
				}
			} else {
				for _, i := range ctx.sel {
					apply(int(i))
				}
			}
			return nil
		}, nil
	}
	return nil, fmt.Errorf("expr: unsupported math function %q", fn)
}
