package expr

import (
	"fmt"

	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// The vectorized expression compiler. An expression tree is compiled once
// per query into a flat program of instructions over vector registers; at
// run time each batch flows through the program with zero interpretation of
// the tree and zero allocation.
//
// Registers are either *aliases* (column references point straight into the
// input batch — no copy) or *owned* scratch vectors sized to the engine's
// vector length and grown on demand.

// evalCtx is the per-batch execution state threaded through instructions.
type evalCtx struct {
	in   *vec.Batch
	regs []*vec.Vector
	sel  []int32 // selection under which to evaluate (physical positions)
	n    int     // physical row count of the batch
}

// instr is one compiled step.
type instr func(ctx *evalCtx) error

// Evaluator is a compiled expression.
type Evaluator struct {
	prog     []instr
	nRegs    int
	owned    []ownedReg // registers we must allocate/grow
	out      int        // register holding the result
	outKind  types.Kind
	regState []*vec.Vector
	checked  bool
}

type ownedReg struct {
	reg  int
	kind types.Kind
}

// Mode flags for compilation.
type Mode struct {
	// Checked enables overflow/div-zero detection via the vectorized
	// checked primitives. Unchecked mode exists for experiment E8 and for
	// expressions the optimizer proved safe.
	Checked bool
	// Naive switches the checked primitives to the per-value naive variants
	// (experiment E8's straw man). Implies Checked.
	Naive bool
}

// Compile builds an Evaluator for e over inputs with the given kinds.
func Compile(e Expr, inputKinds []types.Kind, mode Mode) (*Evaluator, error) {
	c := &compiler{inputKinds: inputKinds, mode: mode}
	slot, err := c.compileNode(e)
	if err != nil {
		return nil, err
	}
	outReg := slot.reg
	if slot.isConst() {
		// Expression is a bare constant: materialize it.
		outReg = c.allocReg(slot.kind)
		val := slot.val
		r := outReg
		c.prog = append(c.prog, func(ctx *evalCtx) error {
			ctx.regs[r].Fill(val, ctx.n)
			return nil
		})
	}
	ev := &Evaluator{
		prog:    c.prog,
		nRegs:   c.nRegs,
		owned:   c.owned,
		out:     outReg,
		outKind: e.Type().Kind,
		checked: mode.Checked,
	}
	ev.regState = make([]*vec.Vector, ev.nRegs)
	for _, o := range ev.owned {
		ev.regState[o.reg] = vec.New(o.kind, vec.DefaultSize)
	}
	return ev, nil
}

// OutKind returns the result vector kind.
func (ev *Evaluator) OutKind() types.Kind { return ev.outKind }

// Eval runs the program over a batch, evaluating only the batch's selected
// positions, and returns the result vector. Result values sit at the same
// physical positions as their input rows (interpret it with the batch's
// selection vector). The returned vector is owned by the evaluator and valid
// until the next Eval.
func (ev *Evaluator) Eval(b *vec.Batch) (*vec.Vector, error) {
	return ev.EvalSel(b, b.Sel)
}

// EvalSel is Eval under an explicit selection (overriding the batch's own).
func (ev *Evaluator) EvalSel(b *vec.Batch, sel []int32) (*vec.Vector, error) {
	n := b.Full()
	for _, o := range ev.owned {
		r := ev.regState[o.reg]
		if r.Cap() < n {
			r.Grow(n)
		}
		r.SetLen(n)
	}
	ctx := &evalCtx{in: b, regs: ev.regState, sel: sel, n: n}
	for _, ins := range ev.prog {
		if err := ins(ctx); err != nil {
			return nil, err
		}
	}
	return ev.regState[ev.out], nil
}

// compiler state.
type compiler struct {
	inputKinds []types.Kind
	mode       Mode
	prog       []instr
	nRegs      int
	owned      []ownedReg
}

// argSlot is a compiled operand: either a register or a compile-time
// constant (which primitives consume in their VC shapes without
// materialization).
type argSlot struct {
	reg  int // -1 for constants
	val  types.Value
	kind types.Kind
}

func (s argSlot) isConst() bool { return s.reg < 0 }

func (c *compiler) allocReg(kind types.Kind) int {
	r := c.nRegs
	c.nRegs++
	c.owned = append(c.owned, ownedReg{reg: r, kind: kind})
	return r
}

func (c *compiler) allocAlias() int {
	r := c.nRegs
	c.nRegs++
	return r
}

func (c *compiler) compileNode(e Expr) (argSlot, error) {
	switch n := e.(type) {
	case *Const:
		if n.Val.Null {
			return argSlot{}, fmt.Errorf("expr: NULL literal reached the kernel compiler (rewriter must decompose): %s", e)
		}
		return argSlot{reg: -1, val: n.Val, kind: n.Val.Kind}, nil
	case *ColRef:
		if n.Idx < 0 || n.Idx >= len(c.inputKinds) {
			return argSlot{}, fmt.Errorf("expr: column index %d out of range (input has %d columns)", n.Idx, len(c.inputKinds))
		}
		if got, want := c.inputKinds[n.Idx], n.T.Kind; got != want {
			return argSlot{}, fmt.Errorf("expr: column %d is %v, reference says %v", n.Idx, got, want)
		}
		r := c.allocAlias()
		idx := n.Idx
		c.prog = append(c.prog, func(ctx *evalCtx) error {
			ctx.regs[r] = ctx.in.Vecs[idx]
			return nil
		})
		return argSlot{reg: r, kind: n.T.Kind}, nil
	case *Call:
		args := make([]argSlot, len(n.Args))
		for i, a := range n.Args {
			s, err := c.compileNode(a)
			if err != nil {
				return argSlot{}, err
			}
			args[i] = s
		}
		dstKind := n.T.Kind
		dst := c.allocReg(dstKind)
		ins, err := buildCall(n.Fn, args, dst, dstKind, c.mode, c)
		if err != nil {
			return argSlot{}, err
		}
		c.prog = append(c.prog, ins)
		return argSlot{reg: dst, kind: dstKind}, nil
	default:
		return argSlot{}, fmt.Errorf("expr: cannot compile node %T", e)
	}
}

// materialize returns a register that holds the constant expanded to the
// batch length; used by builders that lack a constant-operand shape.
func (c *compiler) materialize(s argSlot) argSlot {
	if !s.isConst() {
		return s
	}
	r := c.allocReg(s.kind)
	val := s.val
	c.prog = append(c.prog, func(ctx *evalCtx) error {
		ctx.regs[r].Fill(val, ctx.n)
		return nil
	})
	return argSlot{reg: r, kind: s.kind}
}
