package expr

import (
	"fmt"

	"vectorwise/internal/types"
)

// ResolveFunc type-checks a call of fn over the given argument types and
// returns the result type. It is the single function catalog shared by the
// binder (logical typing), the vectorized compiler and the row interpreter,
// so the three layers cannot drift apart.
//
// Nullability: a call's result is nullable iff any argument is nullable
// (exceptions: isnull/isnotnull/coalesce/ifnull, which exist to eliminate
// nullability). The kernel never sees nullable types — the rewriter strips
// them — but the logical layers track them for correctness.
func ResolveFunc(fn string, args []types.T) (types.T, error) {
	nullable := false
	for _, a := range args {
		nullable = nullable || a.Nullable
	}
	fail := func() (types.T, error) {
		return types.T{}, fmt.Errorf("expr: no function %s%v", fn, typeList(args))
	}
	out := func(k types.Kind) (types.T, error) {
		return types.T{Kind: k, Nullable: nullable}, nil
	}
	switch fn {
	case "+", "-", "*":
		if len(args) != 2 {
			return fail()
		}
		// DATE ± integer is day arithmetic.
		if fn != "*" && args[0].Kind == types.KindDate && args[1].Kind.Integral() {
			return out(types.KindDate)
		}
		if fn == "-" && args[0].Kind == types.KindDate && args[1].Kind == types.KindDate {
			return out(types.KindInt64)
		}
		k := types.CommonNumeric(args[0].Kind, args[1].Kind)
		if k == types.KindInvalid {
			return fail()
		}
		return out(k)
	case "/":
		if len(args) != 2 {
			return fail()
		}
		k := types.CommonNumeric(args[0].Kind, args[1].Kind)
		if k == types.KindInvalid {
			return fail()
		}
		return out(k) // integer division stays integral, SQL-style
	case "%", "mod":
		if len(args) != 2 || !args[0].Kind.Integral() || !args[1].Kind.Integral() {
			return fail()
		}
		return out(types.CommonNumeric(args[0].Kind, args[1].Kind))
	case "neg", "abs", "sign":
		if len(args) != 1 || !args[0].Kind.Numeric() {
			return fail()
		}
		return out(args[0].Kind)
	case "=", "<>", "<", "<=", ">", ">=":
		if len(args) != 2 || !types.Comparable(args[0].Kind, args[1].Kind) {
			return fail()
		}
		return out(types.KindBool)
	case "and", "or":
		if len(args) != 2 || args[0].Kind != types.KindBool || args[1].Kind != types.KindBool {
			return fail()
		}
		return out(types.KindBool)
	case "not":
		if len(args) != 1 || args[0].Kind != types.KindBool {
			return fail()
		}
		return out(types.KindBool)
	case "if":
		if len(args) != 3 || args[0].Kind != types.KindBool || args[1].Kind != args[2].Kind {
			return fail()
		}
		return out(args[1].Kind)
	case "between":
		if len(args) != 3 || !types.Comparable(args[0].Kind, args[1].Kind) || !types.Comparable(args[0].Kind, args[2].Kind) {
			return fail()
		}
		return out(types.KindBool)
	case "cast_int32":
		if len(args) != 1 || !(args[0].Kind.Numeric() || args[0].Kind == types.KindDate) {
			return fail()
		}
		return out(types.KindInt32)
	case "cast_int64":
		if len(args) != 1 || !(args[0].Kind.Numeric() || args[0].Kind == types.KindDate || args[0].Kind == types.KindBool) {
			return fail()
		}
		return out(types.KindInt64)
	case "cast_float64":
		if len(args) != 1 || !args[0].Kind.Numeric() {
			return fail()
		}
		return out(types.KindFloat64)
	case "cast_string":
		if len(args) != 1 {
			return fail()
		}
		return out(types.KindString)
	case "upper", "lower", "trim", "ltrim", "rtrim":
		if len(args) != 1 || args[0].Kind != types.KindString {
			return fail()
		}
		return out(types.KindString)
	case "length":
		if len(args) != 1 || args[0].Kind != types.KindString {
			return fail()
		}
		return out(types.KindInt64)
	case "||", "concat":
		if len(args) != 2 || args[0].Kind != types.KindString || args[1].Kind != types.KindString {
			return fail()
		}
		return out(types.KindString)
	case "substr":
		if len(args) != 3 || args[0].Kind != types.KindString || !args[1].Kind.Integral() || !args[2].Kind.Integral() {
			return fail()
		}
		return out(types.KindString)
	case "replace":
		if len(args) != 3 || args[0].Kind != types.KindString || args[1].Kind != types.KindString || args[2].Kind != types.KindString {
			return fail()
		}
		return out(types.KindString)
	case "position":
		if len(args) != 2 || args[0].Kind != types.KindString || args[1].Kind != types.KindString {
			return fail()
		}
		return out(types.KindInt64)
	case "lpad", "rpad":
		if len(args) != 3 || args[0].Kind != types.KindString || !args[1].Kind.Integral() || args[2].Kind != types.KindString {
			return fail()
		}
		return out(types.KindString)
	case "like", "starts_with", "ends_with", "contains":
		if len(args) != 2 || args[0].Kind != types.KindString || args[1].Kind != types.KindString {
			return fail()
		}
		return out(types.KindBool)
	case "year", "month", "day", "quarter", "dayofweek":
		if len(args) != 1 || args[0].Kind != types.KindDate {
			return fail()
		}
		return out(types.KindInt32)
	case "date_add":
		if len(args) != 2 || args[0].Kind != types.KindDate || !args[1].Kind.Integral() {
			return fail()
		}
		return out(types.KindDate)
	case "add_months":
		if len(args) != 2 || args[0].Kind != types.KindDate || !args[1].Kind.Integral() {
			return fail()
		}
		return out(types.KindDate)
	case "date_diff":
		if len(args) != 2 || args[0].Kind != types.KindDate || args[1].Kind != types.KindDate {
			return fail()
		}
		return out(types.KindInt64)
	case "sqrt", "ln", "exp", "floor", "ceil":
		if len(args) != 1 || args[0].Kind != types.KindFloat64 {
			return fail()
		}
		return out(types.KindFloat64)
	case "round":
		if len(args) != 2 || args[0].Kind != types.KindFloat64 || !args[1].Kind.Integral() {
			return fail()
		}
		return out(types.KindFloat64)
	case "power":
		if len(args) != 2 || args[0].Kind != types.KindFloat64 || args[1].Kind != types.KindFloat64 {
			return fail()
		}
		return out(types.KindFloat64)
	case "min2", "max2":
		if len(args) != 2 || args[0].Kind != args[1].Kind {
			return fail()
		}
		return out(args[0].Kind)
	// NULL-handling functions. These exist at the logical level only: the
	// Vectorwise rewriter lowers them onto indicator columns before kernel
	// compilation. The row engine interprets them directly.
	case "isnull", "isnotnull":
		if len(args) != 1 {
			return fail()
		}
		return types.Bool, nil // never nullable
	case "coalesce", "ifnull":
		if len(args) != 2 || args[0].Kind != args[1].Kind {
			return fail()
		}
		return types.T{Kind: args[0].Kind, Nullable: args[0].Nullable && args[1].Nullable}, nil
	case "nullif":
		if len(args) != 2 || !types.Comparable(args[0].Kind, args[1].Kind) {
			return fail()
		}
		return types.T{Kind: args[0].Kind, Nullable: true}, nil
	}
	return types.T{}, fmt.Errorf("expr: unknown function %q", fn)
}

func typeList(args []types.T) string {
	s := "("
	for i, a := range args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}

// Promote wraps e in a cast call if its kind differs from want; the helper
// the binder uses to make arithmetic operand types equal before building
// Call nodes.
func Promote(e Expr, want types.Kind) Expr {
	if e.Type().Kind == want {
		return e
	}
	switch want {
	case types.KindInt32:
		return NewCall("cast_int32", e)
	case types.KindInt64:
		return NewCall("cast_int64", e)
	case types.KindFloat64:
		return NewCall("cast_float64", e)
	case types.KindString:
		return NewCall("cast_string", e)
	}
	panic(fmt.Sprintf("expr: cannot promote %v to %v", e.Type(), want))
}
