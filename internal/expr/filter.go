package expr

import (
	"fmt"

	"vectorwise/internal/primitives"
	"vectorwise/internal/types"
	"vectorwise/internal/vec"
)

// The filter compiler turns a boolean predicate into a *selection program*:
// instead of materializing a bool vector and then scanning it, comparisons
// compile directly to Sel* primitives that shrink a selection vector.
// Conjunctions chain selections (each term runs only over survivors —
// X100's cheap filter composition); disjunctions union them.

// Filter is a compiled predicate.
type Filter struct {
	root selNode
}

// selCtx carries per-batch state for filter execution.
type selCtx struct {
	ev *evalCtx
}

type selNode interface {
	// apply narrows cur (physical positions, sorted; nil = all n rows) and
	// returns the surviving selection. The returned slice is owned by the
	// node and valid until its next apply.
	apply(ctx *selCtx, cur []int32) ([]int32, error)
}

// CompileFilter builds a Filter for pred over inputs of the given kinds.
func CompileFilter(pred Expr, inputKinds []types.Kind, mode Mode) (*Filter, error) {
	if pred.Type().Kind != types.KindBool {
		return nil, fmt.Errorf("expr: filter predicate has type %v, want BOOLEAN", pred.Type())
	}
	fc := &filterCompiler{inputKinds: inputKinds, mode: mode}
	root, err := fc.compile(pred)
	if err != nil {
		return nil, err
	}
	return &Filter{root: root}, nil
}

// Apply evaluates the filter over a batch and returns the selection of
// qualifying physical positions (subset of b.Sel, or of all rows when b.Sel
// is nil). The result is owned by the filter and valid until the next Apply.
func (f *Filter) Apply(b *vec.Batch) ([]int32, error) {
	ctx := &selCtx{ev: &evalCtx{in: b, n: b.Full()}}
	return f.root.apply(ctx, b.Sel)
}

type filterCompiler struct {
	inputKinds []types.Kind
	mode       Mode
}

func (fc *filterCompiler) compile(pred Expr) (selNode, error) {
	call, ok := pred.(*Call)
	if !ok {
		// Bare column or constant of type bool: generic fallback.
		return fc.boolFallback(pred)
	}
	switch call.Fn {
	case "and":
		l, err := fc.compile(call.Args[0])
		if err != nil {
			return nil, err
		}
		r, err := fc.compile(call.Args[1])
		if err != nil {
			return nil, err
		}
		return &selAnd{l: l, r: r}, nil
	case "or":
		l, err := fc.compile(call.Args[0])
		if err != nil {
			return nil, err
		}
		r, err := fc.compile(call.Args[1])
		if err != nil {
			return nil, err
		}
		return &selOr{l: l, r: r}, nil
	case "not":
		child, err := fc.compile(call.Args[0])
		if err != nil {
			return nil, err
		}
		return &selNot{child: child}, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return fc.compileCmp(call)
	case "between":
		return fc.compileBetween(call)
	case "like", "starts_with", "ends_with", "contains":
		return fc.compileLike(call)
	default:
		return fc.boolFallback(pred)
	}
}

// selAnd narrows left-to-right: the right term only sees left survivors.
type selAnd struct{ l, r selNode }

func (s *selAnd) apply(ctx *selCtx, cur []int32) ([]int32, error) {
	mid, err := s.l.apply(ctx, cur)
	if err != nil {
		return nil, err
	}
	if len(mid) == 0 {
		return mid, nil
	}
	return s.r.apply(ctx, mid)
}

// selOr unions both terms evaluated under the incoming selection.
type selOr struct {
	l, r selNode
	buf  []int32
	lbuf []int32
}

func (s *selOr) apply(ctx *selCtx, cur []int32) ([]int32, error) {
	lres, err := s.l.apply(ctx, cur)
	if err != nil {
		return nil, err
	}
	// The left result's buffer may be reused by the right branch if both
	// sides share node types; snapshot it.
	s.lbuf = append(s.lbuf[:0], lres...)
	rres, err := s.r.apply(ctx, cur)
	if err != nil {
		return nil, err
	}
	if s.lbuf == nil {
		s.lbuf = []int32{}
	}
	if rres == nil {
		rres = []int32{}
	}
	s.buf = vec.OrSel(s.buf, s.lbuf, rres, ctx.ev.n)
	return s.buf, nil
}

// selNot complements the child within the incoming selection.
type selNot struct {
	child selNode
	inv   []int32
	buf   []int32
}

func (s *selNot) apply(ctx *selCtx, cur []int32) ([]int32, error) {
	res, err := s.child.apply(ctx, cur)
	if err != nil {
		return nil, err
	}
	s.inv = vec.Invert(s.inv, res, ctx.ev.n)
	s.buf = vec.AndSel(s.buf, s.inv, cur, ctx.ev.n)
	return s.buf, nil
}

// selLeaf runs a prelude program (map instructions computing operand
// registers under the current selection) and then one selection primitive.
type selLeaf struct {
	ev   *Evaluator // operand program; may be empty
	prim func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32
	dst  []int32
}

func (s *selLeaf) apply(ctx *selCtx, cur []int32) ([]int32, error) {
	b := ctx.ev.in
	if s.ev != nil {
		if _, err := s.ev.EvalSel(b, cur); err != nil {
			return nil, err
		}
		s.dst = s.prim(s.dst, s.ev.regState, cur, b.Full())
		return s.dst, nil
	}
	s.dst = s.prim(s.dst, nil, cur, b.Full())
	return s.dst, nil
}

// compileCmp builds a comparison leaf. Operand subexpressions are compiled
// into a shared evaluator whose registers the selection primitive reads.
func (fc *filterCompiler) compileCmp(call *Call) (selNode, error) {
	a, b := call.Args[0], call.Args[1]
	fn := call.Fn
	if isConstExpr(a) && !isConstExpr(b) {
		a, b = b, a
		fn = mirrorCmp(fn)
	}
	c := &compiler{inputKinds: fc.inputKinds, mode: fc.mode}
	sa, err := c.compileNode(a)
	if err != nil {
		return nil, err
	}
	var sb argSlot
	constRHS := isConstExpr(b)
	if constRHS {
		sb = argSlot{reg: -1, val: b.(*Const).Val, kind: b.Type().Kind}
	} else {
		sb, err = c.compileNode(b)
		if err != nil {
			return nil, err
		}
		sb = c.materialize(sb)
	}
	sa = c.materialize(sa)
	ev := finishProgram(c, sa.reg, a.Type().Kind)

	var prim func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32
	switch a.Type().Kind {
	case types.KindInt32, types.KindDate:
		prim, err = selCmpPrim(fn, sa.reg, sb, sI32, cI32)
	case types.KindInt64:
		prim, err = selCmpPrim(fn, sa.reg, sb, sI64, cI64)
	case types.KindFloat64:
		prim, err = selCmpPrim(fn, sa.reg, sb, sF64, cF64)
	case types.KindString:
		prim, err = selCmpPrim(fn, sa.reg, sb, sStr, cStr)
	case types.KindBool:
		return fc.boolFallback(call)
	default:
		return nil, fmt.Errorf("expr: filter comparison on %v", a.Type().Kind)
	}
	if err != nil {
		return nil, err
	}
	return &selLeaf{ev: ev, prim: prim}, nil
}

func selCmpPrim[T primitives.Ordered](
	fn string, ra int, b argSlot,
	sl func(*vec.Vector) []T, cv func(types.Value) T,
) (func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32, error) {
	if b.isConst() {
		k := cv(b.val)
		switch fn {
		case "=":
			return func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
				return primitives.SelEqVC(dst, sl(regs[ra]), k, cur, n)
			}, nil
		case "<>":
			return func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
				return primitives.SelNeVC(dst, sl(regs[ra]), k, cur, n)
			}, nil
		case "<":
			return func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
				return primitives.SelLtVC(dst, sl(regs[ra]), k, cur, n)
			}, nil
		case "<=":
			return func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
				return primitives.SelLeVC(dst, sl(regs[ra]), k, cur, n)
			}, nil
		case ">":
			return func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
				return primitives.SelGtVC(dst, sl(regs[ra]), k, cur, n)
			}, nil
		case ">=":
			return func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
				return primitives.SelGeVC(dst, sl(regs[ra]), k, cur, n)
			}, nil
		}
		return nil, fmt.Errorf("expr: comparison %q", fn)
	}
	rb := b.reg
	switch fn {
	case "=":
		return func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
			return primitives.SelEqVV(dst, sl(regs[ra]), sl(regs[rb]), cur, n)
		}, nil
	case "<>":
		return func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
			return primitives.SelNeVV(dst, sl(regs[ra]), sl(regs[rb]), cur, n)
		}, nil
	case "<":
		return func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
			return primitives.SelLtVV(dst, sl(regs[ra]), sl(regs[rb]), cur, n)
		}, nil
	case "<=":
		return func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
			return primitives.SelLeVV(dst, sl(regs[ra]), sl(regs[rb]), cur, n)
		}, nil
	case ">":
		return func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
			return primitives.SelGtVV(dst, sl(regs[ra]), sl(regs[rb]), cur, n)
		}, nil
	case ">=":
		return func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
			return primitives.SelGeVV(dst, sl(regs[ra]), sl(regs[rb]), cur, n)
		}, nil
	}
	return nil, fmt.Errorf("expr: comparison %q", fn)
}

// compileBetween builds the fused range-selection leaf when bounds are
// constant; otherwise it decomposes into AND.
func (fc *filterCompiler) compileBetween(call *Call) (selNode, error) {
	x, lo, hi := call.Args[0], call.Args[1], call.Args[2]
	if !isConstExpr(lo) || !isConstExpr(hi) {
		ge := &Call{Fn: ">=", Args: []Expr{x, lo}, T: types.Bool}
		le := &Call{Fn: "<=", Args: []Expr{x, hi}, T: types.Bool}
		return fc.compile(&Call{Fn: "and", Args: []Expr{ge, le}, T: types.Bool})
	}
	c := &compiler{inputKinds: fc.inputKinds, mode: fc.mode}
	sx, err := c.compileNode(x)
	if err != nil {
		return nil, err
	}
	sx = c.materialize(sx)
	ev := finishProgram(c, sx.reg, x.Type().Kind)
	loV, hiV := lo.(*Const).Val, hi.(*Const).Val
	var prim func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32
	ra := sx.reg
	switch x.Type().Kind {
	case types.KindInt32, types.KindDate:
		a, b := cI32(loV), cI32(hiV)
		prim = func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
			return primitives.SelBetweenVCC(dst, regs[ra].I32, a, b, cur, n)
		}
	case types.KindInt64:
		a, b := cI64(loV), cI64(hiV)
		prim = func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
			return primitives.SelBetweenVCC(dst, regs[ra].I64, a, b, cur, n)
		}
	case types.KindFloat64:
		a, b := cF64(loV), cF64(hiV)
		prim = func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
			return primitives.SelBetweenVCC(dst, regs[ra].F64, a, b, cur, n)
		}
	case types.KindString:
		a, b := loV.Str, hiV.Str
		prim = func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
			return primitives.SelBetweenVCC(dst, regs[ra].Str, a, b, cur, n)
		}
	default:
		return nil, fmt.Errorf("expr: between on %v", x.Type().Kind)
	}
	return &selLeaf{ev: ev, prim: prim}, nil
}

// compileLike builds a pattern-selection leaf (constant pattern only).
func (fc *filterCompiler) compileLike(call *Call) (selNode, error) {
	pat, ok := call.Args[1].(*Const)
	if !ok {
		return nil, fmt.Errorf("expr: %s pattern must be constant in filters", call.Fn)
	}
	c := &compiler{inputKinds: fc.inputKinds, mode: fc.mode}
	sx, err := c.compileNode(call.Args[0])
	if err != nil {
		return nil, err
	}
	sx = c.materialize(sx)
	ev := finishProgram(c, sx.reg, types.KindString)
	var m *primitives.LikeMatcher
	switch call.Fn {
	case "like":
		m = primitives.CompileLike(pat.Val.Str)
	case "starts_with":
		m = primitives.CompileLike(escapeLike(pat.Val.Str) + "%")
	case "ends_with":
		m = primitives.CompileLike("%" + escapeLike(pat.Val.Str))
	case "contains":
		m = primitives.CompileLike("%" + escapeLike(pat.Val.Str) + "%")
	}
	ra := sx.reg
	prim := func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
		return primitives.SelLikeVC(dst, regs[ra].Str, m, cur, n)
	}
	return &selLeaf{ev: ev, prim: prim}, nil
}

// boolFallback evaluates an arbitrary boolean expression to a bool vector
// and selects the true positions — the escape hatch for predicates without
// a dedicated selection primitive.
func (fc *filterCompiler) boolFallback(pred Expr) (selNode, error) {
	c := &compiler{inputKinds: fc.inputKinds, mode: fc.mode}
	s, err := c.compileNode(pred)
	if err != nil {
		return nil, err
	}
	s = c.materialize(s)
	ev := finishProgram(c, s.reg, types.KindBool)
	ra := s.reg
	prim := func(dst []int32, regs []*vec.Vector, cur []int32, n int) []int32 {
		return primitives.SelTrue(dst, regs[ra].Bool, cur, n)
	}
	return &selLeaf{ev: ev, prim: prim}, nil
}

// finishProgram packages a compiler's instruction list as an Evaluator whose
// registers a selection primitive can read.
func finishProgram(c *compiler, out int, outKind types.Kind) *Evaluator {
	ev := &Evaluator{prog: c.prog, nRegs: c.nRegs, owned: c.owned, out: out, outKind: outKind}
	ev.regState = make([]*vec.Vector, ev.nRegs)
	for _, o := range ev.owned {
		ev.regState[o.reg] = vec.New(o.kind, vec.DefaultSize)
	}
	return ev
}

func isConstExpr(e Expr) bool {
	_, ok := e.(*Const)
	return ok
}
