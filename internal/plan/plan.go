// Package plan defines the logical relational plan and the binder that
// produces it from a SQL AST. This layer plays the role of Ingres' query
// representation in Figure 1: names are resolved, types (including
// NULLability) are inferred, and the tree is ready for the optimizer.
package plan

import (
	"fmt"
	"strings"

	"vectorwise/internal/expr"
	"vectorwise/internal/types"
)

// Node is a logical plan operator.
type Node interface {
	// Schema returns the named, typed (nullable-aware) output columns.
	Schema() *types.Schema
	// Children returns input plans.
	Children() []Node
	// WithChildren rebuilds the node with new inputs (same arity).
	WithChildren(ch []Node) Node
	// String renders one line (plan printers indent children).
	String() string
}

// ColRange is a sargable restriction of one scan output column to the
// inclusive interval [Lo, Hi] (either side nil = open). The optimizer
// extracts these from pushed-down predicates; storage uses them for min/max
// block skipping while the originating Select stays in the plan, so results
// remain exact.
type ColRange struct {
	Col    int
	Lo, Hi *types.Value
}

// String renders the range for plan display.
func (r ColRange) String() string { return types.FormatRange("$", r.Col, r.Lo, r.Hi) }

// GroupWindow is the contiguous row-group interval [Lo, Hi) a clustered
// range scan needs to touch, out of Total groups. It is a planning hint
// derived from ordered zone maps at compile time: the scan re-derives the
// exact window inside its own snapshot at open time, so concurrent deltas
// and appends cannot make it wrong, only stale as an estimate.
type GroupWindow struct {
	Lo, Hi, Total int
}

// String renders the window for plan display.
func (w GroupWindow) String() string {
	return fmt.Sprintf("groups=[%d,%d)/%d", w.Lo, w.Hi, w.Total)
}

// Scan reads a base table.
type Scan struct {
	Table     string
	Alias     string
	Structure string // "vectorwise" or "heap"
	Cols      *types.Schema
	// Key is the primary-key column index (-1 if none); feeds FD reasoning.
	Key int
	// Ranges are sargable bounds for block skipping (vectorwise scans only).
	Ranges []ColRange
	// Window is the clustered group interval implied by Ranges, when a
	// range column is clustered (nil otherwise).
	Window *GroupWindow
}

// Schema implements Node.
func (s *Scan) Schema() *types.Schema { return s.Cols }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// WithChildren implements Node.
func (s *Scan) WithChildren(ch []Node) Node { return s }

// String implements Node.
func (s *Scan) String() string {
	if len(s.Ranges) > 0 {
		parts := make([]string, len(s.Ranges))
		for i, r := range s.Ranges {
			parts[i] = r.String()
		}
		if s.Window != nil {
			return fmt.Sprintf("Scan(%s:%s, ranges=[%s], %s)",
				s.Table, s.Structure, strings.Join(parts, ", "), s.Window)
		}
		return fmt.Sprintf("Scan(%s:%s, ranges=[%s])", s.Table, s.Structure, strings.Join(parts, ", "))
	}
	return fmt.Sprintf("Scan(%s:%s)", s.Table, s.Structure)
}

// Select filters rows by a predicate over the child's columns.
type Select struct {
	Child Node
	Pred  expr.Expr
}

// Schema implements Node.
func (s *Select) Schema() *types.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Select) Children() []Node { return []Node{s.Child} }

// WithChildren implements Node.
func (s *Select) WithChildren(ch []Node) Node { return &Select{Child: ch[0], Pred: s.Pred} }

// String implements Node.
func (s *Select) String() string { return "Select(" + s.Pred.String() + ")" }

// Project computes expressions.
type Project struct {
	Child Node
	Exprs []expr.Expr
	Names []string
}

// Schema implements Node.
func (p *Project) Schema() *types.Schema {
	s := &types.Schema{}
	for i, e := range p.Exprs {
		s.Cols = append(s.Cols, types.Col(p.Names[i], e.Type()))
	}
	return s
}

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// WithChildren implements Node.
func (p *Project) WithChildren(ch []Node) Node {
	return &Project{Child: ch[0], Exprs: p.Exprs, Names: p.Names}
}

// String implements Node.
func (p *Project) String() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// JoinKind enumerates logical join types.
type JoinKind uint8

// The join kinds; AntiNull carries NOT IN NULL semantics.
const (
	JoinInner JoinKind = iota
	JoinLeft
	JoinCross
	JoinSemi
	JoinAnti
	JoinAntiNull
)

// String names the kind.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "inner"
	case JoinLeft:
		return "left"
	case JoinCross:
		return "cross"
	case JoinSemi:
		return "semi"
	case JoinAnti:
		return "anti"
	case JoinAntiNull:
		return "anti-null"
	default:
		return "?"
	}
}

// Join combines two inputs. On references the concatenated left++right
// columns; the optimizer extracts hash keys from equality conjuncts.
type Join struct {
	Kind        JoinKind
	Left, Right Node
	On          expr.Expr // nil for cross
}

// Schema implements Node: semi/anti expose only left columns; left outer
// makes right columns nullable.
func (j *Join) Schema() *types.Schema {
	s := &types.Schema{}
	s.Cols = append(s.Cols, j.Left.Schema().Cols...)
	switch j.Kind {
	case JoinSemi, JoinAnti, JoinAntiNull:
		return s
	case JoinLeft:
		for _, c := range j.Right.Schema().Cols {
			c.Type = c.Type.Null()
			s.Cols = append(s.Cols, c)
		}
		return s
	default:
		s.Cols = append(s.Cols, j.Right.Schema().Cols...)
		return s
	}
}

// Children implements Node.
func (j *Join) Children() []Node { return []Node{j.Left, j.Right} }

// WithChildren implements Node.
func (j *Join) WithChildren(ch []Node) Node {
	return &Join{Kind: j.Kind, Left: ch[0], Right: ch[1], On: j.On}
}

// String implements Node.
func (j *Join) String() string {
	on := ""
	if j.On != nil {
		on = " on " + j.On.String()
	}
	return "Join(" + j.Kind.String() + on + ")"
}

// AggItem is one aggregate computation over a child column.
type AggItem struct {
	Fn  string // count, sum, min, max, avg
	Col int    // child column; -1 for COUNT(*)
}

// Aggregate groups by child columns and computes aggregates.
type Aggregate struct {
	Child     Node
	GroupCols []int
	Aggs      []AggItem
	Names     []string // names for group cols then aggs
}

// Schema implements Node.
func (a *Aggregate) Schema() *types.Schema {
	in := a.Child.Schema()
	s := &types.Schema{}
	for i, g := range a.GroupCols {
		c := in.Cols[g]
		c.Name = a.Names[i]
		s.Cols = append(s.Cols, c)
	}
	for i, it := range a.Aggs {
		t := aggType(it, in)
		s.Cols = append(s.Cols, types.Col(a.Names[len(a.GroupCols)+i], t))
	}
	return s
}

func aggType(it AggItem, in *types.Schema) types.T {
	switch it.Fn {
	case "count":
		return types.Int64 // never NULL
	case "avg":
		return types.Float64.Null() // NULL over empty groups
	case "sum":
		k := in.Cols[it.Col].Type.Kind
		if k == types.KindFloat64 {
			return types.Float64.Null()
		}
		return types.Int64.Null()
	default: // min, max
		return in.Cols[it.Col].Type.Null()
	}
}

// Children implements Node.
func (a *Aggregate) Children() []Node { return []Node{a.Child} }

// WithChildren implements Node.
func (a *Aggregate) WithChildren(ch []Node) Node {
	return &Aggregate{Child: ch[0], GroupCols: a.GroupCols, Aggs: a.Aggs, Names: a.Names}
}

// String implements Node.
func (a *Aggregate) String() string {
	return fmt.Sprintf("Aggregate(groups=%v aggs=%v)", a.GroupCols, a.Aggs)
}

// SortKey orders by one output column.
type SortKey struct {
	Col  int
	Desc bool
}

// Sort orders rows.
type Sort struct {
	Child Node
	Keys  []SortKey
}

// Schema implements Node.
func (s *Sort) Schema() *types.Schema { return s.Child.Schema() }

// Children implements Node.
func (s *Sort) Children() []Node { return []Node{s.Child} }

// WithChildren implements Node.
func (s *Sort) WithChildren(ch []Node) Node { return &Sort{Child: ch[0], Keys: s.Keys} }

// String implements Node.
func (s *Sort) String() string { return fmt.Sprintf("Sort(%v)", s.Keys) }

// Limit caps output.
type Limit struct {
	Child  Node
	Offset int64
	N      int64 // -1 = no limit (offset only)
}

// Schema implements Node.
func (l *Limit) Schema() *types.Schema { return l.Child.Schema() }

// Children implements Node.
func (l *Limit) Children() []Node { return []Node{l.Child} }

// WithChildren implements Node.
func (l *Limit) WithChildren(ch []Node) Node {
	return &Limit{Child: ch[0], Offset: l.Offset, N: l.N}
}

// String implements Node.
func (l *Limit) String() string { return fmt.Sprintf("Limit(%d,%d)", l.Offset, l.N) }

// Values is a literal relation (INSERT ... VALUES, constant SELECT).
type Values struct {
	Rows []([]types.Value)
	Cols *types.Schema
}

// Schema implements Node.
func (v *Values) Schema() *types.Schema { return v.Cols }

// Children implements Node.
func (v *Values) Children() []Node { return nil }

// WithChildren implements Node.
func (v *Values) WithChildren(ch []Node) Node { return v }

// String implements Node.
func (v *Values) String() string { return fmt.Sprintf("Values(%d rows)", len(v.Rows)) }

// Format renders a plan tree indented.
func Format(n Node) string {
	var b strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.String())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}
