package plan

import (
	"fmt"

	"vectorwise/internal/expr"
	"vectorwise/internal/sql"
	"vectorwise/internal/types"
)

// bindExpr lowers an AST expression into a typed expr tree over the scope's
// columns. hook (may be nil) gets first shot at every node — the aggregate
// scope uses it to capture group expressions and aggregate calls.
func (b *Binder) bindExpr(sc *scope, n sql.ExprNode, hook leafHook) (expr.Expr, error) {
	if hook != nil {
		if e, ok, err := hook(n); err != nil {
			return nil, err
		} else if ok {
			return e, nil
		}
	}
	switch e := n.(type) {
	case *sql.Lit:
		return &expr.Const{Val: e.Val}, nil
	case *sql.ColName:
		return sc.resolve(e.Table, e.Name)
	case *sql.UnOp:
		child, err := b.bindExpr(sc, e.E, hook)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "-":
			if c, ok := child.(*expr.Const); ok && c.Val.Kind.Numeric() {
				v := c.Val
				if v.Kind == types.KindFloat64 {
					v.F64 = -v.F64
				} else {
					v.I64 = -v.I64
				}
				return &expr.Const{Val: v}, nil
			}
			return expr.TryCall("neg", child)
		case "not":
			return expr.TryCall("not", child)
		}
		return nil, fmt.Errorf("plan: unary %q", e.Op)
	case *sql.BinOp:
		return b.bindBinOp(sc, e, hook)
	case *sql.FuncCall:
		return b.bindFunc(sc, e, hook)
	case *sql.CaseExpr:
		return b.bindCase(sc, e, hook)
	case *sql.CastExpr:
		child, err := b.bindExpr(sc, e.E, hook)
		if err != nil {
			return nil, err
		}
		if isUntypedNull(child) {
			return &expr.Const{Val: types.NewNull(e.To.Kind)}, nil
		}
		if child.Type().Kind == e.To.Kind {
			return child, nil
		}
		return expr.Promote(child, e.To.Kind), nil
	case *sql.IsNullExpr:
		child, err := b.bindExpr(sc, e.E, hook)
		if err != nil {
			return nil, err
		}
		if isUntypedNull(child) {
			return expr.CBool(!e.Not), nil
		}
		fn := "isnull"
		if e.Not {
			fn = "isnotnull"
		}
		if !child.Type().Nullable {
			return expr.CBool(e.Not), nil
		}
		return expr.TryCall(fn, child)
	case *sql.BetweenExpr:
		x, err := b.bindExpr(sc, e.E, hook)
		if err != nil {
			return nil, err
		}
		lo, err := b.bindExpr(sc, e.Lo, hook)
		if err != nil {
			return nil, err
		}
		hi, err := b.bindExpr(sc, e.Hi, hook)
		if err != nil {
			return nil, err
		}
		x, lo, err = promotePair(x, lo)
		if err != nil {
			return nil, err
		}
		x, hi, err = promotePair(x, hi)
		if err != nil {
			return nil, err
		}
		// Re-promote lo in case x widened.
		x, lo, err = promotePair(x, lo)
		if err != nil {
			return nil, err
		}
		out, err := expr.TryCall("between", x, lo, hi)
		if err != nil {
			return nil, err
		}
		if e.Not {
			return expr.TryCall("not", out)
		}
		return out, nil
	case *sql.InExpr:
		if e.Sub != nil {
			return nil, fmt.Errorf("plan: IN subquery is only supported as a top-level WHERE conjunct")
		}
		lhs, err := b.bindExpr(sc, e.E, hook)
		if err != nil {
			return nil, err
		}
		var out expr.Expr
		for _, item := range e.List {
			rhs, err := b.bindExpr(sc, item, hook)
			if err != nil {
				return nil, err
			}
			l2, r2, err := promotePair(lhs, rhs)
			if err != nil {
				return nil, err
			}
			eq, err := expr.TryCall("=", l2, r2)
			if err != nil {
				return nil, err
			}
			if out == nil {
				out = eq
			} else {
				out = expr.NewCall("or", out, eq)
			}
		}
		if out == nil {
			out = expr.CBool(false)
		}
		if e.Not {
			return expr.TryCall("not", out)
		}
		return out, nil
	case *sql.ExistsExpr:
		return nil, fmt.Errorf("plan: EXISTS is only supported as a top-level WHERE conjunct")
	case *sql.SubqueryExpr:
		if b.EvalScalarSub == nil {
			return nil, fmt.Errorf("plan: scalar subqueries need an executor")
		}
		v, err := b.EvalScalarSub(e.Sub)
		if err != nil {
			return nil, err
		}
		return &expr.Const{Val: v}, nil
	}
	return nil, fmt.Errorf("plan: unsupported expression %T", n)
}

func isUntypedNull(e expr.Expr) bool {
	c, ok := e.(*expr.Const)
	return ok && c.Val.Null && c.Val.Kind == types.KindInvalid
}

// promotePair makes two operands type-compatible: numeric widening, typing
// of NULL literals, date arithmetic left alone.
func promotePair(a, b expr.Expr) (expr.Expr, expr.Expr, error) {
	switch {
	case isUntypedNull(a) && isUntypedNull(b):
		return nil, nil, fmt.Errorf("plan: cannot type NULL against NULL")
	case isUntypedNull(a):
		return &expr.Const{Val: types.NewNull(b.Type().Kind)}, b, nil
	case isUntypedNull(b):
		return a, &expr.Const{Val: types.NewNull(a.Type().Kind)}, nil
	}
	ak, bk := a.Type().Kind, b.Type().Kind
	if ak == bk {
		return a, b, nil
	}
	if k := types.CommonNumeric(ak, bk); k != types.KindInvalid {
		return expr.Promote(a, k), expr.Promote(b, k), nil
	}
	// DATE vs integer stays as-is for date arithmetic.
	if ak == types.KindDate && bk.Integral() || bk == types.KindDate && ak.Integral() {
		return a, b, nil
	}
	return nil, nil, fmt.Errorf("plan: incompatible types %v and %v", a.Type(), b.Type())
}

func (b *Binder) bindBinOp(sc *scope, e *sql.BinOp, hook leafHook) (expr.Expr, error) {
	l, err := b.bindExpr(sc, e.L, hook)
	if err != nil {
		return nil, err
	}
	r, err := b.bindExpr(sc, e.R, hook)
	if err != nil {
		return nil, err
	}
	switch e.Op {
	case "and", "or":
		return expr.TryCall(e.Op, l, r)
	case "like":
		return expr.TryCall("like", l, r)
	case "||":
		if l.Type().Kind != types.KindString || r.Type().Kind != types.KindString {
			// String concatenation casts its operands.
			if l.Type().Kind != types.KindString {
				l = expr.Promote(l, types.KindString)
			}
			if r.Type().Kind != types.KindString {
				r = expr.Promote(r, types.KindString)
			}
		}
		return expr.TryCall("||", l, r)
	case "+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=":
		l2, r2, err := promotePair(l, r)
		if err != nil {
			return nil, err
		}
		return expr.TryCall(e.Op, l2, r2)
	}
	return nil, fmt.Errorf("plan: binary operator %q", e.Op)
}

// funcAlias maps SQL-surface function names onto kernel catalog names —
// part of the paper's "Many Functions" story: the surface area is wide,
// the kernel's primitive set narrow.
var funcAlias = map[string]string{
	"substring":   "substr",
	"char_length": "length",
	"len":         "length",
	"ceiling":     "ceil",
	"pow":         "power",
	"datediff":    "date_diff",
	"adddate":     "date_add",
	"dayofweek":   "dayofweek",
	"greatest":    "max2",
	"least":       "min2",
	"concat":      "||",
	"nvl":         "ifnull",
}

func (b *Binder) bindFunc(sc *scope, e *sql.FuncCall, hook leafHook) (expr.Expr, error) {
	if isAggName(e.Name) {
		return nil, fmt.Errorf("plan: aggregate %s in a non-aggregating context", e.Name)
	}
	name := e.Name
	if alias, ok := funcAlias[name]; ok {
		name = alias
	}
	args := make([]expr.Expr, len(e.Args))
	for i, a := range e.Args {
		bound, err := b.bindExpr(sc, a, hook)
		if err != nil {
			return nil, err
		}
		args[i] = bound
	}
	// Multi-arg coalesce/concat fold right.
	if (name == "coalesce" || name == "||") && len(args) > 2 {
		out := args[len(args)-1]
		for i := len(args) - 2; i >= 0; i-- {
			var err error
			o, err := expr.TryCall(name, args[i], out)
			if err != nil {
				return nil, err
			}
			out = o
		}
		return out, nil
	}
	// substr with 2 args: to end of string.
	if name == "substr" && len(args) == 2 {
		args = append(args, expr.CInt(1<<31))
	}
	// Math functions take DOUBLE: promote numeric args.
	switch name {
	case "sqrt", "ln", "exp", "floor", "ceil", "power":
		for i := range args {
			if args[i].Type().Kind.Integral() {
				args[i] = expr.Promote(args[i], types.KindFloat64)
			}
		}
	case "round":
		if len(args) == 1 {
			args = append(args, expr.CInt(0))
		}
		if args[0].Type().Kind.Integral() {
			args[0] = expr.Promote(args[0], types.KindFloat64)
		}
	case "min2", "max2", "ifnull", "coalesce":
		if len(args) == 2 {
			l2, r2, err := promotePair(args[0], args[1])
			if err != nil {
				return nil, err
			}
			args[0], args[1] = l2, r2
		}
	case "mod":
		if len(args) == 2 {
			l2, r2, err := promotePair(args[0], args[1])
			if err != nil {
				return nil, err
			}
			args[0], args[1] = l2, r2
		}
	}
	return expr.TryCall(name, args...)
}

func (b *Binder) bindCase(sc *scope, e *sql.CaseExpr, hook leafHook) (expr.Expr, error) {
	// Bind branches, unify types, then fold WHENs right-to-left into
	// nested if().
	var conds []expr.Expr
	var thens []expr.Expr
	for _, w := range e.Whens {
		c, err := b.bindExpr(sc, w.Cond, hook)
		if err != nil {
			return nil, err
		}
		if c.Type().Kind != types.KindBool {
			return nil, fmt.Errorf("plan: CASE condition must be boolean")
		}
		t, err := b.bindExpr(sc, w.Then, hook)
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
		thens = append(thens, t)
	}
	var els expr.Expr
	if e.Else != nil {
		bound, err := b.bindExpr(sc, e.Else, hook)
		if err != nil {
			return nil, err
		}
		els = bound
	}
	// Determine the unified branch kind.
	kind := types.KindInvalid
	nullable := els == nil
	consider := func(ex expr.Expr) error {
		if ex == nil || isUntypedNull(ex) {
			nullable = true
			return nil
		}
		k := ex.Type().Kind
		if ex.Type().Nullable {
			nullable = true
		}
		if kind == types.KindInvalid {
			kind = k
			return nil
		}
		if kind == k {
			return nil
		}
		if ck := types.CommonNumeric(kind, k); ck != types.KindInvalid {
			kind = ck
			return nil
		}
		return fmt.Errorf("plan: CASE branches mix %v and %v", kind, k)
	}
	for _, t := range thens {
		if err := consider(t); err != nil {
			return nil, err
		}
	}
	if err := consider(els); err != nil {
		return nil, err
	}
	if kind == types.KindInvalid {
		return nil, fmt.Errorf("plan: cannot type CASE of all NULLs")
	}
	coerce := func(ex expr.Expr) expr.Expr {
		if ex == nil || isUntypedNull(ex) {
			return &expr.Const{Val: types.NewNull(kind)}
		}
		if ex.Type().Kind != kind {
			return expr.Promote(ex, kind)
		}
		return ex
	}
	out := coerce(els)
	for i := len(conds) - 1; i >= 0; i-- {
		var err error
		out, err = expr.TryCall("if", conds[i], coerce(thens[i]), out)
		if err != nil {
			return nil, err
		}
	}
	_ = nullable
	return out, nil
}
