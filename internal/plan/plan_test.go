package plan

import (
	"fmt"
	"strings"
	"testing"

	"vectorwise/internal/sql"
	"vectorwise/internal/types"
)

type fakeCatalog map[string]*TableMeta

func (c fakeCatalog) ResolveTable(name string) (*TableMeta, error) {
	if m, ok := c[name]; ok {
		return m, nil
	}
	return nil, fmt.Errorf("no table %q", name)
}

func testCatalog() fakeCatalog {
	return fakeCatalog{
		"items": {
			Name:      "items",
			Structure: "vectorwise",
			Key:       0,
			Schema: types.NewSchema(
				types.Col("id", types.Int64),
				types.Col("grp", types.Int64),
				types.Col("price", types.Float64.Null()),
				types.Col("name", types.String),
				types.Col("d", types.Date),
			),
		},
		"groups": {
			Name:      "groups",
			Structure: "vectorwise",
			Key:       0,
			Schema: types.NewSchema(
				types.Col("gid", types.Int64),
				types.Col("label", types.String),
			),
		},
	}
}

func bind(t *testing.T, src string) Node {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b := &Binder{Cat: testCatalog()}
	n, err := b.BindSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	return n
}

func bindErr(t *testing.T, src string) error {
	t.Helper()
	stmt, err := sql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b := &Binder{Cat: testCatalog()}
	_, err = b.BindSelect(stmt.(*sql.SelectStmt))
	if err == nil {
		t.Fatalf("bind %q: expected error", src)
	}
	return err
}

func TestBindSimple(t *testing.T) {
	n := bind(t, "SELECT id, price FROM items WHERE grp = 3")
	s := n.Schema()
	if s.Len() != 2 || s.Cols[0].Name != "id" || s.Cols[1].Type.Kind != types.KindFloat64 {
		t.Fatalf("schema: %s", s)
	}
	if !s.Cols[1].Type.Nullable || s.Cols[0].Type.Nullable {
		t.Fatal("nullability lost")
	}
	// Shape: Project(Select(Scan)).
	p, ok := n.(*Project)
	if !ok {
		t.Fatalf("top: %T", n)
	}
	if _, ok := p.Child.(*Select); !ok {
		t.Fatalf("mid: %T", p.Child)
	}
}

func TestBindStar(t *testing.T) {
	n := bind(t, "SELECT * FROM items")
	if n.Schema().Len() != 5 {
		t.Fatalf("star: %s", n.Schema())
	}
}

func TestBindArithmeticPromotion(t *testing.T) {
	n := bind(t, "SELECT id + price FROM items")
	if n.Schema().Cols[0].Type.Kind != types.KindFloat64 {
		t.Fatalf("promotion: %s", n.Schema())
	}
	if !n.Schema().Cols[0].Type.Nullable {
		t.Fatal("nullable arith must stay nullable")
	}
}

func TestBindJoin(t *testing.T) {
	n := bind(t, "SELECT i.id, g.label FROM items i JOIN groups g ON i.grp = g.gid")
	if n.Schema().Len() != 2 || n.Schema().Cols[1].Name != "label" {
		t.Fatalf("join schema: %s", n.Schema())
	}
	// Left outer makes right side nullable.
	n2 := bind(t, "SELECT g.label FROM items i LEFT JOIN groups g ON i.grp = g.gid")
	if !n2.Schema().Cols[0].Type.Nullable {
		t.Fatal("left join right side must become nullable")
	}
}

func TestBindAmbiguousAndMissing(t *testing.T) {
	bindErr(t, "SELECT id FROM items i JOIN items j ON i.id = j.id")
	bindErr(t, "SELECT nosuch FROM items")
	bindErr(t, "SELECT * FROM nosuchtable")
}

func TestBindAggregate(t *testing.T) {
	n := bind(t, "SELECT grp, COUNT(*), SUM(price), AVG(price) FROM items GROUP BY grp HAVING COUNT(*) > 1")
	s := n.Schema()
	if s.Len() != 4 {
		t.Fatalf("agg schema: %s", s)
	}
	if s.Cols[1].Type.Kind != types.KindInt64 || s.Cols[3].Type.Kind != types.KindFloat64 {
		t.Fatalf("agg types: %s", s)
	}
	// Column not in GROUP BY is rejected.
	bindErr(t, "SELECT id FROM items GROUP BY grp")
	// Aggregates of aggregates rejected via function resolution.
	bindErr(t, "SELECT SUM(price) FROM items WHERE SUM(price) > 1")
}

func TestBindGroupByExpression(t *testing.T) {
	n := bind(t, "SELECT grp % 2, COUNT(*) FROM items GROUP BY grp % 2")
	if n.Schema().Len() != 2 {
		t.Fatalf("schema: %s", n.Schema())
	}
}

func TestBindOrderLimitDistinct(t *testing.T) {
	n := bind(t, "SELECT grp FROM items ORDER BY grp DESC LIMIT 5 OFFSET 2")
	lim, ok := n.(*Limit)
	if !ok || lim.N != 5 || lim.Offset != 2 {
		t.Fatalf("limit: %T", n)
	}
	if _, ok := lim.Child.(*Sort); !ok {
		t.Fatalf("sort: %T", lim.Child)
	}
	// ORDER BY an expression not in the select list: hidden column dropped.
	n2 := bind(t, "SELECT id FROM items ORDER BY price")
	if n2.Schema().Len() != 1 {
		t.Fatalf("hidden sort col leaked: %s", n2.Schema())
	}
	n3 := bind(t, "SELECT DISTINCT grp FROM items")
	if _, ok := n3.(*Aggregate); !ok {
		t.Fatalf("distinct: %T", n3)
	}
}

func TestBindSubqueryPredicates(t *testing.T) {
	n := bind(t, "SELECT id FROM items WHERE grp IN (SELECT gid FROM groups)")
	found := false
	var walk func(Node)
	walk = func(nd Node) {
		if j, ok := nd.(*Join); ok && j.Kind == JoinSemi {
			found = true
		}
		for _, c := range nd.Children() {
			walk(c)
		}
	}
	walk(n)
	if !found {
		t.Fatalf("IN subquery did not become semi join:\n%s", Format(n))
	}
	// NOT IN over nullable → null-aware anti join.
	n2 := bind(t, "SELECT id FROM items WHERE price NOT IN (SELECT price FROM items)")
	foundAnti := false
	walk2 := func(nd Node) {}
	var rec func(Node)
	rec = func(nd Node) {
		if j, ok := nd.(*Join); ok && j.Kind == JoinAntiNull {
			foundAnti = true
		}
		for _, c := range nd.Children() {
			rec(c)
		}
	}
	rec(n2)
	_ = walk2
	if !foundAnti {
		t.Fatalf("NOT IN nullable did not become anti-null join:\n%s", Format(n2))
	}
	// EXISTS.
	n3 := bind(t, "SELECT id FROM items WHERE EXISTS (SELECT 1 FROM groups)")
	foundSemi := false
	var rec3 func(Node)
	rec3 = func(nd Node) {
		if j, ok := nd.(*Join); ok && j.Kind == JoinSemi {
			foundSemi = true
		}
		for _, c := range nd.Children() {
			rec3(c)
		}
	}
	rec3(n3)
	if !foundSemi {
		t.Fatal("EXISTS did not become semi join")
	}
}

func TestBindScalarSubquery(t *testing.T) {
	stmt, _ := sql.Parse("SELECT id FROM items WHERE price > (SELECT AVG(price) FROM items)")
	b := &Binder{Cat: testCatalog(), EvalScalarSub: func(*sql.SelectStmt) (types.Value, error) {
		return types.NewFloat64(42.5), nil
	}}
	n, err := b.BindSelect(stmt.(*sql.SelectStmt))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Format(n), "42.5") {
		t.Fatalf("subquery constant missing:\n%s", Format(n))
	}
}

func TestBindCaseInListFunctions(t *testing.T) {
	n := bind(t, `SELECT CASE WHEN grp > 2 THEN 'hi' ELSE 'lo' END,
		grp IN (1, 2, 3),
		UPPER(name), SUBSTRING(name, 1, 2), ROUND(price), YEAR(d)
		FROM items`)
	s := n.Schema()
	if s.Cols[0].Type.Kind != types.KindString || s.Cols[1].Type.Kind != types.KindBool {
		t.Fatalf("case/in types: %s", s)
	}
	if s.Cols[5].Type.Kind != types.KindInt32 {
		t.Fatalf("year type: %s", s)
	}
}

func TestBindIsNull(t *testing.T) {
	n := bind(t, "SELECT price IS NULL, id IS NULL FROM items")
	// id is NOT NULL → folds to constant false.
	p := n.(*Project)
	if p.Exprs[1].String() != "false" {
		t.Fatalf("non-nullable IS NULL should fold: %s", p.Exprs[1])
	}
	if p.Exprs[0].String() != "isnull(price)" {
		t.Fatalf("nullable IS NULL: %s", p.Exprs[0])
	}
}

func TestBindNullLiteralTyping(t *testing.T) {
	n := bind(t, "SELECT price = NULL FROM items")
	if n.Schema().Cols[0].Type.Kind != types.KindBool {
		t.Fatal("null compare typing")
	}
	bindErr(t, "SELECT NULL = NULL FROM items")
}

func TestBindDerivedTable(t *testing.T) {
	n := bind(t, "SELECT s.total FROM (SELECT grp, SUM(price) AS total FROM items GROUP BY grp) s WHERE s.total > 10")
	if n.Schema().Len() != 1 || n.Schema().Cols[0].Name != "total" {
		t.Fatalf("derived: %s", n.Schema())
	}
}

func TestFormatPlan(t *testing.T) {
	n := bind(t, "SELECT id FROM items WHERE grp = 1")
	f := Format(n)
	if !strings.Contains(f, "Scan(items:vectorwise)") || !strings.Contains(f, "Select(") {
		t.Fatalf("format:\n%s", f)
	}
}
