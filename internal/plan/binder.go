package plan

import (
	"fmt"

	"vectorwise/internal/expr"
	"vectorwise/internal/sql"
	"vectorwise/internal/types"
)

// Catalog resolves table names for the binder.
type Catalog interface {
	// ResolveTable returns metadata for a table.
	ResolveTable(name string) (*TableMeta, error)
}

// TableMeta describes a catalog table.
type TableMeta struct {
	Name      string
	Schema    *types.Schema // logical schema (nullability included)
	Structure string        // "vectorwise" or "heap"
	Key       int           // primary key column index, -1 if none
}

// Binder turns SQL ASTs into logical plans.
type Binder struct {
	Cat Catalog
	// EvalScalarSub executes an uncorrelated scalar subquery and returns
	// its single value; wired up by the engine (which owns execution).
	EvalScalarSub func(*sql.SelectStmt) (types.Value, error)
}

// scopeCol is one visible column during name resolution.
type scopeCol struct {
	qual string
	name string
	idx  int
	typ  types.T
}

type scope struct {
	cols []scopeCol
}

func scopeOf(qual string, s *types.Schema, base int) *scope {
	sc := &scope{}
	for i, c := range s.Cols {
		sc.cols = append(sc.cols, scopeCol{qual: qual, name: c.Name, idx: base + i, typ: c.Type})
	}
	return sc
}

func (sc *scope) merge(other *scope) *scope {
	out := &scope{}
	out.cols = append(out.cols, sc.cols...)
	out.cols = append(out.cols, other.cols...)
	return out
}

func (sc *scope) resolve(qual, name string) (*expr.ColRef, error) {
	var found *scopeCol
	for i := range sc.cols {
		c := &sc.cols[i]
		if c.name != name {
			continue
		}
		if qual != "" && c.qual != qual {
			continue
		}
		if found != nil {
			return nil, fmt.Errorf("plan: column %q is ambiguous", name)
		}
		found = c
	}
	if found == nil {
		if qual != "" {
			return nil, fmt.Errorf("plan: no column %s.%s", qual, name)
		}
		return nil, fmt.Errorf("plan: no column %q", name)
	}
	return expr.Col(found.idx, found.name, found.typ), nil
}

// leafHook gets first shot at AST nodes during expression binding; used to
// route group-by expressions and aggregate calls to aggregate outputs.
type leafHook func(n sql.ExprNode) (expr.Expr, bool, error)

// BindExprNoCols binds an expression with no columns in scope (literal
// rows, DEFAULT-style expressions).
func (b *Binder) BindExprNoCols(n sql.ExprNode) (expr.Expr, error) {
	return b.bindExpr(&scope{}, n, nil)
}

// BindExprOver binds an expression over a bare schema (DML predicates and
// SET clauses).
func (b *Binder) BindExprOver(s *types.Schema, n sql.ExprNode) (expr.Expr, error) {
	return b.bindExpr(scopeOf("", s, 0), n, nil)
}

// BindSelect binds a query into a logical plan.
func (b *Binder) BindSelect(s *sql.SelectStmt) (Node, error) {
	// 1. FROM.
	var root Node
	var sc *scope
	if len(s.From) == 0 {
		root = &Values{Rows: [][]types.Value{{}}, Cols: &types.Schema{}}
		sc = &scope{}
	} else {
		var err error
		root, sc, err = b.bindFrom(s.From[0])
		if err != nil {
			return nil, err
		}
		for _, tr := range s.From[1:] {
			rhs, rsc, err := b.bindFrom(tr)
			if err != nil {
				return nil, err
			}
			rsc2 := &scope{}
			for _, c := range rsc.cols {
				c.idx += root.Schema().Len()
				rsc2.cols = append(rsc2.cols, c)
			}
			root = &Join{Kind: JoinCross, Left: root, Right: rhs}
			sc = sc.merge(rsc2)
		}
	}
	// 2. WHERE — conjunct by conjunct so subquery predicates become joins.
	if s.Where != nil {
		var err error
		root, sc, err = b.bindWhere(root, sc, s.Where)
		if err != nil {
			return nil, err
		}
	}
	// 3. Aggregation.
	aggCalls := collectAggs(s)
	grouped := len(s.GroupBy) > 0 || len(aggCalls) > 0
	var hook leafHook
	if grouped {
		var err error
		root, hook, err = b.bindAggregate(root, sc, s, aggCalls)
		if err != nil {
			return nil, err
		}
		// Post-aggregation scope is positional through the hook only.
		sc = &scope{}
	}
	// 4. HAVING.
	if s.Having != nil {
		if !grouped {
			return nil, fmt.Errorf("plan: HAVING without aggregation")
		}
		pred, err := b.bindExpr(sc, s.Having, hook)
		if err != nil {
			return nil, err
		}
		if pred.Type().Kind != types.KindBool {
			return nil, fmt.Errorf("plan: HAVING must be boolean")
		}
		root = &Select{Child: root, Pred: pred}
	}
	// 5. Select list.
	var exprs []expr.Expr
	var names []string
	for i, item := range s.Items {
		if item.Star {
			if grouped {
				return nil, fmt.Errorf("plan: SELECT * with GROUP BY")
			}
			for _, c := range sc.cols {
				exprs = append(exprs, expr.Col(c.idx, c.name, c.typ))
				names = append(names, c.name)
			}
			continue
		}
		e, err := b.bindExpr(sc, item.Expr, hook)
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, e)
		name := item.Alias
		if name == "" {
			name = deriveName(item.Expr, i)
		}
		names = append(names, name)
	}
	visible := len(exprs)
	// 6. ORDER BY keys: output aliases and ordinals resolve against the
	// select list; otherwise reuse a projected expression or append hidden
	// columns.
	var sortKeys []SortKey
	for _, oi := range s.OrderBy {
		if key, ok := orderTarget(oi.Expr, s.Items, names); ok {
			sortKeys = append(sortKeys, SortKey{Col: key, Desc: oi.Desc})
			continue
		}
		e, err := b.bindExpr(sc, oi.Expr, hook)
		if err != nil {
			return nil, err
		}
		key := -1
		for i, pe := range exprs {
			if expr.Equal(pe, e) {
				key = i
				break
			}
		}
		if key < 0 {
			key = len(exprs)
			exprs = append(exprs, e)
			names = append(names, fmt.Sprintf("$sort%d", key))
		}
		sortKeys = append(sortKeys, SortKey{Col: key, Desc: oi.Desc})
	}
	root = &Project{Child: root, Exprs: exprs, Names: names}
	// 7. DISTINCT.
	if s.Distinct {
		if len(sortKeys) > 0 {
			return nil, fmt.Errorf("plan: DISTINCT with ORDER BY is not supported")
		}
		n := root.Schema().Len()
		groups := make([]int, n)
		dn := make([]string, n)
		for i := range groups {
			groups[i] = i
			dn[i] = root.Schema().Cols[i].Name
		}
		root = &Aggregate{Child: root, GroupCols: groups, Names: dn}
	}
	// 8. Sort + drop hidden columns.
	if len(sortKeys) > 0 {
		root = &Sort{Child: root, Keys: sortKeys}
		if len(exprs) > visible {
			var ve []expr.Expr
			var vn []string
			for i := 0; i < visible; i++ {
				c := root.Schema().Cols[i]
				ve = append(ve, expr.Col(i, c.Name, c.Type))
				vn = append(vn, c.Name)
			}
			root = &Project{Child: root, Exprs: ve, Names: vn}
		}
	}
	// 9. LIMIT / OFFSET.
	if s.Limit >= 0 || s.Offset > 0 {
		root = &Limit{Child: root, Offset: s.Offset, N: s.Limit}
	}
	return root, nil
}

// orderTarget resolves ORDER BY <alias> and ORDER BY <ordinal> against the
// select list.
func orderTarget(e sql.ExprNode, items []sql.SelectItem, names []string) (int, bool) {
	switch n := e.(type) {
	case *sql.ColName:
		if n.Table != "" {
			return 0, false
		}
		for i, name := range names {
			if name == n.Name {
				return i, true
			}
		}
		_ = items
	case *sql.Lit:
		if n.Val.Kind.Integral() && !n.Val.Null {
			ord := int(n.Val.AsInt())
			if ord >= 1 && ord <= len(names) {
				return ord - 1, true
			}
		}
	}
	return 0, false
}

func deriveName(e sql.ExprNode, i int) string {
	switch n := e.(type) {
	case *sql.ColName:
		return n.Name
	case *sql.FuncCall:
		return n.Name
	default:
		return fmt.Sprintf("col%d", i)
	}
}

// bindFrom binds one FROM element.
func (b *Binder) bindFrom(tr sql.TableRef) (Node, *scope, error) {
	switch t := tr.(type) {
	case *sql.BaseTable:
		meta, err := b.Cat.ResolveTable(t.Name)
		if err != nil {
			return nil, nil, err
		}
		qual := t.Alias
		if qual == "" {
			qual = t.Name
		}
		scan := &Scan{Table: meta.Name, Alias: qual, Structure: meta.Structure,
			Cols: meta.Schema.Clone(), Key: meta.Key}
		return scan, scopeOf(qual, scan.Cols, 0), nil
	case *sql.SubqueryTable:
		sub, err := b.BindSelect(t.Query)
		if err != nil {
			return nil, nil, err
		}
		return sub, scopeOf(t.Alias, sub.Schema(), 0), nil
	case *sql.JoinRef:
		left, lsc, err := b.bindFrom(t.Left)
		if err != nil {
			return nil, nil, err
		}
		right, rsc, err := b.bindFrom(t.Right)
		if err != nil {
			return nil, nil, err
		}
		rsc2 := &scope{}
		for _, c := range rsc.cols {
			c.idx += left.Schema().Len()
			rsc2.cols = append(rsc2.cols, c)
		}
		joint := lsc.merge(rsc2)
		var kind JoinKind
		switch t.Kind {
		case "inner":
			kind = JoinInner
		case "left":
			kind = JoinLeft
		case "cross":
			kind = JoinCross
		case "semi":
			kind = JoinSemi
		case "anti":
			kind = JoinAnti
		default:
			return nil, nil, fmt.Errorf("plan: join kind %q", t.Kind)
		}
		j := &Join{Kind: kind, Left: left, Right: right}
		if t.On != nil {
			on, err := b.bindExpr(joint, t.On, nil)
			if err != nil {
				return nil, nil, err
			}
			if on.Type().Kind != types.KindBool {
				return nil, nil, fmt.Errorf("plan: ON must be boolean")
			}
			j.On = on
		}
		outSc := joint
		if kind == JoinSemi || kind == JoinAnti {
			outSc = lsc
		}
		if kind == JoinLeft {
			// Right columns become nullable in scope.
			outSc = &scope{}
			outSc.cols = append(outSc.cols, lsc.cols...)
			for _, c := range rsc2.cols {
				c.typ = c.typ.Null()
				outSc.cols = append(outSc.cols, c)
			}
		}
		return j, outSc, nil
	}
	return nil, nil, fmt.Errorf("plan: unsupported FROM element %T", tr)
}

// bindWhere splits the WHERE conjunction: subquery predicates (IN/EXISTS)
// become semi/anti joins, everything else a Select.
func (b *Binder) bindWhere(root Node, sc *scope, where sql.ExprNode) (Node, *scope, error) {
	var plain []sql.ExprNode
	var conj func(n sql.ExprNode)
	var subs []sql.ExprNode
	conj = func(n sql.ExprNode) {
		if bo, ok := n.(*sql.BinOp); ok && bo.Op == "and" {
			conj(bo.L)
			conj(bo.R)
			return
		}
		switch e := n.(type) {
		case *sql.InExpr:
			if e.Sub != nil {
				subs = append(subs, n)
				return
			}
		case *sql.ExistsExpr:
			subs = append(subs, n)
			return
		case *sql.UnOp:
			if inner, ok := e.E.(*sql.ExistsExpr); ok && e.Op == "not" {
				subs = append(subs, &sql.ExistsExpr{Sub: inner.Sub, Not: !inner.Not})
				return
			}
		}
		plain = append(plain, n)
	}
	conj(where)
	for _, sub := range subs {
		var err error
		root, err = b.bindSubqueryPred(root, sc, sub)
		if err != nil {
			return nil, nil, err
		}
	}
	for _, pn := range plain {
		pred, err := b.bindExpr(sc, pn, nil)
		if err != nil {
			return nil, nil, err
		}
		if pred.Type().Kind != types.KindBool {
			return nil, nil, fmt.Errorf("plan: WHERE must be boolean, got %v", pred.Type())
		}
		root = &Select{Child: root, Pred: pred}
	}
	return root, sc, nil
}

// bindSubqueryPred turns `x IN (SELECT…)`, `x NOT IN (SELECT…)` and
// `[NOT] EXISTS (SELECT…)` into semi/anti joins (uncorrelated only — the
// documented scope of this reproduction).
func (b *Binder) bindSubqueryPred(root Node, sc *scope, n sql.ExprNode) (Node, error) {
	switch e := n.(type) {
	case *sql.InExpr:
		sub, err := b.BindSelect(e.Sub)
		if err != nil {
			return nil, err
		}
		if sub.Schema().Len() != 1 {
			return nil, fmt.Errorf("plan: IN subquery must return one column")
		}
		lhs, err := b.bindExpr(sc, e.E, nil)
		if err != nil {
			return nil, err
		}
		rhsT := sub.Schema().Cols[0].Type
		if types.CommonNumeric(lhs.Type().Kind, rhsT.Kind) != types.KindInvalid &&
			lhs.Type().Kind != rhsT.Kind {
			// Promote the outer side via projection on top of root later;
			// promote lhs expression directly.
			lhs = expr.Promote(lhs, types.CommonNumeric(lhs.Type().Kind, rhsT.Kind))
			if rhsT.Kind != lhs.Type().Kind {
				sub = &Project{Child: sub,
					Exprs: []expr.Expr{expr.Promote(expr.Col(0, "k", rhsT), lhs.Type().Kind)},
					Names: []string{"k"}}
			}
		} else if lhs.Type().Kind != rhsT.Kind {
			return nil, fmt.Errorf("plan: IN types %v vs %v", lhs.Type(), rhsT)
		}
		// Materialize the probe key as an extra column so the join key is
		// a bare column on both sides.
		root, lhsCol := appendColumn(root, lhs, "$inkey")
		kind := JoinSemi
		if e.Not {
			kind = JoinAnti
			if lhs.Type().Nullable || sub.Schema().Cols[0].Type.Nullable {
				kind = JoinAntiNull
			}
		}
		on := expr.NewCall("=",
			expr.Col(lhsCol, "$inkey", lhs.Type()),
			expr.Col(root.Schema().Len(), "k", sub.Schema().Cols[0].Type))
		j := &Join{Kind: kind, Left: root, Right: sub, On: on}
		// Drop the helper column.
		return dropColumns(j, []int{lhsCol}), nil
	case *sql.ExistsExpr:
		sub, err := b.BindSelect(e.Sub)
		if err != nil {
			return nil, err
		}
		// EXISTS ignores values: reduce the subquery to one constant col.
		sub = &Project{Child: sub, Exprs: []expr.Expr{expr.CInt32(1)}, Names: []string{"one"}}
		root2, lhsCol := appendColumn(root, expr.CInt32(1), "$exkey")
		kind := JoinSemi
		if e.Not {
			kind = JoinAnti
		}
		on := expr.NewCall("=",
			expr.Col(lhsCol, "$exkey", types.Int32),
			expr.Col(root2.Schema().Len(), "one", types.Int32))
		j := &Join{Kind: kind, Left: root2, Right: sub, On: on}
		return dropColumns(j, []int{lhsCol}), nil
	}
	return nil, fmt.Errorf("plan: unsupported subquery predicate %T", n)
}

// appendColumn projects child's columns plus one extra expression,
// returning the new node and the extra column's index.
func appendColumn(n Node, e expr.Expr, name string) (Node, int) {
	s := n.Schema()
	var exprs []expr.Expr
	var names []string
	for i, c := range s.Cols {
		exprs = append(exprs, expr.Col(i, c.Name, c.Type))
		names = append(names, c.Name)
	}
	exprs = append(exprs, e)
	names = append(names, name)
	return &Project{Child: n, Exprs: exprs, Names: names}, len(exprs) - 1
}

// dropColumns projects away the given column indexes.
func dropColumns(n Node, drop []int) Node {
	dropSet := map[int]bool{}
	for _, d := range drop {
		dropSet[d] = true
	}
	s := n.Schema()
	var exprs []expr.Expr
	var names []string
	for i, c := range s.Cols {
		if dropSet[i] {
			continue
		}
		exprs = append(exprs, expr.Col(i, c.Name, c.Type))
		names = append(names, c.Name)
	}
	return &Project{Child: n, Exprs: exprs, Names: names}
}

// collectAggs gathers aggregate calls appearing anywhere in the query's
// output expressions.
func collectAggs(s *sql.SelectStmt) []*sql.FuncCall {
	var out []*sql.FuncCall
	var walk func(n sql.ExprNode)
	walk = func(n sql.ExprNode) {
		switch e := n.(type) {
		case *sql.FuncCall:
			if isAggName(e.Name) {
				out = append(out, e)
				return
			}
			for _, a := range e.Args {
				walk(a)
			}
		case *sql.BinOp:
			walk(e.L)
			walk(e.R)
		case *sql.UnOp:
			walk(e.E)
		case *sql.CaseExpr:
			for _, w := range e.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			if e.Else != nil {
				walk(e.Else)
			}
		case *sql.CastExpr:
			walk(e.E)
		case *sql.IsNullExpr:
			walk(e.E)
		case *sql.BetweenExpr:
			walk(e.E)
			walk(e.Lo)
			walk(e.Hi)
		case *sql.InExpr:
			walk(e.E)
			for _, le := range e.List {
				walk(le)
			}
		}
	}
	for _, item := range s.Items {
		if !item.Star {
			walk(item.Expr)
		}
	}
	if s.Having != nil {
		walk(s.Having)
	}
	for _, oi := range s.OrderBy {
		walk(oi.Expr)
	}
	return out
}

func isAggName(n string) bool {
	switch n {
	case "count", "sum", "min", "max", "avg":
		return true
	}
	return false
}

// bindAggregate builds Project(child) + Aggregate and returns a leaf hook
// that maps group expressions and aggregate calls to aggregate outputs.
func (b *Binder) bindAggregate(child Node, sc *scope, s *sql.SelectStmt, aggCalls []*sql.FuncCall) (Node, leafHook, error) {
	var preExprs []expr.Expr
	var preNames []string
	var groupBound []expr.Expr
	for i, g := range s.GroupBy {
		e, err := b.bindExpr(sc, g, nil)
		if err != nil {
			return nil, nil, err
		}
		groupBound = append(groupBound, e)
		preExprs = append(preExprs, e)
		preNames = append(preNames, fmt.Sprintf("$g%d", i))
	}
	type boundAgg struct {
		fn  string
		arg expr.Expr // nil for count(*)
		out int       // aggregate output column
	}
	var bound []boundAgg
	var items []AggItem
	for _, fc := range aggCalls {
		var arg expr.Expr
		col := -1
		if !fc.Star {
			if len(fc.Args) != 1 {
				return nil, nil, fmt.Errorf("plan: %s takes one argument", fc.Name)
			}
			e, err := b.bindExpr(sc, fc.Args[0], nil)
			if err != nil {
				return nil, nil, err
			}
			arg = e
			// Reuse an identical pre-projection column.
			col = -1
			for i, pe := range preExprs {
				if expr.Equal(pe, e) {
					col = i
					break
				}
			}
			if col < 0 {
				col = len(preExprs)
				preExprs = append(preExprs, e)
				preNames = append(preNames, fmt.Sprintf("$a%d", len(preExprs)))
			}
		} else if fc.Name != "count" {
			return nil, nil, fmt.Errorf("plan: %s(*) is not valid", fc.Name)
		}
		// Deduplicate identical aggregate calls.
		dup := -1
		for i, ba := range bound {
			if ba.fn == fc.Name && ((ba.arg == nil && arg == nil) || (ba.arg != nil && arg != nil && expr.Equal(ba.arg, arg))) {
				dup = i
				break
			}
		}
		if dup >= 0 {
			bound = append(bound, boundAgg{fn: fc.Name, arg: arg, out: bound[dup].out})
			continue
		}
		outIdx := len(groupBound) + len(items)
		items = append(items, AggItem{Fn: fc.Name, Col: col})
		bound = append(bound, boundAgg{fn: fc.Name, arg: arg, out: outIdx})
	}
	pre := &Project{Child: child, Exprs: preExprs, Names: preNames}
	groupCols := make([]int, len(groupBound))
	names := make([]string, 0, len(groupBound)+len(items))
	for i := range groupBound {
		groupCols[i] = i
		names = append(names, fmt.Sprintf("$g%d", i))
	}
	for i := range items {
		names = append(names, fmt.Sprintf("$agg%d", i))
	}
	agg := &Aggregate{Child: pre, GroupCols: groupCols, Aggs: items, Names: names}
	aggSchema := agg.Schema()

	// The hook resolves nodes against aggregate outputs by structural
	// matching (binding order differs from collection order: HAVING binds
	// before the select list).
	hook := func(n sql.ExprNode) (expr.Expr, bool, error) {
		if fc, ok := n.(*sql.FuncCall); ok && isAggName(fc.Name) {
			var arg expr.Expr
			if !fc.Star {
				e, err := b.bindExpr(sc, fc.Args[0], nil)
				if err != nil {
					return nil, false, err
				}
				arg = e
			}
			for _, ba := range bound {
				if ba.fn == fc.Name && ((ba.arg == nil && arg == nil) || (ba.arg != nil && arg != nil && expr.Equal(ba.arg, arg))) {
					c := aggSchema.Cols[ba.out]
					return expr.Col(ba.out, c.Name, c.Type), true, nil
				}
			}
			return nil, false, fmt.Errorf("plan: unresolved aggregate %s", fc.Name)
		}
		// Group expression match: bind over the child scope and compare.
		e, err := b.bindExpr(sc, n, nil)
		if err != nil {
			return nil, false, nil // not resolvable below: let caller recurse
		}
		for i, ge := range groupBound {
			if expr.Equal(ge, e) {
				c := aggSchema.Cols[i]
				return expr.Col(i, c.Name, c.Type), true, nil
			}
		}
		if _, ok := n.(*sql.ColName); ok {
			return nil, false, fmt.Errorf("plan: column %s is neither grouped nor aggregated", e)
		}
		return nil, false, nil
	}
	return agg, hook, nil
}
